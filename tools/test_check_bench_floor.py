#!/usr/bin/env python3
"""Self-test for check_bench_floor.py (ctest-invoked, label: obs).

Exercises the tripwire's three contractual behaviours with synthetic
report/floor files in a temp directory:

  1. a report at (or above) its floors passes             -> exit 0
  2. a row more than 30% below its floor trips            -> exit 1
  3. a debug-build report is refused, whatever its rows   -> exit 1

plus the usage error path (wrong argc -> exit 2).  The checker is pure
stdlib and file-driven, so the test needs no benchmark binary -- it can
run in any build type, including the sanitizer jobs.
"""

import json
import os
import subprocess
import sys
import tempfile

CHECKER = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       "check_bench_floor.py")


def write_json(path, payload):
    with open(path, "w") as f:
        json.dump(payload, f)


def make_report(directory, name, items_per_second, build_type="release"):
    path = os.path.join(directory, name)
    write_json(
        path,
        {
            "context": {"imli_build_type": build_type},
            "benchmarks": [
                {
                    "name": "BM_Probe",
                    "run_type": "iteration",
                    "items_per_second": items_per_second,
                }
            ],
        },
    )
    return path


def run(*argv):
    return subprocess.run(
        [sys.executable, CHECKER, *argv],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def main():
    failures = []

    def check(label, proc, want):
        if proc.returncode != want:
            failures.append(
                f"{label}: exit {proc.returncode}, want {want}\n"
                f"--- output ---\n{proc.stdout}"
            )
        else:
            print(f"ok   {label} (exit {proc.returncode})")

    with tempfile.TemporaryDirectory() as tmp:
        floors = os.path.join(tmp, "floors.json")
        write_json(
            floors,
            {"tolerance": 0.7, "floors_items_per_second": {"BM_Probe": 1e6}},
        )

        # 1. At the floor: comfortably above tolerance * floor.
        check(
            "floor-pass",
            run(make_report(tmp, "pass.json", 1e6), floors),
            0,
        )
        # Exactly at the trip limit still passes (the check is strict <).
        check(
            "at-trip-limit",
            run(make_report(tmp, "limit.json", 0.7e6), floors),
            0,
        )
        # 2. More than 30% below the floor trips.
        check(
            "regression-trips",
            run(make_report(tmp, "slow.json", 0.69e6), floors),
            1,
        )
        # A floor row missing from the report is also a failure.
        write_json(
            os.path.join(tmp, "empty.json"),
            {"context": {"imli_build_type": "release"}, "benchmarks": []},
        )
        check(
            "missing-row",
            run(os.path.join(tmp, "empty.json"), floors),
            1,
        )
        # 3. Debug reports are refused even when every row is fast.
        check(
            "debug-refused",
            run(make_report(tmp, "debug.json", 1e9, build_type="debug"),
                floors),
            1,
        )
        # Usage error: wrong argument count.
        check("usage-error", run(floors), 2)

    if failures:
        print("\n".join(failures), file=sys.stderr)
        return 1
    print("all check_bench_floor self-tests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
