#!/usr/bin/env python3
"""Throughput floor tripwire for CI.

Compares a google-benchmark JSON report against a checked-in floor file
and fails when any covered row's items_per_second drops below
``tolerance`` x floor (default 0.7: a >30% regression against the floor
trips).  The floors are deliberately conservative -- recorded well below
healthy local numbers -- so the check catches order-of-magnitude
accidents (a debug-flag leak, an O(n^2) slip in the hot loop), not
machine-to-machine noise.  Update bench/perf_floors.json when a change
legitimately moves a row; the file documents how its values were picked.

Usage: check_bench_floor.py REPORT.json FLOORS.json
Exit status: 0 ok, 1 regression or missing row, 2 usage/parse error.
"""

import json
import sys


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    try:
        with open(argv[1]) as f:
            report = json.load(f)
        with open(argv[2]) as f:
            floors = json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_bench_floor: {e}", file=sys.stderr)
        return 2

    # Refuse to grade a debug-build report: the bench binary stamps the
    # project build type into the JSON context (imli_build_type -- NOT
    # google-benchmark's own library_build_type, which describes how the
    # benchmark library was compiled) precisely so this cannot happen
    # silently.
    build_type = report.get("context", {}).get("imli_build_type")
    if build_type != "release":
        print(
            "check_bench_floor: report context imli_build_type is "
            f"{build_type!r}, not 'release' -- refusing to grade",
            file=sys.stderr,
        )
        return 1

    tolerance = float(floors.get("tolerance", 0.7))
    rows = {
        b["name"]: b
        for b in report.get("benchmarks", [])
        if b.get("run_type") != "aggregate"
    }

    failed = False
    for name, floor in sorted(floors["floors_items_per_second"].items()):
        row = rows.get(name)
        if row is None:
            print(f"FAIL {name}: row missing from the report")
            failed = True
            continue
        measured = row.get("items_per_second")
        if measured is None:
            print(f"FAIL {name}: no items_per_second in the report")
            failed = True
            continue
        limit = tolerance * float(floor)
        verdict = "FAIL" if measured < limit else "ok"
        print(
            f"{verdict:4} {name}: {measured:.3e} items/s "
            f"(floor {float(floor):.3e}, trip below {limit:.3e})"
        )
        failed = failed or measured < limit
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
