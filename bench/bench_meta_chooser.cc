/**
 * @file
 * The meta-chooser shoot-out: what does adaptive per-branch arbitration
 * buy over its own arms, and what does it cost in bits?
 *
 * Every chooser policy (tournament counters, UCB bandit, perceptron
 * fusion) runs over the same three-arm pool — TAGE-GSC, GEHL, gshare —
 * next to each arm alone and a two-host chooser without the cheap
 * gshare arm, all on the (storage bits, mean MPKI) Pareto plane over
 * the full 80-benchmark generated suite plus, with --recorded DIR, the
 * REC-01..REC-08 recorded scenarios (88 benchmarks total).
 *
 * Two shapes matter: a selector policy can at best track its strongest
 * arm per branch (it pays the policy table for the mix), while fusion
 * can beat every individual arm where their errors decorrelate.
 *
 * Extra flag on top of the standard bench set:
 *   --recorded DIR   append REC-01..REC-08 from DIR/rec-0N.cbp
 */

#include "bench/bench_common.hh"

#include <algorithm>

#include "src/dse/pareto.hh"

using namespace imli;
using namespace imli::bench;

namespace
{

/** Pareto-mark the configs on the (storage bits, mean MPKI) plane. */
std::vector<ParetoEntry>
markedEntries(const SuiteResults &results,
              const std::vector<std::string> &configs)
{
    std::vector<ParetoEntry> entries;
    entries.reserve(configs.size());
    for (const std::string &spec : configs) {
        ParetoEntry e;
        e.spec = spec;
        e.avgMpki = results.averageMpki(spec);
        e.storageBits = makePredictor(spec)->storageBits();
        entries.push_back(e);
    }
    markDominated(entries);
    return entries;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const BenchArgs args(argc, argv);
    const CommandLine cli(argc, argv);

    const std::string base = "tage-gsc";
    const std::string pool3 = "tage-gsc,gehl,gshare";
    const std::vector<std::string> configs = {
        base,
        "gehl",
        "gshare",
        "meta(" + pool3 + ")",
        "meta(" + pool3 + ")@meta.policy=ucb",
        "meta(" + pool3 + ")@meta.policy=fusion",
        "meta(tage-gsc,gehl)",
        "meta(tage-gsc,gehl)@meta.policy=fusion",
    };

    // The full generated suite, plus the recorded scenarios on request
    // (the shared corpus-layer --recorded wiring).
    const std::vector<BenchmarkSpec> pool = suitePoolWithRecorded(cli);
    SuiteRunOptions opt;
    opt.branchesPerTrace = args.branches;
    opt.jobs = args.jobs;
    const SuiteResults results = runSuite(pool, configs, opt);

    if (args.csv) {
        printCellsCsv(std::cout, results);
        return 0;
    }

    // ---- The Pareto plane: policies and arms on accuracy per bit.
    const std::vector<ParetoEntry> entries = markedEntries(results, configs);
    const double baseMpki = results.averageMpki(base);
    const double baseKbits = storageKbits(base);

    TableWriter table("Meta-chooser policies vs their arms on the "
                      "accuracy/storage plane (" +
                      std::to_string(pool.size()) + " benchmarks)");
    table.setHeader({"config", "Kbits", "MPKI", "vs tage-gsc", "pareto"});
    for (const ParetoEntry &e : entries) {
        table.addRow({e.spec, formatDouble(e.storageBits / 1024.0, 1),
                      formatDouble(e.avgMpki, 3),
                      e.spec == base
                          ? "-"
                          : formatDouble(baseMpki - e.avgMpki, 3),
                      e.dominated ? "" : "*"});
    }
    table.print(std::cout);
    std::cout << '\n';

    // ---- Arbitration benefit, policy by policy.
    ExperimentReport report(
        "Adaptive meta-prediction",
        "chooser policies vs the strongest arm (mean MPKI)");
    const double bestArm =
        std::min({results.averageMpki("tage-gsc"),
                  results.averageMpki("gehl"),
                  results.averageMpki("gshare")});
    const auto gainOf = [&](const std::string &spec) {
        return bestArm - results.averageMpki(spec);
    };
    report.addMetric("best single arm (MPKI)", bestArm, std::nullopt);
    report.addMetric("tournament gain over best arm",
                     gainOf("meta(" + pool3 + ")"), std::nullopt);
    report.addMetric("ucb gain over best arm",
                     gainOf("meta(" + pool3 + ")@meta.policy=ucb"),
                     std::nullopt);
    report.addMetric("fusion gain over best arm",
                     gainOf("meta(" + pool3 + ")@meta.policy=fusion"),
                     std::nullopt);
    report.addMetric("fusion gain, two hosts only",
                     gainOf("meta(tage-gsc,gehl)@meta.policy=fusion"),
                     std::nullopt);
    report.addNote("Shape: the selector policies (tournament, ucb) track "
                   "the per-branch best arm and so sit between the arms "
                   "on average; fusion can land above every arm where "
                   "TAGE-GSC and GEHL errors decorrelate.  The extra "
                   "bits are the policy table only — the baseline "
                   "storage cost of arbitration is the arms themselves.");
    report.print(std::cout);

    // The per-benchmark view where the hosts disagree most.
    printPerBenchmark(std::cout, results,
                      {"SPEC2K6-04", "SPEC2K6-12", "MM-4", "WS03",
                       "SERVER-5", "CLIENT06"},
                      {base, "gehl", "meta(" + pool3 + ")",
                       "meta(" + pool3 + ")@meta.policy=fusion"},
                      "Host-disagreement benchmarks (MPKI per config)");
    return 0;
}
