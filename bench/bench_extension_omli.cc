/**
 * @file
 * Extension experiment — the OMLI (outer-loop iteration) counter
 * (DESIGN.md section 8; motivated by the paper's Section 6 outlook).
 *
 * Question: how much of IMLI-OH's benefit can a second *counter* capture,
 * without the 1-Kbit outer-history storage?  OMLI-SIC indexes a voting
 * table with (PC, IMLIcount, outer-phase), which expresses outer-phase-
 * periodic behaviour (e.g. the MM-4 inversion) but not data-dependent
 * diagonals (SPEC2K6-12-class), where the actual previous-outer outcome
 * is required.
 */

#include "bench/bench_common.hh"

using namespace imli;
using namespace imli::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args(argc, argv);
    const std::vector<std::string> configs = {
        "tage-gsc", "tage-gsc+sic", "tage-gsc+sic+omli", "tage-gsc+i"};

    const SuiteResults results = runFullSuite(configs, args);
    if (args.csv) {
        printCellsCsv(std::cout, results);
        return 0;
    }

    printPerBenchmark(std::cout, results,
                      {"MM-4", "SPEC2K6-12", "CLIENT02", "MM07",
                       "SPEC2K6-04", "WS04", "WS03"},
                      configs,
                      "OMLI extension: outer-phase counter vs the full "
                      "outer history (MPKI)");

    ExperimentReport report("Extension: OMLI",
                            "phase counter vs outer-history storage");
    report.addMetric("SIC avg all", results.averageMpki("tage-gsc+sic"),
                     std::nullopt);
    report.addMetric("SIC+OMLI avg all",
                     results.averageMpki("tage-gsc+sic+omli"),
                     std::nullopt);
    report.addMetric("SIC+OH (+I) avg all",
                     results.averageMpki("tage-gsc+i"), std::nullopt);
    const double omli_mm4 =
        results.at("MM-4", "tage-gsc+sic+omli").mpki -
        results.at("MM-4", "tage-gsc+sic").mpki;
    const double oh_mm4 = results.at("MM-4", "tage-gsc+i").mpki -
                          results.at("MM-4", "tage-gsc+sic").mpki;
    report.addMetric("MM-4: OMLI delta", omli_mm4, std::nullopt);
    report.addMetric("MM-4: OH delta", oh_mm4, std::nullopt);
    const double omli_2k612 =
        results.at("SPEC2K6-12", "tage-gsc+sic+omli").mpki -
        results.at("SPEC2K6-12", "tage-gsc+sic").mpki;
    report.addMetric("SPEC2K6-12: OMLI delta (expect ~0)", omli_2k612,
                     0.0);
    report.addNote("OMLI captures phase-periodic outer behaviour (MM-4) "
                   "for 0.75 KB and 20 checkpoint bits, but cannot "
                   "express data-dependent diagonals — those need the "
                   "outer-history table, which is why the paper built "
                   "IMLI-OH.");
    report.print(std::cout);
    return 0;
}
