/**
 * @file
 * Section 4.4 — Storage and speculative-state audit.
 *
 * Paper numbers reproduced exactly by construction:
 *   - IMLI components total 708 bytes: 384 B SIC + 128 B outer-history
 *     table + 192 B OH table + 4 B for PIPE + counter;
 *   - speculative state = IMLI counter (10 bits) + PIPE (16 bits);
 * plus the headline MPKI reductions and the Section 2.3 complexity
 * contrast between checkpointing and in-flight local-history search.
 */

#include "bench/bench_common.hh"
#include "src/core/imli_components.hh"
#include "src/spec/fetch_model.hh"

using namespace imli;
using namespace imli::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args(argc, argv);

    // ---- The 708-byte audit --------------------------------------------
    ImliComponents imli_state;
    StorageAccount audit;
    imli_state.accountAll(audit);
    std::cout << "Section 4.4 storage audit (paper: 708 bytes total):\n"
              << audit.toString() << '\n';

    ExperimentReport storage("Section 4.4", "IMLI budgets");
    storage.addMetric("IMLI total (bytes)",
                      static_cast<double>(audit.totalBytes()), 708,
                      "bytes");
    storage.addMetric("checkpoint width (bits)",
                      imli_state.checkpointBits(), 26, "bits");
    storage.print(std::cout);

    // ---- Config budget ladder -------------------------------------------
    TableWriter budgets("Configuration budgets (Kbits)");
    budgets.setHeader({"config", "measured", "paper"});
    budgets.addRow({"TAGE-GSC", formatDouble(storageKbits("tage-gsc"), 1),
                    "228"});
    budgets.addRow({"TAGE-GSC+I",
                    formatDouble(storageKbits("tage-gsc+i"), 1), "234"});
    budgets.addRow({"TAGE-GSC+L",
                    formatDouble(storageKbits("tage-gsc+l"), 1), "256"});
    budgets.addRow({"TAGE-GSC+I+L",
                    formatDouble(storageKbits("tage-gsc+i+l"), 1), "261"});
    budgets.addRow({"GEHL", formatDouble(storageKbits("gehl"), 1), "204"});
    budgets.addRow({"GEHL+I", formatDouble(storageKbits("gehl+i"), 1),
                    "209"});
    budgets.addRow({"GEHL+L", formatDouble(storageKbits("gehl+l"), 1),
                    "256"});
    budgets.addRow({"GEHL+I+L", formatDouble(storageKbits("gehl+i+l"), 1),
                    "261"});
    budgets.print(std::cout);
    std::cout << '\n';

    // ---- Section 2.3: speculative-management complexity ------------------
    const Trace trace =
        generateTrace(findBenchmark("MM07"), args.branches / 2);
    const SpeculationCostReport cost = measureSpeculationCost(trace);
    std::cout << "Section 2.3 complexity contrast on MM07 (window = 64):\n"
              << cost.toString() << '\n';

    ExperimentReport spec("Section 2.3",
                          "checkpoint vs in-flight-search disciplines");
    spec.addMetric("checkpoint width (bits)",
                   static_cast<double>(cost.checkpointWidthBits),
                   std::nullopt, "bits");
    spec.addMetric("window storage (bits)",
                   static_cast<double>(cost.windowStorageBits),
                   std::nullopt, "bits");
    spec.addMetric("avg associative compares / prediction",
                   cost.avgEntriesPerSearch(), std::nullopt, "ops");
    spec.addNote("Local history pays an associative search on every "
                 "prediction; IMLI pays a few-tens-of-bits checkpoint.");
    spec.print(std::cout);
    return 0;
}
