/**
 * @file
 * Figures 8 and 9 — IMLI-induced MPKI reduction on TAGE-GSC (paper,
 * Section 4.2.2): stacked bars of the IMLI-SIC reduction and the
 * additional IMLI-OH reduction, over all 80 benchmarks (Fig. 8) and the
 * 15 most-benefitting ones (Fig. 9).
 *
 * Paper anchors: IMLI-SIC alone moves the averages 2.473 -> 2.373 (CBP4)
 * and 3.902 -> 3.733 (CBP3); per-benchmark SIC highlights are
 * SPEC2K6-04 -2.37, SPEC2K6-12 -1.16, WS04 -3.20, MM07 -2.17,
 * CLIENT02 -0.64 MPKI.  IMLI-OH on top of SIC is worth a further
 * -2.0 % (CBP4) / -2.3 % (CBP3).
 */

#include <algorithm>

#include "bench/bench_common.hh"

using namespace imli;
using namespace imli::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args(argc, argv);
    const std::vector<std::string> configs = {"tage-gsc", "tage-gsc+sic",
                                              "tage-gsc+i"};

    const SuiteResults results = runFullSuite(configs, args);
    if (args.csv) {
        printCellsCsv(std::cout, results);
        return 0;
    }

    // ---- Figure 8: all 80 benchmarks ----------------------------------
    TableWriter fig8("Figure 8: IMLI-induced MPKI reduction, TAGE-GSC "
                     "(SIC bar + OH-on-top bar)");
    fig8.setHeader({"benchmark", "base", "d(SIC)", "d(+OH)", "d(total)"});
    for (const std::string &name : results.benchmarkNames()) {
        const double base = results.at(name, "tage-gsc").mpki;
        const double sic = results.at(name, "tage-gsc+sic").mpki;
        const double imli = results.at(name, "tage-gsc+i").mpki;
        fig8.addRow({name, formatDouble(base, 3),
                     formatDelta(sic - base, 3),
                     formatDelta(imli - sic, 3),
                     formatDelta(imli - base, 3)});
    }
    fig8.print(std::cout);
    std::cout << '\n';

    // ---- Figure 9: the 15 most-benefitting benchmarks ------------------
    const auto ranked = results.rankByDelta("tage-gsc", "tage-gsc+i");
    TableWriter fig9("Figure 9: the 15 most-benefitting benchmarks");
    fig9.setHeader({"benchmark", "base", "d(SIC)", "d(total)"});
    for (std::size_t i = 0; i < 15 && i < ranked.size(); ++i) {
        const std::string &name = ranked[i];
        const double base = results.at(name, "tage-gsc").mpki;
        const double sic = results.at(name, "tage-gsc+sic").mpki;
        const double imli = results.at(name, "tage-gsc+i").mpki;
        fig9.addRow({name, formatDouble(base, 3),
                     formatDelta(sic - base, 3),
                     formatDelta(imli - base, 3)});
    }
    fig9.print(std::cout);
    std::cout << '\n';

    // ---- Section 4.2.2 anchors -----------------------------------------
    ExperimentReport report("Fig 8/9 anchors",
                            "Section 4.2.2 / 4.3.3 reference points");
    report.addMetric("SIC avg CBP4",
                     results.averageMpki("tage-gsc+sic", "CBP4"), 2.373);
    report.addMetric("SIC avg CBP3",
                     results.averageMpki("tage-gsc+sic", "CBP3"), 3.733);
    for (const auto &[name, paper] :
         std::vector<std::pair<std::string, double>>{
             {"SPEC2K6-04", -2.37},
             {"SPEC2K6-12", -1.16},
             {"WS04", -3.20},
             {"MM07", -2.17},
             {"CLIENT02", -0.64}}) {
        report.addMetric("SIC delta " + name,
                         results.at(name, "tage-gsc+sic").mpki -
                             results.at(name, "tage-gsc").mpki,
                         paper);
    }
    report.addMetric("OH-on-SIC CBP4 (%)",
                     100 * relChange(results, "tage-gsc+sic", "tage-gsc+i",
                                     "CBP4"),
                     -2.0, "%");
    report.addMetric("OH-on-SIC CBP3 (%)",
                     100 * relChange(results, "tage-gsc+sic", "tage-gsc+i",
                                     "CBP3"),
                     -2.3, "%");
    report.addNote("Benefit concentrates in a handful of benchmarks; the "
                   "rest barely move (Figure 8).");
    report.print(std::cout);
    return 0;
}
