/**
 * @file
 * Section 4.3.2 — Delayed update of the IMLI outer-history table.
 *
 * The paper validates commit-time update by delaying every history-table
 * write until up to 63 further conditional branches have been fetched:
 * the predictor loses only ~0.002 MPKI.  The mechanism: the branches
 * IMLI-OH actually serves sit in loops whose previous-outer-iteration
 * writes committed long before they are read; the PIPE vector (which is
 * speculative and checkpointed) covers the one genuinely young bit.
 */

#include "bench/bench_common.hh"
#include "src/spec/delayed_update.hh"

using namespace imli;
using namespace imli::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args(argc, argv);
    const std::vector<unsigned> delays = {0, 1, 4, 16, 63};

    for (const std::string host : {"tage-gsc", "gehl"}) {
        const auto points =
            runDelayedUpdateSweep(fullSuite(), delays, host,
                                  args.branches);
        TableWriter table("Section 4.3.2: outer-history update delay "
                          "sweep, host = " + host + "+I (avg MPKI)");
        table.setHeader({"delay (branches)", "CBP4", "CBP3", "all",
                         "loss vs delay 0"});
        for (const auto &p : points) {
            table.addRow({std::to_string(p.delay),
                          formatDouble(p.mpkiCbp4, 4),
                          formatDouble(p.mpkiCbp3, 4),
                          formatDouble(p.mpkiAll, 4),
                          formatDelta(p.mpkiAll - points[0].mpkiAll, 4)});
        }
        table.print(std::cout);

        ExperimentReport report(
            "Section 4.3.2 (" + host + ")",
            "accuracy loss at 63-branch delayed update");
        report.addMetric("MPKI loss at delay 63",
                         points.back().mpkiAll - points.front().mpkiAll,
                         0.002);
        report.addNote("The paper reports ~0.002 MPKI on TAGE-GSC+I; "
                       "anything of that order validates commit-time "
                       "update.");
        report.print(std::cout);
    }
    return 0;
}
