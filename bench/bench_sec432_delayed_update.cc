/**
 * @file
 * Section 4.3.2 — Delayed update of the IMLI outer-history table.
 *
 * The paper validates commit-time update by delaying every history-table
 * write until up to 63 further conditional branches have been fetched:
 * the predictor loses only ~0.002 MPKI.  The mechanism: the branches
 * IMLI-OH actually serves sit in loops whose previous-outer-iteration
 * writes committed long before they are read; the PIPE vector (which is
 * speculative and checkpointed) covers the one genuinely young bit.
 *
 * Two experiments, two engines:
 *  1. The paper's original: only the outer-history table write is
 *     delayed (ImliOuterHistory's queue), immediate engine otherwise.
 *  2. The same claim on the speculative pipeline engine
 *     (src/sim/pipeline_simulator.hh): the *entire predictor* trains at
 *     commit behind N in-flight branches, speculative history runs on
 *     predicted outcomes with squash-and-replay recovery — and the IMLI
 *     benefit (host+I vs host) must survive, which is what makes the
 *     component practical in a real core.
 */

#include "bench/bench_common.hh"
#include "src/spec/delayed_update.hh"

using namespace imli;
using namespace imli::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args(argc, argv);
    const std::vector<unsigned> delays = {0, 1, 4, 16, 63};

    for (const std::string host : {"tage-gsc", "gehl"}) {
        const auto points =
            runDelayedUpdateSweep(fullSuite(), delays, host,
                                  args.branches);
        TableWriter table("Section 4.3.2: outer-history update delay "
                          "sweep, host = " + host + "+I (avg MPKI)");
        table.setHeader({"delay (branches)", "CBP4", "CBP3", "all",
                         "loss vs delay 0"});
        for (const auto &p : points) {
            table.addRow({std::to_string(p.delay),
                          formatDouble(p.mpkiCbp4, 4),
                          formatDouble(p.mpkiCbp3, 4),
                          formatDouble(p.mpkiAll, 4),
                          formatDelta(p.mpkiAll - points[0].mpkiAll, 4)});
        }
        table.print(std::cout);

        ExperimentReport report(
            "Section 4.3.2 (" + host + ")",
            "accuracy loss at 63-branch delayed update");
        report.addMetric("MPKI loss at delay 63",
                         points.back().mpkiAll - points.front().mpkiAll,
                         0.002);
        report.addNote("The paper reports ~0.002 MPKI on TAGE-GSC+I; "
                       "anything of that order validates commit-time "
                       "update.");
        report.print(std::cout);
    }

    // ---- The same claim on the pipeline engine -------------------------
    for (const std::string host : {"tage-gsc", "gehl"}) {
        const auto points =
            runPipelineDelaySweep(fullSuite(), delays, host,
                                  args.branches);
        TableWriter table("Section 4.3.2 on the pipeline engine: "
                          "commit-time update, host = " + host +
                          " (avg MPKI)");
        table.setHeader({"delay (branches)", host, host + "+I",
                         "IMLI benefit"});
        for (const auto &p : points) {
            table.addRow({std::to_string(p.delay),
                          formatDouble(p.mpkiHost, 4),
                          formatDouble(p.mpkiImli, 4),
                          formatDouble(p.imliBenefit(), 4)});
        }
        table.print(std::cout);

        ExperimentReport report(
            "Section 4.3.2 / pipeline (" + host + ")",
            "IMLI benefit retained at 63-branch commit-time update");
        const double retained =
            points.empty() || points.front().imliBenefit() <= 0.0
                ? 0.0
                : points.back().imliBenefit() /
                      points.front().imliBenefit();
        report.addMetric("benefit(delay 63) / benefit(delay 0)", retained,
                         1.0);
        report.addNote("The IMLI speculative state is the checkpointed "
                       "counter + PIPE, so its benefit should survive "
                       "commit-time update of every table; a ratio near "
                       "1 reproduces the paper's delayed-update claim. "
                       "Absolute MPKI rises with delay for every config "
                       "(stale tables at fetch), non-monotonically where "
                       "the lag straddles inner-loop trip counts.");
        report.print(std::cout);
    }
    return 0;
}
