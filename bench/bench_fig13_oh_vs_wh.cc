/**
 * @file
 * Figure 13 — IMLI-OH vs WH prediction accuracy on top of the GEHL
 * predictor (paper, Section 4.3.3).
 *
 * Both side mechanisms target the same correlation (same branch,
 * neighbouring inner iteration, previous outer iteration).  The paper's
 * shape: SPEC2K6-12 / CLIENT02 / MM07 / MM-4 are improved by both; WS03
 * and SPEC2K6-04-class benchmarks are improved by IMLI-OH/SIC but NOT by
 * WH (variable trip counts and guarded branches are outside WH's reach).
 */

#include "bench/bench_common.hh"

using namespace imli;
using namespace imli::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args(argc, argv);
    const std::vector<std::string> configs = {"gehl", "gehl+wh", "gehl+oh",
                                              "gehl+i"};

    const SuiteResults results = runFullSuite(configs, args);
    if (args.csv) {
        printCellsCsv(std::cout, results);
        return 0;
    }

    // Benchmarks the paper calls out in Figure 13, plus the top movers.
    std::vector<std::string> highlight = {
        "SPEC2K6-12", "MM-4", "CLIENT02", "MM07", "WS03", "SPEC2K6-04",
        "WS04"};
    printPerBenchmark(std::cout, results, highlight, configs,
                      "Figure 13: IMLI-OH vs WH on GEHL (MPKI; note the "
                      "WH == base rows on variable-trip benchmarks)");

    TableWriter deltas("Per-benchmark deltas vs GEHL base");
    deltas.setHeader({"benchmark", "d(WH)", "d(OH)", "d(SIC+OH)"});
    for (const std::string &name : highlight) {
        const double base = results.at(name, "gehl").mpki;
        deltas.addRow({name,
                       formatDelta(results.at(name, "gehl+wh").mpki - base,
                                   3),
                       formatDelta(results.at(name, "gehl+oh").mpki - base,
                                   3),
                       formatDelta(results.at(name, "gehl+i").mpki - base,
                                   3)});
    }
    deltas.print(std::cout);
    std::cout << '\n';

    ExperimentReport report("Figure 13 shape",
                            "who captures the outer-history correlation");
    report.addMetric("WH  avg all",
                     results.averageMpki("gehl+wh"),
                     std::nullopt);
    report.addMetric("OH  avg all", results.averageMpki("gehl+oh"),
                     std::nullopt);
    const double wh_2k612 = results.at("SPEC2K6-12", "gehl+wh").mpki -
                            results.at("SPEC2K6-12", "gehl").mpki;
    const double wh_ws04 = results.at("WS04", "gehl+wh").mpki -
                           results.at("WS04", "gehl").mpki;
    report.addMetric("WH delta SPEC2K6-12", wh_2k612, std::nullopt);
    report.addMetric("WH delta WS04 (must be ~0)", wh_ws04, 0.0);
    report.addNote("IMLI-OH covers WH's benchmarks AND the variable-trip "
                   "ones WH structurally cannot track (Section 2.2.2).");
    report.print(std::cout);
    return 0;
}
