/**
 * @file
 * Section 3.3 — Wormhole prediction on top of TAGE-GSC and GEHL, and the
 * Section 4.3 introduction experiment (WH on top of IMLI-SIC).
 *
 * Paper values: TAGE-GSC+WH 2.415 CBP4 (-2.4 %) / 3.823 CBP3 (-2.2 %);
 * GEHL+WH 2.802 (-2.2 %) / 4.141 (-2.5 %); the benefit comes from only
 * four benchmarks (SPEC2K6-12, MM-4, CLIENT02, MM07); WH costs 1413
 * bytes.  With SIC already in: TAGE-GSC+SIC+WH 2.323 / 3.675 and
 * GEHL+SIC+WH 2.700 / 3.984.
 */

#include "bench/bench_common.hh"

using namespace imli;
using namespace imli::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args(argc, argv);
    const std::vector<std::string> configs = {
        "tage-gsc", "tage-gsc+wh", "tage-gsc+sic", "tage-gsc+sic+wh",
        "gehl",     "gehl+wh",     "gehl+sic",     "gehl+sic+wh"};

    const SuiteResults results = runFullSuite(configs, args);
    if (args.csv) {
        printCellsCsv(std::cout, results);
        return 0;
    }

    printPerBenchmark(
        std::cout, results,
        {"SPEC2K6-12", "MM-4", "CLIENT02", "MM07", "SPEC2K6-04", "WS04"},
        {"tage-gsc", "tage-gsc+wh", "gehl", "gehl+wh"},
        "Section 3.3: the four WH benchmarks (and two WH cannot touch)");

    ExperimentReport report("Section 3.3",
                            "wormhole as a side predictor (avg MPKI)");
    report.addMetric("TAGE-GSC+WH CBP4",
                     results.averageMpki("tage-gsc+wh", "CBP4"), 2.415);
    report.addMetric("TAGE-GSC+WH CBP3",
                     results.averageMpki("tage-gsc+wh", "CBP3"), 3.823);
    report.addMetric("GEHL+WH CBP4", results.averageMpki("gehl+wh", "CBP4"),
                     2.802);
    report.addMetric("GEHL+WH CBP3", results.averageMpki("gehl+wh", "CBP3"),
                     4.141);
    report.addMetric("TAGE WH delta CBP4 (%)",
                     100 * relChange(results, "tage-gsc", "tage-gsc+wh",
                                     "CBP4"),
                     -2.4, "%");
    report.addMetric("TAGE WH delta CBP3 (%)",
                     100 * relChange(results, "tage-gsc", "tage-gsc+wh",
                                     "CBP3"),
                     -2.2, "%");
    report.addMetric("GEHL WH delta CBP4 (%)",
                     100 * relChange(results, "gehl", "gehl+wh", "CBP4"),
                     -2.2, "%");
    report.addMetric("GEHL WH delta CBP3 (%)",
                     100 * relChange(results, "gehl", "gehl+wh", "CBP3"),
                     -2.5, "%");

    // Storage: the WH add-on cost.
    const double wh_bytes =
        (makePredictor("tage-gsc+wh")->storage().totalBytes() -
         makePredictor("tage-gsc")->storage().totalBytes());
    report.addMetric("WH add-on cost (bytes)", wh_bytes, 1413, "bytes");
    report.print(std::cout);

    ExperimentReport sec43("Section 4.3 intro",
                           "WH still helps on top of IMLI-SIC (avg MPKI)");
    sec43.addMetric("TAGE-GSC+SIC+WH CBP4",
                    results.averageMpki("tage-gsc+sic+wh", "CBP4"), 2.323);
    sec43.addMetric("TAGE-GSC+SIC+WH CBP3",
                    results.averageMpki("tage-gsc+sic+wh", "CBP3"), 3.675);
    sec43.addMetric("GEHL+SIC+WH CBP4",
                    results.averageMpki("gehl+sic+wh", "CBP4"), 2.700);
    sec43.addMetric("GEHL+SIC+WH CBP3",
                    results.averageMpki("gehl+sic+wh", "CBP3"), 3.984);
    sec43.addNote("The residual WH benefit over SIC is the outer-history "
                  "correlation IMLI-OH was built to replace.");
    sec43.print(std::cout);
    return 0;
}
