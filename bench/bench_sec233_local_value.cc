/**
 * @file
 * Section 2.3.3 — "Are local history components worth the complexity?"
 *
 * Paper: deactivating the local components and the loop predictor in the
 * 256-Kbit TAGE-SC-L raises mispredictions by 4.8 % (CBP4) and 6.5 %
 * (CBP3); a 16-entry loop predictor alone reclaims about one third of
 * that.  Here TAGE-GSC+L plays TAGE-SC-L; the base is the deactivated
 * variant.
 */

#include "bench/bench_common.hh"

using namespace imli;
using namespace imli::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args(argc, argv);
    const std::vector<std::string> configs = {"tage-gsc", "tage-gsc+loop",
                                              "tage-gsc+l"};

    const SuiteResults results = runFullSuite(configs, args);
    if (args.csv) {
        printCellsCsv(std::cout, results);
        return 0;
    }

    ExperimentReport report("Section 2.3.3",
                            "the value of local history + loop predictor");
    for (const std::string suite : {"CBP4", "CBP3"}) {
        const double full = results.averageMpki("tage-gsc+l", suite);
        const double none = results.averageMpki("tage-gsc", suite);
        const double loop_only =
            results.averageMpki("tage-gsc+loop", suite);
        const double paper_pct = suite == "CBP4" ? 4.8 : 6.5;
        report.addMetric("deactivation cost " + suite + " (%)",
                         100 * (none - full) / full, paper_pct, "%");
        const double reclaimed =
            none - full > 0 ? (none - loop_only) / (none - full) : 0.0;
        report.addMetric("loop-only reclaim " + suite + " (frac)",
                         reclaimed, 0.33, "x");
    }
    report.addNote("The modest deactivation cost is the paper's reason "
                   "real designs skip local history; IMLI then recovers "
                   "the loss for 708 bytes (Table 1).");
    report.print(std::cout);
    return 0;
}
