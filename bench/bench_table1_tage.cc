/**
 * @file
 * Table 1 — Average misprediction rate (MPKI) for TAGE-GSC-based
 * predictors (paper, Section 5).
 *
 *   | TAGE-GSC | +L | +I | +I+L |  on CBP4 and CBP3 traces,
 *
 * with the hardware budget of each configuration.  Paper values:
 * sizes 228/256/234/261 Kbits; CBP4 2.473/2.365/2.313/2.226 MPKI;
 * CBP3 3.902/3.670/3.649/3.555 MPKI.
 */

#include "bench/bench_common.hh"

using namespace imli;
using namespace imli::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args(argc, argv);
    const std::vector<std::string> configs = {
        "tage-gsc", "tage-gsc+l", "tage-gsc+i", "tage-gsc+i+l"};

    const SuiteResults results = runFullSuite(configs, args);
    if (args.csv) {
        printCellsCsv(std::cout, results);
        return 0;
    }

    printSuiteTable(
        "Table 1: TAGE-GSC-based predictors (MPKI, paper values inline)",
        results,
        {{"tage-gsc", "TAGE-GSC", 228, 2.473, 3.902},
         {"tage-gsc+l", "TAGE-GSC +L", 256, 2.365, 3.670},
         {"tage-gsc+i", "TAGE-GSC +I", 234, 2.313, 3.649},
         {"tage-gsc+i+l", "TAGE-GSC +I+L", 261, 2.226, 3.555}});

    ExperimentReport report("Table 1 shape",
                            "relative MPKI changes vs the TAGE-GSC base");
    report.addMetric("+L   CBP4 (%)",
                     100 * relChange(results, "tage-gsc", "tage-gsc+l",
                                     "CBP4"),
                     100 * (2.365 / 2.473 - 1), "%");
    report.addMetric("+I   CBP4 (%)",
                     100 * relChange(results, "tage-gsc", "tage-gsc+i",
                                     "CBP4"),
                     100 * (2.313 / 2.473 - 1), "%");
    report.addMetric("+I+L CBP4 (%)",
                     100 * relChange(results, "tage-gsc", "tage-gsc+i+l",
                                     "CBP4"),
                     100 * (2.226 / 2.473 - 1), "%");
    report.addMetric("+L   CBP3 (%)",
                     100 * relChange(results, "tage-gsc", "tage-gsc+l",
                                     "CBP3"),
                     100 * (3.670 / 3.902 - 1), "%");
    report.addMetric("+I   CBP3 (%)",
                     100 * relChange(results, "tage-gsc", "tage-gsc+i",
                                     "CBP3"),
                     100 * (3.649 / 3.902 - 1), "%");
    report.addMetric("+I+L CBP3 (%)",
                     100 * relChange(results, "tage-gsc", "tage-gsc+i+l",
                                     "CBP3"),
                     100 * (3.555 / 3.902 - 1), "%");
    report.addNote("IMLI alone ~matches the full local/loop add-on at a "
                   "fraction of its storage; combining both stacks "
                   "partially (Section 5).");
    report.print(std::cout);
    return 0;
}
