/**
 * @file
 * Ablation — IMLI-SIC table size sweep (DESIGN.md, experiment index).
 *
 * The paper states a 512-entry table "captures most of the potential
 * benefit" (Section 4.2).  This bench sweeps 64..4096 entries on the
 * SIC-sensitive benchmarks to locate the knee.
 */

#include "bench/bench_common.hh"
#include "src/predictors/tage_gsc.hh"
#include "src/sim/simulator.hh"

using namespace imli;
using namespace imli::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args(argc, argv);
    const std::vector<std::string> names = {"SPEC2K6-04", "SPEC2K6-12",
                                            "WS04", "MM07", "WS03"};
    const std::vector<unsigned> log_sizes = {6, 7, 8, 9, 10, 11, 12};

    TableWriter table("Ablation: IMLI-SIC table size (MPKI; paper picks "
                      "512 = 2^9)");
    std::vector<std::string> header = {"benchmark", "base"};
    for (unsigned log_size : log_sizes)
        header.push_back(std::to_string(1u << log_size));
    table.setHeader(header);

    std::vector<double> totals(log_sizes.size(), 0.0);
    double base_total = 0.0;
    for (const std::string &name : names) {
        const Trace trace =
            generateTrace(findBenchmark(name), args.branches);
        std::vector<std::string> row = {name};

        TageGscPredictor::Config base_cfg;
        TageGscPredictor base(base_cfg);
        const double base_mpki = simulate(base, trace).mpki();
        base_total += base_mpki;
        row.push_back(formatDouble(base_mpki, 3));

        for (std::size_t i = 0; i < log_sizes.size(); ++i) {
            TageGscPredictor::Config cfg;
            cfg.enableImli = true;
            cfg.imli.enableSic = true;
            cfg.imli.enableOh = false;
            cfg.imli.sic.logEntries = log_sizes[i];
            cfg.imli.sic.weight = 3;
            cfg.gscGlobal.imliIndexTables = 2;
            TageGscPredictor pred(cfg);
            const double mpki = simulate(pred, trace).mpki();
            totals[i] += mpki;
            row.push_back(formatDouble(mpki, 3));
        }
        table.addRow(row);
    }
    std::vector<std::string> avg_row = {"(mean)"};
    avg_row.push_back(formatDouble(base_total / names.size(), 3));
    for (double t : totals)
        avg_row.push_back(formatDouble(t / names.size(), 3));
    table.addSeparator();
    table.addRow(avg_row);
    table.print(std::cout);

    std::cout << "\nReading guide: gains should largely flatten past 512 "
                 "entries (the paper's design point); the remaining slope "
                 "is hot-pair aliasing on the biggest nests.\n";
    return 0;
}
