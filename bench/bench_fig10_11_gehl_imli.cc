/**
 * @file
 * Figures 10 and 11 — IMLI-induced MPKI reduction on GEHL (paper,
 * Section 4.2.2): the same analysis as Figures 8/9, on the neural host.
 *
 * Paper anchors: IMLI-SIC moves GEHL from 2.864 to 2.752 (CBP4) and from
 * 4.243 to 4.053 (CBP3); the same benchmarks as on TAGE-GSC are improved.
 */

#include "bench/bench_common.hh"

using namespace imli;
using namespace imli::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args(argc, argv);
    const std::vector<std::string> configs = {"gehl", "gehl+sic", "gehl+i"};

    const SuiteResults results = runFullSuite(configs, args);
    if (args.csv) {
        printCellsCsv(std::cout, results);
        return 0;
    }

    TableWriter fig10("Figure 10: IMLI-induced MPKI reduction, GEHL");
    fig10.setHeader({"benchmark", "base", "d(SIC)", "d(+OH)", "d(total)"});
    for (const std::string &name : results.benchmarkNames()) {
        const double base = results.at(name, "gehl").mpki;
        const double sic = results.at(name, "gehl+sic").mpki;
        const double imli = results.at(name, "gehl+i").mpki;
        fig10.addRow({name, formatDouble(base, 3),
                      formatDelta(sic - base, 3),
                      formatDelta(imli - sic, 3),
                      formatDelta(imli - base, 3)});
    }
    fig10.print(std::cout);
    std::cout << '\n';

    const auto ranked = results.rankByDelta("gehl", "gehl+i");
    TableWriter fig11("Figure 11: the 15 most-benefitting benchmarks");
    fig11.setHeader({"benchmark", "base", "d(SIC)", "d(total)"});
    for (std::size_t i = 0; i < 15 && i < ranked.size(); ++i) {
        const std::string &name = ranked[i];
        const double base = results.at(name, "gehl").mpki;
        const double sic = results.at(name, "gehl+sic").mpki;
        const double imli = results.at(name, "gehl+i").mpki;
        fig11.addRow({name, formatDouble(base, 3),
                      formatDelta(sic - base, 3),
                      formatDelta(imli - base, 3)});
    }
    fig11.print(std::cout);
    std::cout << '\n';

    ExperimentReport report("Fig 10/11 anchors",
                            "Section 4.2.2 reference points on GEHL");
    report.addMetric("base CBP4", results.averageMpki("gehl", "CBP4"),
                     2.864);
    report.addMetric("base CBP3", results.averageMpki("gehl", "CBP3"),
                     4.243);
    report.addMetric("SIC avg CBP4",
                     results.averageMpki("gehl+sic", "CBP4"), 2.752);
    report.addMetric("SIC avg CBP3",
                     results.averageMpki("gehl+sic", "CBP3"), 4.053);
    report.addMetric("I avg CBP4", results.averageMpki("gehl+i", "CBP4"),
                     2.694);
    report.addMetric("I avg CBP3", results.averageMpki("gehl+i", "CBP3"),
                     3.958);
    report.addNote("Same shape as TAGE-GSC: the components are host-"
                   "agnostic adder-tree plug-ins (Figures 5/6).");
    report.print(std::cout);
    return 0;
}
