/**
 * @file
 * The loop-vs-IMLI head-to-head (Section 4.2.2 done in full).
 *
 * The paper's claim is not "loop predictors are useless" but "once
 * IMLI-SIC is in, a dedicated loop predictor no longer pays for its
 * bits": with TAGE-GSC the CBP4 loop benefit collapses from 0.034 MPKI
 * to 0.013 once SIC is active.  This bench puts every exit-predicting
 * side component on the same accuracy-per-storage-bit plane — the plain
 * loop table, the ITTAGE-style tagged exit predictor (itl), wormhole,
 * and IMLI-SIC — alone and stacked on SIC, over the full 80-benchmark
 * generated suite plus, with --recorded DIR, the REC-01..REC-08
 * recorded scenarios (88 benchmarks total).
 *
 * Extra flag on top of the standard bench set:
 *   --recorded DIR   append REC-01..REC-08 from DIR/rec-0N.cbp
 */

#include "bench/bench_common.hh"

#include "src/dse/pareto.hh"

using namespace imli;
using namespace imli::bench;

namespace
{

/** Pareto-mark the configs on the (storage bits, mean MPKI) plane. */
std::vector<ParetoEntry>
markedEntries(const SuiteResults &results,
              const std::vector<std::string> &configs)
{
    std::vector<ParetoEntry> entries;
    entries.reserve(configs.size());
    for (const std::string &spec : configs) {
        ParetoEntry e;
        e.spec = spec;
        e.avgMpki = results.averageMpki(spec);
        e.storageBits = makePredictor(spec)->storageBits();
        entries.push_back(e);
    }
    markDominated(entries);
    return entries;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const BenchArgs args(argc, argv);
    const CommandLine cli(argc, argv);

    const std::string base = "tage-gsc";
    const std::vector<std::string> configs = {
        base,
        "tage-gsc+loop",
        "tage-gsc+itl",
        "tage-gsc+sic",
        "tage-gsc+wh",
        "tage-gsc+sic+loop",
        "tage-gsc+sic+itl",
        "tage-gsc+sic+wh",
    };

    // The full generated suite, plus the recorded scenarios on request
    // (the shared corpus-layer --recorded wiring).
    const std::vector<BenchmarkSpec> pool = suitePoolWithRecorded(cli);
    SuiteRunOptions opt;
    opt.branchesPerTrace = args.branches;
    opt.jobs = args.jobs;
    const SuiteResults results = runSuite(pool, configs, opt);

    if (args.csv) {
        printCellsCsv(std::cout, results);
        return 0;
    }

    // ---- The head-to-head: MPKI per storage bit, Pareto-marked.
    const std::vector<ParetoEntry> entries = markedEntries(results, configs);
    const double baseMpki = results.averageMpki(base);
    const double baseKbits = storageKbits(base);

    TableWriter table("Loop vs IMLI: exit predictors on the "
                      "accuracy/storage plane (" +
                      std::to_string(pool.size()) + " benchmarks)");
    table.setHeader({"config", "Kbits", "MPKI", "benefit", "per Kbit",
                     "pareto"});
    for (const ParetoEntry &e : entries) {
        const double benefit = baseMpki - e.avgMpki;
        const double extraKbits =
            static_cast<double>(e.storageBits) / 1024.0 - baseKbits;
        table.addRow(
            {e.spec, formatDouble(e.storageBits / 1024.0, 1),
             formatDouble(e.avgMpki, 3),
             e.spec == base ? "-" : formatDouble(benefit, 3),
             e.spec == base || extraKbits <= 0.0
                 ? "-"
                 : formatDouble(benefit / extraKbits, 4),
             e.dominated ? "" : "*"});
    }
    table.print(std::cout);
    std::cout << '\n';

    // ---- The Section 4.2.2 collapse, for each exit component.
    ExperimentReport report(
        "Section 4.2.2 head-to-head",
        "exit-predictor benefit before and after IMLI-SIC (MPKI)");
    const auto benefitOf = [&](const std::string &on,
                               const std::string &with) {
        return results.averageMpki(on) - results.averageMpki(with);
    };
    report.addMetric("loop benefit, base", benefitOf(base, "tage-gsc+loop"),
                     0.034);
    report.addMetric("loop benefit, on SIC",
                     benefitOf("tage-gsc+sic", "tage-gsc+sic+loop"), 0.013);
    report.addMetric("itl benefit, base", benefitOf(base, "tage-gsc+itl"),
                     std::nullopt);
    report.addMetric("itl benefit, on SIC",
                     benefitOf("tage-gsc+sic", "tage-gsc+sic+itl"),
                     std::nullopt);
    report.addMetric("wormhole benefit, base",
                     benefitOf(base, "tage-gsc+wh"), std::nullopt);
    report.addMetric("wormhole benefit, on SIC",
                     benefitOf("tage-gsc+sic", "tage-gsc+sic+wh"),
                     std::nullopt);
    report.addMetric("SIC benefit alone", benefitOf(base, "tage-gsc+sic"),
                     std::nullopt);
    report.addNote("Shape: every dedicated exit predictor keeps less of "
                   "its benefit once SIC is in — SIC already covers "
                   "constant-trip exits through hash(PC, IMLIcount); the "
                   "tagged itl tables retain the correlated-trip share "
                   "SIC cannot see.");
    report.print(std::cout);

    // The per-benchmark view for the loop-carrying benchmarks.
    printPerBenchmark(std::cout, results,
                      {"SPEC2K6-08", "SERVER-5", "CLIENT06", "MM06",
                       "WS08", "SERVER01", "SERVER05", "SERVER09"},
                      {base, "tage-gsc+loop", "tage-gsc+itl",
                       "tage-gsc+sic", "tage-gsc+sic+itl"},
                      "Loop-carrying benchmarks (MPKI per config)");
    return 0;
}
