/**
 * @file
 * Throughput microbenchmarks (google-benchmark): simulation speed of each
 * predictor configuration, IMLI state maintenance cost, checkpoint cost
 * and trace generation speed.  Not a paper experiment — the engineering
 * numbers behind the suite runtimes.
 */

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <set>
#include <string>

#include "src/core/imli_components.hh"
#include "src/history/history_manager.hh"
#include "src/predictors/host_speculation.hh"
#include "src/predictors/tage.hh"
#include "src/predictors/zoo.hh"
#include "src/sim/simulator.hh"
#include "src/sim/suite_runner.hh"
#include "src/spec/checkpoint.hh"
#include "src/trace/cbp_reader.hh"
#include "src/util/thread_pool.hh"
#include "src/workloads/generator_source.hh"
#include "src/workloads/suite.hh"

using namespace imli;

namespace
{

const Trace &
sharedTrace()
{
    static const Trace trace =
        generateTrace(findBenchmark("SPEC2K6-12"), 100000);
    return trace;
}

void
predictorThroughput(benchmark::State &state, const std::string &spec)
{
    const Trace &trace = sharedTrace();
    for (auto _ : state) {
        PredictorPtr pred = makePredictor(spec);
        const SimResult r = simulate(*pred, trace);
        benchmark::DoNotOptimize(r.mispredictions);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(trace.size()));
    state.SetLabel("branches/s");
}

} // anonymous namespace

#define IMLI_PREDICTOR_BENCH(name, spec)                                   \
    static void name(benchmark::State &state)                              \
    {                                                                      \
        predictorThroughput(state, spec);                                  \
    }                                                                      \
    BENCHMARK(name)->Unit(benchmark::kMillisecond)

IMLI_PREDICTOR_BENCH(BM_Bimodal, "bimodal");
IMLI_PREDICTOR_BENCH(BM_Gshare, "gshare");
IMLI_PREDICTOR_BENCH(BM_Gehl, "gehl");
IMLI_PREDICTOR_BENCH(BM_GehlImli, "gehl+i");
IMLI_PREDICTOR_BENCH(BM_TageGsc, "tage-gsc");
IMLI_PREDICTOR_BENCH(BM_TageGscImli, "tage-gsc+i");
IMLI_PREDICTOR_BENCH(BM_TageGscImliLocal, "tage-gsc+i+l");
IMLI_PREDICTOR_BENCH(BM_TageGscLoop, "tage-gsc+loop");
IMLI_PREDICTOR_BENCH(BM_TageGscIttageLoop, "tage-gsc+itl");
IMLI_PREDICTOR_BENCH(BM_TageGscWormhole, "tage-gsc+wh");
IMLI_PREDICTOR_BENCH(BM_IttageLoopStandalone, "itl");
IMLI_PREDICTOR_BENCH(BM_MetaChooser, "meta(tage-gsc,gehl,gshare)");
IMLI_PREDICTOR_BENCH(BM_MetaChooserFusion,
                     "meta(tage-gsc,gehl,gshare)@meta.policy=fusion");

static void
BM_TageArenaLookup(benchmark::State &state)
{
    // The raw TAGE hot loop, isolated from the composed predictor: one
    // predict + update pair per branch against the arena-backed tagged
    // tables.  This is the row the arena layout and the branch-light
    // provider selection move; compare against BM_TageGsc to see how
    // much of the composed cost is TAGE itself.
    HistoryManager hist(host_spec::historyCapacity(640));
    TagePredictor::Config cfg;
    TagePredictor tage(cfg, hist);
    const Trace &trace = sharedTrace();
    std::uint64_t mask = 0;
    for (auto _ : state) {
        for (const BranchRecord &rec : trace.branches()) {
            if (!isConditional(rec.type))
                continue;
            const TagePredictor::Prediction p = tage.predict(rec.pc);
            tage.update(rec.pc, rec.taken, p.taken);
            hist.push(rec.taken, rec.pc);
            mask ^= static_cast<std::uint64_t>(p.taken);
        }
        benchmark::DoNotOptimize(mask);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(trace.size()));
    state.SetLabel("branches/s");
}
BENCHMARK(BM_TageArenaLookup)->Unit(benchmark::kMillisecond);

static void
BM_BatchedPrefetch(benchmark::State &state)
{
    // The streaming engine's software-prefetch lookahead (Arg, in
    // records; 0 = off).  Results are bit-identical at every Arg — the
    // rows differ only in how early the next branches' table lines are
    // hinted into cache.
    const Trace &trace = sharedTrace();
    SimOptions opt;
    opt.prefetchLookahead = static_cast<unsigned>(state.range(0));
    std::uint64_t mispredictions = 0;
    for (auto _ : state) {
        PredictorPtr pred = makePredictor("tage-gsc");
        const SimResult r = simulate(*pred, trace, opt);
        mispredictions = r.mispredictions;
        benchmark::DoNotOptimize(mispredictions);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(trace.size()));
    state.SetLabel("branches/s");
}
BENCHMARK(BM_BatchedPrefetch)
    ->Unit(benchmark::kMillisecond)
    ->Arg(0)
    ->Arg(8)
    ->Arg(16);

static void
BM_PipelineCommit(benchmark::State &state)
{
    // Pipeline-engine throughput at update delay Arg: the commit
    // sandwich's two incremental restores dominate as the delay deepens,
    // and the batched-commit drain keeps end-of-stream cost linear.
    const Trace &trace = sharedTrace();
    SimOptions opt;
    opt.pipeline = true;
    opt.updateDelay = static_cast<unsigned>(state.range(0));
    std::uint64_t mispredictions = 0;
    for (auto _ : state) {
        PredictorPtr pred = makePredictor("tage-gsc+i");
        const SimResult r = simulate(*pred, trace, opt);
        mispredictions = r.mispredictions;
        benchmark::DoNotOptimize(mispredictions);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(trace.size()));
    state.SetLabel("branches/s");
}
BENCHMARK(BM_PipelineCommit)
    ->Unit(benchmark::kMillisecond)
    ->Arg(0)
    ->Arg(8)
    ->Arg(63);

static void
BM_ImliStateMaintenance(benchmark::State &state)
{
    // The pure per-branch cost of the IMLI machinery: context fill +
    // resolution (counter heuristic + outer-history write).
    ImliComponents imli;
    ScContext ctx;
    std::uint64_t pc = 0x400000;
    bool taken = true;
    for (auto _ : state) {
        imli.fillContext(ctx, pc);
        imli.onResolved(pc, pc - 0x80, taken);
        benchmark::DoNotOptimize(ctx.imliCount);
        pc += 0x20;
        if (pc > 0x400400)
            pc = 0x400000;
        taken = !taken;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ImliStateMaintenance);

static void
BM_ImliCheckpointRoundTrip(benchmark::State &state)
{
    // Checkpoint save + restore: the hardware-cheap operation the paper
    // contrasts with the in-flight window search.
    ImliComponents imli;
    for (auto _ : state) {
        const auto cp = imli.save();
        imli.onResolved(0x400020, 0x400000, true);
        imli.restore(cp);
        benchmark::DoNotOptimize(cp.counter);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ImliCheckpointRoundTrip);

static void
BM_SpeculativeModel(benchmark::State &state)
{
    SpeculativeImliModel spec;
    std::uint64_t i = 0;
    for (auto _ : state) {
        const bool actual = (i % 3) != 0;
        const bool predicted = (i % 7) != 0 ? actual : !actual;
        spec.onBranch(0x400020, 0x400000, predicted, actual);
        ++i;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SpeculativeModel);

static void
BM_SuiteRunner(benchmark::State &state)
{
    // End-to-end suite-runner throughput at a given worker count (the
    // Arg): 8 benchmarks x 2 configs, short traces.  The jobs = 1 row is
    // the serial baseline future scaling PRs are measured against.
    const std::vector<std::string> names = {
        "SPEC2K6-04", "SPEC2K6-12", "MM-4", "CLIENT02",
        "MM07",       "WS04",       "WS03", "SERVER-1"};
    std::vector<BenchmarkSpec> specs;
    for (const std::string &n : names)
        specs.push_back(findBenchmark(n));
    const std::vector<std::string> configs = {"tage-gsc", "tage-gsc+i"};
    SuiteRunOptions opt;
    opt.branchesPerTrace = 20000;
    opt.jobs = static_cast<unsigned>(state.range(0));
    std::uint64_t branches = 0;
    for (auto _ : state) {
        const SuiteResults r = runSuite(specs, configs, opt);
        branches = 0;
        for (const SuiteCell &cell : r.cells)
            branches += cell.conditionals;
        benchmark::DoNotOptimize(branches);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(branches));
    state.SetLabel("branches/s");
}
// UseRealTime: the work runs on pool worker threads, so calling-thread
// CPU time (the default clock) would read near zero for jobs > 1.  The
// job counts are deduplicated so machines where hardwareThreads() is
// already in the sweep don't get a double-registered row.
static void
suiteRunnerJobArgs(benchmark::internal::Benchmark *b)
{
    const std::set<int> jobs = {
        1, 2, 4, 8, static_cast<int>(imli::ThreadPool::hardwareThreads())};
    for (int j : jobs)
        b->Arg(j);
}
BENCHMARK(BM_SuiteRunner)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Apply(suiteRunnerJobArgs);

static void
BM_SimulateMaterialized(benchmark::State &state)
{
    // Reference point for the streaming rows: generate + materialize the
    // trace, then simulate — the pre-streaming engine's per-cell cost.
    const BenchmarkSpec spec = findBenchmark("SPEC2K6-12");
    std::uint64_t conditionals = 0;
    for (auto _ : state) {
        const Trace trace = generateTrace(spec, 100000);
        PredictorPtr pred = makePredictor("tage-gsc");
        const SimResult r = simulate(*pred, trace);
        conditionals = r.conditionals;
        benchmark::DoNotOptimize(conditionals);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            100000);
    state.SetLabel("branches/s");
}
BENCHMARK(BM_SimulateMaterialized)->Unit(benchmark::kMillisecond);

static void
BM_SimulateStreaming(benchmark::State &state)
{
    // Same work on the streaming path: generator -> chunk -> predictor,
    // no materialized trace.  Arg is the chunk size in records.
    const BenchmarkSpec spec = findBenchmark("SPEC2K6-12");
    const std::size_t chunk = static_cast<std::size_t>(state.range(0));
    std::uint64_t conditionals = 0;
    for (auto _ : state) {
        GeneratorBranchSource source(spec, 100000, chunk);
        PredictorPtr pred = makePredictor("tage-gsc");
        const SimResult r = simulate(*pred, source);
        conditionals = r.conditionals;
        benchmark::DoNotOptimize(conditionals);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            100000);
    state.SetLabel("branches/s");
}
BENCHMARK(BM_SimulateStreaming)
    ->Unit(benchmark::kMillisecond)
    ->Arg(4096)
    ->Arg(65536);

static void
BM_SimulateMany(benchmark::State &state)
{
    // Single-pass multi-config: Arg configs share one streamed pass, so
    // generation cost is amortized Arg-fold.  Compare branches/s against
    // Arg independent BM_SimulateStreaming runs.
    const BenchmarkSpec spec = findBenchmark("SPEC2K6-12");
    const std::size_t nconfigs = static_cast<std::size_t>(state.range(0));
    std::uint64_t conditionals = 0;
    for (auto _ : state) {
        std::vector<PredictorPtr> predictors;
        for (std::size_t i = 0; i < nconfigs; ++i)
            predictors.push_back(makePredictor("tage-gsc"));
        GeneratorBranchSource source(spec, 100000);
        const std::vector<SimResult> rs = simulateMany(predictors, source);
        conditionals = rs.back().conditionals;
        benchmark::DoNotOptimize(conditionals);
    }
    // Simulated branches: every config replays the whole stream.
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            100000 *
                            static_cast<std::int64_t>(nconfigs));
    state.SetLabel("branches/s");
}
BENCHMARK(BM_SimulateMany)
    ->Unit(benchmark::kMillisecond)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8);

namespace
{

std::string cbpBenchPath;

void
removeCbpBenchFile()
{
    std::remove(cbpBenchPath.c_str());
}

} // anonymous namespace

static void
BM_SimulateCbpSource(benchmark::State &state)
{
    // External-trace ingestion throughput: fixed-width CBP records are
    // decoded chunk by chunk and simulated.  Compare against
    // BM_SimulateStreaming (generator backend) to see what replaying a
    // recording costs relative to generating the same stream.
    static const std::string path = [] {
        cbpBenchPath = "/tmp/imli_bench_" + std::to_string(::getpid()) +
                       ".cbp";
        GeneratorBranchSource source(findBenchmark("SPEC2K6-12"), 100000);
        writeCbpFile(source, cbpBenchPath);
        std::atexit(removeCbpBenchFile);
        return cbpBenchPath;
    }();
    std::uint64_t conditionals = 0;
    std::uint64_t records = 0;
    for (auto _ : state) {
        CbpFileBranchSource source(path);
        PredictorPtr pred = makePredictor("tage-gsc");
        const SimResult r = simulate(*pred, source);
        conditionals = r.conditionals;
        records = source.decodedRecords();
        benchmark::DoNotOptimize(conditionals);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(records));
    state.SetLabel("branches/s");
}
BENCHMARK(BM_SimulateCbpSource)->Unit(benchmark::kMillisecond);

static void
BM_TraceGeneration(benchmark::State &state)
{
    const BenchmarkSpec spec = findBenchmark("MM07");
    for (auto _ : state) {
        const Trace t = generateTrace(spec, 50000);
        benchmark::DoNotOptimize(t.size());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            50000);
    state.SetLabel("branches/s");
}
BENCHMARK(BM_TraceGeneration)->Unit(benchmark::kMillisecond);

/**
 * Custom main: refuse to benchmark a debug build.  A CMAKE_BUILD_TYPE
 * omission once recorded a full BENCH_throughput.json from -O0 binaries
 * with asserts on — numbers off by an order of magnitude that looked
 * perfectly plausible in isolation.  Without NDEBUG this binary now
 * exits loudly instead of measuring; IMLI_BENCH_ALLOW_DEBUG=1 overrides
 * for debugging the benchmarks themselves, and the build type is stamped
 * into the JSON context either way so a recorded file can always be
 * audited.
 */
int
main(int argc, char **argv)
{
#ifdef NDEBUG
    benchmark::AddCustomContext("imli_build_type", "release");
#else
    benchmark::AddCustomContext("imli_build_type", "debug");
    if (std::getenv("IMLI_BENCH_ALLOW_DEBUG") == nullptr) {
        std::cerr
            << "bench_throughput: this binary was compiled without NDEBUG "
               "(a debug build).\nBenchmark numbers from it are "
               "meaningless for recording; rebuild with\n"
               "-DCMAKE_BUILD_TYPE=Release, or set "
               "IMLI_BENCH_ALLOW_DEBUG=1 to run anyway\n(the JSON context "
               "will carry imli_build_type: \"debug\").\n";
        return 1;
    }
    std::cerr << "bench_throughput: WARNING: debug build "
                 "(IMLI_BENCH_ALLOW_DEBUG set) — do not record these "
                 "numbers.\n";
#endif
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
