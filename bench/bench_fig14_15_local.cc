/**
 * @file
 * Figures 14 and 15 — Benefits of local history components on TAGE and
 * GEHL for the 25 most-affected benchmarks (paper, Section 5): Base,
 * Base+L, Base+I, Base+I+L per benchmark.
 *
 * The paper's point: local history helps a broader set of benchmarks than
 * IMLI but by smaller amounts, and its benefit shrinks once IMLI is in —
 * the correlations partially overlap.
 */

#include "bench/bench_common.hh"

using namespace imli;
using namespace imli::bench;

namespace
{

void
printFigure(const std::string &title, const SuiteResults &results,
            const std::string &base, const std::string &with_l,
            const std::string &with_i, const std::string &with_il)
{
    const auto ranked = results.rankByDelta(base, with_l);
    TableWriter table(title);
    table.setHeader({"benchmark", "base", "+L", "+I", "+I+L",
                     "L-benefit", "L-benefit on I"});
    for (std::size_t i = 0; i < 25 && i < ranked.size(); ++i) {
        const std::string &name = ranked[i];
        const double b = results.at(name, base).mpki;
        const double l = results.at(name, with_l).mpki;
        const double im = results.at(name, with_i).mpki;
        const double il = results.at(name, with_il).mpki;
        table.addRow({name, formatDouble(b, 3), formatDouble(l, 3),
                      formatDouble(im, 3), formatDouble(il, 3),
                      formatDelta(b - l, 3), formatDelta(im - il, 3)});
    }
    table.print(std::cout);
    std::cout << '\n';
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const BenchArgs args(argc, argv);
    const std::vector<std::string> configs = {
        "tage-gsc", "tage-gsc+l", "tage-gsc+i", "tage-gsc+i+l",
        "gehl",     "gehl+l",     "gehl+i",     "gehl+i+l"};

    const SuiteResults results = runFullSuite(configs, args);
    if (args.csv) {
        printCellsCsv(std::cout, results);
        return 0;
    }

    printFigure("Figure 14: local history benefits on TAGE-GSC "
                "(25 most-affected benchmarks)",
                results, "tage-gsc", "tage-gsc+l", "tage-gsc+i",
                "tage-gsc+i+l");
    printFigure("Figure 15: local history benefits on GEHL "
                "(25 most-affected benchmarks)",
                results, "gehl", "gehl+l", "gehl+i", "gehl+i+l");

    ExperimentReport report(
        "Section 5 anchors",
        "local benefit, alone vs on top of the IMLI components (MPKI)");
    const double t_alone_4 = results.averageMpki("tage-gsc", "CBP4") -
                             results.averageMpki("tage-gsc+l", "CBP4");
    const double t_onimli_4 = results.averageMpki("tage-gsc+i", "CBP4") -
                              results.averageMpki("tage-gsc+i+l", "CBP4");
    const double t_alone_3 = results.averageMpki("tage-gsc", "CBP3") -
                             results.averageMpki("tage-gsc+l", "CBP3");
    const double t_onimli_3 = results.averageMpki("tage-gsc+i", "CBP3") -
                              results.averageMpki("tage-gsc+i+l", "CBP3");
    report.addMetric("TAGE: L alone, CBP4", t_alone_4, 0.108);
    report.addMetric("TAGE: L on IMLI, CBP4", t_onimli_4, 0.087);
    report.addMetric("TAGE: L alone, CBP3", t_alone_3, 0.232);
    report.addMetric("TAGE: L on IMLI, CBP3", t_onimli_3, 0.094);
    const double g_alone_4 = results.averageMpki("gehl", "CBP4") -
                             results.averageMpki("gehl+l", "CBP4");
    const double g_onimli_4 = results.averageMpki("gehl+i", "CBP4") -
                              results.averageMpki("gehl+i+l", "CBP4");
    const double g_alone_3 = results.averageMpki("gehl", "CBP3") -
                             results.averageMpki("gehl+l", "CBP3");
    const double g_onimli_3 = results.averageMpki("gehl+i", "CBP3") -
                              results.averageMpki("gehl+i+l", "CBP3");
    report.addMetric("GEHL: L alone, CBP4", g_alone_4, 0.171);
    report.addMetric("GEHL: L on IMLI, CBP4", g_onimli_4, 0.132);
    report.addMetric("GEHL: L alone, CBP3", g_alone_3, 0.319);
    report.addMetric("GEHL: L on IMLI, CBP3", g_onimli_3, 0.131);
    report.addNote("Shrinking L-benefit on top of IMLI = the overlap the "
                   "paper uses against local history hardware.");
    report.print(std::cout);
    return 0;
}
