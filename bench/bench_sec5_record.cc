/**
 * @file
 * Section 5, "Setting a New Branch Prediction Record" — TAGE-SC-L
 * augmented with the IMLI components within the 256-Kbit CBP4 budget.
 *
 * Paper: TAGE-SC-L+IMLI achieves 2.228 MPKI on CBP4 vs the original
 * record of 2.365 (-5.8 %).  Here TAGE-GSC+L plays TAGE-SC-L and
 * TAGE-GSC+I+L the IMLI-augmented record configuration; both carry the
 * full local/loop components, so the comparison isolates the IMLI add-on
 * inside a championship-class predictor.
 */

#include "bench/bench_common.hh"

using namespace imli;
using namespace imli::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args(argc, argv);
    const std::vector<std::string> configs = {"tage-gsc+l",
                                              "tage-gsc+i+l"};

    const SuiteResults results = runFullSuite(configs, args);
    if (args.csv) {
        printCellsCsv(std::cout, results);
        return 0;
    }

    ExperimentReport report("Section 5 record",
                            "IMLI inside the championship configuration");
    report.addMetric("TAGE-SC-L analogue, CBP4",
                     results.averageMpki("tage-gsc+l", "CBP4"), 2.365);
    report.addMetric("TAGE-SC-L+IMLI analogue, CBP4",
                     results.averageMpki("tage-gsc+i+l", "CBP4"), 2.228);
    report.addMetric(
        "record improvement (%)",
        100 * relChange(results, "tage-gsc+l", "tage-gsc+i+l", "CBP4"),
        -5.8, "%");
    report.addMetric("record improvement CBP3 (%)",
                     100 * relChange(results, "tage-gsc+l", "tage-gsc+i+l",
                                     "CBP3"),
                     std::nullopt, "%");
    report.addMetric("budget (Kbits)", storageKbits("tage-gsc+i+l"),
                     256, "Kbits");
    report.addNote("The IMLI components push a local-history-equipped "
                   "predictor further: their correlation is not fully "
                   "contained in local history.");
    report.print(std::cout);
    return 0;
}
