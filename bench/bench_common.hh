/**
 * @file
 * Shared plumbing for the experiment benches: CLI handling, suite
 * execution and the standard "paper vs measured" output blocks.
 *
 * Every bench accepts:
 *   --branches N   trace length per benchmark (default 200000, or the
 *                  IMLI_BRANCHES environment variable)
 *   --csv          dump the raw per-benchmark cells as CSV and exit
 *   --jobs N       suite-runner worker threads (default 1, or the
 *                  IMLI_JOBS environment variable; 0/auto = all hardware
 *                  threads).  Results are bit-identical at any N.
 */

#ifndef IMLI_BENCH_BENCH_COMMON_HH
#define IMLI_BENCH_BENCH_COMMON_HH

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "src/corpus/trace_corpus.hh"
#include "src/predictors/zoo.hh"
#include "src/sim/report.hh"
#include "src/sim/suite_runner.hh"
#include "src/util/cli.hh"
#include "src/util/table_writer.hh"
#include "src/util/thread_pool.hh"
#include "src/workloads/suite.hh"

namespace imli::bench
{

/** Parse the standard bench flags. */
struct BenchArgs
{
    std::size_t branches;
    bool csv;
    unsigned jobs;

    BenchArgs(int argc, char **argv)
    {
        try {
            CommandLine cli(argc, argv);
            // Flags parse strictly, like the env overrides; env defaults
            // are only consulted when the flag is absent, so an explicit
            // flag still works under a malformed env var.
            branches = cli.has("branches")
                           ? parseBranchCount(cli.getString("branches"),
                                              "--branches")
                           : defaultBranchesPerTrace();
            csv = cli.getBool("csv");
            jobs = cli.has("jobs")
                       ? ThreadPool::parseJobsStrict(cli.getString("jobs"),
                                                     "--jobs")
                       : defaultJobs();
        } catch (const std::exception &e) {
            // Bad IMLI_BRANCHES / IMLI_JOBS overrides: fail the run with
            // the parse error, not a raw terminate().
            std::cerr << "error: " << e.what() << '\n';
            std::exit(1);
        }
    }
};

/**
 * The full generated suite plus, when --recorded DIR was given, the
 * REC-01..REC-08 recorded scenarios — through the corpus layer, so every
 * bench shares the one --recorded validation (and error message) of the
 * suite CLIs.
 */
inline std::vector<BenchmarkSpec>
suitePoolWithRecorded(const CommandLine &cli)
{
    return makeSuiteCorpus(cli.getString("recorded", "")).benchmarks();
}

/** Run @p configs over the full 80-benchmark suite. */
inline SuiteResults
runFullSuite(const std::vector<std::string> &configs, std::size_t branches,
             unsigned jobs = 1)
{
    SuiteRunOptions opt;
    opt.branchesPerTrace = branches;
    opt.jobs = jobs;
    return runSuite(fullSuite(), configs, opt);
}

/** Run @p configs over the full suite with the parsed bench flags. */
inline SuiteResults
runFullSuite(const std::vector<std::string> &configs, const BenchArgs &args)
{
    return runFullSuite(configs, args.branches, args.jobs);
}

/** Run @p configs over a named subset of the suite. */
inline SuiteResults
runBenchmarks(const std::vector<std::string> &names,
              const std::vector<std::string> &configs,
              std::size_t branches, unsigned jobs = 1)
{
    std::vector<BenchmarkSpec> specs;
    specs.reserve(names.size());
    for (const std::string &name : names)
        specs.push_back(findBenchmark(name));
    SuiteRunOptions opt;
    opt.branchesPerTrace = branches;
    opt.jobs = jobs;
    return runSuite(specs, configs, opt);
}

/** Run @p configs over a named subset with the parsed bench flags. */
inline SuiteResults
runBenchmarks(const std::vector<std::string> &names,
              const std::vector<std::string> &configs, const BenchArgs &args)
{
    return runBenchmarks(names, configs, args.branches, args.jobs);
}

/** Storage of a zoo config in Kbits. */
inline double
storageKbits(const std::string &spec)
{
    return makePredictor(spec)->storage().totalKbits();
}

/**
 * Print the standard table: one row per config with measured size and
 * per-suite MPKI next to the paper's values.
 */
struct PaperRow
{
    std::string config;      //!< zoo spec
    std::string paperLabel;  //!< the paper's name for this row
    double paperKbits;
    double paperCbp4;
    double paperCbp3;
};

inline void
printSuiteTable(const std::string &title, const SuiteResults &results,
                const std::vector<PaperRow> &rows)
{
    TableWriter table(title);
    table.setHeader({"config", "Kbits", "paper", "CBP4", "paper", "CBP3",
                     "paper"});
    for (const PaperRow &row : rows) {
        table.addRow({row.paperLabel, formatDouble(storageKbits(row.config), 1),
                      formatDouble(row.paperKbits, 0),
                      formatDouble(results.averageMpki(row.config, "CBP4"), 3),
                      formatDouble(row.paperCbp4, 3),
                      formatDouble(results.averageMpki(row.config, "CBP3"), 3),
                      formatDouble(row.paperCbp3, 3)});
    }
    table.print(std::cout);
    std::cout << '\n';
}

/** Relative MPKI change of @p to vs @p from on one suite. */
inline double
relChange(const SuiteResults &results, const std::string &from,
          const std::string &to, const std::string &suite)
{
    const double a = results.averageMpki(from, suite);
    const double b = results.averageMpki(to, suite);
    return a == 0.0 ? 0.0 : (b - a) / a;
}

} // namespace imli::bench

#endif // IMLI_BENCH_BENCH_COMMON_HH
