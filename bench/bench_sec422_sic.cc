/**
 * @file
 * Section 4.2.2 — IMLI-SIC evaluation details: the loop-predictor
 * subsumption experiment.
 *
 * Paper: with TAGE-GSC, the loop predictor is worth 0.034 MPKI on CBP4
 * and 0.094 on CBP3; once IMLI-SIC is active the benefit collapses to
 * 0.013 and 0.010 — SIC itself predicts constant-trip loop exits through
 * hash(PC, IMLIcount).
 */

#include "bench/bench_common.hh"

using namespace imli;
using namespace imli::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args(argc, argv);
    const std::vector<std::string> configs = {
        "tage-gsc", "tage-gsc+loop", "tage-gsc+sic", "tage-gsc+sic+loop"};

    const SuiteResults results = runFullSuite(configs, args);
    if (args.csv) {
        printCellsCsv(std::cout, results);
        return 0;
    }

    ExperimentReport report(
        "Section 4.2.2",
        "loop-predictor benefit, before and after IMLI-SIC (MPKI)");
    const double loop_base_4 =
        results.averageMpki("tage-gsc", "CBP4") -
        results.averageMpki("tage-gsc+loop", "CBP4");
    const double loop_sic_4 =
        results.averageMpki("tage-gsc+sic", "CBP4") -
        results.averageMpki("tage-gsc+sic+loop", "CBP4");
    const double loop_base_3 =
        results.averageMpki("tage-gsc", "CBP3") -
        results.averageMpki("tage-gsc+loop", "CBP3");
    const double loop_sic_3 =
        results.averageMpki("tage-gsc+sic", "CBP3") -
        results.averageMpki("tage-gsc+sic+loop", "CBP3");
    report.addMetric("loop benefit, base, CBP4", loop_base_4, 0.034);
    report.addMetric("loop benefit, on SIC, CBP4", loop_sic_4, 0.013);
    report.addMetric("loop benefit, base, CBP3", loop_base_3, 0.094);
    report.addMetric("loop benefit, on SIC, CBP3", loop_sic_3, 0.010);
    report.addNote("Shape: the loop predictor's value shrinks once SIC "
                   "is in, on both suites.");
    report.print(std::cout);

    // The per-benchmark view for the loop-carrying benchmarks.
    printPerBenchmark(std::cout, results,
                      {"SPEC2K6-08", "SERVER-5", "CLIENT06", "MM06",
                       "WS08", "SERVER01", "SERVER05", "SERVER09"},
                      configs,
                      "Loop-carrying benchmarks (MPKI per config)");
    return 0;
}
