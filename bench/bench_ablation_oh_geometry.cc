/**
 * @file
 * Ablation — IMLI outer-history geometry (DESIGN.md, experiment index).
 *
 * The paper fixes the outer-history table at 1 Kbit (16 branch slots x
 * 64 iteration slots) and the PIPE at 16 bits.  This bench sweeps the
 * table size and disables the PIPE path to show what each element buys:
 * the table feeds Out[N-1][M]; the PIPE feeds Out[N-1][M-1], without
 * which the diagonal (DiagPrev) benchmarks lose most of their benefit.
 */

#include "bench/bench_common.hh"
#include "src/predictors/tage_gsc.hh"
#include "src/sim/simulator.hh"

using namespace imli;
using namespace imli::bench;

namespace
{

double
runConfig(const Trace &trace, unsigned table_bits, bool use_pipe)
{
    TageGscPredictor::Config cfg;
    cfg.enableImli = true;
    cfg.imli.enableSic = true;
    cfg.imli.enableOh = true;
    cfg.imli.sic.weight = 3;
    cfg.imli.outer.tableBits = table_bits;
    // Disabling the PIPE is modelled by shrinking it to one shared entry:
    // the recovered Out[N-1][M-1] degenerates to the last write of any
    // branch, which carries no per-branch information.
    cfg.imli.outer.pipeEntries = use_pipe ? 16 : 1;
    cfg.gscGlobal.imliIndexTables = 2;
    TageGscPredictor pred(cfg);
    return simulate(pred, trace).mpki();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const BenchArgs args(argc, argv);
    const std::vector<std::string> names = {"SPEC2K6-12", "CLIENT02",
                                            "MM07", "WS03", "MM-4"};
    const std::vector<unsigned> table_sizes = {256, 512, 1024, 2048,
                                               4096};

    TableWriter table("Ablation: outer-history table bits x PIPE "
                      "(MPKI with TAGE-GSC+I; paper point = 1024 bits "
                      "with PIPE)");
    std::vector<std::string> header = {"benchmark"};
    for (unsigned bits : table_sizes)
        header.push_back(std::to_string(bits) + "b");
    header.push_back("1024b,noPIPE");
    table.setHeader(header);

    std::vector<double> totals(table_sizes.size() + 1, 0.0);
    for (const std::string &name : names) {
        const Trace trace =
            generateTrace(findBenchmark(name), args.branches);
        std::vector<std::string> row = {name};
        for (std::size_t i = 0; i < table_sizes.size(); ++i) {
            const double mpki = runConfig(trace, table_sizes[i], true);
            totals[i] += mpki;
            row.push_back(formatDouble(mpki, 3));
        }
        const double no_pipe = runConfig(trace, 1024, false);
        totals.back() += no_pipe;
        row.push_back(formatDouble(no_pipe, 3));
        table.addRow(row);
    }
    std::vector<std::string> avg_row = {"(mean)"};
    for (double t : totals)
        avg_row.push_back(formatDouble(t / names.size(), 3));
    table.addSeparator();
    table.addRow(avg_row);
    table.print(std::cout);

    std::cout << "\nReading guide: 1 Kbit sits at the knee (the paper's "
                 "\"we found a 1 Kbit table is sufficient\"), and removing "
                 "the PIPE hurts the diagonal-correlation benchmarks "
                 "(SPEC2K6-12 / CLIENT02 / MM07) most.\n";
    return 0;
}
