/**
 * @file
 * Ablation — inserting the IMLI counter into the indices of two global
 * SC tables (paper, Section 4.2: "the benefit can be further increased
 * by inserting the IMLI counter in the indices of two tables in the
 * global history component of the SC").
 *
 * Sweeps 0/1/2/4 IMLI-indexed tables with the SIC table active.
 */

#include "bench/bench_common.hh"
#include "src/predictors/tage_gsc.hh"
#include "src/sim/simulator.hh"

using namespace imli;
using namespace imli::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args(argc, argv);
    const std::vector<std::string> names = {"SPEC2K6-04", "SPEC2K6-12",
                                            "WS04", "MM07", "SERVER-5",
                                            "MM-2"};
    const std::vector<unsigned> counts = {0, 1, 2, 4};

    TableWriter table("Ablation: IMLI counter in the global SC indices "
                      "(MPKI; paper uses 2 tables)");
    std::vector<std::string> header = {"benchmark"};
    for (unsigned c : counts)
        header.push_back(std::to_string(c) + " tables");
    table.setHeader(header);

    std::vector<double> totals(counts.size(), 0.0);
    for (const std::string &name : names) {
        const Trace trace =
            generateTrace(findBenchmark(name), args.branches);
        std::vector<std::string> row = {name};
        for (std::size_t i = 0; i < counts.size(); ++i) {
            TageGscPredictor::Config cfg;
            cfg.enableImli = true;
            cfg.imli.enableSic = true;
            cfg.imli.enableOh = false;
            cfg.imli.sic.weight = 3;
            cfg.gscGlobal.imliIndexTables = counts[i];
            TageGscPredictor pred(cfg);
            const double mpki = simulate(pred, trace).mpki();
            totals[i] += mpki;
            row.push_back(formatDouble(mpki, 3));
        }
        table.addRow(row);
    }
    std::vector<std::string> avg_row = {"(mean)"};
    for (double t : totals)
        avg_row.push_back(formatDouble(t / names.size(), 3));
    table.addSeparator();
    table.addRow(avg_row);
    table.print(std::cout);

    std::cout << "\nReading guide: a small extra gain from 2 tables on "
                 "the SIC-heavy benchmarks, and no harm elsewhere — the "
                 "Section 4.2 refinement.\n";
    return 0;
}
