/**
 * @file
 * Table 2 — Average misprediction rate (MPKI) for GEHL-based predictors
 * (paper, Section 5).
 *
 * Paper values: sizes 204/256/209/261 Kbits;
 * CBP4 2.864/2.693/2.694/2.562 MPKI; CBP3 4.243/3.924/3.958/3.827 MPKI.
 */

#include "bench/bench_common.hh"

using namespace imli;
using namespace imli::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args(argc, argv);
    const std::vector<std::string> configs = {"gehl", "gehl+l", "gehl+i",
                                              "gehl+i+l"};

    const SuiteResults results = runFullSuite(configs, args);
    if (args.csv) {
        printCellsCsv(std::cout, results);
        return 0;
    }

    printSuiteTable(
        "Table 2: GEHL-based predictors (MPKI, paper values inline)",
        results,
        {{"gehl", "GEHL", 204, 2.864, 4.243},
         {"gehl+l", "GEHL +L (FTL)", 256, 2.693, 3.924},
         {"gehl+i", "GEHL +I", 209, 2.694, 3.958},
         {"gehl+i+l", "GEHL +I+L", 261, 2.562, 3.827}});

    ExperimentReport report("Table 2 shape",
                            "relative MPKI changes vs the GEHL base");
    report.addMetric("+L   CBP4 (%)",
                     100 * relChange(results, "gehl", "gehl+l", "CBP4"),
                     100 * (2.693 / 2.864 - 1), "%");
    report.addMetric("+I   CBP4 (%)",
                     100 * relChange(results, "gehl", "gehl+i", "CBP4"),
                     100 * (2.694 / 2.864 - 1), "%");
    report.addMetric("+I+L CBP4 (%)",
                     100 * relChange(results, "gehl", "gehl+i+l", "CBP4"),
                     100 * (2.562 / 2.864 - 1), "%");
    report.addMetric("+L   CBP3 (%)",
                     100 * relChange(results, "gehl", "gehl+l", "CBP3"),
                     100 * (3.924 / 4.243 - 1), "%");
    report.addMetric("+I   CBP3 (%)",
                     100 * relChange(results, "gehl", "gehl+i", "CBP3"),
                     100 * (3.958 / 4.243 - 1), "%");
    report.addMetric("+I+L CBP3 (%)",
                     100 * relChange(results, "gehl", "gehl+i+l", "CBP3"),
                     100 * (3.827 / 4.243 - 1), "%");
    report.addNote("The paper's key observation holds on GEHL too: +I "
                   "delivers local-history-class gains for ~5 Kbits.");
    report.print(std::cout);
    return 0;
}
