/**
 * @file
 * Integration tests: end-to-end reproduction properties on small traces.
 * These encode the paper's qualitative claims as assertions — who must
 * win where, and who must not move.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "src/predictors/zoo.hh"
#include "src/sim/simulator.hh"
#include "src/workloads/suite.hh"

using namespace imli;

namespace
{

double
mpkiOf(const std::string &spec, const Trace &trace)
{
    PredictorPtr pred = makePredictor(spec);
    return simulate(*pred, trace).mpki();
}

} // anonymous namespace

TEST(Integration, ImliHelpsTheSicShowcase)
{
    // SPEC2K6-04: variable-trip same-iteration correlation.
    const Trace t = generateTrace(findBenchmark("SPEC2K6-04"), 120000);
    const double base = mpkiOf("tage-gsc", t);
    const double sic = mpkiOf("tage-gsc+sic", t);
    const double imli = mpkiOf("tage-gsc+i", t);
    EXPECT_LT(sic, base - 0.3) << "IMLI-SIC must clearly help";
    EXPECT_LT(imli, base - 0.5);
}

TEST(Integration, WormholeUselessOnVariableTrips)
{
    // Paper Section 4.2.2: SPEC2K6-04 and WS04 are *not* improved by WH.
    for (const char *name : {"SPEC2K6-04", "WS04"}) {
        const Trace t = generateTrace(findBenchmark(name), 80000);
        const double base = mpkiOf("tage-gsc", t);
        const double wh = mpkiOf("tage-gsc+wh", t);
        EXPECT_NEAR(wh, base, 0.15) << name;
    }
}

TEST(Integration, WormholeAndOhHelpTheDiagonalShowcase)
{
    // SPEC2K6-12: constant-trip diagonal correlation.
    const Trace t = generateTrace(findBenchmark("SPEC2K6-12"), 120000);
    const double base = mpkiOf("tage-gsc", t);
    const double wh = mpkiOf("tage-gsc+wh", t);
    const double imli = mpkiOf("tage-gsc+i", t);
    EXPECT_LT(wh, base - 0.4) << "WH captures the diagonal";
    EXPECT_LT(imli, base - 1.0) << "IMLI-OH captures it too";
}

TEST(Integration, OhCoversWhOnInvertedCorrelation)
{
    // MM-4 style: Out[N][M] = !Out[N-1][M].
    const Trace t = generateTrace(findBenchmark("MM-4"), 120000);
    const double base = mpkiOf("tage-gsc", t);
    const double imli = mpkiOf("tage-gsc+i", t);
    EXPECT_LT(imli, base) << "IMLI must help MM-4";
}

TEST(Integration, EasyBenchmarksUnchangedByImli)
{
    // Paper: "most of the other benchmarks neither benefit nor suffer".
    for (const char *name : {"SPEC2K6-00", "MM-1", "SERVER-2"}) {
        const Trace t = generateTrace(findBenchmark(name), 60000);
        const double base = mpkiOf("tage-gsc", t);
        const double imli = mpkiOf("tage-gsc+i", t);
        EXPECT_NEAR(imli, base, 0.25) << name;
    }
}

TEST(Integration, GehlBenefitsFromImliToo)
{
    // Figure 6 / Section 4.2.2: the same components plug into GEHL.
    const Trace t = generateTrace(findBenchmark("SPEC2K6-12"), 120000);
    const double base = mpkiOf("gehl", t);
    const double imli = mpkiOf("gehl+i", t);
    EXPECT_LT(imli, base - 1.0);
}

TEST(Integration, HostsAreComparableAndBothGainFromImli)
{
    // Paper Section 3.2 positions TAGE-GSC ~14 % ahead of GEHL on the
    // championship traces.  On the synthetic suites our clean-room GEHL
    // is comparatively stronger (documented deviation; EXPERIMENTS.md):
    // we assert the two hosts stay within 25 % of each other and that
    // BOTH gain from the IMLI components — the property the paper's
    // argument actually rests on.
    double tage_total = 0, gehl_total = 0;
    double tage_imli = 0, gehl_imli = 0;
    for (const char *name : {"SPEC2K6-03", "MM-2", "WS03", "SPEC2K6-12"}) {
        const Trace t = generateTrace(findBenchmark(name), 60000);
        tage_total += mpkiOf("tage-gsc", t);
        gehl_total += mpkiOf("gehl", t);
        tage_imli += mpkiOf("tage-gsc+i", t);
        gehl_imli += mpkiOf("gehl+i", t);
    }
    EXPECT_LT(std::abs(tage_total - gehl_total), 0.25 * gehl_total);
    EXPECT_LT(tage_imli, tage_total);
    EXPECT_LT(gehl_imli, gehl_total);
}

TEST(Integration, LocalBenefitShrinksOnTopOfImli)
{
    // Section 5: IMLI subsumes part of what local history captures.
    // Measured on the local-heavy WS04 showcase.
    const Trace t = generateTrace(findBenchmark("WS04"), 120000);
    const double base = mpkiOf("tage-gsc", t);
    const double with_l = mpkiOf("tage-gsc+l", t);
    const double with_i = mpkiOf("tage-gsc+i", t);
    const double with_il = mpkiOf("tage-gsc+i+l", t);
    const double l_benefit_alone = base - with_l;
    const double l_benefit_on_imli = with_i - with_il;
    EXPECT_GT(l_benefit_alone, 0.0);
    EXPECT_LT(l_benefit_on_imli, l_benefit_alone);
}

TEST(Integration, SicSubsumesLoopPredictor)
{
    // Section 4.2.2: IMLI-SIC predicts constant-trip loop exits itself
    // (hash(PC, IMLIcount == trip) => not taken), which is why enabling
    // the loop predictor on top of IMLI barely helps.  Assert it on the
    // loop backedge directly: SERVER-5 carries trip-60 loops whose exit
    // context is invisible to global history.
    BenchmarkSpec spec = findBenchmark("SERVER-5");
    const Trace t = generateTrace(spec, 150000);

    auto backedge_misses = [&t](const std::string &cfg) {
        PredictorPtr pred = makePredictor(cfg);
        SimOptions opt;
        opt.collectPerPc = true;
        const SimResult r = simulate(*pred, t, opt);
        // The long-loop kernel is the 7th kernel of SERVER-5: region
        // 0xa00000; backedge at +0x20 + bodyBranches*0x10.
        const std::uint64_t backedge = 0xa00030;
        const auto it = r.perPcMispredictions.find(backedge);
        return it == r.perPcMispredictions.end() ? 0ull : it->second;
    };

    const auto base = backedge_misses("tage-gsc");
    const auto with_loop = backedge_misses("tage-gsc+loop");
    const auto with_sic = backedge_misses("tage-gsc+sic");
    EXPECT_GT(base, 20u) << "the base cannot call trip-60 exits";
    EXPECT_LT(with_loop, base / 2) << "the loop predictor can";
    EXPECT_LT(with_sic, base / 2) << "and IMLI-SIC subsumes it";
}

TEST(Integration, FullSuiteDeterminism)
{
    // The same spec string must give bit-identical results end to end.
    const Trace t = generateTrace(findBenchmark("MM07"), 50000);
    const double a = mpkiOf("tage-gsc+i+l", t);
    const double b = mpkiOf("tage-gsc+i+l", t);
    EXPECT_DOUBLE_EQ(a, b);
}
