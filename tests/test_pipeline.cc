/**
 * @file
 * Tests for the speculative pipeline simulation mode: delay-0
 * bit-identity with the immediate engine, the checkpoint/restore
 * property across the predictor zoo, warm-up accounting, squash/replay
 * behaviour, mixed-engine simulateMany, suite/DSE integration of the
 * sim.delay dimension, and the MM-* delay-degradation trend.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/predictors/gshare.hh"
#include "src/predictors/zoo.hh"
#include "src/sim/pipeline_simulator.hh"
#include "src/sim/simulator.hh"
#include "src/sim/suite_runner.hh"
#include "src/util/rng.hh"
#include "src/workloads/benchmark_spec.hh"
#include "src/workloads/generator_source.hh"
#include "src/workloads/suite.hh"

using namespace imli;

namespace
{

SimOptions
pipelineOptions(unsigned delay)
{
    SimOptions opts;
    opts.updateDelay = delay;
    opts.pipeline = true;
    return opts;
}

/** Predictor without the speculation contract (for the rejection test). */
class ImmediateOnlyPredictor : public ConditionalPredictor
{
  public:
    bool predict(std::uint64_t) override { return true; }
    void update(std::uint64_t, bool, std::uint64_t) override {}
    std::string name() const override { return "immediate-only"; }
    StorageAccount storage() const override { return StorageAccount(); }
};

} // anonymous namespace

// ---------------------------------------------------------------------------
// Delay-0 bit-identity: the whole zoo, generated stream
// ---------------------------------------------------------------------------

TEST(PipelineIdentity, Delay0MatchesImmediateForEveryKnownSpec)
{
    for (const std::string &spec : knownSpecs()) {
        PredictorPtr immediate = makePredictor(spec);
        PredictorPtr pipelined = makePredictor(spec);
        GeneratorBranchSource s1(findBenchmark("MM-4"), 15000);
        GeneratorBranchSource s2(findBenchmark("MM-4"), 15000);

        SimOptions collect;
        collect.collectPerPc = true;
        SimOptions pipe = pipelineOptions(0);
        pipe.collectPerPc = true;

        const SimResult a = simulate(*immediate, s1, collect);
        const SimResult b = simulate(*pipelined, s2, pipe);
        ASSERT_EQ(a.conditionals, b.conditionals) << spec;
        ASSERT_EQ(a.mispredictions, b.mispredictions) << spec;
        ASSERT_EQ(a.instructions, b.instructions) << spec;
        ASSERT_EQ(a.perPcMispredictions, b.perPcMispredictions) << spec;

        // State identity, not just counter identity: both predictors
        // must answer a probe stream the same way afterwards.
        GeneratorBranchSource probe(findBenchmark("WS03"), 2000);
        for (BranchSpan chunk = probe.nextChunk(); !chunk.empty();
             chunk = probe.nextChunk()) {
            for (const BranchRecord &rec : chunk) {
                if (!isConditional(rec.type))
                    continue;
                ASSERT_EQ(immediate->predict(rec.pc),
                          pipelined->predict(rec.pc))
                    << spec;
                immediate->update(rec.pc, rec.taken, rec.target);
                pipelined->update(rec.pc, rec.taken, rec.target);
            }
        }
    }
}

TEST(PipelineIdentity, Delay0MatchesImmediateWithWarmup)
{
    // The two engines must agree on *which* records warm-up excludes,
    // not just on totals.
    for (const char *spec : {"tage-gsc+i", "gehl+i", "gshare"}) {
        PredictorPtr immediate = makePredictor(spec);
        PredictorPtr pipelined = makePredictor(spec);
        GeneratorBranchSource s1(findBenchmark("WS03"), 12000);
        GeneratorBranchSource s2(findBenchmark("WS03"), 12000);
        SimOptions warm;
        warm.warmupBranches = 3333;
        SimOptions pipe = pipelineOptions(0);
        pipe.warmupBranches = 3333;
        const SimResult a = simulate(*immediate, s1, warm);
        const SimResult b = simulate(*pipelined, s2, pipe);
        EXPECT_EQ(a.conditionals, b.conditionals) << spec;
        EXPECT_EQ(a.mispredictions, b.mispredictions) << spec;
        EXPECT_EQ(a.instructions, b.instructions) << spec;
    }
}

TEST(PipelineIdentity, Delay0MatchesImmediateAtExtremeHistoryGeometry)
{
    // Regression: with maxhist at the grammar ceiling (4096), the
    // incremental restore walk needs fold-length + restore-distance
    // bits resident; a fixed 4096-bit buffer silently served the
    // rewind an already-overwritten slot and broke delay-0 identity.
    // Hosts now size their buffer from the configured geometry.
    for (const char *spec :
         {"tage-gsc@tage.maxhist=4096", "gehl@gsc.maxhist=4096",
          "tage-gsc+i+l@gsc.maxhist=2048,tage.maxhist=3600"}) {
        PredictorPtr immediate = makePredictor(spec);
        PredictorPtr pipelined = makePredictor(spec);
        GeneratorBranchSource s1(findBenchmark("MM-1"), 20000);
        GeneratorBranchSource s2(findBenchmark("MM-1"), 20000);
        const SimResult a = simulate(*immediate, s1);
        const SimResult b = simulate(*pipelined, s2, pipelineOptions(0));
        EXPECT_EQ(a.mispredictions, b.mispredictions) << spec;
        EXPECT_EQ(a.conditionals, b.conditionals) << spec;
        // And a deep window at the same geometry must run (the folds
        // stay exact; pinned indirectly by the identity above plus the
        // restore-vs-recompute property tests in test_history).
        PredictorPtr deep = makePredictor(spec);
        GeneratorBranchSource s3(findBenchmark("MM-1"), 20000);
        const SimResult c = simulate(*deep, s3, pipelineOptions(64));
        EXPECT_EQ(c.conditionals, a.conditionals) << spec;
    }
}

// ---------------------------------------------------------------------------
// Checkpoint/restore property across the zoo
// ---------------------------------------------------------------------------

TEST(CheckpointProperty, RestoreAfterRandomSpeculationIsBitIdentical)
{
    // For every zoo predictor: warm two clones identically, checkpoint
    // one, wander it down K random wrong paths (speculative history
    // only), restore + squash — and from then on the pair must be
    // indistinguishable, branch by branch, through live traffic.
    const Trace warmTrace = generateTrace(findBenchmark("MM-4"), 6000);
    const Trace liveTrace = generateTrace(findBenchmark("WS03"), 3000);
    constexpr unsigned K = 500;

    for (const std::string &spec : knownSpecs()) {
        PredictorPtr wandered = makePredictor(spec);
        PredictorPtr untouched = makePredictor(spec);
        wandered->prepareSpeculation(K + 1);

        for (const BranchRecord &rec : warmTrace.branches()) {
            for (ConditionalPredictor *p :
                 {wandered.get(), untouched.get()}) {
                if (isConditional(rec.type)) {
                    (void)p->predict(rec.pc);
                    p->update(rec.pc, rec.taken, rec.target);
                } else {
                    p->trackOtherInst(rec.pc, rec.type, rec.taken,
                                      rec.target);
                }
            }
        }

        const SpecCheckpoint cp = wandered->checkpoint();
        Xoroshiro128 rng(0xf00d + warmTrace.size());
        for (unsigned i = 0; i < K; ++i) {
            const std::uint64_t pc = 0x4000 + 2 * rng.below(512);
            const bool backward = rng.bernoulli(0.5);
            const std::uint64_t target =
                backward ? pc - 64 - 2 * rng.below(64)
                         : pc + 64 + 2 * rng.below(64);
            if (rng.bernoulli(0.15))
                wandered->trackOtherInst(pc, BranchType::UncondDirect,
                                         true, target);
            else
                wandered->speculate(pc, rng.bernoulli(0.5), target);
        }
        wandered->restore(cp);
        wandered->squashSpeculation();

        // Internal-state equality, not just answer equality: the debug
        // digest covers table contents, LFSRs, journals and the scalar
        // loop-family fetch state (currentLoopPc), so a speculate() that
        // leaked an architectural write fails here even if the next few
        // predictions happen to agree.
        ASSERT_EQ(wandered->stateDigest(), untouched->stateDigest())
            << spec << ": digest differs after restore + squash";

        for (const BranchRecord &rec : liveTrace.branches()) {
            if (isConditional(rec.type)) {
                ASSERT_EQ(wandered->predict(rec.pc),
                          untouched->predict(rec.pc))
                    << spec;
                wandered->update(rec.pc, rec.taken, rec.target);
                untouched->update(rec.pc, rec.taken, rec.target);
            } else {
                wandered->trackOtherInst(rec.pc, rec.type, rec.taken,
                                         rec.target);
                untouched->trackOtherInst(rec.pc, rec.type, rec.taken,
                                          rec.target);
            }
        }

        ASSERT_EQ(wandered->stateDigest(), untouched->stateDigest())
            << spec << ": digest diverged through live traffic";
    }
}

// ---------------------------------------------------------------------------
// Pipeline accounting and recovery behaviour
// ---------------------------------------------------------------------------

TEST(PipelineSim, WarmupAccountingComputedByHand)
{
    // Scripted four-record trace on a real (gshare) predictor, warm-up 2:
    // only records 2 and 3 may count, whatever the window depth.
    Trace t("tiny");
    auto add = [&t](std::uint64_t pc, std::uint64_t target, bool taken,
                    BranchType type, unsigned gap) {
        BranchRecord rec;
        rec.pc = pc;
        rec.target = target;
        rec.taken = taken;
        rec.type = type;
        rec.instsBefore = gap;
        t.append(rec);
    };
    add(0x10, 0x26, true, BranchType::CondDirect, 9);
    add(0x20, 0x36, false, BranchType::CondDirect, 9);
    add(0x30, 0x46, true, BranchType::UncondDirect, 4);
    add(0x20, 0x36, false, BranchType::CondDirect, 7);

    for (unsigned delay : {0u, 1u, 3u, 16u}) {
        GsharePredictor pred;
        TraceBranchSource source(t);
        SimOptions opts = pipelineOptions(delay);
        opts.warmupBranches = 2;
        const SimResult r = simulate(pred, source, opts);
        // Denominator: records 2 and 3 only -> (4+1) + (7+1) = 13.
        EXPECT_EQ(r.instructions, 13u) << "delay " << delay;
        // Numerator: only record 3 is a graded conditional.
        EXPECT_EQ(r.conditionals, 1u) << "delay " << delay;
        EXPECT_LE(r.mispredictions, 1u) << "delay " << delay;
        EXPECT_DOUBLE_EQ(r.mpki(),
                         1000.0 * static_cast<double>(r.mispredictions) /
                             13.0)
            << "delay " << delay;
    }
}

TEST(PipelineSim, SquashesAndReplaysHappen)
{
    PredictorPtr pred = makePredictor("tage-gsc");
    PipelineSimulator pipe(*pred, pipelineOptions(8));
    const Trace t = generateTrace(findBenchmark("MM-4"), 20000);
    for (const BranchRecord &rec : t.branches())
        pipe.onRecord(rec);
    pipe.drain();

    const PipelineStats &stats = pipe.stats();
    // Every record commits exactly once, replays notwithstanding.
    EXPECT_EQ(stats.commits, t.size());
    // A real predictor mispredicts sometimes -> squashes; a depth-8
    // window then replays shadow fetches.
    EXPECT_EQ(stats.squashes, pipe.result().mispredictions);
    EXPECT_GT(stats.squashes, 0u);
    EXPECT_GT(stats.replays, 0u);
}

TEST(PipelineSim, DeepDelayRegressionsForLoopFamilyHosts)
{
    // The loop/wormhole components pair each commit with the oldest
    // journalled fetch event; a depth-63 window keeps dozens in flight
    // across squash/replay storms, which is where an off-by-one in that
    // 1:1 pairing (or a speculate() that writes tables) surfaces as a
    // grading drift or an accuracy collapse.  The MM kernels exercise
    // both components: constant-trip inner loops for the loop predictor
    // and the inverted outer correlation for wormhole.
    for (const char *spec : {"tage-gsc+loop", "tage-gsc+sic+wh"}) {
        PredictorPtr immediate = makePredictor(spec);
        GeneratorBranchSource s0(findBenchmark("MM-4"), 30000);
        const SimResult base = simulate(*immediate, s0);

        for (unsigned delay : {8u, 16u, 63u}) {
            PredictorPtr pred = makePredictor(spec);
            PipelineSimulator pipe(*pred, pipelineOptions(delay));
            const Trace t = generateTrace(findBenchmark("MM-4"), 30000);
            for (const BranchRecord &rec : t.branches())
                pipe.onRecord(rec);
            pipe.drain();

            const SimResult r = pipe.result();
            // The grading denominators never depend on the window depth.
            ASSERT_EQ(r.conditionals, base.conditionals)
                << spec << " delay " << delay;
            ASSERT_EQ(r.instructions, base.instructions)
                << spec << " delay " << delay;
            // Every record commits exactly once; every misprediction
            // squashes exactly once.
            EXPECT_EQ(pipe.stats().commits, t.size())
                << spec << " delay " << delay;
            EXPECT_EQ(pipe.stats().squashes, r.mispredictions)
                << spec << " delay " << delay;
            // Staleness degrades accuracy gracefully; it must not
            // collapse (a broken pairing typically doubles MPKI or
            // worse as entries free/relearn on phantom mismatches).
            EXPECT_LT(r.mpki(), 2.0 * base.mpki() + 3.0)
                << spec << " delay " << delay;
        }
    }
}

TEST(PipelineSim, RejectsPredictorsWithoutSpeculationContract)
{
    ImmediateOnlyPredictor pred;
    EXPECT_THROW(PipelineSimulator(pred, pipelineOptions(4)),
                 std::invalid_argument);
    // And through the simulate() dispatch too.
    Trace t("empty-ish");
    BranchRecord rec;
    rec.pc = 0x10;
    rec.target = 0x20;
    t.append(rec);
    EXPECT_THROW(simulate(pred, t, pipelineOptions(1)),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Mixed-engine simulateMany and the suite/DSE surface
// ---------------------------------------------------------------------------

TEST(PipelineSim, PerPredictorOptionsMatchIndependentRuns)
{
    // One shared streamed pass with per-predictor engines/delays must
    // grade exactly like three independent runs.
    std::vector<PredictorPtr> shared;
    shared.push_back(makePredictor("tage-gsc+i"));
    shared.push_back(makePredictor("tage-gsc+i"));
    shared.push_back(makePredictor("tage-gsc+i"));
    std::vector<SimOptions> perPred = {SimOptions(), pipelineOptions(0),
                                       pipelineOptions(12)};
    GeneratorBranchSource sharedSource(findBenchmark("MM-1"), 20000);
    const std::vector<SimResult> together =
        simulateMany(shared, sharedSource, perPred);

    for (std::size_t i = 0; i < perPred.size(); ++i) {
        PredictorPtr lone = makePredictor("tage-gsc+i");
        GeneratorBranchSource source(findBenchmark("MM-1"), 20000);
        const SimResult alone = simulate(*lone, source, perPred[i]);
        EXPECT_EQ(together[i].mispredictions, alone.mispredictions) << i;
        EXPECT_EQ(together[i].conditionals, alone.conditionals) << i;
        EXPECT_EQ(together[i].instructions, alone.instructions) << i;
    }
    // Immediate and pipeline-at-0 agree; depth 12 differs (trained
    // later), proving the per-predictor options actually took effect.
    EXPECT_EQ(together[0].mispredictions, together[1].mispredictions);
}

TEST(PipelineSuite, SimDelaySpecKeyEqualsRunLevelFlag)
{
    // "spec@sim.delay=N" per config == --update-delay N for that config.
    std::vector<BenchmarkSpec> benchmarks = {findBenchmark("MM-4")};
    SuiteRunOptions viaSpec;
    viaSpec.branchesPerTrace = 15000;
    const SuiteResults specResults =
        runSuite(benchmarks, {"tage-gsc+i@sim.delay=16"}, viaSpec);

    SuiteRunOptions viaFlag;
    viaFlag.branchesPerTrace = 15000;
    viaFlag.sim = pipelineOptions(16);
    const SuiteResults flagResults =
        runSuite(benchmarks, {"tage-gsc+i"}, viaFlag);

    EXPECT_EQ(specResults.cells[0].mispredictions,
              flagResults.cells[0].mispredictions);
    EXPECT_EQ(specResults.cells[0].instructions,
              flagResults.cells[0].instructions);
    // The canonical spec string carries the dimension.
    EXPECT_EQ(specResults.cells[0].config, "tage-gsc+i@sim.delay=16");
    EXPECT_EQ(canonicalSpec("tage-gsc+i@sim.delay=16"),
              "tage-gsc+i@sim.delay=16");
    EXPECT_EQ(specUpdateDelay(parseSpec("tage-gsc+i@sim.delay=16")), 16u);
    EXPECT_EQ(specUpdateDelay(parseSpec("tage-gsc+i")), 0u);
}

TEST(PipelineSuite, ExplicitSimDelayZeroPinsConfigUnderRunLevelDelay)
{
    // An explicit sim.delay=0 override must pin its config to delay 0
    // even when the run-level options select a deep delay — otherwise
    // the spec label next to the numbers lies.
    std::vector<BenchmarkSpec> benchmarks = {findBenchmark("MM-4")};
    SuiteRunOptions deep;
    deep.branchesPerTrace = 15000;
    deep.sim = pipelineOptions(63);
    const SuiteResults mixed = runSuite(
        benchmarks, {"tage-gsc+i@sim.delay=0", "tage-gsc+i"}, deep);

    SuiteRunOptions plain;
    plain.branchesPerTrace = 15000;
    const SuiteResults immediate =
        runSuite(benchmarks, {"tage-gsc+i"}, plain);

    // The pinned config graded at delay 0 == the immediate engine...
    EXPECT_EQ(mixed.cells[0].mispredictions,
              immediate.cells[0].mispredictions);
    // ...while the unpinned config really ran at the run-level depth.
    EXPECT_NE(mixed.cells[1].mispredictions,
              immediate.cells[0].mispredictions);
    EXPECT_TRUE(hasSpecUpdateDelay(parseSpec("tage-gsc+i@sim.delay=0")));
    EXPECT_FALSE(hasSpecUpdateDelay(parseSpec("tage-gsc+i")));
}

TEST(PipelineSuite, PipelineSuiteBitIdenticalAcrossJobs)
{
    std::vector<BenchmarkSpec> benchmarks = {findBenchmark("MM-4"),
                                             findBenchmark("WS03"),
                                             findBenchmark("MM-1")};
    SuiteRunOptions serial;
    serial.branchesPerTrace = 10000;
    serial.sim = pipelineOptions(8);
    SuiteRunOptions parallel = serial;
    parallel.jobs = 4;

    const std::vector<std::string> configs = {"tage-gsc+i", "gshare"};
    const SuiteResults a = runSuite(benchmarks, configs, serial);
    const SuiteResults b = runSuite(benchmarks, configs, parallel);
    ASSERT_EQ(a.cells.size(), b.cells.size());
    for (std::size_t i = 0; i < a.cells.size(); ++i) {
        EXPECT_EQ(a.cells[i].mispredictions, b.cells[i].mispredictions);
        EXPECT_EQ(a.cells[i].conditionals, b.cells[i].conditionals);
        EXPECT_EQ(a.cells[i].instructions, b.cells[i].instructions);
    }
}

// ---------------------------------------------------------------------------
// The delay-degradation trend (acceptance: MM-* monotonicity)
// ---------------------------------------------------------------------------

TEST(PipelineTrend, AverageMpkiNonDecreasingInDelayOnMmBenchmarks)
{
    // Deeper delay -> staler tables at fetch -> accuracy gets worse on
    // the loop-structured MM kernels.  Averaged over MM benchmarks to
    // keep single-benchmark noise out; the grid starts at 8 (below
    // that the degradation is within noise — which is itself the
    // paper's delayed-update point) and stops at 16 because very deep
    // windows cross whole outer iterations, where the stale
    // outer-history bits partially realign (seen as the non-monotone
    // tail in bench_sec432_delayed_update).
    const std::vector<std::string> mm = {"MM-1", "MM-2", "MM-4"};
    double previous = -1.0;
    for (unsigned delay : {0u, 8u, 16u}) {
        double sum = 0.0;
        for (const std::string &name : mm) {
            PredictorPtr pred = makePredictor("tage-gsc+i");
            GeneratorBranchSource source(findBenchmark(name), 50000);
            sum += simulate(*pred, source, pipelineOptions(delay)).mpki();
        }
        const double avg = sum / static_cast<double>(mm.size());
        EXPECT_GE(avg, previous) << "delay " << delay;
        previous = avg;
    }
}
