/**
 * @file
 * Tests for the wormhole side predictor: allocation policy, diagonal
 * pattern capture, the constant-trip-count requirement and storage.
 */

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "src/predictors/wormhole.hh"
#include "src/util/rng.hh"

using namespace imli;

namespace
{

constexpr std::uint64_t branchPc = 0x4040;

/**
 * Drive WH with a branch executing once per inner iteration of a loop
 * with @p trip iterations, whose outcome matrix follows
 * Out[N][M] = Out[N-1][M-1] (the diagonal the paper attributes to
 * SPEC2K6-12 / CLIENT02 / MM07).  Returns mispredictions of WH's valid
 * predictions over the last @p counted_outer outer iterations, plus
 * coverage.
 */
struct WhResult
{
    unsigned validPredictions = 0;
    unsigned validMispredictions = 0;
    unsigned occurrences = 0;
};

WhResult
driveDiagonal(WormholePredictor &wh, unsigned trip, unsigned outer_iters,
              unsigned counted_outer, std::optional<unsigned> trip_hint,
              std::uint64_t seed = 42)
{
    Xoroshiro128 rng(seed);
    std::vector<std::uint8_t> row(trip);
    for (auto &v : row)
        v = rng.bernoulli(0.5);

    WhResult result;
    for (unsigned n = 0; n < outer_iters; ++n) {
        if (n > 0) {
            for (unsigned m = trip; m-- > 1;)
                row[m] = row[m - 1];
            row[0] = rng.bernoulli(0.5);
        }
        for (unsigned m = 0; m < trip; ++m) {
            const bool taken = row[m] != 0;
            const auto pred = wh.predict(branchPc, trip_hint);
            const bool counted = n + counted_outer >= outer_iters;
            if (counted) {
                ++result.occurrences;
                if (pred.valid) {
                    ++result.validPredictions;
                    if (pred.taken != taken)
                        ++result.validMispredictions;
                }
            }
            // Main predictor modelled as always wrong on this branch
            // (it is unpredictable by construction) to enable allocation.
            wh.update(branchPc, taken, /*main_mispredicted=*/true,
                      trip_hint, pred);
        }
    }
    return result;
}

} // anonymous namespace

TEST(Wormhole, CapturesDiagonalWithConstantTrip)
{
    WormholePredictor wh;
    const WhResult r = driveDiagonal(wh, 24, 80, 40, 24u);
    ASSERT_GT(r.validPredictions, r.occurrences / 2)
        << "confidence must build on a stable diagonal";
    EXPECT_LT(static_cast<double>(r.validMispredictions) /
                  r.validPredictions,
              0.15);
}

TEST(Wormhole, NoPredictionWithoutTripCount)
{
    WormholePredictor wh;
    const WhResult r = driveDiagonal(wh, 24, 60, 60, std::nullopt);
    EXPECT_EQ(r.validPredictions, 0u)
        << "no trip count (variable loop) => WH must abstain";
    EXPECT_EQ(wh.liveEntries(), 0u) << "allocation requires a trip count";
}

TEST(Wormhole, NoAllocationWithoutMisprediction)
{
    WormholePredictor wh;
    Xoroshiro128 rng(5);
    for (int i = 0; i < 2000; ++i) {
        const auto pred = wh.predict(branchPc, 24u);
        wh.update(branchPc, rng.bernoulli(0.5),
                  /*main_mispredicted=*/false, 24u, pred);
    }
    EXPECT_EQ(wh.liveEntries(), 0u);
}

TEST(Wormhole, CapturesInvertedCorrelation)
{
    // Out[N][M] = !Out[N-1][M] (the MM-4 shape): the counter indexed by
    // h(trip) learns the inversion.
    WormholePredictor wh;
    Xoroshiro128 rng(9);
    const unsigned trip = 16;
    std::vector<std::uint8_t> row(trip);
    for (auto &v : row)
        v = rng.bernoulli(0.5);

    unsigned valid = 0, wrong = 0;
    for (unsigned n = 0; n < 120; ++n) {
        if (n > 0)
            for (auto &v : row)
                v ^= 1;
        for (unsigned m = 0; m < trip; ++m) {
            const bool taken = row[m] != 0;
            const auto pred = wh.predict(branchPc, trip);
            if (n >= 60 && pred.valid) {
                ++valid;
                wrong += (pred.taken != taken) ? 1 : 0;
            }
            wh.update(branchPc, taken, true, trip, pred);
        }
    }
    ASSERT_GT(valid, 200u);
    EXPECT_LT(static_cast<double>(wrong) / valid, 0.1);
}

TEST(Wormhole, RandomOutcomesNeverGainConfidence)
{
    WormholePredictor wh;
    Xoroshiro128 rng(11);
    unsigned valid = 0;
    for (unsigned n = 0; n < 100; ++n) {
        for (unsigned m = 0; m < 16; ++m) {
            const auto pred = wh.predict(branchPc, 16u);
            if (pred.valid)
                ++valid;
            wh.update(branchPc, rng.bernoulli(0.5), true, 16u, pred);
        }
    }
    // The per-entry success gate must starve uncorrelated entries: a
    // symmetric counter walk reaches high magnitudes regularly, but its
    // confident predictions are only ~50% right, so the gate closes.
    EXPECT_LT(valid, 320u) << "of 1600 occurrences";
}

TEST(Wormhole, TracksMultipleBranches)
{
    WormholePredictor wh;
    // Two branches with opposite diagonal rows must coexist (7 entries).
    Xoroshiro128 rng(13);
    const unsigned trip = 12;
    std::vector<std::uint8_t> row_a(trip), row_b(trip);
    for (unsigned m = 0; m < trip; ++m) {
        row_a[m] = rng.bernoulli(0.5);
        row_b[m] = rng.bernoulli(0.5);
    }
    unsigned valid = 0, wrong = 0;
    for (unsigned n = 0; n < 150; ++n) {
        for (unsigned m = trip; m-- > 1;) {
            row_a[m] = row_a[m - 1];
            row_b[m] = row_b[m - 1];
        }
        row_a[0] = rng.bernoulli(0.5);
        row_b[0] = rng.bernoulli(0.5);
        for (unsigned m = 0; m < trip; ++m) {
            for (std::uint64_t pc : {0x1000ULL, 0x2000ULL}) {
                const bool taken =
                    (pc == 0x1000 ? row_a[m] : row_b[m]) != 0;
                const auto pred = wh.predict(pc, trip);
                if (n >= 75 && pred.valid) {
                    ++valid;
                    wrong += (pred.taken != taken) ? 1 : 0;
                }
                wh.update(pc, taken, true, trip, pred);
            }
        }
    }
    ASSERT_GT(valid, 400u);
    EXPECT_LT(static_cast<double>(wrong) / valid, 0.15);
}

TEST(Wormhole, OversizedTripRejected)
{
    WormholePredictor::Config cfg;
    cfg.historyBits = 64;
    WormholePredictor wh(cfg);
    const auto pred = wh.predict(branchPc, 200u); // > historyBits
    EXPECT_FALSE(pred.valid);
    wh.update(branchPc, true, true, 200u, pred);
    EXPECT_EQ(wh.liveEntries(), 0u);
}

TEST(Wormhole, SpeculationJournalRoundTrip)
{
    WormholePredictor wh;
    driveDiagonal(wh, 24, 80, 0, 24u);
    ASSERT_GT(wh.liveEntries(), 0u);
    const std::uint64_t digest0 = wh.stateDigest();
    const std::uint64_t horizon0 = wh.lastTicket();

    // In-flight predicted bits must be visible to the speculative view
    // (they shape the counter index of younger fetches) ...
    for (int i = 0; i < 5; ++i) {
        const auto pred = wh.predict(branchPc, 24u);
        wh.speculate(branchPc, pred.entry >= 0 ? pred.taken
                                               : (i & 1) != 0);
    }
    EXPECT_NE(wh.stateDigest(), digest0);

    // ... a restore to the pre-speculation horizon hides them without
    // destroying them, and a squash drops them with no architectural
    // side effects.
    wh.setTicketHorizon(horizon0);
    EXPECT_EQ(wh.stateDigest(), digest0);
    wh.setTicketHorizon(UINT64_MAX);
    EXPECT_NE(wh.stateDigest(), digest0);
    wh.squashSpeculation();
    EXPECT_EQ(wh.stateDigest(), digest0);
}

TEST(Wormhole, StorageNearCbp4Budget)
{
    WormholePredictor wh;
    StorageAccount acct;
    wh.account(acct, "wormhole");
    // Paper Section 3.3: the WH side predictor costs 1413 bytes.
    EXPECT_GT(acct.totalBytes(), 1100u);
    EXPECT_LT(acct.totalBytes(), 1600u);
}
