/**
 * @file
 * Tests for the ITTAGE-style tagged loop exit predictor: the correlated
 * trip-count pattern the plain loop table rejects, the capacity
 * cascade's confidence gates, speculation round-trips and storage.
 */

#include <gtest/gtest.h>

#include "src/predictors/ittage_loop.hh"
#include "src/predictors/loop_predictor.hh"
#include "src/predictors/zoo.hh"

using namespace imli;

namespace
{

constexpr std::uint64_t loopPc = 0x4080;

/** Drive one loop execution of @p trip iterations; count the graded
 *  occurrences of the last runs as in the plain-loop tests. */
struct ItlDrive
{
    unsigned valid_mispredicts = 0;
    unsigned uncovered = 0;
    unsigned occurrences = 0;
};

template <typename TripOf>
ItlDrive
driveItl(IttageLoopPredictor &pred, unsigned runs, unsigned counted,
         TripOf &&trip_of)
{
    ItlDrive result;
    for (unsigned run = 0; run < runs; ++run) {
        const unsigned trip = trip_of(run);
        for (unsigned i = 0; i < trip; ++i) {
            const bool taken = i + 1 < trip;
            const auto p = pred.lookup(loopPc);
            if (run >= runs - counted) {
                ++result.occurrences;
                if (p.valid) {
                    if (p.taken != taken)
                        ++result.valid_mispredicts;
                } else {
                    ++result.uncovered;
                }
            }
            pred.update(loopPc, taken, !taken, p);
        }
    }
    return result;
}

} // anonymous namespace

TEST(IttageLoop, LearnsConstantTripLoop)
{
    // Parity with the plain table on its home turf: a constant trip
    // count must be covered through the base fallback / tagged tables.
    IttageLoopPredictor pred;
    const ItlDrive r = driveItl(pred, 40, 10, [](unsigned) { return 20u; });
    EXPECT_EQ(r.valid_mispredicts, 0u);
    EXPECT_LT(r.uncovered, r.occurrences / 4);
}

TEST(IttageLoop, LearnsAlternatingTripCountsPlainLoopRejects)
{
    // The headline case: trips alternate 11, 17, 11, 17.  The plain
    // loop table never gains confidence on this stream (pinned below);
    // the tagged table keyed on "previous exit" learns both phases.
    const auto trip_of = [](unsigned run) { return (run & 1) ? 11u : 17u; };

    LoopPredictor plain;
    for (unsigned run = 0; run < 40; ++run) {
        const unsigned trip = trip_of(run);
        for (unsigned i = 0; i < trip; ++i) {
            const bool taken = i + 1 < trip;
            const auto p = plain.lookup(loopPc);
            plain.update(loopPc, taken, !taken, p);
        }
    }
    ASSERT_FALSE(plain.tripCount(loopPc).has_value())
        << "plain loop confiding here would make this test vacuous";

    IttageLoopPredictor itl;
    const ItlDrive r = driveItl(itl, 40, 10, trip_of);
    EXPECT_EQ(r.valid_mispredicts, 0u);
    EXPECT_LT(r.uncovered, r.occurrences / 4)
        << "the tagged cascade must actually cover the pattern";
}

TEST(IttageLoop, PredictedTripTracksThePhase)
{
    // After an exit at 11 the provider must call 17, and vice versa.
    const auto trip_of = [](unsigned run) { return (run & 1) ? 11u : 17u; };
    IttageLoopPredictor itl;
    driveItl(itl, 40, 0, trip_of);
    // Run 40 is even -> this execution trips 17, the next trips 11.
    for (unsigned i = 0; i < 17; ++i) {
        const auto trip = itl.predictedTrip(loopPc);
        ASSERT_TRUE(trip.has_value()) << "iteration " << i;
        EXPECT_EQ(*trip, 17u) << "iteration " << i;
        const auto p = itl.lookup(loopPc);
        itl.update(loopPc, i + 1 < 17, i + 1 == 17, p);
    }
    const auto next = itl.predictedTrip(loopPc);
    ASSERT_TRUE(next.has_value());
    EXPECT_EQ(*next, 11u);
}

TEST(IttageLoop, VeryShortTripsNeverPredicted)
{
    // Exit iterations below 3 are the main predictor's job; the tagged
    // tables must abstain just like the plain table frees such entries.
    IttageLoopPredictor itl;
    const ItlDrive r = driveItl(itl, 60, 30, [](unsigned) { return 2u; });
    EXPECT_EQ(r.valid_mispredicts, 0u);
    EXPECT_EQ(r.uncovered, r.occurrences);
}

TEST(IttageLoop, NoAllocationWithoutMispredict)
{
    IttageLoopPredictor itl;
    for (unsigned run = 0; run < 30; ++run) {
        for (unsigned i = 0; i < 16; ++i) {
            const auto p = itl.lookup(loopPc);
            itl.update(loopPc, i + 1 < 16, /*alloc=*/false, p);
        }
    }
    EXPECT_FALSE(itl.predictedTrip(loopPc).has_value());
}

TEST(IttageLoop, SpeculationJournalDrivesFetchView)
{
    IttageLoopPredictor itl;
    driveItl(itl, 30, 0, [](unsigned) { return 12u; });
    const std::uint64_t digest0 = itl.stateDigest();
    const std::uint64_t horizon0 = itl.lastTicket();

    // Fetch 11 in-flight iterations without committing any: the
    // speculative view advances through the journal alone.
    for (unsigned i = 0; i < 11; ++i) {
        const auto p = itl.lookup(loopPc);
        ASSERT_TRUE(p.valid) << "in-flight iteration " << i;
        EXPECT_TRUE(p.taken) << "in-flight iteration " << i;
        itl.speculate(loopPc, p.taken);
    }
    EXPECT_FALSE(itl.lookup(loopPc).taken)
        << "the 12th in-flight occurrence must call the exit";
    EXPECT_NE(itl.stateDigest(), digest0);

    // Restore hides the in-flight events without destroying them;
    // squash drops them with no architectural side effects.
    itl.setTicketHorizon(horizon0);
    EXPECT_TRUE(itl.lookup(loopPc).taken);
    EXPECT_EQ(itl.stateDigest(), digest0);
    itl.setTicketHorizon(UINT64_MAX);
    EXPECT_FALSE(itl.lookup(loopPc).taken);
    itl.squashSpeculation();
    EXPECT_TRUE(itl.lookup(loopPc).taken);
    EXPECT_EQ(itl.stateDigest(), digest0);
}

TEST(IttageLoop, StorageMatchesGeometry)
{
    IttageLoopPredictor itl;
    StorageAccount acct;
    itl.account(acct, "itl");
    // Base: 16 entries x (10 nbIter + 10 currentIter + 10 tag + 4 confid
    // + 4 age + 1 dir) = 624.  Tagged: 4 tables x 64 entries x (10 tag +
    // 10 exitIter + 3 conf + 2 useful) = 6400.  Exit history: 64.
    EXPECT_EQ(acct.totalBits(), 624u + 6400u + 64u);
}

TEST(IttageLoop, StandaloneSpecPredictsExits)
{
    // The zoo's "itl" composition (bimodal base + tagged exit override)
    // must call a warmed constant-trip exit that bimodal alone cannot.
    PredictorPtr pred = makePredictor("itl");
    EXPECT_EQ(pred->name(), "ITL");
    EXPECT_TRUE(pred->supportsSpeculation());

    const std::uint64_t pc = 0x5210;
    const std::uint64_t target = pc - 0x40; // backward branch
    for (unsigned run = 0; run < 40; ++run) {
        for (unsigned i = 0; i < 20; ++i) {
            (void)pred->predict(pc);
            pred->update(pc, i + 1 < 20, target);
        }
    }
    for (unsigned i = 0; i < 20; ++i) {
        EXPECT_EQ(pred->predict(pc), i + 1 < 20) << "iteration " << i;
        pred->update(pc, i + 1 < 20, target);
    }
}
