/**
 * @file
 * Golden-file regression tests for the trace formats: a checked-in text
 * trace with hand-computed statistics pins the on-disk format, and every
 * write -> read -> stats round trip (binary .imt and text, stream and
 * file) must reproduce the records and the statistics exactly.
 *
 * IMLI_TEST_DATA_DIR is injected by CMake and points at tests/data in the
 * source tree.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <unistd.h>

#include "src/trace/trace_io.hh"
#include "src/trace/trace_stats.hh"
#include "src/trace/trace_text.hh"
#include "src/workloads/suite.hh"

using namespace imli;

namespace
{

std::string
goldenPath()
{
#ifdef IMLI_TEST_DATA_DIR
    return std::string(IMLI_TEST_DATA_DIR) + "/golden_mini.trace.txt";
#else
    return "tests/data/golden_mini.trace.txt";
#endif
}

/** Temporary file path that is removed on destruction. */
struct TempFile
{
    std::string path;

    explicit TempFile(const std::string &suffix)
        : path(std::string(::testing::TempDir()) + "imli_roundtrip_" +
               std::to_string(::getpid()) + suffix)
    {}

    ~TempFile() { std::remove(path.c_str()); }
};

void
expectSameRecords(const Trace &a, const Trace &b)
{
    EXPECT_EQ(a.name(), b.name());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_TRUE(a[i] == b[i]) << "record " << i << " differs";
    EXPECT_EQ(a.instructionCount(), b.instructionCount());
    EXPECT_EQ(a.conditionalCount(), b.conditionalCount());
}

void
expectSameStats(const TraceStats &a, const TraceStats &b)
{
    EXPECT_EQ(a.records, b.records);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.conditionals, b.conditionals);
    EXPECT_EQ(a.takenConditionals, b.takenConditionals);
    EXPECT_EQ(a.backwardConditionals, b.backwardConditionals);
    EXPECT_EQ(a.staticBranches, b.staticBranches);
    EXPECT_EQ(a.staticConditionals, b.staticConditionals);
    EXPECT_EQ(a.perType, b.perType);
}

} // anonymous namespace

TEST(GoldenTrace, FileParsesWithExpectedStats)
{
    const Trace trace = readTraceTextFile(goldenPath());
    EXPECT_EQ(trace.name(), "golden-mini");

    // Golden values computed by hand from tests/data/golden_mini.trace.txt;
    // a change here means the text format or the stats definitions moved.
    const TraceStats stats = computeStats(trace);
    EXPECT_EQ(stats.records, 10u);
    EXPECT_EQ(stats.instructions, 37u);
    EXPECT_EQ(stats.conditionals, 5u);
    EXPECT_EQ(stats.takenConditionals, 3u);
    EXPECT_EQ(stats.backwardConditionals, 4u);
    EXPECT_EQ(stats.staticBranches, 9u);
    EXPECT_EQ(stats.staticConditionals, 4u);
    EXPECT_DOUBLE_EQ(stats.takenRate(), 3.0 / 5.0);
    EXPECT_DOUBLE_EQ(stats.instsPerBranch(), 3.7);
    EXPECT_EQ(stats.perType.at(BranchType::CondDirect), 5u);
    EXPECT_EQ(stats.perType.at(BranchType::UncondDirect), 1u);
    EXPECT_EQ(stats.perType.at(BranchType::UncondIndirect), 1u);
    EXPECT_EQ(stats.perType.at(BranchType::Call), 1u);
    EXPECT_EQ(stats.perType.at(BranchType::IndirectCall), 1u);
    EXPECT_EQ(stats.perType.at(BranchType::Return), 1u);
}

TEST(GoldenTrace, BinaryRoundTripPreservesRecordsAndStats)
{
    const Trace golden = readTraceTextFile(goldenPath());
    std::stringstream buffer;
    writeTrace(golden, buffer);
    const Trace back = readTrace(buffer);
    expectSameRecords(golden, back);
    expectSameStats(computeStats(golden), computeStats(back));
}

TEST(GoldenTrace, TextRoundTripPreservesRecordsAndStats)
{
    const Trace golden = readTraceTextFile(goldenPath());
    std::stringstream buffer;
    writeTraceText(golden, buffer);
    const Trace back = readTraceText(buffer);
    expectSameRecords(golden, back);
    expectSameStats(computeStats(golden), computeStats(back));
}

TEST(GoldenTrace, TextSerializationIsByteStable)
{
    // Writing the parsed golden trace back out must reproduce the
    // checked-in bytes exactly: the writer is the format's spec.
    std::ifstream original(goldenPath());
    ASSERT_TRUE(original.good());
    std::stringstream golden_bytes;
    golden_bytes << original.rdbuf();

    const Trace golden = readTraceTextFile(goldenPath());
    std::stringstream rewritten;
    writeTraceText(golden, rewritten);
    EXPECT_EQ(rewritten.str(), golden_bytes.str());
}

TEST(TraceRoundTrip, GeneratedWorkloadThroughBinaryFile)
{
    const Trace trace = generateTrace(findBenchmark("MM-4"), 20000);
    TempFile file(".imt");
    writeTraceFile(trace, file.path);
    const Trace back = readTraceFile(file.path);
    expectSameRecords(trace, back);
    expectSameStats(computeStats(trace), computeStats(back));
}

TEST(TraceRoundTrip, GeneratedWorkloadThroughTextFile)
{
    const Trace trace = generateTrace(findBenchmark("WS03"), 5000);
    TempFile file(".txt");
    writeTraceTextFile(trace, file.path);
    const Trace back = readTraceTextFile(file.path);
    expectSameRecords(trace, back);
    expectSameStats(computeStats(trace), computeStats(back));
}

TEST(TraceRoundTrip, BinaryThenTextThenBinaryIsStable)
{
    const Trace trace = generateTrace(findBenchmark("SPEC2K6-12"), 8000);
    std::stringstream bin1, text, bin2;
    writeTrace(trace, bin1);
    const Trace t1 = readTrace(bin1);
    writeTraceText(t1, text);
    const Trace t2 = readTraceText(text);
    writeTrace(t2, bin2);
    const Trace t3 = readTrace(bin2);
    expectSameRecords(trace, t3);
}
