/**
 * @file
 * Unit tests for src/trace: records, in-memory traces, binary round-trips
 * and statistics.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/trace/branch_record.hh"
#include "src/trace/trace.hh"
#include "src/trace/trace_io.hh"
#include "src/trace/trace_stats.hh"
#include "src/util/rng.hh"

using namespace imli;

namespace
{

BranchRecord
makeRecord(std::uint64_t pc, std::uint64_t target, bool taken,
           BranchType type = BranchType::CondDirect, unsigned gap = 4)
{
    BranchRecord rec;
    rec.pc = pc;
    rec.target = target;
    rec.taken = taken;
    rec.type = type;
    rec.instsBefore = gap;
    return rec;
}

Trace
randomTrace(std::uint64_t seed, std::size_t n)
{
    Xoroshiro128 rng(seed);
    Trace trace("random");
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t pc = 0x1000 + rng.below(1 << 20) * 2;
        const std::int64_t delta =
            rng.range(-1024, 1024) * 2;
        BranchRecord rec = makeRecord(
            pc, static_cast<std::uint64_t>(
                static_cast<std::int64_t>(pc) + delta),
            rng.bernoulli(0.6),
            static_cast<BranchType>(rng.below(6)),
            static_cast<unsigned>(rng.below(30)));
        trace.append(rec);
    }
    return trace;
}

} // anonymous namespace

// ---------------------------------------------------------------------------
// BranchRecord
// ---------------------------------------------------------------------------

TEST(BranchRecord, BackwardDetection)
{
    EXPECT_TRUE(makeRecord(0x100, 0x80, true).isBackward());
    EXPECT_FALSE(makeRecord(0x100, 0x180, true).isBackward());
    EXPECT_FALSE(makeRecord(0x100, 0x100, true).isBackward());
}

TEST(BranchRecord, OnlyCondDirectIsConditional)
{
    EXPECT_TRUE(isConditional(BranchType::CondDirect));
    EXPECT_FALSE(isConditional(BranchType::UncondDirect));
    EXPECT_FALSE(isConditional(BranchType::Return));
    EXPECT_FALSE(isConditional(BranchType::Call));
}

TEST(BranchRecord, TypeNamesDistinct)
{
    std::set<std::string> names;
    for (int i = 0; i <= 5; ++i)
        names.insert(branchTypeName(static_cast<BranchType>(i)));
    EXPECT_EQ(names.size(), 6u);
}

// ---------------------------------------------------------------------------
// Trace
// ---------------------------------------------------------------------------

TEST(Trace, CountsInstructionsAndConditionals)
{
    Trace t("t");
    t.append(makeRecord(0x10, 0x20, true, BranchType::CondDirect, 5));
    t.append(makeRecord(0x30, 0x40, true, BranchType::UncondDirect, 3));
    EXPECT_EQ(t.size(), 2u);
    EXPECT_EQ(t.instructionCount(), 5u + 1 + 3 + 1);
    EXPECT_EQ(t.conditionalCount(), 1u);
}

TEST(Trace, ClearResets)
{
    Trace t("t");
    t.append(makeRecord(0x10, 0x20, true));
    t.clear();
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.instructionCount(), 0u);
    EXPECT_EQ(t.conditionalCount(), 0u);
}

// ---------------------------------------------------------------------------
// Binary round-trip
// ---------------------------------------------------------------------------

TEST(TraceIo, EmptyTraceRoundTrip)
{
    Trace t("empty");
    std::ostringstream os;
    writeTrace(t, os);
    std::istringstream is(os.str());
    const Trace back = readTrace(is);
    EXPECT_EQ(back.name(), "empty");
    EXPECT_TRUE(back.empty());
}

TEST(TraceIo, RandomRoundTripExact)
{
    const Trace t = randomTrace(99, 5000);
    std::ostringstream os;
    writeTrace(t, os);
    std::istringstream is(os.str());
    const Trace back = readTrace(is);
    ASSERT_EQ(back.size(), t.size());
    for (std::size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(t[i], back[i]) << "record " << i;
    EXPECT_EQ(back.instructionCount(), t.instructionCount());
}

TEST(TraceIo, FileRoundTrip)
{
    const Trace t = randomTrace(123, 1000);
    const std::string path = "test_trace_roundtrip.imt";
    writeTraceFile(t, path);
    const Trace back = readTraceFile(path);
    EXPECT_EQ(back.size(), t.size());
    for (std::size_t i = 0; i < t.size(); ++i)
        ASSERT_EQ(t[i], back[i]);
    std::remove(path.c_str());
}

TEST(TraceIo, RejectsBadMagic)
{
    std::istringstream is("NOPE....garbage");
    EXPECT_THROW(readTrace(is), TraceFormatError);
}

TEST(TraceIo, RejectsTruncatedBody)
{
    const Trace t = randomTrace(7, 100);
    std::ostringstream os;
    writeTrace(t, os);
    std::string data = os.str();
    data.resize(data.size() / 2);
    std::istringstream is(data);
    EXPECT_THROW(readTrace(is), TraceFormatError);
}

TEST(TraceIo, RejectsUnsupportedVersion)
{
    Trace t("v");
    std::ostringstream os;
    writeTrace(t, os);
    std::string data = os.str();
    data[4] = 99; // version byte
    std::istringstream is(data);
    EXPECT_THROW(readTrace(is), TraceFormatError);
}

TEST(TraceIo, MissingFileThrows)
{
    EXPECT_THROW(readTraceFile("/nonexistent/path/x.imt"),
                 std::runtime_error);
}

TEST(TraceIo, LargePcDeltasSurvive)
{
    Trace t("far");
    t.append(makeRecord(0xffffffff0000ULL, 0x10, false));
    t.append(makeRecord(0x10, 0xffffffffff00ULL, true));
    std::ostringstream os;
    writeTrace(t, os);
    std::istringstream is(os.str());
    const Trace back = readTrace(is);
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0], t[0]);
    EXPECT_EQ(back[1], t[1]);
}

// ---------------------------------------------------------------------------
// TraceStats
// ---------------------------------------------------------------------------

TEST(TraceStats, CountsPerType)
{
    Trace t("s");
    t.append(makeRecord(0x100, 0x80, true));                      // backward
    t.append(makeRecord(0x100, 0x80, true));                      // same pc
    t.append(makeRecord(0x200, 0x300, false));                    // forward
    t.append(makeRecord(0x400, 0x500, true, BranchType::Call));
    const TraceStats s = computeStats(t);
    EXPECT_EQ(s.records, 4u);
    EXPECT_EQ(s.conditionals, 3u);
    EXPECT_EQ(s.takenConditionals, 2u);
    EXPECT_EQ(s.backwardConditionals, 2u);
    EXPECT_EQ(s.staticBranches, 3u);
    EXPECT_EQ(s.staticConditionals, 2u);
    EXPECT_EQ(s.perType.at(BranchType::Call), 1u);
}

TEST(TraceStats, Rates)
{
    Trace t("r");
    t.append(makeRecord(0x10, 0x20, true, BranchType::CondDirect, 9));
    t.append(makeRecord(0x30, 0x40, false, BranchType::CondDirect, 9));
    const TraceStats s = computeStats(t);
    EXPECT_DOUBLE_EQ(s.takenRate(), 0.5);
    EXPECT_DOUBLE_EQ(s.instsPerBranch(), 10.0);
}

TEST(TraceStats, EmptyTraceSafe)
{
    const TraceStats s = computeStats(Trace("e"));
    EXPECT_DOUBLE_EQ(s.takenRate(), 0.0);
    EXPECT_DOUBLE_EQ(s.instsPerBranch(), 0.0);
    EXPECT_FALSE(s.toString().empty());
}
