/**
 * @file
 * Tests for the TAGE engine: geometric series, learning behaviour across
 * history depths, allocation dynamics and storage.
 */

#include <gtest/gtest.h>

#include "src/history/history_manager.hh"
#include "src/predictors/tage.hh"
#include "src/util/rng.hh"

using namespace imli;

namespace
{

/** Minimal standalone harness around the TAGE engine. */
class TageHarness
{
  public:
    explicit TageHarness(const TagePredictor::Config &cfg =
                             TagePredictor::Config())
        : mgr(4096), tage(cfg, mgr)
    {
    }

    bool
    step(std::uint64_t pc, bool taken)
    {
        const auto pred = tage.predict(pc);
        tage.update(pc, taken, pred.taken);
        mgr.push(taken, pc);
        return pred.taken;
    }

    TagePredictor::Prediction
    stepFull(std::uint64_t pc, bool taken)
    {
        const auto pred = tage.predict(pc);
        tage.update(pc, taken, pred.taken);
        mgr.push(taken, pc);
        return pred;
    }

    HistoryManager mgr;
    TagePredictor tage;
};

} // anonymous namespace

// ---------------------------------------------------------------------------
// Geometric lengths
// ---------------------------------------------------------------------------

TEST(GeometricLengths, EndpointsAndMonotonicity)
{
    const auto lengths = geometricLengths(12, 4, 640);
    ASSERT_EQ(lengths.size(), 12u);
    EXPECT_EQ(lengths.front(), 4u);
    EXPECT_EQ(lengths.back(), 640u);
    for (std::size_t i = 1; i < lengths.size(); ++i)
        EXPECT_GT(lengths[i], lengths[i - 1]);
}

TEST(GeometricLengths, RatioRoughlyConstant)
{
    const auto lengths = geometricLengths(10, 2, 512);
    for (std::size_t i = 2; i < lengths.size(); ++i) {
        const double r1 =
            static_cast<double>(lengths[i]) / lengths[i - 1];
        EXPECT_GT(r1, 1.0);
        EXPECT_LT(r1, 4.0);
    }
}

TEST(GeometricLengths, SingleTable)
{
    const auto lengths = geometricLengths(1, 7, 100);
    ASSERT_EQ(lengths.size(), 1u);
    EXPECT_EQ(lengths[0], 7u);
}

TEST(GeometricLengths, DegenerateCloseRange)
{
    const auto lengths = geometricLengths(5, 4, 6);
    ASSERT_EQ(lengths.size(), 5u);
    for (std::size_t i = 1; i < lengths.size(); ++i)
        EXPECT_GT(lengths[i], lengths[i - 1]);
}

// ---------------------------------------------------------------------------
// Learning behaviour
// ---------------------------------------------------------------------------

TEST(Tage, LearnsBias)
{
    TageHarness h;
    int correct = 0;
    for (int i = 0; i < 600; ++i) {
        const bool p = h.step(0x44, true);
        if (i >= 300)
            correct += p ? 1 : 0;
    }
    EXPECT_GT(correct, 295);
}

TEST(Tage, LearnsShortPattern)
{
    TageHarness h;
    static const bool pattern[] = {true, true, false, true, false};
    int correct = 0;
    for (int i = 0; i < 4000; ++i) {
        const bool taken = pattern[i % 5];
        const bool p = h.step(0x80, taken);
        if (i >= 2000)
            correct += (p == taken) ? 1 : 0;
    }
    EXPECT_GT(correct / 2000.0, 0.98);
}

TEST(Tage, LearnsLongPeriodicPattern)
{
    // Period-48 pattern: far beyond bimodal/gshare-14 but well within the
    // geometric history range.
    TageHarness h;
    Xoroshiro128 rng(7);
    bool pattern[48];
    for (auto &b : pattern)
        b = rng.bernoulli(0.5);
    int correct = 0;
    for (int i = 0; i < 30000; ++i) {
        const bool taken = pattern[i % 48];
        const bool p = h.step(0x90, taken);
        if (i >= 20000)
            correct += (p == taken) ? 1 : 0;
    }
    EXPECT_GT(correct / 10000.0, 0.95);
}

TEST(Tage, LearnsDistantCorrelationThroughQuietPath)
{
    // B replays A's outcome from behind 20 predictable filler branches:
    // the 22-branch context repeats (two variants, keyed by A), so a
    // tagged medium-history table captures it.  Note the contrast with
    // the next test: TAGE is a context matcher, not a feature selector.
    TageHarness h;
    Xoroshiro128 rng(11);
    int correct = 0, counted = 0;
    for (int i = 0; i < 12000; ++i) {
        const bool a = rng.bernoulli(0.5);
        h.step(0x100, a);
        for (int n = 0; n < 20; ++n)
            h.step(0x200 + 2 * n, true /* quiet path */);
        const bool p = h.step(0x400, a);
        if (i >= 9000) {
            ++counted;
            correct += (p == a) ? 1 : 0;
        }
    }
    EXPECT_GT(static_cast<double>(correct) / counted, 0.9);
}

TEST(Tage, CannotIsolateCorrelatorBehindNoisyPaths)
{
    // The same correlation behind 20 *random* branches: the global
    // context never repeats and TAGE fails — exactly the Evers et al.
    // limitation that motivates the paper's Section 2.2 (and the reason
    // the IMLI components exist).
    TageHarness h;
    Xoroshiro128 rng(11);
    int correct = 0, counted = 0;
    for (int i = 0; i < 6000; ++i) {
        const bool a = rng.bernoulli(0.5);
        h.step(0x100, a);
        for (int n = 0; n < 20; ++n)
            h.step(0x200 + 2 * n, rng.bernoulli(0.5));
        const bool p = h.step(0x400, a);
        if (i >= 4000) {
            ++counted;
            correct += (p == a) ? 1 : 0;
        }
    }
    EXPECT_LT(static_cast<double>(correct) / counted, 0.65);
}

TEST(Tage, RandomBranchStaysRandom)
{
    TageHarness h;
    Xoroshiro128 rng(13);
    int correct = 0;
    for (int i = 0; i < 8000; ++i) {
        const bool taken = rng.bernoulli(0.5);
        const bool p = h.step(0x70, taken);
        if (i >= 4000)
            correct += (p == taken) ? 1 : 0;
    }
    // No predictor beats a fair coin; anything way above 0.55 would mean
    // the test harness leaks the future.
    EXPECT_LT(correct / 4000.0, 0.58);
    EXPECT_GT(correct / 4000.0, 0.42);
}

TEST(Tage, ProviderFieldsConsistent)
{
    TageHarness h;
    for (int i = 0; i < 2000; ++i) {
        const auto pred = h.stepFull(0x44 + 2 * (i % 3), (i % 3) == 0);
        EXPECT_GE(pred.provider, -1);
        EXPECT_LT(pred.provider,
                  static_cast<int>(h.tage.config().numTables));
        EXPECT_GE(pred.confidence, 0);
        EXPECT_LE(pred.confidence, 2);
    }
}

TEST(Tage, AllocatesTaggedEntriesOnMispredictions)
{
    TageHarness h;
    // Alternation forces base-table mispredictions, which must allocate
    // tagged entries; afterwards some provider >= 0 must appear.
    bool saw_tagged_provider = false;
    for (int i = 0; i < 2000; ++i) {
        const auto pred = h.stepFull(0x44, (i & 1) != 0);
        if (pred.provider >= 0)
            saw_tagged_provider = true;
    }
    EXPECT_TRUE(saw_tagged_provider);
}

TEST(Tage, ConfidentOnStableBranch)
{
    // A never-mispredicted branch stays with the (saturated) base
    // predictor: confidence must be at least medium, never weak.
    TageHarness h;
    int weak = 0;
    for (int i = 0; i < 1000; ++i) {
        const auto pred = h.stepFull(0x44, true);
        if (i >= 500 && pred.confidence == 0)
            ++weak;
    }
    EXPECT_LT(weak, 50);
}

TEST(Tage, StorageInExpectedRange)
{
    HistoryManager mgr(4096);
    TagePredictor tage(TagePredictor::Config(), mgr);
    StorageAccount acct;
    tage.account(acct);
    // Default geometry: ~196 Kbits tagged + 8 Kbits base.
    EXPECT_GT(acct.totalKbits(), 180.0);
    EXPECT_LT(acct.totalKbits(), 230.0);
}

TEST(Tage, HistoryLengthsMatchConfig)
{
    HistoryManager mgr(4096);
    TagePredictor::Config cfg;
    cfg.minHistory = 4;
    cfg.maxHistory = 640;
    TagePredictor tage(cfg, mgr);
    EXPECT_EQ(tage.historyLengths().front(), 4u);
    EXPECT_EQ(tage.historyLengths().back(), 640u);
}
