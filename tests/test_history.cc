/**
 * @file
 * Unit and property tests for src/history: global history, folded
 * histories, the history manager, local history and the in-flight window.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "src/history/folded_history.hh"
#include "src/history/global_history.hh"
#include "src/history/history_manager.hh"
#include "src/history/inflight_window.hh"
#include "src/history/local_history.hh"
#include "src/util/rng.hh"

using namespace imli;

// ---------------------------------------------------------------------------
// GlobalHistory
// ---------------------------------------------------------------------------

TEST(GlobalHistory, MostRecentBitFirst)
{
    GlobalHistory h(64);
    h.push(true, 0x10);
    h.push(false, 0x20);
    EXPECT_FALSE(h.bit(0)); // most recent
    EXPECT_TRUE(h.bit(1));
}

TEST(GlobalHistory, RecentPacksLowBitFirst)
{
    GlobalHistory h(64);
    h.push(true, 0x10);  // age 2
    h.push(false, 0x20); // age 1
    h.push(true, 0x30);  // age 0
    EXPECT_EQ(h.recent(3), 0b101u);
}

TEST(GlobalHistory, BeforeStartReadsZero)
{
    GlobalHistory h(64);
    h.push(true, 0x10);
    EXPECT_FALSE(h.bit(5));
}

TEST(GlobalHistory, WrapsAroundCapacity)
{
    GlobalHistory h(8);
    for (int i = 0; i < 20; ++i)
        h.push(i % 3 == 0, 0x10);
    // Bit 0 corresponds to i = 19 -> 19 % 3 != 0 -> false.
    EXPECT_FALSE(h.bit(0));
    // Bit 1 -> i = 18 -> divisible by 3 -> true.
    EXPECT_TRUE(h.bit(1));
}

TEST(GlobalHistory, CheckpointRestore)
{
    GlobalHistory h(128);
    for (int i = 0; i < 10; ++i)
        h.push(i & 1, 0x10 + 2 * i);
    const auto cp = h.save();
    const std::uint64_t before = h.recent(10);
    const std::uint64_t path_before = h.path();

    for (int i = 0; i < 5; ++i)
        h.push(true, 0x999);
    h.restore(cp);

    EXPECT_EQ(h.recent(10), before);
    EXPECT_EQ(h.path(), path_before);
    EXPECT_EQ(h.headPointer(), 10u);
}

TEST(GlobalHistory, PathHistoryTracksPcBits)
{
    GlobalHistory a(64), b(64);
    a.push(true, 0x10);
    b.push(true, 0x18);
    EXPECT_NE(a.path(), b.path());
}

// ---------------------------------------------------------------------------
// FoldedHistory: the incremental fold must equal the from-scratch fold.
// ---------------------------------------------------------------------------

class FoldedHistoryProperty
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(FoldedHistoryProperty, IncrementalMatchesRecompute)
{
    const auto [length, width] = GetParam();
    GlobalHistory hist(2048);
    FoldedHistory fold(length, width);
    Xoroshiro128 rng(length * 131 + width);

    for (int i = 0; i < 3000; ++i) {
        const bool bit = rng.bernoulli(0.5);
        // Incremental update consumes the outgoing bit before the push.
        fold.update(bit, hist.bit(length - 1));
        hist.push(bit, 0x40 + 2 * (i & 0xff));

        if (i % 97 == 0) {
            FoldedHistory ref(length, width);
            ref.recompute(hist);
            ASSERT_EQ(fold.value(), ref.value())
                << "diverged at step " << i << " (L=" << length
                << ", W=" << width << ")";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, FoldedHistoryProperty,
    ::testing::Values(std::make_tuple(4u, 10u), std::make_tuple(10u, 10u),
                      std::make_tuple(16u, 8u), std::make_tuple(63u, 9u),
                      std::make_tuple(64u, 9u), std::make_tuple(130u, 11u),
                      std::make_tuple(301u, 12u), std::make_tuple(640u, 10u),
                      std::make_tuple(600u, 11u), std::make_tuple(7u, 7u)));

TEST(FoldedHistory, ValueStaysInWidth)
{
    GlobalHistory hist(1024);
    FoldedHistory fold(100, 9);
    Xoroshiro128 rng(5);
    for (int i = 0; i < 500; ++i) {
        fold.update(rng.bernoulli(0.7), hist.bit(99));
        hist.push(rng.bernoulli(0.7), 0x10);
        ASSERT_LT(fold.value(), 1u << 9);
    }
}

// ---------------------------------------------------------------------------
// HistoryManager
// ---------------------------------------------------------------------------

TEST(HistoryManager, KeepsFoldsCoherent)
{
    HistoryManager mgr(2048);
    FoldedHistory *f1 = mgr.createFold(37, 9);
    FoldedHistory *f2 = mgr.createFold(200, 11);
    Xoroshiro128 rng(17);
    for (int i = 0; i < 2000; ++i)
        mgr.push(rng.bernoulli(0.5), 0x100 + 2 * (i & 0x3f));

    FoldedHistory ref1(37, 9), ref2(200, 11);
    ref1.recompute(mgr.history());
    ref2.recompute(mgr.history());
    EXPECT_EQ(f1->value(), ref1.value());
    EXPECT_EQ(f2->value(), ref2.value());
}

TEST(HistoryManager, RestoreRecomputesFolds)
{
    HistoryManager mgr(2048);
    FoldedHistory *fold = mgr.createFold(50, 10);
    Xoroshiro128 rng(23);
    for (int i = 0; i < 500; ++i)
        mgr.push(rng.bernoulli(0.5), 0x10);

    const auto cp = mgr.save();
    const std::uint32_t value = fold->value();
    for (int i = 0; i < 100; ++i)
        mgr.push(true, 0x20);
    mgr.restore(cp);
    EXPECT_EQ(fold->value(), value);
}

TEST(FoldedHistory, RewindInvertsUpdateExactly)
{
    // rewind(in, out) must return the fold to its pre-update value for
    // every geometry, including width-1 and outPoint-0 corners — the
    // pipeline simulator's incremental restores depend on exactness.
    for (const auto &[length, width] :
         {std::make_tuple(4u, 10u), std::make_tuple(10u, 10u),
          std::make_tuple(7u, 1u), std::make_tuple(640u, 10u),
          std::make_tuple(63u, 9u), std::make_tuple(16u, 8u)}) {
        FoldedHistory fold(length, width);
        Xoroshiro128 rng(length * 7 + width);
        for (int i = 0; i < 1000; ++i) {
            const bool in = rng.bernoulli(0.5);
            const bool out = rng.bernoulli(0.5);
            const std::uint32_t before = fold.value();
            fold.update(in, out);
            FoldedHistory redo = fold;
            redo.rewind(in, out);
            ASSERT_EQ(redo.value(), before)
                << "L=" << length << " W=" << width << " step " << i;
        }
    }
}

TEST(HistoryManager, IncrementalRewindMatchesRecompute)
{
    // restore() now walks folds incrementally; it must land on exactly
    // the recompute() values at the restored head, for short and long
    // rewind distances alike.
    HistoryManager mgr(4096);
    FoldedHistory *f1 = mgr.createFold(37, 9);
    FoldedHistory *f2 = mgr.createFold(301, 12);
    FoldedHistory *f3 = mgr.createFold(640, 10);
    Xoroshiro128 rng(41);
    for (int i = 0; i < 1500; ++i)
        mgr.push(rng.bernoulli(0.6), 0x100 + 2 * (i & 0x7f));

    for (const int distance : {1, 2, 17, 100, 1000}) {
        const auto cp = mgr.save();
        const std::uint32_t v1 = f1->value();
        const std::uint32_t v2 = f2->value();
        const std::uint32_t v3 = f3->value();
        for (int i = 0; i < distance; ++i)
            mgr.push(rng.bernoulli(0.3), 0x40 + 2 * (i & 0x3f));
        mgr.restore(cp);
        ASSERT_EQ(f1->value(), v1) << "distance " << distance;
        ASSERT_EQ(f2->value(), v2) << "distance " << distance;
        ASSERT_EQ(f3->value(), v3) << "distance " << distance;

        FoldedHistory ref(301, 12);
        ref.recompute(mgr.history());
        ASSERT_EQ(f2->value(), ref.value()) << "distance " << distance;
    }
}

TEST(HistoryManager, ForwardRestoreReturnsToTheFuture)
{
    // The pipeline commit sandwich rewinds to a branch's fetch point and
    // then restores *forward* to the fetch front; as long as the buffer
    // bits were not overwritten, the folds must come back bit-exact.
    HistoryManager mgr(2048);
    FoldedHistory *fold = mgr.createFold(130, 11);
    Xoroshiro128 rng(59);
    for (int i = 0; i < 700; ++i)
        mgr.push(rng.bernoulli(0.5), 0x10 + 2 * (i & 0x1f));

    const auto past = mgr.save();
    std::vector<bool> bits;
    for (int i = 0; i < 64; ++i) {
        const bool b = rng.bernoulli(0.5);
        bits.push_back(b);
        mgr.push(b, 0x200 + 2 * i);
    }
    const auto front = mgr.save();
    const std::uint32_t frontValue = fold->value();

    mgr.restore(past);
    // Re-pushing the identical bits leaves the buffer unchanged, which is
    // the correct-prediction commit case (resolved bit == speculated bit).
    mgr.push(bits[0], 0x200);
    mgr.restore(front);
    EXPECT_EQ(mgr.history().headPointer(), front.head);
    EXPECT_EQ(fold->value(), frontValue);
}

// ---------------------------------------------------------------------------
// LocalHistoryTable
// ---------------------------------------------------------------------------

TEST(LocalHistory, ShiftsPerBranch)
{
    LocalHistoryTable t(256, 8);
    t.update(0x100, true);
    t.update(0x100, false);
    t.update(0x100, true);
    EXPECT_EQ(t.read(0x100), 0b101u);
}

TEST(LocalHistory, IndependentEntries)
{
    LocalHistoryTable t(256, 8);
    t.update(0x100, true);
    // A PC mapping to a different entry is unaffected.
    std::uint64_t other = 0;
    for (std::uint64_t pc = 0x200; pc < 0x4000; pc += 2) {
        if (t.index(pc) != t.index(0x100)) {
            other = pc;
            break;
        }
    }
    ASSERT_NE(other, 0u);
    EXPECT_EQ(t.read(other), 0u);
}

TEST(LocalHistory, WidthMasked)
{
    LocalHistoryTable t(64, 4);
    for (int i = 0; i < 16; ++i)
        t.update(0x40, true);
    EXPECT_EQ(t.read(0x40), 0xfu);
}

TEST(LocalHistory, StorageAccounting)
{
    LocalHistoryTable t(256, 24);
    StorageAccount acct;
    t.account(acct, "local");
    EXPECT_EQ(acct.totalBits(), 256u * 24u);
}

// ---------------------------------------------------------------------------
// InflightWindow
// ---------------------------------------------------------------------------

TEST(InflightWindow, LookupFindsNewestInstance)
{
    InflightWindow w(8, 16);
    w.insert(3, 0b01);
    w.insert(3, 0b10);
    const auto hit = w.lookup(3);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, 0b10u);
}

TEST(InflightWindow, MissReturnsEmpty)
{
    InflightWindow w(8, 16);
    w.insert(1, 7);
    EXPECT_FALSE(w.lookup(2).has_value());
}

TEST(InflightWindow, SearchCostCounted)
{
    InflightWindow w(8, 16);
    w.insert(1, 1);
    w.insert(2, 2);
    w.insert(3, 3);
    (void)w.lookup(1); // visits 3 entries (youngest first)
    EXPECT_EQ(w.entriesSearched(), 3u);
    (void)w.lookup(3); // visits 1 entry
    EXPECT_EQ(w.entriesSearched(), 4u);
}

TEST(InflightWindow, SquashAfterTicket)
{
    InflightWindow w(8, 16);
    const auto t1 = w.insert(1, 1);
    w.insert(2, 2);
    w.insert(3, 3);
    w.squashAfter(t1);
    EXPECT_EQ(w.size(), 1u);
    EXPECT_TRUE(w.lookup(1).has_value());
    EXPECT_FALSE(w.lookup(2).has_value());
}

TEST(InflightWindow, CapacityEvictsOldest)
{
    InflightWindow w(2, 16);
    w.insert(1, 1);
    w.insert(2, 2);
    w.insert(3, 3);
    EXPECT_EQ(w.size(), 2u);
    EXPECT_FALSE(w.lookup(1).has_value());
}

TEST(InflightWindow, CommitRemovesOldest)
{
    InflightWindow w(4, 16);
    w.insert(1, 1);
    w.insert(2, 2);
    w.commitOldest();
    EXPECT_FALSE(w.lookup(1).has_value());
    EXPECT_TRUE(w.lookup(2).has_value());
}

TEST(InflightWindow, StorageScalesWithCapacity)
{
    InflightWindow small(16, 24);
    InflightWindow large(64, 24);
    EXPECT_LT(small.storageBits(), large.storageBits());
    EXPECT_EQ(large.storageBits(), 64u * (24 + 16));
}
