/**
 * @file
 * Cross-cutting property sweeps (parameterised): determinism of every
 * predictor configuration, trace format round-trips over random content,
 * loop-nest correlation invariants across geometries, and suite-wide
 * generator health.  These are the "for all X" counterparts of the
 * per-module unit tests.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <tuple>

#include "src/predictors/zoo.hh"
#include "src/sim/simulator.hh"
#include "src/trace/trace_io.hh"
#include "src/trace/trace_stats.hh"
#include "src/trace/trace_text.hh"
#include "src/workloads/suite.hh"
#include "src/workloads/two_dim_loop.hh"

using namespace imli;

// ---------------------------------------------------------------------------
// Every predictor spec is deterministic and sane on every seed.
// ---------------------------------------------------------------------------

class SpecSeedProperty
    : public ::testing::TestWithParam<std::tuple<std::string, int>>
{
};

TEST_P(SpecSeedProperty, DeterministicAndSane)
{
    const auto [spec, seed_idx] = GetParam();
    BenchmarkSpec bench = findBenchmark("WS03");
    bench.seed += static_cast<std::uint64_t>(seed_idx) * 0x9e3779b9;
    const Trace trace = generateTrace(bench, 6000);

    PredictorPtr a = makePredictor(spec);
    PredictorPtr b = makePredictor(spec);
    const SimResult ra = simulate(*a, trace);
    const SimResult rb = simulate(*b, trace);

    EXPECT_EQ(ra.mispredictions, rb.mispredictions) << spec;
    EXPECT_EQ(ra.conditionals, rb.conditionals);
    EXPECT_GT(ra.accuracy(), 0.5) << spec;
    EXPECT_LE(ra.mispredictions, ra.conditionals);
}

INSTANTIATE_TEST_SUITE_P(
    ZooTimesSeeds, SpecSeedProperty,
    ::testing::Combine(::testing::Values("tage-gsc", "tage-gsc+i",
                                         "tage-gsc+i+l", "tage-gsc+wh",
                                         "gehl", "gehl+i", "gehl+l",
                                         "gehl+sic+wh"),
                       ::testing::Values(0, 1, 2)));

// ---------------------------------------------------------------------------
// Trace formats: binary and text round-trips over random content.
// ---------------------------------------------------------------------------

class TraceRoundTripProperty : public ::testing::TestWithParam<int>
{
  protected:
    Trace
    makeTrace() const
    {
        BenchmarkSpec bench = findBenchmark("MM-4");
        bench.seed = 77 + static_cast<std::uint64_t>(GetParam());
        return generateTrace(bench, 3000);
    }
};

TEST_P(TraceRoundTripProperty, BinaryExact)
{
    const Trace t = makeTrace();
    std::ostringstream os;
    writeTrace(t, os);
    std::istringstream is(os.str());
    const Trace back = readTrace(is);
    ASSERT_EQ(back.size(), t.size());
    for (std::size_t i = 0; i < t.size(); ++i)
        ASSERT_EQ(t[i], back[i]);
    EXPECT_EQ(back.instructionCount(), t.instructionCount());
    EXPECT_EQ(back.name(), t.name());
}

TEST_P(TraceRoundTripProperty, TextExact)
{
    const Trace t = makeTrace();
    std::ostringstream os;
    writeTraceText(t, os);
    std::istringstream is(os.str());
    const Trace back = readTraceText(is);
    ASSERT_EQ(back.size(), t.size());
    for (std::size_t i = 0; i < t.size(); ++i)
        ASSERT_EQ(t[i], back[i]);
}

TEST_P(TraceRoundTripProperty, TextAndBinaryAgree)
{
    const Trace t = makeTrace();
    std::ostringstream bin, txt;
    writeTrace(t, bin);
    writeTraceText(t, txt);
    std::istringstream bin_in(bin.str()), txt_in(txt.str());
    const Trace from_bin = readTrace(bin_in);
    const Trace from_txt = readTraceText(txt_in);
    ASSERT_EQ(from_bin.size(), from_txt.size());
    for (std::size_t i = 0; i < from_bin.size(); ++i)
        ASSERT_EQ(from_bin[i], from_txt[i]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceRoundTripProperty,
                         ::testing::Values(0, 1, 2, 3, 4));

TEST(TraceText, RejectsGarbage)
{
    std::istringstream is("not a trace\n");
    EXPECT_THROW(readTraceText(is), TraceFormatError);
    std::istringstream is2("imli-trace-v1 x\nzzz\n");
    EXPECT_THROW(readTraceText(is2), TraceFormatError);
}

// ---------------------------------------------------------------------------
// Loop-nest correlation invariants across geometries.
// ---------------------------------------------------------------------------

class NestGeometryProperty
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
  protected:
    static std::vector<std::vector<bool>>
    matrixOf(BodyClass cls, unsigned trip, unsigned outers,
             std::uint64_t seed)
    {
        TwoDimLoopParams p;
        p.outerIters = outers;
        p.innerTripMin = trip;
        p.innerTripMax = trip;
        p.rowMutateProb = 0.0;
        p.body.push_back({cls, 0.0, 0.6, 0.5});
        TwoDimLoopKernel kernel(p, 0x400000, Xoroshiro128(seed));
        Trace trace;
        kernel.emitRound(trace);

        std::vector<std::vector<bool>> matrix;
        std::vector<bool> row;
        for (const BranchRecord &rec : trace.branches()) {
            if (rec.pc == kernel.bodyBranchPc(0))
                row.push_back(rec.taken);
            else if (rec.pc == kernel.innerBackedgePc() && !rec.taken) {
                matrix.push_back(row);
                row.clear();
            }
        }
        return matrix;
    }
};

TEST_P(NestGeometryProperty, SameIterHoldsForAllGeometries)
{
    const auto [trip, outers] = GetParam();
    const auto m = matrixOf(BodyClass::SameIter, trip, outers, trip * 31);
    ASSERT_EQ(m.size(), outers);
    for (std::size_t n = 1; n < m.size(); ++n)
        for (std::size_t i = 0; i < trip; ++i)
            ASSERT_EQ(m[n][i], m[n - 1][i]);
}

TEST_P(NestGeometryProperty, DiagPrevHoldsForAllGeometries)
{
    const auto [trip, outers] = GetParam();
    const auto m = matrixOf(BodyClass::DiagPrev, trip, outers, trip * 37);
    for (std::size_t n = 1; n < m.size(); ++n)
        for (std::size_t i = 1; i < trip; ++i)
            ASSERT_EQ(m[n][i], m[n - 1][i - 1]);
}

TEST_P(NestGeometryProperty, InvertedHoldsForAllGeometries)
{
    const auto [trip, outers] = GetParam();
    const auto m = matrixOf(BodyClass::Inverted, trip, outers, trip * 41);
    for (std::size_t n = 1; n < m.size(); ++n)
        for (std::size_t i = 0; i < trip; ++i)
            ASSERT_NE(m[n][i], m[n - 1][i]);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, NestGeometryProperty,
    ::testing::Combine(::testing::Values(4u, 7u, 16u, 33u, 60u),
                       ::testing::Values(3u, 10u, 25u)));

// ---------------------------------------------------------------------------
// Suite-wide generator health: every benchmark generates a usable trace.
// ---------------------------------------------------------------------------

class SuiteHealthProperty : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SuiteHealthProperty, GeneratesUsableTrace)
{
    const Trace t = generateTrace(findBenchmark(GetParam()), 8000);
    const TraceStats s = computeStats(t);
    EXPECT_GE(t.size(), 8000u);
    EXPECT_GT(s.conditionals, t.size() / 2) << "mostly conditionals";
    EXPECT_GT(s.takenRate(), 0.25);
    EXPECT_LT(s.takenRate(), 0.95);
    EXPECT_GT(s.instsPerBranch(), 3.0);
    EXPECT_LT(s.instsPerBranch(), 10.0);
    EXPECT_GE(s.staticConditionals, 10u);
    EXPECT_LT(s.staticConditionals, 5000u);
}

namespace
{

std::vector<std::string>
allBenchmarkNames()
{
    std::vector<std::string> names;
    for (const auto &b : fullSuite())
        names.push_back(b.name);
    return names;
}

} // anonymous namespace

INSTANTIATE_TEST_SUITE_P(All80, SuiteHealthProperty,
                         ::testing::ValuesIn(allBenchmarkNames()));
