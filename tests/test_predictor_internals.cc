/**
 * @file
 * Edge-case tests for predictor internals that the behavioural suites
 * exercise only implicitly: TAGE usefulness ageing under allocation
 * pressure, the host-side wormhole trip-count feed, and storage-ledger
 * composition in the hosts.
 */

#include <gtest/gtest.h>

#include "src/history/history_manager.hh"
#include "src/predictors/tage.hh"
#include "src/predictors/tage_gsc.hh"
#include "src/predictors/zoo.hh"
#include "src/sim/simulator.hh"
#include "src/util/rng.hh"
#include "src/workloads/two_dim_loop.hh"

using namespace imli;

// ---------------------------------------------------------------------------
// TAGE under allocation pressure
// ---------------------------------------------------------------------------

TEST(TageInternals, SurvivesAdversarialAllocationStorm)
{
    // Thousands of distinct, randomly-behaving branches force constant
    // allocation; the tick-based u-bit ageing must keep the predictor
    // functional (no assert, no livelock) and still able to learn a
    // stable branch planted in the storm.
    HistoryManager mgr(4096);
    TagePredictor tage(TagePredictor::Config(), mgr);
    Xoroshiro128 rng(5);

    auto step = [&](std::uint64_t pc, bool taken) {
        const auto pred = tage.predict(pc);
        tage.update(pc, taken, pred.taken);
        mgr.push(taken, pc);
        return pred.taken;
    };

    int planted_correct = 0, planted_seen = 0;
    for (int i = 0; i < 60000; ++i) {
        const std::uint64_t pc = 0x10000 + rng.below(4096) * 2;
        step(pc, rng.bernoulli(0.5));
        if (i % 7 == 0) {
            const bool p = step(0x44, true); // the stable planted branch
            if (i > 30000) {
                ++planted_seen;
                planted_correct += p ? 1 : 0;
            }
        }
    }
    ASSERT_GT(planted_seen, 1000);
    EXPECT_GT(static_cast<double>(planted_correct) / planted_seen, 0.97);
}

TEST(TageInternals, UpdateAssertsOnUnpairedCall)
{
    // The predict/update pairing contract is load-bearing; in debug
    // builds an unpaired update must trip the assertion.
    HistoryManager mgr(4096);
    TagePredictor tage(TagePredictor::Config(), mgr);
    tage.predict(0x44);
#ifndef NDEBUG
    EXPECT_DEATH(tage.update(0x88, true, true), "pair");
#else
    GTEST_SKIP() << "assertions disabled in this build";
#endif
}

// ---------------------------------------------------------------------------
// Wormhole trip-count feed through the host
// ---------------------------------------------------------------------------

TEST(HostInternals, WormholeReceivesTripCountsFromLoopPredictor)
{
    // End-to-end: a constant-trip diagonal nest through the full
    // TAGE-GSC+WH host.  The only way WH can beat the base here is if the
    // host's loop predictor learned the trip count and fed it through.
    TwoDimLoopParams params;
    params.outerIters = 20;
    params.innerTripMin = 16;
    params.innerTripMax = 16;
    params.rowMutateProb = 0.0;
    params.body.push_back({BodyClass::DiagPrev, 0.0, 0.6, 0.5});
    params.body.push_back({BodyClass::Random, 0.0, 0.6, 0.5});
    TwoDimLoopKernel kernel(params, 0x400000, Xoroshiro128(11));
    Trace trace;
    for (int r = 0; r < 120; ++r)
        kernel.emitRound(trace);

    PredictorPtr base = makePredictor("tage-gsc");
    PredictorPtr wh = makePredictor("tage-gsc+wh");
    const double base_mpki = simulate(*base, trace).mpki();
    const double wh_mpki = simulate(*wh, trace).mpki();
    EXPECT_LT(wh_mpki, base_mpki * 0.8)
        << "WH must capture the diagonal via the loop predictor's trip "
           "count";
}

TEST(HostInternals, WormholeInertWithoutInnerLoops)
{
    // A loop-free branch stream: the trip-count feed never engages and
    // WH must be bit-identical to the base.
    Xoroshiro128 rng(13);
    Trace trace("flat");
    for (int i = 0; i < 30000; ++i) {
        BranchRecord rec;
        rec.pc = 0x1000 + (i % 37) * 0x10;
        rec.target = rec.pc + 0x40; // all forward
        rec.type = BranchType::CondDirect;
        rec.taken = rng.bernoulli(0.6);
        rec.instsBefore = 4;
        trace.append(rec);
    }
    PredictorPtr base = makePredictor("tage-gsc");
    PredictorPtr wh = makePredictor("tage-gsc+wh");
    const SimResult rb = simulate(*base, trace);
    const SimResult rw = simulate(*wh, trace);
    EXPECT_EQ(rb.mispredictions, rw.mispredictions);
}

// ---------------------------------------------------------------------------
// Storage-ledger composition
// ---------------------------------------------------------------------------

TEST(HostInternals, StorageLedgerItemizesEveryAddon)
{
    const auto has_item = [](const StorageAccount &acct,
                             const std::string &needle) {
        for (const auto &item : acct.items())
            if (item.name.find(needle) != std::string::npos)
                return true;
        return false;
    };

    const auto base = makePredictor("tage-gsc")->storage();
    EXPECT_TRUE(has_item(base, "tage/tagged"));
    EXPECT_TRUE(has_item(base, "bias"));
    EXPECT_TRUE(has_item(base, "gsc-global"));
    EXPECT_FALSE(has_item(base, "imli-sic"));

    const auto imli = makePredictor("tage-gsc+i")->storage();
    EXPECT_TRUE(has_item(imli, "imli-sic"));
    EXPECT_TRUE(has_item(imli, "imli-oh"));
    EXPECT_TRUE(has_item(imli, "imli/history_table"));
    EXPECT_TRUE(has_item(imli, "imli/pipe"));

    const auto full = makePredictor("tage-gsc+i+l+wh")->storage();
    EXPECT_TRUE(has_item(full, "local"));
    EXPECT_TRUE(has_item(full, "loop"));
    EXPECT_TRUE(has_item(full, "wormhole"));

    // The ledger must be additive: composed total equals the sum of its
    // own items.
    std::uint64_t sum = 0;
    for (const auto &item : full.items())
        sum += item.bits;
    EXPECT_EQ(sum, full.totalBits());
}

TEST(HostInternals, GehlLedgerMatchesTageStructure)
{
    const auto gehl = makePredictor("gehl+i")->storage();
    bool has_gehl_bank = false, has_sic = false;
    for (const auto &item : gehl.items()) {
        if (item.name == "gehl")
            has_gehl_bank = true;
        if (item.name == "imli-sic")
            has_sic = true;
    }
    EXPECT_TRUE(has_gehl_bank);
    EXPECT_TRUE(has_sic);
}
