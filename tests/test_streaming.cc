/**
 * @file
 * Streaming-engine tests: the pull-based BranchSource backends must be
 * record-identical to the materialized path, simulateMany must match N
 * independent simulate() runs, the suite runner must produce the exact
 * cell matrix of a materialized reference run at any worker count, and
 * the generator-backed path must keep resident trace memory at O(chunk)
 * rather than O(trace).
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/predictors/zoo.hh"
#include "src/sim/simulator.hh"
#include "src/sim/suite_runner.hh"
#include "src/trace/branch_source.hh"
#include "src/trace/cbp_reader.hh"
#include "src/trace/trace_io.hh"
#include "src/workloads/generator_source.hh"
#include "src/workloads/suite.hh"

using namespace imli;

namespace
{

void
expectSameRecords(const Trace &a, const Trace &b)
{
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.instructionCount(), b.instructionCount());
    ASSERT_EQ(a.conditionalCount(), b.conditionalCount());
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_TRUE(a[i] == b[i]) << "record " << i;
}

void
expectSameResult(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.traceName, b.traceName);
    EXPECT_EQ(a.predictorName, b.predictorName);
    EXPECT_EQ(a.conditionals, b.conditionals);
    EXPECT_EQ(a.mispredictions, b.mispredictions);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.perPcMispredictions, b.perPcMispredictions);
}

/** Exact comparison of two results matrices, doubles compared bitwise. */
void
expectBitIdentical(const SuiteResults &a, const SuiteResults &b)
{
    ASSERT_EQ(a.configs, b.configs);
    ASSERT_EQ(a.cells.size(), b.cells.size());
    for (std::size_t i = 0; i < a.cells.size(); ++i) {
        const SuiteCell &x = a.cells[i];
        const SuiteCell &y = b.cells[i];
        EXPECT_EQ(x.benchmark, y.benchmark) << "cell " << i;
        EXPECT_EQ(x.suite, y.suite) << "cell " << i;
        EXPECT_EQ(x.config, y.config) << "cell " << i;
        EXPECT_EQ(x.mispredictions, y.mispredictions) << "cell " << i;
        EXPECT_EQ(x.conditionals, y.conditionals) << "cell " << i;
        EXPECT_EQ(x.instructions, y.instructions) << "cell " << i;
        EXPECT_EQ(std::memcmp(&x.mpki, &y.mpki, sizeof(double)), 0)
            << "cell " << i << ": mpki differs in bit pattern";
    }
}

std::string
tempPath(const std::string &leaf)
{
    // Process-unique: ctest runs each discovered test in its own process,
    // possibly in parallel, and shared paths would race.
    return ::testing::TempDir() + leaf + "." + std::to_string(::getpid());
}

} // anonymous namespace

// ---------------------------------------------------------------------
// Source backends reproduce the materialized record stream exactly.
// ---------------------------------------------------------------------

TEST(GeneratorSource, DrainMatchesGenerateTraceAtOddChunkSizes)
{
    const BenchmarkSpec bench = findBenchmark("MM07");
    const Trace reference = generateTrace(bench, 12000);
    for (std::size_t chunk : {std::size_t(1), std::size_t(7),
                              std::size_t(997), std::size_t(1u << 20)}) {
        GeneratorBranchSource source(bench, 12000, chunk);
        const Trace drained = drainSource(source);
        EXPECT_EQ(drained.name(), reference.name());
        expectSameRecords(reference, drained);
        EXPECT_EQ(source.emittedRecords(), reference.size());
    }
}

TEST(GeneratorSource, ResetReplaysTheIdenticalStream)
{
    GeneratorBranchSource source(findBenchmark("WS03"), 6000, 251);
    const Trace first = drainSource(source);
    EXPECT_TRUE(source.nextChunk().empty()) << "exhausted source";
    source.reset();
    const Trace second = drainSource(source);
    expectSameRecords(first, second);
}

TEST(GeneratorSource, BufferStaysChunkBoundedNotTraceSized)
{
    // 60000-record stream, 2048-record chunks: the buffer must never
    // approach the stream length — only chunk + the one kernel round that
    // crossed the boundary (rounds are a few thousand records at most).
    GeneratorBranchSource source(findBenchmark("MM07"), 60000, 2048);
    const Trace drained = drainSource(source);
    ASSERT_GE(drained.size(), 60000u);
    EXPECT_LE(source.peakBufferedRecords(), 2048u + 8192u);
}

TEST(TraceSource, ChunksAliasTheTraceAndCoverIt)
{
    const Trace trace = generateTrace(findBenchmark("WS03"), 3000);
    TraceBranchSource source(trace, 100);
    std::size_t covered = 0;
    for (BranchSpan span = source.nextChunk(); !span.empty();
         span = source.nextChunk()) {
        EXPECT_LE(span.count, 100u);
        EXPECT_EQ(span.records, trace.branches().data() + covered)
            << "spans must alias the trace storage, not copy it";
        covered += span.count;
    }
    EXPECT_EQ(covered, trace.size());

    const Trace none("empty");
    TraceBranchSource empty(none);
    EXPECT_TRUE(empty.nextChunk().empty());
}

TEST(FileSource, DrainMatchesReadTraceFileAndResets)
{
    const Trace trace = generateTrace(findBenchmark("SPEC2K6-12"), 8000);
    const std::string path = tempPath("imli_file_source.imt");
    writeTraceFile(trace, path);

    FileBranchSource source(path, 313);
    EXPECT_EQ(source.name(), trace.name());
    EXPECT_EQ(source.totalRecords(), trace.size());
    const Trace drained = drainSource(source);
    expectSameRecords(readTraceFile(path), drained);
    expectSameRecords(trace, drained);

    // Rewind mid-stream: a fresh full pass must still be exact.
    source.reset();
    (void)source.nextChunk();
    source.reset();
    expectSameRecords(trace, drainSource(source));
}

TEST(FileSource, StreamingWriterProducesByteIdenticalFiles)
{
    const BenchmarkSpec bench = findBenchmark("MM-4");
    const Trace trace = generateTrace(bench, 7000);
    const std::string materialized = tempPath("imli_writer_mat.imt");
    const std::string streamed = tempPath("imli_writer_stream.imt");
    writeTraceFile(trace, materialized);

    GeneratorBranchSource source(bench, 7000, 509);
    EXPECT_EQ(writeTraceFile(source, streamed), trace.size());

    std::ifstream a(materialized, std::ios::binary);
    std::ifstream b(streamed, std::ios::binary);
    const std::string bytes_a((std::istreambuf_iterator<char>(a)),
                              std::istreambuf_iterator<char>());
    const std::string bytes_b((std::istreambuf_iterator<char>(b)),
                              std::istreambuf_iterator<char>());
    EXPECT_EQ(bytes_a, bytes_b);
}

// ---------------------------------------------------------------------
// Simulation equivalence: every known predictor spec, on generated and
// file-round-tripped sources.
// ---------------------------------------------------------------------

class StreamingSpecEquivalence : public ::testing::TestWithParam<std::string>
{
};

TEST_P(StreamingSpecEquivalence, GeneratedAndFileSourcesMatchMaterialized)
{
    const BenchmarkSpec bench = findBenchmark("WS03");
    const Trace trace = generateTrace(bench, 4000);
    const std::string path = tempPath("imli_spec_equivalence.imt");
    writeTraceFile(trace, path);

    SimOptions opt;
    opt.collectPerPc = true;
    PredictorPtr materialized = makePredictor(GetParam());
    const SimResult base = simulate(*materialized, trace, opt);

    PredictorPtr generated = makePredictor(GetParam());
    GeneratorBranchSource gen(bench, 4000, 513);
    expectSameResult(base, simulate(*generated, gen, opt));

    PredictorPtr file = makePredictor(GetParam());
    FileBranchSource round_tripped(path, 257);
    expectSameResult(base, simulate(*file, round_tripped, opt));
}

INSTANTIATE_TEST_SUITE_P(AllSpecs, StreamingSpecEquivalence,
                         ::testing::ValuesIn(knownSpecs()));

// ---------------------------------------------------------------------
// Chunk-boundary edge cases.
// ---------------------------------------------------------------------

TEST(StreamingChunks, BoundaryCasesMatchWholeTracePass)
{
    const Trace trace = generateTrace(findBenchmark("CLIENT02"), 5000);
    struct Case
    {
        std::size_t chunk;
        std::uint64_t warmup;
    };
    const std::vector<Case> cases = {
        {1, 0},                  // chunk size 1
        {trace.size() + 100, 0}, // chunk larger than the whole trace
        {64, 100},               // warm-up ends inside the second chunk
        {64, 64},                // warm-up ends exactly on a boundary
        {64, trace.size() + 5},  // warm-up longer than the stream
    };
    for (const Case &c : cases) {
        SimOptions opt;
        opt.warmupBranches = c.warmup;
        opt.collectPerPc = true;
        PredictorPtr a = makePredictor("tage-gsc");
        const SimResult whole = simulate(*a, trace, opt);
        PredictorPtr b = makePredictor("tage-gsc");
        TraceBranchSource chunked(trace, c.chunk);
        const SimResult streamed = simulate(*b, chunked, opt);
        expectSameResult(whole, streamed);
        if (c.warmup >= trace.size())
            EXPECT_EQ(streamed.conditionals, 0u);
    }
}

// ---------------------------------------------------------------------
// simulateMany: single-pass multi-predictor == N independent passes.
// ---------------------------------------------------------------------

TEST(SimulateMany, MatchesIndependentRunsPerPredictor)
{
    const std::vector<std::string> specs = {"bimodal", "gshare", "tage-gsc",
                                            "tage-gsc+i", "gehl+i"};
    const BenchmarkSpec bench = findBenchmark("SPEC2K6-04");

    std::vector<PredictorPtr> owners;
    std::vector<ConditionalPredictor *> raw;
    for (const std::string &s : specs) {
        owners.push_back(makePredictor(s));
        raw.push_back(owners.back().get());
    }
    GeneratorBranchSource source(bench, 9000, 777);
    const std::vector<SimResult> many = simulateMany(raw, source);
    ASSERT_EQ(many.size(), specs.size());

    for (std::size_t i = 0; i < specs.size(); ++i) {
        PredictorPtr lone = makePredictor(specs[i]);
        GeneratorBranchSource fresh(bench, 9000, 4096);
        expectSameResult(simulate(*lone, fresh), many[i]);
    }
}

TEST(SimulateMany, EmptyPredictorListIsSafe)
{
    GeneratorBranchSource source(findBenchmark("WS03"), 2000);
    EXPECT_TRUE(
        simulateMany(std::vector<ConditionalPredictor *>{}, source).empty());
}

// ---------------------------------------------------------------------
// Suite runner: the streamed single-pass engine reproduces a fully
// materialized reference run cell for cell, at any worker count.
// ---------------------------------------------------------------------

namespace
{

/** The pre-streaming engine, inlined as the reference: materialize each
 *  benchmark, then simulate every config over the shared trace. */
SuiteResults
materializedReference(const std::vector<BenchmarkSpec> &benchmarks,
                      const std::vector<std::string> &configs,
                      std::size_t branches, const SimOptions &sim)
{
    SuiteResults results;
    results.configs = configs;
    for (const BenchmarkSpec &spec : benchmarks) {
        const Trace trace = generateTrace(spec, branches);
        for (const std::string &config : configs) {
            PredictorPtr predictor = makePredictor(config);
            const SimResult r = simulate(*predictor, trace, sim);
            SuiteCell cell;
            cell.benchmark = spec.name;
            cell.suite = spec.suite;
            cell.config = config;
            cell.mpki = r.mpki();
            cell.mispredictions = r.mispredictions;
            cell.conditionals = r.conditionals;
            cell.instructions = r.instructions;
            results.cells.push_back(cell);
        }
    }
    return results;
}

} // anonymous namespace

TEST(StreamingSuiteRunner, ByteIdenticalToMaterializedAtAnyJobCount)
{
    const std::vector<BenchmarkSpec> benchmarks = {
        findBenchmark("MM-4"), findBenchmark("WS03"),
        findBenchmark("SPEC2K6-04"), findBenchmark("CLIENT02")};
    const std::vector<std::string> configs = {"bimodal", "gshare",
                                              "tage-gsc+i"};
    const SuiteResults reference =
        materializedReference(benchmarks, configs, 8000, SimOptions());

    for (unsigned jobs : {1u, 2u, 4u, 8u}) {
        SuiteRunOptions opt;
        opt.branchesPerTrace = 8000;
        opt.jobs = jobs;
        opt.chunkBranches = 1000; // force several chunks per benchmark
        const SuiteResults streamed = runSuite(benchmarks, configs, opt);
        expectBitIdentical(reference, streamed);
    }
}

TEST(StreamingSuiteRunner, SimOptionsPlumbThrough)
{
    const std::vector<BenchmarkSpec> benchmarks = {findBenchmark("WS03")};
    const std::vector<std::string> configs = {"tage-gsc"};

    SimOptions warm;
    warm.warmupBranches = 2000;
    SuiteRunOptions opt;
    opt.branchesPerTrace = 6000;
    opt.sim = warm;
    const SuiteResults warmed = runSuite(benchmarks, configs, opt);
    expectBitIdentical(materializedReference(benchmarks, configs, 6000,
                                             warm),
                       warmed);

    // Warm-up really skips grading: fewer counted instructions than the
    // cold run over the same stream.
    opt.sim = SimOptions();
    const SuiteResults cold = runSuite(benchmarks, configs, opt);
    EXPECT_LT(warmed.cells[0].instructions, cold.cells[0].instructions);
    EXPECT_LT(warmed.cells[0].conditionals, cold.cells[0].conditionals);
}

TEST(StreamingSuiteRunner, ResidentTraceMemoryIsChunkBoundPerWorker)
{
    // The acceptance criterion for the streaming refactor: during a suite
    // run the engine must never hold a materialized trace.  The generator
    // sources account every buffered record globally; the high-water mark
    // over the whole run must stay at workers x O(chunk), far below even
    // one benchmark's full trace.
    const std::vector<BenchmarkSpec> benchmarks = {
        findBenchmark("MM07"), findBenchmark("SPEC2K6-12"),
        findBenchmark("WS04"), findBenchmark("SERVER-1")};
    const std::vector<std::string> configs = {"bimodal", "gshare"};

    SuiteRunOptions opt;
    opt.branchesPerTrace = 60000;
    opt.chunkBranches = 2048;
    opt.jobs = 2;

    GeneratorBranchSource::resetPeakLiveRecords();
    const SuiteResults r = runSuite(benchmarks, configs, opt);
    ASSERT_EQ(r.cells.size(), benchmarks.size() * configs.size());

    // Per live source: chunk + at most one boundary-crossing kernel round
    // (bounded well under 8192 records).  Anything near 60000 would mean
    // a benchmark got materialized.
    const std::uint64_t per_worker_bound = 2048 + 8192;
    EXPECT_LE(GeneratorBranchSource::peakLiveRecords(),
              opt.jobs * per_worker_bound);
    EXPECT_LT(GeneratorBranchSource::peakLiveRecords(),
              opt.branchesPerTrace);
}

// ---------------------------------------------------------------------
// Mixed generated + recorded suites: the multi-backend scheduler must
// stay bit-identical at any worker count, and the recorded cells must
// match a direct simulation of their trace files.
// ---------------------------------------------------------------------

namespace
{

/** Generated members plus the full recorded suite from tests/data. */
std::vector<BenchmarkSpec>
mixedSuite()
{
    std::vector<BenchmarkSpec> benchmarks = {
        findBenchmark("MM-4"), findBenchmark("WS03"),
        findBenchmark("SPEC2K6-04")};
    for (BenchmarkSpec &rec : recordedSuite(IMLI_TEST_DATA_DIR))
        benchmarks.push_back(std::move(rec));
    return benchmarks;
}

} // anonymous namespace

TEST(MixedSuiteRunner, BitIdenticalAcrossJobCounts)
{
    const std::vector<BenchmarkSpec> benchmarks = mixedSuite();
    const std::vector<std::string> configs = {"bimodal", "tage-gsc+i"};

    SuiteRunOptions opt;
    opt.branchesPerTrace = 6000;
    opt.chunkBranches = 1000; // several chunks per benchmark, both paths
    opt.jobs = 1;
    const SuiteResults reference = runSuite(benchmarks, configs, opt);
    ASSERT_EQ(reference.cells.size(), benchmarks.size() * configs.size());

    for (unsigned jobs : {2u, 4u, 8u}) {
        opt.jobs = jobs;
        expectBitIdentical(reference, runSuite(benchmarks, configs, opt));
    }
}

TEST(MixedSuiteRunner, RecordedCellsMatchDirectFileSimulation)
{
    const std::vector<BenchmarkSpec> benchmarks = mixedSuite();
    const std::vector<std::string> configs = {"tage-gsc"};
    SuiteRunOptions opt;
    opt.branchesPerTrace = 6000;
    opt.jobs = 2;
    const SuiteResults results = runSuite(benchmarks, configs, opt);

    for (const BenchmarkSpec &spec : benchmarks) {
        if (spec.backend != TraceBackend::RecordedCbp)
            continue;
        PredictorPtr predictor = makePredictor("tage-gsc");
        CbpFileBranchSource source(spec.tracePath, spec.name);
        const SimResult direct = simulate(*predictor, source);
        const SuiteCell &cell = results.at(spec.name, "tage-gsc");
        EXPECT_EQ(cell.suite, "REC");
        EXPECT_EQ(cell.mispredictions, direct.mispredictions) << spec.name;
        EXPECT_EQ(cell.conditionals, direct.conditionals) << spec.name;
        EXPECT_EQ(cell.instructions, direct.instructions) << spec.name;
    }
}

TEST(MixedSuiteRunner, RecordedCellsMatchTheirGeneratingSpecs)
{
    // The recorded files were synthesized from recordedScenarios(): a
    // suite run that replays the files must produce the exact cells of a
    // run that generates the same specs on the fly.  This closes the
    // loop between the two backends end to end.
    const std::vector<std::string> configs = {"tage-gsc+i"};
    SuiteRunOptions opt;
    opt.branchesPerTrace = recordedScenarioBranches;
    const SuiteResults replayed =
        runSuite(recordedSuite(IMLI_TEST_DATA_DIR), configs, opt);
    const SuiteResults generated =
        runSuite(recordedScenarios(), configs, opt);
    expectBitIdentical(generated, replayed);
}

TEST(MixedSuiteRunner, BrokenRecordedSpecFailsBeforeAnySimulation)
{
    std::vector<BenchmarkSpec> benchmarks = {findBenchmark("WS03")};
    benchmarks.push_back(
        makeRecordedBenchmark("REC-GONE", "REC", "/nonexistent/gone.cbp"));

    SuiteRunOptions opt;
    opt.branchesPerTrace = 2000;
    bool progressed = false;
    opt.progress = [&](const std::string &, std::size_t) {
        progressed = true;
    };
    EXPECT_THROW(runSuite(benchmarks, {"bimodal"}, opt),
                 std::runtime_error);
    EXPECT_FALSE(progressed) << "validation must precede simulation";
}
