/**
 * @file
 * Tests for the simulation harness: MPKI accounting, warm-up, per-PC
 * collection and the suite runner.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "src/sim/report.hh"
#include "src/sim/simulator.hh"
#include "src/sim/suite_runner.hh"
#include "src/workloads/suite.hh"

using namespace imli;

namespace
{

/** Predictor with a scripted fixed answer. */
class ConstantPredictor : public ConditionalPredictor
{
  public:
    explicit ConstantPredictor(bool answer) : fixed(answer) {}

    bool predict(std::uint64_t) override { return fixed; }
    void update(std::uint64_t, bool, std::uint64_t) override {}
    std::string name() const override { return "const"; }
    StorageAccount
    storage() const override
    {
        return StorageAccount();
    }

  private:
    bool fixed;
};

Trace
tinyTrace()
{
    Trace t("tiny");
    auto add = [&t](std::uint64_t pc, bool taken, BranchType type,
                    unsigned gap) {
        BranchRecord rec;
        rec.pc = pc;
        rec.target = pc + 16;
        rec.taken = taken;
        rec.type = type;
        rec.instsBefore = gap;
        t.append(rec);
    };
    add(0x10, true, BranchType::CondDirect, 9);   // predicted T: correct
    add(0x20, false, BranchType::CondDirect, 9);  // predicted T: wrong
    add(0x30, true, BranchType::UncondDirect, 9); // not graded
    add(0x20, false, BranchType::CondDirect, 9);  // wrong again
    return t;
}

} // anonymous namespace

TEST(Simulator, CountsExactly)
{
    ConstantPredictor pred(true);
    const SimResult r = simulate(pred, tinyTrace());
    EXPECT_EQ(r.conditionals, 3u);
    EXPECT_EQ(r.mispredictions, 2u);
    EXPECT_EQ(r.instructions, 40u);
    EXPECT_DOUBLE_EQ(r.mpki(), 1000.0 * 2 / 40);
    EXPECT_NEAR(r.accuracy(), 1.0 / 3.0, 1e-9);
}

TEST(Simulator, WarmupSkipsEarlyBranches)
{
    ConstantPredictor pred(true);
    SimOptions opt;
    opt.warmupBranches = 2; // skip the first two records
    const SimResult r = simulate(pred, tinyTrace(), opt);
    EXPECT_EQ(r.conditionals, 1u);
    EXPECT_EQ(r.mispredictions, 1u);
    EXPECT_EQ(r.instructions, 20u);
}

TEST(Simulator, WarmupAccountingIsSymmetricComputedByHand)
{
    // Audit pin for the warm-up accounting: a record's instructions are
    // in the MPKI denominator exactly when its (potential) misprediction
    // is in the numerator — both keyed on the same stream position, with
    // non-conditional records counting denominator-only.  With warm-up 3
    // over the 4-record tinyTrace, only the final record counts:
    //   conditionals = 1, mispredictions = 1 (always-T vs not-taken),
    //   instructions = 9 + 1 = 10, MPKI = 1000 * 1 / 10 = 100.
    ConstantPredictor pred(true);
    SimOptions opt;
    opt.warmupBranches = 3;
    const SimResult r = simulate(pred, tinyTrace(), opt);
    EXPECT_EQ(r.conditionals, 1u);
    EXPECT_EQ(r.mispredictions, 1u);
    EXPECT_EQ(r.instructions, 10u);
    EXPECT_DOUBLE_EQ(r.mpki(), 100.0);

    // Warm-up spanning everything: zero counted records on both sides of
    // the division, not a skewed ratio.
    SimOptions all;
    all.warmupBranches = 100;
    const SimResult none = simulate(pred, tinyTrace(), all);
    EXPECT_EQ(none.conditionals, 0u);
    EXPECT_EQ(none.mispredictions, 0u);
    EXPECT_EQ(none.instructions, 0u);
    EXPECT_DOUBLE_EQ(none.mpki(), 0.0);

    // And the boundary is exclusive-below: warm-up N counts record N.
    SimOptions boundary;
    boundary.warmupBranches = 0;
    const SimResult everything = simulate(pred, tinyTrace(), boundary);
    EXPECT_EQ(everything.instructions, 40u);
}

TEST(Simulator, PerPcCollection)
{
    ConstantPredictor pred(true);
    SimOptions opt;
    opt.collectPerPc = true;
    const SimResult r = simulate(pred, tinyTrace(), opt);
    ASSERT_EQ(r.perPcMispredictions.size(), 1u);
    EXPECT_EQ(r.perPcMispredictions.at(0x20), 2u);
    const auto top = r.topOffenders(5);
    ASSERT_EQ(top.size(), 1u);
    EXPECT_EQ(top[0].first, 0x20u);
}

TEST(Simulator, TopOffendersTieBreaksByPcAndIsStable)
{
    // Tied misprediction counts once sorted in implementation-defined
    // order (count-only comparator under std::sort); the report is part
    // of --offenders output, so ties must break deterministically: count
    // descending, then PC ascending.
    SimResult r;
    r.perPcMispredictions = {{0x900, 7u}, {0x100, 7u}, {0x500, 7u},
                             {0x300, 9u}, {0x700, 2u}, {0x200, 7u}};
    const auto top = r.topOffenders(5);
    ASSERT_EQ(top.size(), 5u);
    EXPECT_EQ(top[0], (std::pair<std::uint64_t, std::uint64_t>(0x300, 9u)));
    EXPECT_EQ(top[1], (std::pair<std::uint64_t, std::uint64_t>(0x100, 7u)));
    EXPECT_EQ(top[2], (std::pair<std::uint64_t, std::uint64_t>(0x200, 7u)));
    EXPECT_EQ(top[3], (std::pair<std::uint64_t, std::uint64_t>(0x500, 7u)));
    EXPECT_EQ(top[4], (std::pair<std::uint64_t, std::uint64_t>(0x900, 7u)));
    // Truncation cuts inside the tie group along the same order.
    const auto two = r.topOffenders(2);
    ASSERT_EQ(two.size(), 2u);
    EXPECT_EQ(two[1].first, 0x100u);
}

TEST(Simulator, EmptyTraceSafe)
{
    ConstantPredictor pred(true);
    const SimResult r = simulate(pred, Trace("empty"));
    EXPECT_DOUBLE_EQ(r.mpki(), 0.0);
    EXPECT_DOUBLE_EQ(r.accuracy(), 1.0);
}

TEST(SuiteRunner, ProducesAllCells)
{
    std::vector<BenchmarkSpec> benchmarks = {findBenchmark("MM-4"),
                                             findBenchmark("WS03")};
    SuiteRunOptions opt;
    opt.branchesPerTrace = 5000;
    const SuiteResults results =
        runSuite(benchmarks, {"bimodal", "gshare"}, opt);
    EXPECT_EQ(results.cells.size(), 4u);
    EXPECT_NO_THROW(results.at("MM-4", "bimodal"));
    EXPECT_NO_THROW(results.at("WS03", "gshare"));
    EXPECT_THROW(results.at("MM-4", "nope"), std::out_of_range);
}

TEST(SuiteRunner, AveragesFilterBySuite)
{
    std::vector<BenchmarkSpec> benchmarks = {findBenchmark("MM-4"),
                                             findBenchmark("WS03")};
    SuiteRunOptions opt;
    opt.branchesPerTrace = 5000;
    const SuiteResults results = runSuite(benchmarks, {"bimodal"}, opt);
    const double cbp4 = results.averageMpki("bimodal", "CBP4");
    const double cbp3 = results.averageMpki("bimodal", "CBP3");
    const double all = results.averageMpki("bimodal");
    EXPECT_DOUBLE_EQ(all, (cbp4 + cbp3) / 2.0);
}

TEST(SuiteRunner, RankByDeltaOrdersDescending)
{
    std::vector<BenchmarkSpec> benchmarks = {
        findBenchmark("MM-4"), findBenchmark("WS03"),
        findBenchmark("SPEC2K6-12")};
    SuiteRunOptions opt;
    opt.branchesPerTrace = 8000;
    const SuiteResults results =
        runSuite(benchmarks, {"bimodal", "tage-gsc"}, opt);
    const auto ranked = results.rankByDelta("bimodal", "tage-gsc");
    ASSERT_EQ(ranked.size(), 3u);
    double prev = 1e9;
    for (const auto &name : ranked) {
        const double delta =
            std::abs(results.at(name, "bimodal").mpki -
                     results.at(name, "tage-gsc").mpki);
        EXPECT_LE(delta, prev);
        prev = delta;
    }
}

TEST(SuiteRunner, IdenticalTraceAcrossConfigs)
{
    std::vector<BenchmarkSpec> benchmarks = {findBenchmark("MM-4")};
    SuiteRunOptions opt;
    opt.branchesPerTrace = 5000;
    const SuiteResults results =
        runSuite(benchmarks, {"bimodal", "bimodal"}, opt);
    // Same config twice on the same generated trace: identical numbers.
    EXPECT_EQ(results.cells[0].mispredictions,
              results.cells[1].mispredictions);
}

TEST(SuiteRunner, DefaultBranchesHonoursEnv)
{
    ::setenv("IMLI_BRANCHES", "123456", 1);
    EXPECT_EQ(defaultBranchesPerTrace(), 123456u);
    ::unsetenv("IMLI_BRANCHES");
    EXPECT_EQ(defaultBranchesPerTrace(), 200000u);
}

TEST(SuiteRunner, DefaultBranchesRejectsGarbageLoudly)
{
    // A typo'd override must fail the run, not silently pick a default
    // trace length (the experiment would measure the wrong workload).
    for (const char *bad : {"nonsense", "12k", "-5", " 123456", "1e6", ""}) {
        ::setenv("IMLI_BRANCHES", bad, 1);
        EXPECT_THROW(defaultBranchesPerTrace(), std::runtime_error)
            << "value: \"" << bad << '"';
    }
    // Numerically valid but below the sanity floor: also an error.
    ::setenv("IMLI_BRANCHES", "999", 1);
    EXPECT_THROW(defaultBranchesPerTrace(), std::runtime_error);
    // All digits but overflowing 64 bits: out of range, not ULLONG_MAX.
    ::setenv("IMLI_BRANCHES", "18446744073709551616", 1);
    EXPECT_THROW(defaultBranchesPerTrace(), std::runtime_error);
    ::setenv("IMLI_BRANCHES", "1000", 1);
    EXPECT_EQ(defaultBranchesPerTrace(), 1000u);
    ::unsetenv("IMLI_BRANCHES");
}

TEST(Report, JsonMirrorsCsvCells)
{
    SuiteResults results;
    results.configs = {"tage-gsc", "tage-gsc+i@sic.logsize=10"};
    SuiteCell cell;
    cell.benchmark = "MM-4";
    cell.suite = "CBP4";
    cell.config = "tage-gsc";
    cell.mpki = 1.23456;
    cell.mispredictions = 123;
    cell.conditionals = 456;
    cell.instructions = 789;
    results.cells.push_back(cell);
    cell.config = "tage-gsc+i@sic.logsize=10";
    results.cells.push_back(cell);

    std::ostringstream os;
    printCellsJson(os, results);
    const std::string s = os.str();
    // Stable key order, one cell object per line, CSV-identical mpki
    // formatting (4 decimals).
    EXPECT_NE(s.find("\"configs\": [\"tage-gsc\", "
                     "\"tage-gsc+i@sic.logsize=10\"]"),
              std::string::npos);
    EXPECT_NE(s.find("{\"suite\": \"CBP4\", \"benchmark\": \"MM-4\", "
                     "\"config\": \"tage-gsc\", \"mpki\": 1.2346, "
                     "\"mispredictions\": 123, \"conditionals\": 456, "
                     "\"instructions\": 789},"),
              std::string::npos);
    // Valid JSON shape: one opening and closing brace pair at top level,
    // and the second (last) cell carries no trailing comma.
    EXPECT_EQ(s.find('{'), 0u);
    EXPECT_NE(s.find("\"instructions\": 789}\n"), std::string::npos);

    // Byte-stable across invocations (CI diffs the output).
    std::ostringstream again;
    printCellsJson(again, results);
    EXPECT_EQ(again.str(), s);
}

TEST(Report, PrintsPaperAndMeasured)
{
    ExperimentReport report("Table 9", "unit test table");
    report.addMetric("metric-a", 1.234, 1.3);
    report.addMetric("metric-b", 9.0);
    report.addNote("a note");
    std::ostringstream os;
    report.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("Table 9"), std::string::npos);
    EXPECT_NE(s.find("1.234"), std::string::npos);
    EXPECT_NE(s.find("1.300"), std::string::npos);
    EXPECT_NE(s.find("a note"), std::string::npos);
}
