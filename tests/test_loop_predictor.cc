/**
 * @file
 * Behavioural tests for the loop exit predictor: trip-count learning,
 * confidence gating, irregular-loop rejection and the trip-count oracle
 * consumed by the wormhole predictor.
 */

#include <gtest/gtest.h>

#include "src/predictors/loop_predictor.hh"

using namespace imli;

namespace
{

constexpr std::uint64_t loopPc = 0x4080;

/**
 * Run @p runs executions of a loop with @p trip iterations (taken
 * trip-1 times, then not taken).  Returns mispredictions over the last
 * @p counted runs, only counting occurrences where the predictor claims
 * a valid (confident) prediction; `uncovered` counts occurrences it
 * declined to predict during those runs.
 */
struct LoopDrive
{
    unsigned valid_mispredicts = 0;
    unsigned uncovered = 0;
    unsigned occurrences = 0;
};

LoopDrive
driveLoop(LoopPredictor &pred, unsigned trip, unsigned runs,
          unsigned counted)
{
    LoopDrive result;
    for (unsigned run = 0; run < runs; ++run) {
        for (unsigned i = 0; i < trip; ++i) {
            const bool taken = i + 1 < trip;
            const auto p = pred.lookup(loopPc);
            if (run >= runs - counted) {
                ++result.occurrences;
                if (p.valid) {
                    if (p.taken != taken)
                        ++result.valid_mispredicts;
                } else {
                    ++result.uncovered;
                }
            }
            // Allocation is enabled as if the main predictor mispredicted
            // the loop exit (the realistic trigger).
            pred.update(loopPc, taken, !taken, p);
        }
    }
    return result;
}

} // anonymous namespace

TEST(LoopPredictor, LearnsConstantTripLoop)
{
    LoopPredictor pred;
    const LoopDrive r = driveLoop(pred, 20, 40, 10);
    EXPECT_EQ(r.valid_mispredicts, 0u);
    // Once confident, it must actually cover the loop.
    EXPECT_LT(r.uncovered, r.occurrences / 4);
}

TEST(LoopPredictor, PredictsExitIteration)
{
    LoopPredictor pred;
    driveLoop(pred, 12, 30, 0);
    // Walk one more run manually and check the exit is called correctly.
    for (unsigned i = 0; i < 12; ++i) {
        const bool taken = i + 1 < 12;
        const auto p = pred.lookup(loopPc);
        ASSERT_TRUE(p.valid) << "iteration " << i;
        EXPECT_EQ(p.taken, taken) << "iteration " << i;
        pred.update(loopPc, taken, false, p);
    }
}

TEST(LoopPredictor, ExposesTripCount)
{
    LoopPredictor pred;
    driveLoop(pred, 24, 30, 0);
    const auto trip = pred.tripCount(loopPc);
    ASSERT_TRUE(trip.has_value());
    EXPECT_EQ(*trip, 24u);
}

TEST(LoopPredictor, NoTripCountWithoutConfidence)
{
    LoopPredictor pred;
    driveLoop(pred, 24, 2, 0); // too few runs to gain confidence
    EXPECT_FALSE(pred.tripCount(loopPc).has_value());
}

TEST(LoopPredictor, RejectsIrregularLoop)
{
    LoopPredictor pred;
    // Alternate between two trip counts: never confident.
    for (unsigned run = 0; run < 40; ++run) {
        const unsigned trip = (run & 1) ? 11 : 17;
        for (unsigned i = 0; i < trip; ++i) {
            const bool taken = i + 1 < trip;
            const auto p = pred.lookup(loopPc);
            pred.update(loopPc, taken, !taken, p);
        }
    }
    EXPECT_FALSE(pred.tripCount(loopPc).has_value());
}

TEST(LoopPredictor, VeryShortLoopsDeclined)
{
    LoopPredictor pred;
    driveLoop(pred, 2, 60, 0);
    // Trip counts < 3 are freed (main predictor handles them better).
    EXPECT_FALSE(pred.tripCount(loopPc).has_value());
}

TEST(LoopPredictor, NoAllocationWithoutMispredict)
{
    LoopPredictor pred;
    for (unsigned run = 0; run < 30; ++run) {
        for (unsigned i = 0; i < 16; ++i) {
            const bool taken = i + 1 < 16;
            const auto p = pred.lookup(loopPc);
            pred.update(loopPc, taken, /*alloc=*/false, p);
        }
    }
    EXPECT_FALSE(pred.tripCount(loopPc).has_value());
}

TEST(LoopPredictor, ConfidentWrongPredictionFreesEntry)
{
    LoopPredictor pred;
    driveLoop(pred, 15, 30, 0);
    ASSERT_TRUE(pred.tripCount(loopPc).has_value());
    // The loop changes trip count; after the first confident miss the
    // entry must be invalidated.
    for (unsigned run = 0; run < 4; ++run) {
        for (unsigned i = 0; i < 9; ++i) {
            const bool taken = i + 1 < 9;
            const auto p = pred.lookup(loopPc);
            pred.update(loopPc, taken, !taken, p);
        }
    }
    const auto trip = pred.tripCount(loopPc);
    EXPECT_TRUE(!trip.has_value() || *trip != 15u);
}

TEST(LoopPredictor, DistinctLoopsCoexist)
{
    LoopPredictor pred(LoopPredictor::Config{/*logSets=*/2, /*ways=*/4});
    const std::uint64_t pc_a = 0x1000, pc_b = 0x2000;
    for (unsigned run = 0; run < 40; ++run) {
        for (unsigned i = 0; i < 10; ++i) {
            const auto p = pred.lookup(pc_a);
            pred.update(pc_a, i + 1 < 10, i + 1 == 10, p);
        }
        for (unsigned i = 0; i < 30; ++i) {
            const auto p = pred.lookup(pc_b);
            pred.update(pc_b, i + 1 < 30, i + 1 == 30, p);
        }
    }
    const auto trip_a = pred.tripCount(pc_a);
    const auto trip_b = pred.tripCount(pc_b);
    ASSERT_TRUE(trip_a.has_value());
    ASSERT_TRUE(trip_b.has_value());
    EXPECT_EQ(*trip_a, 10u);
    EXPECT_EQ(*trip_b, 30u);
}

TEST(LoopPredictor, SpeculationJournalDrivesFetchView)
{
    LoopPredictor pred;
    driveLoop(pred, 12, 30, 0);
    const std::uint64_t digest0 = pred.stateDigest();
    const std::uint64_t horizon0 = pred.lastTicket();

    // Fetch 11 in-flight iterations without committing any of them: the
    // speculative view must advance through the journal alone.
    for (unsigned i = 0; i < 11; ++i) {
        const auto p = pred.lookup(loopPc);
        ASSERT_TRUE(p.valid);
        EXPECT_TRUE(p.taken) << "in-flight iteration " << i;
        pred.speculate(loopPc, p.taken);
    }
    // The 12th in-flight occurrence sees iteration 11 and calls the exit.
    EXPECT_FALSE(pred.lookup(loopPc).taken);
    EXPECT_NE(pred.stateDigest(), digest0);

    // Restoring to the pre-speculation horizon hides the in-flight
    // events without destroying them.
    pred.setTicketHorizon(horizon0);
    EXPECT_TRUE(pred.lookup(loopPc).taken);
    EXPECT_EQ(pred.stateDigest(), digest0);
    pred.setTicketHorizon(UINT64_MAX);
    EXPECT_FALSE(pred.lookup(loopPc).taken);

    // A squash drops them for good and leaves the architectural state
    // untouched (speculate never writes tables or draws the LFSR).
    pred.squashSpeculation();
    EXPECT_TRUE(pred.lookup(loopPc).taken);
    EXPECT_EQ(pred.stateDigest(), digest0);
}

TEST(LoopPredictor, StorageMatchesGeometry)
{
    LoopPredictor::Config cfg;
    cfg.logSets = 2;
    cfg.ways = 4;
    LoopPredictor pred(cfg);
    StorageAccount acct;
    pred.account(acct, "loop");
    // 16 entries x (10+10 iter + 10 tag + 4 conf + 4 age + 1 dir).
    EXPECT_EQ(acct.totalBits(), 16u * (10 + 10 + 10 + 4 + 4 + 1));
}
