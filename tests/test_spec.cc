/**
 * @file
 * Tests for the speculative-state module: checkpoint-recovery equivalence
 * of the IMLI state (the paper's Section 4.2.1/4.3.2 hardware argument)
 * and the in-flight-window cost model.
 */

#include <gtest/gtest.h>

#include "src/core/imli_components.hh"
#include "src/spec/checkpoint.hh"
#include "src/spec/delayed_update.hh"
#include "src/spec/fetch_model.hh"
#include "src/util/rng.hh"
#include "src/workloads/suite.hh"

using namespace imli;

// ---------------------------------------------------------------------------
// SpeculativeImliModel: recovery equivalence property.
// ---------------------------------------------------------------------------

class SpecRecoveryProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SpecRecoveryProperty, RecoveredStateMatchesOracle)
{
    // Drive the speculative model with randomly wrong predictions over a
    // random loopy branch stream; after every branch the architectural
    // state must equal the non-speculative oracle.
    Xoroshiro128 rng(GetParam());
    SpeculativeImliModel spec;
    ImliComponents oracle;

    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t pc = 0x1000 + rng.below(24) * 0x20;
        const bool backward = rng.bernoulli(0.4);
        const std::uint64_t target =
            backward ? pc - 0x100 : pc + 0x40;
        const bool actual = rng.bernoulli(0.6);
        const bool predicted =
            rng.bernoulli(0.85) ? actual : !actual; // ~15% mispredictions

        spec.onBranch(pc, target, predicted, actual);
        oracle.onResolved(pc, target, actual);

        ASSERT_EQ(spec.counter().value(), oracle.counter().value())
            << "counter diverged at step " << i;
        ASSERT_EQ(spec.outerHistory().savePipe(),
                  oracle.outerHistory().savePipe())
            << "PIPE diverged at step " << i;
    }
    EXPECT_GT(spec.recoveries(), 1000u) << "the test actually recovered";
    EXPECT_EQ(spec.checkpointsTaken(), 20000u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpecRecoveryProperty,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u));

TEST(SpecModel, CheckpointWidthMatchesPaper)
{
    SpeculativeImliModel spec;
    EXPECT_EQ(spec.checkpointBits(), 26u); // 10-bit counter + 16-bit PIPE
}

TEST(SpecModel, PerfectPredictionNeverRecovers)
{
    SpeculativeImliModel spec;
    Xoroshiro128 rng(4);
    for (int i = 0; i < 1000; ++i) {
        const bool taken = rng.bernoulli(0.5);
        spec.onBranch(0x200, 0x100, taken, taken);
    }
    EXPECT_EQ(spec.recoveries(), 0u);
}

TEST(SpecModel, DelayedTableUpdateStillConverges)
{
    // With a 63-branch table-update delay the PIPE/counter recovery is
    // unaffected (they are precise); only the table lags.
    SpeculativeImliModel::Config cfg;
    cfg.tableUpdateDelay = 63;
    SpeculativeImliModel spec(cfg);
    ImliCounter oracle(10);
    Xoroshiro128 rng(5);
    for (int i = 0; i < 5000; ++i) {
        const bool actual = rng.bernoulli(0.7);
        const bool predicted = rng.bernoulli(0.9) ? actual : !actual;
        spec.onBranch(0x300, 0x100, predicted, actual);
        oracle.onConditionalBranch(0x300, 0x100, actual);
        ASSERT_EQ(spec.counter().value(), oracle.value());
    }
}

// ---------------------------------------------------------------------------
// Fetch model: checkpoint vs in-flight search cost.
// ---------------------------------------------------------------------------

TEST(FetchModel, CountsSearchesPerConditional)
{
    const Trace t = generateTrace(findBenchmark("MM-4"), 20000);
    const SpeculationCostReport r = measureSpeculationCost(t);
    EXPECT_EQ(r.windowSearches, r.conditionalBranches);
    EXPECT_GT(r.windowEntriesVisited, r.windowSearches)
        << "associative search visits multiple entries";
    EXPECT_EQ(r.checkpointTotalBits,
              r.conditionalBranches * r.checkpointWidthBits);
}

TEST(FetchModel, CheckpointWidthVsWindowStorage)
{
    const Trace t = generateTrace(findBenchmark("WS03"), 10000);
    FetchModelConfig cfg;
    cfg.windowSize = 64;
    const SpeculationCostReport r = measureSpeculationCost(t, cfg);
    // The paper's argument: per-branch checkpoint width is tens of bits;
    // the in-flight window holds kilobits of live speculative history.
    EXPECT_LT(r.checkpointWidthBits, 64u);
    EXPECT_GT(r.windowStorageBits, 1000u);
    EXPECT_GT(r.avgEntriesPerSearch(), 4.0);
    EXPECT_LE(r.avgEntriesPerSearch(), 64.0);
    EXPECT_FALSE(r.toString().empty());
}

TEST(FetchModel, WindowSizeScalesSearchCost)
{
    const Trace t = generateTrace(findBenchmark("WS03"), 10000);
    FetchModelConfig small;
    small.windowSize = 8;
    FetchModelConfig large;
    large.windowSize = 128;
    const auto rs = measureSpeculationCost(t, small);
    const auto rl = measureSpeculationCost(t, large);
    EXPECT_LT(rs.windowEntriesVisited, rl.windowEntriesVisited);
}

// ---------------------------------------------------------------------------
// Delayed-update sweep plumbing (full experiment lives in bench/).
// ---------------------------------------------------------------------------

TEST(DelayedUpdate, SweepProducesOnePointPerDelay)
{
    std::vector<BenchmarkSpec> benchmarks = {findBenchmark("SPEC2K6-12")};
    const auto points =
        runDelayedUpdateSweep(benchmarks, {0, 63}, "tage-gsc", 20000);
    ASSERT_EQ(points.size(), 2u);
    EXPECT_EQ(points[0].delay, 0u);
    EXPECT_EQ(points[1].delay, 63u);
    EXPECT_GT(points[0].mpkiCbp4, 0.0);
    // The paper's claim: delayed update is nearly free.  Even on a single
    // IMLI-heavy benchmark the loss must be small.
    EXPECT_LT(points[1].mpkiCbp4 - points[0].mpkiCbp4, 0.5);
}

TEST(DelayedUpdate, RejectsUnknownHost)
{
    std::vector<BenchmarkSpec> benchmarks = {findBenchmark("MM-4")};
    EXPECT_THROW(runDelayedUpdateSweep(benchmarks, {0}, "alpha21264", 1000),
                 std::invalid_argument);
}
