/**
 * @file
 * Corpus-layer tests: pinned characterization statistics for the
 * recorded scenarios and generated kernels, the source-independence
 * property (generated / .imt / .cbp of the same trace characterize
 * identically), serialize round-trips, predictability-class selection
 * with near-miss errors, the process-wide decoded-trace cache, content
 * fingerprints, directory discovery and the persistent
 * characterization cache.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/corpus/characterize.hh"
#include "src/corpus/trace_corpus.hh"
#include "src/trace/cbp_reader.hh"
#include "src/trace/trace_io.hh"
#include "src/workloads/generator_source.hh"
#include "src/workloads/suite.hh"

using namespace imli;

namespace
{

const std::string dataDir = IMLI_TEST_DATA_DIR;

std::string
tempPath(const std::string &leaf, const std::string &ext = "")
{
    // Process-unique (ctest runs discovered tests in parallel
    // processes), with the extension LAST: recorded-backend detection
    // reads it.
    return ::testing::TempDir() + leaf + "." +
           std::to_string(::getpid()) + ext;
}

/** Drain a source into a vector of records (chunk-size independent). */
std::vector<BranchRecord>
drain(BranchSource &source)
{
    std::vector<BranchRecord> records;
    for (BranchSpan span = source.nextChunk(); !span.empty();
         span = source.nextChunk())
        records.insert(records.end(), span.begin(), span.end());
    return records;
}

// ---------------------------------------------------------------------------
// Pinned characterization statistics
// ---------------------------------------------------------------------------

/**
 * The checked-in recorded scenarios and three generated kernels, pinned
 * to their exact serialized characterization.  These lines ARE the
 * characterization schema: a change here is a change to every persisted
 * .char cache file and to the documented --class memberships, so update
 * the README table in the same commit.
 */
struct PinnedChar
{
    const char *name;
    std::size_t budget;
    const char *line;
};

const PinnedChar kPinned[] = {
    {"REC-01", 200000,
     "v1 branches=9745 instructions=53717 conditionals=9739 "
     "static_branches=12 static_conditionals=10 "
     "taken_rate=0.55970838895163777 entropy=0.86232540811265246 "
     "loop_depth=1:79,2:1123"},
    {"REC-02", 200000,
     "v1 branches=7626 instructions=41947 conditionals=7620 "
     "static_branches=9 static_conditionals=7 "
     "taken_rate=0.55183727034120733 entropy=0.85649816379889476 "
     "loop_depth=1:77,2:1180"},
    {"REC-03", 200000,
     "v1 branches=5010 instructions=27438 conditionals=5010 "
     "static_branches=6 static_conditionals=6 "
     "taken_rate=0.49560878243512974 entropy=0.99402762462709027 "
     "loop_depth=-"},
    {"REC-04", 200000,
     "v1 branches=4032 instructions=22286 conditionals=4032 "
     "static_branches=21 static_conditionals=21 "
     "taken_rate=0.91815476190476186 entropy=0.40269782040916652 "
     "loop_depth=-"},
    {"REC-05", 200000,
     "v1 branches=2124 instructions=11603 conditionals=2120 "
     "static_branches=7 static_conditionals=5 "
     "taken_rate=0.57405660377358492 entropy=0.82629197994987225 "
     "loop_depth=1:50,2:468"},
    {"REC-06", 200000,
     "v1 branches=3024 instructions=16639 conditionals=3024 "
     "static_branches=24 static_conditionals=24 "
     "taken_rate=0.5357142857142857 entropy=0.98522813603425152 "
     "loop_depth=-"},
    {"REC-07", 200000,
     "v1 branches=5065 instructions=35328 conditionals=5000 "
     "static_branches=11 static_conditionals=10 "
     "taken_rate=0.75039999999999996 entropy=0.57508701782467231 "
     "loop_depth=-"},
    {"REC-08", 200000,
     "v1 branches=3769 instructions=20595 conditionals=3765 "
     "static_branches=9 static_conditionals=7 "
     "taken_rate=0.58167330677290841 entropy=0.85893553719747451 "
     "loop_depth=1:56,2:624"},
    {"MM-4", 20000,
     "v1 branches=20970 instructions=136319 conditionals=20786 "
     "static_branches=47 static_conditionals=44 "
     "taken_rate=0.70922736457230828 entropy=0.64072021108237853 "
     "loop_depth=1:46,2:529"},
    {"WS03", 20000,
     "v1 branches=20697 instructions=137746 conditionals=20485 "
     "static_branches=53 static_conditionals=48 "
     "taken_rate=0.71657310226995363 entropy=0.6378761875791179 "
     "loop_depth=1:57,2:422"},
    {"SPEC2K6-12", 20000,
     "v1 branches=25052 instructions=168104 conditionals=24788 "
     "static_branches=25 static_conditionals=20 "
     "taken_rate=0.72962723898660642 entropy=0.61362213284964362 "
     "loop_depth=1:95,2:1090"},
};

TEST(Characterization, PinnedSuiteStats)
{
    TraceCorpus corpus = makeSuiteCorpus(dataDir);
    for (const PinnedChar &pin : kPinned) {
        const TraceCharacterization &c =
            corpus.characterize(pin.name, pin.budget);
        EXPECT_EQ(c.serialize(), pin.line) << pin.name;
        // The round-trip must reproduce the record exactly, including
        // the 17-significant-digit rates.
        EXPECT_EQ(TraceCharacterization::deserialize(c.serialize()), c)
            << pin.name;
    }
}

TEST(Characterization, RecordedBudgetIndependent)
{
    // Recorded traces always play whole: the budget must not matter.
    TraceCorpus a = makeSuiteCorpus(dataDir);
    TraceCorpus b = makeSuiteCorpus(dataDir);
    EXPECT_EQ(a.characterize("REC-01", 1000), b.characterize("REC-01",
                                                             1000000));
}

// ---------------------------------------------------------------------------
// Source-independence: generated / .imt / .cbp characterize identically
// ---------------------------------------------------------------------------

TEST(Characterization, IdenticalAcrossTraceSources)
{
    const std::size_t branches = 5000;
    const BenchmarkSpec generated = findBenchmark("MM-4");

    const std::string imtPath = tempPath("charsrc", ".imt");
    const std::string cbpPath = tempPath("charsrc", ".cbp");
    {
        GeneratorBranchSource source(generated, branches);
        writeTraceFile(source, imtPath);
    }
    {
        GeneratorBranchSource source(generated, branches);
        writeCbpFile(source, cbpPath);
    }

    const std::unique_ptr<BranchSource> genSource =
        TraceCorpus::open(generated, branches);
    TraceCharacterization fromGenerated = characterizeSource(*genSource);

    const BenchmarkSpec imt =
        makeRecordedBenchmark("charsrc-imt", "EXT", imtPath);
    const BenchmarkSpec cbp =
        makeRecordedBenchmark("charsrc-cbp", "EXT", cbpPath);
    const std::unique_ptr<BranchSource> imtSource =
        TraceCorpus::open(imt, branches);
    const std::unique_ptr<BranchSource> cbpSource =
        TraceCorpus::open(cbp, branches);
    TraceCharacterization fromImt = characterizeSource(*imtSource);
    TraceCharacterization fromCbp = characterizeSource(*cbpSource);

    EXPECT_EQ(fromGenerated, fromImt);
    EXPECT_EQ(fromGenerated, fromCbp);
    EXPECT_EQ(fromGenerated.serialize(), fromImt.serialize());
    EXPECT_EQ(fromGenerated.serialize(), fromCbp.serialize());

    std::remove(imtPath.c_str());
    std::remove(cbpPath.c_str());
}

TEST(Characterization, MatchesComputeStats)
{
    // characterizeSource and characterizationFromStats(computeStats)
    // share TraceStatsBuilder, so they must agree bit for bit.
    const BenchmarkSpec spec = findBenchmark("WS03");
    const Trace trace = generateTrace(spec, 4000);
    GeneratorBranchSource source(spec, 4000);
    EXPECT_EQ(characterizeSource(source),
              characterizationFromStats(computeStats(trace)));
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

TEST(Characterization, SerializeRoundTripEmptyLoopProfile)
{
    TraceCharacterization c;
    c.branches = 10;
    c.instructions = 55;
    c.conditionals = 9;
    c.staticBranches = 3;
    c.staticConditionals = 2;
    c.takenRate = 1.0 / 3.0;
    c.entropy = 0.12345678901234567;
    EXPECT_EQ(TraceCharacterization::deserialize(c.serialize()), c);

    c.loopDepth = {{1, 7}, {3, 2}};
    EXPECT_EQ(TraceCharacterization::deserialize(c.serialize()), c);
    EXPECT_EQ(c.loopBranches(), 9u);
}

TEST(Characterization, DeserializeRejectsTruncationAndGarbage)
{
    TraceCharacterization c;
    c.branches = 5;
    const std::string line = c.serialize();
    // Truncation (a kill mid-write of the cache file) must not parse as
    // a valid record with silently-zero fields.
    EXPECT_THROW(TraceCharacterization::deserialize(
                     line.substr(0, line.size() / 2)),
                 std::runtime_error);
    EXPECT_THROW(TraceCharacterization::deserialize(""),
                 std::runtime_error);
    EXPECT_THROW(TraceCharacterization::deserialize("v2 " +
                                                    line.substr(3)),
                 std::runtime_error);
    EXPECT_THROW(TraceCharacterization::deserialize(
                     line + " unexpected=1"),
                 std::runtime_error);
}

// ---------------------------------------------------------------------------
// Predictability classes
// ---------------------------------------------------------------------------

TEST(CorpusClasses, KnownClassesArePinned)
{
    std::vector<std::string> names;
    for (const CorpusClass &cls : knownClasses())
        names.push_back(cls.name);
    EXPECT_EQ(names, (std::vector<std::string>{
                         "high-entropy", "low-entropy", "loopy",
                         "deep-loopy", "flat", "taken-heavy", "balanced"}));
}

TEST(CorpusClasses, UnknownClassSuggestsNearMiss)
{
    try {
        matchesClass(TraceCharacterization{}, "lopy");
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        const std::string message = e.what();
        EXPECT_NE(message.find("unknown class \"lopy\""),
                  std::string::npos)
            << message;
        EXPECT_NE(message.find("did you mean \"loopy\""),
                  std::string::npos)
            << message;
        EXPECT_NE(message.find("known classes:"), std::string::npos)
            << message;
    }
}

TEST(CorpusClasses, RecordedScenarioMemberships)
{
    // The recorded scenarios' class memberships, from the pinned stats
    // above: REC-01/02/05/08 carry the loop-nest phases (and nest them
    // two deep), REC-03/04/06/07 have no loop-closing branches at all.
    TraceCorpus corpus{recordedSuite(dataDir)};
    const auto names = [](const std::vector<BenchmarkSpec> &specs) {
        std::vector<std::string> out;
        for (const BenchmarkSpec &spec : specs)
            out.push_back(spec.name);
        return out;
    };
    EXPECT_EQ(names(corpus.selectClass("loopy", 200000)),
              (std::vector<std::string>{"REC-01", "REC-02", "REC-05",
                                        "REC-08"}));
    EXPECT_EQ(names(corpus.selectClass("deep-loopy", 200000)),
              (std::vector<std::string>{"REC-01", "REC-02", "REC-05",
                                        "REC-08"}));
    EXPECT_EQ(names(corpus.selectClass("flat", 200000)),
              (std::vector<std::string>{"REC-03", "REC-04", "REC-06",
                                        "REC-07"}));
    EXPECT_EQ(names(corpus.selectClass("taken-heavy", 200000)),
              (std::vector<std::string>{"REC-04", "REC-07"}));
    EXPECT_EQ(names(corpus.selectClass("low-entropy", 200000)),
              (std::vector<std::string>{"REC-04", "REC-07"}));
}

TEST(CorpusClasses, SelectClassRejectsUnknownBeforeCharacterizing)
{
    TraceCorpus corpus{recordedSuite(dataDir)};
    EXPECT_THROW(corpus.selectClass("high-entrop", 200000),
                 std::runtime_error);
}

// ---------------------------------------------------------------------------
// selectSuiteBenchmarks: the shared CLI selection path
// ---------------------------------------------------------------------------

TEST(SelectSuiteBenchmarks, GlobsAndClassStratification)
{
    CorpusQuery query;
    query.patterns = {"MM-4", "WS03"};
    query.targetBranches = 20000;
    const std::vector<BenchmarkSpec> plain = selectSuiteBenchmarks(query);
    ASSERT_EQ(plain.size(), 2u);
    EXPECT_EQ(plain[0].name, "MM-4");
    EXPECT_EQ(plain[1].name, "WS03");

    // Both members are loopy at this budget (pinned above), so the
    // stratified selection keeps both in order.
    query.className = "loopy";
    const std::vector<BenchmarkSpec> loopy = selectSuiteBenchmarks(query);
    ASSERT_EQ(loopy.size(), 2u);
    EXPECT_EQ(loopy[0].name, "MM-4");
    EXPECT_EQ(loopy[1].name, "WS03");
}

TEST(SelectSuiteBenchmarks, ClassMatchingNothingNamesTheClass)
{
    CorpusQuery query;
    query.patterns = {"MM-4", "WS03"};
    query.targetBranches = 20000;
    query.className = "taken-heavy";  // neither kernel qualifies
    try {
        selectSuiteBenchmarks(query);
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find(
                      "class \"taken-heavy\" matched no benchmark"),
                  std::string::npos)
            << e.what();
    }
}

TEST(SelectSuiteBenchmarks, UnknownClassFailsBeforeSelection)
{
    CorpusQuery query;
    query.patterns = {"MM-4"};
    query.className = "floopy";
    EXPECT_THROW(selectSuiteBenchmarks(query), std::runtime_error);
}

TEST(SelectSuiteBenchmarks, RecSuiteWithoutRecordedDirHints)
{
    CorpusQuery query;
    query.suite = "REC";
    try {
        selectSuiteBenchmarks(query);
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("--recorded"),
                  std::string::npos)
            << e.what();
    }
}

TEST(SelectSuiteBenchmarks, InvalidRecordedDirSharedMessage)
{
    CorpusQuery query;
    query.recordedDir = "/nonexistent-recorded-dir";
    try {
        selectSuiteBenchmarks(query);
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        const std::string message = e.what();
        EXPECT_NE(message.find("--recorded:"), std::string::npos)
            << message;
        EXPECT_NE(message.find("is not a directory"), std::string::npos)
            << message;
    }
    // makeSuiteCorpus is the single implementation behind it.
    EXPECT_THROW(makeSuiteCorpus("/nonexistent-recorded-dir"),
                 std::runtime_error);
}

// ---------------------------------------------------------------------------
// TraceCorpus membership
// ---------------------------------------------------------------------------

TEST(TraceCorpus, DuplicateNamesAndLookup)
{
    TraceCorpus corpus;
    corpus.add(findBenchmark("MM-4"));
    EXPECT_TRUE(corpus.contains("MM-4"));
    EXPECT_FALSE(corpus.contains("WS03"));
    EXPECT_EQ(corpus.find("MM-4").name, "MM-4");
    EXPECT_THROW(corpus.add(findBenchmark("MM-4")), std::invalid_argument);
    EXPECT_THROW(corpus.find("nope"), std::out_of_range);
}

// ---------------------------------------------------------------------------
// Content fingerprints
// ---------------------------------------------------------------------------

TEST(Fingerprint, GeneratedIsAFunctionOfSpecAndBudget)
{
    const BenchmarkSpec mm4 = findBenchmark("MM-4");
    const BenchmarkSpec ws03 = findBenchmark("WS03");
    EXPECT_EQ(TraceCorpus::fingerprint(mm4, 20000),
              TraceCorpus::fingerprint(mm4, 20000));
    EXPECT_NE(TraceCorpus::fingerprint(mm4, 20000),
              TraceCorpus::fingerprint(mm4, 40000));
    EXPECT_NE(TraceCorpus::fingerprint(mm4, 20000),
              TraceCorpus::fingerprint(ws03, 20000));
}

TEST(Fingerprint, RecordedTracksFileBytes)
{
    const std::string path = tempPath("fp", ".cbp");
    {
        GeneratorBranchSource source(findBenchmark("MM-4"), 2000);
        writeCbpFile(source, path);
    }
    const BenchmarkSpec spec = makeRecordedBenchmark("fp", "EXT", path);
    const std::uint64_t before = TraceCorpus::fingerprint(spec, 0);
    EXPECT_EQ(before, TraceCorpus::fingerprint(spec, 12345));
    {
        std::ofstream out(path,
                          std::ios::binary | std::ios::app);
        out << 'x';
    }
    EXPECT_NE(before, TraceCorpus::fingerprint(spec, 0));
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// The process-wide decoded-trace cache
// ---------------------------------------------------------------------------

TEST(StreamCache, DecodeOnceThenServeShared)
{
    TraceCorpus::clearStreamCache();
    const BenchmarkSpec spec =
        makeRecordedBenchmark("REC-01", "REC", dataDir + "/rec-01.cbp");

    const std::unique_ptr<BranchSource> first =
        TraceCorpus::open(spec, 200000);
    TraceCorpus::StreamCacheStats stats = TraceCorpus::streamCacheStats();
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_GT(stats.bytes, 0u);

    const std::unique_ptr<BranchSource> second =
        TraceCorpus::open(spec, 200000);
    stats = TraceCorpus::streamCacheStats();
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_EQ(stats.hits, 1u);

    // The cached stream carries the benchmark's name and replays the
    // exact record sequence of the streaming reader.
    EXPECT_EQ(first->name(), "REC-01");
    const std::vector<BranchRecord> cached = drain(*first);
    CbpFileBranchSource streamed(dataDir + "/rec-01.cbp", "REC-01");
    const std::vector<BranchRecord> direct = drain(streamed);
    ASSERT_EQ(cached.size(), direct.size());
    for (std::size_t i = 0; i < cached.size(); ++i)
        ASSERT_TRUE(cached[i] == direct[i]) << "record " << i;

    // reset() replays from the start (simulateMany depends on it).
    second->reset();
    EXPECT_EQ(drain(*second).size(), cached.size());

    TraceCorpus::clearStreamCache();
    stats = TraceCorpus::streamCacheStats();
    EXPECT_EQ(stats.entries, 0u);
    EXPECT_EQ(stats.bytes, 0u);
}

TEST(StreamCache, GeneratedSpecsBypassTheCache)
{
    TraceCorpus::clearStreamCache();
    const std::unique_ptr<BranchSource> source =
        TraceCorpus::open(findBenchmark("MM-4"), 2000);
    const TraceCorpus::StreamCacheStats stats =
        TraceCorpus::streamCacheStats();
    EXPECT_EQ(stats.entries, 0u);
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.misses, 0u);
    // Same stream as the plain factory (generated sources finish their
    // kernel round, so compare against it rather than the raw target).
    const std::unique_ptr<BranchSource> direct =
        makeBranchSource(findBenchmark("MM-4"), 2000);
    EXPECT_EQ(drain(*source).size(), drain(*direct).size());
}

// ---------------------------------------------------------------------------
// Directory discovery
// ---------------------------------------------------------------------------

TEST(FromDirectory, DiscoversSortedTraceFiles)
{
    namespace fs = std::filesystem;
    const std::string dir = tempPath("corpusdir");
    fs::create_directories(dir);
    fs::copy_file(dataDir + "/rec-02.cbp", dir + "/beta.cbp");
    {
        GeneratorBranchSource source(findBenchmark("MM-4"), 1500);
        writeTraceFile(source, dir + "/alpha.imt");
    }
    std::ofstream(dir + "/notes.txt") << "ignored\n";

    const std::vector<BenchmarkSpec> specs =
        TraceCorpus::fromDirectory(dir);
    ASSERT_EQ(specs.size(), 2u);
    EXPECT_EQ(specs[0].name, "alpha");
    EXPECT_EQ(specs[0].backend, TraceBackend::RecordedImt);
    EXPECT_EQ(specs[1].name, "beta");
    EXPECT_EQ(specs[1].backend, TraceBackend::RecordedCbp);
    EXPECT_EQ(specs[0].suite, "EXT");
    EXPECT_EQ(TraceCorpus::fromDirectory(dir, "MINE")[0].suite, "MINE");

    EXPECT_THROW(TraceCorpus::fromDirectory(dir + "/nope"),
                 std::runtime_error);
    fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Persistent characterization cache
// ---------------------------------------------------------------------------

TEST(CharCache, PersistsAndReloadsByFingerprint)
{
    namespace fs = std::filesystem;
    const std::string dir = tempPath("charcache");

    TraceCorpus first = makeSuiteCorpus("");
    first.setCharacterizationCacheDir(dir);
    const TraceCharacterization computed =
        first.characterize("MM-4", 20000);

    // Exactly one persisted record, named <benchmark>-<fingerprint>.char.
    std::vector<std::string> files;
    for (const fs::directory_entry &entry : fs::directory_iterator(dir))
        files.push_back(entry.path().filename().string());
    ASSERT_EQ(files.size(), 1u);
    EXPECT_EQ(files[0].rfind("MM-4-", 0), 0u) << files[0];

    // Prove the reload path is really used: doctor the persisted record
    // and a fresh corpus must return the doctored values (fingerprint
    // matches, so the cache is trusted over recomputation).
    TraceCharacterization doctored = computed;
    doctored.branches += 1;
    std::ofstream(dir + "/" + files[0], std::ios::trunc)
        << doctored.serialize() << '\n';

    TraceCorpus second = makeSuiteCorpus("");
    second.setCharacterizationCacheDir(dir);
    EXPECT_EQ(second.characterize("MM-4", 20000), doctored);

    // A different budget is a different fingerprint: recomputed, not
    // served from the doctored record.
    EXPECT_EQ(second.characterize("MM-4", 21000).branches,
              second.characterize("MM-4", 21000).branches);
    EXPECT_NE(second.characterize("MM-4", 21000), doctored);

    fs::remove_all(dir);
}

} // anonymous namespace
