/**
 * @file
 * Tests for the design-space exploration subsystem: the spec-override
 * grammar round trip, parameter-space expansion, the resumable sweep
 * journal (bit-identity across worker counts and kill/resume), the
 * shard/plan/merge orchestration (fragment byte-identity, truncated-
 * fragment recovery), and the Pareto layer against an O(n^2) dominance
 * oracle.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "src/dse/param_space.hh"
#include "src/dse/pareto.hh"
#include "src/dse/sweep.hh"
#include "src/predictors/zoo.hh"
#include "src/sim/simulator.hh"
#include "src/sim/suite_runner.hh"
#include "src/util/rng.hh"
#include "src/workloads/suite.hh"

using namespace imli;

namespace
{

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(static_cast<bool>(in)) << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(static_cast<bool>(os)) << path;
    os << content;
}

std::string
tmpPath(const std::string &leaf)
{
    return ::testing::TempDir() + "/" + leaf;
}

} // anonymous namespace

// ---------------------------------------------------------------------------
// Spec grammar: canonical round trip.
// ---------------------------------------------------------------------------

TEST(SpecGrammar, KnownSpecsAreCanonicalFixedPoints)
{
    for (const std::string &spec : knownSpecs()) {
        EXPECT_EQ(canonicalSpec(spec), spec);
        EXPECT_EQ(describeConfig(parseSpec(spec)), canonicalSpec(spec));
    }
}

struct RoundTrip
{
    const char *input;
    const char *canonical;
};

class SpecRoundTrip : public ::testing::TestWithParam<RoundTrip>
{
};

TEST_P(SpecRoundTrip, DescribeEqualsCanonical)
{
    const RoundTrip &rt = GetParam();
    EXPECT_EQ(canonicalSpec(rt.input), rt.canonical);
    // The acceptance identity: describeConfig(parse(s)) == canonical(s).
    EXPECT_EQ(describeConfig(parseSpec(rt.input)), canonicalSpec(rt.input));
    // Canonical forms are fixed points.
    EXPECT_EQ(canonicalSpec(rt.canonical), rt.canonical);
    // And every canonical spec constructs.
    EXPECT_NE(makePredictor(rt.input), nullptr);
}

INSTANTIATE_TEST_SUITE_P(
    OverrideCombinations, SpecRoundTrip,
    ::testing::Values(
        RoundTrip{"tage-gsc+sic@sic.logsize=9",
                  "tage-gsc+sic@sic.logsize=9"},
        RoundTrip{"tage-gsc+sic@sic.logsize=9,sic.logsize=10",
                  "tage-gsc+sic@sic.logsize=10"},
        RoundTrip{"tage-gsc+i@sic.weight=2,oh.weight=2",
                  "tage-gsc+i@oh.weight=2,sic.weight=2"},
        RoundTrip{"tage-gsc+sic@tage.tables=10",
                  "tage-gsc+sic@tage.tables=10"},
        RoundTrip{"tage-gsc+i@sic.logsize=9,oh.logsize=9",
                  "tage-gsc+i@oh.logsize=9,sic.logsize=9"},
        RoundTrip{"tage-gsc+i+l@loop.logsets=3",
                  "tage-gsc+i+l@loop.logsets=3"},
        RoundTrip{"tage-gsc+loop@loop.ways=2", "tage-gsc+loop@loop.ways=2"},
        RoundTrip{"tage-gsc+wh@wh.entries=14", "tage-gsc+wh@wh.entries=14"},
        RoundTrip{"tage-gsc+sic+wh@wh.histbits=512,sic.logsize=8",
                  "tage-gsc+sic+wh@sic.logsize=8,wh.histbits=512"},
        RoundTrip{"tage-gsc+sic+omli@imli.ctrbits=12",
                  "tage-gsc+sic+omli@imli.ctrbits=12"},
        RoundTrip{"tage-gsc+i+imligsc@gsc.tables=8",
                  "tage-gsc+i+imligsc@gsc.tables=8"},
        RoundTrip{"tage-gsc+oh@outer.pipe=32,outer.bits=2048",
                  "tage-gsc+oh@outer.bits=2048,outer.pipe=32"},
        RoundTrip{"tage-gsc@tage.minhist=2,tage.maxhist=1000",
                  "tage-gsc@tage.maxhist=1000,tage.minhist=2"},
        RoundTrip{"tage-gsc@bias.tables=3,bias.logsize=8",
                  "tage-gsc@bias.logsize=8,bias.tables=3"},
        RoundTrip{"tage-gsc+oh@oh.delay=16", "tage-gsc+oh@oh.delay=16"},
        RoundTrip{"tage-gsc@gsc.tables=4,gsc.logsize=9,gsc.ctrbits=5",
                  "tage-gsc@gsc.ctrbits=5,gsc.logsize=9,gsc.tables=4"},
        RoundTrip{"gehl@gsc.tables=12", "gehl@gsc.tables=12"},
        RoundTrip{"gehl+sic@sic.logsize=7", "gehl+sic@sic.logsize=7"},
        RoundTrip{"gehl+i@oh.ctrbits=5,imli.ctrbits=8",
                  "gehl+i@imli.ctrbits=8,oh.ctrbits=5"},
        RoundTrip{"gehl+l@local.tables=2,local.logsize=9",
                  "gehl+l@local.logsize=9,local.tables=2"},
        RoundTrip{"gehl@gsc.minhist=1,gsc.maxhist=400",
                  "gehl@gsc.maxhist=400,gsc.minhist=1"},
        RoundTrip{"gehl+wh@wh.entries=3,loop.logsets=4",
                  "gehl+wh@loop.logsets=4,wh.entries=3"},
        // Add-on order canonicalization rides along with overrides.
        RoundTrip{"tage-gsc+wh+sic@sic.weight=1",
                  "tage-gsc+sic+wh@sic.weight=1"},
        RoundTrip{"tage-gsc+oh+sic", "tage-gsc+i"},
        RoundTrip{"tage-gsc+l+loop", "tage-gsc+l"}));

TEST(SpecGrammar, RejectsBadOverrides)
{
    // Unknown keys / hosts.
    EXPECT_THROW(parseSpec("tage-gsc@bogus.key=1"), std::invalid_argument);
    EXPECT_THROW(parseSpec("tage-gsc@siclogsize=9"), std::invalid_argument);
    EXPECT_THROW(parseSpec("bimodal@tage.tables=4"), std::invalid_argument);
    EXPECT_THROW(parseSpec("gshare@sic.logsize=9"), std::invalid_argument);
    // tage.* keys only exist on the tage-gsc host.
    EXPECT_THROW(parseSpec("gehl@tage.tables=4"), std::invalid_argument);
    EXPECT_THROW(parseSpec("gehl@bias.logsize=8"), std::invalid_argument);
    // Range and power-of-two checks.
    EXPECT_THROW(parseSpec("tage-gsc@sic.logsize=3"), std::invalid_argument);
    EXPECT_THROW(parseSpec("tage-gsc@sic.logsize=17"),
                 std::invalid_argument);
    EXPECT_THROW(parseSpec("tage-gsc@outer.bits=1000"),
                 std::invalid_argument);
    EXPECT_THROW(parseSpec("tage-gsc@outer.pipe=24"), std::invalid_argument);
    // Malformed sections.
    EXPECT_THROW(parseSpec("tage-gsc@"), std::invalid_argument);
    EXPECT_THROW(parseSpec("tage-gsc@sic.logsize"), std::invalid_argument);
    EXPECT_THROW(parseSpec("tage-gsc@=5"), std::invalid_argument);
    EXPECT_THROW(parseSpec("tage-gsc@sic.logsize="), std::invalid_argument);
    EXPECT_THROW(parseSpec("tage-gsc@sic.logsize=abc"),
                 std::invalid_argument);
    EXPECT_THROW(parseSpec("tage-gsc@sic.logsize=-1"),
                 std::invalid_argument);
    EXPECT_THROW(parseSpec("tage-gsc@sic.logsize=9,,oh.logsize=8"),
                 std::invalid_argument);
    EXPECT_THROW(parseSpec("tage-gsc@sic.logsize=9,"),
                 std::invalid_argument);
    EXPECT_THROW(parseSpec("tage-gsc@a=1@b=2"), std::invalid_argument);
    // Cross-parameter constraints.
    EXPECT_THROW(parseSpec("tage-gsc@tage.maxhist=8"),
                 std::invalid_argument);
    EXPECT_THROW(makePredictor("tage-gsc@tage.minhist=50,tage.maxhist=60"),
                 std::invalid_argument);
    EXPECT_THROW(makePredictor("tage-gsc@gsc.maxhist=8,gsc.tables=8"),
                 std::invalid_argument);
    // gsc.minhist participates in the fit check: 16 strictly increasing
    // lengths cannot fit in [250, 256] (the rounding bump would push
    // past the declared maxhist).
    EXPECT_THROW(
        parseSpec("tage-gsc@gsc.minhist=250,gsc.maxhist=256,gsc.tables=16"),
        std::invalid_argument);
    EXPECT_THROW(
        parseSpec("gehl@gsc.minhist=250,gsc.maxhist=256,gsc.tables=16"),
        std::invalid_argument);
    EXPECT_NO_THROW(
        parseSpec("tage-gsc@gsc.minhist=100,gsc.maxhist=256,gsc.tables=16"));
    // The PIPE checkpoint packs into 32 bits: in-range-looking widths
    // beyond that must be rejected, not corrupt speculative state.
    EXPECT_THROW(parseSpec("tage-gsc+oh@outer.pipe=64"),
                 std::invalid_argument);
    EXPECT_NO_THROW(parseSpec("tage-gsc+oh@outer.pipe=32"));
    // Outer-history geometry: 2^iterlog slots must fit in the table.
    EXPECT_THROW(parseSpec("tage-gsc+oh@outer.bits=64,outer.iterlog=10"),
                 std::invalid_argument);
    EXPECT_NO_THROW(
        parseSpec("tage-gsc+oh@outer.bits=1024,outer.iterlog=10"));
    // +sic hashes the IMLI counter into the last 2 gsc tables; a bank
    // smaller than that would silently lose the insertion.
    EXPECT_THROW(parseSpec("tage-gsc+sic@gsc.tables=1"),
                 std::invalid_argument);
    EXPECT_NO_THROW(parseSpec("tage-gsc+sic@gsc.tables=2"));
    EXPECT_NO_THROW(parseSpec("tage-gsc@gsc.tables=1"));
    // Overrides of disabled components are rejected: sweeping them
    // would simulate identical points and fake a Pareto spread.
    EXPECT_THROW(parseSpec("tage-gsc@sic.logsize=9"),
                 std::invalid_argument);
    EXPECT_THROW(parseSpec("tage-gsc+sic@oh.logsize=9"),
                 std::invalid_argument);
    EXPECT_THROW(parseSpec("tage-gsc@outer.bits=2048"),
                 std::invalid_argument);
    EXPECT_THROW(parseSpec("gehl@wh.entries=3"), std::invalid_argument);
    EXPECT_THROW(parseSpec("tage-gsc@loop.ways=2"), std::invalid_argument);
    EXPECT_THROW(parseSpec("gehl+loop@local.tables=2"),
                 std::invalid_argument);
    EXPECT_THROW(parseSpec("tage-gsc@imli.ctrbits=12"),
                 std::invalid_argument);
    // ... while the enabling add-on makes the same key legal.
    EXPECT_NO_THROW(parseSpec("tage-gsc+sic@sic.logsize=9"));
    EXPECT_NO_THROW(parseSpec("tage-gsc+wh@loop.ways=2"));
    EXPECT_NO_THROW(parseSpec("gehl+l@local.tables=2"));
}

TEST(SpecGrammar, OverridesReachTheConfigStructs)
{
    const TageGscPredictor::Config tcfg = buildTageGscConfig(parseSpec(
        "tage-gsc+i@tage.tables=10,tage.logsize=11,sic.logsize=10,"
        "oh.delay=8,outer.bits=2048"));
    EXPECT_EQ(tcfg.tage.numTables, 10u);
    EXPECT_EQ(tcfg.tage.logEntries, 11u);
    EXPECT_EQ(tcfg.imli.sic.logEntries, 10u);
    EXPECT_EQ(tcfg.imli.ohUpdateDelay, 8u);
    EXPECT_EQ(tcfg.imli.outer.tableBits, 2048u);
    EXPECT_TRUE(tcfg.imli.enableSic);

    const GehlPredictor::Config gcfg = buildGehlConfig(
        parseSpec("gehl+i@gsc.tables=12,gsc.maxhist=300,sic.weight=2"));
    EXPECT_EQ(gcfg.global.numTables, 12u);
    EXPECT_EQ(gcfg.global.maxHistory, 300u);
    EXPECT_EQ(gcfg.imli.sic.weight, 2);

    // The display name carries the canonical override suffix.
    EXPECT_EQ(makePredictor("tage-gsc+sic@sic.logsize=10")->name(),
              "TAGE-GSC+SIC@sic.logsize=10");

    // The builders are public API over an aggregate: a hand-built
    // ParsedSpec with an unknown or wrong-host key must throw, not
    // crash through a null apply slot.
    ParsedSpec bogus;
    bogus.host = "gehl";
    bogus.overrides.push_back({"tage.tables", 4});
    EXPECT_THROW(buildGehlConfig(bogus), std::invalid_argument);
    bogus.overrides[0].key = "no.such.key";
    EXPECT_THROW(buildGehlConfig(bogus), std::invalid_argument);
    bogus.host = "tage-gsc";
    EXPECT_THROW(buildTageGscConfig(bogus), std::invalid_argument);
    // Hosts without overridable geometry reject hand-built overrides
    // too (parseSpec already does; the struct path must match).
    bogus.host = "bimodal";
    bogus.overrides[0].key = "tage.tables";
    EXPECT_THROW(makePredictor(bogus), std::invalid_argument);
}

TEST(SpecGrammar, OverriddenPredictorSimulates)
{
    PredictorPtr pred =
        makePredictor("tage-gsc+sic@sic.logsize=4,tage.logsize=8");
    const Trace t = generateTrace(findBenchmark("WS03"), 4000);
    const SimResult r = simulate(*pred, t);
    EXPECT_GT(r.conditionals, 0u);
    EXPECT_GT(r.accuracy(), 0.5);
}

TEST(SpecGrammar, KnownOverrideKeysAreSortedAndDocumented)
{
    const std::vector<OverrideKeyInfo> keys = knownOverrideKeys();
    ASSERT_FALSE(keys.empty());
    for (std::size_t i = 0; i < keys.size(); ++i) {
        EXPECT_FALSE(keys[i].doc.empty()) << keys[i].key;
        EXPECT_LT(keys[i].minValue, keys[i].maxValue) << keys[i].key;
        if (i > 0)
            EXPECT_LT(keys[i - 1].key, keys[i].key);
    }
}

TEST(SpecGrammar, SplitSpecListBindsOverrideCommas)
{
    const std::vector<std::string> specs = splitSpecList(
        "tage-gsc@sic.logsize=9,sic.ctrbits=5,gehl,bimodal,"
        "gehl+i@oh.logsize=9");
    ASSERT_EQ(specs.size(), 4u);
    EXPECT_EQ(specs[0], "tage-gsc@sic.logsize=9,sic.ctrbits=5");
    EXPECT_EQ(specs[1], "gehl");
    EXPECT_EQ(specs[2], "bimodal");
    EXPECT_EQ(specs[3], "gehl+i@oh.logsize=9");
    EXPECT_THROW(splitSpecList("tage-gsc,sic.logsize=9"),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Parameter space.
// ---------------------------------------------------------------------------

TEST(ParamSpaceTest, ParseDimensionForms)
{
    const ParamDimension list = parseDimension("sic.logsize=7,9,8");
    EXPECT_EQ(list.key, "sic.logsize");
    EXPECT_EQ(list.values, (std::vector<long long>{7, 9, 8}));

    EXPECT_EQ(parseDimension("sic.logsize=7..10").values,
              (std::vector<long long>{7, 8, 9, 10}));
    EXPECT_EQ(parseDimension("oh.delay=0..16..8").values,
              (std::vector<long long>{0, 8, 16}));
    EXPECT_EQ(parseDimension("sic.ctrbits=4,6..8").values,
              (std::vector<long long>{4, 6, 7, 8}));

    EXPECT_THROW(parseDimension("bogus=1"), std::invalid_argument);
    EXPECT_THROW(parseDimension("sic.logsize"), std::invalid_argument);
    EXPECT_THROW(parseDimension("sic.logsize="), std::invalid_argument);
    EXPECT_THROW(parseDimension("sic.logsize=3"), std::invalid_argument);
    EXPECT_THROW(parseDimension("sic.logsize=9..8"), std::invalid_argument);
    EXPECT_THROW(parseDimension("sic.logsize=8..9..0"),
                 std::invalid_argument);
    EXPECT_THROW(parseDimension("sic.logsize=8,,9"), std::invalid_argument);
    EXPECT_THROW(parseDimension("sic.logsize=8,8"), std::invalid_argument);
    EXPECT_THROW(parseDimension("sic.logsize=7..9,8"),
                 std::invalid_argument);
    // Range endpoints are bounds-checked BEFORE expansion: a huge upper
    // bound must throw immediately, not materialize billions of values.
    EXPECT_THROW(parseDimension("gsc.maxhist=8..99999999999"),
                 std::invalid_argument);

    // A step larger than the span yields just the lower endpoint; even
    // a near-LLONG_MAX step must not overflow the increment (UB).
    EXPECT_EQ(parseDimension("gsc.tables=1..4..9223372036854775800").values,
              (std::vector<long long>{1}));
    EXPECT_EQ(parseDimension("sic.logsize=4..16..100").values,
              (std::vector<long long>{4}));

    // Power-of-two keys: ranges step through the powers of two, odd
    // values and explicit steps are rejected up front.
    EXPECT_EQ(parseDimension("outer.bits=64..1024").values,
              (std::vector<long long>{64, 128, 256, 512, 1024}));
    EXPECT_EQ(parseDimension("outer.pipe=8,16").values,
              (std::vector<long long>{8, 16}));
    EXPECT_THROW(parseDimension("outer.bits=100"), std::invalid_argument);
    EXPECT_THROW(parseDimension("outer.bits=64..1000"),
                 std::invalid_argument);
    EXPECT_THROW(parseDimension("outer.bits=64..1024..64"),
                 std::invalid_argument);
}

TEST(ParamSpaceTest, OversizedGridsThrowInsteadOfMaterializing)
{
    ParamSpace space;
    space.baseSpec = "tage-gsc";
    space.dimensions.push_back(parseDimension("gsc.maxhist=8..4096"));
    space.dimensions.push_back(parseDimension("tage.maxhist=8..4096"));
    space.dimensions.push_back(parseDimension("oh.delay=0..1024"));
    // ~1.7e10 points: gridSize reports it, expandGrid refuses it.
    EXPECT_GT(space.gridSize(), ParamSpace::maxGridPoints);
    EXPECT_THROW(space.expandGrid(), std::invalid_argument);
}

TEST(ParamSpaceTest, GridExpansionIsRowMajor)
{
    ParamSpace space;
    space.baseSpec = "tage-gsc+sic";
    space.dimensions.push_back(parseDimension("sic.logsize=8,9"));
    space.dimensions.push_back(parseDimension("sic.ctrbits=5,6"));
    EXPECT_EQ(space.gridSize(), 4u);
    const std::vector<std::string> points = space.expandGrid();
    ASSERT_EQ(points.size(), 4u);
    // First dimension slowest; override keys sorted inside each point.
    EXPECT_EQ(points[0], "tage-gsc+sic@sic.ctrbits=5,sic.logsize=8");
    EXPECT_EQ(points[1], "tage-gsc+sic@sic.ctrbits=6,sic.logsize=8");
    EXPECT_EQ(points[2], "tage-gsc+sic@sic.ctrbits=5,sic.logsize=9");
    EXPECT_EQ(points[3], "tage-gsc+sic@sic.ctrbits=6,sic.logsize=9");
}

TEST(ParamSpaceTest, GridWithNoDimensionsIsTheBasePoint)
{
    ParamSpace space;
    space.baseSpec = "tage-gsc+i";
    EXPECT_EQ(space.expandGrid(),
              std::vector<std::string>{"tage-gsc+i"});
}

TEST(ParamSpaceTest, DimensionOverridesBaseSpecKey)
{
    ParamSpace space;
    space.baseSpec = "tage-gsc+sic@sic.logsize=7,sic.weight=2";
    space.dimensions.push_back(parseDimension("sic.logsize=9,10"));
    const std::vector<std::string> points = space.expandGrid();
    ASSERT_EQ(points.size(), 2u);
    EXPECT_EQ(points[0], "tage-gsc+sic@sic.logsize=9,sic.weight=2");
    EXPECT_EQ(points[1], "tage-gsc+sic@sic.logsize=10,sic.weight=2");
}

TEST(ParamSpaceTest, DuplicateDimensionKeysThrow)
{
    ParamSpace space;
    space.baseSpec = "tage-gsc";
    space.dimensions.push_back(parseDimension("sic.logsize=8,9"));
    space.dimensions.push_back(parseDimension("sic.logsize=10,11"));
    EXPECT_THROW(space.expandGrid(), std::invalid_argument);
}

TEST(ParamSpaceTest, RandomSamplingIsSeededAndDeduplicated)
{
    ParamSpace space;
    space.baseSpec = "tage-gsc+sic";
    space.dimensions.push_back(parseDimension("sic.logsize=7..10"));
    space.dimensions.push_back(parseDimension("sic.ctrbits=4..6"));
    const std::vector<std::string> a = space.sampleRandom(6, 42);
    const std::vector<std::string> b = space.sampleRandom(6, 42);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.size(), 6u);
    // All samples are distinct grid members.
    const std::vector<std::string> grid = space.expandGrid();
    std::set<std::string> unique(a.begin(), a.end());
    EXPECT_EQ(unique.size(), a.size());
    for (const std::string &point : a)
        EXPECT_NE(std::find(grid.begin(), grid.end(), point), grid.end())
            << point;
    // A different seed explores differently.
    EXPECT_NE(space.sampleRandom(6, 43), a);
    // Exhausting a small space returns the whole space, once each.
    EXPECT_EQ(space.sampleRandom(1000, 7).size(), grid.size());
}

// ---------------------------------------------------------------------------
// Sweep engine + journal.
// ---------------------------------------------------------------------------

namespace
{

std::vector<BenchmarkSpec>
sweepBenchmarks()
{
    return {findBenchmark("MM-4"), findBenchmark("WS03"),
            findBenchmark("SPEC2K6-04")};
}

/** A 12-point grid over the SIC geometry (cheap: small tables). */
std::vector<std::string>
twelvePoints()
{
    ParamSpace space;
    space.baseSpec = "tage-gsc+sic@tage.logsize=8,gsc.logsize=8";
    space.dimensions.push_back(parseDimension("sic.logsize=7,8,9"));
    space.dimensions.push_back(parseDimension("sic.ctrbits=4,5"));
    space.dimensions.push_back(parseDimension("sic.weight=2,3"));
    return space.expandGrid();
}

SweepOptions
sweepOptions(const std::string &journal, unsigned jobs)
{
    SweepOptions options;
    options.journalPath = journal;
    options.branchesPerTrace = 2000;
    options.jobs = jobs;
    return options;
}

} // anonymous namespace

TEST(SweepJournal, TwelvePointGridBitIdenticalAcrossJobs)
{
    const std::vector<std::string> points = twelvePoints();
    ASSERT_EQ(points.size(), 12u);
    std::string first;
    for (unsigned jobs : {1u, 2u, 4u}) {
        const std::string path =
            tmpPath("sweep_jobs" + std::to_string(jobs) + ".csv");
        std::remove(path.c_str());
        const SweepResults results =
            runSweep(sweepBenchmarks(), points, sweepOptions(path, jobs));
        EXPECT_EQ(results.cells.size(), 36u);
        EXPECT_EQ(results.simulatedCells, 36u);
        const std::string content = readFile(path);
        if (first.empty())
            first = content;
        else
            EXPECT_EQ(content, first) << "jobs=" << jobs;
        std::remove(path.c_str());
    }
    // 12 points x 3 benchmarks + metadata + header, newline-terminated.
    EXPECT_EQ(std::count(first.begin(), first.end(), '\n'), 38);
}

TEST(SweepJournal, ResumeAfterKillIsBitIdentical)
{
    const std::vector<std::string> points = twelvePoints();
    const std::string full = tmpPath("sweep_full.csv");
    const std::string killed = tmpPath("sweep_killed.csv");
    std::remove(full.c_str());
    std::remove(killed.c_str());

    runSweep(sweepBenchmarks(), points, sweepOptions(full, 2));
    const std::string reference = readFile(full);

    // Simulate a kill mid-append: keep the header, a dozen committed
    // rows and a truncated tail that still "parses" as a prefix.
    const std::size_t cut = reference.find('\n', reference.size() / 3);
    ASSERT_NE(cut, std::string::npos);
    writeFile(killed, reference.substr(0, cut + 1) + "\"tage-gsc+sic@tage");

    const SweepResults resumed =
        runSweep(sweepBenchmarks(), points, sweepOptions(killed, 4));
    EXPECT_LT(resumed.simulatedCells, 36u);
    EXPECT_GT(resumed.simulatedCells, 0u);
    EXPECT_EQ(readFile(killed), reference);

    // Resuming a complete journal simulates nothing and changes nothing.
    const SweepResults noop =
        runSweep(sweepBenchmarks(), points, sweepOptions(killed, 1));
    EXPECT_EQ(noop.simulatedCells, 0u);
    EXPECT_EQ(readFile(killed), reference);
    EXPECT_EQ(noop.cells.size(), 36u);

    std::remove(full.c_str());
    std::remove(killed.c_str());
}

TEST(SweepJournal, MatchesSuiteRunnerCellForCell)
{
    // The sweep engine must agree bit for bit with the suite runner: both
    // stream the same sources through simulateMany.
    const std::vector<std::string> points = {
        "tage-gsc@tage.logsize=8", "tage-gsc@tage.logsize=9"};
    const std::string path = tmpPath("sweep_vs_suite.csv");
    std::remove(path.c_str());
    const SweepResults sweep =
        runSweep(sweepBenchmarks(), points, sweepOptions(path, 1));
    std::remove(path.c_str());

    SuiteRunOptions suiteOptions;
    suiteOptions.branchesPerTrace = 2000;
    const SuiteResults suite = runSuite(sweepBenchmarks(), points,
                                        suiteOptions);
    for (const SweepCell &cell : sweep.cells) {
        const SuiteCell &ref = suite.at(cell.benchmark, cell.spec);
        EXPECT_EQ(cell.mispredictions, ref.mispredictions);
        EXPECT_EQ(cell.conditionals, ref.conditionals);
        EXPECT_EQ(cell.instructions, ref.instructions);
    }
}

TEST(SweepJournal, ForeignJournalsAreRejected)
{
    const std::vector<std::string> points = {"tage-gsc@tage.logsize=8"};
    const std::string path = tmpPath("sweep_foreign.csv");
    std::remove(path.c_str());
    runSweep(sweepBenchmarks(), points, sweepOptions(path, 1));

    // Different points: the journal rows no longer belong to the sweep.
    EXPECT_THROW(runSweep(sweepBenchmarks(),
                          {"tage-gsc@tage.logsize=9"},
                          sweepOptions(path, 1)),
                 std::runtime_error);
    // Different run options: merging 2000-branch cells with 5000-branch
    // cells would silently corrupt the averages.
    SweepOptions longer = sweepOptions(path, 1);
    longer.branchesPerTrace = 5000;
    EXPECT_THROW(runSweep(sweepBenchmarks(), points, longer),
                 std::runtime_error);
    SweepOptions warmed = sweepOptions(path, 1);
    warmed.sim.warmupBranches = 100;
    EXPECT_THROW(runSweep(sweepBenchmarks(), points, warmed),
                 std::runtime_error);
    // A foreign header is rejected outright.
    writeFile(path, "some,other,header\n");
    EXPECT_THROW(runSweep(sweepBenchmarks(), points, sweepOptions(path, 1)),
                 std::runtime_error);
    std::remove(path.c_str());
}

TEST(SweepJournal, RowRoundTripAndMalformedRows)
{
    SweepCell cell;
    cell.spec = "tage-gsc+sic@sic.ctrbits=5,sic.logsize=8";
    cell.benchmark = "MM-4";
    cell.suite = "CBP4";
    cell.storageBits = 12345;
    cell.mispredictions = 42;
    cell.conditionals = 1000;
    cell.instructions = 7000;
    const SweepCell parsed = parseJournalRow(formatJournalRow(cell));
    EXPECT_EQ(parsed.spec, cell.spec);
    EXPECT_EQ(parsed.benchmark, cell.benchmark);
    EXPECT_EQ(parsed.suite, cell.suite);
    EXPECT_EQ(parsed.storageBits, cell.storageBits);
    EXPECT_EQ(parsed.mispredictions, cell.mispredictions);
    EXPECT_DOUBLE_EQ(parsed.mpki(), cell.mpki());

    EXPECT_THROW(parseJournalRow("no-quote,MM-4,CBP4,1,2,3,4"),
                 std::runtime_error);
    EXPECT_THROW(parseJournalRow("\"spec\",MM-4,CBP4,1,2,3"),
                 std::runtime_error);
    EXPECT_THROW(parseJournalRow("\"spec\",MM-4,CBP4,1,2,3,x"),
                 std::runtime_error);

    // A malformed row anywhere but the (truncated) tail is an error.
    const std::string meta = journalMeta({}, sweepOptions("unused", 1));
    const std::string path = tmpPath("sweep_malformed.csv");
    writeFile(path, meta + "\n" + journalHeader() + "\ngarbage line\n" +
                        formatJournalRow(cell) + "\n");
    EXPECT_THROW(loadJournal(path), std::runtime_error);
    // A journal without the metadata line is rejected.
    writeFile(path, journalHeader() + "\n" + formatJournalRow(cell) + "\n");
    EXPECT_THROW(loadJournal(path), std::runtime_error);
    // ... while a non-newline-terminated tail is dropped silently, and
    // the metadata line is surfaced to the caller.
    writeFile(path, meta + "\n" + journalHeader() + "\n" +
                        formatJournalRow(cell) + "\n\"tage-gsc@tage");
    std::string loadedMeta;
    EXPECT_EQ(loadJournal(path, &loadedMeta).size(), 1u);
    EXPECT_EQ(loadedMeta, meta);
    std::remove(path.c_str());
}

TEST(SweepJournal, RecordedTraceContentIsFingerprinted)
{
    // A recorded benchmark's counters depend on the trace file bytes:
    // resuming a journal against a different recording under the same
    // benchmark name must be rejected, not silently merged.
    const std::string dir = IMLI_TEST_DATA_DIR;
    const BenchmarkSpec r1 =
        makeRecordedBenchmark("R1", "REC", dir + "/rec-01.cbp");
    const BenchmarkSpec r1swapped =
        makeRecordedBenchmark("R1", "REC", dir + "/rec-02.cbp");
    const std::vector<std::string> points = {"tage-gsc@tage.logsize=8"};
    const std::string path = tmpPath("sweep_recorded.csv");
    std::remove(path.c_str());

    const SweepResults first =
        runSweep({r1}, points, sweepOptions(path, 1));
    EXPECT_EQ(first.simulatedCells, 1u);
    EXPECT_THROW(runSweep({r1swapped}, points, sweepOptions(path, 1)),
                 std::runtime_error);
    // The unchanged recording resumes cleanly.
    EXPECT_EQ(runSweep({r1}, points, sweepOptions(path, 1)).simulatedCells,
              0u);
    std::remove(path.c_str());
}

TEST(SweepJournal, InputValidation)
{
    SweepOptions options = sweepOptions(tmpPath("sweep_valid.csv"), 1);
    EXPECT_THROW(runSweep(sweepBenchmarks(), {}, options),
                 std::invalid_argument);
    EXPECT_THROW(runSweep({}, {"tage-gsc"}, options),
                 std::invalid_argument);
    // Duplicate points after canonicalization.
    EXPECT_THROW(runSweep(sweepBenchmarks(),
                          {"tage-gsc+oh+sic", "tage-gsc+i"}, options),
                 std::invalid_argument);
    options.journalPath = "";
    EXPECT_THROW(runSweep(sweepBenchmarks(), {"tage-gsc"}, options),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Pareto layer vs an O(n^2) oracle.
// ---------------------------------------------------------------------------

namespace
{

/** The textbook dominance definition, straight off the acceptance bar. */
bool
oracleDominates(const ParetoEntry &a, const ParetoEntry &b)
{
    return a.storageBits <= b.storageBits && a.avgMpki <= b.avgMpki &&
           (a.storageBits < b.storageBits || a.avgMpki < b.avgMpki);
}

std::vector<bool>
oracleDominated(const std::vector<ParetoEntry> &entries)
{
    std::vector<bool> dominated(entries.size(), false);
    for (std::size_t i = 0; i < entries.size(); ++i)
        for (std::size_t j = 0; j < entries.size(); ++j)
            if (i != j && oracleDominates(entries[j], entries[i]))
                dominated[i] = true;
    return dominated;
}

} // anonymous namespace

TEST(Pareto, MarkDominatedMatchesOracleOnRandomClouds)
{
    Xoroshiro128 rng(2026);
    for (int round = 0; round < 20; ++round) {
        std::vector<ParetoEntry> entries(40);
        for (std::size_t i = 0; i < entries.size(); ++i) {
            entries[i].spec = "p" + std::to_string(i);
            // Small value ranges force plenty of exact ties on each axis.
            entries[i].storageBits = 100 + 10 * rng.below(6);
            entries[i].avgMpki = 1.0 + 0.25 * double(rng.below(8));
            entries[i].benchmarkCount = 1;
        }
        std::vector<ParetoEntry> marked = entries;
        markDominated(marked);
        const std::vector<bool> oracle = oracleDominated(entries);
        for (std::size_t i = 0; i < entries.size(); ++i)
            EXPECT_EQ(marked[i].dominated, oracle[i])
                << "round " << round << " point " << i << " (storage "
                << entries[i].storageBits << ", mpki "
                << entries[i].avgMpki << ")";

        // Every frontier member is oracle-non-dominated and vice versa.
        const std::vector<ParetoEntry> frontier = paretoFrontier(entries);
        std::size_t oracleFrontier = 0;
        for (bool d : oracle)
            oracleFrontier += d ? 0 : 1;
        EXPECT_EQ(frontier.size(), oracleFrontier);
        for (std::size_t i = 1; i < frontier.size(); ++i) {
            EXPECT_LE(frontier[i - 1].storageBits, frontier[i].storageBits);
        }
    }
}

TEST(Pareto, ExactTiesShareTheFrontier)
{
    std::vector<ParetoEntry> entries(2);
    entries[0].spec = "a";
    entries[0].storageBits = 100;
    entries[0].avgMpki = 2.0;
    entries[1].spec = "b";
    entries[1].storageBits = 100;
    entries[1].avgMpki = 2.0;
    markDominated(entries);
    EXPECT_FALSE(entries[0].dominated);
    EXPECT_FALSE(entries[1].dominated);
    EXPECT_EQ(paretoFrontier(entries).size(), 2u);
}

TEST(Pareto, AggregateCellsGroupsAndFilters)
{
    std::vector<SweepCell> cells;
    for (int b = 0; b < 2; ++b) {
        SweepCell cell;
        cell.spec = "tage-gsc";
        cell.benchmark = "B" + std::to_string(b);
        cell.suite = b == 0 ? "CBP4" : "CBP3";
        cell.storageBits = 1000;
        cell.mispredictions = b == 0 ? 10 : 30;
        cell.conditionals = 100;
        cell.instructions = 1000;
        cells.push_back(cell);
    }
    const std::vector<ParetoEntry> all = aggregateCells(cells);
    ASSERT_EQ(all.size(), 1u);
    EXPECT_EQ(all[0].benchmarkCount, 2u);
    EXPECT_DOUBLE_EQ(all[0].avgMpki, 20.0);
    const std::vector<ParetoEntry> cbp4 = aggregateCells(cells, "CBP4");
    ASSERT_EQ(cbp4.size(), 1u);
    EXPECT_DOUBLE_EQ(cbp4[0].avgMpki, 10.0);
    EXPECT_TRUE(aggregateCells(cells, "REC").empty());

    cells[1].storageBits = 2000;
    EXPECT_THROW(aggregateCells(cells), std::runtime_error);
}

TEST(Pareto, PartialJournalsAreRejected)
{
    // Averages over different benchmark subsets are not comparable: a
    // spec with a missing cell must not silently "dominate" or be
    // dominated on a skewed average.
    std::vector<SweepCell> cells;
    const auto add = [&](const char *spec, const char *bench,
                         std::uint64_t mispred) {
        SweepCell cell;
        cell.spec = spec;
        cell.benchmark = bench;
        cell.suite = "CBP4";
        cell.storageBits = 1000;
        cell.mispredictions = mispred;
        cell.conditionals = 100;
        cell.instructions = 1000;
        cells.push_back(cell);
    };
    add("a", "B1", 10);
    add("a", "B2", 90);
    add("b", "B1", 20);
    EXPECT_THROW(aggregateCells(cells), std::runtime_error);
    add("b", "B2", 20);
    EXPECT_EQ(aggregateCells(cells).size(), 2u);
}

// ---------------------------------------------------------------------------
// Shard / plan / merge orchestration.
// ---------------------------------------------------------------------------

TEST(ShardPlan, PartitionIsContiguousCoveringAndEven)
{
    const std::vector<std::string> points = {"tage-gsc@tage.logsize=8"};
    const SweepOptions options = sweepOptions(tmpPath("plan.csv"), 1);
    for (std::size_t count : {1, 2, 3, 5}) {
        const ShardPlan plan =
            planShards(sweepBenchmarks(), points, options, count);
        ASSERT_EQ(plan.shards.size(), count);
        EXPECT_EQ(plan.benchmarks.size(), 3u);
        EXPECT_EQ(plan.meta, journalMeta(sweepBenchmarks(), options));
        // Contiguous, covering, in order; as even as possible with
        // earlier shards taking the remainder (sizes never grow).
        std::size_t next = 0;
        for (std::size_t i = 0; i < count; ++i) {
            EXPECT_EQ(plan.shards[i].index, i);
            EXPECT_EQ(plan.shards[i].beginBench, next);
            EXPECT_GE(plan.shards[i].endBench, plan.shards[i].beginBench);
            EXPECT_LE(plan.shards[i].benchmarkCount(),
                      (3 + count - 1) / count);
            if (i > 0)
                EXPECT_LE(plan.shards[i].benchmarkCount(),
                          plan.shards[i - 1].benchmarkCount());
            next = plan.shards[i].endBench;
        }
        EXPECT_EQ(next, 3u);
    }
    // 2 shards over 3 benchmarks: the first takes the remainder.
    const ShardPlan two = planShards(sweepBenchmarks(), points, options, 2);
    EXPECT_EQ(two.shards[0].benchmarkCount(), 2u);
    EXPECT_EQ(two.shards[1].benchmarkCount(), 1u);
    // 5 shards over 3 benchmarks: the surplus shards are empty (and an
    // empty shard's fragment is still a valid, row-less journal).
    const ShardPlan five = planShards(sweepBenchmarks(), points, options, 5);
    EXPECT_EQ(five.shards[3].benchmarkCount(), 0u);
    EXPECT_EQ(five.shards[4].benchmarkCount(), 0u);
    // Deterministic: mergeShardJournals re-derives exactly this plan.
    const ShardPlan again = planShards(sweepBenchmarks(), points, options, 2);
    for (std::size_t i = 0; i < 2; ++i) {
        EXPECT_EQ(again.shards[i].beginBench, two.shards[i].beginBench);
        EXPECT_EQ(again.shards[i].endBench, two.shards[i].endBench);
    }
    EXPECT_EQ(shardJournalPath("sweep.csv", 3), "sweep.csv.shard3");
}

TEST(ShardPlan, ValidatesLikeRunSweep)
{
    const SweepOptions options = sweepOptions(tmpPath("plan_valid.csv"), 1);
    // A plan that prints is a plan that will run: the same up-front
    // validation as runSweep, plus the shard count itself.
    EXPECT_THROW(planShards(sweepBenchmarks(), {}, options, 2),
                 std::invalid_argument);
    EXPECT_THROW(planShards({}, {"tage-gsc"}, options, 2),
                 std::invalid_argument);
    EXPECT_THROW(planShards(sweepBenchmarks(),
                            {"tage-gsc+oh+sic", "tage-gsc+i"}, options, 2),
                 std::invalid_argument);
    EXPECT_THROW(planShards(sweepBenchmarks(), {"tage-gsc"}, options, 0),
                 std::invalid_argument);
}

TEST(ShardMerge, TwoShardMergeIsByteIdenticalToRunSweep)
{
    const std::vector<std::string> points = twelvePoints();
    const std::string reference = tmpPath("shard_ref.csv");
    const std::string merged = tmpPath("shard_merged.csv");
    std::remove(reference.c_str());
    std::remove(merged.c_str());
    for (std::size_t i = 0; i < 2; ++i)
        std::remove(shardJournalPath(merged, i).c_str());

    runSweep(sweepBenchmarks(), points, sweepOptions(reference, 2));

    const SweepOptions options = sweepOptions(merged, 1);
    const ShardPlan plan = planShards(sweepBenchmarks(), points, options, 2);
    std::size_t simulated = 0;
    for (const ShardRange &range : plan.shards)
        simulated +=
            runShard(sweepBenchmarks(), points, options, range).simulatedCells;
    EXPECT_EQ(simulated, 36u);

    std::vector<std::size_t> shardsSeen;
    std::vector<std::size_t> cellsSeen;
    const SweepResults results = mergeShardJournals(
        sweepBenchmarks(), points, options, 2,
        [&](const ShardRange &range,
            const std::vector<ParetoEntry> &entries) {
            shardsSeen.push_back(range.index);
            std::size_t cells = 0;
            for (const ParetoEntry &entry : entries)
                cells += entry.benchmarkCount;
            cellsSeen.push_back(cells);
        });
    EXPECT_EQ(results.cells.size(), 36u);
    EXPECT_EQ(results.simulatedCells, 0u);  // merge validates, never runs
    EXPECT_EQ(readFile(merged), readFile(reference));

    // Progress fired once per shard, in order, with the incremental
    // Pareto view growing by each shard's cell block (2 benchmarks x 12
    // points, then the last benchmark's 12).
    ASSERT_EQ(shardsSeen.size(), 2u);
    EXPECT_EQ(shardsSeen[0], 0u);
    EXPECT_EQ(shardsSeen[1], 1u);
    ASSERT_EQ(cellsSeen.size(), 2u);
    EXPECT_EQ(cellsSeen[0], 24u);
    EXPECT_EQ(cellsSeen[1], 36u);

    // The merged results agree with the journal a resume would load.
    const SweepResults resumed =
        runSweep(sweepBenchmarks(), points, sweepOptions(merged, 1));
    EXPECT_EQ(resumed.simulatedCells, 0u);
    EXPECT_EQ(readFile(merged), readFile(reference));

    std::remove(reference.c_str());
    std::remove(merged.c_str());
    for (std::size_t i = 0; i < 2; ++i)
        std::remove(shardJournalPath(merged, i).c_str());
}

TEST(ShardMerge, TruncatedFragmentIsCompletedByRerun)
{
    const std::vector<std::string> points = twelvePoints();
    const std::string reference = tmpPath("shard_kill_ref.csv");
    const std::string journal = tmpPath("shard_kill.csv");
    std::remove(reference.c_str());
    std::remove(journal.c_str());
    for (std::size_t i = 0; i < 2; ++i)
        std::remove(shardJournalPath(journal, i).c_str());

    runSweep(sweepBenchmarks(), points, sweepOptions(reference, 1));

    const SweepOptions options = sweepOptions(journal, 1);
    const ShardPlan plan = planShards(sweepBenchmarks(), points, options, 2);
    for (const ShardRange &range : plan.shards)
        runShard(sweepBenchmarks(), points, options, range);

    // Kill shard 0 mid-append: keep its committed rows plus a truncated
    // tail that still "parses" as a prefix of a row.
    const std::string fragment = shardJournalPath(journal, 0);
    const std::string intact = readFile(fragment);
    const std::size_t cut = intact.find('\n', intact.size() / 2);
    ASSERT_NE(cut, std::string::npos);
    writeFile(fragment, intact.substr(0, cut + 1) + "\"tage-gsc+sic@tage");

    // The merge drops the tail, finds cells missing, and refuses with an
    // error naming the shard to re-run.
    try {
        mergeShardJournals(sweepBenchmarks(), points, options, 2);
        FAIL() << "merge accepted an incomplete fragment";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("cell(s) missing"), std::string::npos) << what;
        EXPECT_NE(what.find("shard 0"), std::string::npos) << what;
        EXPECT_NE(what.find("re-run"), std::string::npos) << what;
    }

    // Re-running the shard resumes its fragment — simulating only the
    // dropped cells — after which the merge completes byte-identically.
    const SweepResults rerun =
        runShard(sweepBenchmarks(), points, options, plan.shards[0]);
    EXPECT_GT(rerun.simulatedCells, 0u);
    EXPECT_LT(rerun.simulatedCells, 24u);
    mergeShardJournals(sweepBenchmarks(), points, options, 2);
    EXPECT_EQ(readFile(journal), readFile(reference));

    std::remove(reference.c_str());
    std::remove(journal.c_str());
    for (std::size_t i = 0; i < 2; ++i)
        std::remove(shardJournalPath(journal, i).c_str());
}

TEST(ShardMerge, MissingAndForeignFragmentsAreRejected)
{
    const std::vector<std::string> points = {"tage-gsc@tage.logsize=8"};
    const std::string journal = tmpPath("shard_foreign.csv");
    std::remove(journal.c_str());
    for (std::size_t i = 0; i < 2; ++i)
        std::remove(shardJournalPath(journal, i).c_str());

    const SweepOptions options = sweepOptions(journal, 1);
    const ShardPlan plan = planShards(sweepBenchmarks(), points, options, 2);
    runShard(sweepBenchmarks(), points, options, plan.shards[0]);

    // Shard 1 never ran: the merge names the missing fragment.
    try {
        mergeShardJournals(sweepBenchmarks(), points, options, 2);
        FAIL() << "merge accepted a missing fragment";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("missing fragment for shard 1"),
                  std::string::npos)
            << e.what();
    }

    // A fragment holding another shard's rows is rejected, not merged.
    writeFile(shardJournalPath(journal, 1),
              readFile(shardJournalPath(journal, 0)));
    try {
        mergeShardJournals(sweepBenchmarks(), points, options, 2);
        FAIL() << "merge accepted rows outside the shard's range";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("outside its benchmark range"),
                  std::string::npos)
            << e.what();
    }

    // Fragments recorded under different run options belong to a
    // different sweep: the metadata fingerprint rejects them.
    std::remove(shardJournalPath(journal, 1).c_str());
    runShard(sweepBenchmarks(), points, options, plan.shards[1]);
    SweepOptions longer = options;
    longer.branchesPerTrace = 5000;
    try {
        mergeShardJournals(sweepBenchmarks(), points, longer, 2);
        FAIL() << "merge accepted fragments with a foreign fingerprint";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("different options"),
                  std::string::npos)
            << e.what();
    }

    // With both fragments intact and matching options the merge lands.
    mergeShardJournals(sweepBenchmarks(), points, options, 2);
    EXPECT_EQ(loadJournal(journal).size(), 3u);

    std::remove(journal.c_str());
    for (std::size_t i = 0; i < 2; ++i)
        std::remove(shardJournalPath(journal, i).c_str());
}

TEST(ShardMerge, RunShardValidatesItsRange)
{
    const SweepOptions options = sweepOptions(tmpPath("shard_range.csv"), 1);
    ShardRange bad;
    bad.index = 0;
    bad.beginBench = 2;
    bad.endBench = 5;  // past the 3-benchmark sweep
    EXPECT_THROW(runShard(sweepBenchmarks(), {"tage-gsc"}, options, bad),
                 std::invalid_argument);
    bad.beginBench = 3;
    bad.endBench = 2;  // inverted
    EXPECT_THROW(runShard(sweepBenchmarks(), {"tage-gsc"}, options, bad),
                 std::invalid_argument);
    SweepOptions noJournal = options;
    noJournal.journalPath = "";
    ShardRange ok;
    ok.endBench = 1;
    EXPECT_THROW(runShard(sweepBenchmarks(), {"tage-gsc"}, noJournal, ok),
                 std::invalid_argument);
    EXPECT_THROW(mergeShardJournals(sweepBenchmarks(), {"tage-gsc"},
                                    noJournal, 2),
                 std::invalid_argument);
    EXPECT_THROW(mergeShardJournals(sweepBenchmarks(), {"tage-gsc"},
                                    options, 0),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Incremental Pareto aggregation (the merge's evolving frontier view).
// ---------------------------------------------------------------------------

namespace
{

SweepCell
paretoCell(const std::string &spec, const std::string &bench,
           const std::string &suite, std::uint64_t bits,
           std::uint64_t mispredictions)
{
    SweepCell cell;
    cell.spec = spec;
    cell.benchmark = bench;
    cell.suite = suite;
    cell.storageBits = bits;
    cell.mispredictions = mispredictions;
    cell.conditionals = 100;
    cell.instructions = 1000;
    return cell;
}

} // anonymous namespace

TEST(IncrementalParetoTest, CompleteJournalMatchesAggregateCells)
{
    const std::vector<SweepCell> cells = {
        paretoCell("a", "B1", "CBP4", 1000, 10),
        paretoCell("b", "B1", "CBP4", 2000, 5),
        paretoCell("c", "B1", "CBP3", 1500, 40),
        paretoCell("a", "B2", "CBP3", 1000, 30),
        paretoCell("b", "B2", "CBP4", 2000, 15),
        paretoCell("c", "B2", "CBP4", 1500, 20),
    };
    // Fed in journal order, the incremental view IS aggregateCells.
    IncrementalPareto incremental;
    for (const SweepCell &cell : cells)
        incremental.add(cell);
    EXPECT_EQ(incremental.cellCount(), 6u);
    // entries() marks dominance; aggregateCells leaves that to
    // markDominated — mark the reference before comparing.
    std::vector<ParetoEntry> reference = aggregateCells(cells);
    markDominated(reference);
    const std::vector<ParetoEntry> running = incremental.entries();
    ASSERT_EQ(running.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ(running[i].spec, reference[i].spec);
        EXPECT_DOUBLE_EQ(running[i].avgMpki, reference[i].avgMpki);
        EXPECT_EQ(running[i].storageBits, reference[i].storageBits);
        EXPECT_EQ(running[i].benchmarkCount, reference[i].benchmarkCount);
        EXPECT_EQ(running[i].dominated, reference[i].dominated);
    }
    // The frontiers agree too (same specs, same order).
    const std::vector<ParetoEntry> frontier = incremental.frontier();
    const std::vector<ParetoEntry> expected = paretoFrontier(reference);
    ASSERT_EQ(frontier.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(frontier[i].spec, expected[i].spec);

    // Fold order does not change the averages — shards land in any order.
    IncrementalPareto shuffled;
    for (std::size_t i = cells.size(); i-- > 0;)
        shuffled.add(cells[i]);
    for (const ParetoEntry &entry : shuffled.entries()) {
        const auto it = std::find_if(
            reference.begin(), reference.end(),
            [&](const ParetoEntry &r) { return r.spec == entry.spec; });
        ASSERT_NE(it, reference.end()) << entry.spec;
        EXPECT_DOUBLE_EQ(entry.avgMpki, it->avgMpki) << entry.spec;
        EXPECT_EQ(entry.benchmarkCount, it->benchmarkCount) << entry.spec;
    }
}

TEST(IncrementalParetoTest, ReportsRunningAveragesWhereAggregateRefuses)
{
    // Mid-merge the journal is partial: aggregateCells refuses (its
    // averages are final results), the incremental view reports running
    // averages with benchmarkCount saying how much is behind each.
    const std::vector<SweepCell> cells = {
        paretoCell("a", "B1", "CBP4", 1000, 10),
        paretoCell("a", "B2", "CBP3", 1000, 90),
        paretoCell("b", "B1", "CBP4", 2000, 20),
    };
    EXPECT_THROW(aggregateCells(cells), std::runtime_error);
    IncrementalPareto incremental;
    for (const SweepCell &cell : cells)
        incremental.add(cell);
    const std::vector<ParetoEntry> entries = incremental.entries();
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].spec, "a");
    EXPECT_EQ(entries[0].benchmarkCount, 2u);
    EXPECT_DOUBLE_EQ(entries[0].avgMpki, 50.0);
    EXPECT_EQ(entries[1].spec, "b");
    EXPECT_EQ(entries[1].benchmarkCount, 1u);
    EXPECT_DOUBLE_EQ(entries[1].avgMpki, 20.0);

    // Suite filtering happens at add(): only matching cells count.
    IncrementalPareto cbp4("CBP4");
    for (const SweepCell &cell : cells)
        cbp4.add(cell);
    EXPECT_EQ(cbp4.cellCount(), 2u);
    const std::vector<ParetoEntry> filtered = cbp4.entries();
    ASSERT_EQ(filtered.size(), 2u);
    EXPECT_DOUBLE_EQ(filtered[0].avgMpki, 10.0);
    EXPECT_EQ(filtered[0].benchmarkCount, 1u);

    // A spec reappearing with different storage bits is corruption.
    IncrementalPareto strict;
    strict.add(paretoCell("a", "B1", "CBP4", 1000, 10));
    EXPECT_THROW(strict.add(paretoCell("a", "B2", "CBP4", 1001, 10)),
                 std::runtime_error);
}
