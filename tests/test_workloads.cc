/**
 * @file
 * Tests for the synthetic workload generators: determinism, loop-nest
 * structure, and — crucially — the correlation invariants each branch
 * class promises (these invariants are what make the trace substitution
 * valid; see DESIGN.md Section 2).
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "src/trace/trace_stats.hh"
#include "src/workloads/background.hh"
#include "src/workloads/benchmark_spec.hh"
#include "src/workloads/suite.hh"
#include "src/workloads/two_dim_loop.hh"

using namespace imli;

namespace
{

/** Collect the outcome matrix Out[N][M] of one body branch by replay. */
std::vector<std::vector<bool>>
outcomeMatrix(const Trace &trace, const TwoDimLoopKernel &kernel,
              unsigned branch)
{
    std::vector<std::vector<bool>> rounds_matrix;
    std::vector<bool> row;
    std::vector<std::vector<bool>> matrix;
    for (const BranchRecord &rec : trace.branches()) {
        if (rec.pc == kernel.bodyBranchPc(branch)) {
            row.push_back(rec.taken);
        } else if (rec.pc == kernel.innerBackedgePc() && !rec.taken) {
            matrix.push_back(row);
            row.clear();
        }
    }
    return matrix;
}

TwoDimLoopParams
nestParams(BodyClass cls, unsigned trip_min, unsigned trip_max)
{
    TwoDimLoopParams p;
    p.outerIters = 10;
    p.innerTripMin = trip_min;
    p.innerTripMax = trip_max;
    p.rowMutateProb = 0.0;
    p.body.push_back({cls, 0.0, 0.6, 0.5});
    return p;
}

} // anonymous namespace

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

TEST(Workloads, GenerationIsDeterministic)
{
    const BenchmarkSpec spec = findBenchmark("SPEC2K6-12");
    const Trace a = generateTrace(spec, 20000);
    const Trace b = generateTrace(spec, 20000);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i], b[i]) << "record " << i;
}

TEST(Workloads, DifferentSeedsDiffer)
{
    BenchmarkSpec spec = findBenchmark("SPEC2K6-12");
    const Trace a = generateTrace(spec, 5000);
    spec.seed ^= 0x12345;
    const Trace b = generateTrace(spec, 5000);
    bool differs = a.size() != b.size();
    for (std::size_t i = 0; !differs && i < a.size(); ++i)
        differs = !(a[i] == b[i]);
    EXPECT_TRUE(differs);
}

// ---------------------------------------------------------------------------
// Loop-nest structure
// ---------------------------------------------------------------------------

TEST(TwoDimLoop, BackedgesAreBackward)
{
    TwoDimLoopKernel kernel(nestParams(BodyClass::SameIter, 8, 8),
                            0x400000, Xoroshiro128(1));
    Trace trace;
    kernel.emitRound(trace);
    for (const BranchRecord &rec : trace.branches()) {
        if (rec.pc == kernel.innerBackedgePc() ||
            rec.pc == kernel.outerBackedgePc())
            EXPECT_TRUE(rec.isBackward());
    }
}

TEST(TwoDimLoop, InnerTripCountRespected)
{
    TwoDimLoopKernel kernel(nestParams(BodyClass::SameIter, 8, 8),
                            0x400000, Xoroshiro128(2));
    Trace trace;
    kernel.emitRound(trace);
    // Count body executions between inner-backedge not-taken events.
    unsigned count = 0;
    for (const BranchRecord &rec : trace.branches()) {
        if (rec.pc == kernel.bodyBranchPc(0))
            ++count;
        if (rec.pc == kernel.innerBackedgePc() && !rec.taken) {
            EXPECT_EQ(count, 8u);
            count = 0;
        }
    }
}

TEST(TwoDimLoop, VariableTripStaysInRange)
{
    TwoDimLoopKernel kernel(nestParams(BodyClass::SameIter, 6, 14),
                            0x400000, Xoroshiro128(3));
    Trace trace;
    for (int i = 0; i < 5; ++i)
        kernel.emitRound(trace);
    unsigned count = 0;
    std::set<unsigned> trips;
    for (const BranchRecord &rec : trace.branches()) {
        if (rec.pc == kernel.bodyBranchPc(0))
            ++count;
        if (rec.pc == kernel.innerBackedgePc() && !rec.taken) {
            EXPECT_GE(count, 6u);
            EXPECT_LE(count, 14u);
            trips.insert(count);
            count = 0;
        }
    }
    EXPECT_GT(trips.size(), 3u) << "trip count actually varies";
}

TEST(TwoDimLoop, OuterIterationsPerRound)
{
    TwoDimLoopParams p = nestParams(BodyClass::SameIter, 8, 8);
    p.outerIters = 10;
    TwoDimLoopKernel kernel(p, 0x400000, Xoroshiro128(4));
    Trace trace;
    kernel.emitRound(trace);
    unsigned exits = 0;
    for (const BranchRecord &rec : trace.branches())
        if (rec.pc == kernel.outerBackedgePc() && !rec.taken)
            ++exits;
    EXPECT_EQ(exits, 1u);
    unsigned inner_exits = 0;
    for (const BranchRecord &rec : trace.branches())
        if (rec.pc == kernel.innerBackedgePc() && !rec.taken)
            ++inner_exits;
    EXPECT_EQ(inner_exits, 10u);
}

// ---------------------------------------------------------------------------
// Correlation invariants (the heart of the substitution argument)
// ---------------------------------------------------------------------------

TEST(TwoDimLoop, SameIterInvariant)
{
    TwoDimLoopKernel kernel(nestParams(BodyClass::SameIter, 12, 12),
                            0x400000, Xoroshiro128(5));
    Trace trace;
    kernel.emitRound(trace);
    const auto m = outcomeMatrix(trace, kernel, 0);
    ASSERT_EQ(m.size(), 10u);
    for (std::size_t n = 1; n < m.size(); ++n)
        for (std::size_t i = 0; i < 12; ++i)
            EXPECT_EQ(m[n][i], m[n - 1][i])
                << "Out[N][M] == Out[N-1][M] violated at N=" << n
                << " M=" << i;
}

TEST(TwoDimLoop, DiagPrevInvariant)
{
    TwoDimLoopKernel kernel(nestParams(BodyClass::DiagPrev, 12, 12),
                            0x400000, Xoroshiro128(6));
    Trace trace;
    kernel.emitRound(trace);
    const auto m = outcomeMatrix(trace, kernel, 0);
    for (std::size_t n = 1; n < m.size(); ++n)
        for (std::size_t i = 1; i < 12; ++i)
            EXPECT_EQ(m[n][i], m[n - 1][i - 1])
                << "Out[N][M] == Out[N-1][M-1] violated at N=" << n
                << " M=" << i;
}

TEST(TwoDimLoop, DiagNextInvariant)
{
    TwoDimLoopKernel kernel(nestParams(BodyClass::DiagNext, 12, 12),
                            0x400000, Xoroshiro128(7));
    Trace trace;
    kernel.emitRound(trace);
    const auto m = outcomeMatrix(trace, kernel, 0);
    for (std::size_t n = 1; n < m.size(); ++n)
        for (std::size_t i = 0; i + 1 < 12; ++i)
            EXPECT_EQ(m[n][i], m[n - 1][i + 1])
                << "Out[N][M] == Out[N-1][M+1] violated at N=" << n
                << " M=" << i;
}

TEST(TwoDimLoop, InvertedInvariant)
{
    TwoDimLoopKernel kernel(nestParams(BodyClass::Inverted, 12, 12),
                            0x400000, Xoroshiro128(8));
    Trace trace;
    kernel.emitRound(trace);
    const auto m = outcomeMatrix(trace, kernel, 0);
    for (std::size_t n = 1; n < m.size(); ++n)
        for (std::size_t i = 0; i < 12; ++i)
            EXPECT_NE(m[n][i], m[n - 1][i])
                << "Out[N][M] == !Out[N-1][M] violated at N=" << n
                << " M=" << i;
}

TEST(TwoDimLoop, WeakCorrelationRate)
{
    TwoDimLoopParams p = nestParams(BodyClass::Weak, 16, 16);
    p.outerIters = 40;
    p.body[0].noise = 0.25;
    TwoDimLoopKernel kernel(p, 0x400000, Xoroshiro128(9));
    Trace trace;
    for (int i = 0; i < 5; ++i)
        kernel.emitRound(trace);
    const auto m = outcomeMatrix(trace, kernel, 0);
    unsigned agree = 0, total = 0;
    for (std::size_t n = 1; n < m.size(); ++n)
        for (std::size_t i = 0; i < 16; ++i) {
            ++total;
            agree += (m[n][i] == m[n - 1][i]) ? 1 : 0;
        }
    const double rate = static_cast<double>(agree) / total;
    // With flip probability 0.25 + random resample the agreement sits
    // around 1 - 0.25/2 ... 1 - 0.25; allow a generous band well away
    // from both 1.0 (perfect) and 0.5 (uncorrelated).
    EXPECT_GT(rate, 0.72);
    EXPECT_LT(rate, 0.96);
}

TEST(TwoDimLoop, NestedGuardGatesExecution)
{
    TwoDimLoopParams p = nestParams(BodyClass::Nested, 10, 10);
    TwoDimLoopKernel kernel(p, 0x400000, Xoroshiro128(10));
    Trace trace;
    kernel.emitRound(trace);
    // The nested branch must execute exactly when its guard was taken.
    bool pending_guard = false;
    for (const BranchRecord &rec : trace.branches()) {
        if (rec.pc == kernel.guardBranchPc(0)) {
            EXPECT_FALSE(pending_guard);
            pending_guard = rec.taken;
        } else if (rec.pc == kernel.bodyBranchPc(0)) {
            EXPECT_TRUE(pending_guard)
                << "guarded branch executed without guard";
            pending_guard = false;
        } else if (rec.pc == kernel.innerBackedgePc()) {
            EXPECT_FALSE(pending_guard)
                << "guard taken but nested branch missing";
        }
    }
}

// ---------------------------------------------------------------------------
// Background kernels
// ---------------------------------------------------------------------------

TEST(Background, LocalPatternPeriodicity)
{
    LocalPatternParams p;
    p.branches = 2;
    p.periodMin = 5;
    p.periodMax = 5;
    p.noiseBetween = 2;
    p.stepsPerRound = 50;
    LocalPatternKernel kernel(p, 0x400000, Xoroshiro128(11));
    Trace trace;
    kernel.emitRound(trace);
    // Pattern branch 0: exactly one not-taken per 5 occurrences.
    std::vector<bool> outcomes;
    for (const BranchRecord &rec : trace.branches())
        if (rec.pc == kernel.patternBranchPc(0))
            outcomes.push_back(rec.taken);
    ASSERT_EQ(outcomes.size(), 50u);
    for (std::size_t i = 0; i + 5 <= outcomes.size(); i += 5) {
        unsigned not_taken = 0;
        for (std::size_t j = i; j < i + 5; ++j)
            not_taken += outcomes[j] ? 0 : 1;
        EXPECT_EQ(not_taken, 1u);
    }
}

TEST(Background, RegularLoopTripCounts)
{
    RegularLoopParams p;
    p.trip = 30;
    p.tripJitter = 0;
    p.bodyBranches = 1;
    p.runsPerRound = 3;
    RegularLoopKernel kernel(p, 0x400000, Xoroshiro128(12));
    Trace trace;
    kernel.emitRound(trace);
    unsigned takens = 0, exits = 0;
    for (const BranchRecord &rec : trace.branches()) {
        if (rec.pc == kernel.backedgePc()) {
            if (rec.taken)
                ++takens;
            else
                ++exits;
        }
    }
    EXPECT_EQ(exits, 3u);
    EXPECT_EQ(takens, 3u * 29u);
}

TEST(Background, BiasedRandomRates)
{
    BiasedRandomParams p;
    p.branches = 1;
    p.takenProbMin = 0.8;
    p.takenProbMax = 0.8;
    p.burstsPerRound = 4000;
    BiasedRandomKernel kernel(p, 0x400000, Xoroshiro128(13));
    Trace trace;
    kernel.emitRound(trace);
    const TraceStats s = computeStats(trace);
    EXPECT_NEAR(s.takenRate(), 0.8, 0.03);
}

// ---------------------------------------------------------------------------
// Suite
// ---------------------------------------------------------------------------

TEST(Suite, FortyPlusFortyUniqueNames)
{
    const auto cbp4 = cbp4Suite();
    const auto cbp3 = cbp3Suite();
    EXPECT_EQ(cbp4.size(), 40u);
    EXPECT_EQ(cbp3.size(), 40u);
    std::set<std::string> names;
    for (const auto &b : fullSuite())
        names.insert(b.name);
    EXPECT_EQ(names.size(), 80u);
}

TEST(Suite, ShowcaseBenchmarksPresent)
{
    for (const char *name : {"SPEC2K6-04", "SPEC2K6-12", "MM-4", "CLIENT02",
                             "MM07", "WS03", "WS04"}) {
        EXPECT_NO_THROW({
            const BenchmarkSpec b = findBenchmark(name);
            EXPECT_FALSE(b.kernels.empty());
        }) << name;
    }
}

TEST(Suite, UnknownBenchmarkThrows)
{
    EXPECT_THROW(findBenchmark("NOPE-77"), std::invalid_argument);
}

TEST(Suite, SuitesTagged)
{
    for (const auto &b : cbp4Suite())
        EXPECT_EQ(b.suite, "CBP4");
    for (const auto &b : cbp3Suite())
        EXPECT_EQ(b.suite, "CBP3");
}

TEST(Suite, GeneratedTraceMeetsTarget)
{
    const Trace t = generateTrace(findBenchmark("MM-4"), 30000);
    EXPECT_GE(t.size(), 30000u);
    EXPECT_LT(t.size(), 60000u) << "no runaway overshoot";
    const TraceStats s = computeStats(t);
    EXPECT_GT(s.conditionals, 20000u);
    EXPECT_GT(s.instsPerBranch(), 3.0);
    EXPECT_LT(s.instsPerBranch(), 10.0);
}

TEST(Suite, ShowcaseBenchmarksContainBackwardBranches)
{
    // The IMLI mechanism only engages on backward conditional branches.
    for (const char *name : {"SPEC2K6-04", "SPEC2K6-12", "MM07"}) {
        const Trace t = generateTrace(findBenchmark(name), 20000);
        const TraceStats s = computeStats(t);
        EXPECT_GT(s.backwardConditionals, 500u) << name;
    }
}

// ---------------------------------------------------------------------------
// Benchmark glob selection.
// ---------------------------------------------------------------------------

TEST(Globs, MatchSemantics)
{
    EXPECT_TRUE(globMatch("MM-4", "MM-4"));
    EXPECT_FALSE(globMatch("MM-4", "MM-41"));
    EXPECT_TRUE(globMatch("MM-*", "MM-4"));
    EXPECT_TRUE(globMatch("MM-*", "MM-"));
    EXPECT_FALSE(globMatch("MM-*", "MM07"));
    EXPECT_TRUE(globMatch("SPEC2K6-0?", "SPEC2K6-04"));
    EXPECT_FALSE(globMatch("SPEC2K6-0?", "SPEC2K6-14"));
    EXPECT_TRUE(globMatch("*", "anything"));
    EXPECT_TRUE(globMatch("*-4", "MM-4"));
    EXPECT_TRUE(globMatch("M*-*4", "MM-4"));
    EXPECT_FALSE(globMatch("", "MM-4"));
    EXPECT_TRUE(globMatch("*", ""));
}

TEST(Globs, SelectBenchmarksKeepsPoolOrderAndDeduplicates)
{
    const std::vector<BenchmarkSpec> pool = fullSuite();
    const std::vector<BenchmarkSpec> picked =
        selectBenchmarks(pool, {"MM-*", "MM-4", "WS03"});
    ASSERT_FALSE(picked.empty());
    // Pool order is preserved and MM-4 appears once despite matching two
    // patterns.
    std::size_t mm4 = 0;
    std::vector<std::string> names;
    for (const BenchmarkSpec &b : picked) {
        names.push_back(b.name);
        mm4 += b.name == "MM-4" ? 1 : 0;
        EXPECT_TRUE(b.name.rfind("MM-", 0) == 0 || b.name == "WS03")
            << b.name;
    }
    EXPECT_EQ(mm4, 1u);
    std::vector<std::string> poolOrder;
    for (const BenchmarkSpec &b : pool)
        for (const std::string &n : names)
            if (b.name == n)
                poolOrder.push_back(b.name);
    EXPECT_EQ(names, poolOrder);

    // Empty pattern list selects everything.
    EXPECT_EQ(selectBenchmarks(pool, {}).size(), pool.size());
}

TEST(Globs, NoMatchThrowsWithNearMisses)
{
    const std::vector<BenchmarkSpec> pool = fullSuite();
    try {
        selectBenchmarks(pool, {"MM4"});
        FAIL() << "expected a no-match error";
    } catch (const std::runtime_error &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("MM4"), std::string::npos);
        EXPECT_NE(msg.find("did you mean"), std::string::npos);
        EXPECT_NE(msg.find("MM-4"), std::string::npos);
    }
    EXPECT_THROW(selectBenchmarks(pool, {"ZZZ-*"}), std::runtime_error);
}
