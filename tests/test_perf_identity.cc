/**
 * @file
 * Refactor-neutrality pins for the performance work on the hot loop:
 * the arena table layout, branchless counters, branch-light selection
 * and the batched/prefetched lookup paths must never move a simulated
 * number.  The anchor is a set of misprediction counts recorded from
 * the pre-refactor binary over generated and recorded benchmarks; on
 * top of that, prefetch on/off state-digest equality across the zoo,
 * pipeline-engine identity across jobs at several delays, and the
 * sim.prefetch spec-key surface (mirroring sim.delay's tests).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/dse/sweep.hh"
#include "src/predictors/zoo.hh"
#include "src/sim/simulator.hh"
#include "src/sim/suite_runner.hh"
#include "src/util/rng.hh"
#include "src/workloads/benchmark_spec.hh"
#include "src/workloads/generator_source.hh"
#include "src/workloads/suite.hh"

using namespace imli;

namespace
{

SimOptions
pipelineOptions(unsigned delay)
{
    SimOptions opts;
    opts.updateDelay = delay;
    opts.pipeline = true;
    return opts;
}

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + name;
}

} // anonymous namespace

// ---------------------------------------------------------------------------
// The pre-refactor anchor: pinned misprediction counts
// ---------------------------------------------------------------------------

TEST(PerfIdentity, PinnedSuiteCountsMatchPreRefactorRecording)
{
    // These counts were recorded with the binary built from the commit
    // immediately before the arena/branchless/prefetch rewrite (default
    // 200000-branch traces, jobs 1).  They pin the entire simulated
    // surface — TAGE tables, SC/SIC/OH counters, history folds — so any
    // "optimization" that moves a bit anywhere fails here, not in a
    // paper table.  Legitimate modelling changes must re-record these
    // numbers and say so; layout or scheduling changes must not.
    struct Pin
    {
        const char *benchmark;
        const char *config;
        std::uint64_t mispredictions;
        std::uint64_t conditionals;
        std::uint64_t instructions;
    };
    const Pin pins[] = {
        {"SPEC2K6-12", "tage-gsc", 18304, 210062, 1378736},
        {"SPEC2K6-12", "tage-gsc+i", 14032, 210062, 1378736},
        {"MM-4", "tage-gsc", 2740, 202826, 1339386},
        {"MM-4", "tage-gsc+i", 1735, 202826, 1339386},
        {"WS03", "tage-gsc", 7131, 210928, 1416312},
        {"WS03", "tage-gsc+i", 5632, 210928, 1416312},
        {"REC-02", "tage-gsc", 2694, 7620, 41947},
        {"REC-02", "tage-gsc+i", 1228, 7620, 41947},
    };

    std::vector<BenchmarkSpec> benchmarks = {
        findBenchmark("SPEC2K6-12"), findBenchmark("MM-4"),
        findBenchmark("WS03"),
        makeRecordedBenchmark("REC-02", "REC",
                              std::string(IMLI_TEST_DATA_DIR) +
                                  "/rec-02.cbp")};
    SuiteRunOptions options; // defaults: 200000 branches, jobs 1
    const SuiteResults results =
        runSuite(benchmarks, {"tage-gsc", "tage-gsc+i"}, options);

    for (const Pin &pin : pins) {
        const SuiteCell &cell = results.at(pin.benchmark, pin.config);
        EXPECT_EQ(cell.mispredictions, pin.mispredictions)
            << pin.benchmark << " / " << pin.config;
        EXPECT_EQ(cell.conditionals, pin.conditionals)
            << pin.benchmark << " / " << pin.config;
        EXPECT_EQ(cell.instructions, pin.instructions)
            << pin.benchmark << " / " << pin.config;
    }
}

// ---------------------------------------------------------------------------
// Prefetch is state-free: results and digests across the zoo
// ---------------------------------------------------------------------------

TEST(PerfIdentity, PrefetchLookaheadNeverChangesResultsOrState)
{
    // Every zoo member, simulated with lookahead 0 / 16 / 64 over the
    // same stream: identical grading and identical stateDigest().  The
    // digest covers tables, histories and side-predictor state, so a
    // prefetch implementation that so much as touches an ageing counter
    // fails here.
    for (const std::string &spec : knownSpecs()) {
        SimOptions plain;
        std::uint64_t digest0 = 0;
        std::uint64_t miss0 = 0;
        for (unsigned lookahead : {0u, 16u, 64u}) {
            PredictorPtr pred = makePredictor(spec);
            GeneratorBranchSource source(findBenchmark("MM-1"), 15000);
            SimOptions opts = plain;
            opts.prefetchLookahead = lookahead;
            const SimResult r = simulate(*pred, source, opts);
            if (lookahead == 0) {
                digest0 = pred->stateDigest();
                miss0 = r.mispredictions;
            } else {
                EXPECT_EQ(pred->stateDigest(), digest0)
                    << spec << " lookahead " << lookahead;
                EXPECT_EQ(r.mispredictions, miss0)
                    << spec << " lookahead " << lookahead;
            }
        }
    }
}

TEST(PerfIdentity, PrefetchIsStateFreeAroundSpeculation)
{
    // Direct contract check on the speculation-capable hosts: two
    // instances driven through identical predict / checkpoint /
    // speculate / restore / update sandwiches, one with prefetch()
    // calls injected at every step (including between checkpoint and
    // restore), must end bit-identical.
    for (const std::string &spec : {"tage-gsc+i+l", "gehl+i"}) {
        PredictorPtr a = makePredictor(spec);
        PredictorPtr b = makePredictor(spec);
        ASSERT_TRUE(a->supportsSpeculation()) << spec;
        a->prepareSpeculation(4);
        b->prepareSpeculation(4);

        Xoroshiro128 rng(12345);
        for (int step = 0; step < 4000; ++step) {
            const std::uint64_t pc = 0x400000 + (rng.next() % 97) * 8;
            const std::uint64_t target =
                pc + ((rng.next() % 3 == 0) ? -64 : 64);
            const bool taken = (rng.next() & 3) != 0;
            const std::uint64_t ahead = 0x400000 + (rng.next() % 97) * 8;

            b->prefetch(ahead);
            const bool predA = a->predict(pc);
            const bool predB = b->predict(pc);
            EXPECT_EQ(predA, predB) << spec << " step " << step;
            const SpecCheckpoint cpA = a->checkpoint();
            const SpecCheckpoint cpB = b->checkpoint();
            a->speculate(pc, predA, target);
            b->speculate(pc, predB, target);
            b->prefetch(ahead);
            a->restore(cpA);
            b->restore(cpB);
            (void)a->predict(pc);
            (void)b->predict(pc);
            a->update(pc, taken, target);
            b->update(pc, taken, target);
            b->prefetch(pc);
        }
        EXPECT_EQ(a->stateDigest(), b->stateDigest()) << spec;
    }
}

// ---------------------------------------------------------------------------
// Pipeline-engine identity at several delays (batched commit sandwich)
// ---------------------------------------------------------------------------

TEST(PerfIdentity, PipelineBitIdenticalAcrossJobsAtDelays0And8And63)
{
    std::vector<BenchmarkSpec> benchmarks = {findBenchmark("MM-4"),
                                             findBenchmark("WS03")};
    const std::vector<std::string> configs = {"tage-gsc+i"};
    for (unsigned delay : {0u, 8u, 63u}) {
        SuiteRunOptions serial;
        serial.branchesPerTrace = 15000;
        serial.sim = pipelineOptions(delay);
        SuiteRunOptions parallel = serial;
        parallel.jobs = 4;
        const SuiteResults a = runSuite(benchmarks, configs, serial);
        const SuiteResults b = runSuite(benchmarks, configs, parallel);
        ASSERT_EQ(a.cells.size(), b.cells.size());
        for (std::size_t i = 0; i < a.cells.size(); ++i) {
            EXPECT_EQ(a.cells[i].mispredictions, b.cells[i].mispredictions)
                << "delay " << delay << " cell " << i;
            EXPECT_EQ(a.cells[i].instructions, b.cells[i].instructions)
                << "delay " << delay << " cell " << i;
        }
        if (delay == 0) {
            // The batched commit path at depth 0 stays the immediate
            // engine's bit-identity oracle.
            SuiteRunOptions immediate;
            immediate.branchesPerTrace = 15000;
            const SuiteResults c = runSuite(benchmarks, configs, immediate);
            for (std::size_t i = 0; i < a.cells.size(); ++i)
                EXPECT_EQ(a.cells[i].mispredictions,
                          c.cells[i].mispredictions);
        }
    }
}

// ---------------------------------------------------------------------------
// The sim.prefetch spec key (mirrors the sim.delay surface)
// ---------------------------------------------------------------------------

TEST(PerfIdentity, SimPrefetchSpecKeyEqualsRunLevelFlagAndPlainRun)
{
    // "spec@sim.prefetch=N" == run-level lookahead N == no prefetch at
    // all: the key must parse, travel in the canonical spec, and change
    // nothing but throughput.
    std::vector<BenchmarkSpec> benchmarks = {findBenchmark("MM-4")};
    SuiteRunOptions plain;
    plain.branchesPerTrace = 15000;
    const SuiteResults none = runSuite(benchmarks, {"tage-gsc+i"}, plain);

    const SuiteResults viaSpec =
        runSuite(benchmarks, {"tage-gsc+i@sim.prefetch=16"}, plain);

    SuiteRunOptions viaFlag = plain;
    viaFlag.sim.prefetchLookahead = 16;
    const SuiteResults flagged =
        runSuite(benchmarks, {"tage-gsc+i"}, viaFlag);

    EXPECT_EQ(none.cells[0].mispredictions,
              viaSpec.cells[0].mispredictions);
    EXPECT_EQ(none.cells[0].mispredictions,
              flagged.cells[0].mispredictions);
    EXPECT_EQ(none.cells[0].instructions, viaSpec.cells[0].instructions);

    // The canonical spec carries the dimension, like sim.delay.
    EXPECT_EQ(viaSpec.cells[0].config, "tage-gsc+i@sim.prefetch=16");
    EXPECT_EQ(canonicalSpec("tage-gsc+i@sim.prefetch=16"),
              "tage-gsc+i@sim.prefetch=16");
    EXPECT_EQ(specPrefetch(parseSpec("tage-gsc+i@sim.prefetch=16")), 16u);
    EXPECT_EQ(specPrefetch(parseSpec("tage-gsc+i")), 0u);
    EXPECT_TRUE(hasSpecPrefetch(parseSpec("tage-gsc+i@sim.prefetch=0")));
    EXPECT_FALSE(hasSpecPrefetch(parseSpec("tage-gsc+i")));

    // Both run-level keys compose on one spec.
    const ParsedSpec both =
        parseSpec("tage-gsc+i@sim.delay=8,sim.prefetch=16");
    EXPECT_EQ(specUpdateDelay(both), 8u);
    EXPECT_EQ(specPrefetch(both), 16u);
    EXPECT_EQ(canonicalSpec("tage-gsc+i@sim.prefetch=16,sim.delay=8"),
              "tage-gsc+i@sim.delay=8,sim.prefetch=16");

    // Strict bounds: kMaxPrefetchLookahead caps the key.
    EXPECT_THROW(parseSpec("tage-gsc@sim.prefetch=65"),
                 std::invalid_argument);
    EXPECT_THROW(parseSpec("tage-gsc@sim.prefetch=-1"),
                 std::invalid_argument);
}

TEST(PerfIdentity, JournalMetaIgnoresPrefetchSoJournalsResumeAcrossIt)
{
    // The journal metadata line fingerprints everything that changes
    // simulated counters.  Prefetch changes none, so a journal recorded
    // without prefetching must resume under a run-level lookahead (and
    // vice versa) — like jobs and chunk size, it is a scheduling detail.
    SweepOptions a;
    a.journalPath = "unused";
    SweepOptions b = a;
    b.sim.prefetchLookahead = 16;
    EXPECT_EQ(journalMeta({}, a), journalMeta({}, b));

    // End to end: sweep with prefetch off, resume with prefetch on —
    // zero new cells, same numbers.
    const std::string path = tmpPath("perf_identity_sweep.csv");
    std::remove(path.c_str());
    SweepOptions first;
    first.journalPath = path;
    first.branchesPerTrace = 15000;
    const std::vector<BenchmarkSpec> benchmarks = {findBenchmark("MM-4")};
    const std::vector<std::string> points = {
        "tage-gsc+sic@sic.logsize=8", "tage-gsc+sic@sic.logsize=9"};
    const SweepResults fresh = runSweep(benchmarks, points, first);
    EXPECT_EQ(fresh.simulatedCells, 2u);

    SweepOptions resume = first;
    resume.sim.prefetchLookahead = 16;
    const SweepResults resumed = runSweep(benchmarks, points, resume);
    EXPECT_EQ(resumed.simulatedCells, 0u);
    for (const std::string &p : points)
        EXPECT_EQ(resumed.at("MM-4", canonicalSpec(p)).mispredictions,
                  fresh.at("MM-4", canonicalSpec(p)).mispredictions);
    std::remove(path.c_str());

    // A per-point sim.prefetch override is a distinct journal row — the
    // canonical spec is the row key, so prefetch points never collide.
    EXPECT_NE(canonicalSpec("tage-gsc+sic@sic.logsize=8"),
              canonicalSpec("tage-gsc+sic@sic.logsize=8,sim.prefetch=8"));
}
