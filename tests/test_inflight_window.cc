/**
 * @file
 * Edge-case pins for InflightWindow, the speculative local-history
 * structure the pipeline simulator builds on (paper, Section 2.3.2).
 * The squash/lookup corners here are exactly the ones recovery code
 * exercises: tickets whose instances are gone, empty-window searches
 * after a flush, and the bounded (ticket-horizon) lookups of the commit
 * sandbox.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "src/history/inflight_window.hh"

using namespace imli;

TEST(InflightWindowEdge, SquashAfterFutureTicketIsNoOp)
{
    InflightWindow w(8, 16);
    w.insert(1, 0x1);
    w.insert(2, 0x2);
    // A ticket that was never issued: nothing is younger than it.
    w.squashAfter(1000);
    EXPECT_EQ(w.size(), 2u);
    EXPECT_TRUE(w.lookup(1).has_value());
}

TEST(InflightWindowEdge, SquashAfterZeroSquashesEverything)
{
    InflightWindow w(8, 16);
    w.insert(1, 0x1);
    w.insert(2, 0x2);
    w.insert(3, 0x3);
    // Tickets start at 1, so 0 means "before any insert": full squash.
    w.squashAfter(0);
    EXPECT_EQ(w.size(), 0u);
    EXPECT_FALSE(w.lookup(1).has_value());
}

TEST(InflightWindowEdge, SquashAfterCommittedTicketSquashesAllYounger)
{
    InflightWindow w(8, 16);
    const std::uint64_t oldest = w.insert(1, 0x1);
    w.insert(2, 0x2);
    w.insert(3, 0x3);
    // The oldest instance commits; recovery code may still hold its
    // ticket.  Squashing after it must drop the two younger entries and
    // only them, even though the ticket's own instance is gone.
    w.commitOldest();
    w.squashAfter(oldest);
    EXPECT_EQ(w.size(), 0u);
    // And an unknown ticket *between* live tickets behaves by the same
    // rule: strictly-younger entries go.
    const std::uint64_t a = w.insert(4, 0x4);
    w.insert(5, 0x5);
    w.squashAfter(a);
    EXPECT_EQ(w.size(), 1u);
    EXPECT_TRUE(w.lookup(4).has_value());
    EXPECT_FALSE(w.lookup(5).has_value());
}

TEST(InflightWindowEdge, LookupOnEmptyWindowAfterSquashAll)
{
    InflightWindow w(4, 16);
    w.insert(7, 0xab);
    w.squashAll();
    const std::uint64_t searchedBefore = w.entriesSearched();
    // An empty-window search must miss cleanly and visit zero entries.
    EXPECT_FALSE(w.lookup(7).has_value());
    EXPECT_EQ(w.entriesSearched(), searchedBefore);
    // The window stays usable: tickets keep increasing monotonically.
    const std::uint64_t t = w.insert(7, 0xcd);
    EXPECT_GT(t, 1u);
    EXPECT_EQ(w.lookup(7).value(), 0xcdu);
}

TEST(InflightWindowEdge, EntriesSearchedCountsEveryVisit)
{
    InflightWindow w(8, 16);
    w.insert(1, 0x1);
    w.insert(2, 0x2);
    w.insert(3, 0x3);
    EXPECT_EQ(w.entriesSearched(), 0u);
    // Hit on the youngest: one visit.
    EXPECT_TRUE(w.lookup(3).has_value());
    EXPECT_EQ(w.entriesSearched(), 1u);
    // Hit on the oldest: walks all three.
    EXPECT_TRUE(w.lookup(1).has_value());
    EXPECT_EQ(w.entriesSearched(), 4u);
    // Miss: walks all three again.
    EXPECT_FALSE(w.lookup(9).has_value());
    EXPECT_EQ(w.entriesSearched(), 7u);
}

TEST(InflightWindowEdge, EntriesSearchedIsPlainModuloCounter)
{
    // Pinned semantics: entriesSearched() is an ordinary uint64 event
    // counter with wrap-around modulo 2^64 — no saturation, no UB (the
    // increment is on an unsigned type).  The pin is behavioural, not a
    // 2^64-iteration loop: the counter advances by exactly the entries
    // visited, so its residue is fully determined by the visit count.
    InflightWindow w(2, 8);
    w.insert(1, 0x1);
    std::uint64_t visits = 0;
    for (int i = 0; i < 1000; ++i) {
        w.lookup(1); // 1 entry resident -> exactly one visit
        ++visits;
    }
    EXPECT_EQ(w.entriesSearched(), visits);
}

TEST(InflightWindowEdge, LookupBeforeBoundsVisibility)
{
    InflightWindow w(8, 16);
    const std::uint64_t t1 = w.insert(5, 0x11);
    const std::uint64_t t2 = w.insert(5, 0x22);
    w.insert(5, 0x33);

    // Unbounded: youngest wins.
    EXPECT_EQ(w.lookup(5).value(), 0x33u);
    // Bounded to t2: the middle instance is the youngest visible.
    EXPECT_EQ(w.lookupBefore(5, t2).value(), 0x22u);
    EXPECT_EQ(w.lookupBefore(5, t1).value(), 0x11u);
    // Bounded to before the first insert: nothing visible.
    EXPECT_FALSE(w.lookupBefore(5, 0).has_value());
    // The bound is non-destructive: unbounded lookup still sees all.
    EXPECT_EQ(w.lookup(5).value(), 0x33u);
}

TEST(InflightWindowEdge, LookupBeforeStillCountsSkippedEntries)
{
    InflightWindow w(8, 16);
    const std::uint64_t t1 = w.insert(5, 0x11);
    w.insert(5, 0x22);
    w.insert(5, 0x33);
    const std::uint64_t before = w.entriesSearched();
    // The comparators examine the young entries even though the bound
    // rejects them; the cost model must charge for that.
    EXPECT_EQ(w.lookupBefore(5, t1).value(), 0x11u);
    EXPECT_EQ(w.entriesSearched(), before + 3);
}

TEST(InflightWindowEdge, LastTicketTracksInsertsOnly)
{
    InflightWindow w(4, 16);
    EXPECT_EQ(w.lastTicket(), 0u);
    const std::uint64_t t1 = w.insert(1, 0x1);
    EXPECT_EQ(w.lastTicket(), t1);
    const std::uint64_t t2 = w.insert(2, 0x2);
    EXPECT_EQ(w.lastTicket(), t2);
    // Commits and squashes do not move it: it names the youngest ticket
    // ever issued, which is what a fetch-front checkpoint records.
    w.commitOldest();
    EXPECT_EQ(w.lastTicket(), t2);
    w.squashAll();
    EXPECT_EQ(w.lastTicket(), t2);
}
