/**
 * @file
 * Tests for the worker thread pool and the parallel suite runner: task
 * execution, exception propagation, self-scheduled parallelFor coverage,
 * and — the load-bearing property — bit-identical results between the
 * serial and parallel suite-runner paths at any worker count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <stdexcept>
#include <vector>

#include "src/sim/suite_runner.hh"
#include "src/util/thread_pool.hh"
#include "src/workloads/suite.hh"

using namespace imli;

namespace
{

/** Exact comparison of two results matrices, doubles compared bitwise. */
void
expectBitIdentical(const SuiteResults &a, const SuiteResults &b)
{
    ASSERT_EQ(a.configs, b.configs);
    ASSERT_EQ(a.cells.size(), b.cells.size());
    for (std::size_t i = 0; i < a.cells.size(); ++i) {
        const SuiteCell &x = a.cells[i];
        const SuiteCell &y = b.cells[i];
        EXPECT_EQ(x.benchmark, y.benchmark) << "cell " << i;
        EXPECT_EQ(x.suite, y.suite) << "cell " << i;
        EXPECT_EQ(x.config, y.config) << "cell " << i;
        EXPECT_EQ(x.mispredictions, y.mispredictions) << "cell " << i;
        EXPECT_EQ(x.conditionals, y.conditionals) << "cell " << i;
        EXPECT_EQ(x.instructions, y.instructions) << "cell " << i;
        EXPECT_EQ(std::memcmp(&x.mpki, &y.mpki, sizeof(double)), 0)
            << "cell " << i << ": mpki differs in bit pattern";
    }
}

std::vector<BenchmarkSpec>
smallSubset()
{
    return {findBenchmark("MM-4"), findBenchmark("WS03"),
            findBenchmark("SPEC2K6-04"), findBenchmark("SERVER-1"),
            findBenchmark("CLIENT02")};
}

} // anonymous namespace

TEST(ThreadPool, RunsSubmittedTasks)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ZeroMeansHardwareThreads)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), ThreadPool::hardwareThreads());
    EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, WaitIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> counter{0};
    pool.submit([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 1);
    pool.submit([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, DestructorDrainsQueue)
{
    std::atomic<int> counter{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 50; ++i)
            pool.submit([&counter] { ++counter; });
    }
    EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce)
{
    ThreadPool pool(4);
    const std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    for (auto &h : hits)
        h.store(0);
    pool.parallelFor(n, [&hits](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForEmptyIsNoop)
{
    ThreadPool pool(2);
    pool.parallelFor(0, [](std::size_t) { FAIL() << "body ran"; });
}

TEST(ThreadPool, ParallelForFewerItemsThanWorkers)
{
    ThreadPool pool(8);
    std::atomic<int> counter{0};
    pool.parallelFor(3, [&counter](std::size_t) { ++counter; });
    EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPool, TaskExceptionRethrownFromWait)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The pool stays usable after an error.
    std::atomic<int> counter{0};
    pool.submit([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesBodyException)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(100,
                                  [](std::size_t i) {
                                      if (i == 42)
                                          throw std::invalid_argument("42");
                                  }),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------
// Parallel suite runner determinism.
// ---------------------------------------------------------------------

TEST(ParallelSuiteRunner, BitIdenticalToSerial)
{
    const std::vector<std::string> configs = {"bimodal", "gshare",
                                              "tage-gsc"};
    SuiteRunOptions serial;
    serial.branchesPerTrace = 8000;
    serial.jobs = 1;
    const SuiteResults base = runSuite(smallSubset(), configs, serial);

    for (unsigned jobs : {2u, 4u, 8u}) {
        SuiteRunOptions opt;
        opt.branchesPerTrace = 8000;
        opt.jobs = jobs;
        const SuiteResults par = runSuite(smallSubset(), configs, opt);
        expectBitIdentical(base, par);
    }
}

TEST(ParallelSuiteRunner, RepeatedParallelRunsAgree)
{
    const std::vector<std::string> configs = {"gshare", "tage-gsc+i"};
    SuiteRunOptions opt;
    opt.branchesPerTrace = 6000;
    opt.jobs = 4;
    const SuiteResults a = runSuite(smallSubset(), configs, opt);
    const SuiteResults b = runSuite(smallSubset(), configs, opt);
    expectBitIdentical(a, b);
}

TEST(ParallelSuiteRunner, ProgressReportsEveryCell)
{
    const std::vector<std::string> configs = {"bimodal", "gshare"};
    std::atomic<std::size_t> calls{0};
    SuiteRunOptions opt;
    opt.branchesPerTrace = 3000;
    opt.jobs = 4;
    opt.progress = [&calls](const std::string &, std::size_t) { ++calls; };
    const SuiteResults r = runSuite(smallSubset(), configs, opt);
    EXPECT_EQ(calls.load(), r.cells.size());
}

TEST(ParallelSuiteRunner, ProgressCountsAreMonotonicPerBenchmark)
{
    const std::vector<std::string> configs = {"bimodal", "gshare",
                                              "gehl"};
    // The callback runs under the runner's progress mutex, so a plain map
    // is safe here.
    std::map<std::string, std::size_t> last;
    bool monotonic = true;
    SuiteRunOptions opt;
    opt.branchesPerTrace = 3000;
    opt.jobs = 4;
    opt.progress = [&](const std::string &name, std::size_t done) {
        if (done != last[name] + 1)
            monotonic = false;
        last[name] = done;
    };
    runSuite(smallSubset(), configs, opt);
    EXPECT_TRUE(monotonic);
    for (const auto &[name, done] : last)
        EXPECT_EQ(done, configs.size()) << name;
}

TEST(ParallelSuiteRunner, JobsZeroUsesHardwareThreads)
{
    const std::vector<std::string> configs = {"bimodal"};
    SuiteRunOptions serial;
    serial.branchesPerTrace = 3000;
    const SuiteResults base =
        runSuite({findBenchmark("MM-4")}, configs, serial);
    SuiteRunOptions opt;
    opt.branchesPerTrace = 3000;
    opt.jobs = 0;
    const SuiteResults par =
        runSuite({findBenchmark("MM-4")}, configs, opt);
    expectBitIdentical(base, par);
}

TEST(ParallelSuiteRunner, MergeOfBenchmarkShardsMatchesFullRun)
{
    const std::vector<std::string> configs = {"gshare", "bimodal"};
    const std::vector<BenchmarkSpec> all = smallSubset();
    SuiteRunOptions opt;
    opt.branchesPerTrace = 4000;
    opt.jobs = 2;
    const SuiteResults full = runSuite(all, configs, opt);

    const std::vector<BenchmarkSpec> lo(all.begin(), all.begin() + 2);
    const std::vector<BenchmarkSpec> hi(all.begin() + 2, all.end());
    SuiteResults merged = runSuite(lo, configs, opt);
    merged.merge(runSuite(hi, configs, opt));
    expectBitIdentical(full, merged);
}

TEST(SuiteResultsMerge, RejectsMismatchedConfigs)
{
    SuiteResults a;
    a.configs = {"bimodal"};
    a.cells.resize(1);
    SuiteResults b;
    b.configs = {"gshare"};
    b.cells.resize(1);
    EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(DefaultJobs, HonoursEnvIncludingAutoAndRejectsGarbage)
{
    ::setenv("IMLI_JOBS", "6", 1);
    EXPECT_EQ(defaultJobs(), 6u);
    ::setenv("IMLI_JOBS", "auto", 1);
    EXPECT_EQ(defaultJobs(), ThreadPool::hardwareThreads());
    ::setenv("IMLI_JOBS", "0", 1);
    EXPECT_EQ(defaultJobs(), ThreadPool::hardwareThreads());
    // Garbage must fail loudly instead of silently running serial, and
    // counts above the sanity cap must not silently clamp.
    for (const char *bad : {"-1", "fast", "4x", "", " 4", "999999999999"}) {
        ::setenv("IMLI_JOBS", bad, 1);
        EXPECT_THROW(defaultJobs(), std::runtime_error)
            << "value: \"" << bad << '"';
    }
    ::unsetenv("IMLI_JOBS");
    EXPECT_EQ(defaultJobs(), 1u);
}

TEST(SuiteResultsMerge, MergeIntoEmptyAdopts)
{
    SuiteResults empty;
    SuiteResults shard;
    shard.configs = {"bimodal"};
    shard.cells.resize(2);
    shard.cells[0].benchmark = "X";
    empty.merge(shard);
    EXPECT_EQ(empty.configs, shard.configs);
    EXPECT_EQ(empty.cells.size(), 2u);
    EXPECT_EQ(empty.cells[0].benchmark, "X");
}
