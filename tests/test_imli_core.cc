/**
 * @file
 * Tests for the paper's core contribution: the IMLI counter heuristic,
 * the outer-history storage (table + PIPE), the SIC and OH voting tables,
 * the component aggregation, its speculative checkpoint and the
 * Section 4.4 storage audit.
 */

#include <gtest/gtest.h>

#include "src/core/imli_components.hh"
#include "src/core/imli_counter.hh"
#include "src/core/imli_oh.hh"
#include "src/core/imli_outer_history.hh"
#include "src/core/imli_sic.hh"

using namespace imli;

// ---------------------------------------------------------------------------
// ImliCounter: the Section 4.1 heuristic, verbatim.
// ---------------------------------------------------------------------------

TEST(ImliCounter, BackwardTakenIncrements)
{
    ImliCounter c;
    c.onConditionalBranch(0x100, 0x80, true);
    EXPECT_EQ(c.value(), 1u);
    c.onConditionalBranch(0x100, 0x80, true);
    EXPECT_EQ(c.value(), 2u);
}

TEST(ImliCounter, BackwardNotTakenResets)
{
    ImliCounter c;
    for (int i = 0; i < 5; ++i)
        c.onConditionalBranch(0x100, 0x80, true);
    c.onConditionalBranch(0x100, 0x80, false);
    EXPECT_EQ(c.value(), 0u);
}

TEST(ImliCounter, ForwardBranchesIgnored)
{
    ImliCounter c;
    c.onConditionalBranch(0x100, 0x80, true);
    c.onConditionalBranch(0x100, 0x200, true);  // forward taken
    c.onConditionalBranch(0x100, 0x200, false); // forward not taken
    EXPECT_EQ(c.value(), 1u);
}

TEST(ImliCounter, TracksInnerIterationOfNestedLoop)
{
    // Two-level nest: the inner backedge advances the counter each inner
    // iteration; the inner exit resets it; the outer backedge contributes
    // the construction-dependent offset the paper mentions.
    ImliCounter c;
    for (int outer = 0; outer < 3; ++outer) {
        for (int inner = 0; inner < 4; ++inner) {
            const bool inner_taken = inner + 1 < 4;
            c.onConditionalBranch(0x200, 0x100, inner_taken);
        }
        EXPECT_EQ(c.value(), 0u) << "inner exit resets";
        c.onConditionalBranch(0x300, 0x80, outer + 1 < 3);
    }
}

TEST(ImliCounter, SaturatesAtWidth)
{
    ImliCounter c(4); // 4 bits -> max 15
    for (int i = 0; i < 100; ++i)
        c.onConditionalBranch(0x100, 0x80, true);
    EXPECT_EQ(c.value(), 15u);
}

TEST(ImliCounter, CheckpointRestore)
{
    ImliCounter c;
    for (int i = 0; i < 7; ++i)
        c.onConditionalBranch(0x100, 0x80, true);
    const auto cp = c.save();
    c.onConditionalBranch(0x100, 0x80, false);
    EXPECT_EQ(c.value(), 0u);
    c.restore(cp);
    EXPECT_EQ(c.value(), 7u);
}

TEST(ImliCounter, StorageIsTenBitsByDefault)
{
    ImliCounter c;
    StorageAccount acct;
    c.account(acct, "imli");
    EXPECT_EQ(acct.totalBits(), 10u);
}

// ---------------------------------------------------------------------------
// ImliOuterHistory: table + PIPE semantics (Section 4.3.1).
// ---------------------------------------------------------------------------

TEST(OuterHistory, RecoversPreviousOuterIteration)
{
    ImliOuterHistory oh;
    const std::uint64_t pc = 0x440;
    // Outer iteration N-1: record outcomes for iterations 0..3.
    const bool row[] = {true, false, false, true};
    for (unsigned m = 0; m < 4; ++m)
        oh.write(pc, m, row[m]);
    // Outer iteration N: reading at iteration M yields Out[N-1][M].
    for (unsigned m = 0; m < 4; ++m)
        EXPECT_EQ(oh.read(pc, m).ohBit, row[m]) << "iteration " << m;
}

TEST(OuterHistory, PipeHoldsOverwrittenBit)
{
    ImliOuterHistory oh;
    const std::uint64_t pc = 0x440;
    // Previous outer iteration wrote Out[N-1][0] = true.
    oh.write(pc, 0, true);
    // New outer iteration, iteration 0: the write transfers the old bit
    // into the PIPE before overwriting.
    oh.write(pc, 0, false);
    // Iteration 1 of the same outer iteration reads Out[N-1][0] from PIPE.
    EXPECT_TRUE(oh.read(pc, 1).pipeBit);
}

TEST(OuterHistory, FullDiagonalProtocol)
{
    // End-to-end: with the per-branch write protocol, at (N, M) the
    // component sees ohBit = Out[N-1][M] and pipeBit = Out[N-1][M-1].
    ImliOuterHistory oh;
    const std::uint64_t pc = 0x618;
    const unsigned trip = 8;
    bool prev_row[trip] = {};
    bool have_prev = false;
    for (unsigned n = 0; n < 6; ++n) {
        bool row[trip];
        for (unsigned m = 0; m < trip; ++m)
            row[m] = ((n * 13 + m * 7) % 3) == 0;
        for (unsigned m = 0; m < trip; ++m) {
            const auto bits = oh.read(pc, m);
            if (have_prev) {
                EXPECT_EQ(bits.ohBit, prev_row[m])
                    << "n=" << n << " m=" << m;
                if (m > 0)
                    EXPECT_EQ(bits.pipeBit, prev_row[m - 1])
                        << "n=" << n << " m=" << m;
            }
            oh.write(pc, m, row[m]);
        }
        for (unsigned m = 0; m < trip; ++m)
            prev_row[m] = row[m];
        have_prev = true;
    }
}

TEST(OuterHistory, DistinctBranchSlots)
{
    ImliOuterHistory oh;
    oh.write(0x440, 3, true);
    oh.write(0x480, 3, false); // different slot (pc bits differ)
    EXPECT_TRUE(oh.read(0x440, 3).ohBit);
    EXPECT_FALSE(oh.read(0x480, 3).ohBit);
}

TEST(OuterHistory, LargeImliCountAliases)
{
    // Counts beyond the per-slot capacity bleed into neighbouring slots
    // (hardware masking); the address must stay in range, no crash.
    ImliOuterHistory oh;
    oh.write(0x440, 5000, true);
    (void)oh.read(0x440, 5000);
}

TEST(OuterHistory, PipeCheckpointRoundTrip)
{
    ImliOuterHistory oh;
    for (unsigned i = 0; i < 16; ++i)
        oh.write(0x400 + i * 0x20, 0, (i & 1) != 0);
    // Make the PIPE non-trivial.
    for (unsigned i = 0; i < 16; ++i)
        oh.write(0x400 + i * 0x20, 0, (i & 2) != 0);
    const auto cp = oh.savePipe();
    for (unsigned i = 0; i < 16; ++i)
        oh.write(0x400 + i * 0x20, 0, true);
    oh.restorePipe(cp);
    EXPECT_EQ(oh.savePipe(), cp);
}

TEST(OuterHistory, DelayedUpdateHidesRecentWrites)
{
    ImliOuterHistory oh;
    oh.setUpdateDelay(2);
    oh.write(0x440, 0, true);
    // The write is still pending: the table bit reads as initial (false).
    EXPECT_FALSE(oh.read(0x440, 0).ohBit);
    oh.write(0x440, 1, true);
    EXPECT_FALSE(oh.read(0x440, 0).ohBit);
    // The third write pushes the first one into the table.
    oh.write(0x440, 2, true);
    EXPECT_TRUE(oh.read(0x440, 0).ohBit);
    EXPECT_FALSE(oh.read(0x440, 1).ohBit);
}

TEST(OuterHistory, ShrinkingDelayFlushes)
{
    ImliOuterHistory oh;
    oh.setUpdateDelay(8);
    for (unsigned m = 0; m < 4; ++m)
        oh.write(0x440, m, true);
    oh.setUpdateDelay(0);
    for (unsigned m = 0; m < 4; ++m)
        EXPECT_TRUE(oh.read(0x440, m).ohBit);
}

TEST(OuterHistory, StorageMatchesPaper)
{
    ImliOuterHistory oh;
    StorageAccount acct;
    oh.account(acct, "imli");
    // 1 Kbit table + 16-bit PIPE.
    EXPECT_EQ(acct.totalBits(), 1024u + 16u);
}

// ---------------------------------------------------------------------------
// ImliSic
// ---------------------------------------------------------------------------

TEST(ImliSic, LearnsPerIterationOutcome)
{
    ImliSic sic;
    ScContext ctx;
    ctx.pc = 0x4242;
    // Iterations 1..8 with outcome = (iteration is even).
    for (int round = 0; round < 30; ++round) {
        for (unsigned m = 1; m <= 8; ++m) {
            ctx.imliCount = m;
            sic.update(ctx, (m & 1) == 0);
        }
    }
    for (unsigned m = 1; m <= 8; ++m) {
        ctx.imliCount = m;
        const int v = sic.vote(ctx);
        EXPECT_EQ(v >= 0, (m & 1) == 0) << "iteration " << m;
        EXPECT_NE(v, 0);
    }
}

TEST(ImliSic, AbstainsOutsideLoops)
{
    ImliSic sic;
    ScContext ctx;
    ctx.pc = 0x4242;
    ctx.imliCount = 0;
    for (int i = 0; i < 100; ++i)
        sic.update(ctx, true);
    EXPECT_EQ(sic.vote(ctx), 0)
        << "IMLIcount == 0 (outside any inner loop) must not vote";
}

TEST(ImliSic, WeightScalesVote)
{
    ImliSic::Config cfg;
    cfg.weight = 3;
    ImliSic sic(cfg);
    ScContext ctx;
    ctx.pc = 0x4242;
    ctx.imliCount = 4;
    sic.update(ctx, true);
    EXPECT_EQ(sic.vote(ctx) % 3, 0);
    EXPECT_GT(sic.vote(ctx), 0);
}

TEST(ImliSic, IndexDependsOnIterationAndPc)
{
    ImliSic sic;
    ScContext a, b, c;
    a.pc = b.pc = 0x4242;
    c.pc = 0x5252;
    a.imliCount = 3;
    b.imliCount = 4;
    c.imliCount = 3;
    for (int i = 0; i < 64; ++i)
        sic.update(a, true);
    // Different iteration or different PC: unaffected counters.
    EXPECT_GT(sic.vote(a), 0);
    EXPECT_LE(std::abs(sic.vote(b)), 1);
    EXPECT_LE(std::abs(sic.vote(c)), 1);
}

TEST(ImliSic, StorageIs384Bytes)
{
    ImliSic sic;
    StorageAccount acct;
    sic.account(acct);
    EXPECT_EQ(acct.totalBytes(), 384u); // 512 x 6 bits (Section 4.4)
}

// ---------------------------------------------------------------------------
// ImliOh
// ---------------------------------------------------------------------------

TEST(ImliOh, LearnsIdentityMapping)
{
    ImliOh oh;
    ScContext ctx;
    ctx.pc = 0x4242;
    for (int i = 0; i < 60; ++i) {
        ctx.ohBit = (i & 1) != 0;
        ctx.pipeBit = false;
        oh.update(ctx, ctx.ohBit); // Out[N][M] == Out[N-1][M]
    }
    ctx.ohBit = true;
    EXPECT_GT(oh.vote(ctx), 0);
    ctx.ohBit = false;
    EXPECT_LT(oh.vote(ctx), 0);
}

TEST(ImliOh, LearnsInvertedMapping)
{
    ImliOh oh;
    ScContext ctx;
    ctx.pc = 0x4242;
    for (int i = 0; i < 60; ++i) {
        ctx.ohBit = (i & 1) != 0;
        oh.update(ctx, !ctx.ohBit); // MM-4 style inversion
    }
    ctx.ohBit = true;
    EXPECT_LT(oh.vote(ctx), 0);
    ctx.ohBit = false;
    EXPECT_GT(oh.vote(ctx), 0);
}

TEST(ImliOh, LearnsDiagonalViaPipeBit)
{
    ImliOh oh;
    ScContext ctx;
    ctx.pc = 0x4242;
    for (int i = 0; i < 120; ++i) {
        ctx.ohBit = (i % 3) == 0;
        ctx.pipeBit = (i & 1) != 0;
        oh.update(ctx, ctx.pipeBit); // Out[N][M] == Out[N-1][M-1]
    }
    for (bool ohb : {false, true}) {
        ctx.ohBit = ohb;
        ctx.pipeBit = true;
        EXPECT_GT(oh.vote(ctx), 0);
        ctx.pipeBit = false;
        EXPECT_LT(oh.vote(ctx), 0);
    }
}

TEST(ImliOh, StorageIs192Bytes)
{
    ImliOh oh;
    StorageAccount acct;
    oh.account(acct);
    EXPECT_EQ(acct.totalBytes(), 192u); // 256 x 6 bits (Section 4.4)
}

// ---------------------------------------------------------------------------
// ImliComponents aggregation
// ---------------------------------------------------------------------------

TEST(ImliComponents, FillContextExposesCounterAndBits)
{
    ImliComponents imli;
    // Enter an inner loop: two taken backward branches.
    imli.onResolved(0x200, 0x100, true);
    imli.onResolved(0x200, 0x100, true);
    ScContext ctx;
    imli.fillContext(ctx, 0x300);
    EXPECT_EQ(ctx.imliCount, 2u);
}

TEST(ImliComponents, OuterHistoryWrittenAtPreUpdateCount)
{
    ImliComponents imli;
    // A backward branch at count k writes its outcome at (pc, k), not
    // (pc, k+1): the write must use the fetch-time count.
    imli.onResolved(0x200, 0x100, true); // count 0 -> 1, wrote at 0
    imli.onResolved(0x200, 0x100, true); // count 1 -> 2, wrote at 1
    ScContext ctx;
    ImliComponents check;
    // Reconstruct: reading (0x200, 0) and (0x200, 1) must both be taken.
    EXPECT_TRUE(imli.outerHistory().read(0x200, 0).ohBit);
    EXPECT_TRUE(imli.outerHistory().read(0x200, 1).ohBit);
    EXPECT_FALSE(imli.outerHistory().read(0x200, 2).ohBit);
    (void)ctx;
    (void)check;
}

TEST(ImliComponents, ComponentsFollowConfig)
{
    ImliComponents::Config cfg;
    cfg.enableSic = true;
    cfg.enableOh = false;
    ImliComponents imli(cfg);
    EXPECT_EQ(imli.components().size(), 1u);
    cfg.enableOh = true;
    ImliComponents both(cfg);
    EXPECT_EQ(both.components().size(), 2u);
    cfg.enableSic = false;
    cfg.enableOh = false;
    ImliComponents none(cfg);
    EXPECT_TRUE(none.components().empty());
}

TEST(ImliComponents, CheckpointIs26Bits)
{
    ImliComponents imli;
    // Paper Section 4.4: IMLI counter (10) + PIPE (16).
    EXPECT_EQ(imli.checkpointBits(), 26u);
}

TEST(ImliComponents, CheckpointRestoreExact)
{
    ImliComponents imli;
    for (int i = 0; i < 9; ++i)
        imli.onResolved(0x200 + (i % 3) * 0x20, 0x100, (i % 3) != 2);
    const auto cp = imli.save();
    const unsigned count = imli.counter().value();
    for (int i = 0; i < 5; ++i)
        imli.onResolved(0x200, 0x100, false);
    imli.restore(cp);
    EXPECT_EQ(imli.counter().value(), count);
    EXPECT_EQ(imli.save().pipe, cp.pipe);
}

TEST(ImliComponents, StorageAuditIs708Bytes)
{
    // The headline Section 4.4 number: 384 B (SIC) + 128 B (history
    // table) + 192 B (OH table) + 4 B (PIPE + counter) = 708 bytes.
    ImliComponents imli;
    StorageAccount acct;
    imli.accountAll(acct);
    EXPECT_EQ(acct.totalBytes(), 708u);
}

TEST(ImliComponents, DisabledOhSkipsOuterState)
{
    ImliComponents::Config cfg;
    cfg.enableOh = false;
    ImliComponents imli(cfg);
    ScContext ctx;
    imli.fillContext(ctx, 0x300);
    EXPECT_FALSE(ctx.ohBit);
    EXPECT_FALSE(ctx.pipeBit);
    EXPECT_EQ(imli.checkpointBits(), 10u) << "counter only";
}
