/**
 * @file
 * CBP-format codec tests: golden-file decode, exact write/read
 * round-trips, corrupt/truncated error paths, streaming equivalence
 * against the native .imt path, and the bit-reproducibility of the
 * checked-in recorded scenario files.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/predictors/zoo.hh"
#include "src/sim/simulator.hh"
#include "src/trace/cbp_reader.hh"
#include "src/trace/trace_io.hh"
#include "src/trace/trace_text.hh"
#include "src/workloads/generator_source.hh"
#include "src/workloads/suite.hh"

using namespace imli;

namespace
{

const std::string dataDir = IMLI_TEST_DATA_DIR;

std::string
tempPath(const std::string &leaf)
{
    // Process-unique: ctest runs discovered tests in parallel processes.
    return ::testing::TempDir() + leaf + "." + std::to_string(::getpid());
}

void
expectSameRecords(const Trace &a, const Trace &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_TRUE(a[i] == b[i]) << "record " << i;
}

std::string
fileBytes(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.good()) << path;
    return std::string((std::istreambuf_iterator<char>(is)),
                       std::istreambuf_iterator<char>());
}

void
writeBytes(const std::string &path, const std::string &bytes)
{
    std::ofstream os(path, std::ios::binary);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/** A valid CBP byte stream holding @p trace, for corruption tests. */
std::string
cbpBytes(const Trace &trace)
{
    std::ostringstream os;
    writeCbpTrace(trace, os);
    return os.str();
}

} // anonymous namespace

// ---------------------------------------------------------------------
// Op-code mapping.
// ---------------------------------------------------------------------

TEST(CbpOpCodes, RoundTripEveryBranchType)
{
    const std::vector<BranchType> types = {
        BranchType::CondDirect,   BranchType::UncondDirect,
        BranchType::UncondIndirect, BranchType::Call,
        BranchType::IndirectCall, BranchType::Return};
    for (BranchType t : types)
        EXPECT_EQ(branchTypeFromCbpOp(static_cast<std::uint8_t>(
                      cbpOpFromBranchType(t))),
                  t);
}

TEST(CbpOpCodes, UnknownOpCodeThrows)
{
    EXPECT_THROW(branchTypeFromCbpOp(0), TraceFormatError);
    EXPECT_THROW(branchTypeFromCbpOp(7), TraceFormatError);
    EXPECT_THROW(branchTypeFromCbpOp(255), TraceFormatError);
}

// ---------------------------------------------------------------------
// Golden file: the checked-in golden_mini.cbp must decode to exactly
// the records of the (independently parsed) text golden.
// ---------------------------------------------------------------------

TEST(CbpGolden, DecodesToTheTextGoldenRecords)
{
    const Trace expected =
        readTraceTextFile(dataDir + "/golden_mini.trace.txt");
    const Trace decoded = readCbpFile(dataDir + "/golden_mini.cbp");
    expectSameRecords(expected, decoded);
    // Name comes from the file stem (CBP headers carry no name).
    EXPECT_EQ(decoded.name(), "golden_mini");
}

TEST(CbpGolden, ExplicitNameOverridesTheStem)
{
    EXPECT_EQ(readCbpFile(dataDir + "/golden_mini.cbp", "custom").name(),
              "custom");
}

TEST(CbpGolden, ReencodeIsByteIdentical)
{
    const Trace decoded = readCbpFile(dataDir + "/golden_mini.cbp");
    EXPECT_EQ(cbpBytes(decoded), fileBytes(dataDir + "/golden_mini.cbp"));
}

// ---------------------------------------------------------------------
// Write/read round-trips on generated content.
// ---------------------------------------------------------------------

TEST(CbpRoundTrip, WriteThenReadIsExactAtOddChunkSizes)
{
    const Trace trace = generateTrace(findBenchmark("MM07"), 6000);
    const std::string path = tempPath("imli_cbp_roundtrip.cbp");
    TraceBranchSource source(trace);
    EXPECT_EQ(writeCbpFile(source, path), trace.size());

    for (std::size_t chunk : {std::size_t(1), std::size_t(7),
                              std::size_t(997), std::size_t(1u << 20)}) {
        CbpFileBranchSource reader(path, trace.name(), chunk);
        EXPECT_EQ(reader.name(), trace.name());
        const Trace drained = drainSource(reader);
        expectSameRecords(trace, drained);
        EXPECT_EQ(reader.decodedRecords(), trace.size());
    }
    std::remove(path.c_str());
}

TEST(CbpRoundTrip, ResetReplaysTheIdenticalStream)
{
    const Trace trace = generateTrace(findBenchmark("WS03"), 3000);
    const std::string path = tempPath("imli_cbp_reset.cbp");
    TraceBranchSource source(trace);
    writeCbpFile(source, path);

    CbpFileBranchSource reader(path, "", 311);
    const Trace first = drainSource(reader);
    EXPECT_TRUE(reader.nextChunk().empty()) << "exhausted source";
    reader.reset();
    EXPECT_EQ(reader.decodedRecords(), 0u);
    // Rewind mid-stream too: a fresh full pass must still be exact.
    (void)reader.nextChunk();
    reader.reset();
    expectSameRecords(first, drainSource(reader));
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Damage: missing, truncated and corrupt inputs must fail loudly.
// ---------------------------------------------------------------------

TEST(CbpDamage, MissingFileThrows)
{
    EXPECT_THROW(CbpFileBranchSource("/nonexistent/nope.cbp"),
                 std::runtime_error);
    EXPECT_THROW(probeCbpFile("/nonexistent/nope.cbp"),
                 std::runtime_error);
}

TEST(CbpDamage, TruncatedHeaderThrows)
{
    const std::string path = tempPath("imli_cbp_trunchdr.cbp");
    writeBytes(path, "CBPT\x01");  // half a header
    EXPECT_THROW(CbpFileBranchSource src(path), TraceFormatError);
    EXPECT_THROW(probeCbpFile(path), TraceFormatError);
    writeBytes(path, "");  // empty file
    EXPECT_THROW(CbpFileBranchSource src(path), TraceFormatError);
    std::remove(path.c_str());
}

TEST(CbpDamage, BadMagicThrows)
{
    const std::string path = tempPath("imli_cbp_badmagic.cbp");
    std::string bytes = cbpBytes(generateTrace(findBenchmark("WS03"), 1000));
    bytes[0] = 'X';
    writeBytes(path, bytes);
    EXPECT_THROW(CbpFileBranchSource src(path), TraceFormatError);
    std::remove(path.c_str());
}

TEST(CbpDamage, UnsupportedVersionThrows)
{
    const std::string path = tempPath("imli_cbp_badver.cbp");
    std::string bytes = cbpBytes(generateTrace(findBenchmark("WS03"), 1000));
    bytes[4] = 9;
    writeBytes(path, bytes);
    try {
        CbpFileBranchSource src(path);
        FAIL() << "expected TraceFormatError";
    } catch (const TraceFormatError &e) {
        EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
    }
    std::remove(path.c_str());
}

TEST(CbpDamage, TornFinalRecordThrowsOnDecodeAndProbe)
{
    const Trace trace = generateTrace(findBenchmark("WS03"), 1000);
    const std::string path = tempPath("imli_cbp_torn.cbp");
    const std::string whole = cbpBytes(trace);
    writeBytes(path, whole.substr(0, whole.size() - 5));

    // The probe sees the torn tail without reading the body...
    EXPECT_THROW(probeCbpFile(path), TraceFormatError);

    // ...and the streaming decode hits it as a truncated record, not a
    // silent short stream.
    CbpFileBranchSource reader(path, "", 64);
    EXPECT_THROW(
        {
            for (BranchSpan s = reader.nextChunk(); !s.empty();
                 s = reader.nextChunk()) {
            }
        },
        TraceFormatError);
    std::remove(path.c_str());
}

TEST(CbpDamage, CorruptOpCodeAndTakenByteThrow)
{
    const Trace trace = generateTrace(findBenchmark("WS03"), 1000);
    const std::string path = tempPath("imli_cbp_badbody.cbp");
    const std::string whole = cbpBytes(trace);

    // First record's opType byte (header 8 + pc 8 + target 8 + insts 4).
    std::string bad_op = whole;
    bad_op[8 + 20] = 0;
    writeBytes(path, bad_op);
    {
        CbpFileBranchSource reader(path);
        try {
            reader.nextChunk();
            FAIL() << "expected TraceFormatError";
        } catch (const TraceFormatError &e) {
            // Body damage surfaces mid-run: the error must say which
            // file of a mixed suite is broken.
            EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
        }
    }

    std::string bad_taken = whole;
    bad_taken[8 + 21] = 2;
    writeBytes(path, bad_taken);
    {
        CbpFileBranchSource reader(path);
        EXPECT_THROW(reader.nextChunk(), TraceFormatError);
    }
    std::remove(path.c_str());
}

TEST(CbpDamage, ProbeAcceptsHealthyFiles)
{
    EXPECT_NO_THROW(probeCbpFile(dataDir + "/golden_mini.cbp"));
    EXPECT_NO_THROW(probeCbpFile(dataDir + "/rec-01.cbp"));
}

// ---------------------------------------------------------------------
// Streaming equivalence: the CBP source and the imported .imt source
// must be indistinguishable to the simulator (satellite: the property
// test behind `trace_tools import`).
// ---------------------------------------------------------------------

TEST(CbpEquivalence, CbpSourceMatchesImportedImtSource)
{
    const BenchmarkSpec bench = findBenchmark("SPEC2K6-04");
    const std::string cbp_path = tempPath("imli_cbp_equiv.cbp");
    const std::string imt_path = tempPath("imli_cbp_equiv.imt");

    GeneratorBranchSource generator(bench, 5000);
    const std::uint64_t written = writeCbpFile(generator, cbp_path);

    // "import": stream CBP -> .imt exactly like the tool does.
    CbpFileBranchSource importer(cbp_path, "equiv");
    EXPECT_EQ(writeTraceFile(importer, imt_path), written);

    // Record-level equality at deliberately different chunkings.
    CbpFileBranchSource cbp(cbp_path, "equiv", 313);
    FileBranchSource imt(imt_path, 257);
    expectSameRecords(drainSource(cbp), drainSource(imt));

    // Simulation-level equality, per-PC counters included.
    SimOptions opt;
    opt.collectPerPc = true;
    cbp.reset();
    imt.reset();
    PredictorPtr a = makePredictor("tage-gsc+i");
    PredictorPtr b = makePredictor("tage-gsc+i");
    const SimResult ra = simulate(*a, cbp, opt);
    const SimResult rb = simulate(*b, imt, opt);
    EXPECT_EQ(ra.conditionals, rb.conditionals);
    EXPECT_EQ(ra.mispredictions, rb.mispredictions);
    EXPECT_EQ(ra.instructions, rb.instructions);
    EXPECT_EQ(ra.perPcMispredictions, rb.perPcMispredictions);

    std::remove(cbp_path.c_str());
    std::remove(imt_path.c_str());
}

// ---------------------------------------------------------------------
// Recorded scenario files: regenerating them must reproduce the
// checked-in bytes exactly, and each must decode and carry real content.
// ---------------------------------------------------------------------

TEST(RecordedScenarios, SynthesisReproducesCheckedInFilesBitForBit)
{
    const std::vector<BenchmarkSpec> scenarios = recordedScenarios();
    ASSERT_EQ(scenarios.size(), 8u);
    for (const BenchmarkSpec &scenario : scenarios) {
        const std::string leaf = recordedScenarioFileName(scenario);
        const std::string fresh = tempPath(leaf);
        GeneratorBranchSource source(scenario, recordedScenarioBranches);
        writeCbpFile(source, fresh);
        EXPECT_EQ(fileBytes(fresh), fileBytes(dataDir + "/" + leaf))
            << scenario.name
            << ": tests/data is stale; rerun trace_tools synth-recorded";
        std::remove(fresh.c_str());
    }
}

TEST(RecordedScenarios, EveryFileDecodesWithConditionalContent)
{
    for (const BenchmarkSpec &spec : recordedSuite(dataDir)) {
        ASSERT_EQ(spec.backend, TraceBackend::RecordedCbp);
        const Trace trace = readCbpFile(spec.tracePath, spec.name);
        EXPECT_GE(trace.size(), recordedScenarioBranches) << spec.name;
        EXPECT_GT(trace.conditionalCount(), 0u) << spec.name;
        EXPECT_GT(trace.instructionCount(), trace.size()) << spec.name;
    }
}

TEST(RecordedScenarios, ValidationNamesTheBenchmarkOnMissingFiles)
{
    const std::vector<BenchmarkSpec> bogus = recordedSuite("/nonexistent");
    try {
        validateBenchmark(bogus.front());
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("REC-01"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("/nonexistent"),
                  std::string::npos);
    }
}

// ---------------------------------------------------------------------
// Backend factory plumbing.
// ---------------------------------------------------------------------

TEST(BranchSourceFactory, PicksTheBackendFromTheExtension)
{
    EXPECT_EQ(makeRecordedBenchmark("r", "REC", "x/y.cbp").backend,
              TraceBackend::RecordedCbp);
    EXPECT_EQ(makeRecordedBenchmark("r", "REC", "x/y.imt").backend,
              TraceBackend::RecordedImt);
    EXPECT_THROW(makeRecordedBenchmark("r", "REC", "x/y.txt"),
                 std::invalid_argument);
    // Dots in directory components are not extensions.
    EXPECT_THROW(makeRecordedBenchmark("r", "REC", "/data/v1.0/trace"),
                 std::invalid_argument);
}

TEST(BranchSourceFactory, OpensEveryBackendWithTheBenchmarkStream)
{
    const BenchmarkSpec generated = findBenchmark("WS03");
    const Trace reference = generateTrace(generated, 2000);

    // Extension must stay last: makeRecordedBenchmark sniffs it.
    const std::string base = tempPath("imli_factory");
    const std::string cbp_path = base + ".cbp";
    const std::string imt_path = base + ".imt";
    {
        TraceBranchSource src(reference);
        writeCbpFile(src, cbp_path);
    }
    writeTraceFile(reference, imt_path);

    // Generated: capped at the target like generateTrace.
    expectSameRecords(reference,
                      drainSource(*makeBranchSource(generated, 2000)));

    // Recorded: whole file, whatever the target argument says.
    const BenchmarkSpec cbp =
        makeRecordedBenchmark("WS03-rec", "REC", cbp_path);
    validateBenchmark(cbp);
    expectSameRecords(reference, drainSource(*makeBranchSource(cbp, 1)));
    EXPECT_EQ(makeBranchSource(cbp, 1)->name(), "WS03-rec")
        << "CBP sources carry the benchmark name";

    const BenchmarkSpec imt =
        makeRecordedBenchmark("WS03-imt", "REC", imt_path);
    validateBenchmark(imt);
    expectSameRecords(reference, drainSource(*makeBranchSource(imt, 1)));
    EXPECT_EQ(makeBranchSource(imt, 1)->name(), "WS03-imt")
        << ".imt sources carry the benchmark name, not the file header's";

    std::remove(cbp_path.c_str());
    std::remove(imt_path.c_str());
}

TEST(BranchSourceFactory, ValidateRejectsKernellessGeneratedSpecs)
{
    BenchmarkSpec empty;
    empty.name = "EMPTY";
    EXPECT_THROW(validateBenchmark(empty), std::runtime_error);
}
