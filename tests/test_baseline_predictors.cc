/**
 * @file
 * Behavioural tests for the simple baselines (bimodal, gshare): each must
 * learn what its structure allows and fail where theory says it must.
 */

#include <gtest/gtest.h>

#include "src/predictors/bimodal.hh"
#include "src/predictors/gshare.hh"
#include "src/util/rng.hh"

using namespace imli;

namespace
{

/** Run (pc, taken) pairs; return accuracy over the second half. */
template <typename Pred, typename Gen>
double
measure(Pred &pred, Gen gen, int steps)
{
    int correct = 0, counted = 0;
    for (int i = 0; i < steps; ++i) {
        const auto [pc, taken] = gen(i);
        const bool p = pred.predict(pc);
        pred.update(pc, taken, pc + 8);
        if (i >= steps / 2) {
            ++counted;
            correct += (p == taken) ? 1 : 0;
        }
    }
    return static_cast<double>(correct) / counted;
}

} // anonymous namespace

TEST(Bimodal, LearnsStrongBias)
{
    BimodalPredictor pred(10);
    const double acc = measure(
        pred, [](int) { return std::pair<std::uint64_t, bool>{0x44, true}; },
        500);
    EXPECT_GT(acc, 0.99);
}

TEST(Bimodal, TracksPerPcBiasIndependently)
{
    BimodalPredictor pred(10);
    const double acc = measure(
        pred,
        [](int i) {
            // Two branches with opposite biases.
            return (i & 1)
                       ? std::pair<std::uint64_t, bool>{0x100, true}
                       : std::pair<std::uint64_t, bool>{0x200, false};
        },
        1000);
    EXPECT_GT(acc, 0.99);
}

TEST(Bimodal, FailsOnAlternation)
{
    BimodalPredictor pred(10);
    const double acc = measure(
        pred,
        [](int i) {
            return std::pair<std::uint64_t, bool>{0x44, (i & 1) != 0};
        },
        1000);
    // A 2-bit counter mispredicts alternation about half the time.
    EXPECT_LT(acc, 0.7);
}

TEST(Bimodal, HysteresisAbsorbsGlitches)
{
    BimodalPredictor pred(10);
    // Saturate towards taken.
    for (int i = 0; i < 8; ++i)
        pred.update(0x44, true, 0x4c);
    // One glitch must not flip the prediction.
    pred.update(0x44, false, 0x4c);
    EXPECT_TRUE(pred.predict(0x44));
}

TEST(Gshare, LearnsAlternation)
{
    GsharePredictor pred(12, 12);
    const double acc = measure(
        pred,
        [](int i) {
            return std::pair<std::uint64_t, bool>{0x44, (i & 1) != 0};
        },
        2000);
    EXPECT_GT(acc, 0.95);
}

TEST(Gshare, LearnsHistoryCorrelation)
{
    // Branch B's outcome equals branch A's previous outcome: global
    // history predicts it, per-PC counters cannot.
    GsharePredictor pred(12, 12);
    Xoroshiro128 rng(3);
    bool last_a = false;
    int correct = 0, counted = 0;
    for (int i = 0; i < 4000; ++i) {
        const bool a = rng.bernoulli(0.5);
        pred.predict(0x100);
        pred.update(0x100, a, 0x108);
        const bool expect_b = last_a;
        last_a = a;
        const bool p = pred.predict(0x200);
        pred.update(0x200, expect_b, 0x208);
        if (i > 2000) {
            ++counted;
            correct += (p == expect_b) ? 1 : 0;
        }
    }
    EXPECT_GT(static_cast<double>(correct) / counted, 0.9);
}

TEST(Gshare, BeatsBimodalOnPattern)
{
    BimodalPredictor bim(12);
    GsharePredictor gsh(12, 12);
    auto gen = [](int i) {
        // Period-4 pattern: T T N T
        static const bool pattern[] = {true, true, false, true};
        return std::pair<std::uint64_t, bool>{0x80, pattern[i % 4]};
    };
    const double bim_acc = measure(bim, gen, 2000);
    const double gsh_acc = measure(gsh, gen, 2000);
    EXPECT_GT(gsh_acc, 0.95);
    EXPECT_GT(gsh_acc, bim_acc + 0.15);
}

TEST(Gshare, UnconditionalBranchesShapeHistory)
{
    // trackOtherInst must change subsequent indices; smoke-test that the
    // call is accepted and the predictor still learns.
    GsharePredictor pred(12, 12);
    int correct = 0;
    for (int i = 0; i < 2000; ++i) {
        pred.trackOtherInst(0x500, BranchType::Call, true, 0x900);
        const bool taken = (i % 3) != 0;
        const bool p = pred.predict(0x44);
        pred.update(0x44, taken, 0x4c);
        if (i > 1000)
            correct += (p == taken) ? 1 : 0;
    }
    EXPECT_GT(correct / 1000.0, 0.9);
}

TEST(Baselines, StorageAccounts)
{
    BimodalPredictor bim(13, 2);
    EXPECT_EQ(bim.storage().totalBits(), (1u << 13) * 2);
    GsharePredictor gsh(14, 14);
    EXPECT_GE(gsh.storage().totalBits(), (1u << 14) * 2);
    EXPECT_EQ(bim.name(), "bimodal");
    EXPECT_EQ(gsh.name(), "gshare");
}
