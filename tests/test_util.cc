/**
 * @file
 * Unit tests for src/util: RNG, counters, hashing, tables, CLI, storage.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>

#include "src/util/cli.hh"
#include "src/util/counters.hh"
#include "src/util/hashing.hh"
#include "src/util/rng.hh"
#include "src/util/storage.hh"
#include "src/util/table_writer.hh"
#include "src/util/thread_pool.hh"

using namespace imli;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicFromSeed)
{
    Xoroshiro128 a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Xoroshiro128 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Rng, BelowStaysInRange)
{
    Xoroshiro128 rng(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowOneAlwaysZero)
{
    Xoroshiro128 rng(9);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive)
{
    Xoroshiro128 rng(11);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const std::int64_t v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u) << "all values of a small range reachable";
}

TEST(Rng, BernoulliExtremes)
{
    Xoroshiro128 rng(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, BernoulliRoughlyCalibrated)
{
    Xoroshiro128 rng(17);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    const double rate = static_cast<double>(hits) / n;
    EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(Rng, UniformInUnitInterval)
{
    Xoroshiro128 rng(19);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ForkDecorrelates)
{
    Xoroshiro128 parent(23);
    Xoroshiro128 child1 = parent.fork(1);
    Xoroshiro128 child2 = parent.fork(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (child1.next() == child2.next())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Rng, SplitMixKnownProgression)
{
    // SplitMix64 must never emit two identical consecutive values from a
    // sane seed (would break Xoroshiro seeding).
    SplitMix64 sm(0);
    const std::uint64_t a = sm.next();
    const std::uint64_t b = sm.next();
    EXPECT_NE(a, b);
}

// ---------------------------------------------------------------------------
// SatCounter
// ---------------------------------------------------------------------------

TEST(SatCounter, SaturatesHigh)
{
    SatCounter c(2, 0);
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.raw(), 3u);
    EXPECT_TRUE(c.taken());
}

TEST(SatCounter, SaturatesLow)
{
    SatCounter c(2, 3);
    for (int i = 0; i < 10; ++i)
        c.decrement();
    EXPECT_EQ(c.raw(), 0u);
    EXPECT_FALSE(c.taken());
}

TEST(SatCounter, MidpointPredictsTaken)
{
    SatCounter c(3, 4); // midpoint of 3-bit counter
    EXPECT_TRUE(c.taken());
    c.decrement();
    EXPECT_FALSE(c.taken());
}

TEST(SatCounter, WeakStates)
{
    SatCounter c(2, 1);
    EXPECT_TRUE(c.isWeak());
    c.increment();
    EXPECT_TRUE(c.isWeak()); // value 2 == midpoint
    c.increment();
    EXPECT_FALSE(c.isWeak());
}

TEST(SatCounter, ResetDirections)
{
    SatCounter c(2);
    c.reset(true);
    EXPECT_TRUE(c.taken());
    EXPECT_TRUE(c.isWeak());
    c.reset(false);
    EXPECT_FALSE(c.taken());
    EXPECT_TRUE(c.isWeak());
}

TEST(SatCounter, UpdateMovesTowardsOutcome)
{
    SatCounter c(2, 1);
    c.update(true);
    EXPECT_EQ(c.raw(), 2u);
    c.update(false);
    EXPECT_EQ(c.raw(), 1u);
}

// ---------------------------------------------------------------------------
// SignedCounter
// ---------------------------------------------------------------------------

TEST(SignedCounter, Bounds)
{
    SignedCounter c(6);
    EXPECT_EQ(c.maxValue(), 31);
    EXPECT_EQ(c.minValue(), -32);
}

TEST(SignedCounter, SaturatesBothWays)
{
    SignedCounter c(4);
    for (int i = 0; i < 20; ++i)
        c.update(true);
    EXPECT_EQ(c.raw(), 7);
    for (int i = 0; i < 40; ++i)
        c.update(false);
    EXPECT_EQ(c.raw(), -8);
}

TEST(SignedCounter, CenteredNeverZero)
{
    SignedCounter c(6);
    for (int i = 0; i < 100; ++i) {
        EXPECT_NE(c.centered(), 0);
        c.update((i & 3) != 0);
    }
}

TEST(SignedCounter, CenteredFormula)
{
    SignedCounter c(6, 5);
    EXPECT_EQ(c.centered(), 11);
    c.set(-3);
    EXPECT_EQ(c.centered(), -5);
}

TEST(SignedCounter, SignPrediction)
{
    SignedCounter c(6, 0);
    EXPECT_TRUE(c.taken()); // zero counts as weakly taken
    c.set(-1);
    EXPECT_FALSE(c.taken());
}

// ---------------------------------------------------------------------------
// Hashing
// ---------------------------------------------------------------------------

TEST(Hashing, Mix64Bijective)
{
    // mix64 is a bijection; distinct inputs produce distinct outputs.
    std::set<std::uint64_t> outs;
    for (std::uint64_t i = 0; i < 1000; ++i)
        outs.insert(mix64(i));
    EXPECT_EQ(outs.size(), 1000u);
}

TEST(Hashing, FoldBitsWidth)
{
    Xoroshiro128 rng(3);
    for (unsigned bits : {1u, 5u, 9u, 13u, 31u}) {
        for (int i = 0; i < 100; ++i)
            EXPECT_LT(foldBits(rng.next(), bits), 1ULL << bits);
    }
}

TEST(Hashing, FoldBitsPreservesFullWidth)
{
    EXPECT_EQ(foldBits(0xdeadbeefULL, 64), 0xdeadbeefULL);
}

TEST(Hashing, MaskBits)
{
    EXPECT_EQ(maskBits(0), 0u);
    EXPECT_EQ(maskBits(4), 0xfu);
    EXPECT_EQ(maskBits(64), ~0ULL);
}

TEST(Hashing, PowerOfTwo)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(1024));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_FALSE(isPowerOfTwo(1023));
}

TEST(Hashing, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

// ---------------------------------------------------------------------------
// TableWriter
// ---------------------------------------------------------------------------

TEST(TableWriter, AlignedOutputContainsCells)
{
    TableWriter t("caption");
    t.setHeader({"name", "value"});
    t.addRow({"alpha", "1.5"});
    t.addRow({"b", "20"});
    std::ostringstream os;
    t.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("caption"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("20"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(TableWriter, CsvEscapesCommas)
{
    TableWriter t;
    t.setHeader({"a", "b"});
    t.addRow({"x,y", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
}

TEST(TableWriter, SeparatorRowsNotCounted)
{
    TableWriter t;
    t.setHeader({"a"});
    t.addRow({"1"});
    t.addSeparator();
    t.addRow({"2"});
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(TableWriter, Formatters)
{
    EXPECT_EQ(formatDouble(1.23456, 2), "1.23");
    EXPECT_EQ(formatDelta(0.5, 1), "+0.5");
    EXPECT_EQ(formatDelta(-0.5, 1), "-0.5");
    EXPECT_EQ(formatPercent(-0.068, 1), "-6.8 %");
}

// ---------------------------------------------------------------------------
// CommandLine
// ---------------------------------------------------------------------------

TEST(CommandLine, ParsesEqualsForm)
{
    const char *argv[] = {"prog", "--alpha=3", "--name=x"};
    CommandLine cli(3, argv);
    EXPECT_EQ(cli.getInt("alpha", 0), 3);
    EXPECT_EQ(cli.getString("name"), "x");
}

TEST(CommandLine, ParsesSpaceForm)
{
    const char *argv[] = {"prog", "--count", "17"};
    CommandLine cli(3, argv);
    EXPECT_EQ(cli.getInt("count", 0), 17);
}

TEST(CommandLine, BooleanFlags)
{
    const char *argv[] = {"prog", "--verbose", "--csv=false"};
    CommandLine cli(3, argv);
    EXPECT_TRUE(cli.getBool("verbose"));
    EXPECT_FALSE(cli.getBool("csv"));
    EXPECT_FALSE(cli.getBool("absent"));
}

TEST(CommandLine, Positionals)
{
    const char *argv[] = {"prog", "generate", "--out=x", "extra"};
    CommandLine cli(4, argv);
    ASSERT_EQ(cli.positionals().size(), 2u);
    EXPECT_EQ(cli.positionals()[0], "generate");
    EXPECT_EQ(cli.positionals()[1], "extra");
}

TEST(CommandLine, DefaultsOnMissingFlags)
{
    const char *argv[] = {"prog"};
    CommandLine cli(1, argv);
    EXPECT_EQ(cli.getInt("num", 42), 42);
    EXPECT_EQ(cli.getDouble("pi", 3.14), 3.14);
}

TEST(CommandLine, MalformedNumericValuesThrow)
{
    // Strict-parse policy: "--branches 10x" must fail loudly instead of
    // silently running the wrong experiment with the default.
    {
        const char *argv[] = {"prog", "--num=abc", "--branches=10x"};
        CommandLine cli(3, argv);
        EXPECT_THROW(cli.getInt("num", 42), std::runtime_error);
        EXPECT_THROW(cli.getInt("branches", 0), std::runtime_error);
        EXPECT_THROW(cli.getDouble("num", 1.0), std::runtime_error);
    }
    {
        const char *argv[] = {"prog", "--pi=3.14.15"};
        CommandLine cli(2, argv);
        EXPECT_THROW(cli.getDouble("pi", 3.14), std::runtime_error);
    }
    {
        // Present without a value is malformed for numeric flags.
        const char *argv[] = {"prog", "--num"};
        CommandLine cli(2, argv);
        EXPECT_THROW(cli.getInt("num", 42), std::runtime_error);
        EXPECT_THROW(cli.getDouble("num", 1.0), std::runtime_error);
    }
    {
        // Overflow clamps inside strtoll/strtod with a clean end pointer;
        // the strict parse must still reject it.
        const char *argv[] = {"prog", "--big=99999999999999999999",
                              "--huge=1e999"};
        CommandLine cli(3, argv);
        EXPECT_THROW(cli.getInt("big", 0), std::runtime_error);
        EXPECT_THROW(cli.getDouble("huge", 0.0), std::runtime_error);
    }
    {
        // The error names the flag, so the user can find the typo.
        const char *argv[] = {"prog", "--branches=10x"};
        CommandLine cli(2, argv);
        try {
            cli.getInt("branches", 0);
            FAIL() << "expected std::runtime_error";
        } catch (const std::runtime_error &e) {
            EXPECT_NE(std::string(e.what()).find("--branches"),
                      std::string::npos);
            EXPECT_NE(std::string(e.what()).find("10x"), std::string::npos);
        }
    }
}

TEST(CommandLine, GetCountRejectsNegativesButKeepsDefaults)
{
    // A negative count must throw, not wrap to 1.8e19 in a size_t cast
    // ("--branches -5" would otherwise try to run ~2^64 branches).
    const char *argv[] = {"prog", "--branches", "-5", "--window", "64"};
    CommandLine cli(5, argv);
    EXPECT_THROW(cli.getCount("branches", 1000), std::runtime_error);
    EXPECT_EQ(cli.getCount("window", 1), 64u);
    EXPECT_EQ(cli.getCount("absent", 42), 42u);
}

TEST(CommandLine, NegativeNumberLookaheadIsAValue)
{
    // "--bias -0.3" space form: the '-0.3' must be consumed as the value,
    // not mistaken for the next flag (which silently dropped it before).
    const char *argv[] = {"prog", "--bias", "-0.3", "--shift", "-12",
                          "--frac", "-.5", "--verbose"};
    CommandLine cli(8, argv);
    EXPECT_DOUBLE_EQ(cli.getDouble("bias", 0.0), -0.3);
    EXPECT_EQ(cli.getInt("shift", 0), -12);
    EXPECT_DOUBLE_EQ(cli.getDouble("frac", 0.0), -0.5);
    EXPECT_TRUE(cli.getBool("verbose"));
    EXPECT_TRUE(cli.positionals().empty());
}

TEST(CommandLine, FlagLookaheadIsNotAValue)
{
    // A following flag (or bare "-") must not be swallowed as a value.
    const char *argv[] = {"prog", "--csv", "--jobs", "4", "--in", "-"};
    CommandLine cli(6, argv);
    EXPECT_TRUE(cli.getBool("csv"));
    EXPECT_EQ(cli.getJobs(1), 4u);
    EXPECT_EQ(cli.getString("in", "absent"), "");
    ASSERT_EQ(cli.positionals().size(), 1u);
    EXPECT_EQ(cli.positionals()[0], "-");
}

TEST(CommandLine, DoubleDashEndsFlagParsing)
{
    const char *argv[] = {"prog", "--jobs", "2", "--", "--not-a-flag",
                          "positional"};
    CommandLine cli(6, argv);
    EXPECT_EQ(cli.getJobs(1), 2u);
    EXPECT_FALSE(cli.has("not-a-flag"));
    ASSERT_EQ(cli.positionals().size(), 2u);
    EXPECT_EQ(cli.positionals()[0], "--not-a-flag");
    EXPECT_EQ(cli.positionals()[1], "positional");
}

TEST(CommandLine, BareDoubleDashAloneYieldsNoPositionals)
{
    const char *argv[] = {"prog", "--"};
    CommandLine cli(2, argv);
    EXPECT_TRUE(cli.positionals().empty());
}

TEST(CommandLine, GetJobsParsesCountAutoAndZero)
{
    {
        const char *argv[] = {"prog", "--jobs=6"};
        EXPECT_EQ(CommandLine(2, argv).getJobs(1), 6u);
    }
    {
        const char *argv[] = {"prog", "--jobs=auto"};
        EXPECT_EQ(CommandLine(2, argv).getJobs(1),
                  ThreadPool::hardwareThreads());
    }
    {
        const char *argv[] = {"prog", "--jobs=0"};
        EXPECT_EQ(CommandLine(2, argv).getJobs(1),
                  ThreadPool::hardwareThreads());
    }
    {
        const char *argv[] = {"prog"};
        EXPECT_EQ(CommandLine(1, argv).getJobs(3), 3u);
    }
}

TEST(CommandLine, GetJobsRejectsGarbageAndClampsHuge)
{
    {
        // strtoul would wrap "-1" to ULONG_MAX; must fall back instead.
        const char *argv[] = {"prog", "--jobs=-1"};
        EXPECT_EQ(CommandLine(2, argv).getJobs(1), 1u);
    }
    {
        const char *argv[] = {"prog", "--jobs=2x"};
        EXPECT_EQ(CommandLine(2, argv).getJobs(5), 5u);
    }
    {
        const char *argv[] = {"prog", "--jobs=999999999999"};
        EXPECT_EQ(CommandLine(2, argv).getJobs(1),
                  static_cast<unsigned>(ThreadPool::maxJobs));
    }
}

// ---------------------------------------------------------------------------
// StorageAccount
// ---------------------------------------------------------------------------

TEST(Storage, TotalsAndBytes)
{
    StorageAccount acct;
    acct.add("a", 10);
    acct.add("b", 6);
    EXPECT_EQ(acct.totalBits(), 16u);
    EXPECT_EQ(acct.totalBytes(), 2u);
    acct.add("c", 1);
    EXPECT_EQ(acct.totalBytes(), 3u); // rounds up
}

TEST(Storage, MergePrefixes)
{
    StorageAccount child;
    child.add("table", 100);
    StorageAccount parent;
    parent.merge("sub", child);
    ASSERT_EQ(parent.items().size(), 1u);
    EXPECT_EQ(parent.items()[0].name, "sub/table");
    EXPECT_EQ(parent.totalBits(), 100u);
}

TEST(Storage, KbitsConversion)
{
    StorageAccount acct;
    acct.add("x", 2048);
    EXPECT_DOUBLE_EQ(acct.totalKbits(), 2.0);
}
