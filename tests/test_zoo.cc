/**
 * @file
 * Tests for the predictor zoo: every spec constructs, runs, reports
 * storage in the paper's budget ranges, and rejects nonsense.
 */

#include <gtest/gtest.h>

#include "src/predictors/zoo.hh"
#include "src/sim/simulator.hh"
#include "src/workloads/suite.hh"

using namespace imli;

class ZooSpecs : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ZooSpecs, ConstructsAndRuns)
{
    PredictorPtr pred = makePredictor(GetParam());
    ASSERT_NE(pred, nullptr);
    EXPECT_FALSE(pred->name().empty());
    EXPECT_GT(pred->storage().totalBits(), 0u);

    const Trace t = generateTrace(findBenchmark("WS03"), 4000);
    const SimResult r = simulate(*pred, t);
    EXPECT_GT(r.conditionals, 0u);
    EXPECT_GT(r.accuracy(), 0.5) << "any real predictor beats a coin here";
}

INSTANTIATE_TEST_SUITE_P(AllSpecs, ZooSpecs,
                         ::testing::ValuesIn(knownSpecs()));

TEST(Zoo, UnknownSpecsThrow)
{
    EXPECT_THROW(makePredictor(""), std::invalid_argument);
    EXPECT_THROW(makePredictor("alpha21264"), std::invalid_argument);
    EXPECT_THROW(makePredictor("tage-gsc+bogus"), std::invalid_argument);
    EXPECT_THROW(makePredictor("bimodal+i"), std::invalid_argument);
}

TEST(Zoo, NamesReflectAddons)
{
    EXPECT_EQ(makePredictor("tage-gsc")->name(), "TAGE-GSC");
    EXPECT_EQ(makePredictor("tage-gsc+i")->name(), "TAGE-GSC+I");
    EXPECT_EQ(makePredictor("tage-gsc+sic")->name(), "TAGE-GSC+SIC");
    EXPECT_EQ(makePredictor("tage-gsc+i+l")->name(), "TAGE-GSC+I+L");
    EXPECT_EQ(makePredictor("gehl+wh")->name(), "GEHL+WH");
    EXPECT_EQ(makePredictor("gehl+loop")->name(), "GEHL+LOOP");
}

// ---------------------------------------------------------------------------
// Storage budgets: the paper's Table 1 / Table 2 size columns.
// ---------------------------------------------------------------------------

TEST(Zoo, TageGscBudget)
{
    // Paper: 228 Kbits.  Our realisation lands in the same region.
    const double kbits = makePredictor("tage-gsc")->storage().totalKbits();
    EXPECT_GT(kbits, 205.0);
    EXPECT_LT(kbits, 240.0);
}

TEST(Zoo, ImliAddsAboutFiveKbits)
{
    // Paper Table 1: 228 -> 234 Kbits (+708 bytes = +5.5 Kbits).
    const double base = makePredictor("tage-gsc")->storage().totalKbits();
    const double imli =
        makePredictor("tage-gsc+i")->storage().totalKbits();
    EXPECT_NEAR(imli - base, 5.53, 0.3);
}

TEST(Zoo, GehlBudgetMatchesPaper)
{
    // Paper: 204 Kbits for the 17-table GEHL.
    const double kbits = makePredictor("gehl")->storage().totalKbits();
    EXPECT_GT(kbits, 200.0);
    EXPECT_LT(kbits, 210.0);
}

TEST(Zoo, LocalAddonCostsTensOfKbits)
{
    const double base = makePredictor("gehl")->storage().totalKbits();
    const double local = makePredictor("gehl+l")->storage().totalKbits();
    // Paper Table 2: 204 -> 256 Kbits.
    EXPECT_GT(local - base, 30.0);
    EXPECT_LT(local - base, 70.0);
}

TEST(Zoo, WormholeCostsAboutFourteenHundredBytes)
{
    const auto base = makePredictor("tage-gsc")->storage().totalBytes();
    const auto wh = makePredictor("tage-gsc+wh")->storage().totalBytes();
    const auto delta = wh - base;
    // Paper Section 3.3: 1413 bytes (the loop predictor rides along as
    // the trip-count provider).
    EXPECT_GT(delta, 1200u);
    EXPECT_LT(delta, 1800u);
}

TEST(Zoo, ImliCheaperThanLocal)
{
    // The paper's cost argument in one assertion.
    const auto base = makePredictor("tage-gsc")->storage().totalBits();
    const auto imli = makePredictor("tage-gsc+i")->storage().totalBits();
    const auto local = makePredictor("tage-gsc+l")->storage().totalBits();
    EXPECT_LT(imli - base, (local - base) / 3);
}

TEST(Zoo, DeterministicAcrossInstances)
{
    const Trace t = generateTrace(findBenchmark("SPEC2K6-12"), 20000);
    PredictorPtr a = makePredictor("tage-gsc+i");
    PredictorPtr b = makePredictor("tage-gsc+i");
    const SimResult ra = simulate(*a, t);
    const SimResult rb = simulate(*b, t);
    EXPECT_EQ(ra.mispredictions, rb.mispredictions);
}
