/**
 * @file
 * Pinned storage-ledger budgets for every spec in the zoo.
 *
 * The paper's whole argument is accuracy per bit, so the exact ledger
 * totals are part of the reproduction's contract: a geometry refactor
 * that silently changes a table size would invalidate every Section 4.4
 * comparison.  These tests pin (a) the paper's headline budgets — base
 * TAGE-GSC = 228 Kbits, IMLI-SIC table = 384 bytes, IMLI-OH table =
 * 192 bytes — and (b) the exact realised bit total of every
 * knownSpecs() entry, so drift fails loudly and intentional geometry
 * changes must update the numbers here in the same commit.
 */

#include <gtest/gtest.h>

#include <map>

#include "src/core/imli_components.hh"
#include "src/core/imli_oh.hh"
#include "src/core/imli_sic.hh"
#include "src/predictors/zoo.hh"

using namespace imli;

// ---------------------------------------------------------------------------
// Paper headline budgets (Section 4.4 / Tables 1-2).
// ---------------------------------------------------------------------------

TEST(StorageBudgets, PaperBaseTageGscIsAbout228Kbits)
{
    // Paper: 228 Kbits for the base TAGE-GSC.  Our realisation must stay
    // in the same region (it differs slightly in tag/bimodal details).
    const double kbits = makePredictor("tage-gsc")->storage().totalKbits();
    EXPECT_GT(kbits, 205.0);
    EXPECT_LT(kbits, 240.0);
}

TEST(StorageBudgets, PaperImliSicTableIs384Bytes)
{
    // Paper Section 4.4: the 512-entry 6-bit IMLI-SIC table is 384 bytes.
    StorageAccount acct;
    ImliSic sic; // paper-default geometry
    sic.account(acct);
    EXPECT_EQ(acct.totalBits(), 512u * 6u);
    EXPECT_EQ(acct.totalBytes(), 384u);
}

TEST(StorageBudgets, PaperImliOhTableIs192Bytes)
{
    // Paper Section 4.4: the 256-entry 6-bit IMLI-OH table is 192 bytes.
    StorageAccount acct;
    ImliOh oh; // paper-default geometry
    oh.account(acct);
    EXPECT_EQ(acct.totalBits(), 256u * 6u);
    EXPECT_EQ(acct.totalBytes(), 192u);
}

TEST(StorageBudgets, PaperImliComponentsTotal708Bytes)
{
    // Paper Section 4.4: 384 B SIC + 192 B OH + 128 B outer history +
    // counter + PIPE = 708 bytes.
    ImliComponents comps;
    StorageAccount acct;
    comps.accountAll(acct);
    EXPECT_EQ(acct.totalBytes(), 708u);
}

// ---------------------------------------------------------------------------
// Exact per-spec pins over Predictor::storageBits().
// ---------------------------------------------------------------------------

namespace
{

/** The realised ledger total of every spec, pinned bit-exact. */
const std::map<std::string, std::uint64_t> &
expectedBits()
{
    static const std::map<std::string, std::uint64_t> expected = {
        {"bimodal", 16384ull},
        {"gshare", 32782ull},
        // 16K-bit bimodal base + ITL (624-bit tracker + 4 x 64 x 25-bit
        // tagged entries + 64-bit exit history).
        {"itl", 23472ull},
        {"tage-gsc", 237369ull},
        {"tage-gsc+sic", 240451ull},
        {"tage-gsc+oh", 239955ull},
        {"tage-gsc+i", 243027ull},
        {"tage-gsc+l", 260521ull},
        {"tage-gsc+i+l", 266179ull},
        {"tage-gsc+loop", 237993ull},
        {"tage-gsc+itl", 244457ull},
        {"tage-gsc+sic+itl", 247539ull},
        {"tage-gsc+wh", 249466ull},
        {"tage-gsc+sic+wh", 252548ull},
        {"tage-gsc+i+imligsc", 243027ull},
        {"tage-gsc+sic+omli", 246615ull},
        {"tage-gsc+i+omli", 249191ull},
        {"gehl", 208911ull},
        {"gehl+sic", 211993ull},
        {"gehl+oh", 211497ull},
        {"gehl+i", 214569ull},
        {"gehl+l", 265455ull},
        {"gehl+i+l", 271113ull},
        {"gehl+loop", 210159ull},
        {"gehl+itl", 215999ull},
        {"gehl+wh", 221632ull},
        {"gehl+sic+wh", 224714ull},
        {"gehl+sic+omli", 218157ull},
        // Meta-chooser hosts: the policy table plus the sum of the sub
        // ledgers.  Tournament = 4096 entries x N x 2-bit counters; UCB
        // = 4096 x N x 2 x 8-bit pull/reward counters; fusion = 4096 x
        // (N+1) x 8-bit weights.
        {"meta(gshare,bimodal)", 65550ull},
        {"meta(tage-gsc,gehl,gshare)", 503638ull},
        {"meta(tage-gsc,gehl,gshare)@meta.policy=ucb", 675670ull},
        {"meta(tage-gsc,gehl,gshare)@meta.policy=fusion", 610134ull},
    };
    return expected;
}

} // anonymous namespace

TEST(StorageBudgets, EveryKnownSpecIsPinned)
{
    // A new spec must come with its pinned budget.
    for (const std::string &spec : knownSpecs())
        EXPECT_EQ(expectedBits().count(spec), 1u)
            << "no pinned storage budget for " << spec;
}

class SpecBudget : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SpecBudget, ExactBitTotal)
{
    const std::string &spec = GetParam();
    const auto it = expectedBits().find(spec);
    ASSERT_NE(it, expectedBits().end());
    EXPECT_EQ(makePredictor(spec)->storageBits(), it->second)
        << spec << ": ledger drifted from its pinned budget; if the "
        << "geometry change is intentional, update this table";
}

INSTANTIATE_TEST_SUITE_P(AllSpecs, SpecBudget,
                         ::testing::ValuesIn(knownSpecs()));

TEST(StorageBudgets, StorageBitsMatchesLedgerTotal)
{
    const PredictorPtr pred = makePredictor("tage-gsc+i");
    EXPECT_EQ(pred->storageBits(), pred->storage().totalBits());
}

TEST(StorageBudgets, OverridesMoveTheLedger)
{
    // The design-space grammar must actually reach the hardware tables:
    // doubling the SIC adds exactly 512 * 6 bits on the +sic host.
    const std::uint64_t base =
        makePredictor("tage-gsc+sic")->storageBits();
    const std::uint64_t grown =
        makePredictor("tage-gsc+sic@sic.logsize=10")->storageBits();
    EXPECT_EQ(grown - base, 512u * 6u);
}

TEST(StorageBudgets, MetaOverridesMoveTheLedger)
{
    // meta.* keys reach the chooser tables the same way: one more
    // logsize bit doubles the 4096 x 2-arm x 2-bit tournament table.
    const std::uint64_t base =
        makePredictor("meta(gshare,bimodal)")->storageBits();
    const std::uint64_t grown =
        makePredictor("meta(gshare,bimodal)@meta.logsize=13")
            ->storageBits();
    EXPECT_EQ(grown - base, 4096u * 2u * 2u);
}

TEST(StorageBudgets, MetaLedgerIsPolicyTablePlusSubLedgers)
{
    // The chooser adds exactly its policy table on top of the sub
    // predictors' own pinned ledgers — no hidden state.
    const std::uint64_t subs = makePredictor("tage-gsc")->storageBits() +
                               makePredictor("gehl")->storageBits() +
                               makePredictor("gshare")->storageBits();
    EXPECT_EQ(
        makePredictor("meta(tage-gsc,gehl,gshare)")->storageBits() - subs,
        4096u * 3u * 2u);
    EXPECT_EQ(makePredictor("meta(tage-gsc,gehl,gshare)@meta.policy=ucb")
                      ->storageBits() -
                  subs,
              4096u * 3u * 2u * 8u);
    EXPECT_EQ(
        makePredictor("meta(tage-gsc,gehl,gshare)@meta.policy=fusion")
                ->storageBits() -
            subs,
        4096u * 4u * 8u);
}
