/**
 * @file
 * Tests for the OMLI extension (outer-loop iteration counter + cross
 * table; DESIGN.md section 8 — beyond the paper, in the spirit of its
 * Section 6 outlook).
 */

#include <gtest/gtest.h>

#include "src/core/imli_components.hh"
#include "src/core/omli.hh"
#include "src/predictors/zoo.hh"
#include "src/sim/simulator.hh"
#include "src/util/rng.hh"
#include "src/workloads/suite.hh"
#include "src/workloads/two_dim_loop.hh"

using namespace imli;

namespace
{

/** Drive a two-level nest through the counter pair; checks alignment. */
struct NestDriver
{
    ImliCounter imli{10};
    OmliCounter omli{8};

    void
    branch(std::uint64_t pc, std::uint64_t target, bool taken)
    {
        const unsigned before = imli.value();
        imli.onConditionalBranch(pc, target, taken);
        omli.onConditionalBranch(pc, target, taken, before);
    }

    /** One inner-loop run: trip-1 taken + one not-taken backedge. */
    void
    innerRun(unsigned trip)
    {
        for (unsigned m = 0; m + 1 < trip; ++m)
            branch(0x200, 0x100, true);
        branch(0x200, 0x100, false);
    }
};

} // anonymous namespace

TEST(OmliCounter, CountsOuterIterations)
{
    NestDriver d;
    for (unsigned n = 0; n < 5; ++n) {
        d.innerRun(8);
        EXPECT_EQ(d.omli.value(), n + 1) << "after inner run " << n;
        // Outer backedge taken: nest continues.
        d.branch(0x300, 0x80, true);
    }
}

TEST(OmliCounter, OuterExitResets)
{
    // A complete nest: three outer iterations, then the outer backedge
    // falls through right after the last inner exit (the real emission
    // order: inner exit -> outer backedge).
    NestDriver d;
    for (unsigned n = 0; n < 3; ++n) {
        d.innerRun(8);
        d.branch(0x300, 0x80, n + 1 < 3);
        if (n + 1 < 3)
            EXPECT_GT(d.omli.value(), 0u) << "outer iteration " << n;
    }
    // The outer exit arrives with the inner counter already at zero:
    // the outer phase is over.
    EXPECT_EQ(d.omli.value(), 0u);
}

TEST(OmliCounter, SurvivesAcrossOuterBackedges)
{
    // OMLI must keep counting across outer iterations (the whole point);
    // the taken outer backedge must not disturb it.
    NestDriver d;
    for (unsigned n = 0; n < 6; ++n) {
        d.innerRun(5);
        EXPECT_EQ(d.omli.value(), n + 1);
        d.branch(0x300, 0x80, true);
        EXPECT_EQ(d.omli.value(), n + 1) << "outer backedge disturbed it";
    }
}

TEST(OmliCounter, ForwardBranchesIgnored)
{
    NestDriver d;
    d.innerRun(4);
    const unsigned before = d.omli.value();
    d.branch(0x100, 0x200, true);  // forward taken
    d.branch(0x100, 0x200, false); // forward not taken
    EXPECT_EQ(d.omli.value(), before);
}

TEST(OmliCounter, SaturatesAndCheckpoints)
{
    OmliCounter c(3); // max 7
    for (int i = 0; i < 20; ++i) {
        c.onConditionalBranch(0x200, 0x100, true, 0);
        c.onConditionalBranch(0x200, 0x100, false, 1);
    }
    EXPECT_EQ(c.value(), 7u);
    const auto cp = c.save();
    c.reset();
    EXPECT_EQ(c.value(), 0u);
    c.restore(cp);
    EXPECT_EQ(c.value(), 7u);
}

TEST(OmliSic, LearnsOuterPhaseDependentPattern)
{
    // Out[N][M] = base[M] XOR (N & 1): invisible to a phase-blind
    // (PC, M) table, separable for the (PC, M, N mod 2) cross table.
    OmliSic cross;
    ImliSic plain;
    Xoroshiro128 rng(3);
    bool base[12];
    for (auto &b : base)
        b = rng.bernoulli(0.5);

    ScContext ctx;
    ctx.pc = 0x4242;
    for (unsigned round = 0; round < 40; ++round) {
        for (unsigned n = 0; n < 8; ++n) {
            for (unsigned m = 1; m <= 12; ++m) {
                ctx.imliCount = m;
                ctx.omliCount = n;
                const bool out = base[m - 1] ^ ((n & 1) != 0);
                cross.update(ctx, out);
                plain.update(ctx, out);
            }
        }
    }
    unsigned cross_right = 0, plain_confident = 0;
    for (unsigned n = 0; n < 8; ++n) {
        for (unsigned m = 1; m <= 12; ++m) {
            ctx.imliCount = m;
            ctx.omliCount = n;
            const bool out = base[m - 1] ^ ((n & 1) != 0);
            if ((cross.vote(ctx) >= 0) == out)
                ++cross_right;
            if (std::abs(plain.vote(ctx)) > 3 * 9)
                ++plain_confident;
        }
    }
    EXPECT_GT(cross_right, 90u) << "of 96: the cross table separates";
    EXPECT_LT(plain_confident, 20u)
        << "the phase-blind table sees alternating outcomes and stays "
           "weak";
}

TEST(OmliSic, AbstainsOutsideLoops)
{
    OmliSic cross;
    ScContext ctx;
    ctx.pc = 0x4242;
    ctx.imliCount = 0;
    ctx.omliCount = 5;
    for (int i = 0; i < 50; ++i)
        cross.update(ctx, true);
    EXPECT_EQ(cross.vote(ctx), 0);
}

TEST(OmliComponents, CheckpointCoversOmli)
{
    ImliComponents::Config cfg;
    cfg.enableOmli = true;
    ImliComponents imli(cfg);
    // 10 (IMLI) + 16 (PIPE) + 8 + 12 (OMLI counter + inner tag).
    EXPECT_EQ(imli.checkpointBits(), 46u);

    for (int i = 0; i < 4; ++i) {
        imli.onResolved(0x200, 0x100, true);
        imli.onResolved(0x200, 0x100, false);
    }
    const auto cp = imli.save();
    const unsigned omli_before = imli.omliCounter().value();
    imli.onResolved(0x300, 0x80, false); // outer exit: resets OMLI
    EXPECT_EQ(imli.omliCounter().value(), 0u);
    imli.restore(cp);
    EXPECT_EQ(imli.omliCounter().value(), omli_before);
}

TEST(OmliZoo, SpecsConstructAndName)
{
    EXPECT_EQ(makePredictor("tage-gsc+sic+omli")->name(),
              "TAGE-GSC+SIC+OMLI");
    EXPECT_EQ(makePredictor("gehl+sic+omli")->name(), "GEHL+SIC+OMLI");
    // The extension costs one 1K x 6-bit table + a 20-bit counter pair.
    const auto with = makePredictor("tage-gsc+sic+omli")->storage();
    const auto without = makePredictor("tage-gsc+sic")->storage();
    EXPECT_NEAR(static_cast<double>(with.totalBits() - without.totalBits()),
                1024 * 6 + 20, 16);
}

TEST(OmliZoo, HelpsTheInvertedShowcase)
{
    // MM-4's inversion is an outer-phase pattern: OMLI-SIC should capture
    // a good share of what IMLI-OH captures there, without the
    // outer-history storage.
    const Trace t = generateTrace(findBenchmark("MM-4"), 120000);
    PredictorPtr sic = makePredictor("tage-gsc+sic");
    PredictorPtr omli = makePredictor("tage-gsc+sic+omli");
    const double sic_mpki = simulate(*sic, t).mpki();
    const double omli_mpki = simulate(*omli, t).mpki();
    EXPECT_LT(omli_mpki, sic_mpki - 0.1);
}
