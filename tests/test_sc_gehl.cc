/**
 * @file
 * Tests for the neural machinery: VotingEngine threshold adaptation, the
 * bias / global GEHL components, the statistical corrector arbitration and
 * the GEHL host predictor.
 */

#include <gtest/gtest.h>

#include "src/history/history_manager.hh"
#include "src/predictors/gehl.hh"
#include "src/predictors/statistical_corrector.hh"
#include "src/util/rng.hh"

using namespace imli;

namespace
{

/** A controllable test component with a fixed vote. */
class FixedComponent : public ScComponent
{
  public:
    explicit FixedComponent(int v) : voteValue(v) {}

    int vote(const ScContext &) const override { return voteValue; }
    void update(const ScContext &, bool) override { ++updates; }
    void onResolved(const ScContext &, bool) override { ++resolves; }
    void
    account(StorageAccount &acct) const override
    {
        acct.add("fixed", 1);
    }
    std::string name() const override { return "fixed"; }

    int voteValue;
    int updates = 0;
    int resolves = 0;
};

} // anonymous namespace

// ---------------------------------------------------------------------------
// VotingEngine
// ---------------------------------------------------------------------------

TEST(VotingEngine, SumsComponents)
{
    VotingEngine engine;
    FixedComponent a(5), b(-2);
    engine.addComponent(&a);
    engine.addComponent(&b);
    EXPECT_EQ(engine.sum(ScContext{}), 3);
}

TEST(VotingEngine, TrainsOnMisprediction)
{
    VotingEngine engine;
    FixedComponent a(1);
    engine.addComponent(&a);
    EXPECT_TRUE(engine.onOutcome(/*mispredicted=*/true, /*abs_sum=*/1000));
}

TEST(VotingEngine, TrainsOnLowConfidence)
{
    VotingEngine::Config cfg;
    cfg.thetaInit = 10;
    VotingEngine engine(cfg);
    EXPECT_TRUE(engine.onOutcome(false, 5));   // |sum| < theta
    EXPECT_FALSE(engine.onOutcome(false, 50)); // confident and correct
}

TEST(VotingEngine, ThetaRisesUnderMispredictions)
{
    VotingEngine::Config cfg;
    cfg.thetaInit = 8;
    cfg.tcBits = 5;
    VotingEngine engine(cfg);
    for (int i = 0; i < 200; ++i)
        engine.onOutcome(true, 100);
    EXPECT_GT(engine.theta(), 8);
}

TEST(VotingEngine, ThetaFallsWhenOverCautious)
{
    VotingEngine::Config cfg;
    cfg.thetaInit = 50;
    cfg.tcBits = 5;
    VotingEngine engine(cfg);
    for (int i = 0; i < 400; ++i)
        engine.onOutcome(false, 20); // correct but below theta
    EXPECT_LT(engine.theta(), 50);
}

TEST(VotingEngine, ThetaRespectsBounds)
{
    VotingEngine::Config cfg;
    cfg.thetaInit = 2;
    cfg.thetaMin = 1;
    cfg.thetaMax = 4;
    cfg.tcBits = 3;
    VotingEngine engine(cfg);
    for (int i = 0; i < 500; ++i)
        engine.onOutcome(true, 100);
    EXPECT_LE(engine.theta(), 4);
    for (int i = 0; i < 500; ++i)
        engine.onOutcome(false, 0);
    EXPECT_GE(engine.theta(), 1);
}

TEST(VotingEngine, TrainAndResolveFanOut)
{
    VotingEngine engine;
    FixedComponent a(1), b(2);
    engine.addComponent(&a);
    engine.addComponent(&b);
    engine.trainAll(ScContext{}, true);
    engine.resolveAll(ScContext{}, true);
    EXPECT_EQ(a.updates, 1);
    EXPECT_EQ(b.updates, 1);
    EXPECT_EQ(a.resolves, 1);
    EXPECT_EQ(b.resolves, 1);
}

// ---------------------------------------------------------------------------
// BiasComponent
// ---------------------------------------------------------------------------

TEST(BiasComponent, LearnsCorrectionPerPrediction)
{
    BiasComponent bias;
    ScContext ctx;
    ctx.pc = 0x44;
    ctx.mainPred = true;
    // Whenever TAGE says taken for this branch, the outcome is not taken.
    for (int i = 0; i < 100; ++i)
        bias.update(ctx, false);
    EXPECT_LT(bias.vote(ctx), 0);
    // The opposite context keeps its own counters.
    ctx.mainPred = false;
    for (int i = 0; i < 100; ++i)
        bias.update(ctx, true);
    EXPECT_GT(bias.vote(ctx), 0);
}

// ---------------------------------------------------------------------------
// GlobalGehlComponent
// ---------------------------------------------------------------------------

TEST(GlobalGehl, LearnsHistoryContext)
{
    HistoryManager mgr(2048);
    GlobalGehlComponent::Config cfg;
    cfg.numTables = 4;
    cfg.logEntries = 9;
    cfg.maxHistory = 40;
    GlobalGehlComponent comp(cfg, mgr);

    Xoroshiro128 rng(3);
    ScContext ctx;
    ctx.pc = 0x88;
    int correct = 0, counted = 0;
    bool last = false;
    for (int i = 0; i < 6000; ++i) {
        // Outcome = previous random bit pushed to history.
        const bool outcome = last;
        const bool vote_taken = comp.vote(ctx) >= 0;
        comp.update(ctx, outcome);
        mgr.push(outcome, ctx.pc);
        const bool r = rng.bernoulli(0.5);
        mgr.push(r, 0x100);
        last = r;
        if (i >= 4000) {
            ++counted;
            correct += (vote_taken == outcome) ? 1 : 0;
        }
    }
    EXPECT_GT(static_cast<double>(correct) / counted, 0.9);
}

TEST(GlobalGehl, ImliIndexingChangesIndices)
{
    HistoryManager mgr(2048);
    GlobalGehlComponent::Config cfg;
    cfg.numTables = 3;
    cfg.imliIndexTables = 2;
    GlobalGehlComponent comp(cfg, mgr);

    ScContext a;
    a.pc = 0x44;
    a.imliCount = 0;
    ScContext b = a;
    b.imliCount = 9;
    // Train heavily at IMLI count 0 ...
    for (int i = 0; i < 200; ++i)
        comp.update(a, true);
    // ... the vote at a different IMLI count must differ (two of three
    // tables index differently).
    EXPECT_NE(comp.vote(a), comp.vote(b));
}

TEST(GlobalGehl, LengthsIncludeZero)
{
    HistoryManager mgr(2048);
    GlobalGehlComponent::Config cfg;
    cfg.numTables = 5;
    cfg.minHistory = 0;
    cfg.maxHistory = 100;
    GlobalGehlComponent comp(cfg, mgr);
    EXPECT_EQ(comp.historyLengths().front(), 0u);
    EXPECT_EQ(comp.historyLengths().back(), 100u);
}

// ---------------------------------------------------------------------------
// StatisticalCorrector arbitration
// ---------------------------------------------------------------------------

TEST(Corrector, AgreementPassesThrough)
{
    StatisticalCorrector sc;
    FixedComponent comp(10);
    sc.addComponent(&comp);
    ScContext ctx;
    const auto d = sc.decide(ctx, /*tage_pred=*/true, 2);
    EXPECT_TRUE(d.finalPred);
    EXPECT_FALSE(d.reverted);
    EXPECT_EQ(d.band, -1);
}

TEST(Corrector, StrongDisagreementReverts)
{
    StatisticalCorrector::Config cfg;
    cfg.voting.thetaInit = 8;
    StatisticalCorrector sc(cfg);
    FixedComponent comp(-100); // far beyond theta
    sc.addComponent(&comp);
    ScContext ctx;
    const auto d = sc.decide(ctx, true, 2);
    EXPECT_EQ(d.band, 2);
    EXPECT_TRUE(d.reverted);
    EXPECT_FALSE(d.finalPred);
}

TEST(Corrector, WeakDisagreementLearnsToRevert)
{
    StatisticalCorrector::Config cfg;
    cfg.voting.thetaInit = 100;
    StatisticalCorrector sc(cfg);
    FixedComponent comp(-10); // weak band (|sum| < theta/2)
    sc.addComponent(&comp);
    ScContext ctx;
    ctx.pc = 0x44;

    // Initially the chooser (value 0) trusts the corrector.
    auto d = sc.decide(ctx, true, 0);
    EXPECT_EQ(d.band, 0);

    // Make the corrector lose disagreements repeatedly: chooser must learn
    // to stop reverting.
    for (int i = 0; i < 50; ++i) {
        d = sc.decide(ctx, true, 0);
        sc.train(ctx, /*taken=*/true, d); // SC (not-taken) is wrong
    }
    EXPECT_LT(sc.weakChooser(0x44), 0);
    d = sc.decide(ctx, true, 0);
    EXPECT_FALSE(d.reverted);
    EXPECT_TRUE(d.finalPred);
}

TEST(Corrector, ChoosersArePerPc)
{
    StatisticalCorrector::Config cfg;
    cfg.voting.thetaInit = 100;
    StatisticalCorrector sc(cfg);
    FixedComponent comp(-10);
    sc.addComponent(&comp);

    ScContext loser;
    loser.pc = 0x44;
    for (int i = 0; i < 50; ++i) {
        const auto d = sc.decide(loser, true, 0);
        sc.train(loser, true, d);
    }
    // A branch hashing to a different chooser entry is unaffected.
    std::uint64_t other_pc = 0;
    for (std::uint64_t pc = 0x100; pc < 0x10000; pc += 2) {
        if (sc.weakChooser(pc) == 0) {
            other_pc = pc;
            break;
        }
    }
    ASSERT_NE(other_pc, 0u);
    EXPECT_LT(sc.weakChooser(0x44), 0);
    EXPECT_EQ(sc.weakChooser(other_pc), 0);
}

// ---------------------------------------------------------------------------
// GEHL host
// ---------------------------------------------------------------------------

TEST(Gehl, LearnsPatternEndToEnd)
{
    GehlPredictor gehl;
    static const bool pattern[] = {true, false, true, true, false, false};
    int correct = 0;
    for (int i = 0; i < 6000; ++i) {
        const bool taken = pattern[i % 6];
        const bool p = gehl.predict(0x44);
        gehl.update(0x44, taken, 0x4c);
        if (i >= 3000)
            correct += (p == taken) ? 1 : 0;
    }
    EXPECT_GT(correct / 3000.0, 0.95);
}

TEST(Gehl, StorageMatchesPaperBudget)
{
    GehlPredictor gehl;
    // Paper Section 3.2.2: 17 tables x 2K x 6 bits = 204 Kbits.
    const double kbits = gehl.storage().totalKbits();
    EXPECT_GT(kbits, 200.0);
    EXPECT_LT(kbits, 210.0);
}

TEST(Gehl, LoopOverridePredictsLongLoops)
{
    GehlPredictor::Config cfg;
    cfg.enableLoop = true;
    cfg.loopOverride = true;
    GehlPredictor gehl(cfg);
    // Trip count 700 with a noisy body: beyond GEHL's history reach, meat
    // for the loop predictor.
    Xoroshiro128 rng(3);
    unsigned exit_misses = 0, runs = 0;
    for (int run = 0; run < 40; ++run) {
        for (int i = 0; i < 700; ++i) {
            gehl.predict(0x9000);
            gehl.update(0x9000, rng.bernoulli(0.9), 0x9008);
            const bool taken = i + 1 < 700;
            const bool p = gehl.predict(0xa000);
            gehl.update(0xa000, taken, 0x8ff0);
            if (run >= 30 && !taken) {
                ++runs;
                exit_misses += (p != taken) ? 1 : 0;
            }
        }
    }
    ASSERT_GT(runs, 0u);
    EXPECT_EQ(exit_misses, 0u);
}

TEST(Gehl, NameReflectsConfig)
{
    GehlPredictor gehl;
    EXPECT_EQ(gehl.name(), "GEHL");
}
