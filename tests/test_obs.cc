/**
 * @file
 * Tests for the observability layer (src/obs): probe handle no-op
 * safety, scope/prefix bookkeeping, the inertness guarantee (attaching
 * probes must not change predictor state or results), metrics content
 * over a real benchmark, the phase-series recorder, the trace-event
 * writer, the pipeline squash-depth histogram, suite wall-clock
 * plumbing, and the registry's byte-stable JSON export.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/obs/metrics.hh"
#include "src/obs/phase_series.hh"
#include "src/obs/trace_event.hh"
#include "src/predictors/zoo.hh"
#include "src/sim/pipeline_simulator.hh"
#include "src/sim/simulator.hh"
#include "src/sim/suite_runner.hh"
#include "src/workloads/benchmark_spec.hh"
#include "src/workloads/generator_source.hh"
#include "src/workloads/suite.hh"

using namespace imli;
using obs::Histogram;
using obs::MetricsRegistry;
using obs::MetricsScope;
using obs::PhaseRecorder;
using obs::ProbeCounter;
using obs::ProbeHistogram;
using obs::TraceEventWriter;

// ---------------------------------------------------------------------------
// Probe handles and histograms
// ---------------------------------------------------------------------------

TEST(ObsProbe, DetachedProbesAreNoOps)
{
    ProbeCounter counter;
    EXPECT_FALSE(counter.attached());
    counter.hit();     // must not crash
    counter.add(100);  // must not crash

    ProbeHistogram hist;
    EXPECT_FALSE(hist.attached());
    hist.record(42);   // must not crash
}

TEST(ObsProbe, AttachedCounterIncrementsItsSlot)
{
    MetricsScope scope;
    ProbeCounter counter;
    counter.slot = scope.counter("x/hits");
    ASSERT_TRUE(counter.attached());
    counter.hit();
    counter.hit();
    counter.add(3);
    EXPECT_EQ(scope.counterValue("x/hits"), 5u);
}

TEST(ObsHistogram, LinearClampsToLastBucket)
{
    Histogram h(Histogram::Kind::Linear, 4);
    h.record(0);
    h.record(1);
    h.record(3);
    h.record(9);  // overflow -> last bucket
    ASSERT_EQ(h.buckets().size(), 4u);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[1], 1u);
    EXPECT_EQ(h.buckets()[2], 0u);
    EXPECT_EQ(h.buckets()[3], 2u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(ObsHistogram, Log2FoldsGeometrically)
{
    Histogram h(Histogram::Kind::Log2, 5);
    // bucket = min(floor(log2(v + 1)), 4)
    h.record(0);    // log2(1) = 0
    h.record(1);    // log2(2) = 1
    h.record(2);    // log2(3) -> 1
    h.record(3);    // log2(4) = 2
    h.record(6);    // log2(7) -> 2
    h.record(7);    // log2(8) = 3
    h.record(1000); // clamps to 4
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[1], 2u);
    EXPECT_EQ(h.buckets()[2], 2u);
    EXPECT_EQ(h.buckets()[3], 1u);
    EXPECT_EQ(h.buckets()[4], 1u);
}

// ---------------------------------------------------------------------------
// MetricsScope bookkeeping
// ---------------------------------------------------------------------------

TEST(ObsScope, PrefixQualifiesRegistrations)
{
    MetricsScope scope;
    scope.pushPrefix("sub0/");
    std::uint64_t *inner = scope.counter("tage/alloc");
    scope.popPrefix();
    std::uint64_t *outer = scope.counter("tage/alloc");
    ++*inner;
    ++*outer;
    ++*outer;
    EXPECT_EQ(scope.counterValue("sub0/tage/alloc"), 1u);
    EXPECT_EQ(scope.counterValue("tage/alloc"), 2u);
}

TEST(ObsScope, ReRegistrationReturnsTheSameSlot)
{
    MetricsScope scope;
    EXPECT_EQ(scope.counter("a"), scope.counter("a"));
    Histogram *h = scope.histogram("h", Histogram::Kind::Linear, 8);
    EXPECT_EQ(scope.histogram("h", Histogram::Kind::Linear, 8), h);
    // A shape mismatch is an attach-time bug, reported loudly.
    EXPECT_THROW(scope.histogram("h", Histogram::Kind::Log2, 8),
                 std::invalid_argument);
    EXPECT_THROW(scope.histogram("h", Histogram::Kind::Linear, 4),
                 std::invalid_argument);
}

TEST(ObsScope, PopPrefixOnEmptyStackThrows)
{
    MetricsScope scope;
    EXPECT_THROW(scope.popPrefix(), std::logic_error);
}

TEST(ObsScope, CounterValueOfUnknownNameIsZero)
{
    MetricsScope scope;
    EXPECT_EQ(scope.counterValue("never/registered"), 0u);
}

// ---------------------------------------------------------------------------
// Inertness: attaching probes must not perturb the simulation
// ---------------------------------------------------------------------------

TEST(ObsInertness, StateDigestAndResultsUnchangedByProbes)
{
    // Representative slice of the zoo: TAGE+SC+IMLI (the full composite
    // path), loop + ittage-loop side predictors, and the meta-chooser
    // (which fans probes out to its subs under prefixes).
    const std::vector<std::string> specs = {
        "tage-gsc+i", "tage-gsc+i+l", "tage-gsc+itl",
        "meta(tage-gsc,gehl,gshare)",
    };
    for (const std::string &spec : specs) {
        PredictorPtr plain = makePredictor(spec);
        PredictorPtr probed = makePredictor(spec);
        MetricsScope scope;
        probed->attachProbes(scope);

        GeneratorBranchSource s1(findBenchmark("MM-4"), 15000);
        GeneratorBranchSource s2(findBenchmark("MM-4"), 15000);
        const SimResult a = simulate(*plain, s1);
        const SimResult b = simulate(*probed, s2);

        EXPECT_EQ(a.conditionals, b.conditionals) << spec;
        EXPECT_EQ(a.mispredictions, b.mispredictions) << spec;
        EXPECT_EQ(a.instructions, b.instructions) << spec;
        EXPECT_EQ(plain->stateDigest(), probed->stateDigest()) << spec;
        // The probed run did actually observe something (the composite
        // and meta paths register counters), so the equality above is
        // not vacuous.
        EXPECT_FALSE(scope.empty()) << spec;
    }
}

TEST(ObsInertness, SuiteResultsIdenticalMetricsOnVsOff)
{
    const std::vector<BenchmarkSpec> benchmarks =
        selectBenchmarks(fullSuite(), {"MM-1", "WS03"});
    const std::vector<std::string> configs = {"tage-gsc", "tage-gsc+i"};

    SuiteRunOptions off;
    off.branchesPerTrace = 12000;
    const SuiteResults base = runSuite(benchmarks, configs, off);

    MetricsRegistry registry;
    registry.phaseInterval = 4000;
    SuiteRunOptions on = off;
    on.metrics = &registry;
    const SuiteResults observed = runSuite(benchmarks, configs, on);

    ASSERT_EQ(base.cells.size(), observed.cells.size());
    for (std::size_t i = 0; i < base.cells.size(); ++i) {
        EXPECT_EQ(base.cells[i].mispredictions,
                  observed.cells[i].mispredictions);
        EXPECT_EQ(base.cells[i].conditionals,
                  observed.cells[i].conditionals);
        EXPECT_EQ(base.cells[i].instructions,
                  observed.cells[i].instructions);
        EXPECT_EQ(base.cells[i].mpki, observed.cells[i].mpki);
    }
}

// ---------------------------------------------------------------------------
// Metrics content over a real benchmark
// ---------------------------------------------------------------------------

TEST(ObsContent, TageResolutionPartitionsConditionals)
{
    PredictorPtr predictor = makePredictor("tage-gsc+i");
    MetricsScope scope;
    predictor->attachProbes(scope);
    GeneratorBranchSource source(findBenchmark("MM-1"), 20000);
    const SimResult result = simulate(*predictor, source);

    // Every committed conditional resolves exactly one way: provider,
    // alt, or base.
    const std::uint64_t resolved =
        scope.counterValue("tage/resolved_provider") +
        scope.counterValue("tage/resolved_alt") +
        scope.counterValue("tage/resolved_base");
    EXPECT_EQ(resolved, result.conditionals);
    EXPECT_GT(scope.counterValue("tage/resolved_provider"), 0u);

    // Mispredictions drive allocations; MM-1 at 20k branches always
    // allocates at least once.
    EXPECT_GT(scope.counterValue("tage/alloc_success"), 0u);

    // The SC sees every conditional once: agree + disagree partition.
    const std::uint64_t sc = scope.counterValue("sc/agree") +
                             scope.counterValue("sc/disagree");
    EXPECT_EQ(sc, result.conditionals);
    // Reversals are a subset of disagreements.
    EXPECT_LE(scope.counterValue("sc/reverse"),
              scope.counterValue("sc/disagree"));

    // The IMLI counter histogram saw every conditional too.
    const auto &hists = scope.histograms();
    const auto it = hists.find("imli/count");
    ASSERT_NE(it, hists.end());
    EXPECT_EQ(it->second.total(), result.conditionals);
}

TEST(ObsContent, MetaChooserArmHistogramCoversEveryUpdate)
{
    PredictorPtr predictor = makePredictor("meta(tage-gsc,gehl,gshare)");
    MetricsScope scope;
    predictor->attachProbes(scope);
    GeneratorBranchSource source(findBenchmark("MM-4"), 15000);
    const SimResult result = simulate(*predictor, source);

    const auto it = scope.histograms().find("meta/arm");
    ASSERT_NE(it, scope.histograms().end());
    EXPECT_EQ(it->second.total(), result.conditionals);
    // Three subs: arms 3..7 must stay empty under tournament/ucb.
    for (std::size_t b = 3; b < it->second.buckets().size(); ++b)
        EXPECT_EQ(it->second.buckets()[b], 0u) << "arm " << b;
    // Sub-predictor probes land under their subN/ prefixes.
    EXPECT_GT(scope.counterValue("sub0/tage/resolved_provider") +
                  scope.counterValue("sub0/tage/resolved_base"),
              0u);
}

TEST(ObsContent, LoopAndItlConfidenceProbesFire)
{
    for (const char *spec : {"tage-gsc+i+l", "tage-gsc+itl"}) {
        PredictorPtr predictor = makePredictor(spec);
        MetricsScope scope;
        predictor->attachProbes(scope);
        GeneratorBranchSource source(findBenchmark("MM-4"), 20000);
        simulate(*predictor, source);
        const bool loop = scope.counterValue("loop/conf_up") > 0;
        const bool itl = scope.counterValue("itl/conf_up") > 0;
        EXPECT_TRUE(loop || itl)
            << spec << ": no confidence transitions observed";
    }
}

// ---------------------------------------------------------------------------
// Phase-series recorder
// ---------------------------------------------------------------------------

TEST(ObsPhase, WindowsCloseAtTheConfiguredInterval)
{
    PhaseRecorder rec(1000, nullptr);
    for (int i = 0; i < 2500; ++i)
        rec.onRecord(true, i % 10 == 0, 4);
    rec.finish();

    ASSERT_EQ(rec.windows().size(), 3u);
    EXPECT_EQ(rec.windows()[0].branches, 1000u);
    EXPECT_EQ(rec.windows()[1].branches, 1000u);
    EXPECT_EQ(rec.windows()[2].branches, 500u);
    EXPECT_EQ(rec.windows()[0].mispredictions, 100u);
    EXPECT_EQ(rec.windows()[0].instructions, 4000u);
    EXPECT_DOUBLE_EQ(rec.windows()[0].accuracy(), 0.9);
}

TEST(ObsPhase, NonConditionalRecordsCountInstructionsOnly)
{
    PhaseRecorder rec(10, nullptr);
    rec.onRecord(false, false, 7);  // a jump: instructions, no branch
    for (int i = 0; i < 10; ++i)
        rec.onRecord(true, false, 1);
    rec.finish();
    ASSERT_EQ(rec.windows().size(), 1u);
    EXPECT_EQ(rec.windows()[0].branches, 10u);
    EXPECT_EQ(rec.windows()[0].instructions, 17u);
}

TEST(ObsPhase, CounterDeltasArePerWindow)
{
    MetricsScope scope;
    std::uint64_t *slot = scope.counter("p/hits");
    PhaseRecorder rec(5, &scope);
    for (int w = 0; w < 2; ++w)
        for (int i = 0; i < 5; ++i) {
            *slot += (w + 1);  // window 0: +1 each, window 1: +2 each
            rec.onRecord(true, false, 1);
        }
    rec.finish();
    ASSERT_EQ(rec.windows().size(), 2u);
    EXPECT_EQ(rec.windows()[0].counterDeltas.at("p/hits"), 5u);
    EXPECT_EQ(rec.windows()[1].counterDeltas.at("p/hits"), 10u);
}

TEST(ObsPhase, CsvHeaderAndRowShape)
{
    MetricsScope scope;
    std::uint64_t *slot = scope.counter("x");
    PhaseRecorder rec(2, &scope);
    for (int i = 0; i < 4; ++i) {
        ++*slot;
        rec.onRecord(true, i == 0, 10);
    }
    rec.finish();
    std::ostringstream os;
    rec.writeCsv(os);
    const std::string csv = os.str();
    EXPECT_NE(csv.find("window,branches,mispredictions,instructions,"
                       "mpki,accuracy,delta:x"),
              std::string::npos)
        << csv;
    // Two windows -> header + 2 rows = 3 newline-terminated lines.
    std::size_t lines = 0;
    for (char c : csv)
        lines += c == '\n';
    EXPECT_EQ(lines, 3u);
}

// ---------------------------------------------------------------------------
// Trace-event writer
// ---------------------------------------------------------------------------

TEST(ObsTrace, EmitsWellFormedCompleteEvents)
{
    std::ostringstream os;
    {
        TraceEventWriter writer(os);
        writer.emit("fetch", "\"pc\": 64");
        writer.emit("commit", "\"pc\": 64, \"taken\": true");
        EXPECT_EQ(writer.events(), 2u);
        writer.close();
        writer.close();  // idempotent
    }
    const std::string json = os.str();
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(json.substr(json.size() - 2), "]\n");
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\": 0"), std::string::npos);
    EXPECT_NE(json.find("\"ts\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"fetch\""), std::string::npos);
    EXPECT_NE(json.find("\"args\": {\"pc\": 64, \"taken\": true}"),
              std::string::npos);
}

TEST(ObsTrace, PipelineEmitsDeterministicEventStream)
{
    const auto run = [](std::ostream &os) {
        TraceEventWriter writer(os);
        PredictorPtr predictor = makePredictor("tage-gsc+i");
        SimOptions opts;
        opts.pipeline = true;
        opts.updateDelay = 8;
        opts.traceEvents = &writer;
        GeneratorBranchSource source(findBenchmark("MM-1"), 5000);
        simulate(*predictor, source, opts);
        writer.close();
    };
    std::ostringstream a, b;
    run(a);
    run(b);
    EXPECT_FALSE(a.str().empty());
    EXPECT_EQ(a.str(), b.str());  // virtual timestamps: byte-identical
    for (const char *name : {"\"fetch\"", "\"predict\"", "\"commit\""})
        EXPECT_NE(a.str().find(name), std::string::npos) << name;
}

// ---------------------------------------------------------------------------
// Pipeline squash-depth histogram
// ---------------------------------------------------------------------------

TEST(ObsPipeline, SquashDepthHistogramTotalEqualsSquashes)
{
    MetricsScope scope;
    PredictorPtr predictor = makePredictor("tage-gsc+i");
    SimOptions opts;
    opts.pipeline = true;
    opts.updateDelay = 8;
    opts.metrics = &scope;
    PipelineSimulator pipe(*predictor, opts);

    GeneratorBranchSource source(findBenchmark("MM-4"), 15000);
    for (BranchSpan chunk = source.nextChunk(); !chunk.empty();
         chunk = source.nextChunk())
        for (const BranchRecord &rec : chunk)
            pipe.onRecord(rec);
    pipe.drain();

    const auto it = scope.histograms().find("pipeline/squash_depth");
    ASSERT_NE(it, scope.histograms().end());
    EXPECT_EQ(it->second.total(), pipe.stats().squashes);
    EXPECT_GT(pipe.stats().squashes, 0u);
}

// ---------------------------------------------------------------------------
// Suite runner plumbing: wall time, gauges, registry export
// ---------------------------------------------------------------------------

TEST(ObsSuite, WallClockAndGaugePopulated)
{
    const std::vector<BenchmarkSpec> benchmarks =
        selectBenchmarks(fullSuite(), {"MM-1"});
    const std::vector<std::string> configs = {"tage-gsc+i"};
    MetricsRegistry registry;
    registry.phaseInterval = 3000;
    SuiteRunOptions options;
    options.branchesPerTrace = 10000;
    options.metrics = &registry;
    const SuiteResults results = runSuite(benchmarks, configs, options);

    EXPECT_GT(results.wallSeconds, 0.0);
    ASSERT_EQ(results.cells.size(), 1u);
    EXPECT_GT(results.cells[0].seconds, 0.0);
    ASSERT_EQ(registry.size(), 1u);
    EXPECT_GT(registry.cell(0).wallSeconds, 0.0);
    EXPECT_EQ(registry.cell(0).benchmark, "MM-1");
    EXPECT_EQ(registry.cell(0).config, "tage-gsc+i");
    ASSERT_NE(registry.cell(0).phase, nullptr);
    // 10000 branches at interval 3000: at least 3 windows closed.
    EXPECT_GE(registry.cell(0).phase->windows().size(), 3u);
    for (std::size_t w = 0;
         w + 1 < registry.cell(0).phase->windows().size(); ++w)
        EXPECT_EQ(registry.cell(0).phase->windows()[w].branches, 3000u);

    std::ostringstream os;
    registry.writeJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"schema\": \"imli-metrics-1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"threadpool/queue_high_water\""),
              std::string::npos);
    EXPECT_NE(json.find("\"tage/resolved_provider\""), std::string::npos);
    EXPECT_NE(json.find("\"phases\""), std::string::npos);
}

TEST(ObsRegistry, JsonSkipsEmptySlotsAndIsDeterministic)
{
    const auto build = [](MetricsRegistry &registry) {
        registry.resize(3);
        obs::CellObs &cell = registry.cell(1);  // slots 0 and 2 stay empty
        cell.benchmark = "B";
        cell.config = "c";
        cell.wallSeconds = 1.5;
        ++*cell.scope.counter("z");
        ++*cell.scope.counter("a");
        cell.scope.histogram("h", Histogram::Kind::Linear, 2)->record(1);
        registry.setGauge("g", 2.0);
    };
    MetricsRegistry r1, r2;
    build(r1);
    build(r2);
    std::ostringstream o1, o2;
    r1.writeJson(o1);
    r2.writeJson(o2);
    EXPECT_EQ(o1.str(), o2.str());

    const std::string json = o1.str();
    // One exported cell despite three slots.
    std::size_t cells = 0;
    for (std::size_t at = json.find("\"benchmark\"");
         at != std::string::npos;
         at = json.find("\"benchmark\"", at + 1))
        ++cells;
    EXPECT_EQ(cells, 1u);
    // Sorted counter keys: "a" before "z".
    EXPECT_LT(json.find("\"a\""), json.find("\"z\""));
}
