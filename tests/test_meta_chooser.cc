/**
 * @file
 * Tests for the adaptive meta-prediction chooser layer: the meta(X) == X
 * identity (results and state digests, immediate and pipelined at
 * several update delays), the paren-aware spec grammar (parsing,
 * canonicalization, splitSpecList nesting, error cases), per-policy
 * arbitration behaviour against hand-built sub-predictors, and the
 * checkpoint ring journal's staleness guards.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/predictors/meta_chooser.hh"
#include "src/predictors/zoo.hh"
#include "src/sim/simulator.hh"
#include "src/workloads/benchmark_spec.hh"
#include "src/workloads/generator_source.hh"
#include "src/workloads/suite.hh"

using namespace imli;

namespace
{

SimOptions
pipelineOptions(unsigned delay)
{
    SimOptions opts;
    opts.updateDelay = delay;
    opts.pipeline = true;
    return opts;
}

/** Fixed-answer sub-predictor for direct policy unit tests. */
class ConstPredictor : public ConditionalPredictor
{
  public:
    explicit ConstPredictor(bool answer) : ans(answer) {}
    bool predict(std::uint64_t) override { return ans; }
    void update(std::uint64_t, bool, std::uint64_t) override {}
    std::string name() const override { return ans ? "taken" : "not"; }
    StorageAccount storage() const override { return StorageAccount(); }

  private:
    bool ans;
};

MetaChooserPredictor
makeChooser(MetaChooserPredictor::Policy policy, unsigned subCount = 2)
{
    MetaChooserPredictor::Config cfg;
    cfg.policy = policy;
    std::vector<PredictorPtr> subs;
    for (unsigned i = 0; i < subCount; ++i)
        subs.push_back(std::make_unique<ConstPredictor>(i == 0));
    return MetaChooserPredictor(cfg, std::move(subs));
}

} // anonymous namespace

// ---------------------------------------------------------------------------
// meta(X) == X: results and digests, immediate engine
// ---------------------------------------------------------------------------

TEST(MetaIdentity, SingleSubMatchesBareResultAndDigest)
{
    // A selector policy over one arm always follows that arm and
    // forwards its own (= the arm's) prediction to speculative history,
    // so meta(X) must be result- and state-identical to a bare X.
    const std::vector<std::string> specs = {"gshare", "gehl+loop",
                                            "tage-gsc+i"};
    for (const std::string &spec : specs) {
        PredictorPtr bare = makePredictor(spec);
        PredictorPtr wrapped = makePredictor("meta(" + spec + ")");
        GeneratorBranchSource s1(findBenchmark("MM-4"), 20000);
        GeneratorBranchSource s2(findBenchmark("MM-4"), 20000);
        const SimResult a = simulate(*bare, s1);
        const SimResult b = simulate(*wrapped, s2);
        EXPECT_EQ(a.mispredictions, b.mispredictions) << spec;
        EXPECT_EQ(a.conditionals, b.conditionals) << spec;
        const auto &meta =
            dynamic_cast<const MetaChooserPredictor &>(*wrapped);
        EXPECT_EQ(bare->stateDigest(), meta.sub(0).stateDigest()) << spec;
    }
}

TEST(MetaIdentity, UcbSingleArmAlsoMatches)
{
    PredictorPtr bare = makePredictor("tage-gsc");
    PredictorPtr wrapped =
        makePredictor("meta(tage-gsc)@meta.policy=ucb");
    GeneratorBranchSource s1(findBenchmark("WS03"), 15000);
    GeneratorBranchSource s2(findBenchmark("WS03"), 15000);
    const SimResult a = simulate(*bare, s1);
    const SimResult b = simulate(*wrapped, s2);
    EXPECT_EQ(a.mispredictions, b.mispredictions);
    const auto &meta = dynamic_cast<const MetaChooserPredictor &>(*wrapped);
    EXPECT_EQ(bare->stateDigest(), meta.sub(0).stateDigest());
}

// ---------------------------------------------------------------------------
// meta(X) == X under the pipeline engine at several delays
// ---------------------------------------------------------------------------

TEST(MetaIdentity, PipelineMatchesBareAtDelays0And8And63)
{
    for (const unsigned delay : {0u, 8u, 63u}) {
        PredictorPtr bare = makePredictor("tage-gsc+i");
        PredictorPtr wrapped = makePredictor("meta(tage-gsc+i)");
        GeneratorBranchSource s1(findBenchmark("MM-4"), 15000);
        GeneratorBranchSource s2(findBenchmark("MM-4"), 15000);
        const SimResult a = simulate(*bare, s1, pipelineOptions(delay));
        const SimResult b = simulate(*wrapped, s2, pipelineOptions(delay));
        EXPECT_EQ(a.mispredictions, b.mispredictions)
            << "delay " << delay;
        const auto &meta =
            dynamic_cast<const MetaChooserPredictor &>(*wrapped);
        EXPECT_EQ(bare->stateDigest(), meta.sub(0).stateDigest())
            << "delay " << delay;
    }
}

TEST(MetaPipeline, MultiSubRunsAtEveryDelayDeterministically)
{
    // No bare-predictor identity exists for a real multi-arm chooser;
    // pin determinism instead: two independent runs must agree exactly,
    // at every delay, including the full chooser + sub digest.
    for (const unsigned delay : {0u, 8u, 63u}) {
        PredictorPtr p1 = makePredictor("meta(tage-gsc,gehl,gshare)");
        PredictorPtr p2 = makePredictor("meta(tage-gsc,gehl,gshare)");
        GeneratorBranchSource s1(findBenchmark("WS03"), 12000);
        GeneratorBranchSource s2(findBenchmark("WS03"), 12000);
        const SimResult a = simulate(*p1, s1, pipelineOptions(delay));
        const SimResult b = simulate(*p2, s2, pipelineOptions(delay));
        EXPECT_EQ(a.mispredictions, b.mispredictions) << "delay " << delay;
        EXPECT_EQ(p1->stateDigest(), p2->stateDigest())
            << "delay " << delay;
    }
}

// ---------------------------------------------------------------------------
// Spec grammar: parsing, canonicalization, splitSpecList
// ---------------------------------------------------------------------------

TEST(MetaSpecGrammar, CanonicalEchoSortsKeysAndNamesPolicies)
{
    EXPECT_EQ(canonicalSpec("meta(tage-gsc,gehl)"), "meta(tage-gsc,gehl)");
    EXPECT_EQ(
        canonicalSpec("meta(tage-gsc,gehl)@meta.policy=ucb,meta.logsize=14"),
        "meta(tage-gsc,gehl)@meta.logsize=14,meta.policy=ucb");
    // Sub-spec overrides canonicalize too, and the echo round-trips.
    const std::string canon =
        canonicalSpec("meta(gehl@gsc.tables=12,gsc.ctrbits=5,gshare)");
    EXPECT_EQ(canon, "meta(gehl@gsc.ctrbits=5,gsc.tables=12,gshare)");
    EXPECT_EQ(canonicalSpec(canon), canon);
}

TEST(MetaSpecGrammar, SubSpecOrderIsSemantic)
{
    // Arm order is the tie-break preference — the canonical form must
    // preserve it, not sort it.
    EXPECT_EQ(canonicalSpec("meta(gshare,bimodal)"), "meta(gshare,bimodal)");
    EXPECT_EQ(canonicalSpec("meta(bimodal,gshare)"), "meta(bimodal,gshare)");
}

TEST(MetaSpecGrammar, RejectsMalformedSpecs)
{
    // Nesting, run-level keys on subs, wrong-host keys, arity, syntax.
    EXPECT_THROW(parseSpec("meta(meta(gshare,bimodal),gehl)"),
                 std::invalid_argument);
    EXPECT_THROW(parseSpec("meta(tage-gsc@sim.delay=8,gehl)"),
                 std::invalid_argument);
    EXPECT_THROW(parseSpec("meta(gshare,bimodal)@tage.tables=8"),
                 std::invalid_argument);
    EXPECT_THROW(parseSpec("tage-gsc@meta.logsize=12"),
                 std::invalid_argument);
    EXPECT_THROW(parseSpec("meta()"), std::invalid_argument);
    EXPECT_THROW(parseSpec("meta(gshare"), std::invalid_argument);
    EXPECT_THROW(parseSpec("meta(gshare)x"), std::invalid_argument);
    EXPECT_THROW(parseSpec("meta(nosuchhost)"), std::invalid_argument);
    EXPECT_THROW(
        parseSpec("meta(bimodal,bimodal,bimodal,bimodal,bimodal,bimodal,"
                  "bimodal,bimodal,bimodal)"),
        std::invalid_argument);
    EXPECT_THROW(parseSpec("meta(gshare,bimodal)@meta.policy=greedy"),
                 std::invalid_argument);
}

TEST(MetaSpecGrammar, RejectsPolicyInertKeys)
{
    // A key the resolved policy never reads would sweep byte-identical
    // points; the grammar rejects it like any other inert override.
    EXPECT_THROW(parseSpec("meta(gshare)@meta.ctrbits=3,meta.policy=ucb"),
                 std::invalid_argument);
    EXPECT_THROW(parseSpec("meta(gshare)@meta.wbits=10"),
                 std::invalid_argument);
    EXPECT_THROW(
        parseSpec("meta(gshare)@meta.explore=4,meta.policy=fusion"),
        std::invalid_argument);
    // The matching policy accepts them.
    EXPECT_NO_THROW(parseSpec("meta(gshare)@meta.ctrbits=3"));
    EXPECT_NO_THROW(
        parseSpec("meta(gshare)@meta.explore=4,meta.policy=ucb"));
    EXPECT_NO_THROW(
        parseSpec("meta(gshare)@meta.wbits=10,meta.policy=fusion"));
}

TEST(MetaSpecGrammar, RunLevelSimKeysApplyAfterTheParens)
{
    const ParsedSpec parsed =
        parseSpec("meta(tage-gsc,gehl)@sim.delay=63,meta.policy=ucb");
    EXPECT_TRUE(hasSpecUpdateDelay(parsed));
    EXPECT_EQ(specUpdateDelay(parsed), 63u);
    EXPECT_EQ(describeConfig(parsed),
              "meta(tage-gsc,gehl)@meta.policy=ucb,sim.delay=63");
}

TEST(MetaSpecGrammar, SplitSpecListKeepsNestedSpecsWhole)
{
    // Commas inside parens bind to the meta spec, commas after a
    // top-level '@' continue its overrides, and a later bare spec still
    // starts a new entry.
    const std::vector<std::string> specs = splitSpecList(
        "meta(tage-gsc@tage.tables=8,tage.logsize=10,gehl),gshare,"
        "meta(gshare,bimodal)@meta.logsize=10,meta.ctrbits=3,bimodal");
    ASSERT_EQ(specs.size(), 4u);
    EXPECT_EQ(specs[0], "meta(tage-gsc@tage.tables=8,tage.logsize=10,gehl)");
    EXPECT_EQ(specs[1], "gshare");
    EXPECT_EQ(specs[2],
              "meta(gshare,bimodal)@meta.logsize=10,meta.ctrbits=3");
    EXPECT_EQ(specs[3], "bimodal");
    for (const std::string &s : specs)
        EXPECT_NO_THROW(parseSpec(s)) << s;
}

TEST(MetaSpecGrammar, SplitSpecListRejectsOverrideAfterParenOnlySpec)
{
    // "meta(a@x=1)" has an '@' only inside the parens — a following
    // key=value fragment has no top-level '@' section to continue.
    EXPECT_THROW(
        splitSpecList("meta(tage-gsc@tage.tables=8),meta.logsize=10"),
        std::invalid_argument);
}

TEST(MetaSpecGrammar, MetaPolicyValueNamesRoundTrip)
{
    for (const char *name : {"tournament", "ucb", "fusion"})
        EXPECT_EQ(metaPolicyValueName(metaPolicyValueFromName(name)), name);
    EXPECT_THROW(metaPolicyValueFromName("greedy"), std::invalid_argument);
    EXPECT_THROW(metaPolicyValueName(3), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Policy behaviour against hand-built sub-predictors
// ---------------------------------------------------------------------------

TEST(MetaPolicy, TournamentConvergesToTheCorrectArm)
{
    // Arm 0 always predicts taken, arm 1 never: an all-taken stream must
    // pull the chooser onto arm 0 within a few updates and keep it there.
    MetaChooserPredictor meta =
        makeChooser(MetaChooserPredictor::Policy::Tournament);
    const std::uint64_t pc = 0x1234;
    for (int i = 0; i < 8; ++i) {
        meta.predict(pc);
        meta.update(pc, true, pc + 4);
    }
    for (int i = 0; i < 8; ++i) {
        EXPECT_TRUE(meta.predict(pc));
        meta.update(pc, true, pc + 4);
    }
}

TEST(MetaPolicy, TournamentTieBreaksTowardsTheLowestArm)
{
    // Counters start equal, so the very first prediction follows arm 0.
    MetaChooserPredictor meta =
        makeChooser(MetaChooserPredictor::Policy::Tournament);
    EXPECT_TRUE(meta.predict(0x40));
    meta.update(0x40, true, 0x44);
}

TEST(MetaPolicy, UcbTriesEveryUnpulledArmFirst)
{
    // Arms are pulled in index order while unpulled: the first lookup
    // follows arm 0 (taken), the second arm 1 (not-taken).
    MetaChooserPredictor meta =
        makeChooser(MetaChooserPredictor::Policy::Ucb);
    const std::uint64_t pc = 0x88;
    EXPECT_TRUE(meta.predict(pc));
    meta.update(pc, true, pc + 4);
    EXPECT_FALSE(meta.predict(pc));
    meta.update(pc, true, pc + 4);
}

TEST(MetaPolicy, UcbExploitsTheRewardingArm)
{
    MetaChooserPredictor meta =
        makeChooser(MetaChooserPredictor::Policy::Ucb);
    const std::uint64_t pc = 0x88;
    for (int i = 0; i < 64; ++i) {
        meta.predict(pc);
        meta.update(pc, true, pc + 4);
    }
    // After training, the all-taken stream is predicted taken in the
    // overwhelming majority of lookups (UCB still explores sporadically).
    int takenPredictions = 0;
    for (int i = 0; i < 32; ++i) {
        if (meta.predict(pc))
            ++takenPredictions;
        meta.update(pc, true, pc + 4);
    }
    EXPECT_GE(takenPredictions, 28);
}

TEST(MetaPolicy, FusionLearnsTheStream)
{
    MetaChooserPredictor meta =
        makeChooser(MetaChooserPredictor::Policy::Fusion);
    const std::uint64_t pc = 0xabc;
    for (int i = 0; i < 64; ++i) {
        meta.predict(pc);
        meta.update(pc, true, pc + 4);
    }
    for (int i = 0; i < 8; ++i) {
        EXPECT_TRUE(meta.predict(pc));
        meta.update(pc, true, pc + 4);
    }
}

TEST(MetaPolicy, ConstructorValidatesArity)
{
    MetaChooserPredictor::Config cfg;
    EXPECT_THROW(MetaChooserPredictor(cfg, {}), std::invalid_argument);
    std::vector<PredictorPtr> nine;
    for (int i = 0; i < 9; ++i)
        nine.push_back(std::make_unique<ConstPredictor>(true));
    EXPECT_THROW(MetaChooserPredictor(cfg, std::move(nine)),
                 std::invalid_argument);
    std::vector<PredictorPtr> withNull;
    withNull.push_back(nullptr);
    EXPECT_THROW(MetaChooserPredictor(cfg, std::move(withNull)),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Checkpoint ring journal
// ---------------------------------------------------------------------------

TEST(MetaCheckpoint, RoundTripRestoresSubState)
{
    // Warm two clones identically, wander one down a speculative wrong
    // path and restore it: from then on the pair must answer branch by
    // branch identically through live traffic.
    PredictorPtr wandered = makePredictor("meta(tage-gsc+l,gshare)");
    PredictorPtr untouched = makePredictor("meta(tage-gsc+l,gshare)");
    wandered->prepareSpeculation(64);
    const Trace warm = generateTrace(findBenchmark("MM-1"), 5000);
    const Trace live = generateTrace(findBenchmark("MM-4"), 3000);
    for (ConditionalPredictor *p : {wandered.get(), untouched.get()})
        for (const BranchRecord &rec : warm.branches())
            if (isConditional(rec.type)) {
                (void)p->predict(rec.pc);
                p->update(rec.pc, rec.taken, rec.target);
            }

    const SpecCheckpoint cp = wandered->checkpoint();
    for (int i = 0; i < 40; ++i)
        wandered->speculate(0x1000 + 8 * i, (i & 1) != 0, 0x900);
    wandered->restore(cp);
    wandered->squashSpeculation();

    for (const BranchRecord &rec : live.branches())
        if (isConditional(rec.type)) {
            EXPECT_EQ(wandered->predict(rec.pc), untouched->predict(rec.pc));
            wandered->update(rec.pc, rec.taken, rec.target);
            untouched->update(rec.pc, rec.taken, rec.target);
        }
    EXPECT_EQ(wandered->stateDigest(), untouched->stateDigest());
}

TEST(MetaCheckpoint, RestoreOfNeverIssuedTicketThrows)
{
    PredictorPtr pred = makePredictor("meta(gshare,bimodal)");
    SpecCheckpoint cp;
    cp.localTicket = 5;
    EXPECT_THROW(pred->restore(cp), std::logic_error);
}

TEST(MetaCheckpoint, OutlivedRingSlotThrows)
{
    PredictorPtr pred = makePredictor("meta(gshare,bimodal)");
    pred->prepareSpeculation(4); // ring sized to a small power of two
    const SpecCheckpoint cp = pred->checkpoint();
    // Overwrite every slot with younger checkpoints, then try the stale
    // one: the seq tag no longer matches its slot.
    for (int i = 0; i < 200; ++i)
        (void)pred->checkpoint();
    EXPECT_THROW(pred->restore(cp), std::logic_error);
}
