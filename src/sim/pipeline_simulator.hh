/**
 * @file
 * Speculative pipeline simulation: an N-deep in-flight window between
 * prediction and commit, with predictor tables trained at commit time,
 * speculative history maintained via checkpoints, and squash-and-replay
 * on every misprediction — the update-timing realism the CBP-style
 * immediate-update drive (simulator.hh) abstracts away, and the setting
 * in which the paper's Section 4.3.2 delayed-update claim is made.
 *
 * Model, per dynamic branch record:
 *
 *   fetch   pred = predict(pc); cp = checkpoint();
 *           speculate(pc, pred, target)      // history sees the *guess*
 *           (non-conditionals: trackOtherInst(), as at fetch in hardware)
 *   commit  (once the record is the oldest of > updateDelay in flight)
 *           cur = checkpoint(); restore(cp);  // back to fetch-time view
 *           predict(pc);                      // re-derive pairing state
 *           update(pc, taken, target);        // train + push resolved bit
 *           correct    -> restore(cur)        // return to the fetch front
 *           mispredict -> squashSpeculation() // drop younger spec state
 *                         and re-fetch every younger in-flight record
 *                         (replay): their earlier predictions were made
 *                         in the wrong-path shadow and never commit.
 *
 * Grading happens at commit, against the prediction that survives — the
 * one hardware would actually commit.  A branch fetched in a mispredict
 * shadow is therefore graded on its post-recovery re-prediction, exactly
 * once.
 *
 * Recovery model: restore() recovers precisely the paper's speculative
 * state — global/path history head pointer, IMLI counter + PIPE, the
 * in-flight local-history visibility ticket (Sections 2.3 and 4.4).
 * Tables (TAGE/SC/SIC/OH/loop/wormhole/local histories) are architectural:
 * written only at commit, so recovery never touches them, but their fetch
 * view goes stale as the delay deepens — the loop predictor's iteration
 * counters and the wormhole histories lag by up to N branches, which is
 * the paper's hardware argument made measurable.  The commit-time
 * update() reads those tables at commit with fetch-time indices (an
 * update-queue that re-reads, as hardware read-modify-write does), so
 * training decisions use re-derived lookup state; with updateDelay == 0
 * the re-derivation happens on an unchanged predictor and the whole
 * engine is bit-identical to the immediate simulator — the property CI
 * pins over the full suite matrix.
 *
 * What is NOT modelled: wrong-path fetch (the trace is the correct path,
 * so squashed slots replay the same records), early (execute-time)
 * misprediction detection (resolution happens at commit, the worst-case
 * recovery point; MPKI is unaffected because grading is commit-side
 * either way), and fetch-block effects (one branch per fetch).
 *
 * Memory model: the simulator owns one window of updateDelay + 1 record
 * entries (record + prediction + a few-word checkpoint each) per
 * predictor — O(delay), independent of trace length, on top of the
 * streaming engine's O(chunk) residency.  Commit cost is O(delay x
 * folds) for the two incremental restores of the sandwich (see
 * history/history_manager.cc), so a full-suite run scales linearly in
 * the configured depth.
 *
 * Commit batching: consecutive commits share one front checkpoint.  A
 * restore() is an exact teleport — the fold walk reads history-buffer
 * bits by absolute position, and every other checkpoint field (IMLI
 * counters, journal ticket horizons, the loop PC) is restored by value —
 * so after a correctly predicted commit the round trip back to the
 * front is redundant when the very next operation is another commit's
 * backward restore: restore(front); restore(next.cp) collapses to
 * restore(next.cp).  Correct commits leave the buffer bits untouched
 * (the resolved push rewrites the speculative bit with the same value),
 * which is exactly the precondition the fold walk needs.  The burst
 * returns to the hoisted front once, when the batch runs out; a
 * mispredict discards the now-stale front (squash-and-replay rebuilds
 * the front from the repaired history).  This turns the drain of a
 * depth-N window from O(N^2 x folds) into O(N x folds) and drops one
 * checkpoint + one forward restore from every multi-commit burst,
 * bit-identically.
 */

#ifndef IMLI_SRC_SIM_PIPELINE_SIMULATOR_HH
#define IMLI_SRC_SIM_PIPELINE_SIMULATOR_HH

#include <cstdint>
#include <deque>

#include "src/obs/metrics.hh"
#include "src/predictors/predictor.hh"
#include "src/sim/simulator.hh"
#include "src/trace/branch_record.hh"

namespace imli
{

/** Pipeline-only event counters (on top of the SimResult grading). */
struct PipelineStats
{
    std::uint64_t commits = 0;   //!< records retired
    std::uint64_t squashes = 0;  //!< mispredict recoveries
    std::uint64_t replays = 0;   //!< records re-fetched after a squash
};

/**
 * Drives one predictor through the speculative pipeline model.  Feed
 * records in stream order with onRecord(), then drain() at end of
 * stream; result() carries the commit-side grading.  The predictor must
 * implement the speculation contract (ConditionalPredictor::
 * supportsSpeculation); the constructor throws std::invalid_argument
 * otherwise.
 */
class PipelineSimulator
{
  public:
    /**
     * @param predictor the predictor under test (externally owned)
     * @param options updateDelay is the window depth: a record commits
     *        once more than updateDelay records are in flight, so 0
     *        commits every record immediately after its fetch
     */
    PipelineSimulator(ConditionalPredictor &predictor,
                      const SimOptions &options);

    /** Fetch @p rec; commits every record the window depth pushes out. */
    void onRecord(const BranchRecord &rec);

    /** End of stream: commit everything still in flight. */
    void drain();

    /** Commit-side grading (same accounting as the immediate engine). */
    const SimResult &result() const { return simResult; }
    SimResult &result() { return simResult; }

    const PipelineStats &stats() const { return pipeStats; }

  private:
    struct Inflight
    {
        BranchRecord rec;
        std::uint64_t pos = 0; //!< stream position (fixed across replays)
        bool conditional = false;
        bool pred = false;
        SpecCheckpoint cp; //!< fetch-time view, taken before speculate()
    };

    void fetch(const BranchRecord &rec, std::uint64_t pos);

    /**
     * Commit oldest-first until at most @p target records are in flight,
     * batching consecutive commits under one hoisted front checkpoint
     * (see the file header).  Squash replays can refill the window
     * mid-loop, but every iteration retires one record for good, so the
     * loop terminates.
     */
    void commitUntil(std::size_t target);

    ConditionalPredictor &pred;
    SimOptions opts;
    std::deque<Inflight> window;
    std::uint64_t fetchPos = 0;
    SimResult simResult;
    PipelineStats pipeStats;

    /** Squash-depth distribution (in-flight records dropped per squash);
     *  detached unless SimOptions::metrics was set at construction. */
    obs::ProbeHistogram obsSquashDepth;
};

} // namespace imli

#endif // IMLI_SRC_SIM_PIPELINE_SIMULATOR_HH
