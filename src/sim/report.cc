#include "src/sim/report.hh"

#include <ostream>

#include "src/util/table_writer.hh"

namespace imli
{

ExperimentReport::ExperimentReport(std::string experiment_id,
                                   std::string caption_)
    : id(std::move(experiment_id)), caption(std::move(caption_))
{
}

void
ExperimentReport::addMetric(const std::string &label, double measured,
                            std::optional<double> paper,
                            const std::string &unit)
{
    metrics.push_back({label, measured, paper, unit});
}

void
ExperimentReport::addNote(const std::string &note)
{
    notes.push_back(note);
}

void
ExperimentReport::print(std::ostream &os) const
{
    os << "=== " << id << ": " << caption << " ===\n";
    TableWriter table;
    table.setHeader({"metric", "measured", "paper", "unit"});
    for (const Metric &m : metrics) {
        table.addRow({m.label, formatDouble(m.measured, 3),
                      m.paper ? formatDouble(*m.paper, 3) : "-", m.unit});
    }
    table.print(os);
    for (const std::string &note : notes)
        os << "  note: " << note << '\n';
    os << '\n';
}

void
printPerBenchmark(std::ostream &os, const SuiteResults &results,
                  const std::vector<std::string> &benchmarks,
                  const std::vector<std::string> &configs,
                  const std::string &title)
{
    TableWriter table(title);
    std::vector<std::string> header = {"benchmark"};
    header.insert(header.end(), configs.begin(), configs.end());
    table.setHeader(header);
    for (const std::string &name : benchmarks) {
        std::vector<std::string> row = {name};
        for (const std::string &config : configs)
            row.push_back(formatDouble(results.at(name, config).mpki, 3));
        table.addRow(row);
    }
    table.print(os);
    os << '\n';
}

void
printCellsCsv(std::ostream &os, const SuiteResults &results)
{
    TableWriter table;
    table.setHeader({"suite", "benchmark", "config", "mpki",
                     "mispredictions", "conditionals", "instructions"});
    for (const SuiteCell &cell : results.cells) {
        table.addRow({cell.suite, cell.benchmark, cell.config,
                      formatDouble(cell.mpki, 4),
                      std::to_string(cell.mispredictions),
                      std::to_string(cell.conditionals),
                      std::to_string(cell.instructions)});
    }
    table.printCsv(os);
}

void
printCellsJson(std::ostream &os, const SuiteResults &results)
{
    os << "{\n  \"configs\": [";
    for (std::size_t i = 0; i < results.configs.size(); ++i) {
        if (i > 0)
            os << ", ";
        os << '"' << jsonEscape(results.configs[i]) << '"';
    }
    os << "],\n  \"cells\": [\n";
    for (std::size_t i = 0; i < results.cells.size(); ++i) {
        const SuiteCell &cell = results.cells[i];
        os << "    {\"suite\": \"" << jsonEscape(cell.suite)
           << "\", \"benchmark\": \"" << jsonEscape(cell.benchmark)
           << "\", \"config\": \"" << jsonEscape(cell.config)
           << "\", \"mpki\": " << formatDouble(cell.mpki, 4)
           << ", \"mispredictions\": " << cell.mispredictions
           << ", \"conditionals\": " << cell.conditionals
           << ", \"instructions\": " << cell.instructions << '}'
           << (i + 1 < results.cells.size() ? "," : "") << '\n';
    }
    os << "  ]\n}\n";
}

void
printRunSummary(std::ostream &os, const SuiteResults &results,
                unsigned jobs)
{
    const double wallSeconds = results.wallSeconds;
    std::uint64_t branches = 0;
    for (const SuiteCell &cell : results.cells)
        branches += cell.conditionals;
    os << "run: " << results.cells.size() << " cells, " << branches
       << " conditional branches, " << formatDouble(wallSeconds, 2)
       << " s wall";
    if (wallSeconds > 0.0)
        os << " (" << formatDouble(static_cast<double>(branches) /
                                       wallSeconds / 1e6, 2)
           << " M branches/s)";
    os << ", jobs=" << jobs << '\n';
}

} // namespace imli
