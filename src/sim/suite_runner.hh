/**
 * @file
 * Suite-level experiment driver: run a set of predictor configurations
 * over a benchmark suite, one generated trace at a time (so the memory
 * footprint stays at one trace), with identical traces across
 * configurations for exact deltas.
 */

#ifndef IMLI_SRC_SIM_SUITE_RUNNER_HH
#define IMLI_SRC_SIM_SUITE_RUNNER_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/sim/simulator.hh"
#include "src/workloads/benchmark_spec.hh"

namespace imli
{

/** One (benchmark, config) measurement. */
struct SuiteCell
{
    std::string benchmark;
    std::string suite;   //!< "CBP4" / "CBP3"
    std::string config;  //!< predictor spec string
    double mpki = 0.0;
    std::uint64_t mispredictions = 0;
    std::uint64_t conditionals = 0;
    std::uint64_t instructions = 0;
};

/** Results matrix: cells in benchmark-major, config-minor order. */
struct SuiteResults
{
    std::vector<std::string> configs;
    std::vector<SuiteCell> cells;

    /** Cell for (benchmark, config); throws if absent. */
    const SuiteCell &at(const std::string &benchmark,
                        const std::string &config) const;

    /**
     * Append @p shard's cells (benchmark partitioning).  Both results must
     * carry the same config list; throws std::invalid_argument otherwise.
     * Merging is deterministic: cell order is this-then-shard, so merging
     * shards in partition order reproduces the unsharded run exactly.
     */
    void merge(const SuiteResults &shard);

    /** Arithmetic-mean MPKI of @p config over benchmarks in @p suite
     *  ("" = all). */
    double averageMpki(const std::string &config,
                       const std::string &suite = "") const;

    /** Benchmarks sorted by |MPKI(configA) - MPKI(configB)| descending. */
    std::vector<std::string>
    rankByDelta(const std::string &config_a,
                const std::string &config_b) const;

    /** Names of all benchmarks, in run order. */
    std::vector<std::string> benchmarkNames() const;
};

/** Driver options. */
struct SuiteRunOptions
{
    std::size_t branchesPerTrace = 200000;
    /**
     * Worker threads for the (benchmark, config) cell fan-out; 1 runs the
     * serial in-caller path, 0 means one worker per hardware thread.  Any
     * value yields bit-identical results (cells are independent and each
     * is written into its fixed benchmark-major slot).
     */
    unsigned jobs = 1;
    /**
     * Progress callback (benchmark name, finished configs for that
     * benchmark).  With jobs > 1 it is invoked under a mutex, from worker
     * threads, and benchmarks may interleave.
     */
    std::function<void(const std::string &, std::size_t)> progress;
};

/**
 * Run every config (spec strings for makePredictor) over every benchmark.
 * Each benchmark's trace is generated once and reused across configs; with
 * jobs > 1 the cells are self-scheduled across a ThreadPool and at most
 * ~jobs traces are alive at once (a benchmark's trace is freed when its
 * last config finishes).
 */
SuiteResults runSuite(const std::vector<BenchmarkSpec> &benchmarks,
                      const std::vector<std::string> &configs,
                      const SuiteRunOptions &options = SuiteRunOptions());

/** Default trace length, honouring the IMLI_BRANCHES env override. */
std::size_t defaultBranchesPerTrace();

/** Default worker count, honouring the IMLI_JOBS env override (0 = all
 *  hardware threads); falls back to 1 (serial) when unset. */
unsigned defaultJobs();

} // namespace imli

#endif // IMLI_SRC_SIM_SUITE_RUNNER_HH
