/**
 * @file
 * Suite-level experiment driver: run a set of predictor configurations
 * over a benchmark suite on the streaming engine, with identical branch
 * streams across configurations for exact deltas.
 *
 * Memory model: no benchmark is ever materialized.  Each benchmark is a
 * BranchSource streamed chunk by chunk through simulateMany, so a
 * worker's resident trace memory is one chunk (options.chunkBranches
 * records, ~24 bytes each) plus a bounded backend overhang — O(chunk),
 * independent of benchmark length.  With J workers the whole run holds
 * O(chunk)·J records plus the predictor tables; the old engine held
 * O(branchesPerTrace)·J.  Stream cost (generation or file decode) is
 * paid once per benchmark, not once per (benchmark, config) cell.
 *
 * Multi-backend note: streams open through TraceCorpus::open() —
 * GeneratorBranchSource for synthetic specs (overhang: the one kernel
 * round crossing the chunk boundary); recorded specs are decoded once
 * per process into the corpus's capped shared cache and served as
 * zero-copy spans (oversized traces fall back to CbpFileBranchSource /
 * FileBranchSource, whose reader buffer IS the chunk).  Mixed suites
 * keep the O(chunk)·J streaming bound plus the one shared decoded copy
 * per distinct recorded trace — not per worker, and the record sequence
 * (hence every result) is identical whether a stream was cached or
 * streamed.  Recorded streams ignore branchesPerTrace: a recording's
 * length is part of the scenario, so the whole file always plays.
 */

#ifndef IMLI_SRC_SIM_SUITE_RUNNER_HH
#define IMLI_SRC_SIM_SUITE_RUNNER_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/sim/simulator.hh"
#include "src/workloads/benchmark_spec.hh"

namespace imli
{

namespace obs
{
class MetricsRegistry;
} // namespace obs

/** One (benchmark, config) measurement. */
struct SuiteCell
{
    std::string benchmark;
    std::string suite;   //!< "CBP4" / "CBP3"
    std::string config;  //!< predictor spec string
    double mpki = 0.0;
    std::uint64_t mispredictions = 0;
    std::uint64_t conditionals = 0;
    std::uint64_t instructions = 0;
    /**
     * Wall-clock seconds of the single streamed pass that produced this
     * cell (shared by the benchmark's configs — the engine finishes them
     * together).  Timing only: NOT exported by the CSV/JSON cell
     * printers (whose byte-stable schema is pinned) and never part of a
     * journal fingerprint; printRunSummary, the metrics export and the
     * sweep timing sidecar read it.
     */
    double seconds = 0.0;
};

/** Results matrix: cells in benchmark-major, config-minor order. */
struct SuiteResults
{
    std::vector<std::string> configs;
    std::vector<SuiteCell> cells;
    /** Wall-clock seconds of the whole run (measured inside runSuite). */
    double wallSeconds = 0.0;

    /** Cell for (benchmark, config); throws if absent. */
    const SuiteCell &at(const std::string &benchmark,
                        const std::string &config) const;

    /**
     * Append @p shard's cells (benchmark partitioning).  Both results must
     * carry the same config list; throws std::invalid_argument otherwise.
     * Merging is deterministic: cell order is this-then-shard, so merging
     * shards in partition order reproduces the unsharded run exactly.
     */
    void merge(const SuiteResults &shard);

    /** Arithmetic-mean MPKI of @p config over benchmarks in @p suite
     *  ("" = all). */
    double averageMpki(const std::string &config,
                       const std::string &suite = "") const;

    /** Benchmarks sorted by |MPKI(configA) - MPKI(configB)| descending. */
    std::vector<std::string>
    rankByDelta(const std::string &config_a,
                const std::string &config_b) const;

    /** Names of all benchmarks, in run order. */
    std::vector<std::string> benchmarkNames() const;
};

/** Driver options. */
struct SuiteRunOptions
{
    std::size_t branchesPerTrace = 200000;
    /**
     * Records per streamed chunk.  Smaller chunks lower resident memory;
     * the chunk size never changes results (any value yields the same
     * record stream).
     */
    std::size_t chunkBranches = 65536;
    /**
     * Worker threads for the benchmark-level fan-out (each task streams
     * one benchmark through all configs in a single pass); 1 runs the
     * serial in-caller path, 0 means one worker per hardware thread.  Any
     * value yields bit-identical results (benchmarks are independent and
     * each writes its fixed benchmark-major slice of the cell matrix).
     */
    unsigned jobs = 1;
    /**
     * Per-simulation options (warm-up, per-PC collection, pipeline
     * engine / update delay) applied to every (benchmark, config) cell.
     * warmupBranches excludes the first N records of each benchmark's
     * stream from grading, per the CBP methodology note in simulator.hh.
     * A config whose spec carries a "sim.delay" override runs on the
     * pipeline engine at that depth regardless of these options, so one
     * suite can mix update-timing points.
     */
    SimOptions sim;
    /**
     * Progress callback (benchmark name, finished configs for that
     * benchmark).  The single-pass engine finishes a benchmark's configs
     * together, so the callback fires configs-many times in a row when a
     * benchmark completes; with jobs > 1 it is invoked under a mutex,
     * from worker threads, and benchmarks may interleave.
     */
    std::function<void(const std::string &, std::size_t)> progress;

    /**
     * Observation registry (null = metrics off, the default).  When set,
     * runSuite sizes one CellObs slot per (benchmark, config) cell —
     * same benchmark-major order as SuiteResults::cells — attaches each
     * cell predictor's probes to its slot's scope, fills per-cell wall
     * time, and (when registry->phaseInterval > 0) records a phase
     * series per cell.  Each worker writes only its own slots, so
     * collection is lock-free and export order is deterministic.
     */
    obs::MetricsRegistry *metrics = nullptr;
    /**
     * Trace-event stream handed to every cell's simulation (pipeline
     * engine only; the immediate engine emits no events).  Callers
     * restrict runs to one cell before setting this — interleaved cells
     * would share the one stream.
     */
    obs::TraceEventWriter *traceEvents = nullptr;
};

/**
 * Run every config (spec strings for makePredictor) over every benchmark.
 * Each benchmark is streamed exactly once — one generator pass feeds all
 * configs via simulateMany — and with jobs > 1 whole benchmarks are
 * self-scheduled across a ThreadPool, so at most jobs chunks are alive at
 * once (see the file header for the memory model).
 */
SuiteResults runSuite(const std::vector<BenchmarkSpec> &benchmarks,
                      const std::vector<std::string> &configs,
                      const SuiteRunOptions &options = SuiteRunOptions());

/**
 * Parse a trace-length string (shared by --branches flags and the
 * IMLI_BRANCHES env override): a plain decimal count >= 1000.  Anything
 * else throws std::runtime_error naming @p what — a typo'd length would
 * silently measure the wrong experiment.
 */
std::size_t parseBranchCount(const std::string &text,
                             const std::string &what);

/**
 * Default trace length, honouring the IMLI_BRANCHES env override.
 * Throws std::runtime_error when the variable is set to anything but a
 * plain decimal count >= 1000.
 */
std::size_t defaultBranchesPerTrace();

/**
 * Default worker count, honouring the IMLI_JOBS env override ("auto",
 * "max" and 0 = all hardware threads); falls back to 1 (serial) when
 * unset.  Throws std::runtime_error on garbage values.
 */
unsigned defaultJobs();

class CommandLine;

/**
 * Parse the shared pipeline-engine CLI flags into @p sim:
 * "--update-delay N" (strict integer, 0..kMaxSpeculationDepth; selects
 * the pipeline engine, 0 being the immediate-engine bit-identity
 * oracle) or bare "--pipeline" (delay 0).  A value glued to --pipeline
 * throws, like every other boolean mode switch.  Shared by suite_report
 * and predictor_shootout so the two CLIs cannot drift.
 */
void applyPipelineFlags(const CommandLine &cli, SimOptions &sim);

/**
 * Parse the run-level "--prefetch N" flag into @p sim (strict integer,
 * 0..kMaxPrefetchLookahead): the simulator's software-prefetch lookahead
 * for every config of the run.  Per-config values still win via the
 * "sim.prefetch" spec key (see applySpecDelay).  Results are
 * bit-identical at any value; only throughput moves.
 */
void applyPrefetchFlag(const CommandLine &cli, SimOptions &sim);

} // namespace imli

#endif // IMLI_SRC_SIM_SUITE_RUNNER_HH
