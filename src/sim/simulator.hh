/**
 * @file
 * Trace-driven branch predictor simulation (paper, Section 3).
 *
 * Immediate-update simulation: predict, then resolve, per dynamic branch,
 * exactly like the CBP framework grades submissions.  Accuracy is
 * expressed as MisPredictions per Kilo Instruction (MPKI), the paper's
 * metric; the denominator comes from the instruction counts carried in
 * the trace.
 */

#ifndef IMLI_SRC_SIM_SIMULATOR_HH
#define IMLI_SRC_SIM_SIMULATOR_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/predictors/predictor.hh"
#include "src/trace/branch_source.hh"
#include "src/trace/trace.hh"

namespace imli
{

/** Options for one simulation run. */
struct SimOptions
{
    /** Collect per-PC misprediction counts (top-offender reports). */
    bool collectPerPc = false;
    /**
     * Branches to run before counting (predictor warm-up).  The CBP
     * methodology counts from the first branch; 0 is the default.
     */
    std::uint64_t warmupBranches = 0;
};

/** Aggregate result of one simulation run. */
struct SimResult
{
    std::string traceName;
    std::string predictorName;
    std::uint64_t conditionals = 0;   //!< graded conditional branches
    std::uint64_t mispredictions = 0;
    std::uint64_t instructions = 0;   //!< counted instructions

    /** Mispredictions per kilo-instruction. */
    double mpki() const;

    /** Fraction of conditional branches predicted correctly. */
    double accuracy() const;

    /** Per-PC misprediction counts (populated when requested). */
    std::map<std::uint64_t, std::uint64_t> perPcMispredictions;

    /** The @p n PCs with the most mispredictions, descending. */
    std::vector<std::pair<std::uint64_t, std::uint64_t>>
    topOffenders(std::size_t n) const;
};

/**
 * Run @p predictor over @p source, chunk by chunk, from the source's
 * current position to end of stream.  Peak memory is one chunk.
 */
SimResult simulate(ConditionalPredictor &predictor, BranchSource &source,
                   const SimOptions &options = SimOptions());

/** Run @p predictor over an in-memory @p trace (adapter convenience). */
SimResult simulate(ConditionalPredictor &predictor, const Trace &trace,
                   const SimOptions &options = SimOptions());

/**
 * Drive every predictor over one shared stream in a single pass: each
 * chunk is produced once (one generate / decode) and then replayed
 * through all N predictors, so the stream cost is amortized N-fold while
 * every predictor still observes the exact record sequence — results are
 * bit-identical to N independent simulate() runs over the same stream.
 * Null entries in @p predictors are not allowed.
 */
std::vector<SimResult>
simulateMany(const std::vector<ConditionalPredictor *> &predictors,
             BranchSource &source, const SimOptions &options = SimOptions());

/** Convenience overload for caller-owned predictors (zoo factories). */
std::vector<SimResult>
simulateMany(const std::vector<PredictorPtr> &predictors,
             BranchSource &source, const SimOptions &options = SimOptions());

} // namespace imli

#endif // IMLI_SRC_SIM_SIMULATOR_HH
