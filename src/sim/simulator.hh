/**
 * @file
 * Trace-driven branch predictor simulation (paper, Section 3).
 *
 * Immediate-update simulation: predict, then resolve, per dynamic branch,
 * exactly like the CBP framework grades submissions.  Accuracy is
 * expressed as MisPredictions per Kilo Instruction (MPKI), the paper's
 * metric; the denominator comes from the instruction counts carried in
 * the trace.
 *
 * Setting SimOptions::updateDelay > 0 (or pipeline = true) swaps in the
 * speculative pipeline engine (pipeline_simulator.hh): prediction at
 * fetch, training at commit, squash-and-replay on mispredictions.  At
 * updateDelay == 0 the two engines are bit-identical.
 */

#ifndef IMLI_SRC_SIM_SIMULATOR_HH
#define IMLI_SRC_SIM_SIMULATOR_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/predictors/predictor.hh"
#include "src/trace/branch_source.hh"
#include "src/trace/trace.hh"

namespace imli
{

namespace obs
{
class MetricsScope;
class PhaseRecorder;
class TraceEventWriter;
} // namespace obs

/** Options for one simulation run. */
struct SimOptions
{
    /** Collect per-PC misprediction counts (top-offender reports). */
    bool collectPerPc = false;
    /**
     * Branches to run before counting (predictor warm-up).  The CBP
     * methodology counts from the first branch; 0 is the default.
     * Warm-up is symmetric: a record excluded from the misprediction
     * numerator is excluded from the instruction denominator too, and
     * both engines count by the record's fixed stream position.
     */
    std::uint64_t warmupBranches = 0;
    /**
     * In-flight window depth of the speculative pipeline engine
     * (pipeline_simulator.hh): predictor tables train only once a branch
     * is the oldest of more than updateDelay in-flight records.  Any
     * value > 0 selects the pipeline engine.
     */
    unsigned updateDelay = 0;
    /**
     * Run the pipeline engine even at updateDelay == 0 — the
     * configuration that is bit-identical to the immediate engine (the
     * regression oracle CI compares byte-for-byte).
     */
    bool pipeline = false;

    /**
     * Software-prefetch lookahead distance in records (0 = off): while
     * simulating record k of a chunk, hint the predictor's table lines
     * for record k + prefetchLookahead (ConditionalPredictor::prefetch),
     * overlapping the fetches with the predict/update work in between.
     * Purely a scheduling hint — results are bit-identical at any value
     * (CI pins 0 vs on).  Applies to the immediate engine; the pipeline
     * engine's commit sandwich re-reads under restored history, where a
     * lookahead hint has no stable target.  Bounded by
     * kMaxPrefetchLookahead; settable per config via the "sim.prefetch"
     * spec key.
     */
    unsigned prefetchLookahead = 0;

    // ---- Observation hooks (src/obs; all null by default) --------------
    // Each is a borrowed pointer owned by the caller; null means the
    // corresponding observation is off, and the simulators then execute
    // the exact instruction sequence of a build without src/obs — the
    // inertness the 88-benchmark CSV identity protocol pins.

    /** Per-cell metric scope: the pipeline engine registers its squash-
     *  depth histogram here (predictor probes attach separately via
     *  ConditionalPredictor::attachProbes). */
    obs::MetricsScope *metrics = nullptr;
    /** Phase-sliced time series fed from the grading loop. */
    obs::PhaseRecorder *phase = nullptr;
    /** Chrome trace-event stream (pipeline engine only). */
    obs::TraceEventWriter *traceEvents = nullptr;

    /** True when simulation should use the pipeline engine. */
    bool usePipeline() const { return pipeline || updateDelay > 0; }
};

struct ParsedSpec;

/**
 * @p base with any run-level sim.* overrides of @p parsed applied.
 * "sim.delay": a spec carrying the key — an explicit sim.delay=0
 * included — is pinned to the pipeline engine at that depth, overriding
 * the run-level engine selection (the spec label next to the numbers
 * must stay truthful).  "sim.prefetch" pins the prefetch lookahead the
 * same way (an explicit 0 turns it off under a run-level default).
 * The single definition of those rules, shared by the suite runner and
 * the DSE sweep.
 */
SimOptions applySpecDelay(const ParsedSpec &parsed, SimOptions base);

/** Aggregate result of one simulation run. */
struct SimResult
{
    std::string traceName;
    std::string predictorName;
    std::uint64_t conditionals = 0;   //!< graded conditional branches
    std::uint64_t mispredictions = 0;
    std::uint64_t instructions = 0;   //!< counted instructions

    /** Mispredictions per kilo-instruction. */
    double mpki() const;

    /** Fraction of conditional branches predicted correctly. */
    double accuracy() const;

    /** Per-PC misprediction counts (populated when requested). */
    std::map<std::uint64_t, std::uint64_t> perPcMispredictions;

    /**
     * The @p n PCs with the most mispredictions, descending; ties break
     * towards the lower PC, so the report is byte-stable across
     * platforms and standard libraries.
     */
    std::vector<std::pair<std::uint64_t, std::uint64_t>>
    topOffenders(std::size_t n) const;
};

/**
 * Run @p predictor over @p source, chunk by chunk, from the source's
 * current position to end of stream.  Peak memory is one chunk.
 */
SimResult simulate(ConditionalPredictor &predictor, BranchSource &source,
                   const SimOptions &options = SimOptions());

/** Run @p predictor over an in-memory @p trace (adapter convenience). */
SimResult simulate(ConditionalPredictor &predictor, const Trace &trace,
                   const SimOptions &options = SimOptions());

/**
 * Drive every predictor over one shared stream in a single pass: each
 * chunk is produced once (one generate / decode) and then replayed
 * through all N predictors, so the stream cost is amortized N-fold while
 * every predictor still observes the exact record sequence — results are
 * bit-identical to N independent simulate() runs over the same stream.
 * Null entries in @p predictors are not allowed.
 */
std::vector<SimResult>
simulateMany(const std::vector<ConditionalPredictor *> &predictors,
             BranchSource &source, const SimOptions &options = SimOptions());

/** Convenience overload for caller-owned predictors (zoo factories). */
std::vector<SimResult>
simulateMany(const std::vector<PredictorPtr> &predictors,
             BranchSource &source, const SimOptions &options = SimOptions());

/**
 * simulateMany with per-predictor options (one entry per predictor):
 * lets one shared streamed pass mix engines and update delays — the DSE
 * sweep grammar's sim.delay dimension rides this.  Grading options may
 * differ per predictor; the record stream is decoded once regardless.
 */
std::vector<SimResult>
simulateMany(const std::vector<ConditionalPredictor *> &predictors,
             BranchSource &source, const std::vector<SimOptions> &options);

std::vector<SimResult>
simulateMany(const std::vector<PredictorPtr> &predictors,
             BranchSource &source, const std::vector<SimOptions> &options);

} // namespace imli

#endif // IMLI_SRC_SIM_SIMULATOR_HH
