/**
 * @file
 * Experiment report formatting: paper-value vs measured-value tables and
 * CSV dumps, shared by every bench binary.
 */

#ifndef IMLI_SRC_SIM_REPORT_HH
#define IMLI_SRC_SIM_REPORT_HH

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "src/sim/suite_runner.hh"

namespace imli
{

/**
 * Builder for a "paper vs measured" experiment report.  Rows carry an
 * optional paper value; the table prints both and, for paired rows, the
 * relative change so the *shape* of the reproduction can be checked at a
 * glance.
 */
class ExperimentReport
{
  public:
    /**
     * @param experiment_id e.g. "Table 1"
     * @param caption short description of what the paper row reports
     */
    ExperimentReport(std::string experiment_id, std::string caption);

    /** Add a measured value with an optional paper reference value. */
    void addMetric(const std::string &label, double measured,
                   std::optional<double> paper = std::nullopt,
                   const std::string &unit = "MPKI");

    /** Add a free-form note printed under the table. */
    void addNote(const std::string &note);

    void print(std::ostream &os) const;

  private:
    struct Metric
    {
        std::string label;
        double measured;
        std::optional<double> paper;
        std::string unit;
    };

    std::string id;
    std::string caption;
    std::vector<Metric> metrics;
    std::vector<std::string> notes;
};

/** Print per-benchmark MPKI rows for the given configs. */
void printPerBenchmark(std::ostream &os, const SuiteResults &results,
                       const std::vector<std::string> &benchmarks,
                       const std::vector<std::string> &configs,
                       const std::string &title);

/** Dump every cell of @p results as CSV. */
void printCellsCsv(std::ostream &os, const SuiteResults &results);

/**
 * Dump @p results as JSON: {"configs": [...], "cells": [{...}]} with the
 * cells in run order.  The key order and number formatting are stable
 * (mpki uses the same 4-decimal format as the CSV), so sweeps and CI can
 * diff the output byte for byte.
 */
void printCellsJson(std::ostream &os, const SuiteResults &results);

/**
 * One-line wall-clock summary of a suite run: cell count, simulated
 * conditional branches, throughput and the worker count used.  Reads
 * SuiteResults::wallSeconds — the elapsed time runSuite itself recorded
 * — so the summary, the metrics export and the sweep sidecar all report
 * the same measurement.
 */
void printRunSummary(std::ostream &os, const SuiteResults &results,
                     unsigned jobs);

} // namespace imli

#endif // IMLI_SRC_SIM_REPORT_HH
