#include "src/sim/pipeline_simulator.hh"

#include <stdexcept>
#include <string>
#include <vector>

#include "src/obs/phase_series.hh"
#include "src/obs/trace_event.hh"

namespace imli
{

PipelineSimulator::PipelineSimulator(ConditionalPredictor &predictor,
                                     const SimOptions &options)
    : pred(predictor), opts(options)
{
    if (!pred.supportsSpeculation())
        throw std::invalid_argument(
            "pipeline simulation needs the speculation contract, which "
            "predictor \"" + pred.name() + "\" does not implement");
    // The engine boundary enforces the depth bound, not just the CLIs:
    // beyond it the commit-sandwich restores could outrun the smallest
    // history buffer in the zoo and silently corrupt state in Release.
    if (opts.updateDelay > kMaxSpeculationDepth)
        throw std::invalid_argument(
            "updateDelay " + std::to_string(opts.updateDelay) +
            " exceeds the supported window depth " +
            std::to_string(kMaxSpeculationDepth));
    pred.prepareSpeculation(opts.updateDelay + 1);
    if (opts.metrics != nullptr) {
        // One bucket per possible squash depth [0, window size], plus
        // the clamp bucket the Linear kind always reserves.
        obsSquashDepth.sink = opts.metrics->histogram(
            "pipeline/squash_depth", obs::Histogram::Kind::Linear,
            kMaxSpeculationDepth + 2);
    }
}

void
PipelineSimulator::fetch(const BranchRecord &rec, std::uint64_t pos)
{
    Inflight entry;
    entry.rec = rec;
    entry.pos = pos;
    entry.conditional = isConditional(rec.type);
    if (opts.traceEvents != nullptr)
        opts.traceEvents->emit("fetch",
                               "\"pc\": " + std::to_string(rec.pc) +
                                   ", \"pos\": " + std::to_string(pos));
    if (entry.conditional) {
        entry.pred = pred.predict(rec.pc);
        entry.cp = pred.checkpoint();
        pred.speculate(rec.pc, entry.pred, rec.target);
        if (opts.traceEvents != nullptr)
            opts.traceEvents->emit(
                "predict", "\"pc\": " + std::to_string(rec.pc) +
                               ", \"pred\": " +
                               (entry.pred ? "true" : "false"));
    } else {
        // Non-conditional control flow shifts history at fetch, exactly
        // as in the immediate engine; it never mispredicts in this model,
        // so no checkpoint is needed — a squash of an older conditional
        // rewinds its push and the replay repeats it.
        pred.trackOtherInst(rec.pc, rec.type, rec.taken, rec.target);
    }
    window.push_back(entry);
}

void
PipelineSimulator::commitUntil(std::size_t target)
{
    // One front checkpoint serves the whole burst: a correctly predicted
    // commit leaves the history buffer bits untouched, so the next
    // commit's backward restore lands exactly where the old per-commit
    // restore(front); restore(cp) round trip did (see the file header
    // for the teleport argument).  Taken lazily — an all-non-conditional
    // burst never touches predictor state at all.
    bool have_front = false;
    SpecCheckpoint front;

    while (window.size() > target) {
        const Inflight entry = window.front();
        window.pop_front();
        ++pipeStats.commits;

        const bool counted = entry.pos >= opts.warmupBranches;
        if (!entry.conditional) {
            // No predictor state moves (trackOtherInst ran at fetch), so
            // the burst continues under the same hoisted front.
            if (counted) {
                simResult.instructions += entry.rec.instsBefore + 1;
                if (opts.phase != nullptr)
                    opts.phase->onRecord(false, false,
                                         entry.rec.instsBefore + 1);
            }
            if (opts.traceEvents != nullptr)
                opts.traceEvents->emit(
                    "commit", "\"pc\": " + std::to_string(entry.rec.pc));
            continue;
        }

        if (!have_front) {
            front = pred.checkpoint();
            have_front = true;
        }

        // Commit sandwich: train at the branch's fetch-time history view.
        pred.restore(entry.cp);
        (void)pred.predict(entry.rec.pc); // re-derive predict/update pairing
        pred.update(entry.rec.pc, entry.rec.taken, entry.rec.target);

        if (counted) {
            ++simResult.conditionals;
            if (entry.pred != entry.rec.taken) {
                ++simResult.mispredictions;
                if (opts.collectPerPc)
                    ++simResult.perPcMispredictions[entry.rec.pc];
            }
            simResult.instructions += entry.rec.instsBefore + 1;
            if (opts.phase != nullptr)
                opts.phase->onRecord(true, entry.pred != entry.rec.taken,
                                     entry.rec.instsBefore + 1);
        }
        if (opts.traceEvents != nullptr)
            opts.traceEvents->emit(
                "commit",
                "\"pc\": " + std::to_string(entry.rec.pc) +
                    ", \"taken\": " +
                    (entry.rec.taken ? "true" : "false") +
                    ", \"mispredicted\": " +
                    (entry.pred != entry.rec.taken ? "true" : "false"));

        if (entry.pred == entry.rec.taken) {
            // Correct: stay at the commit point.  The burst's next
            // backward restore (or the final forward restore below)
            // teleports from here exactly.
            continue;
        }

        // Mispredict: update() already repaired the history (restore to
        // the fetch point + push of the resolved outcome).  Everything
        // younger in the window was fetched in the wrong-path shadow:
        // squash it and re-fetch the same records — the trace is the
        // correct path.  The hoisted front is now stale (its forward walk
        // would replay the squashed speculative bits), so drop it; the
        // replayed fetches rebuild the front, and the next conditional
        // commit re-checkpoints.
        have_front = false;
        ++pipeStats.squashes;
        pred.squashSpeculation();
        obsSquashDepth.record(window.size());
        if (opts.traceEvents != nullptr)
            opts.traceEvents->emit(
                "squash", "\"pc\": " + std::to_string(entry.rec.pc) +
                              ", \"depth\": " +
                              std::to_string(window.size()));
        std::vector<Inflight> shadow(window.begin(), window.end());
        window.clear();
        for (const Inflight &again : shadow) {
            fetch(again.rec, again.pos);
            ++pipeStats.replays;
        }
    }

    // End of burst: return to the fetch front once, for the whole batch.
    if (have_front) {
        pred.restore(front);
        if (opts.traceEvents != nullptr)
            opts.traceEvents->emit("restore", "");
    }
}

void
PipelineSimulator::onRecord(const BranchRecord &rec)
{
    fetch(rec, fetchPos++);
    commitUntil(opts.updateDelay);
}

void
PipelineSimulator::drain()
{
    commitUntil(0);
}

} // namespace imli
