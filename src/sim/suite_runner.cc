#include "src/sim/suite_runner.hh"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "src/predictors/zoo.hh"

namespace imli
{

const SuiteCell &
SuiteResults::at(const std::string &benchmark,
                 const std::string &config) const
{
    for (const SuiteCell &cell : cells)
        if (cell.benchmark == benchmark && cell.config == config)
            return cell;
    throw std::out_of_range("no cell for " + benchmark + " / " + config);
}

double
SuiteResults::averageMpki(const std::string &config,
                          const std::string &suite) const
{
    double total = 0.0;
    std::size_t count = 0;
    for (const SuiteCell &cell : cells) {
        if (cell.config != config)
            continue;
        if (!suite.empty() && cell.suite != suite)
            continue;
        total += cell.mpki;
        ++count;
    }
    return count == 0 ? 0.0 : total / static_cast<double>(count);
}

std::vector<std::string>
SuiteResults::rankByDelta(const std::string &config_a,
                          const std::string &config_b) const
{
    struct Ranked
    {
        std::string name;
        double delta;
    };
    std::vector<Ranked> ranked;
    for (const std::string &name : benchmarkNames()) {
        const double delta =
            std::abs(at(name, config_a).mpki - at(name, config_b).mpki);
        ranked.push_back({name, delta});
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const Ranked &a, const Ranked &b) {
                  return a.delta > b.delta;
              });
    std::vector<std::string> names;
    names.reserve(ranked.size());
    for (const Ranked &r : ranked)
        names.push_back(r.name);
    return names;
}

std::vector<std::string>
SuiteResults::benchmarkNames() const
{
    std::vector<std::string> names;
    for (const SuiteCell &cell : cells) {
        if (names.empty() || names.back() != cell.benchmark) {
            bool seen = false;
            for (const auto &n : names)
                if (n == cell.benchmark)
                    seen = true;
            if (!seen)
                names.push_back(cell.benchmark);
        }
    }
    return names;
}

SuiteResults
runSuite(const std::vector<BenchmarkSpec> &benchmarks,
         const std::vector<std::string> &configs,
         const SuiteRunOptions &options)
{
    SuiteResults results;
    results.configs = configs;
    results.cells.reserve(benchmarks.size() * configs.size());

    for (const BenchmarkSpec &spec : benchmarks) {
        const Trace trace = generateTrace(spec, options.branchesPerTrace);
        std::size_t done = 0;
        for (const std::string &config : configs) {
            PredictorPtr predictor = makePredictor(config);
            const SimResult r = simulate(*predictor, trace);
            SuiteCell cell;
            cell.benchmark = spec.name;
            cell.suite = spec.suite;
            cell.config = config;
            cell.mpki = r.mpki();
            cell.mispredictions = r.mispredictions;
            cell.conditionals = r.conditionals;
            cell.instructions = r.instructions;
            results.cells.push_back(std::move(cell));
            if (options.progress)
                options.progress(spec.name, ++done);
        }
    }
    return results;
}

std::size_t
defaultBranchesPerTrace()
{
    if (const char *env = std::getenv("IMLI_BRANCHES")) {
        char *end = nullptr;
        const unsigned long long v = std::strtoull(env, &end, 10);
        if (end && *end == '\0' && v >= 1000)
            return static_cast<std::size_t>(v);
    }
    return 200000;
}

} // namespace imli
