#include "src/sim/suite_runner.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "src/predictors/zoo.hh"
#include "src/util/thread_pool.hh"

namespace imli
{

const SuiteCell &
SuiteResults::at(const std::string &benchmark,
                 const std::string &config) const
{
    for (const SuiteCell &cell : cells)
        if (cell.benchmark == benchmark && cell.config == config)
            return cell;
    throw std::out_of_range("no cell for " + benchmark + " / " + config);
}

double
SuiteResults::averageMpki(const std::string &config,
                          const std::string &suite) const
{
    double total = 0.0;
    std::size_t count = 0;
    for (const SuiteCell &cell : cells) {
        if (cell.config != config)
            continue;
        if (!suite.empty() && cell.suite != suite)
            continue;
        total += cell.mpki;
        ++count;
    }
    return count == 0 ? 0.0 : total / static_cast<double>(count);
}

std::vector<std::string>
SuiteResults::rankByDelta(const std::string &config_a,
                          const std::string &config_b) const
{
    struct Ranked
    {
        std::string name;
        double delta;
    };
    std::vector<Ranked> ranked;
    for (const std::string &name : benchmarkNames()) {
        const double delta =
            std::abs(at(name, config_a).mpki - at(name, config_b).mpki);
        ranked.push_back({name, delta});
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const Ranked &a, const Ranked &b) {
                  return a.delta > b.delta;
              });
    std::vector<std::string> names;
    names.reserve(ranked.size());
    for (const Ranked &r : ranked)
        names.push_back(r.name);
    return names;
}

void
SuiteResults::merge(const SuiteResults &shard)
{
    if (configs.empty() && cells.empty()) {
        *this = shard;
        return;
    }
    if (shard.configs != configs)
        throw std::invalid_argument(
            "SuiteResults::merge: shards ran different config lists");
    cells.insert(cells.end(), shard.cells.begin(), shard.cells.end());
}

std::vector<std::string>
SuiteResults::benchmarkNames() const
{
    std::vector<std::string> names;
    for (const SuiteCell &cell : cells) {
        if (names.empty() || names.back() != cell.benchmark) {
            bool seen = false;
            for (const auto &n : names)
                if (n == cell.benchmark)
                    seen = true;
            if (!seen)
                names.push_back(cell.benchmark);
        }
    }
    return names;
}

namespace
{

SuiteCell
runCell(const BenchmarkSpec &spec, const Trace &trace,
        const std::string &config)
{
    PredictorPtr predictor = makePredictor(config);
    const SimResult r = simulate(*predictor, trace);
    SuiteCell cell;
    cell.benchmark = spec.name;
    cell.suite = spec.suite;
    cell.config = config;
    cell.mpki = r.mpki();
    cell.mispredictions = r.mispredictions;
    cell.conditionals = r.conditionals;
    cell.instructions = r.instructions;
    return cell;
}

/** Per-benchmark state shared by the workers of a parallel run. */
struct BenchShard
{
    std::once_flag traceOnce;
    std::unique_ptr<const Trace> trace;
    std::atomic<std::size_t> remainingConfigs{0};
    std::size_t progressDone = 0; //!< guarded by the progress mutex
};

SuiteResults
runSuiteParallel(const std::vector<BenchmarkSpec> &benchmarks,
                 const std::vector<std::string> &configs,
                 const SuiteRunOptions &options, unsigned jobs)
{
    SuiteResults results;
    results.configs = configs;
    const std::size_t nconfigs = configs.size();
    results.cells.resize(benchmarks.size() * nconfigs);

    std::vector<BenchShard> shards(benchmarks.size());
    for (BenchShard &s : shards)
        s.remainingConfigs.store(nconfigs, std::memory_order_relaxed);

    std::mutex progressMutex;
    ThreadPool pool(jobs);
    pool.parallelFor(results.cells.size(), [&](std::size_t i) {
        const std::size_t b = i / nconfigs;
        const std::size_t c = i % nconfigs;
        BenchShard &shard = shards[b];
        std::call_once(shard.traceOnce, [&] {
            shard.trace = std::make_unique<const Trace>(
                generateTrace(benchmarks[b], options.branchesPerTrace));
        });
        results.cells[i] = runCell(benchmarks[b], *shard.trace, configs[c]);
        // Last cell of a benchmark frees its trace, bounding live traces
        // to roughly the worker count.
        const std::size_t left =
            shard.remainingConfigs.fetch_sub(1, std::memory_order_acq_rel) -
            1;
        if (left == 0)
            shard.trace.reset();
        if (options.progress) {
            // Count under the mutex so each benchmark's reported count is
            // strictly increasing, matching the serial path's ++done.
            std::lock_guard<std::mutex> lock(progressMutex);
            options.progress(benchmarks[b].name, ++shard.progressDone);
        }
    });
    return results;
}

} // anonymous namespace

SuiteResults
runSuite(const std::vector<BenchmarkSpec> &benchmarks,
         const std::vector<std::string> &configs,
         const SuiteRunOptions &options)
{
    const unsigned jobs =
        options.jobs == 0 ? ThreadPool::hardwareThreads() : options.jobs;
    if (jobs > 1)
        return runSuiteParallel(benchmarks, configs, options, jobs);

    SuiteResults results;
    results.configs = configs;
    results.cells.reserve(benchmarks.size() * configs.size());

    for (const BenchmarkSpec &spec : benchmarks) {
        const Trace trace = generateTrace(spec, options.branchesPerTrace);
        std::size_t done = 0;
        for (const std::string &config : configs) {
            results.cells.push_back(runCell(spec, trace, config));
            if (options.progress)
                options.progress(spec.name, ++done);
        }
    }
    return results;
}

std::size_t
defaultBranchesPerTrace()
{
    if (const char *env = std::getenv("IMLI_BRANCHES")) {
        char *end = nullptr;
        const unsigned long long v = std::strtoull(env, &end, 10);
        if (end && *end == '\0' && v >= 1000)
            return static_cast<std::size_t>(v);
    }
    return 200000;
}

unsigned
defaultJobs()
{
    if (const char *env = std::getenv("IMLI_JOBS"))
        return ThreadPool::parseJobs(env, 1);
    return 1;
}

} // namespace imli
