#include "src/sim/suite_runner.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "src/corpus/trace_corpus.hh"
#include "src/obs/metrics.hh"
#include "src/obs/phase_series.hh"
#include "src/predictors/zoo.hh"
#include "src/util/cli.hh"
#include "src/util/thread_pool.hh"

namespace imli
{

const SuiteCell &
SuiteResults::at(const std::string &benchmark,
                 const std::string &config) const
{
    for (const SuiteCell &cell : cells)
        if (cell.benchmark == benchmark && cell.config == config)
            return cell;
    throw std::out_of_range("no cell for " + benchmark + " / " + config);
}

double
SuiteResults::averageMpki(const std::string &config,
                          const std::string &suite) const
{
    double total = 0.0;
    std::size_t count = 0;
    for (const SuiteCell &cell : cells) {
        if (cell.config != config)
            continue;
        if (!suite.empty() && cell.suite != suite)
            continue;
        total += cell.mpki;
        ++count;
    }
    return count == 0 ? 0.0 : total / static_cast<double>(count);
}

std::vector<std::string>
SuiteResults::rankByDelta(const std::string &config_a,
                          const std::string &config_b) const
{
    struct Ranked
    {
        std::string name;
        double delta;
    };
    std::vector<Ranked> ranked;
    for (const std::string &name : benchmarkNames()) {
        const double delta =
            std::abs(at(name, config_a).mpki - at(name, config_b).mpki);
        ranked.push_back({name, delta});
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const Ranked &a, const Ranked &b) {
                  return a.delta > b.delta;
              });
    std::vector<std::string> names;
    names.reserve(ranked.size());
    for (const Ranked &r : ranked)
        names.push_back(r.name);
    return names;
}

void
SuiteResults::merge(const SuiteResults &shard)
{
    if (configs.empty() && cells.empty()) {
        *this = shard;
        return;
    }
    if (shard.configs != configs)
        throw std::invalid_argument(
            "SuiteResults::merge: shards ran different config lists");
    cells.insert(cells.end(), shard.cells.begin(), shard.cells.end());
}

std::vector<std::string>
SuiteResults::benchmarkNames() const
{
    std::vector<std::string> names;
    for (const SuiteCell &cell : cells) {
        if (names.empty() || names.back() != cell.benchmark) {
            bool seen = false;
            for (const auto &n : names)
                if (n == cell.benchmark)
                    seen = true;
            if (!seen)
                names.push_back(cell.benchmark);
        }
    }
    return names;
}

namespace
{

/**
 * Stream one benchmark through every config in a single pass and write
 * its cells into their fixed benchmark-major slots.  The generator is
 * the only trace state alive: one chunk at a time, never a full trace.
 */
void
runBenchmark(const BenchmarkSpec &spec,
             const std::vector<std::string> &configs,
             const SuiteRunOptions &options, SuiteCell *cells,
             obs::CellObs *obsSlice)
{
    std::vector<PredictorPtr> predictors;
    std::vector<SimOptions> simOptions;
    predictors.reserve(configs.size());
    simOptions.reserve(configs.size());
    for (const std::string &config : configs) {
        const ParsedSpec parsed = parseSpec(config);
        predictors.push_back(makePredictor(parsed));
        // Per-config engine selection: run-level options are the base, a
        // sim.delay spec override pins the config (see applySpecDelay).
        simOptions.push_back(applySpecDelay(parsed, options.sim));
    }

    // Observation wiring, before the first predict: each cell gets its
    // own scope slot (lock-free — this worker owns the whole slice).
    if (obsSlice != nullptr) {
        for (std::size_t c = 0; c < configs.size(); ++c) {
            obs::CellObs &oc = obsSlice[c];
            oc.benchmark = spec.name;
            oc.config = configs[c];
            predictors[c]->attachProbes(oc.scope);
            if (options.metrics->phaseInterval > 0)
                oc.phase = std::make_unique<obs::PhaseRecorder>(
                    options.metrics->phaseInterval, &oc.scope);
            simOptions[c].metrics = &oc.scope;
            simOptions[c].phase = oc.phase.get();
            simOptions[c].traceEvents = options.traceEvents;
        }
    } else if (options.traceEvents != nullptr) {
        for (SimOptions &so : simOptions)
            so.traceEvents = options.traceEvents;
    }

    const auto start = std::chrono::steady_clock::now();

    // The corpus factory: generator for synthetic specs; recorded traces
    // are decoded once per process and shared (falling back to streaming
    // file readers when oversized).  Either way the stream arrives chunk
    // by chunk, so the memory model below is backend-independent.
    const std::unique_ptr<BranchSource> source = TraceCorpus::open(
        spec, options.branchesPerTrace, options.chunkBranches);
    const std::vector<SimResult> results =
        simulateMany(predictors, *source, simOptions);

    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    for (std::size_t c = 0; c < configs.size(); ++c) {
        SuiteCell &cell = cells[c];
        cell.benchmark = spec.name;
        cell.suite = spec.suite;
        cell.config = configs[c];
        cell.mpki = results[c].mpki();
        cell.mispredictions = results[c].mispredictions;
        cell.conditionals = results[c].conditionals;
        cell.instructions = results[c].instructions;
        cell.seconds = elapsed;
        if (obsSlice != nullptr) {
            obsSlice[c].wallSeconds = elapsed;
            if (obsSlice[c].phase != nullptr)
                obsSlice[c].phase->finish();
        }
    }
}

} // anonymous namespace

SuiteResults
runSuite(const std::vector<BenchmarkSpec> &benchmarks,
         const std::vector<std::string> &configs,
         const SuiteRunOptions &options)
{
    const unsigned jobs =
        options.jobs == 0 ? ThreadPool::hardwareThreads() : options.jobs;

    // Fail on a broken spec (no kernels, missing / corrupt trace file)
    // before any simulation runs, not from a worker thread mid-suite.
    for (const BenchmarkSpec &spec : benchmarks)
        validateBenchmark(spec);

    SuiteResults results;
    results.configs = configs;
    const std::size_t nconfigs = configs.size();
    results.cells.resize(benchmarks.size() * nconfigs);

    // Fixed per-cell observation slots, sized before the fan-out so no
    // worker ever reallocates shared storage (see MetricsRegistry).
    if (options.metrics != nullptr)
        options.metrics->resize(benchmarks.size() * nconfigs);
    const auto obsSlice = [&](std::size_t b) -> obs::CellObs * {
        return options.metrics == nullptr
                   ? nullptr
                   : &options.metrics->cell(b * nconfigs);
    };

    // The single-pass engine completes a benchmark's configs together, so
    // progress is reported per benchmark: configs-many calls in a row.
    const auto reportBenchmark = [&](const BenchmarkSpec &spec) {
        for (std::size_t done = 1; done <= nconfigs; ++done)
            options.progress(spec.name, done);
    };

    if (benchmarks.empty())
        return results;

    const auto runStart = std::chrono::steady_clock::now();
    const auto finish = [&]() {
        results.wallSeconds = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() -
                                  runStart)
                                  .count();
    };

    if (jobs <= 1) {
        for (std::size_t b = 0; b < benchmarks.size(); ++b) {
            runBenchmark(benchmarks[b], configs, options,
                         results.cells.data() + b * nconfigs, obsSlice(b));
            if (options.progress)
                reportBenchmark(benchmarks[b]);
        }
        if (options.metrics != nullptr)
            options.metrics->setGauge("threadpool/queue_high_water", 0.0);
        finish();
        return results;
    }

    // Benchmark-level fan-out: each task streams one benchmark through
    // all configs, so at most ~jobs chunk buffers are resident at once.
    // More workers than benchmarks would never get a task.
    std::mutex progressMutex;
    ThreadPool pool(static_cast<unsigned>(
        std::min<std::size_t>(jobs, benchmarks.size())));
    pool.parallelFor(benchmarks.size(), [&](std::size_t b) {
        runBenchmark(benchmarks[b], configs, options,
                     results.cells.data() + b * nconfigs, obsSlice(b));
        if (options.progress) {
            std::lock_guard<std::mutex> lock(progressMutex);
            reportBenchmark(benchmarks[b]);
        }
    });
    if (options.metrics != nullptr)
        options.metrics->setGauge(
            "threadpool/queue_high_water",
            static_cast<double>(pool.queueHighWater()));
    finish();
    return results;
}

std::size_t
parseBranchCount(const std::string &text, const std::string &what)
{
    std::uint64_t v = 0;
    if (!parseDecimalU64(text, v))
        throw std::runtime_error(
            what + ": invalid branch count \"" + text +
            "\" (expected a plain decimal integer >= 1000)");
    if (v > std::numeric_limits<std::size_t>::max())
        throw std::runtime_error(
            what + ": branch count " + text + " is out of range");
    if (v < 1000)
        throw std::runtime_error(
            what + ": branch count " + text + " is too small (minimum 1000)");
    return static_cast<std::size_t>(v);
}

std::size_t
defaultBranchesPerTrace()
{
    const char *env = std::getenv("IMLI_BRANCHES");
    if (!env)
        return 200000;
    return parseBranchCount(env, "IMLI_BRANCHES");
}

unsigned
defaultJobs()
{
    if (const char *env = std::getenv("IMLI_JOBS"))
        return ThreadPool::parseJobsStrict(env, "IMLI_JOBS");
    return 1;
}

void
applyPipelineFlags(const CommandLine &cli, SimOptions &sim)
{
    cli.rejectValuedBool("pipeline");
    if (cli.has("update-delay")) {
        const std::int64_t delay = cli.getInt("update-delay");
        if (delay < 0 ||
            delay > static_cast<std::int64_t>(kMaxSpeculationDepth))
            throw std::runtime_error(
                "--update-delay: need a value in [0, " +
                std::to_string(kMaxSpeculationDepth) + "]");
        sim.updateDelay = static_cast<unsigned>(delay);
        sim.pipeline = true;
    } else if (cli.getBool("pipeline")) {
        sim.pipeline = true;
    }
}

void
applyPrefetchFlag(const CommandLine &cli, SimOptions &sim)
{
    if (cli.has("prefetch")) {
        const std::int64_t n = cli.getInt("prefetch");
        if (n < 0 || n > static_cast<std::int64_t>(kMaxPrefetchLookahead))
            throw std::runtime_error(
                "--prefetch: need a value in [0, " +
                std::to_string(kMaxPrefetchLookahead) + "]");
        sim.prefetchLookahead = static_cast<unsigned>(n);
    }
}

} // namespace imli
