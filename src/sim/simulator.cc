#include "src/sim/simulator.hh"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "src/obs/phase_series.hh"
#include "src/predictors/zoo.hh"
#include "src/sim/pipeline_simulator.hh"

namespace imli
{

double
SimResult::mpki() const
{
    if (instructions == 0)
        return 0.0;
    return 1000.0 * static_cast<double>(mispredictions) /
           static_cast<double>(instructions);
}

double
SimResult::accuracy() const
{
    if (conditionals == 0)
        return 1.0;
    return 1.0 - static_cast<double>(mispredictions) /
                     static_cast<double>(conditionals);
}

std::vector<std::pair<std::uint64_t, std::uint64_t>>
SimResult::topOffenders(std::size_t n) const
{
    std::vector<std::pair<std::uint64_t, std::uint64_t>> all(
        perPcMispredictions.begin(), perPcMispredictions.end());
    // Count descending with a PC tie-break: a count-only comparator under
    // std::sort leaves tied PCs in implementation-defined order, so the
    // --offenders report would differ across standard libraries.
    std::sort(all.begin(), all.end(),
              [](const auto &a, const auto &b) {
                  if (a.second != b.second)
                      return a.second > b.second;
                  return a.first < b.first;
              });
    if (all.size() > n)
        all.resize(n);
    return all;
}

namespace
{

/**
 * Replay one chunk through one predictor.  @p seen is the stream position
 * of the chunk's first record; shared between simulate and simulateMany
 * so the two paths cannot drift.
 */
void
replayChunk(ConditionalPredictor &predictor, const BranchSpan &chunk,
            std::uint64_t seen, const SimOptions &options, SimResult &result)
{
    const std::size_t lookahead = options.prefetchLookahead;
    for (std::size_t k = 0; k < chunk.count; ++k) {
        const BranchRecord &rec = chunk[k];
        // Batched lookups: hint the table lines of a record a small
        // window ahead, so its fetches overlap the predict/update work
        // of the records in between.  A hint only — never a result
        // change (see ConditionalPredictor::prefetch).
        if (lookahead > 0 && k + lookahead < chunk.count) {
            const BranchRecord &ahead = chunk[k + lookahead];
            if (isConditional(ahead.type))
                predictor.prefetch(ahead.pc);
        }
        const bool counted = seen >= options.warmupBranches;
        if (isConditional(rec.type)) {
            const bool pred = predictor.predict(rec.pc);
            predictor.update(rec.pc, rec.taken, rec.target);
            if (counted) {
                ++result.conditionals;
                if (pred != rec.taken) {
                    ++result.mispredictions;
                    if (options.collectPerPc)
                        ++result.perPcMispredictions[rec.pc];
                }
                if (options.phase != nullptr)
                    options.phase->onRecord(true, pred != rec.taken,
                                            rec.instsBefore + 1);
            }
        } else {
            predictor.trackOtherInst(rec.pc, rec.type, rec.taken,
                                     rec.target);
            if (counted && options.phase != nullptr)
                options.phase->onRecord(false, false, rec.instsBefore + 1);
        }
        if (counted)
            result.instructions += rec.instsBefore + 1;
        ++seen;
    }
}

} // anonymous namespace

SimOptions
applySpecDelay(const ParsedSpec &parsed, SimOptions base)
{
    if (hasSpecUpdateDelay(parsed)) {
        base.updateDelay = specUpdateDelay(parsed);
        base.pipeline = true;
    }
    if (hasSpecPrefetch(parsed))
        base.prefetchLookahead = specPrefetch(parsed);
    return base;
}

SimResult
simulate(ConditionalPredictor &predictor, BranchSource &source,
         const SimOptions &options)
{
    if (options.usePipeline()) {
        PipelineSimulator pipeline(predictor, options);
        for (BranchSpan chunk = source.nextChunk(); !chunk.empty();
             chunk = source.nextChunk()) {
            for (const BranchRecord &rec : chunk)
                pipeline.onRecord(rec);
        }
        pipeline.drain();
        SimResult result = pipeline.result();
        result.traceName = source.name();
        result.predictorName = predictor.name();
        return result;
    }

    SimResult result;
    result.traceName = source.name();
    result.predictorName = predictor.name();

    std::uint64_t seen = 0;
    for (BranchSpan chunk = source.nextChunk(); !chunk.empty();
         chunk = source.nextChunk()) {
        replayChunk(predictor, chunk, seen, options, result);
        seen += chunk.count;
    }
    return result;
}

SimResult
simulate(ConditionalPredictor &predictor, const Trace &trace,
         const SimOptions &options)
{
    TraceBranchSource source(trace);
    return simulate(predictor, source, options);
}

std::vector<SimResult>
simulateMany(const std::vector<ConditionalPredictor *> &predictors,
             BranchSource &source, const std::vector<SimOptions> &options)
{
    if (options.size() != predictors.size())
        throw std::invalid_argument(
            "simulateMany: need exactly one SimOptions per predictor");

    std::vector<SimResult> results(predictors.size());
    // One pipeline driver per pipelined predictor; immediate predictors
    // keep the replayChunk fast path.  Either way the stream is produced
    // once and every predictor walks the same records.
    std::vector<std::unique_ptr<PipelineSimulator>> pipes(predictors.size());
    for (std::size_t p = 0; p < predictors.size(); ++p) {
        results[p].traceName = source.name();
        results[p].predictorName = predictors[p]->name();
        if (options[p].usePipeline())
            pipes[p] = std::make_unique<PipelineSimulator>(*predictors[p],
                                                           options[p]);
    }

    std::uint64_t seen = 0;
    for (BranchSpan chunk = source.nextChunk(); !chunk.empty();
         chunk = source.nextChunk()) {
        for (std::size_t p = 0; p < predictors.size(); ++p) {
            if (pipes[p]) {
                for (const BranchRecord &rec : chunk)
                    pipes[p]->onRecord(rec);
            } else {
                replayChunk(*predictors[p], chunk, seen, options[p],
                            results[p]);
            }
        }
        seen += chunk.count;
    }
    for (std::size_t p = 0; p < predictors.size(); ++p) {
        if (pipes[p]) {
            pipes[p]->drain();
            // Move the whole graded result (the simulator is done with
            // it) and keep the names set above — robust against new
            // SimResult fields and free of per-PC map copies.
            SimResult graded = std::move(pipes[p]->result());
            graded.traceName = std::move(results[p].traceName);
            graded.predictorName = std::move(results[p].predictorName);
            results[p] = std::move(graded);
        }
    }
    return results;
}

std::vector<SimResult>
simulateMany(const std::vector<ConditionalPredictor *> &predictors,
             BranchSource &source, const SimOptions &options)
{
    return simulateMany(predictors, source,
                        std::vector<SimOptions>(predictors.size(), options));
}

std::vector<SimResult>
simulateMany(const std::vector<PredictorPtr> &predictors,
             BranchSource &source, const SimOptions &options)
{
    std::vector<ConditionalPredictor *> raw;
    raw.reserve(predictors.size());
    for (const PredictorPtr &p : predictors)
        raw.push_back(p.get());
    return simulateMany(raw, source, options);
}

std::vector<SimResult>
simulateMany(const std::vector<PredictorPtr> &predictors,
             BranchSource &source, const std::vector<SimOptions> &options)
{
    std::vector<ConditionalPredictor *> raw;
    raw.reserve(predictors.size());
    for (const PredictorPtr &p : predictors)
        raw.push_back(p.get());
    return simulateMany(raw, source, options);
}

} // namespace imli
