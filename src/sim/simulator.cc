#include "src/sim/simulator.hh"

#include <algorithm>

namespace imli
{

double
SimResult::mpki() const
{
    if (instructions == 0)
        return 0.0;
    return 1000.0 * static_cast<double>(mispredictions) /
           static_cast<double>(instructions);
}

double
SimResult::accuracy() const
{
    if (conditionals == 0)
        return 1.0;
    return 1.0 - static_cast<double>(mispredictions) /
                     static_cast<double>(conditionals);
}

std::vector<std::pair<std::uint64_t, std::uint64_t>>
SimResult::topOffenders(std::size_t n) const
{
    std::vector<std::pair<std::uint64_t, std::uint64_t>> all(
        perPcMispredictions.begin(), perPcMispredictions.end());
    std::sort(all.begin(), all.end(),
              [](const auto &a, const auto &b) {
                  return a.second > b.second;
              });
    if (all.size() > n)
        all.resize(n);
    return all;
}

SimResult
simulate(ConditionalPredictor &predictor, const Trace &trace,
         const SimOptions &options)
{
    SimResult result;
    result.traceName = trace.name();
    result.predictorName = predictor.name();

    std::uint64_t seen = 0;
    for (const BranchRecord &rec : trace.branches()) {
        const bool counted = seen >= options.warmupBranches;
        if (isConditional(rec.type)) {
            const bool pred = predictor.predict(rec.pc);
            predictor.update(rec.pc, rec.taken, rec.target);
            if (counted) {
                ++result.conditionals;
                if (pred != rec.taken) {
                    ++result.mispredictions;
                    if (options.collectPerPc)
                        ++result.perPcMispredictions[rec.pc];
                }
            }
        } else {
            predictor.trackOtherInst(rec.pc, rec.type, rec.taken,
                                     rec.target);
        }
        if (counted)
            result.instructions += rec.instsBefore + 1;
        ++seen;
    }
    return result;
}

} // namespace imli
