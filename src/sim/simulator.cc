#include "src/sim/simulator.hh"

#include <algorithm>

namespace imli
{

double
SimResult::mpki() const
{
    if (instructions == 0)
        return 0.0;
    return 1000.0 * static_cast<double>(mispredictions) /
           static_cast<double>(instructions);
}

double
SimResult::accuracy() const
{
    if (conditionals == 0)
        return 1.0;
    return 1.0 - static_cast<double>(mispredictions) /
                     static_cast<double>(conditionals);
}

std::vector<std::pair<std::uint64_t, std::uint64_t>>
SimResult::topOffenders(std::size_t n) const
{
    std::vector<std::pair<std::uint64_t, std::uint64_t>> all(
        perPcMispredictions.begin(), perPcMispredictions.end());
    std::sort(all.begin(), all.end(),
              [](const auto &a, const auto &b) {
                  return a.second > b.second;
              });
    if (all.size() > n)
        all.resize(n);
    return all;
}

namespace
{

/**
 * Replay one chunk through one predictor.  @p seen is the stream position
 * of the chunk's first record; shared between simulate and simulateMany
 * so the two paths cannot drift.
 */
void
replayChunk(ConditionalPredictor &predictor, const BranchSpan &chunk,
            std::uint64_t seen, const SimOptions &options, SimResult &result)
{
    for (const BranchRecord &rec : chunk) {
        const bool counted = seen >= options.warmupBranches;
        if (isConditional(rec.type)) {
            const bool pred = predictor.predict(rec.pc);
            predictor.update(rec.pc, rec.taken, rec.target);
            if (counted) {
                ++result.conditionals;
                if (pred != rec.taken) {
                    ++result.mispredictions;
                    if (options.collectPerPc)
                        ++result.perPcMispredictions[rec.pc];
                }
            }
        } else {
            predictor.trackOtherInst(rec.pc, rec.type, rec.taken,
                                     rec.target);
        }
        if (counted)
            result.instructions += rec.instsBefore + 1;
        ++seen;
    }
}

} // anonymous namespace

SimResult
simulate(ConditionalPredictor &predictor, BranchSource &source,
         const SimOptions &options)
{
    SimResult result;
    result.traceName = source.name();
    result.predictorName = predictor.name();

    std::uint64_t seen = 0;
    for (BranchSpan chunk = source.nextChunk(); !chunk.empty();
         chunk = source.nextChunk()) {
        replayChunk(predictor, chunk, seen, options, result);
        seen += chunk.count;
    }
    return result;
}

SimResult
simulate(ConditionalPredictor &predictor, const Trace &trace,
         const SimOptions &options)
{
    TraceBranchSource source(trace);
    return simulate(predictor, source, options);
}

std::vector<SimResult>
simulateMany(const std::vector<ConditionalPredictor *> &predictors,
             BranchSource &source, const SimOptions &options)
{
    std::vector<SimResult> results(predictors.size());
    for (std::size_t p = 0; p < predictors.size(); ++p) {
        results[p].traceName = source.name();
        results[p].predictorName = predictors[p]->name();
    }

    std::uint64_t seen = 0;
    for (BranchSpan chunk = source.nextChunk(); !chunk.empty();
         chunk = source.nextChunk()) {
        // One generate/decode, N replays: every predictor walks the same
        // span from the same stream position.
        for (std::size_t p = 0; p < predictors.size(); ++p)
            replayChunk(*predictors[p], chunk, seen, options, results[p]);
        seen += chunk.count;
    }
    return results;
}

std::vector<SimResult>
simulateMany(const std::vector<PredictorPtr> &predictors,
             BranchSource &source, const SimOptions &options)
{
    std::vector<ConditionalPredictor *> raw;
    raw.reserve(predictors.size());
    for (const PredictorPtr &p : predictors)
        raw.push_back(p.get());
    return simulateMany(raw, source, options);
}

} // namespace imli
