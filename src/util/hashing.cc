#include "src/util/hashing.hh"

// All hashing helpers are constexpr/inline in the header; this translation
// unit anchors the module in the build graph.
