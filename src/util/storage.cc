#include "src/util/storage.hh"

#include <sstream>

namespace imli
{

void
StorageAccount::add(const std::string &name, std::uint64_t bits)
{
    entries.push_back({name, bits});
}

void
StorageAccount::merge(const std::string &prefix, const StorageAccount &other)
{
    for (const auto &item : other.items())
        entries.push_back({prefix + "/" + item.name, item.bits});
}

std::uint64_t
StorageAccount::totalBits() const
{
    std::uint64_t total = 0;
    for (const auto &item : entries)
        total += item.bits;
    return total;
}

double
StorageAccount::totalKbits() const
{
    return static_cast<double>(totalBits()) / 1024.0;
}

std::string
StorageAccount::toString() const
{
    std::ostringstream os;
    for (const auto &item : entries) {
        os << "  " << item.name << ": " << item.bits << " bits ("
           << (item.bits + 7) / 8 << " bytes)\n";
    }
    os << "  total: " << totalBits() << " bits = " << totalBytes()
       << " bytes = " << totalKbits() << " Kbits\n";
    return os.str();
}

} // namespace imli
