/**
 * @file
 * Minimal command-line flag parsing for bench and example binaries.
 *
 * Supports "--name=value", "--name value" and bare boolean "--name".  A
 * bare "--" ends flag parsing: everything after it is positional, per the
 * usual Unix convention.  Negative numbers work as space-form values
 * ("--bias -0.3"): a lookahead argument that starts with '-' is consumed
 * as the value when it looks numeric, and treated as the next flag
 * otherwise.  This is intentionally tiny; the binaries only need a
 * handful of knobs (trace length, suite subset, CSV output, seeds).
 *
 * Numeric accessors parse strictly: a malformed value ("--branches 10x")
 * throws std::runtime_error naming the flag instead of silently running
 * the wrong experiment with the default.  Defaults apply only when the
 * flag is absent.
 */

#ifndef IMLI_SRC_UTIL_CLI_HH
#define IMLI_SRC_UTIL_CLI_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace imli
{

/**
 * Split a comma-separated flag value into its non-empty tokens
 * ("a,,b" -> {"a", "b"}).  The shared helper behind --configs /
 * --benchmarks style list flags.
 */
std::vector<std::string> splitCommaList(const std::string &csv);

/**
 * Strict non-negative decimal parse shared by every "a typo must fail
 * loudly" surface (spec overrides, sweep dimensions, journal counters,
 * branch counts): digits only, no sign/hex/whitespace, no overflow.
 * Returns false on anything else; callers own the error type/message.
 */
bool parseDecimalU64(const std::string &text, std::uint64_t &value);

/** parseDecimalU64 restricted to values that fit a long long. */
bool parseDecimalLL(const std::string &text, long long &value);

/**
 * Throwing form shared by the spec-override and sweep-dimension
 * grammars: returns the parsed value or throws std::invalid_argument
 * naming @p what (e.g. "override sic.logsize"), so the two grammars
 * cannot drift in what they accept.
 */
long long parseDecimalLLStrict(const std::string &text,
                               const std::string &what);

/** Parsed command line: flag map plus positional arguments. */
class CommandLine
{
  public:
    /** Parse argv; never throws, non-flag arguments become positionals. */
    CommandLine(int argc, const char *const *argv);

    /** True iff --name was present (with or without a value). */
    bool has(const std::string &name) const;

    /** String value of --name, or @p def when absent (last wins). */
    std::string getString(const std::string &name,
                          const std::string &def = "") const;

    /**
     * Every value of a repeatable flag, in command-line order ("--dim a
     * --dim b" yields {"a", "b"}); empty when the flag is absent.
     */
    std::vector<std::string> getList(const std::string &name) const;

    /**
     * Integer value of --name, or @p def when absent.  Throws
     * std::runtime_error when the flag is present but its value is not a
     * plain integer (strict-parse policy, like the IMLI_* env overrides).
     */
    std::int64_t getInt(const std::string &name, std::int64_t def = 0) const;

    /**
     * Double value of --name, or @p def when absent.  Throws
     * std::runtime_error when the flag is present but its value does not
     * parse as a floating-point number.
     */
    double getDouble(const std::string &name, double def = 0.0) const;

    /**
     * Non-negative count flag (trace lengths, iteration counts, window
     * sizes): getInt plus a >= 0 check, so "--branches -5" throws
     * instead of wrapping to 1.8e19 in the caller's size_t cast.
     */
    std::size_t getCount(const std::string &name, std::size_t def = 0) const;

    /** Boolean: present without value or with true/1/yes = true. */
    bool getBool(const std::string &name, bool def = false) const;

    /**
     * Guard for boolean mode switches (--csv, --json, --pipeline): a
     * non-boolean value ("--json out.json") would be silently swallowed
     * by getBool, so it throws std::runtime_error naming the flag and
     * the stray value.  No-op when the flag is absent or carries a
     * recognized boolean spelling (true/1/yes/false/0/no).
     */
    void rejectValuedBool(const std::string &name) const;

    /**
     * Worker-count flag: "--jobs N".  N = 0, "auto" or "max" mean one
     * worker per hardware thread; absent or unparsable yields @p def.
     */
    unsigned getJobs(unsigned def = 1, const std::string &name = "jobs") const;

    const std::vector<std::string> &positionals() const { return positional; }

    const std::string &programName() const { return program; }

  private:
    std::string program;
    std::map<std::string, std::string> flags;
    /** Every flag occurrence in order, for repeatable flags (getList). */
    std::vector<std::pair<std::string, std::string>> occurrences;
    std::vector<std::string> positional;
};

} // namespace imli

#endif // IMLI_SRC_UTIL_CLI_HH
