/**
 * @file
 * Minimal command-line flag parsing for bench and example binaries.
 *
 * Supports "--name=value", "--name value" and bare boolean "--name".
 * Unknown flags are collected so callers can reject or ignore them.  This
 * is intentionally tiny; the binaries only need a handful of knobs
 * (trace length, suite subset, CSV output, seeds).
 */

#ifndef IMLI_SRC_UTIL_CLI_HH
#define IMLI_SRC_UTIL_CLI_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace imli
{

/** Parsed command line: flag map plus positional arguments. */
class CommandLine
{
  public:
    /** Parse argv; never throws, malformed flags become positionals. */
    CommandLine(int argc, const char *const *argv);

    /** True iff --name was present (with or without a value). */
    bool has(const std::string &name) const;

    /** String value of --name, or @p def when absent. */
    std::string getString(const std::string &name,
                          const std::string &def = "") const;

    /** Integer value of --name, or @p def when absent or unparsable. */
    std::int64_t getInt(const std::string &name, std::int64_t def = 0) const;

    /** Double value of --name, or @p def when absent or unparsable. */
    double getDouble(const std::string &name, double def = 0.0) const;

    /** Boolean: present without value or with true/1/yes = true. */
    bool getBool(const std::string &name, bool def = false) const;

    /**
     * Worker-count flag: "--jobs N".  N = 0, "auto" or "max" mean one
     * worker per hardware thread; absent or unparsable yields @p def.
     */
    unsigned getJobs(unsigned def = 1, const std::string &name = "jobs") const;

    const std::vector<std::string> &positionals() const { return positional; }

    const std::string &programName() const { return program; }

  private:
    std::string program;
    std::map<std::string, std::string> flags;
    std::vector<std::string> positional;
};

} // namespace imli

#endif // IMLI_SRC_UTIL_CLI_HH
