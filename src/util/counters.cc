#include "src/util/counters.hh"

// SatCounter and SignedCounter are header-only; this translation unit
// exists to give the module a home for future out-of-line helpers and to
// keep one .cc per header in the build graph.
