/**
 * @file
 * Index and tag hashing helpers shared by all predictor tables.
 *
 * Branch predictor tables are indexed with lossy hashes of (PC, history,
 * auxiliary state).  The exact hash functions matter less than their mixing
 * quality and their determinism; the helpers here follow the conventions of
 * the public CBP reference predictors: multiplicative 64-bit mixing for
 * general combination, and parameterised folds for compressing long
 * histories into table-index width.
 */

#ifndef IMLI_SRC_UTIL_HASHING_HH
#define IMLI_SRC_UTIL_HASHING_HH

#include <cstdint>

namespace imli
{

/** Strong 64 -> 64 bit mixer (SplitMix64 finaliser). */
inline std::uint64_t
mix64(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Combine two hash values into one. */
inline std::uint64_t
hashCombine(std::uint64_t a, std::uint64_t b)
{
    return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/** Fold a 64-bit value down to @p bits by XOR of successive chunks. */
inline std::uint64_t
foldBits(std::uint64_t v, unsigned bits)
{
    if (bits == 0)
        return 0;
    if (bits >= 64)
        return v;
    std::uint64_t folded = 0;
    while (v != 0) {
        folded ^= v & ((1ULL << bits) - 1);
        v >>= bits;
    }
    return folded;
}

/** Mask of the low @p bits bits. */
inline std::uint64_t
maskBits(unsigned bits)
{
    return bits >= 64 ? ~0ULL : ((1ULL << bits) - 1);
}

/**
 * Table index from a PC: drop the low alignment bits (instructions are
 * >= 2 bytes apart in every ISA we care about) and mix.
 */
inline std::uint64_t
pcHash(std::uint64_t pc)
{
    return mix64(pc >> 1);
}

/** True iff @p v is a power of two (and non-zero). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Ceil of log2 for table sizing. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    unsigned bits = 0;
    std::uint64_t x = 1;
    while (x < v) {
        x <<= 1;
        ++bits;
    }
    return bits;
}

} // namespace imli

#endif // IMLI_SRC_UTIL_HASHING_HH
