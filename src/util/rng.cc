#include "src/util/rng.hh"

namespace imli
{

namespace
{

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

std::uint64_t
SplitMix64::next()
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

Xoroshiro128::Xoroshiro128(std::uint64_t seed)
{
    SplitMix64 sm(seed);
    s0 = sm.next();
    s1 = sm.next();
    // A state of all zeros would be a fixed point; SplitMix64 cannot emit
    // two consecutive zeros, so this is unreachable, but keep the guard for
    // safety against future seeding changes.
    if (s0 == 0 && s1 == 0)
        s1 = 0x9e3779b97f4a7c15ULL;
}

std::uint64_t
Xoroshiro128::next()
{
    const std::uint64_t x0 = s0;
    std::uint64_t x1 = s1;
    const std::uint64_t result = rotl(x0 * 5, 7) * 9;

    x1 ^= x0;
    s0 = rotl(x0, 24) ^ x1 ^ (x1 << 16);
    s1 = rotl(x1, 37);
    return result;
}

std::uint64_t
Xoroshiro128::below(std::uint64_t bound)
{
    // Lemire multiply-shift; bias < bound / 2^64.
    unsigned __int128 product =
        static_cast<unsigned __int128>(next()) *
        static_cast<unsigned __int128>(bound);
    return static_cast<std::uint64_t>(product >> 64);
}

std::int64_t
Xoroshiro128::range(std::int64_t lo, std::int64_t hi)
{
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
}

bool
Xoroshiro128::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Xoroshiro128::uniform()
{
    // 53 high-quality bits -> double in [0,1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

Xoroshiro128
Xoroshiro128::fork(std::uint64_t stream_id)
{
    SplitMix64 sm(next() ^ (stream_id * 0xd1342543de82ef95ULL));
    return Xoroshiro128(sm.next());
}

} // namespace imli
