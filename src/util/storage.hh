/**
 * @file
 * Storage accounting for predictor hardware budgets.
 *
 * The paper argues in budgets: the base TAGE-GSC is 228 Kbits, the IMLI
 * components add 708 bytes, the wormhole predictor 1413 bytes, and the CBP4
 * constraint is 256 Kbits.  Every table in libimli reports its size through
 * a StorageAccount so that configurations can be audited in tests and
 * printed next to accuracy results, exactly as the paper's tables do.
 */

#ifndef IMLI_SRC_UTIL_STORAGE_HH
#define IMLI_SRC_UTIL_STORAGE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace imli
{

/** A named amount of predictor storage, in bits. */
struct StorageItem
{
    std::string name;
    std::uint64_t bits;
};

/**
 * Hierarchical bit-budget ledger.  Components add named line items;
 * composed predictors merge child accounts under a prefix.
 */
class StorageAccount
{
  public:
    /** Add a line item of @p bits bits. */
    void add(const std::string &name, std::uint64_t bits);

    /** Merge another account's items under "prefix/". */
    void merge(const std::string &prefix, const StorageAccount &other);

    /** Total bits across all items. */
    std::uint64_t totalBits() const;

    /** Total size in bytes (rounded up). */
    std::uint64_t totalBytes() const { return (totalBits() + 7) / 8; }

    /** Total size in Kbits (1 Kbit = 1024 bits), rounded to nearest. */
    double totalKbits() const;

    const std::vector<StorageItem> &items() const { return entries; }

    /** Human-readable multi-line summary. */
    std::string toString() const;

  private:
    std::vector<StorageItem> entries;
};

} // namespace imli

#endif // IMLI_SRC_UTIL_STORAGE_HH
