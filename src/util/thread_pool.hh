/**
 * @file
 * Fixed-size worker thread pool with a sharded parallel-for.
 *
 * Two layers of API:
 *
 *  - submit(): enqueue an arbitrary task; wait() blocks until the queue
 *    drains.  Used for heterogeneous work (per-benchmark jobs).
 *  - parallelFor(): distribute indices [0, count) over the workers via a
 *    shared atomic cursor, so fast workers steal the remaining indices
 *    from slow ones (self-scheduling).  Used by the suite runner to fan
 *    predictor x workload cells out.
 *
 * A pool of size 1 still runs tasks on its single worker thread, so the
 * concurrency = 1 path exercises the same machinery as N > 1; callers
 * that want a true zero-thread serial path (e.g. for bit-identical
 * debugging under a debugger) should branch before reaching the pool.
 *
 * Exceptions thrown by tasks are captured; the first one is rethrown from
 * wait() / parallelFor() on the calling thread.
 */

#ifndef IMLI_SRC_UTIL_THREAD_POOL_HH
#define IMLI_SRC_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace imli
{

class ThreadPool
{
  public:
    /**
     * @param threads worker count; 0 means hardwareThreads().
     */
    explicit ThreadPool(unsigned threads = 0);

    /** Joins the workers; pending tasks are completed first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(workers.size()); }

    /** Enqueue one task. */
    void submit(std::function<void()> task);

    /**
     * Deepest the pending-task queue has ever been (tasks submitted but
     * not yet picked up by a worker).  A saturation gauge for the suite
     * runner's metrics export: 0 means workers always kept up.  Reads
     * race benignly with submits; call after wait() for a stable value.
     */
    std::size_t queueHighWater() const;

    /**
     * Block until every submitted task has finished.  Rethrows the first
     * captured task exception (subsequent ones are dropped).
     */
    void wait();

    /**
     * Run @p body(i) for every i in [0, count), self-scheduled across the
     * workers; blocks until complete.  The calling thread does not execute
     * body itself.  Rethrows the first captured exception.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &body);

    /** std::thread::hardware_concurrency with a floor of 1. */
    static unsigned hardwareThreads();

    /** Sanity cap on worker counts parsed from flags/env. */
    static constexpr unsigned long maxJobs = 1024;

    /**
     * Parse a worker-count string shared by --jobs and IMLI_JOBS:
     * "auto", "max" and "0" mean hardwareThreads(); digit strings are
     * clamped to maxJobs; anything else (including negatives, which
     * strtoul would wrap) yields @p def.
     */
    static unsigned parseJobs(const std::string &text, unsigned def);

    /**
     * Strict variant for environment overrides: same accepted forms as
     * parseJobs, but garbage and counts above maxJobs throw
     * std::runtime_error naming @p what (e.g. "IMLI_JOBS") — a typo in
     * an env var should fail loudly, not silently fall back or clamp.
     */
    static unsigned parseJobsStrict(const std::string &text,
                                    const std::string &what);

  private:
    void workerLoop();

    std::vector<std::thread> workers;
    std::deque<std::function<void()>> queue;
    mutable std::mutex mutex;
    std::condition_variable workAvailable; //!< signalled on submit/stop
    std::condition_variable allIdle;       //!< signalled when queue drains
    std::size_t inFlight = 0;              //!< queued + currently running
    std::size_t queueHighWaterMark = 0;    //!< deepest pending queue seen
    std::exception_ptr firstError;
    bool stopping = false;
};

} // namespace imli

#endif // IMLI_SRC_UTIL_THREAD_POOL_HH
