/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * Every source of randomness in libimli flows through Xoroshiro128
 * seeded via SplitMix64, so that traces, benchmarks and experiments are
 * reproducible bit-for-bit from a 64-bit seed.  std::mt19937 is avoided on
 * purpose: its state is large, its seeding is easy to get wrong, and its
 * cross-platform determinism guarantees do not extend to the distribution
 * adaptors.
 */

#ifndef IMLI_SRC_UTIL_RNG_HH
#define IMLI_SRC_UTIL_RNG_HH

#include <cstdint>

namespace imli
{

/**
 * SplitMix64 generator.  Used to expand a single 64-bit seed into the
 * 128-bit state of Xoroshiro128 and to derive independent child seeds.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state(seed) {}

    /** Next 64 uniformly distributed bits. */
    std::uint64_t next();

  private:
    std::uint64_t state;
};

/**
 * Xoroshiro128** 1.0 generator (Blackman & Vigna).  Fast, tiny state,
 * excellent statistical quality for simulation workloads.
 */
class Xoroshiro128
{
  public:
    /** Construct from a 64-bit seed, expanded through SplitMix64. */
    explicit Xoroshiro128(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next 64 uniformly distributed bits. */
    std::uint64_t next();

    /** Next 32 uniformly distributed bits. */
    std::uint32_t next32() { return static_cast<std::uint32_t>(next() >> 32); }

    /**
     * Uniform integer in [0, bound).  Uses Lemire's multiply-shift
     * rejection-free mapping (bias is negligible for simulation purposes:
     * < 2^-32 for bounds below 2^32).
     *
     * @param bound exclusive upper bound; must be > 0.
     */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Bernoulli draw: true with probability @p p (clamped to [0,1]). */
    bool bernoulli(double p);

    /** Uniform double in [0, 1). */
    double uniform();

    /**
     * Derive an independent child generator.  The child stream is decorrelated
     * from the parent by hashing the parent's next output with a stream id.
     */
    Xoroshiro128 fork(std::uint64_t stream_id);

  private:
    std::uint64_t s0;
    std::uint64_t s1;
};

} // namespace imli

#endif // IMLI_SRC_UTIL_RNG_HH
