#include "src/util/table_writer.hh"

#include <algorithm>
#include <cstdio>
#include <iomanip>

namespace imli
{

TableWriter::TableWriter(std::string title_) : title(std::move(title_)) {}

void
TableWriter::setHeader(const std::vector<std::string> &cols)
{
    header = cols;
}

void
TableWriter::addRow(const std::vector<std::string> &cells)
{
    rows.push_back({cells, false});
}

void
TableWriter::addSeparator()
{
    rows.push_back({{}, true});
}

std::size_t
TableWriter::numRows() const
{
    std::size_t n = 0;
    for (const auto &row : rows)
        if (!row.separator)
            ++n;
    return n;
}

void
TableWriter::print(std::ostream &os) const
{
    // Column widths over header + all rows.
    std::vector<std::size_t> widths;
    auto absorb = [&widths](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    absorb(header);
    for (const auto &row : rows)
        if (!row.separator)
            absorb(row.cells);

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string &cell = i < cells.size() ? cells[i] : "";
            if (i == 0)
                os << std::left << std::setw(static_cast<int>(widths[i]))
                   << cell;
            else
                os << "  " << std::right
                   << std::setw(static_cast<int>(widths[i])) << cell;
        }
        os << '\n';
    };

    std::size_t total_width = 0;
    for (std::size_t i = 0; i < widths.size(); ++i)
        total_width += widths[i] + (i ? 2 : 0);

    if (!title.empty())
        os << title << '\n';
    if (!header.empty()) {
        emit(header);
        os << std::string(total_width, '-') << '\n';
    }
    for (const auto &row : rows) {
        if (row.separator)
            os << std::string(total_width, '-') << '\n';
        else
            emit(row.cells);
    }
}

void
TableWriter::printCsv(std::ostream &os) const
{
    auto emit = [&os](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i)
                os << ',';
            // Quote cells containing commas.
            if (cells[i].find(',') != std::string::npos)
                os << '"' << cells[i] << '"';
            else
                os << cells[i];
        }
        os << '\n';
    };
    if (!header.empty())
        emit(header);
    for (const auto &row : rows)
        if (!row.separator)
            emit(row.cells);
}

std::string
formatDouble(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
formatDelta(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%+.*f", decimals, v);
    return buf;
}

std::string
formatPercent(double fraction, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%+.*f %%", decimals, fraction * 100.0);
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += std::string("\\") + c;
        else if (static_cast<unsigned char>(c) < 0x20)
            out += ' ';
        else
            out += c;
    }
    return out;
}

} // namespace imli
