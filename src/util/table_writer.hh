/**
 * @file
 * Console table and CSV formatting for experiment reports.
 *
 * Every bench binary prints (a) an aligned human-readable table mirroring
 * the paper's tables/figures and (b) optionally a CSV for plotting.  This
 * module keeps the formatting logic out of the experiment code.
 */

#ifndef IMLI_SRC_UTIL_TABLE_WRITER_HH
#define IMLI_SRC_UTIL_TABLE_WRITER_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace imli
{

/**
 * Builder for an aligned text table.  Columns are right-aligned except the
 * first, which is left-aligned (row label convention).
 */
class TableWriter
{
  public:
    /** @param title table caption printed above the header. */
    explicit TableWriter(std::string title = "");

    /** Set the column headers; defines the column count. */
    void setHeader(const std::vector<std::string> &cols);

    /** Append a data row; must match the header width if one is set. */
    void addRow(const std::vector<std::string> &cells);

    /** Append a horizontal separator row. */
    void addSeparator();

    /** Render the aligned table. */
    void print(std::ostream &os) const;

    /** Render as CSV (separator rows skipped). */
    void printCsv(std::ostream &os) const;

    /** Number of data rows added so far. */
    std::size_t numRows() const;

  private:
    struct Row
    {
        std::vector<std::string> cells;
        bool separator = false;
    };

    std::string title;
    std::vector<std::string> header;
    std::vector<Row> rows;
};

/** Format a double with @p decimals fraction digits. */
std::string formatDouble(double v, int decimals = 3);

/** Format a signed delta with explicit +/- and @p decimals digits. */
std::string formatDelta(double v, int decimals = 3);

/** Format a percentage such as "-6.8 %". */
std::string formatPercent(double fraction, int decimals = 1);

/**
 * Minimal JSON string escaping (quotes, backslashes, control chars) for
 * the machine-readable report emitters.  Shared so every JSON writer
 * escapes the same way.
 */
std::string jsonEscape(const std::string &s);

} // namespace imli

#endif // IMLI_SRC_UTIL_TABLE_WRITER_HH
