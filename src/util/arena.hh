/**
 * @file
 * TableArena: contiguous cache-line-aware storage for multi-table
 * predictor state.
 *
 * Every TAGE/GEHL-family predictor owns N same-sized tables of small
 * entries.  Holding them as std::vector<std::vector<Entry>> costs one
 * heap allocation per table and a pointer dereference per access, and
 * scatters the tables across the heap so a predict/update pair touching
 * all N tables walks N unrelated regions.  TableArena packs the whole
 * predictor into ONE allocation, aligned to the cache line:
 *
 *     +--------- table 0 ---------+--------- table 1 ---------+-- ...
 *     ^ base (64-byte aligned)    ^ base + (1 << logEntries)
 *
 * The per-table stride is the power-of-two entry count (1 << logEntries),
 * so addressing is base + (table << logEntries) + index — two adds and a
 * shift, no pointer chase — and a table's row never straddles another's.
 * Entries stay the caller's type (packed int8/int16 structs), so a
 * 64-byte line holds 8-21 entries and the sequential ageing sweeps walk
 * the arena at streaming bandwidth.
 *
 * The layout is also what makes software prefetch worthwhile: a lookahead
 * index computed from (table, index) maps to exactly one line address
 * with no dependent load, so ConditionalPredictor::prefetch() can issue
 * the line fetches before the dependent reads (see simulator.cc).
 */

#ifndef IMLI_SRC_UTIL_ARENA_HH
#define IMLI_SRC_UTIL_ARENA_HH

#include <cassert>
#include <cstddef>
#include <new>
#include <vector>

namespace imli
{

/** Cache line size assumed for alignment and prefetch hints. */
constexpr std::size_t kCacheLineBytes = 64;

/**
 * Minimal allocator aligning every allocation to the cache line, so the
 * arena base (and therefore every power-of-two table boundary) starts on
 * a fresh line.  Stateless; all instances compare equal.
 */
template <typename T>
struct CacheAlignedAllocator
{
    using value_type = T;

    CacheAlignedAllocator() = default;
    template <typename U>
    CacheAlignedAllocator(const CacheAlignedAllocator<U> &)
    {
    }

    T *
    allocate(std::size_t n)
    {
        return static_cast<T *>(::operator new(
            n * sizeof(T), std::align_val_t{kCacheLineBytes}));
    }

    void
    deallocate(T *p, std::size_t) noexcept
    {
        ::operator delete(p, std::align_val_t{kCacheLineBytes});
    }

    template <typename U>
    bool
    operator==(const CacheAlignedAllocator<U> &) const
    {
        return true;
    }
    template <typename U>
    bool
    operator!=(const CacheAlignedAllocator<U> &) const
    {
        return false;
    }
};

/**
 * N same-sized predictor tables in one contiguous allocation with
 * power-of-two strides.  Replaces vector<vector<Entry>>: at(t, i) is the
 * flat element base[(t << logEntries) + i], row(t) exposes a table as a
 * plain Entry* span, and begin()/end() iterate the whole arena in
 * table-major order (identical to iterating the old nested vectors).
 */
template <typename Entry>
class TableArena
{
  public:
    TableArena() = default;

    /**
     * @param num_tables table count (the slow dimension)
     * @param log_entries log2 entries per table (the stride)
     * @param init value every entry starts from
     */
    TableArena(unsigned num_tables, unsigned log_entries,
               const Entry &init = Entry())
        : logEntriesVal(log_entries), tableCount(num_tables),
          store(static_cast<std::size_t>(num_tables) << log_entries, init)
    {
    }

    Entry &
    at(unsigned table, unsigned index)
    {
        assert(table < tableCount && index < stride());
        return store[(static_cast<std::size_t>(table) << logEntriesVal) +
                     index];
    }

    const Entry &
    at(unsigned table, unsigned index) const
    {
        assert(table < tableCount && index < stride());
        return store[(static_cast<std::size_t>(table) << logEntriesVal) +
                     index];
    }

    /** Table @p table as a contiguous span of stride() entries. */
    Entry *row(unsigned table)
    {
        assert(table < tableCount);
        return store.data() +
               (static_cast<std::size_t>(table) << logEntriesVal);
    }
    const Entry *row(unsigned table) const
    {
        assert(table < tableCount);
        return store.data() +
               (static_cast<std::size_t>(table) << logEntriesVal);
    }

    /** Entries per table (the power-of-two stride). */
    std::size_t stride() const { return std::size_t{1} << logEntriesVal; }
    unsigned numTables() const { return tableCount; }
    /** Total entries across all tables. */
    std::size_t size() const { return store.size(); }

    /** Whole-arena iteration (table-major), for ageing/reset sweeps. */
    auto begin() { return store.begin(); }
    auto end() { return store.end(); }
    auto begin() const { return store.begin(); }
    auto end() const { return store.end(); }

    /**
     * Hint the line holding (table, index) into cache, read-shared, low
     * temporal locality.  Correctness-neutral: purely a scheduling hint.
     */
    void
    prefetchEntry(unsigned table, unsigned index) const
    {
        __builtin_prefetch(
            store.data() +
                ((static_cast<std::size_t>(table) << logEntriesVal) + index),
            0 /* read */, 1 /* low temporal locality */);
    }

  private:
    unsigned logEntriesVal = 0;
    unsigned tableCount = 0;
    std::vector<Entry, CacheAlignedAllocator<Entry>> store;
};

} // namespace imli

#endif // IMLI_SRC_UTIL_ARENA_HH
