#include "src/util/cli.hh"

#include <cstdlib>

#include "src/util/thread_pool.hh"

namespace imli
{

CommandLine::CommandLine(int argc, const char *const *argv)
{
    if (argc > 0)
        program = argv[0];
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.size() < 3 || arg.compare(0, 2, "--") != 0) {
            positional.push_back(arg);
            continue;
        }
        std::string body = arg.substr(2);
        auto eq = body.find('=');
        if (eq != std::string::npos) {
            flags[body.substr(0, eq)] = body.substr(eq + 1);
        } else if (i + 1 < argc && argv[i + 1][0] != '-') {
            flags[body] = argv[i + 1];
            ++i;
        } else {
            flags[body] = "";
        }
    }
}

bool
CommandLine::has(const std::string &name) const
{
    return flags.count(name) != 0;
}

std::string
CommandLine::getString(const std::string &name, const std::string &def) const
{
    auto it = flags.find(name);
    return it == flags.end() ? def : it->second;
}

std::int64_t
CommandLine::getInt(const std::string &name, std::int64_t def) const
{
    auto it = flags.find(name);
    if (it == flags.end() || it->second.empty())
        return def;
    char *end = nullptr;
    const std::int64_t v = std::strtoll(it->second.c_str(), &end, 0);
    return (end && *end == '\0') ? v : def;
}

double
CommandLine::getDouble(const std::string &name, double def) const
{
    auto it = flags.find(name);
    if (it == flags.end() || it->second.empty())
        return def;
    char *end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    return (end && *end == '\0') ? v : def;
}

bool
CommandLine::getBool(const std::string &name, bool def) const
{
    auto it = flags.find(name);
    if (it == flags.end())
        return def;
    const std::string &v = it->second;
    if (v.empty() || v == "true" || v == "1" || v == "yes")
        return true;
    return false;
}

unsigned
CommandLine::getJobs(unsigned def, const std::string &name) const
{
    auto it = flags.find(name);
    if (it == flags.end())
        return def;
    return ThreadPool::parseJobs(it->second, def);
}

} // namespace imli
