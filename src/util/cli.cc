#include "src/util/cli.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "src/util/thread_pool.hh"

namespace imli
{

namespace
{

/**
 * True when a lookahead argument starting with '-' is a negative number
 * ("-0.3", "-12") rather than the next flag.  "-" alone (the stdin
 * convention) and "--x" are not values.
 */
bool
looksNumeric(const std::string &arg)
{
    if (arg.size() < 2 || arg[0] != '-')
        return false;
    return std::isdigit(static_cast<unsigned char>(arg[1])) != 0 ||
           arg[1] == '.';
}

} // anonymous namespace

std::vector<std::string>
splitCommaList(const std::string &csv)
{
    std::vector<std::string> out;
    std::string token;
    std::istringstream is(csv);
    while (std::getline(is, token, ','))
        if (!token.empty())
            out.push_back(token);
    return out;
}

bool
parseDecimalU64(const std::string &text, std::uint64_t &value)
{
    const bool digits_only =
        !text.empty() &&
        text.find_first_not_of("0123456789") == std::string::npos;
    if (!digits_only)
        return false;
    errno = 0;
    const unsigned long long v = std::strtoull(text.c_str(), nullptr, 10);
    if (errno == ERANGE)
        return false;
    value = static_cast<std::uint64_t>(v);
    return true;
}

bool
parseDecimalLL(const std::string &text, long long &value)
{
    std::uint64_t v = 0;
    if (!parseDecimalU64(text, v) ||
        v > std::uint64_t(std::numeric_limits<long long>::max()))
        return false;
    value = static_cast<long long>(v);
    return true;
}

long long
parseDecimalLLStrict(const std::string &text, const std::string &what)
{
    long long v = 0;
    if (!parseDecimalLL(text, v))
        throw std::invalid_argument(what + ": value \"" + text +
                                    "\" is not a plain decimal integer "
                                    "in range");
    return v;
}

CommandLine::CommandLine(int argc, const char *const *argv)
{
    if (argc > 0)
        program = argv[0];
    bool flags_ended = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (flags_ended) {
            positional.push_back(arg);
            continue;
        }
        if (arg == "--") {
            // Conventional separator: everything after is positional.
            flags_ended = true;
            continue;
        }
        if (arg.size() < 3 || arg.compare(0, 2, "--") != 0) {
            positional.push_back(arg);
            continue;
        }
        std::string body = arg.substr(2);
        auto eq = body.find('=');
        if (eq != std::string::npos) {
            flags[body.substr(0, eq)] = body.substr(eq + 1);
            occurrences.emplace_back(body.substr(0, eq), body.substr(eq + 1));
        } else if (i + 1 < argc &&
                   (argv[i + 1][0] != '-' || looksNumeric(argv[i + 1]))) {
            flags[body] = argv[i + 1];
            occurrences.emplace_back(body, argv[i + 1]);
            ++i;
        } else {
            flags[body] = "";
            occurrences.emplace_back(body, "");
        }
    }
}

bool
CommandLine::has(const std::string &name) const
{
    return flags.count(name) != 0;
}

std::string
CommandLine::getString(const std::string &name, const std::string &def) const
{
    auto it = flags.find(name);
    return it == flags.end() ? def : it->second;
}

std::vector<std::string>
CommandLine::getList(const std::string &name) const
{
    std::vector<std::string> values;
    for (const auto &occurrence : occurrences)
        if (occurrence.first == name)
            values.push_back(occurrence.second);
    return values;
}

std::int64_t
CommandLine::getInt(const std::string &name, std::int64_t def) const
{
    auto it = flags.find(name);
    if (it == flags.end())
        return def;
    errno = 0;
    char *end = nullptr;
    const std::int64_t v = std::strtoll(it->second.c_str(), &end, 0);
    if (it->second.empty() || !end || *end != '\0')
        throw std::runtime_error(
            "--" + name + ": invalid integer \"" + it->second + "\"");
    // strtoll clamps on overflow with *end == '\0': ERANGE is the only
    // sign the value was not what the user typed.
    if (errno == ERANGE)
        throw std::runtime_error(
            "--" + name + ": integer \"" + it->second + "\" is out of range");
    return v;
}

double
CommandLine::getDouble(const std::string &name, double def) const
{
    auto it = flags.find(name);
    if (it == flags.end())
        return def;
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (it->second.empty() || !end || *end != '\0')
        throw std::runtime_error(
            "--" + name + ": invalid number \"" + it->second + "\"");
    // Overflow saturates to +-HUGE_VAL with a clean end pointer; reject
    // it (harmless underflow-to-subnormal is allowed through).
    if (errno == ERANGE && std::abs(v) == HUGE_VAL)
        throw std::runtime_error(
            "--" + name + ": number \"" + it->second + "\" is out of range");
    return v;
}

std::size_t
CommandLine::getCount(const std::string &name, std::size_t def) const
{
    if (!has(name))
        return def;
    const std::int64_t v = getInt(name);
    if (v < 0)
        throw std::runtime_error(
            "--" + name + ": expected a non-negative count, got \"" +
            getString(name) + "\"");
    return static_cast<std::size_t>(v);
}

void
CommandLine::rejectValuedBool(const std::string &name) const
{
    if (!has(name))
        return;
    const std::string v = getString(name);
    // Recognized boolean spellings (getBool's, plus explicit negatives)
    // pass through; anything else is a swallowed path or typo.
    if (v.empty() || v == "true" || v == "1" || v == "yes" ||
        v == "false" || v == "0" || v == "no")
        return;
    throw std::runtime_error(
        "--" + name + " is a boolean switch and takes no value (got \"" +
        v + "\")");
}

bool
CommandLine::getBool(const std::string &name, bool def) const
{
    auto it = flags.find(name);
    if (it == flags.end())
        return def;
    const std::string &v = it->second;
    if (v.empty() || v == "true" || v == "1" || v == "yes")
        return true;
    return false;
}

unsigned
CommandLine::getJobs(unsigned def, const std::string &name) const
{
    auto it = flags.find(name);
    if (it == flags.end())
        return def;
    return ThreadPool::parseJobs(it->second, def);
}

} // namespace imli
