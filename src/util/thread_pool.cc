#include "src/util/thread_pool.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <limits>
#include <memory>
#include <stdexcept>
#include <utility>

namespace imli
{

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = hardwareThreads();
    workers.reserve(threads);
    try {
        for (unsigned i = 0; i < threads; ++i)
            workers.emplace_back([this] { workerLoop(); });
    } catch (...) {
        // A failed std::thread launch (resource exhaustion) must not
        // destroy joinable threads — that would std::terminate.  Wind
        // down the ones that did start and surface the original error.
        {
            std::unique_lock<std::mutex> lock(mutex);
            stopping = true;
        }
        workAvailable.notify_all();
        for (std::thread &t : workers)
            t.join();
        throw;
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex);
        stopping = true;
    }
    workAvailable.notify_all();
    for (std::thread &t : workers)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lock(mutex);
        queue.push_back(std::move(task));
        ++inFlight;
        if (queue.size() > queueHighWaterMark)
            queueHighWaterMark = queue.size();
    }
    workAvailable.notify_one();
}

std::size_t
ThreadPool::queueHighWater() const
{
    std::unique_lock<std::mutex> lock(mutex);
    return queueHighWaterMark;
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex);
    allIdle.wait(lock, [this] { return inFlight == 0; });
    if (firstError) {
        std::exception_ptr err = firstError;
        firstError = nullptr;
        std::rethrow_exception(err);
    }
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &body)
{
    if (count == 0)
        return;
    // One task per worker; each task pulls the next index off the shared
    // cursor, so indices are sharded dynamically (fast workers do more).
    auto cursor = std::make_shared<std::atomic<std::size_t>>(0);
    const std::size_t lanes =
        std::min<std::size_t>(count, workers.size());
    for (std::size_t lane = 0; lane < lanes; ++lane) {
        submit([cursor, count, &body] {
            for (std::size_t i = cursor->fetch_add(1); i < count;
                 i = cursor->fetch_add(1))
                body(i);
        });
    }
    wait();
}

unsigned
ThreadPool::hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

namespace
{

enum class JobsParse
{
    HardwareThreads, //!< "auto", "max" or 0
    Value,           //!< a positive worker count (possibly saturated)
    Invalid,
};

JobsParse
parseJobsText(const std::string &text, unsigned long &value)
{
    if (text == "auto" || text == "max")
        return JobsParse::HardwareThreads;
    if (text.empty() ||
        text.find_first_not_of("0123456789") != std::string::npos)
        return JobsParse::Invalid;
    errno = 0;
    value = std::strtoul(text.c_str(), nullptr, 10);
    if (errno == ERANGE)
        value = std::numeric_limits<unsigned long>::max();
    if (value == 0)
        return JobsParse::HardwareThreads;
    return JobsParse::Value;
}

} // anonymous namespace

unsigned
ThreadPool::parseJobs(const std::string &text, unsigned def)
{
    unsigned long value = 0;
    switch (parseJobsText(text, value)) {
      case JobsParse::HardwareThreads:
        return hardwareThreads();
      case JobsParse::Invalid:
        return def;
      case JobsParse::Value:
        break;
    }
    return static_cast<unsigned>(std::min(value, maxJobs));
}

unsigned
ThreadPool::parseJobsStrict(const std::string &text, const std::string &what)
{
    unsigned long value = 0;
    switch (parseJobsText(text, value)) {
      case JobsParse::HardwareThreads:
        return hardwareThreads();
      case JobsParse::Invalid:
        throw std::runtime_error(
            what + ": invalid worker count \"" + text +
            "\" (expected a non-negative integer, \"auto\" or \"max\")");
      case JobsParse::Value:
        break;
    }
    if (value > maxJobs)
        throw std::runtime_error(
            what + ": worker count " + text + " exceeds the sanity cap of " +
            std::to_string(maxJobs));
    return static_cast<unsigned>(value);
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex);
            workAvailable.wait(
                lock, [this] { return stopping || !queue.empty(); });
            if (queue.empty())
                return; // stopping and drained
            task = std::move(queue.front());
            queue.pop_front();
        }
        try {
            task();
        } catch (...) {
            std::unique_lock<std::mutex> lock(mutex);
            if (!firstError)
                firstError = std::current_exception();
        }
        {
            std::unique_lock<std::mutex> lock(mutex);
            if (--inFlight == 0)
                allIdle.notify_all();
        }
    }
}

} // namespace imli
