/**
 * @file
 * Saturating counters, the basic storage element of every predictor table.
 *
 * Two flavours are provided, matching the two idioms in the branch
 * prediction literature:
 *
 *  - SatCounter: an unsigned up/down counter in [0, 2^bits - 1]; the MSB is
 *    the prediction ("taken" iff counter >= midpoint).  Used by bimodal,
 *    gshare and the TAGE tagged entries.
 *  - SignedCounter: a signed counter in [-2^(bits-1), 2^(bits-1) - 1];
 *    its centred value (2c + 1) feeds neural adder trees (GEHL / statistical
 *    corrector), following Seznec's O-GEHL formulation.
 *
 * Both counters update with branch-free clamped arithmetic: step by +/-1 in
 * a wide intermediate, then clamp with min/max-style ternaries the compiler
 * lowers to conditional moves.  The counter update sits inside the
 * per-branch train loop of every table of every predictor, and the step
 * direction correlates with the (by construction hard-to-predict) branch
 * outcome, so a data-dependent jump here costs a host-side mispredict per
 * simulated mispredict.  Semantics are exactly the saturating if/else
 * formulation — CI pins bit-identity over the full suite matrix.
 */

#ifndef IMLI_SRC_UTIL_COUNTERS_HH
#define IMLI_SRC_UTIL_COUNTERS_HH

#include <cassert>
#include <cstdint>

namespace imli
{

/** Unsigned saturating counter of a configurable width. */
class SatCounter
{
  public:
    SatCounter() = default;

    /**
     * @param num_bits counter width in bits (1..15)
     * @param initial initial counter value
     */
    explicit SatCounter(unsigned num_bits, unsigned initial = 0)
        : bits(static_cast<std::uint8_t>(num_bits)),
          value(static_cast<std::int16_t>(initial))
    {
        assert(num_bits >= 1 && num_bits <= 15);
        assert(initial <= maxValue());
    }

    /** Largest representable value. */
    unsigned maxValue() const { return (1u << bits) - 1; }

    /** Midpoint: smallest value predicting taken. */
    unsigned midpoint() const { return 1u << (bits - 1); }

    /** Saturating increment. */
    void
    increment()
    {
        const int cap = static_cast<int>(maxValue());
        const int next = value + 1;
        value = static_cast<std::int16_t>(next > cap ? cap : next);
    }

    /** Saturating decrement. */
    void
    decrement()
    {
        const int next = value - 1;
        value = static_cast<std::int16_t>(next < 0 ? 0 : next);
    }

    /** Move towards taken (true) or not-taken (false). */
    void
    update(bool taken)
    {
        const int step = taken ? 1 : -1;
        const int cap = static_cast<int>(maxValue());
        int next = value + step;
        next = next < 0 ? 0 : next;
        value = static_cast<std::int16_t>(next > cap ? cap : next);
    }

    /** Prediction encoded in the MSB. */
    bool taken() const { return static_cast<unsigned>(value) >= midpoint(); }

    /**
     * Weak counters are the two values adjacent to the midpoint; entries
     * holding weak counters are preferred victims during TAGE allocation.
     */
    bool
    isWeak() const
    {
        const unsigned v = static_cast<unsigned>(value);
        return v == midpoint() || v + 1 == midpoint();
    }

    unsigned raw() const { return static_cast<unsigned>(value); }

    void
    set(unsigned v)
    {
        assert(v <= maxValue());
        value = static_cast<std::int16_t>(v);
    }

    /** Reset to the weakest state for the given direction. */
    void
    reset(bool taken_dir)
    {
        value = static_cast<std::int16_t>(taken_dir ? midpoint()
                                                    : midpoint() - 1);
    }

    unsigned numBits() const { return bits; }

  private:
    std::uint8_t bits = 2;
    std::int16_t value = 0;
};

/** Signed saturating counter for neural adder trees. */
class SignedCounter
{
  public:
    SignedCounter() = default;

    /**
     * @param num_bits counter width in bits (2..16)
     * @param initial initial value, must be representable
     */
    explicit SignedCounter(unsigned num_bits, int initial = 0)
        : bits(static_cast<std::uint8_t>(num_bits)),
          value(static_cast<std::int16_t>(initial))
    {
        assert(num_bits >= 2 && num_bits <= 16);
        assert(initial >= minValue() && initial <= maxValue());
    }

    int maxValue() const { return (1 << (bits - 1)) - 1; }
    int minValue() const { return -(1 << (bits - 1)); }

    /** Saturating update towards the branch outcome. */
    void
    update(bool taken)
    {
        const int step = taken ? 1 : -1;
        const int lo = minValue();
        const int hi = maxValue();
        int next = value + step;
        next = next < lo ? lo : next;
        value = static_cast<std::int16_t>(next > hi ? hi : next);
    }

    /**
     * Centred value 2c + 1 used as the adder-tree summand; never zero, so
     * every table always votes one way or the other (O-GEHL convention).
     */
    int centered() const { return 2 * value + 1; }

    /** Sign as a direction prediction. */
    bool taken() const { return value >= 0; }

    int raw() const { return value; }

    void
    set(int v)
    {
        assert(v >= minValue() && v <= maxValue());
        value = static_cast<std::int16_t>(v);
    }

    unsigned numBits() const { return bits; }

  private:
    std::uint8_t bits = 6;
    std::int16_t value = 0;
};

} // namespace imli

#endif // IMLI_SRC_UTIL_COUNTERS_HH
