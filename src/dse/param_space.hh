/**
 * @file
 * Parameter-space declaration and expansion for design-space exploration.
 *
 * Architecture note (src/dse/): the DSE subsystem turns the frozen spec
 * table of the zoo into a production sweep surface.  It is layered as
 *
 *   param_space  declares a base spec plus value lists per override key
 *                and expands them into canonical config points (grid or
 *                seeded random sampling);
 *   sweep        evaluates the points over a benchmark suite on the
 *                streaming engine — one trace decode shared across all
 *                points per benchmark — journaling every (benchmark,
 *                point) cell incrementally so interrupted sweeps resume;
 *   pareto       reduces a journal to the MPKI-vs-storage-bits frontier
 *                with dominated-point tagging.
 *
 * Everything is deterministic: points expand in declared order, random
 * sampling is seeded, and the sweep journal is byte-identical whatever
 * the worker count or interruption history.
 */

#ifndef IMLI_SRC_DSE_PARAM_SPACE_HH
#define IMLI_SRC_DSE_PARAM_SPACE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace imli
{

/** One axis of a parameter space: an override key and its value list. */
struct ParamDimension
{
    std::string key;
    std::vector<long long> values;
};

/**
 * Parse a dimension declaration "key=v1,v2,..." where each value token is
 * a plain decimal integer, an inclusive range "lo..hi", or a stepped
 * range "lo..hi..step".  The key must be a known override key and every
 * value must be inside its documented range; anything else throws
 * std::invalid_argument naming the offending token.
 */
ParamDimension parseDimension(const std::string &text);

/** A base spec plus the declared sweep axes. */
struct ParamSpace
{
    /** Base spec; may itself carry overrides ("tage-gsc+sic@oh.delay=4"). */
    std::string baseSpec;
    std::vector<ParamDimension> dimensions;

    /** Largest grid expandGrid() will materialize (sanity backstop). */
    static constexpr std::size_t maxGridPoints = 100000;

    /**
     * Number of grid points (product of value counts; 1 with no axes),
     * saturating at SIZE_MAX on overflow.
     */
    std::size_t gridSize() const;

    /**
     * Full-factorial expansion into canonical spec strings, first
     * dimension slowest (row-major).  Dimension values override any
     * same-key override in the base spec.  Throws std::invalid_argument
     * on duplicate dimension keys, an invalid base spec, an invalid
     * point (the zoo's range/constraint checks run on every point), or
     * a grid larger than maxGridPoints (a cross-product typo would OOM
     * long before a simulator could ever sweep it).
     */
    std::vector<std::string> expandGrid() const;

    /**
     * Seeded uniform sampling of the grid: up to @p count distinct
     * canonical points, deterministic for a given (@p seed, space).
     * Returns fewer than @p count when the space is smaller than the
     * request or sampling keeps re-drawing duplicates.
     */
    std::vector<std::string> sampleRandom(std::size_t count,
                                          std::uint64_t seed) const;
};

} // namespace imli

#endif // IMLI_SRC_DSE_PARAM_SPACE_HH
