/**
 * @file
 * The DSE sweep engine: evaluate a set of config points (canonical spec
 * strings) over a benchmark suite on the streaming engine, journaling
 * every (benchmark, point) cell so interrupted sweeps resume.
 *
 * Architecture note (src/dse/): scheduling is benchmark-major, exactly
 * like the suite runner — each worker task opens one benchmark's
 * BranchSource and streams it through ALL pending points in a single
 * simulateMany pass, so the trace decode/generation cost is shared
 * across points and resident memory stays O(chunk) per worker.
 *
 * Journal model: a metadata line fingerprinting the run options
 * (branches per trace, warm-up — everything that changes the numbers),
 * then a CSV header, then one row per (benchmark, point) cell with
 * integer counters only (MPKI is recomputed from them, so a parsed row
 * is exactly the simulated cell).  During a run rows are appended and
 * flushed as cells complete; at completion the file is rewritten via
 * temp-file + atomic rename into canonical order (benchmark-major in
 * declared benchmark order, point-minor in declared point order).  The
 * final journal is therefore byte-identical whatever the worker count
 * and however often the sweep was killed and resumed.  On resume, rows
 * already journaled are trusted and their cells are not re-simulated; a
 * truncated trailing line (a kill mid-append) is dropped and its cell
 * re-simulated.  A journal whose metadata line does not match the
 * current options — or whose rows fall outside the sweep's
 * benchmarks x points matrix — is rejected: it belongs to a different
 * experiment and silently merging it would corrupt the averages.
 *
 * Shard / plan / merge (process-level orchestration): the same cell
 * space can be executed by independent worker PROCESSES.  planShards()
 * partitions the benchmark axis into contiguous ranges — the journal is
 * benchmark-major, so a benchmark range IS a contiguous journal row
 * range, and every fragment stays journal-compatible by construction.
 * runShard() executes one range, writing (and resuming) a journal
 * fragment at shardJournalPath(journal, index) that carries the FULL
 * sweep's metadata line, so fragments are validated with exactly the
 * resume fingerprint machinery.  mergeShardJournals() validates each
 * fragment (metadata, range membership, storage bits, duplicates),
 * re-aggregates the Pareto view incrementally as each shard lands, and
 * rewrites the canonical journal — byte-identical to the file a
 * single-process runSweep() would have produced.  runSweep() itself is
 * the one-range composition of the same code path (prepare -> execute
 * range [0, N) straight into the canonical journal), which is what
 * keeps pre-shard journals resumable and the bytes stable.
 */

#ifndef IMLI_SRC_DSE_SWEEP_HH
#define IMLI_SRC_DSE_SWEEP_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/sim/simulator.hh"
#include "src/workloads/benchmark_spec.hh"

namespace imli
{

namespace obs
{
class MetricsRegistry;
} // namespace obs

/** One (benchmark, config point) measurement of a sweep. */
struct SweepCell
{
    std::string spec;       //!< canonical config point
    std::string benchmark;
    std::string suite;
    std::uint64_t storageBits = 0;  //!< the point's hardware budget
    std::uint64_t mispredictions = 0;
    std::uint64_t conditionals = 0;
    std::uint64_t instructions = 0;

    /** Mispredictions per kilo-instruction (recomputed, never stored). */
    double mpki() const;
};

/** Sweep driver options. */
struct SweepOptions
{
    std::size_t branchesPerTrace = 200000;
    std::size_t chunkBranches = 65536;
    /** Worker threads for the benchmark fan-out; 1 = serial in-caller. */
    unsigned jobs = 1;
    /**
     * Run-level simulation options for every point; a point whose spec
     * carries "sim.delay" additionally runs on the pipeline engine at
     * that depth (update timing as a sweep dimension).
     */
    SimOptions sim;
    /**
     * Journal file (required).  Created with a header line when absent;
     * an existing journal resumes the sweep it belongs to.  A journal
     * holding rows outside this sweep's (benchmarks x points) matrix is
     * rejected — it belongs to a different sweep.
     */
    std::string journalPath;
    /** Called per finished benchmark task: (name, points simulated). */
    std::function<void(const std::string &, std::size_t)> progress;
    /**
     * Observation registry (null = metrics off, the default).  When set,
     * runSweep sizes one CellObs slot per (benchmark, point) cell at
     * index b * npoints + p — the journal's benchmark-major order — and
     * attaches probes for every cell simulated THIS run.  Cells resumed
     * from the journal keep empty slots: their internals were observed
     * (or not) by the run that simulated them.  Never part of the
     * journal fingerprint — a journal recorded without metrics resumes
     * under a registry and vice versa (inertness is tested).
     */
    obs::MetricsRegistry *metrics = nullptr;
    /**
     * Optional timing-sidecar CSV path ("benchmark,seconds,
     * branches_per_sec", one row per benchmark simulated this run, in
     * declared order).  Written after the canonical journal rewrite and
     * deliberately NOT part of the journal or its fingerprint: wall
     * time is scheduling, not results.
     */
    std::string timingSidecarPath;
};

/** Results of a sweep: declared orders plus the full cell matrix. */
struct SweepResults
{
    std::vector<std::string> points;      //!< canonical specs, declared order
    std::vector<std::string> benchmarks;  //!< names, declared order
    /** Benchmark-major, point-minor; loaded and simulated cells merged. */
    std::vector<SweepCell> cells;
    /** Cells simulated by this run (the rest came from the journal). */
    std::size_t simulatedCells = 0;

    /** Cell for (benchmark, spec); throws std::out_of_range if absent. */
    const SweepCell &at(const std::string &benchmark,
                        const std::string &spec) const;

    /** Mean MPKI of @p spec over benchmarks in @p suite ("" = all). */
    double averageMpki(const std::string &spec,
                       const std::string &suite = "") const;
};

/**
 * Run (or resume) a sweep of @p points over @p benchmarks.  Points are
 * canonicalized and must be distinct; every benchmark is validated up
 * front.  See the file header for the journal/resume/determinism model.
 * Throws std::invalid_argument on bad inputs and std::runtime_error on
 * journal mismatches or I/O failures.
 */
SweepResults runSweep(const std::vector<BenchmarkSpec> &benchmarks,
                      const std::vector<std::string> &points,
                      const SweepOptions &options);

// -- Journal I/O (shared with the pareto layer and tests) -----------------

/**
 * The journal's metadata line: a fingerprint of everything that changes
 * the simulated numbers — the run options (branches, warm-up) and, when
 * the sweep includes recorded benchmarks, a content hash of their trace
 * files (a generated benchmark is fully determined by its name + the
 * options, but a recording's counters depend on the file bytes).
 * Resume refuses a journal whose metadata differs.
 */
std::string journalMeta(const std::vector<BenchmarkSpec> &benchmarks,
                        const SweepOptions &options);

/** The journal's fixed CSV header line (no trailing newline). */
std::string journalHeader();

/** One journal row for @p cell (no trailing newline; spec is quoted). */
std::string formatJournalRow(const SweepCell &cell);

/** Parse one journal row; throws std::runtime_error on malformed rows. */
SweepCell parseJournalRow(const std::string &line);

/**
 * Load every cell of a journal file.  A truncated trailing line (kill
 * mid-append) is silently dropped; a malformed row anywhere else, a bad
 * metadata/header line, or an unreadable file throws std::runtime_error.
 * When @p meta is non-null it receives the journal's metadata line.
 */
std::vector<SweepCell> loadJournal(const std::string &path,
                                   std::string *meta = nullptr);

// -- Shard / plan / merge (process-level orchestration) -------------------

/**
 * One shard: the contiguous benchmark range [beginBench, endBench) of a
 * sweep's declared benchmark order.  Because journal rows are
 * benchmark-major, the range also describes a contiguous block of
 * journal rows — a shard's fragment is a slice of the canonical journal.
 */
struct ShardRange
{
    std::size_t index = 0;       //!< shard number in [0, shardCount)
    std::size_t beginBench = 0;  //!< first benchmark index (inclusive)
    std::size_t endBench = 0;    //!< one past the last benchmark index

    std::size_t benchmarkCount() const { return endBench - beginBench; }
};

/** A sweep's cell space partitioned into shards. */
struct ShardPlan
{
    std::vector<std::string> benchmarks;  //!< names, declared order
    std::vector<std::string> points;      //!< canonical specs
    std::string meta;    //!< the full sweep's journal metadata line
    std::vector<ShardRange> shards;       //!< contiguous, covering, ordered
};

/**
 * Partition the (benchmark x point) cell space of a sweep into
 * @p shard_count contiguous benchmark ranges, as evenly as possible
 * (earlier shards take the remainder; with more shards than benchmarks
 * the surplus shards are empty).  Inputs are validated exactly like
 * runSweep — canonicalized points, distinct names, readable traces —
 * so a plan that prints is a plan that will run.  Deterministic: the
 * same inputs always produce the same partition, which is how
 * mergeShardJournals re-derives the plan.
 */
ShardPlan planShards(const std::vector<BenchmarkSpec> &benchmarks,
                     const std::vector<std::string> &points,
                     const SweepOptions &options, std::size_t shard_count);

/** Fragment journal path for shard @p shard_index: "<journal>.shard<i>". */
std::string shardJournalPath(const std::string &journal_path,
                             std::size_t shard_index);

/**
 * Execute one shard of a sweep: simulate the range's pending cells and
 * journal them to shardJournalPath(options.journalPath, range.index).
 * The fragment has the full sweep's metadata line and the standard
 * resume semantics (committed rows are kept, truncated tails dropped),
 * so a killed shard re-run completes its fragment.  @p benchmarks and
 * @p points are the FULL sweep's — every shard validates the whole
 * input, and the metadata fingerprint covers every recorded trace.
 */
SweepResults runShard(const std::vector<BenchmarkSpec> &benchmarks,
                      const std::vector<std::string> &points,
                      const SweepOptions &options, const ShardRange &range);

struct ParetoEntry;  // src/dse/pareto.hh

/** Merge progress: a shard just landed; entries are the Pareto
 *  aggregation over every cell merged so far (partial averages). */
using MergeProgress =
    std::function<void(const ShardRange &,
                       const std::vector<ParetoEntry> &)>;

/**
 * Validate and merge the @p shard_count shard fragments of a sweep into
 * the canonical journal at options.journalPath, byte-identical to a
 * single-process runSweep of the same inputs.  Each fragment must
 * exist, carry the full sweep's metadata line, and contain exactly rows
 * inside its range (storage bits and suites are checked like resume;
 * truncated tails are dropped by loadJournal).  After the last fragment,
 * any missing cell is an error naming the shard to re-run — a dropped
 * tail is completed by re-running its shard, then merging again.
 * @p on_shard (optional) is called as each shard lands with the
 * incrementally re-aggregated Pareto entries.
 */
SweepResults mergeShardJournals(const std::vector<BenchmarkSpec> &benchmarks,
                                const std::vector<std::string> &points,
                                const SweepOptions &options,
                                std::size_t shard_count,
                                const MergeProgress &on_shard = {});

} // namespace imli

#endif // IMLI_SRC_DSE_SWEEP_HH
