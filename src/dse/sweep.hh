/**
 * @file
 * The DSE sweep engine: evaluate a set of config points (canonical spec
 * strings) over a benchmark suite on the streaming engine, journaling
 * every (benchmark, point) cell so interrupted sweeps resume.
 *
 * Architecture note (src/dse/): scheduling is benchmark-major, exactly
 * like the suite runner — each worker task opens one benchmark's
 * BranchSource and streams it through ALL pending points in a single
 * simulateMany pass, so the trace decode/generation cost is shared
 * across points and resident memory stays O(chunk) per worker.
 *
 * Journal model: a metadata line fingerprinting the run options
 * (branches per trace, warm-up — everything that changes the numbers),
 * then a CSV header, then one row per (benchmark, point) cell with
 * integer counters only (MPKI is recomputed from them, so a parsed row
 * is exactly the simulated cell).  During a run rows are appended and
 * flushed as cells complete; at completion the file is rewritten via
 * temp-file + atomic rename into canonical order (benchmark-major in
 * declared benchmark order, point-minor in declared point order).  The
 * final journal is therefore byte-identical whatever the worker count
 * and however often the sweep was killed and resumed.  On resume, rows
 * already journaled are trusted and their cells are not re-simulated; a
 * truncated trailing line (a kill mid-append) is dropped and its cell
 * re-simulated.  A journal whose metadata line does not match the
 * current options — or whose rows fall outside the sweep's
 * benchmarks x points matrix — is rejected: it belongs to a different
 * experiment and silently merging it would corrupt the averages.
 */

#ifndef IMLI_SRC_DSE_SWEEP_HH
#define IMLI_SRC_DSE_SWEEP_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/sim/simulator.hh"
#include "src/workloads/benchmark_spec.hh"

namespace imli
{

namespace obs
{
class MetricsRegistry;
} // namespace obs

/** One (benchmark, config point) measurement of a sweep. */
struct SweepCell
{
    std::string spec;       //!< canonical config point
    std::string benchmark;
    std::string suite;
    std::uint64_t storageBits = 0;  //!< the point's hardware budget
    std::uint64_t mispredictions = 0;
    std::uint64_t conditionals = 0;
    std::uint64_t instructions = 0;

    /** Mispredictions per kilo-instruction (recomputed, never stored). */
    double mpki() const;
};

/** Sweep driver options. */
struct SweepOptions
{
    std::size_t branchesPerTrace = 200000;
    std::size_t chunkBranches = 65536;
    /** Worker threads for the benchmark fan-out; 1 = serial in-caller. */
    unsigned jobs = 1;
    /**
     * Run-level simulation options for every point; a point whose spec
     * carries "sim.delay" additionally runs on the pipeline engine at
     * that depth (update timing as a sweep dimension).
     */
    SimOptions sim;
    /**
     * Journal file (required).  Created with a header line when absent;
     * an existing journal resumes the sweep it belongs to.  A journal
     * holding rows outside this sweep's (benchmarks x points) matrix is
     * rejected — it belongs to a different sweep.
     */
    std::string journalPath;
    /** Called per finished benchmark task: (name, points simulated). */
    std::function<void(const std::string &, std::size_t)> progress;
    /**
     * Observation registry (null = metrics off, the default).  When set,
     * runSweep sizes one CellObs slot per (benchmark, point) cell at
     * index b * npoints + p — the journal's benchmark-major order — and
     * attaches probes for every cell simulated THIS run.  Cells resumed
     * from the journal keep empty slots: their internals were observed
     * (or not) by the run that simulated them.  Never part of the
     * journal fingerprint — a journal recorded without metrics resumes
     * under a registry and vice versa (inertness is tested).
     */
    obs::MetricsRegistry *metrics = nullptr;
    /**
     * Optional timing-sidecar CSV path ("benchmark,seconds,
     * branches_per_sec", one row per benchmark simulated this run, in
     * declared order).  Written after the canonical journal rewrite and
     * deliberately NOT part of the journal or its fingerprint: wall
     * time is scheduling, not results.
     */
    std::string timingSidecarPath;
};

/** Results of a sweep: declared orders plus the full cell matrix. */
struct SweepResults
{
    std::vector<std::string> points;      //!< canonical specs, declared order
    std::vector<std::string> benchmarks;  //!< names, declared order
    /** Benchmark-major, point-minor; loaded and simulated cells merged. */
    std::vector<SweepCell> cells;
    /** Cells simulated by this run (the rest came from the journal). */
    std::size_t simulatedCells = 0;

    /** Cell for (benchmark, spec); throws std::out_of_range if absent. */
    const SweepCell &at(const std::string &benchmark,
                        const std::string &spec) const;

    /** Mean MPKI of @p spec over benchmarks in @p suite ("" = all). */
    double averageMpki(const std::string &spec,
                       const std::string &suite = "") const;
};

/**
 * Run (or resume) a sweep of @p points over @p benchmarks.  Points are
 * canonicalized and must be distinct; every benchmark is validated up
 * front.  See the file header for the journal/resume/determinism model.
 * Throws std::invalid_argument on bad inputs and std::runtime_error on
 * journal mismatches or I/O failures.
 */
SweepResults runSweep(const std::vector<BenchmarkSpec> &benchmarks,
                      const std::vector<std::string> &points,
                      const SweepOptions &options);

// -- Journal I/O (shared with the pareto layer and tests) -----------------

/**
 * The journal's metadata line: a fingerprint of everything that changes
 * the simulated numbers — the run options (branches, warm-up) and, when
 * the sweep includes recorded benchmarks, a content hash of their trace
 * files (a generated benchmark is fully determined by its name + the
 * options, but a recording's counters depend on the file bytes).
 * Resume refuses a journal whose metadata differs.
 */
std::string journalMeta(const std::vector<BenchmarkSpec> &benchmarks,
                        const SweepOptions &options);

/** The journal's fixed CSV header line (no trailing newline). */
std::string journalHeader();

/** One journal row for @p cell (no trailing newline; spec is quoted). */
std::string formatJournalRow(const SweepCell &cell);

/** Parse one journal row; throws std::runtime_error on malformed rows. */
SweepCell parseJournalRow(const std::string &line);

/**
 * Load every cell of a journal file.  A truncated trailing line (kill
 * mid-append) is silently dropped; a malformed row anywhere else, a bad
 * metadata/header line, or an unreadable file throws std::runtime_error.
 * When @p meta is non-null it receives the journal's metadata line.
 */
std::vector<SweepCell> loadJournal(const std::string &path,
                                   std::string *meta = nullptr);

} // namespace imli

#endif // IMLI_SRC_DSE_SWEEP_HH
