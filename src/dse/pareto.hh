/**
 * @file
 * Pareto reduction of a sweep journal: the MPKI-vs-storage-bits frontier.
 *
 * Architecture note (src/dse/): this is the reporting end of the DSE
 * pipeline (param_space -> sweep -> pareto).  The paper's Section 4.4
 * argument is accuracy per bit; a sweep produces (spec, storage bits,
 * per-benchmark counters) cells, and this layer aggregates them per spec
 * (mean MPKI over the selected suite) and tags every point as dominated
 * or frontier.
 *
 * Dominance: A dominates B iff A needs no more storage, mispredicts no
 * more, and is strictly better on at least one of the two.  Points tied
 * on both axes do not dominate each other, so duplicated design points
 * both stay on the frontier.  Marking is O(n log n); tests cross-check
 * it against an O(n^2) oracle.
 */

#ifndef IMLI_SRC_DSE_PARETO_HH
#define IMLI_SRC_DSE_PARETO_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/dse/sweep.hh"

namespace imli
{

/** One config point on the accuracy/storage plane. */
struct ParetoEntry
{
    std::string spec;
    double avgMpki = 0.0;
    std::uint64_t storageBits = 0;
    std::size_t benchmarkCount = 0;  //!< cells behind the average
    bool dominated = false;
};

/**
 * Aggregate sweep cells per spec: mean MPKI over the cells whose suite
 * matches @p suite ("" = all), storage bits from the cells (which pin it
 * per row).  Specs with no matching cells are omitted.  Entry order is
 * the specs' first appearance in @p cells.  Throws std::runtime_error if
 * one spec appears with inconsistent storage bits, or if specs carry
 * different cell counts (a partial journal — averages over different
 * benchmark subsets are not comparable, so no frontier is computed).
 */
std::vector<ParetoEntry> aggregateCells(const std::vector<SweepCell> &cells,
                                        const std::string &suite = "");

/**
 * The frontier display/scan order: storage ascending, then MPKI, then
 * spec.  Shared by markDominated's sweep, paretoFrontier's output and
 * the explorer CLI, so the CLI cannot silently diverge from the
 * library's documented ordering.
 */
bool paretoOrderLess(const ParetoEntry &a, const ParetoEntry &b);

/** Tag every entry's `dominated` flag in place (O(n log n)). */
void markDominated(std::vector<ParetoEntry> &entries);

/**
 * The frontier: non-dominated entries of @p entries (dominance is
 * recomputed), sorted by storage ascending, then MPKI, then spec.
 */
std::vector<ParetoEntry>
paretoFrontier(std::vector<ParetoEntry> entries);

/**
 * Incremental per-spec aggregation for mid-merge Pareto views.  Unlike
 * aggregateCells — which refuses partial journals because averages over
 * different benchmark subsets are not comparable as FINAL results —
 * this accumulator is explicitly for evolving views: shard merges feed
 * cells as fragments land, and entries() reports the running averages
 * (each entry's benchmarkCount says how much of the suite is behind
 * it).  Feeding every cell of a complete journal yields exactly
 * aggregateCells' entries.
 */
class IncrementalPareto
{
  public:
    /** Aggregate only cells of @p suite ("" = all). */
    explicit IncrementalPareto(std::string suite = "");

    /** Fold one cell in (any order).  Throws std::runtime_error when a
     *  spec reappears with different storage bits. */
    void add(const SweepCell &cell);

    /** Current entries (spec first-appearance order, running averages),
     *  with dominance marked over the current state. */
    std::vector<ParetoEntry> entries() const;

    /** Current non-dominated entries in paretoOrderLess order. */
    std::vector<ParetoEntry> frontier() const;

    /** Cells folded in so far (after suite filtering). */
    std::size_t cellCount() const { return cells; }

  private:
    std::string suite;
    std::vector<ParetoEntry> partial;  //!< avgMpki holds the SUM here
    std::unordered_map<std::string, std::size_t> specSlots;
    std::size_t cells = 0;
};

} // namespace imli

#endif // IMLI_SRC_DSE_PARETO_HH
