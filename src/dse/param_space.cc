#include "src/dse/param_space.hh"

#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>

#include "src/predictors/zoo.hh"
#include "src/util/cli.hh"
#include "src/util/hashing.hh"
#include "src/util/rng.hh"

namespace imli
{

namespace
{

long long
parseDimensionInt(const std::string &text, const std::string &dim)
{
    return parseDecimalLLStrict(text, "dimension " + dim);
}

void
checkDimensionRange(long long v, const OverrideKeyInfo &info)
{
    if (v < info.minValue || v > info.maxValue)
        throw std::invalid_argument(
            "dimension " + info.key + ": value " + std::to_string(v) +
            " is out of range [" + std::to_string(info.minValue) + ", " +
            std::to_string(info.maxValue) + "]");
}

/**
 * Expand one value token: "7", "4..9" or "4..16..4".  Range endpoints
 * are bounds-checked against the key's documented range BEFORE the
 * expansion loop, so "8..99999999999" throws instead of materializing
 * billions of values.  Power-of-two keys (outer.bits, outer.pipe) step
 * ranges through the powers of two — "64..1024" means 64,128,...,1024 —
 * since every intermediate integer would be rejected anyway.
 */
void
appendValues(std::vector<long long> &out, const std::string &token,
             const OverrideKeyInfo &info)
{
    const std::string &dim = info.key;
    const auto dots = token.find("..");
    if (dots == std::string::npos) {
        const long long v = parseDimensionInt(token, dim);
        checkDimensionRange(v, info);
        if (info.powerOfTwo && !isPowerOfTwo(v))
            throw std::invalid_argument("dimension " + dim + ": value " +
                                        std::to_string(v) +
                                        " must be a power of two");
        out.push_back(v);
        return;
    }
    const std::string lo_text = token.substr(0, dots);
    std::string hi_text = token.substr(dots + 2);
    long long step = 1;
    const auto dots2 = hi_text.find("..");
    if (dots2 != std::string::npos) {
        if (info.powerOfTwo)
            throw std::invalid_argument(
                "dimension " + dim + ": power-of-two keys take a plain "
                "range (lo..hi steps through the powers of two)");
        step = parseDimensionInt(hi_text.substr(dots2 + 2), dim);
        hi_text = hi_text.substr(0, dots2);
        if (step < 1)
            throw std::invalid_argument("dimension " + dim +
                                        ": range step must be >= 1");
    }
    const long long lo = parseDimensionInt(lo_text, dim);
    const long long hi = parseDimensionInt(hi_text, dim);
    if (lo > hi)
        throw std::invalid_argument("dimension " + dim + ": range " + token +
                                    " is descending");
    checkDimensionRange(lo, info);
    checkDimensionRange(hi, info);
    if (info.powerOfTwo) {
        if (!isPowerOfTwo(lo) || !isPowerOfTwo(hi))
            throw std::invalid_argument(
                "dimension " + dim + ": range endpoints " + token +
                " must be powers of two");
        for (long long v = lo; v <= hi; v *= 2)
            out.push_back(v);
        return;
    }
    for (long long v = lo; v <= hi; v += step) {
        out.push_back(v);
        // `hi - step` cannot underflow (0 <= hi <= 65536, 1 <= step <=
        // LLONG_MAX); `v += step` CAN overflow for a huge step, so stop
        // before the increment would pass hi.
        if (v > hi - step)
            break;
    }
}

const OverrideKeyInfo &
keyInfoOrThrow(const std::string &key)
{
    static const std::vector<OverrideKeyInfo> keys = knownOverrideKeys();
    for (const OverrideKeyInfo &info : keys)
        if (info.key == key)
            return info;
    throw std::invalid_argument("unknown override key in dimension: " + key);
}

/**
 * Compose base + per-dimension assignments into one canonical point.
 * canonicalSpec runs the full zoo validation (ranges, host
 * applicability, cross-parameter constraints) on the composed string.
 */
/**
 * True when @p spec has an '@' outside any parentheses — its own
 * override section, as opposed to one belonging to a meta sub-spec.
 */
bool
hasTopLevelAt(const std::string &spec)
{
    int depth = 0;
    for (char c : spec) {
        if (c == '(')
            ++depth;
        else if (c == ')' && depth > 0)
            --depth;
        else if (c == '@' && depth == 0)
            return true;
    }
    return false;
}

std::string
composePoint(const std::string &base,
             const std::vector<ParamDimension> &dims,
             const std::vector<std::size_t> &pick)
{
    std::string s = base;
    char sep = hasTopLevelAt(base) ? ',' : '@';
    for (std::size_t d = 0; d < dims.size(); ++d) {
        const long long v = dims[d].values[pick[d]];
        s += sep + dims[d].key + "=";
        s += dims[d].key == "meta.policy" ? metaPolicyValueName(v)
                                          : std::to_string(v);
        sep = ',';
    }
    return canonicalSpec(s);
}

void
checkDimensions(const std::vector<ParamDimension> &dims)
{
    std::set<std::string> seen;
    for (const ParamDimension &d : dims) {
        if (d.values.empty())
            throw std::invalid_argument("dimension " + d.key +
                                        " has no values");
        if (!seen.insert(d.key).second)
            throw std::invalid_argument("duplicate dimension key: " + d.key);
    }
}

} // anonymous namespace

ParamDimension
parseDimension(const std::string &text)
{
    const auto eq = text.find('=');
    if (eq == std::string::npos || eq == 0)
        throw std::invalid_argument("dimension \"" + text +
                                    "\" is not of the form key=v1,v2,...");
    ParamDimension dim;
    dim.key = text.substr(0, eq);
    const OverrideKeyInfo &info = keyInfoOrThrow(dim.key);

    std::string token;
    std::istringstream is(text.substr(eq + 1));
    while (std::getline(is, token, ',')) {
        if (token.empty())
            throw std::invalid_argument("dimension " + dim.key +
                                        " has an empty value token");
        // meta.policy sweeps over the named values, e.g.
        // "meta.policy=tournament,ucb,fusion" — no numeric ranges.
        if (dim.key == "meta.policy")
            dim.values.push_back(metaPolicyValueFromName(token));
        else
            appendValues(dim.values, token, info);
    }
    if (dim.values.empty())
        throw std::invalid_argument("dimension " + dim.key +
                                    " has no values");
    // Duplicates (a repeated token or overlapping ranges) would expand
    // into duplicate grid points; name the value here rather than fail
    // later with runSweep's generic duplicate-point error.
    std::set<long long> seen;
    for (long long v : dim.values)
        if (!seen.insert(v).second)
            throw std::invalid_argument("dimension " + dim.key +
                                        ": duplicate value " +
                                        std::to_string(v));
    return dim;
}

std::size_t
ParamSpace::gridSize() const
{
    std::size_t n = 1;
    for (const ParamDimension &d : dimensions) {
        if (d.values.empty())
            continue;
        if (n > std::numeric_limits<std::size_t>::max() / d.values.size())
            return std::numeric_limits<std::size_t>::max();
        n *= d.values.size();
    }
    return n;
}

std::vector<std::string>
ParamSpace::expandGrid() const
{
    checkDimensions(dimensions);
    if (gridSize() > maxGridPoints)
        throw std::invalid_argument(
            "parameter grid has " +
            (gridSize() == std::numeric_limits<std::size_t>::max()
                 ? std::string("more than " +
                               std::to_string(maxGridPoints))
                 : std::to_string(gridSize())) +
            " points (limit " + std::to_string(maxGridPoints) +
            "); use --sample or fewer/shorter dimensions");
    std::vector<std::string> points;
    points.reserve(gridSize());
    std::vector<std::size_t> pick(dimensions.size(), 0);
    while (true) {
        points.push_back(composePoint(baseSpec, dimensions, pick));
        // Odometer increment, last dimension fastest (row-major order).
        std::size_t d = dimensions.size();
        while (d > 0) {
            --d;
            if (++pick[d] < dimensions[d].values.size())
                break;
            pick[d] = 0;
            if (d == 0)
                return points;
        }
        if (dimensions.empty())
            return points;
    }
}

std::vector<std::string>
ParamSpace::sampleRandom(std::size_t count, std::uint64_t seed) const
{
    checkDimensions(dimensions);
    std::vector<std::string> points;
    std::set<std::string> seen;
    Xoroshiro128 rng(seed);
    // Bounded re-draw: a small space stops growing once exhausted.
    const std::size_t attempts = count * 16 + 16;
    std::vector<std::size_t> pick(dimensions.size(), 0);
    for (std::size_t a = 0; a < attempts && points.size() < count; ++a) {
        for (std::size_t d = 0; d < dimensions.size(); ++d)
            pick[d] = static_cast<std::size_t>(
                rng.below(dimensions[d].values.size()));
        std::string point = composePoint(baseSpec, dimensions, pick);
        if (seen.insert(point).second)
            points.push_back(std::move(point));
    }
    return points;
}

} // namespace imli
