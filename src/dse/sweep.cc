#include "src/dse/sweep.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "src/corpus/trace_corpus.hh"
#include "src/dse/pareto.hh"
#include "src/obs/metrics.hh"
#include "src/obs/phase_series.hh"
#include "src/predictors/zoo.hh"
#include "src/util/cli.hh"
#include "src/util/table_writer.hh"
#include "src/util/thread_pool.hh"

namespace imli
{

double
SweepCell::mpki() const
{
    if (instructions == 0)
        return 0.0;
    return 1000.0 * static_cast<double>(mispredictions) /
           static_cast<double>(instructions);
}

const SweepCell &
SweepResults::at(const std::string &benchmark, const std::string &spec) const
{
    for (const SweepCell &cell : cells)
        if (cell.benchmark == benchmark && cell.spec == spec)
            return cell;
    throw std::out_of_range("no sweep cell for " + benchmark + " / " + spec);
}

double
SweepResults::averageMpki(const std::string &spec,
                          const std::string &suite) const
{
    double total = 0.0;
    std::size_t count = 0;
    for (const SweepCell &cell : cells) {
        if (cell.spec != spec)
            continue;
        if (!suite.empty() && cell.suite != suite)
            continue;
        total += cell.mpki();
        ++count;
    }
    return count == 0 ? 0.0 : total / static_cast<double>(count);
}

std::string
journalMeta(const std::vector<BenchmarkSpec> &benchmarks,
            const SweepOptions &options)
{
    // Everything that changes the simulated counters belongs here; the
    // chunk size, worker count and prefetch lookahead are scheduling
    // details that provably do not (bit-identity is tested), so they are
    // deliberately absent — a journal recorded without prefetching
    // resumes under a run-level lookahead and vice versa.  A per-point
    // sim.delay or sim.prefetch is not needed either: each is part of
    // the point's canonical spec, so it already distinguishes journal
    // rows.
    std::string meta =
        "#sweep branches=" + std::to_string(options.branchesPerTrace) +
        " warmup=" + std::to_string(options.sim.warmupBranches);
    // Run-level pipeline engine (applied to every point): appended only
    // when active so pre-pipeline journals still resume.
    if (options.sim.usePipeline())
        meta += " delay=" + std::to_string(options.sim.updateDelay);

    // Recorded benchmarks: FNV-1a over (name, trace bytes) in declared
    // order.  A resumed sweep pointed at regenerated or different trace
    // files must be rejected, not silently merged.
    std::uint64_t hash = 1469598103934665603ull;
    const auto mix = [&hash](const char *data, std::size_t size) {
        for (std::size_t i = 0; i < size; ++i) {
            hash ^= static_cast<unsigned char>(data[i]);
            hash *= 1099511628211ull;
        }
    };
    bool anyRecorded = false;
    for (const BenchmarkSpec &spec : benchmarks) {
        if (spec.backend == TraceBackend::Generated)
            continue;
        anyRecorded = true;
        mix(spec.name.data(), spec.name.size());
        mix("\0", 1);
        std::ifstream in(spec.tracePath, std::ios::binary);
        if (!in)
            throw std::runtime_error("cannot read recorded trace for " +
                                     spec.name + ": " + spec.tracePath);
        // Fixed-size read loop: external CBP traces can be hundreds of
        // MB, so hash in O(1) memory instead of slurping the file.
        char chunk[65536];
        while (in.read(chunk, sizeof(chunk)) || in.gcount() > 0)
            mix(chunk, static_cast<std::size_t>(in.gcount()));
        if (in.bad())
            throw std::runtime_error("read failed on recorded trace for " +
                                     spec.name + ": " + spec.tracePath);
    }
    if (anyRecorded) {
        std::ostringstream hex;
        hex << std::hex << hash;
        meta += " traces=" + hex.str();
    }
    return meta;
}

std::string
journalHeader()
{
    return "spec,benchmark,suite,storage_bits,mispredictions,conditionals,"
           "instructions";
}

std::string
formatJournalRow(const SweepCell &cell)
{
    // Only the spec can contain commas; it is always quoted.  Counters
    // are stored as integers so a parsed row is exactly the simulated
    // cell (MPKI is recomputed, never parsed from a rounded decimal).
    std::ostringstream os;
    os << '"' << cell.spec << "\"," << cell.benchmark << ',' << cell.suite
       << ',' << cell.storageBits << ',' << cell.mispredictions << ','
       << cell.conditionals << ',' << cell.instructions;
    return os.str();
}

namespace
{

std::uint64_t
parseJournalCount(const std::string &text, const std::string &line)
{
    std::uint64_t v = 0;
    if (!parseDecimalU64(text, v))
        throw std::runtime_error("malformed journal row (bad counter \"" +
                                 text + "\"): " + line);
    return v;
}

} // anonymous namespace

SweepCell
parseJournalRow(const std::string &line)
{
    if (line.size() < 2 || line[0] != '"')
        throw std::runtime_error("malformed journal row (no quoted spec): " +
                                 line);
    const auto close = line.find('"', 1);
    if (close == std::string::npos || close + 1 >= line.size() ||
        line[close + 1] != ',')
        throw std::runtime_error("malformed journal row (unterminated "
                                 "spec): " + line);
    SweepCell cell;
    cell.spec = line.substr(1, close - 1);

    std::vector<std::string> fields;
    std::string token;
    std::istringstream is(line.substr(close + 2));
    while (std::getline(is, token, ','))
        fields.push_back(token);
    if (fields.size() != 6)
        throw std::runtime_error("malformed journal row (want 6 fields "
                                 "after spec, got " +
                                 std::to_string(fields.size()) + "): " + line);
    cell.benchmark = fields[0];
    cell.suite = fields[1];
    if (cell.benchmark.empty() || cell.suite.empty())
        throw std::runtime_error(
            "malformed journal row (empty benchmark/suite): " + line);
    cell.storageBits = parseJournalCount(fields[2], line);
    cell.mispredictions = parseJournalCount(fields[3], line);
    cell.conditionals = parseJournalCount(fields[4], line);
    cell.instructions = parseJournalCount(fields[5], line);
    return cell;
}

std::vector<SweepCell>
loadJournal(const std::string &path, std::string *meta)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("cannot open sweep journal: " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string content = buffer.str();

    // A row is committed iff its newline reached the file: a kill during
    // an append leaves a tail with no '\n', which is dropped here (even
    // when the truncated prefix happens to still parse).
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (true) {
        const auto nl = content.find('\n', start);
        if (nl == std::string::npos)
            break; // non-newline-terminated tail: incomplete, dropped
        lines.push_back(content.substr(start, nl - start));
        start = nl + 1;
    }
    if (lines.size() < 2 || lines[0].rfind("#sweep ", 0) != 0)
        throw std::runtime_error("sweep journal has no metadata line: " +
                                 path);
    if (lines[1] != journalHeader())
        throw std::runtime_error("sweep journal has a foreign header: " +
                                 path);
    if (meta)
        *meta = lines[0];
    std::vector<SweepCell> cells;
    cells.reserve(lines.size() - 2);
    for (std::size_t i = 2; i < lines.size(); ++i)
        cells.push_back(parseJournalRow(lines[i]));
    return cells;
}

namespace
{

/** Write meta + header + @p rows to @p path via temp file + rename. */
void
rewriteJournal(const std::string &path, const std::string &meta,
               const std::vector<std::string> &rows)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            throw std::runtime_error("cannot write sweep journal: " + tmp);
        os << meta << '\n' << journalHeader() << '\n';
        for (const std::string &row : rows)
            os << row << '\n';
        os.flush();
        if (!os)
            throw std::runtime_error("write failed on sweep journal: " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        throw std::runtime_error("cannot replace sweep journal: " + path);
}

bool
fileExists(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return static_cast<bool>(in);
}

} // anonymous namespace

namespace
{

/**
 * Everything runSweep / planShards / runShard / mergeShardJournals
 * validate and derive up front, shared so every entry point applies the
 * identical canonicalization and the identical checks.
 */
struct SweepContext
{
    std::vector<ParsedSpec> parsedPoints;
    std::vector<std::string> points;  //!< canonical, declared order
    std::vector<std::uint64_t> storageBits;  //!< per point
    std::string meta;  //!< the full sweep's journal metadata line
};

SweepContext
prepareSweep(const std::vector<BenchmarkSpec> &benchmarks,
             const std::vector<std::string> &points,
             const SweepOptions &options, const std::string &what)
{
    if (points.empty())
        throw std::invalid_argument(what + ": no config points");
    if (benchmarks.empty())
        throw std::invalid_argument(what + ": no benchmarks");

    SweepContext ctx;
    ctx.points.reserve(points.size());
    // One parse per point; workers and the storage audit below reuse the
    // ParsedSpec instead of re-parsing the string.
    ctx.parsedPoints.reserve(points.size());
    for (const std::string &point : points) {
        ctx.parsedPoints.push_back(parseSpec(point));
        ctx.points.push_back(describeConfig(ctx.parsedPoints.back()));
    }
    {
        std::set<std::string> unique(ctx.points.begin(), ctx.points.end());
        if (unique.size() != ctx.points.size())
            throw std::invalid_argument(
                what + ": duplicate config points after canonicalization");
    }
    {
        std::set<std::string> names;
        for (const BenchmarkSpec &spec : benchmarks) {
            validateBenchmark(spec);
            if (!names.insert(spec.name).second)
                throw std::invalid_argument(
                    what + ": duplicate benchmark name " + spec.name);
        }
    }

    // One predictor construction per point up front: pins the storage
    // budget for every journal row and validates resumed rows against
    // the current geometry.
    ctx.storageBits.resize(ctx.points.size());
    for (std::size_t p = 0; p < ctx.points.size(); ++p)
        ctx.storageBits[p] = makePredictor(ctx.parsedPoints[p])->storageBits();

    ctx.meta = journalMeta(benchmarks, options);
    return ctx;
}

/** Contiguous, covering partition of @p nbench into @p count ranges. */
std::vector<ShardRange>
partitionBenchmarks(std::size_t nbench, std::size_t count)
{
    const std::size_t base = nbench / count;
    const std::size_t extra = nbench % count;
    std::vector<ShardRange> shards;
    shards.reserve(count);
    std::size_t begin = 0;
    for (std::size_t i = 0; i < count; ++i) {
        const std::size_t len = base + (i < extra ? 1 : 0);
        shards.push_back({i, begin, begin + len});
        begin += len;
    }
    return shards;
}

/**
 * The sweep engine proper: run (or resume) the benchmark range
 * [begin_bench, end_bench) of a sweep against @p journal_path.  The
 * full-range call IS runSweep; a sub-range call is a shard writing its
 * fragment.  Either way the journal carries the full sweep's metadata
 * line, the standard resume semantics, and the canonical rewrite.
 */
SweepResults
runRange(const std::vector<BenchmarkSpec> &benchmarks,
         const SweepContext &ctx, const SweepOptions &options,
         const std::string &journal_path, std::size_t begin_bench,
         std::size_t end_bench)
{
    SweepResults results;
    results.points = ctx.points;
    for (std::size_t b = begin_bench; b < end_bench; ++b)
        results.benchmarks.push_back(benchmarks[b].name);

    const std::size_t npoints = ctx.points.size();
    const std::size_t nbench = end_bench - begin_bench;
    const std::vector<std::uint64_t> &storageBits = ctx.storageBits;
    const std::string &meta = ctx.meta;

    // ---- Resume: absorb committed rows of an existing journal ----------
    std::vector<std::string> rows(nbench * npoints);
    std::vector<SweepCell> parsed(nbench * npoints);
    std::vector<bool> done(nbench * npoints, false);
    if (fileExists(journal_path)) {
        // Range-local index: a fragment holding rows outside its own
        // benchmark range is rejected by the lookup below, exactly like
        // a foreign benchmark in a single-process resume.
        std::unordered_map<std::string, std::size_t> benchIndex;
        for (std::size_t i = 0; i < nbench; ++i)
            benchIndex.emplace(benchmarks[begin_bench + i].name, i);
        std::unordered_map<std::string, std::size_t> pointIndex;
        for (std::size_t i = 0; i < npoints; ++i)
            pointIndex.emplace(ctx.points[i], i);

        std::string journalOptions;
        const std::vector<SweepCell> loaded =
            loadJournal(journal_path, &journalOptions);
        if (journalOptions != meta)
            throw std::runtime_error(
                "sweep journal was recorded with different options (\"" +
                journalOptions + "\" vs \"" + meta + "\"); merging would "
                "corrupt the results — use a fresh journal file");
        for (const SweepCell &cell : loaded) {
            const auto bIt = benchIndex.find(cell.benchmark);
            const auto pIt = pointIndex.find(cell.spec);
            if (bIt == benchIndex.end() || pIt == pointIndex.end())
                throw std::runtime_error(
                    "sweep journal row is not part of this sweep (" +
                    cell.benchmark + " / " + cell.spec + "); refusing to "
                    "resume a different sweep's journal");
            const std::size_t b = bIt->second, p = pIt->second;
            if (cell.suite != benchmarks[begin_bench + b].suite)
                throw std::runtime_error(
                    "sweep journal suite mismatch for " + cell.benchmark);
            if (cell.storageBits != storageBits[p])
                throw std::runtime_error(
                    "sweep journal storage mismatch for " + cell.spec +
                    " (journal " + std::to_string(cell.storageBits) +
                    " bits, current geometry " +
                    std::to_string(storageBits[p]) + " bits)");
            const std::size_t idx = b * npoints + p;
            if (done[idx])
                throw std::runtime_error(
                    "sweep journal has a duplicate row for " +
                    cell.benchmark + " / " + cell.spec);
            done[idx] = true;
            parsed[idx] = cell;
            rows[idx] = formatJournalRow(cell);
        }
        // Drop any truncated tail before appending new rows after it.
        std::vector<std::string> committed;
        for (std::size_t i = 0; i < rows.size(); ++i)
            if (done[i])
                committed.push_back(rows[i]);
        rewriteJournal(journal_path, meta, committed);
    } else {
        rewriteJournal(journal_path, meta, {});
    }

    // ---- Simulate the missing cells ------------------------------------
    std::ofstream journal(journal_path, std::ios::binary | std::ios::app);
    if (!journal)
        throw std::runtime_error("cannot append to sweep journal: " +
                                 journal_path);
    std::mutex journalMutex;

    // Pending lists are fixed before the fan-out: workers must not read
    // the bit-packed `done` vector while other workers write it (adjacent
    // bits share a byte, so that would be an unsynchronized data race).
    std::vector<std::vector<std::size_t>> pendingByBench(nbench);
    for (std::size_t b = 0; b < nbench; ++b)
        for (std::size_t p = 0; p < npoints; ++p)
            if (!done[b * npoints + p])
                pendingByBench[b].push_back(p);

    // Per-cell observation slots (journal order) and the per-benchmark
    // timing shards, both sized before the fan-out so workers only ever
    // write their own fixed indices.
    if (options.metrics != nullptr)
        options.metrics->resize(nbench * npoints);
    std::vector<double> benchSeconds(nbench, 0.0);
    std::vector<std::uint64_t> benchConditionals(nbench, 0);

    const auto runBenchmark = [&](std::size_t b) {
        const BenchmarkSpec &bench = benchmarks[begin_bench + b];
        const std::vector<std::size_t> &pending = pendingByBench[b];
        if (pending.empty()) {
            if (options.progress) {
                std::lock_guard<std::mutex> lock(journalMutex);
                options.progress(bench.name, 0);
            }
            return;
        }
        std::vector<PredictorPtr> predictors;
        std::vector<SimOptions> simOptions;
        predictors.reserve(pending.size());
        simOptions.reserve(pending.size());
        for (std::size_t p : pending) {
            predictors.push_back(makePredictor(ctx.parsedPoints[p]));
            // sim.delay is a sweepable dimension: a point carrying it is
            // pinned to its own engine depth (see applySpecDelay),
            // sharing the same streamed pass with the rest.
            simOptions.push_back(applySpecDelay(ctx.parsedPoints[p],
                                                options.sim));
        }
        // Probe wiring, before the first predict: each cell's slot lives
        // at its range-local journal index, owned by this worker alone.
        if (options.metrics != nullptr) {
            for (std::size_t i = 0; i < pending.size(); ++i) {
                obs::CellObs &oc =
                    options.metrics->cell(b * npoints + pending[i]);
                oc.benchmark = bench.name;
                oc.config = results.points[pending[i]];
                predictors[i]->attachProbes(oc.scope);
                if (options.metrics->phaseInterval > 0)
                    oc.phase = std::make_unique<obs::PhaseRecorder>(
                        options.metrics->phaseInterval, &oc.scope);
                simOptions[i].metrics = &oc.scope;
                simOptions[i].phase = oc.phase.get();
            }
        }

        const auto start = std::chrono::steady_clock::now();
        // Streams open through the corpus factory: recorded traces are
        // decoded once per process and shared across shards/resumes.
        const std::unique_ptr<BranchSource> source = TraceCorpus::open(
            bench, options.branchesPerTrace, options.chunkBranches);
        const std::vector<SimResult> simmed =
            simulateMany(predictors, *source, simOptions);
        const double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        benchSeconds[b] = elapsed;
        benchConditionals[b] = simmed[0].conditionals;
        if (options.metrics != nullptr) {
            for (std::size_t i = 0; i < pending.size(); ++i) {
                obs::CellObs &oc =
                    options.metrics->cell(b * npoints + pending[i]);
                oc.wallSeconds = elapsed;
                if (oc.phase != nullptr)
                    oc.phase->finish();
            }
        }

        std::lock_guard<std::mutex> lock(journalMutex);
        for (std::size_t i = 0; i < pending.size(); ++i) {
            const std::size_t p = pending[i];
            SweepCell cell;
            cell.spec = results.points[p];
            cell.benchmark = bench.name;
            cell.suite = bench.suite;
            cell.storageBits = storageBits[p];
            cell.mispredictions = simmed[i].mispredictions;
            cell.conditionals = simmed[i].conditionals;
            cell.instructions = simmed[i].instructions;
            const std::size_t idx = b * npoints + p;
            rows[idx] = formatJournalRow(cell);
            parsed[idx] = std::move(cell);
            journal << rows[idx] << '\n';
        }
        journal.flush();
        results.simulatedCells += pending.size();
        if (options.progress)
            options.progress(bench.name, pending.size());
    };

    const unsigned jobs =
        options.jobs == 0 ? ThreadPool::hardwareThreads() : options.jobs;
    if (jobs <= 1 || nbench <= 1) {
        for (std::size_t b = 0; b < nbench; ++b)
            runBenchmark(b);
    } else {
        ThreadPool pool(static_cast<unsigned>(
            std::min<std::size_t>(jobs, nbench)));
        pool.parallelFor(nbench, runBenchmark);
    }
    journal.close();

    // ---- Canonical rewrite: deterministic bytes whatever the history ---
    rewriteJournal(journal_path, meta, rows);

    // ---- Timing sidecar: scheduling data, kept OUT of the journal ------
    // One row per benchmark simulated this run, declared order.  Values
    // are wall time, so the file is not reproducible — which is exactly
    // why it never joins the fingerprinted journal.
    if (!options.timingSidecarPath.empty()) {
        std::ofstream timing(options.timingSidecarPath,
                             std::ios::binary | std::ios::trunc);
        if (!timing)
            throw std::runtime_error("cannot write sweep timing sidecar: " +
                                     options.timingSidecarPath);
        timing << "benchmark,seconds,branches_per_sec\n";
        for (std::size_t b = 0; b < nbench; ++b) {
            if (pendingByBench[b].empty())
                continue; // resumed from the journal: no timing this run
            const double bps =
                benchSeconds[b] > 0.0
                    ? static_cast<double>(benchConditionals[b]) /
                          benchSeconds[b]
                    : 0.0;
            timing << benchmarks[begin_bench + b].name << ','
                   << formatDouble(benchSeconds[b], 3) << ','
                   << formatDouble(bps, 0) << '\n';
        }
        timing.flush();
        if (!timing)
            throw std::runtime_error("write failed on sweep timing "
                                     "sidecar: " + options.timingSidecarPath);
    }

    results.cells = std::move(parsed);
    return results;
}

} // anonymous namespace

SweepResults
runSweep(const std::vector<BenchmarkSpec> &benchmarks,
         const std::vector<std::string> &points, const SweepOptions &options)
{
    if (options.journalPath.empty())
        throw std::invalid_argument("runSweep: journalPath is required");
    const SweepContext ctx =
        prepareSweep(benchmarks, points, options, "runSweep");
    return runRange(benchmarks, ctx, options, options.journalPath, 0,
                    benchmarks.size());
}

ShardPlan
planShards(const std::vector<BenchmarkSpec> &benchmarks,
           const std::vector<std::string> &points,
           const SweepOptions &options, std::size_t shard_count)
{
    if (shard_count == 0)
        throw std::invalid_argument("planShards: shard count must be >= 1");
    const SweepContext ctx =
        prepareSweep(benchmarks, points, options, "planShards");
    ShardPlan plan;
    plan.points = ctx.points;
    plan.meta = ctx.meta;
    plan.benchmarks.reserve(benchmarks.size());
    for (const BenchmarkSpec &spec : benchmarks)
        plan.benchmarks.push_back(spec.name);
    plan.shards = partitionBenchmarks(benchmarks.size(), shard_count);
    return plan;
}

std::string
shardJournalPath(const std::string &journal_path, std::size_t shard_index)
{
    return journal_path + ".shard" + std::to_string(shard_index);
}

SweepResults
runShard(const std::vector<BenchmarkSpec> &benchmarks,
         const std::vector<std::string> &points, const SweepOptions &options,
         const ShardRange &range)
{
    if (options.journalPath.empty())
        throw std::invalid_argument("runShard: journalPath is required");
    if (range.beginBench > range.endBench ||
        range.endBench > benchmarks.size())
        throw std::invalid_argument(
            "runShard: shard range [" + std::to_string(range.beginBench) +
            ", " + std::to_string(range.endBench) +
            ") is outside the sweep's " +
            std::to_string(benchmarks.size()) + " benchmarks");
    const SweepContext ctx =
        prepareSweep(benchmarks, points, options, "runShard");
    return runRange(benchmarks, ctx, options,
                    shardJournalPath(options.journalPath, range.index),
                    range.beginBench, range.endBench);
}

SweepResults
mergeShardJournals(const std::vector<BenchmarkSpec> &benchmarks,
                   const std::vector<std::string> &points,
                   const SweepOptions &options, std::size_t shard_count,
                   const MergeProgress &on_shard)
{
    if (options.journalPath.empty())
        throw std::invalid_argument(
            "mergeShardJournals: journalPath is required");
    if (shard_count == 0)
        throw std::invalid_argument(
            "mergeShardJournals: shard count must be >= 1");
    const SweepContext ctx =
        prepareSweep(benchmarks, points, options, "mergeShardJournals");
    const std::vector<ShardRange> shards =
        partitionBenchmarks(benchmarks.size(), shard_count);

    const std::size_t npoints = ctx.points.size();
    const std::size_t nbench = benchmarks.size();
    std::unordered_map<std::string, std::size_t> pointIndex;
    for (std::size_t i = 0; i < npoints; ++i)
        pointIndex.emplace(ctx.points[i], i);
    std::unordered_map<std::string, std::size_t> benchIndex;
    for (std::size_t i = 0; i < nbench; ++i)
        benchIndex.emplace(benchmarks[i].name, i);

    std::vector<std::string> rows(nbench * npoints);
    std::vector<SweepCell> parsed(nbench * npoints);
    std::vector<bool> done(nbench * npoints, false);
    IncrementalPareto pareto;

    for (const ShardRange &range : shards) {
        const std::string fragment =
            shardJournalPath(options.journalPath, range.index);
        if (!fileExists(fragment))
            throw std::runtime_error(
                "mergeShardJournals: missing fragment for shard " +
                std::to_string(range.index) + ": " + fragment +
                " (run that shard first)");
        std::string fragmentMeta;
        const std::vector<SweepCell> cells =
            loadJournal(fragment, &fragmentMeta);
        if (fragmentMeta != ctx.meta)
            throw std::runtime_error(
                "shard fragment " + fragment +
                " was recorded with different options (\"" + fragmentMeta +
                "\" vs \"" + ctx.meta + "\"); it belongs to a different "
                "sweep");
        for (const SweepCell &cell : cells) {
            const auto bIt = benchIndex.find(cell.benchmark);
            const auto pIt = pointIndex.find(cell.spec);
            if (bIt == benchIndex.end() || pIt == pointIndex.end())
                throw std::runtime_error(
                    "shard fragment " + fragment +
                    " has a row outside this sweep (" + cell.benchmark +
                    " / " + cell.spec + ")");
            const std::size_t b = bIt->second, p = pIt->second;
            if (b < range.beginBench || b >= range.endBench)
                throw std::runtime_error(
                    "shard fragment " + fragment + " has a row outside "
                    "its benchmark range (" + cell.benchmark +
                    " belongs to another shard)");
            if (cell.suite != benchmarks[b].suite)
                throw std::runtime_error(
                    "shard fragment " + fragment + " suite mismatch for " +
                    cell.benchmark);
            if (cell.storageBits != ctx.storageBits[p])
                throw std::runtime_error(
                    "shard fragment " + fragment + " storage mismatch "
                    "for " + cell.spec + " (fragment " +
                    std::to_string(cell.storageBits) +
                    " bits, current geometry " +
                    std::to_string(ctx.storageBits[p]) + " bits)");
            const std::size_t idx = b * npoints + p;
            if (done[idx])
                throw std::runtime_error(
                    "shard fragment " + fragment +
                    " has a duplicate row for " + cell.benchmark + " / " +
                    cell.spec);
            done[idx] = true;
            rows[idx] = formatJournalRow(cell);
            parsed[idx] = cell;
            pareto.add(cell);
        }
        if (on_shard)
            on_shard(range, pareto.entries());
    }

    // Every cell must have landed: a missing cell usually means a shard
    // was killed mid-append (its tail row was dropped on load) — re-run
    // that shard to complete its fragment, then merge again.
    std::size_t missing = 0;
    std::string firstMissing;
    std::size_t firstMissingShard = 0;
    for (std::size_t b = 0; b < nbench; ++b)
        for (std::size_t p = 0; p < npoints; ++p)
            if (!done[b * npoints + p]) {
                ++missing;
                if (firstMissing.empty()) {
                    firstMissing =
                        benchmarks[b].name + " / " + ctx.points[p];
                    for (const ShardRange &range : shards)
                        if (b >= range.beginBench && b < range.endBench)
                            firstMissingShard = range.index;
                }
            }
    if (missing > 0)
        throw std::runtime_error(
            "mergeShardJournals: " + std::to_string(missing) +
            " cell(s) missing (first: " + firstMissing + ", shard " +
            std::to_string(firstMissingShard) + "); re-run the "
            "incomplete shard(s), then merge again");

    // The canonical journal: byte-identical to a single-process
    // runSweep of the same inputs.
    rewriteJournal(options.journalPath, ctx.meta, rows);

    SweepResults results;
    results.points = ctx.points;
    for (const BenchmarkSpec &spec : benchmarks)
        results.benchmarks.push_back(spec.name);
    results.cells = std::move(parsed);
    results.simulatedCells = 0;  // merge only validates and rewrites
    return results;
}

} // namespace imli
