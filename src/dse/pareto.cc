#include "src/dse/pareto.hh"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <unordered_map>

namespace imli
{

std::vector<ParetoEntry>
aggregateCells(const std::vector<SweepCell> &cells, const std::string &suite)
{
    std::vector<ParetoEntry> entries;
    std::vector<double> totals;
    std::unordered_map<std::string, std::size_t> slots;
    for (const SweepCell &cell : cells) {
        if (!suite.empty() && cell.suite != suite)
            continue;
        const auto inserted = slots.emplace(cell.spec, entries.size());
        const std::size_t slot = inserted.first->second;
        if (inserted.second) {
            ParetoEntry entry;
            entry.spec = cell.spec;
            entry.storageBits = cell.storageBits;
            entries.push_back(std::move(entry));
            totals.push_back(0.0);
        }
        if (entries[slot].storageBits != cell.storageBits)
            throw std::runtime_error(
                "inconsistent storage bits for spec " + cell.spec);
        totals[slot] += cell.mpki();
        entries[slot].benchmarkCount += 1;
    }
    for (std::size_t i = 0; i < entries.size(); ++i)
        entries[i].avgMpki =
            totals[i] / static_cast<double>(entries[i].benchmarkCount);
    // Averages are only comparable over the same benchmark set.  A
    // partial journal (killed sweep) can leave one spec with fewer cells
    // than another; comparing those averages would produce an invalid
    // frontier, so fail loudly and tell the user to finish the sweep.
    for (std::size_t i = 1; i < entries.size(); ++i)
        if (entries[i].benchmarkCount != entries[0].benchmarkCount)
            throw std::runtime_error(
                "journal is incomplete: spec " + entries[i].spec + " has " +
                std::to_string(entries[i].benchmarkCount) +
                " cells but " + entries[0].spec + " has " +
                std::to_string(entries[0].benchmarkCount) +
                " — resume the sweep to completion before pareto");
    return entries;
}

bool
paretoOrderLess(const ParetoEntry &a, const ParetoEntry &b)
{
    if (a.storageBits != b.storageBits)
        return a.storageBits < b.storageBits;
    if (a.avgMpki != b.avgMpki)
        return a.avgMpki < b.avgMpki;
    return a.spec < b.spec;
}

void
markDominated(std::vector<ParetoEntry> &entries)
{
    // Sort an index view by (storage asc, mpki asc); then a single sweep
    // sees every potential dominator before its victims.
    std::vector<std::size_t> order(entries.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return paretoOrderLess(entries[a], entries[b]);
              });

    // bestSmaller: min MPKI among points with strictly smaller storage —
    // such a point dominates anything at or above its MPKI here (strict
    // on the storage axis).  Within an equal-storage group, the group
    // minimum dominates the strictly worse members (strict on the MPKI
    // axis); exact ties dominate nothing.
    double bestSmaller = std::numeric_limits<double>::infinity();
    std::size_t g = 0;
    while (g < order.size()) {
        std::size_t end = g;
        while (end < order.size() &&
               entries[order[end]].storageBits ==
                   entries[order[g]].storageBits)
            ++end;
        const double groupMin = entries[order[g]].avgMpki;
        for (std::size_t i = g; i < end; ++i) {
            ParetoEntry &e = entries[order[i]];
            e.dominated =
                bestSmaller <= e.avgMpki || groupMin < e.avgMpki;
        }
        bestSmaller = std::min(bestSmaller, groupMin);
        g = end;
    }
}

std::vector<ParetoEntry>
paretoFrontier(std::vector<ParetoEntry> entries)
{
    markDominated(entries);
    std::vector<ParetoEntry> frontier;
    for (const ParetoEntry &e : entries)
        if (!e.dominated)
            frontier.push_back(e);
    std::sort(frontier.begin(), frontier.end(), paretoOrderLess);
    return frontier;
}

IncrementalPareto::IncrementalPareto(std::string suite)
    : suite(std::move(suite))
{
}

void
IncrementalPareto::add(const SweepCell &cell)
{
    if (!suite.empty() && cell.suite != suite)
        return;
    const auto inserted = specSlots.emplace(cell.spec, partial.size());
    const std::size_t slot = inserted.first->second;
    if (inserted.second) {
        ParetoEntry entry;
        entry.spec = cell.spec;
        entry.storageBits = cell.storageBits;
        partial.push_back(std::move(entry));
    }
    if (partial[slot].storageBits != cell.storageBits)
        throw std::runtime_error(
            "inconsistent storage bits for spec " + cell.spec);
    partial[slot].avgMpki += cell.mpki();  // a sum until entries()
    partial[slot].benchmarkCount += 1;
    ++cells;
}

std::vector<ParetoEntry>
IncrementalPareto::entries() const
{
    std::vector<ParetoEntry> out = partial;
    for (ParetoEntry &entry : out)
        entry.avgMpki /= static_cast<double>(entry.benchmarkCount);
    markDominated(out);
    return out;
}

std::vector<ParetoEntry>
IncrementalPareto::frontier() const
{
    return paretoFrontier(entries());
}

} // namespace imli
