#include "src/predictors/sc_component.hh"

namespace imli
{

VotingEngine::VotingEngine(const Config &config)
    : cfg(config), thresholdValue(config.thetaInit)
{
}

void
VotingEngine::addComponent(ScComponent *component)
{
    comps.push_back(component);
}

int
VotingEngine::sum(const ScContext &ctx) const
{
    int total = 0;
    for (const ScComponent *c : comps)
        total += c->vote(ctx);
    return total;
}

bool
VotingEngine::onOutcome(bool mispredicted, int abs_sum)
{
    const int tc_max = (1 << (cfg.tcBits - 1)) - 1;
    const int tc_min = -(1 << (cfg.tcBits - 1));

    const bool train = mispredicted || abs_sum < thresholdValue;

    if (mispredicted) {
        if (tuningCounter < tc_max)
            ++tuningCounter;
        if (tuningCounter == tc_max) {
            if (thresholdValue < cfg.thetaMax)
                ++thresholdValue;
            tuningCounter = 0;
        }
    } else if (abs_sum < thresholdValue) {
        if (tuningCounter > tc_min)
            --tuningCounter;
        if (tuningCounter == tc_min) {
            if (thresholdValue > cfg.thetaMin)
                --thresholdValue;
            tuningCounter = 0;
        }
    }
    return train;
}

void
VotingEngine::trainAll(const ScContext &ctx, bool taken)
{
    for (ScComponent *c : comps)
        c->update(ctx, taken);
}

void
VotingEngine::resolveAll(const ScContext &ctx, bool taken)
{
    for (ScComponent *c : comps)
        c->onResolved(ctx, taken);
}

void
VotingEngine::account(StorageAccount &acct) const
{
    for (const ScComponent *c : comps)
        c->account(acct);
    acct.add("voting/theta+tc", 8 + cfg.tcBits);
}

} // namespace imli
