#include "src/predictors/zoo.hh"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <stdexcept>

#include "src/predictors/bimodal.hh"
#include "src/predictors/gshare.hh"
#include "src/predictors/ittage_loop.hh"
#include "src/util/cli.hh"
#include "src/util/hashing.hh"

namespace imli
{

namespace
{

/**
 * Position of the first top-level (outside any parentheses) occurrence
 * of @p ch in @p s, or npos.  The spec grammar nests sub-specs — with
 * their own '@' sections and commas — inside "meta(...)", so every
 * structural scan must ignore bracketed content.
 */
std::size_t
findTopLevel(const std::string &s, char ch, std::size_t from = 0)
{
    int depth = 0;
    for (std::size_t i = from; i < s.size(); ++i) {
        if (s[i] == '(') {
            ++depth;
        } else if (s[i] == ')') {
            if (depth > 0)
                --depth;
        } else if (s[i] == ch && depth == 0) {
            return i;
        }
    }
    return std::string::npos;
}

/** Split "host+a+b" into host and lower-cased addon tokens. */
std::vector<std::string>
splitSpec(const std::string &spec)
{
    std::vector<std::string> parts;
    std::string token;
    std::istringstream is(spec);
    while (std::getline(is, token, '+'))
        parts.push_back(token);
    return parts;
}

ZooOptions
parseOptions(const std::vector<std::string> &parts)
{
    ZooOptions opts;
    for (std::size_t i = 1; i < parts.size(); ++i) {
        const std::string &t = parts[i];
        if (t == "i") {
            opts.imliSic = true;
            opts.imliOh = true;
        } else if (t == "sic") {
            opts.imliSic = true;
        } else if (t == "oh") {
            opts.imliOh = true;
        } else if (t == "l") {
            opts.local = true;
        } else if (t == "loop") {
            opts.loopOnly = true;
        } else if (t == "itl") {
            opts.ittageLoop = true;
        } else if (t == "wh") {
            opts.wormhole = true;
        } else if (t == "omli") {
            opts.omli = true;
        } else if (t == "imligsc") {
            opts.imliInGscTables = 2;
        } else {
            throw std::invalid_argument("unknown predictor add-on: " + t);
        }
    }
    return opts;
}

/** Canonical "+addon" suffix for an option set (fixed emission order). */
std::string
addonSuffix(const ZooOptions &o)
{
    std::string s;
    if (o.imliSic && o.imliOh)
        s += "+i";
    else if (o.imliSic)
        s += "+sic";
    else if (o.imliOh)
        s += "+oh";
    if (o.omli)
        s += "+omli";
    if (o.imliInGscTables > 0)
        s += "+imligsc";
    if (o.local)
        s += "+l";
    else if (o.loopOnly)
        s += "+loop";
    if (o.ittageLoop)
        s += "+itl";
    if (o.wormhole)
        s += "+wh";
    return s;
}

/**
 * Compose the display name from the host and active add-ons: the
 * canonical suffix upper-cased ("+i" -> "+I"), so the echoed spec and
 * the display name cannot drift apart.
 */
std::string
displayName(const std::string &host, const ZooOptions &opts)
{
    std::string name = host;
    for (char c : addonSuffix(opts))
        name += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    return name;
}

// -------------------------------------------------------------------------
// The override key table.  Each entry names one geometry knob, its legal
// range, and how it lands in the two host Config structs.  tage.* and
// bias.* only exist on the TAGE-GSC host; everything else applies to both
// (gsc.* maps to the GSC global bank on TAGE-GSC and to the main table
// bank on GEHL).
// -------------------------------------------------------------------------

using TageCfg = TageGscPredictor::Config;
using GehlCfg = GehlPredictor::Config;
using MetaCfg = MetaChooserPredictor::Config;
using MetaPolicy = MetaChooserPredictor::Policy;

struct KeyEntry
{
    OverrideKeyInfo info;
    void (*applyTage)(TageCfg &, long long) = nullptr;
    void (*applyGehl)(GehlCfg &, long long) = nullptr;
    void (*applyMeta)(MetaCfg &, long long) = nullptr;
};


const std::vector<KeyEntry> &
keyTable()
{
    static const std::vector<KeyEntry> table = {
        {{"bias.logsize", 4, 16, false, true, "log2 entries per bias table"},
         +[](TageCfg &c, long long v) { c.bias.logEntries = unsigned(v); },
         nullptr},
        {{"bias.tables", 1, 4, false, true, "number of bias tables"},
         +[](TageCfg &c, long long v) { c.bias.numTables = unsigned(v); },
         nullptr},
        {{"gsc.ctrbits", 1, 8, false, false,
          "global bank counter width (bits)"},
         +[](TageCfg &c, long long v) { c.gscGlobal.counterBits = unsigned(v); },
         +[](GehlCfg &c, long long v) { c.global.counterBits = unsigned(v); }},
        {{"gsc.logsize", 4, 20, false, false,
          "log2 entries per global-bank table"},
         +[](TageCfg &c, long long v) { c.gscGlobal.logEntries = unsigned(v); },
         +[](GehlCfg &c, long long v) { c.global.logEntries = unsigned(v); }},
        {{"gsc.maxhist", 8, 4096, false, false,
          "longest global-bank history length"},
         +[](TageCfg &c, long long v) { c.gscGlobal.maxHistory = unsigned(v); },
         +[](GehlCfg &c, long long v) { c.global.maxHistory = unsigned(v); }},
        {{"gsc.minhist", 0, 256, false, false,
          "shortest global-bank history length (0 = PC-only first table)"},
         +[](TageCfg &c, long long v) { c.gscGlobal.minHistory = unsigned(v); },
         +[](GehlCfg &c, long long v) { c.global.minHistory = unsigned(v); }},
        {{"gsc.tables", 1, 32, false, false, "global-bank table count"},
         +[](TageCfg &c, long long v) { c.gscGlobal.numTables = unsigned(v); },
         +[](GehlCfg &c, long long v) { c.global.numTables = unsigned(v); }},
        {{"imli.ctrbits", 4, 16, false, false, "IMLI counter width (bits)"},
         +[](TageCfg &c, long long v) { c.imli.counterBits = unsigned(v); },
         +[](GehlCfg &c, long long v) { c.imli.counterBits = unsigned(v); }},
        {{"itl.iterbits", 4, 16, false, false,
          "ITTAGE-loop iteration counter width (bits)"},
         +[](TageCfg &c, long long v) { c.itl.iterBits = unsigned(v); },
         +[](GehlCfg &c, long long v) { c.itl.iterBits = unsigned(v); }},
        {{"itl.logsets", 0, 8, false, false,
          "log2 ITTAGE-loop base tracker sets"},
         +[](TageCfg &c, long long v) { c.itl.logSets = unsigned(v); },
         +[](GehlCfg &c, long long v) { c.itl.logSets = unsigned(v); }},
        {{"itl.logsize", 2, 12, false, false,
          "log2 entries per ITTAGE-loop tagged table"},
         +[](TageCfg &c, long long v) { c.itl.logSize = unsigned(v); },
         +[](GehlCfg &c, long long v) { c.itl.logSize = unsigned(v); }},
        {{"itl.tables", 1, 8, false, false,
          "ITTAGE-loop tagged table count"},
         +[](TageCfg &c, long long v) { c.itl.numTables = unsigned(v); },
         +[](GehlCfg &c, long long v) { c.itl.numTables = unsigned(v); }},
        {{"itl.tagbits", 4, 16, false, false,
          "ITTAGE-loop tagged partial tag width (bits)"},
         +[](TageCfg &c, long long v) { c.itl.taggedTagBits = unsigned(v); },
         +[](GehlCfg &c, long long v) { c.itl.taggedTagBits = unsigned(v); }},
        {{"itl.ways", 1, 8, false, false,
          "ITTAGE-loop base tracker associativity"},
         +[](TageCfg &c, long long v) { c.itl.ways = unsigned(v); },
         +[](GehlCfg &c, long long v) { c.itl.ways = unsigned(v); }},
        {{"local.logsize", 4, 16, false, false,
          "log2 entries per local voting table"},
         +[](TageCfg &c, long long v) { c.local.logEntries = unsigned(v); },
         +[](GehlCfg &c, long long v) { c.local.logEntries = unsigned(v); }},
        {{"local.tables", 1, 8, false, false, "local voting table count"},
         +[](TageCfg &c, long long v) { c.local.numTables = unsigned(v); },
         +[](GehlCfg &c, long long v) { c.local.numTables = unsigned(v); }},
        {{"loop.logsets", 0, 8, false, false, "log2 loop predictor sets"},
         +[](TageCfg &c, long long v) { c.loop.logSets = unsigned(v); },
         +[](GehlCfg &c, long long v) { c.loop.logSets = unsigned(v); }},
        {{"loop.ways", 1, 8, false, false, "loop predictor associativity"},
         +[](TageCfg &c, long long v) { c.loop.ways = unsigned(v); },
         +[](GehlCfg &c, long long v) { c.loop.ways = unsigned(v); }},
        // meta.* keys configure the meta-chooser host (meta_chooser.hh)
        // and apply to no other host; the meta host in turn accepts only
        // meta.* and the run-level sim.* keys.
        {{"meta.countbits", 4, 16, false, false,
          "UCB pull/reward counter width (bits)", true},
         nullptr, nullptr,
         +[](MetaCfg &c, long long v) { c.countBits = unsigned(v); }},
        {{"meta.ctrbits", 1, 8, false, false,
          "tournament chooser counter width (bits)", true},
         nullptr, nullptr,
         +[](MetaCfg &c, long long v) { c.counterBits = unsigned(v); }},
        {{"meta.explore", 1, 16, false, false,
          "UCB exploration scale (inside the sqrt)", true},
         nullptr, nullptr,
         +[](MetaCfg &c, long long v) { c.explore = unsigned(v); }},
        {{"meta.logsize", 4, 20, false, false,
          "log2 entries of the per-PC meta table", true},
         nullptr, nullptr,
         +[](MetaCfg &c, long long v) { c.logEntries = unsigned(v); }},
        {{"meta.policy", 0, 2, false, false,
          "arbitration policy: tournament, ucb or fusion", true},
         nullptr, nullptr,
         +[](MetaCfg &c, long long v) {
             c.policy = static_cast<MetaPolicy>(v);
         }},
        {{"meta.theta", 0, 1024, false, false,
          "fusion training threshold (0 = 1.93*N + 14)", true},
         nullptr, nullptr,
         +[](MetaCfg &c, long long v) { c.theta = unsigned(v); }},
        {{"meta.wbits", 4, 16, false, false,
          "fusion weight width (bits)", true},
         nullptr, nullptr,
         +[](MetaCfg &c, long long v) { c.weightBits = unsigned(v); }},
        {{"oh.ctrbits", 1, 8, false, false, "IMLI-OH counter width (bits)"},
         +[](TageCfg &c, long long v) { c.imli.oh.counterBits = unsigned(v); },
         +[](GehlCfg &c, long long v) { c.imli.oh.counterBits = unsigned(v); }},
        {{"oh.delay", 0, 1024, false, false,
          "modelled outer-history commit delay (branches)"},
         +[](TageCfg &c, long long v) { c.imli.ohUpdateDelay = unsigned(v); },
         +[](GehlCfg &c, long long v) { c.imli.ohUpdateDelay = unsigned(v); }},
        {{"oh.logsize", 4, 16, false, false,
          "log2 entries of the IMLI-OH table"},
         +[](TageCfg &c, long long v) { c.imli.oh.logEntries = unsigned(v); },
         +[](GehlCfg &c, long long v) { c.imli.oh.logEntries = unsigned(v); }},
        {{"oh.weight", 1, 8, false, false, "IMLI-OH vote weight"},
         +[](TageCfg &c, long long v) { c.imli.oh.weight = int(v); },
         +[](GehlCfg &c, long long v) { c.imli.oh.weight = int(v); }},
        {{"outer.bits", 64, 65536, true, false,
          "outer-history table bits (power of two)"},
         +[](TageCfg &c, long long v) { c.imli.outer.tableBits = unsigned(v); },
         +[](GehlCfg &c, long long v) { c.imli.outer.tableBits = unsigned(v); }},
        {{"outer.iterlog", 2, 10, false, false,
          "log2 iteration slots per branch in the outer history"},
         +[](TageCfg &c, long long v) { c.imli.outer.iterBitsLog = unsigned(v); },
         +[](GehlCfg &c, long long v) { c.imli.outer.iterBitsLog = unsigned(v); }},
        // The PIPE checkpoint packs into 32 bits, so 32 is a hard cap.
        {{"outer.pipe", 4, 32, true, false,
          "PIPE vector width (power of two, checkpoint-limited)"},
         +[](TageCfg &c, long long v) { c.imli.outer.pipeEntries = unsigned(v); },
         +[](GehlCfg &c, long long v) { c.imli.outer.pipeEntries = unsigned(v); }},
        {{"sic.ctrbits", 1, 8, false, false, "IMLI-SIC counter width (bits)"},
         +[](TageCfg &c, long long v) { c.imli.sic.counterBits = unsigned(v); },
         +[](GehlCfg &c, long long v) { c.imli.sic.counterBits = unsigned(v); }},
        {{"sic.logsize", 4, 16, false, false,
          "log2 entries of the IMLI-SIC table"},
         +[](TageCfg &c, long long v) { c.imli.sic.logEntries = unsigned(v); },
         +[](GehlCfg &c, long long v) { c.imli.sic.logEntries = unsigned(v); }},
        {{"sic.weight", 1, 8, false, false, "IMLI-SIC vote weight"},
         +[](TageCfg &c, long long v) { c.imli.sic.weight = int(v); },
         +[](GehlCfg &c, long long v) { c.imli.sic.weight = int(v); }},
        // Run-level, not geometry: consumed by the simulation drivers
        // (suite runner / DSE sweep) as the pipeline engine's update
        // delay for this point.  The no-op appliers keep the config
        // builders uniform; specUpdateDelay() is the accessor.
        {{"sim.delay", 0, kMaxSpeculationDepth, false, false,
          "pipeline update delay for this config point (in-flight "
          "branches; 0 = immediate)"},
         +[](TageCfg &, long long) {},
         +[](GehlCfg &, long long) {}},
        // Run-level like sim.delay: the software-prefetch lookahead the
        // simulation drivers apply for this point (records; 0 = off).
        // Bit-identity-neutral by the prefetch contract — sweeping it
        // varies only wall-clock, which is the point of the dimension.
        {{"sim.prefetch", 0, kMaxPrefetchLookahead, false, false,
          "simulator prefetch lookahead for this config point (records; "
          "0 = off)"},
         +[](TageCfg &, long long) {},
         +[](GehlCfg &, long long) {}},
        {{"tage.baselog", 4, 20, false, true,
          "log2 entries of the bimodal base table"},
         +[](TageCfg &c, long long v) { c.tage.baseLogEntries = unsigned(v); },
         nullptr},
        {{"tage.ctrbits", 1, 8, false, true,
          "TAGE prediction counter width (bits)"},
         +[](TageCfg &c, long long v) { c.tage.counterBits = unsigned(v); },
         nullptr},
        {{"tage.logsize", 4, 20, false, true,
          "log2 entries per tagged TAGE table"},
         +[](TageCfg &c, long long v) { c.tage.logEntries = unsigned(v); },
         nullptr},
        {{"tage.maxhist", 8, 4096, false, true,
          "longest TAGE history length"},
         +[](TageCfg &c, long long v) { c.tage.maxHistory = unsigned(v); },
         nullptr},
        {{"tage.minhist", 1, 64, false, true,
          "shortest TAGE history length"},
         +[](TageCfg &c, long long v) { c.tage.minHistory = unsigned(v); },
         nullptr},
        {{"tage.tables", 1, 32, false, true, "tagged TAGE table count"},
         +[](TageCfg &c, long long v) { c.tage.numTables = unsigned(v); },
         nullptr},
        {{"wh.entries", 1, 64, false, false, "wormhole tagged entries"},
         +[](TageCfg &c, long long v) { c.wh.numEntries = unsigned(v); },
         +[](GehlCfg &c, long long v) { c.wh.numEntries = unsigned(v); }},
        {{"wh.histbits", 64, 8192, false, false,
          "wormhole per-entry local history bits"},
         +[](TageCfg &c, long long v) { c.wh.historyBits = unsigned(v); },
         +[](GehlCfg &c, long long v) { c.wh.historyBits = unsigned(v); }},
    };
    return table;
}

const KeyEntry *
findKey(const std::string &key)
{
    for (const KeyEntry &e : keyTable())
        if (e.info.key == key)
            return &e;
    return nullptr;
}

/** Strict non-negative decimal integer; anything else throws. */
long long
parseOverrideValue(const std::string &key, const std::string &text)
{
    return parseDecimalLLStrict(text, "override " + key);
}

/**
 * Parse the "@key=value,..." section: strict keys, strict values, range
 * and host checks, then canonicalize (sort by key, last duplicate wins).
 */
std::vector<SpecOverride>
parseOverrides(const std::string &text, const std::string &host)
{
    if (text.empty())
        throw std::invalid_argument(
            "spec has an empty override section after '@'");
    const bool overridable =
        host == "tage-gsc" || host == "gehl" || host == "meta";
    std::vector<SpecOverride> raw;
    std::string token;
    std::istringstream is(text);
    while (std::getline(is, token, ',')) {
        if (token.empty())
            throw std::invalid_argument(
                "empty override in spec (stray comma?)");
        const auto eq = token.find('=');
        if (eq == std::string::npos || eq == 0)
            throw std::invalid_argument("override \"" + token +
                                        "\" is not of the form key=value");
        const std::string key = token.substr(0, eq);
        const std::string value = token.substr(eq + 1);
        const KeyEntry *entry = findKey(key);
        if (!entry)
            throw std::invalid_argument("unknown override key: " + key);
        if (!overridable)
            throw std::invalid_argument("host " + host +
                                        " accepts no overrides");
        if (entry->info.tageGscOnly && host != "tage-gsc")
            throw std::invalid_argument("override key " + key +
                                        " only applies to the tage-gsc host");
        if (entry->info.metaOnly && host != "meta")
            throw std::invalid_argument("override key " + key +
                                        " only applies to the meta host");
        if (host == "meta" && !entry->info.metaOnly &&
            key.compare(0, 4, "sim.") != 0)
            throw std::invalid_argument(
                "override key " + key + " does not apply to the meta "
                "host (only meta.* and sim.* keys do; sub-predictor "
                "keys go on the sub-spec inside the parentheses)");
        const long long v = key == "meta.policy"
                                ? metaPolicyValueFromName(value)
                                : parseOverrideValue(key, value);
        if (v < entry->info.minValue || v > entry->info.maxValue)
            throw std::invalid_argument(
                "override " + key + "=" + value + " is out of range [" +
                std::to_string(entry->info.minValue) + ", " +
                std::to_string(entry->info.maxValue) + "]");
        if (entry->info.powerOfTwo && !isPowerOfTwo(v))
            throw std::invalid_argument("override " + key + "=" + value +
                                        " must be a power of two");
        raw.push_back({key, v});
    }
    if (!text.empty() && text.back() == ',')
        throw std::invalid_argument(
            "empty override in spec (stray comma?)");

    // Canonical form: sorted by key, duplicates resolved last-wins.
    std::vector<SpecOverride> canonical;
    for (const SpecOverride &o : raw) {
        bool replaced = false;
        for (SpecOverride &c : canonical) {
            if (c.key == o.key) {
                c.value = o.value;
                replaced = true;
            }
        }
        if (!replaced)
            canonical.push_back(o);
    }
    std::sort(canonical.begin(), canonical.end(),
              [](const SpecOverride &a, const SpecOverride &b) {
                  return a.key < b.key;
              });
    return canonical;
}

/** "@key=value,..." suffix in canonical order; "" when no overrides. */
std::string
overrideSuffix(const std::vector<SpecOverride> &overrides)
{
    if (overrides.empty())
        return "";
    std::string s = "@";
    for (std::size_t i = 0; i < overrides.size(); ++i) {
        if (i > 0)
            s += ',';
        s += overrides[i].key + "=";
        s += overrides[i].key == "meta.policy"
                 ? metaPolicyValueName(overrides[i].value)
                 : std::to_string(overrides[i].value);
    }
    return s;
}

/**
 * The meta analog of checkOverrideApplies: reject keys that the
 * resolved policy never reads — sweeping meta.ctrbits under
 * meta.policy=ucb would fake a Pareto spread out of byte-identical
 * points.
 */
void
checkMetaOverrideApplies(const std::vector<SpecOverride> &overrides)
{
    MetaPolicy policy = MetaPolicy::Tournament;
    for (const SpecOverride &o : overrides)
        if (o.key == "meta.policy")
            policy = static_cast<MetaPolicy>(o.value);
    for (const SpecOverride &o : overrides) {
        MetaPolicy needs = policy;
        std::string need;
        if (o.key == "meta.ctrbits") {
            needs = MetaPolicy::Tournament;
            need = "tournament";
        } else if (o.key == "meta.countbits" || o.key == "meta.explore") {
            needs = MetaPolicy::Ucb;
            need = "ucb";
        } else if (o.key == "meta.wbits" || o.key == "meta.theta") {
            needs = MetaPolicy::Fusion;
            need = "fusion";
        }
        if (needs != policy)
            throw std::invalid_argument(
                "override " + o.key + " has no effect under meta.policy=" +
                metaPolicyValueName(static_cast<long long>(policy)) +
                " (it only applies to the " + need + " policy)");
    }
}

/**
 * Reject overrides of components the spec does not enable: a sweep axis
 * over (say) sic.logsize on a host without +sic would simulate
 * byte-identical points and fake a Pareto spread — the configured table
 * exists but never votes.  Keyed by the "component." prefix.
 */
void
checkOverrideApplies(const ZooOptions &opts, const std::string &key)
{
    const std::string prefix = key.substr(0, key.find('.'));
    bool active = true;
    std::string need;
    if (prefix == "sic") {
        active = opts.imliSic;
        need = "+sic or +i";
    } else if (prefix == "oh" || prefix == "outer") {
        active = opts.imliOh;
        need = "+oh or +i";
    } else if (prefix == "imli") {
        active = opts.imliSic || opts.imliOh || opts.omli ||
                 opts.imliInGscTables > 0;
        need = "+sic, +oh, +i or +omli";
    } else if (prefix == "loop") {
        active = opts.local || opts.loopOnly || opts.wormhole;
        need = "+loop, +l or +wh";
    } else if (prefix == "itl") {
        active = opts.ittageLoop;
        need = "+itl";
    } else if (prefix == "wh") {
        active = opts.wormhole;
        need = "+wh";
    } else if (prefix == "local") {
        active = opts.local;
        need = "+l";
    }
    if (!active)
        throw std::invalid_argument(
            "override " + key + " has no effect on this spec (the "
            "component is disabled; add " + need + ")");
}

/**
 * Key lookup for the config builders.  They are public API and accept
 * hand-built ParsedSpecs, so an unknown or wrong-host key must throw
 * like every other invalid input, not dereference a null slot.
 */
const KeyEntry &
findKeyForHost(const std::string &key, const char *host)
{
    const KeyEntry *entry = findKey(key);
    if (!entry)
        throw std::invalid_argument("unknown override key: " + key);
    if (entry->info.tageGscOnly && std::string(host) != "tage-gsc")
        throw std::invalid_argument("override key " + key +
                                    " only applies to the tage-gsc host");
    return *entry;
}

/**
 * Fit check for a global GEHL bank, shared by both hosts so the gsc.*
 * keys enforce one invariant.  With minhist == 0 the first table is
 * PC-only and the geometric series starts at 2; otherwise it starts at
 * minhist.  Either way the strictly increasing lengths must fit under
 * maxhist, or the rounding bump would silently exceed the declared
 * geometry.
 */
void
checkGscBank(const GlobalGehlComponent::Config &bank)
{
    if (bank.minHistory >= bank.maxHistory)
        throw std::invalid_argument(
            "gsc.minhist must be smaller than gsc.maxhist");
    if (bank.maxHistory < std::max(2u, bank.minHistory) + bank.numTables)
        throw std::invalid_argument(
            "gsc.maxhist too small for gsc.tables/gsc.minhist strictly "
            "increasing history lengths");
    // +sic/+imligsc hash the IMLI counter into the last imliIndexTables
    // tables; fewer tables than that would wrap the unsigned "last N"
    // arithmetic and silently disable the insertion.
    if (bank.imliIndexTables > bank.numTables)
        throw std::invalid_argument(
            "gsc.tables must be at least the IMLI-indexed table count "
            "(2 with +sic/+imligsc)");
}

/** Cross-constraints of the IMLI outer-history geometry. */
void
checkImliGeometry(const ImliComponents::Config &imli)
{
    if ((1u << imli.outer.iterBitsLog) > imli.outer.tableBits)
        throw std::invalid_argument(
            "outer.iterlog too large for outer.bits (need 2^iterlog <= "
            "bits)");
}

void
applyOverridesTage(TageCfg &cfg, const std::vector<SpecOverride> &overrides)
{
    for (const SpecOverride &o : overrides)
        findKeyForHost(o.key, "tage-gsc").applyTage(cfg, o.value);
    if (cfg.tage.minHistory >= cfg.tage.maxHistory)
        throw std::invalid_argument(
            "tage.minhist must be smaller than tage.maxhist");
    if (cfg.tage.maxHistory < cfg.tage.minHistory + cfg.tage.numTables)
        throw std::invalid_argument(
            "tage.maxhist too small for tage.tables strictly increasing "
            "history lengths");
    checkGscBank(cfg.gscGlobal);
    checkImliGeometry(cfg.imli);
}

void
applyOverridesGehl(GehlCfg &cfg, const std::vector<SpecOverride> &overrides)
{
    for (const SpecOverride &o : overrides)
        findKeyForHost(o.key, "gehl").applyGehl(cfg, o.value);
    checkGscBank(cfg.global);
    checkImliGeometry(cfg.imli);
}

} // anonymous namespace

ParsedSpec
parseSpec(const std::string &spec)
{
    ParsedSpec parsed;
    if (spec.compare(0, 5, "meta(") == 0) {
        // meta(sub,sub,...)[@meta.key=value,...] — commas and '@'
        // inside the parentheses belong to the sub-specs.
        int depth = 0;
        std::size_t close = std::string::npos;
        for (std::size_t i = 4; i < spec.size(); ++i) {
            if (spec[i] == '(') {
                ++depth;
            } else if (spec[i] == ')') {
                if (--depth == 0) {
                    close = i;
                    break;
                }
            }
        }
        if (close == std::string::npos)
            throw std::invalid_argument(
                "meta spec is missing the closing ')'");
        const std::string tail = spec.substr(close + 1);
        if (!tail.empty()) {
            if (tail[0] != '@')
                throw std::invalid_argument(
                    "unexpected text after ')' in meta spec (only an "
                    "'@' override section may follow): " + tail);
            if (tail.find('@', 1) != std::string::npos)
                throw std::invalid_argument(
                    "spec has more than one '@' section");
            parsed.overrides = parseOverrides(tail.substr(1), "meta");
        }
        parsed.host = "meta";
        const std::vector<std::string> subs =
            splitSpecList(spec.substr(5, close - 5));
        if (subs.empty())
            throw std::invalid_argument(
                "meta spec needs at least one sub-spec inside the "
                "parentheses");
        if (subs.size() > MetaChooserPredictor::kMaxSubs)
            throw std::invalid_argument(
                "meta spec has " + std::to_string(subs.size()) +
                " sub-specs; the chooser arbitrates at most " +
                std::to_string(MetaChooserPredictor::kMaxSubs));
        for (const std::string &sub : subs) {
            const ParsedSpec sp = parseSpec(sub);
            if (sp.host == "meta")
                throw std::invalid_argument(
                    "meta specs cannot nest: " + sub);
            if (hasSpecUpdateDelay(sp) || hasSpecPrefetch(sp))
                throw std::invalid_argument(
                    "run-level sim.* keys belong after meta(...)@, not "
                    "on the sub-spec \"" + sub + "\"");
            parsed.subSpecs.push_back(describeConfig(sp));
        }
        checkMetaOverrideApplies(parsed.overrides);
        return parsed;
    }
    const auto at = spec.find('@');
    if (spec.find('@', at == std::string::npos ? at : at + 1) !=
        std::string::npos)
        throw std::invalid_argument("spec has more than one '@' section");
    const std::string base =
        at == std::string::npos ? spec : spec.substr(0, at);

    const auto parts = splitSpec(base);
    if (parts.empty() || parts[0].empty())
        throw std::invalid_argument("empty predictor spec");
    parsed.host = parts[0];
    if (parsed.host == "bimodal" || parsed.host == "gshare" ||
        parsed.host == "itl") {
        if (parts.size() > 1)
            throw std::invalid_argument(parsed.host + " takes no add-ons");
    } else if (parsed.host == "tage-gsc" || parsed.host == "gehl") {
        parsed.opts = parseOptions(parts);
    } else {
        throw std::invalid_argument("unknown predictor host: " + parsed.host);
    }

    if (at != std::string::npos)
        parsed.overrides = parseOverrides(spec.substr(at + 1), parsed.host);

    // Run the cross-parameter constraints too (e.g. tage.maxhist vs
    // tage.tables): a spec that parses must also build.
    if (parsed.host == "tage-gsc")
        (void)buildTageGscConfig(parsed);
    else if (parsed.host == "gehl")
        (void)buildGehlConfig(parsed);
    return parsed;
}

std::string
describeConfig(const ParsedSpec &parsed)
{
    if (parsed.host == "meta") {
        std::string s = "meta(";
        for (std::size_t i = 0; i < parsed.subSpecs.size(); ++i) {
            if (i > 0)
                s += ',';
            s += parsed.subSpecs[i];
        }
        return s + ")" + overrideSuffix(parsed.overrides);
    }
    std::string s = parsed.host;
    if (parsed.host == "tage-gsc" || parsed.host == "gehl")
        s += addonSuffix(parsed.opts);
    return s + overrideSuffix(parsed.overrides);
}

std::string
canonicalSpec(const std::string &spec)
{
    return describeConfig(parseSpec(spec));
}

TageGscPredictor::Config
buildTageGscConfig(const ParsedSpec &parsed)
{
    if (parsed.host != "tage-gsc")
        throw std::invalid_argument("buildTageGscConfig: host is " +
                                    parsed.host);
    const ZooOptions &opts = parsed.opts;
    TageGscPredictor::Config cfg;
    cfg.enableImli = opts.imliSic || opts.imliOh || opts.omli;
    cfg.imli.enableSic = opts.imliSic;
    cfg.imli.enableOh = opts.imliOh;
    cfg.imli.enableOmli = opts.omli;
    cfg.imli.sic.weight = 3;
    cfg.imli.oh.weight = 1;
    cfg.imli.ohUpdateDelay = opts.ohUpdateDelay;
    // Section 4.2: the SIC benefit increases further when the IMLI counter
    // is hashed into the indices of two global SC tables.
    cfg.gscGlobal.imliIndexTables =
        opts.imliSic ? std::max(2u, opts.imliInGscTables)
                     : opts.imliInGscTables;
    cfg.enableLocal = opts.local;
    cfg.enableLoop = opts.local || opts.loopOnly || opts.wormhole;
    cfg.loopOverride = opts.local || opts.loopOnly;
    cfg.enableItl = opts.ittageLoop;
    cfg.enableWh = opts.wormhole;
    for (const SpecOverride &o : parsed.overrides)
        checkOverrideApplies(opts, o.key);
    applyOverridesTage(cfg, parsed.overrides);
    cfg.configName = displayName("TAGE-GSC", opts) +
                     overrideSuffix(parsed.overrides);
    return cfg;
}

MetaChooserPredictor::Config
buildMetaConfig(const ParsedSpec &parsed)
{
    if (parsed.host != "meta")
        throw std::invalid_argument("buildMetaConfig: host is " +
                                    parsed.host);
    checkMetaOverrideApplies(parsed.overrides);
    MetaChooserPredictor::Config cfg;
    for (const SpecOverride &o : parsed.overrides) {
        const KeyEntry &entry = findKeyForHost(o.key, "meta");
        if (entry.applyMeta)
            entry.applyMeta(cfg, o.value);
        else if (o.key.compare(0, 4, "sim.") != 0)
            throw std::invalid_argument("override key " + o.key +
                                        " does not apply to the meta host");
    }
    cfg.configName = describeConfig(parsed);
    return cfg;
}

GehlPredictor::Config
buildGehlConfig(const ParsedSpec &parsed)
{
    if (parsed.host != "gehl")
        throw std::invalid_argument("buildGehlConfig: host is " +
                                    parsed.host);
    const ZooOptions &opts = parsed.opts;
    GehlPredictor::Config cfg;
    cfg.enableImli = opts.imliSic || opts.imliOh || opts.omli;
    cfg.imli.enableSic = opts.imliSic;
    cfg.imli.enableOh = opts.imliOh;
    cfg.imli.enableOmli = opts.omli;
    cfg.imli.sic.weight = 3;
    cfg.imli.oh.weight = 1;
    cfg.imli.ohUpdateDelay = opts.ohUpdateDelay;
    cfg.global.imliIndexTables =
        opts.imliSic ? std::max(2u, opts.imliInGscTables)
                     : opts.imliInGscTables;
    cfg.enableLocal = opts.local;
    cfg.enableLoop = opts.local || opts.loopOnly || opts.wormhole;
    cfg.loopOverride = opts.local || opts.loopOnly;
    cfg.enableItl = opts.ittageLoop;
    cfg.enableWh = opts.wormhole;
    for (const SpecOverride &o : parsed.overrides)
        checkOverrideApplies(opts, o.key);
    applyOverridesGehl(cfg, parsed.overrides);
    cfg.configName = displayName("GEHL", opts) +
                     overrideSuffix(parsed.overrides);
    return cfg;
}

namespace
{

std::string
onOff(bool v)
{
    return v ? "on" : "off";
}

/** The Config fields shared by both hosts (imli / loop / wh / local). */
template <typename Cfg>
void
describeSharedDetail(std::ostream &os, const Cfg &cfg)
{
    os << "imli:     sic=" << onOff(cfg.imli.enableSic)
       << " oh=" << onOff(cfg.imli.enableOh)
       << " omli=" << onOff(cfg.imli.enableOmli)
       << " ctrbits=" << cfg.imli.counterBits
       << " oh-delay=" << cfg.imli.ohUpdateDelay << '\n';
    os << "sic:      logsize=" << cfg.imli.sic.logEntries
       << " ctrbits=" << cfg.imli.sic.counterBits
       << " weight=" << cfg.imli.sic.weight << '\n';
    os << "oh:       logsize=" << cfg.imli.oh.logEntries
       << " ctrbits=" << cfg.imli.oh.counterBits
       << " weight=" << cfg.imli.oh.weight << '\n';
    os << "outer:    bits=" << cfg.imli.outer.tableBits
       << " iterlog=" << cfg.imli.outer.iterBitsLog
       << " pipe=" << cfg.imli.outer.pipeEntries << '\n';
    os << "loop:     enabled=" << onOff(cfg.enableLoop)
       << " override=" << onOff(cfg.loopOverride)
       << " logsets=" << cfg.loop.logSets << " ways=" << cfg.loop.ways
       << '\n';
    os << "itl:      enabled=" << onOff(cfg.enableItl)
       << " logsets=" << cfg.itl.logSets << " ways=" << cfg.itl.ways
       << " tables=" << cfg.itl.numTables
       << " logsize=" << cfg.itl.logSize
       << " tagbits=" << cfg.itl.taggedTagBits << '\n';
    os << "wh:       enabled=" << onOff(cfg.enableWh)
       << " entries=" << cfg.wh.numEntries
       << " histbits=" << cfg.wh.historyBits << '\n';
    os << "local:    enabled=" << onOff(cfg.enableLocal)
       << " tables=" << cfg.local.numTables
       << " logsize=" << cfg.local.logEntries << '\n';
}

} // anonymous namespace

std::string
describeConfigDetail(const ParsedSpec &parsed)
{
    std::ostringstream os;
    os << "spec:     " << describeConfig(parsed) << '\n';
    PredictorPtr pred = makePredictor(parsed);
    os << "name:     " << pred->name() << '\n';
    if (parsed.host == "tage-gsc") {
        const TageGscPredictor::Config cfg = buildTageGscConfig(parsed);
        os << "tage:     tables=" << cfg.tage.numTables
           << " logsize=" << cfg.tage.logEntries
           << " minhist=" << cfg.tage.minHistory
           << " maxhist=" << cfg.tage.maxHistory
           << " ctrbits=" << cfg.tage.counterBits
           << " baselog=" << cfg.tage.baseLogEntries << '\n';
        os << "bias:     tables=" << cfg.bias.numTables
           << " logsize=" << cfg.bias.logEntries
           << " ctrbits=" << cfg.bias.counterBits << '\n';
        os << "gsc:      tables=" << cfg.gscGlobal.numTables
           << " logsize=" << cfg.gscGlobal.logEntries
           << " ctrbits=" << cfg.gscGlobal.counterBits
           << " minhist=" << cfg.gscGlobal.minHistory
           << " maxhist=" << cfg.gscGlobal.maxHistory
           << " imli-tables=" << cfg.gscGlobal.imliIndexTables << '\n';
        describeSharedDetail(os, cfg);
    } else if (parsed.host == "gehl") {
        const GehlPredictor::Config cfg = buildGehlConfig(parsed);
        os << "gsc:      tables=" << cfg.global.numTables
           << " logsize=" << cfg.global.logEntries
           << " ctrbits=" << cfg.global.counterBits
           << " minhist=" << cfg.global.minHistory
           << " maxhist=" << cfg.global.maxHistory
           << " imli-tables=" << cfg.global.imliIndexTables << '\n';
        describeSharedDetail(os, cfg);
    } else if (parsed.host == "meta") {
        const MetaChooserPredictor::Config cfg = buildMetaConfig(parsed);
        os << "meta:     policy="
           << metaPolicyValueName(static_cast<long long>(cfg.policy))
           << " logsize=" << cfg.logEntries
           << " ctrbits=" << cfg.counterBits
           << " countbits=" << cfg.countBits
           << " explore=" << cfg.explore << " wbits=" << cfg.weightBits
           << " theta=" << cfg.theta << '\n';
        for (std::size_t i = 0; i < parsed.subSpecs.size(); ++i)
            os << "sub" << i << ":     " << parsed.subSpecs[i] << '\n';
    }
    const StorageAccount storage = pred->storage();
    os << "storage:  " << storage.totalKbits() << " Kbits ("
       << storage.totalBits() << " bits, " << storage.totalBytes()
       << " bytes)\n";
    return os.str();
}

PredictorPtr
makeTageGsc(const ZooOptions &opts)
{
    ParsedSpec parsed;
    parsed.host = "tage-gsc";
    parsed.opts = opts;
    return std::make_unique<TageGscPredictor>(buildTageGscConfig(parsed));
}

PredictorPtr
makeGehl(const ZooOptions &opts)
{
    ParsedSpec parsed;
    parsed.host = "gehl";
    parsed.opts = opts;
    return std::make_unique<GehlPredictor>(buildGehlConfig(parsed));
}

PredictorPtr
makePredictor(const ParsedSpec &parsed)
{
    if (parsed.host == "bimodal" || parsed.host == "gshare" ||
        parsed.host == "itl") {
        // parseSpec rejects overrides on these hosts; a hand-built
        // ParsedSpec must fail the same way, not silently drop them.
        if (!parsed.overrides.empty())
            throw std::invalid_argument(parsed.host +
                                        " accepts no overrides");
        if (parsed.host == "bimodal")
            return std::make_unique<BimodalPredictor>();
        if (parsed.host == "itl")
            return std::make_unique<IttageLoopStandalone>();
        return std::make_unique<GsharePredictor>();
    }
    if (parsed.host == "tage-gsc")
        return std::make_unique<TageGscPredictor>(buildTageGscConfig(parsed));
    if (parsed.host == "gehl")
        return std::make_unique<GehlPredictor>(buildGehlConfig(parsed));
    if (parsed.host == "meta") {
        std::vector<PredictorPtr> subs;
        subs.reserve(parsed.subSpecs.size());
        for (const std::string &sub : parsed.subSpecs)
            subs.push_back(makePredictor(sub));
        return std::make_unique<MetaChooserPredictor>(
            buildMetaConfig(parsed), std::move(subs));
    }
    throw std::invalid_argument("unknown predictor host: " + parsed.host);
}

PredictorPtr
makePredictor(const std::string &spec)
{
    return makePredictor(parseSpec(spec));
}

std::vector<std::string>
splitSpecList(const std::string &text)
{
    // Split on top-level commas only: commas inside "meta(...)" separate
    // that spec's sub-specs, not entries of this list.  Likewise, only a
    // top-level '@' marks a spec as accepting override continuations —
    // an '@' buried in parentheses belongs to a sub-spec.
    std::vector<std::string> specs;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        std::size_t comma = findTopLevel(text, ',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        const std::string token = text.substr(pos, comma - pos);
        pos = comma + 1;
        if (token.empty())
            continue;
        const bool keyValue =
            findTopLevel(token, '@') == std::string::npos &&
            findTopLevel(token, '=') != std::string::npos;
        if (keyValue) {
            if (specs.empty() ||
                findTopLevel(specs.back(), '@') == std::string::npos)
                throw std::invalid_argument(
                    "config list fragment \"" + token +
                    "\" looks like an override but no preceding spec has "
                    "an '@' section");
            specs.back() += "," + token;
            continue;
        }
        specs.push_back(token);
    }
    return specs;
}

std::vector<std::string>
knownSpecs()
{
    return {
        "bimodal",
        "gshare",
        "itl",
        "tage-gsc",
        "tage-gsc+sic",
        "tage-gsc+oh",
        "tage-gsc+i",
        "tage-gsc+l",
        "tage-gsc+i+l",
        "tage-gsc+loop",
        "tage-gsc+itl",
        "tage-gsc+sic+itl",
        "tage-gsc+wh",
        "tage-gsc+sic+wh",
        "tage-gsc+i+imligsc",
        "tage-gsc+sic+omli",
        "tage-gsc+i+omli",
        "gehl",
        "gehl+sic",
        "gehl+oh",
        "gehl+i",
        "gehl+l",
        "gehl+i+l",
        "gehl+loop",
        "gehl+itl",
        "gehl+wh",
        "gehl+sic+wh",
        "gehl+sic+omli",
        "meta(gshare,bimodal)",
        "meta(tage-gsc,gehl,gshare)",
        "meta(tage-gsc,gehl,gshare)@meta.policy=ucb",
        "meta(tage-gsc,gehl,gshare)@meta.policy=fusion",
    };
}

bool
hasSpecUpdateDelay(const ParsedSpec &parsed)
{
    for (const SpecOverride &o : parsed.overrides)
        if (o.key == "sim.delay")
            return true;
    return false;
}

unsigned
specUpdateDelay(const ParsedSpec &parsed)
{
    for (const SpecOverride &o : parsed.overrides)
        if (o.key == "sim.delay")
            return static_cast<unsigned>(o.value);
    return 0;
}

bool
hasSpecPrefetch(const ParsedSpec &parsed)
{
    for (const SpecOverride &o : parsed.overrides)
        if (o.key == "sim.prefetch")
            return true;
    return false;
}

unsigned
specPrefetch(const ParsedSpec &parsed)
{
    for (const SpecOverride &o : parsed.overrides)
        if (o.key == "sim.prefetch")
            return static_cast<unsigned>(o.value);
    return 0;
}

std::vector<OverrideKeyInfo>
knownOverrideKeys()
{
    std::vector<OverrideKeyInfo> keys;
    keys.reserve(keyTable().size());
    for (const KeyEntry &e : keyTable())
        keys.push_back(e.info);
    return keys;
}

std::string
metaPolicyValueName(long long value)
{
    switch (static_cast<MetaPolicy>(value)) {
    case MetaPolicy::Tournament:
        return "tournament";
    case MetaPolicy::Ucb:
        return "ucb";
    case MetaPolicy::Fusion:
        return "fusion";
    }
    throw std::invalid_argument("meta.policy value out of range: " +
                                std::to_string(value));
}

long long
metaPolicyValueFromName(const std::string &name)
{
    if (name == "tournament")
        return static_cast<long long>(MetaPolicy::Tournament);
    if (name == "ucb")
        return static_cast<long long>(MetaPolicy::Ucb);
    if (name == "fusion")
        return static_cast<long long>(MetaPolicy::Fusion);
    throw std::invalid_argument(
        "meta.policy must be tournament, ucb or fusion, got \"" + name +
        "\"");
}

} // namespace imli
