#include "src/predictors/zoo.hh"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "src/predictors/bimodal.hh"
#include "src/predictors/gshare.hh"

namespace imli
{

namespace
{

/** Compose the display name from the host and active add-ons. */
std::string
displayName(const std::string &host, const ZooOptions &opts)
{
    std::string name = host;
    if (opts.imliSic && opts.imliOh)
        name += "+I";
    else if (opts.imliSic)
        name += "+SIC";
    else if (opts.imliOh)
        name += "+OH";
    if (opts.omli)
        name += "+OMLI";
    if (opts.imliInGscTables > 0)
        name += "+IMLIGSC";
    if (opts.local)
        name += "+L";
    else if (opts.loopOnly)
        name += "+LOOP";
    if (opts.wormhole)
        name += "+WH";
    return name;
}

/** Split "host+a+b" into host and lower-cased addon tokens. */
std::vector<std::string>
splitSpec(const std::string &spec)
{
    std::vector<std::string> parts;
    std::string token;
    std::istringstream is(spec);
    while (std::getline(is, token, '+'))
        parts.push_back(token);
    return parts;
}

ZooOptions
parseOptions(const std::vector<std::string> &parts)
{
    ZooOptions opts;
    for (std::size_t i = 1; i < parts.size(); ++i) {
        const std::string &t = parts[i];
        if (t == "i") {
            opts.imliSic = true;
            opts.imliOh = true;
        } else if (t == "sic") {
            opts.imliSic = true;
        } else if (t == "oh") {
            opts.imliOh = true;
        } else if (t == "l") {
            opts.local = true;
        } else if (t == "loop") {
            opts.loopOnly = true;
        } else if (t == "wh") {
            opts.wormhole = true;
        } else if (t == "omli") {
            opts.omli = true;
        } else if (t == "imligsc") {
            opts.imliInGscTables = 2;
        } else {
            throw std::invalid_argument("unknown predictor add-on: " + t);
        }
    }
    return opts;
}

} // anonymous namespace

PredictorPtr
makeTageGsc(const ZooOptions &opts)
{
    TageGscPredictor::Config cfg;
    cfg.enableImli = opts.imliSic || opts.imliOh || opts.omli;
    cfg.imli.enableSic = opts.imliSic;
    cfg.imli.enableOh = opts.imliOh;
    cfg.imli.enableOmli = opts.omli;
    cfg.imli.sic.weight = 3;
    cfg.imli.oh.weight = 1;
    cfg.imli.ohUpdateDelay = opts.ohUpdateDelay;
    // Section 4.2: the SIC benefit increases further when the IMLI counter
    // is hashed into the indices of two global SC tables.
    cfg.gscGlobal.imliIndexTables =
        opts.imliSic ? std::max(2u, opts.imliInGscTables)
                     : opts.imliInGscTables;
    cfg.enableLocal = opts.local;
    cfg.enableLoop = opts.local || opts.loopOnly || opts.wormhole;
    cfg.loopOverride = opts.local || opts.loopOnly;
    cfg.enableWh = opts.wormhole;
    cfg.configName = displayName("TAGE-GSC", opts);
    return std::make_unique<TageGscPredictor>(cfg);
}

PredictorPtr
makeGehl(const ZooOptions &opts)
{
    GehlPredictor::Config cfg;
    cfg.enableImli = opts.imliSic || opts.imliOh || opts.omli;
    cfg.imli.enableSic = opts.imliSic;
    cfg.imli.enableOh = opts.imliOh;
    cfg.imli.enableOmli = opts.omli;
    cfg.imli.sic.weight = 3;
    cfg.imli.oh.weight = 1;
    cfg.imli.ohUpdateDelay = opts.ohUpdateDelay;
    cfg.global.imliIndexTables =
        opts.imliSic ? std::max(2u, opts.imliInGscTables)
                     : opts.imliInGscTables;
    cfg.enableLocal = opts.local;
    cfg.enableLoop = opts.local || opts.loopOnly || opts.wormhole;
    cfg.loopOverride = opts.local || opts.loopOnly;
    cfg.enableWh = opts.wormhole;
    cfg.configName = displayName("GEHL", opts);
    return std::make_unique<GehlPredictor>(cfg);
}

PredictorPtr
makePredictor(const std::string &spec)
{
    const auto parts = splitSpec(spec);
    if (parts.empty())
        throw std::invalid_argument("empty predictor spec");
    const std::string &host = parts[0];
    if (host == "bimodal") {
        if (parts.size() > 1)
            throw std::invalid_argument("bimodal takes no add-ons");
        return std::make_unique<BimodalPredictor>();
    }
    if (host == "gshare") {
        if (parts.size() > 1)
            throw std::invalid_argument("gshare takes no add-ons");
        return std::make_unique<GsharePredictor>();
    }
    const ZooOptions opts = parseOptions(parts);
    if (host == "tage-gsc")
        return makeTageGsc(opts);
    if (host == "gehl")
        return makeGehl(opts);
    throw std::invalid_argument("unknown predictor host: " + host);
}

std::vector<std::string>
knownSpecs()
{
    return {
        "bimodal",
        "gshare",
        "tage-gsc",
        "tage-gsc+sic",
        "tage-gsc+oh",
        "tage-gsc+i",
        "tage-gsc+l",
        "tage-gsc+i+l",
        "tage-gsc+loop",
        "tage-gsc+wh",
        "tage-gsc+sic+wh",
        "tage-gsc+i+imligsc",
        "tage-gsc+sic+omli",
        "tage-gsc+i+omli",
        "gehl",
        "gehl+sic",
        "gehl+oh",
        "gehl+i",
        "gehl+l",
        "gehl+i+l",
        "gehl+loop",
        "gehl+wh",
        "gehl+sic+wh",
        "gehl+sic+omli",
    };
}

} // namespace imli
