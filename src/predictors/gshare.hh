/**
 * @file
 * Gshare predictor (McFarling, 1993): global history XOR PC indexing.
 * Baseline for the shootout example and a sanity reference in tests —
 * gshare must beat bimodal on globally correlated workloads and TAGE must
 * beat gshare.
 */

#ifndef IMLI_SRC_PREDICTORS_GSHARE_HH
#define IMLI_SRC_PREDICTORS_GSHARE_HH

#include <vector>

#include "src/history/global_history.hh"
#include "src/predictors/predictor.hh"
#include "src/util/counters.hh"

namespace imli
{

/** Global-history-XOR-PC indexed table of saturating counters. */
class GsharePredictor : public ConditionalPredictor
{
  public:
    /**
     * @param log_entries log2 of the table size
     * @param history_bits global history length used in the index
     */
    explicit GsharePredictor(unsigned log_entries = 14,
                             unsigned history_bits = 14);

    bool predict(std::uint64_t pc) override;
    void update(std::uint64_t pc, bool taken, std::uint64_t target) override;
    void trackOtherInst(std::uint64_t pc, BranchType type, bool taken,
                        std::uint64_t target) override;

    // Speculation contract: the only speculative state is the global
    // history register, so a checkpoint is just its head + path pointer.
    bool supportsSpeculation() const override { return true; }
    SpecCheckpoint checkpoint() const override;
    void restore(const SpecCheckpoint &cp) override;
    void speculate(std::uint64_t pc, bool pred_taken,
                   std::uint64_t target) override;

    std::string name() const override { return "gshare"; }
    StorageAccount storage() const override;

  private:
    unsigned index(std::uint64_t pc) const;

    std::vector<SatCounter> table;
    GlobalHistory hist;
    unsigned histBits;
    unsigned mask;
};

} // namespace imli

#endif // IMLI_SRC_PREDICTORS_GSHARE_HH
