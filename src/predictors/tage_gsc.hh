/**
 * @file
 * The TAGE-GSC host predictor (paper, Section 3.2.1, Figures 4 and 5):
 * a TAGE predictor backed by a global-history statistical corrector, i.e.
 * the CBP4-winning TAGE-SC-L with the loop predictor and local-history
 * components deactivated.  Add-ons re-enable them (+L), plug the IMLI
 * components into the corrector (+I), or attach the wormhole side
 * predictor for the Section 3.3 comparison.
 */

#ifndef IMLI_SRC_PREDICTORS_TAGE_GSC_HH
#define IMLI_SRC_PREDICTORS_TAGE_GSC_HH

#include <memory>
#include <optional>
#include <string>
#include <type_traits>

#include "src/core/imli_components.hh"
#include "src/history/history_manager.hh"
#include "src/predictors/host_speculation.hh"
#include "src/predictors/ittage_loop.hh"
#include "src/predictors/local_component.hh"
#include "src/predictors/loop_predictor.hh"
#include "src/predictors/predictor.hh"
#include "src/predictors/statistical_corrector.hh"
#include "src/predictors/tage.hh"
#include "src/predictors/wormhole.hh"

namespace imli
{

/** TAGE + global statistical corrector, with optional add-ons. */
class TageGscPredictor : public ConditionalPredictor
{
  public:
    struct Config
    {
        TagePredictor::Config tage;
        BiasComponent::Config bias{/*logEntries=*/9, /*counterBits=*/6,
                                   /*numTables=*/2};
        GlobalGehlComponent::Config gscGlobal{
            /*numTables=*/6, /*logEntries=*/10, /*counterBits=*/6,
            /*minHistory=*/0, /*maxHistory=*/200,
            /*imliIndexTables=*/0, /*label=*/"gsc-global"};
        StatisticalCorrector::Config sc;

        ImliComponents::Config imli;
        bool enableImli = false;

        bool enableLocal = false;
        LocalComponent::Config local{/*historyEntries=*/256,
                                     /*historyBits=*/16,
                                     /*numTables=*/3,
                                     /*logEntries=*/10,
                                     /*counterBits=*/6,
                                     /*label=*/"local"};

        bool enableLoop = false;
        bool loopOverride = false;
        LoopPredictor::Config loop{/*logSets=*/2, /*ways=*/4};

        bool enableItl = false;
        IttageLoopPredictor::Config itl;

        bool enableWh = false;
        WormholePredictor::Config wh;

        std::string configName = "TAGE-GSC";
    };

    TageGscPredictor() : TageGscPredictor(Config()) {}

    explicit TageGscPredictor(const Config &config);

    bool predict(std::uint64_t pc) override;
    void update(std::uint64_t pc, bool taken, std::uint64_t target) override;
    void trackOtherInst(std::uint64_t pc, BranchType type, bool taken,
                        std::uint64_t target) override;
    void prefetch(std::uint64_t pc) const override;

    // Speculation contract (see predictor.hh): checkpoint = global/path
    // head + IMLI counter/PIPE (+OMLI) + in-flight local-history ticket +
    // the loop-family state (loop / ITTAGE-loop / wormhole journal
    // tickets and the loop-tracking PC) — the paper's Section 4.4
    // recovery state, extended to the per-branch speculative iteration
    // counts and in-flight local bits the loop components carry.  Tables
    // and counters stay architectural (commit-updated); only the
    // journals' visibility bounds and the loop PC travel in the
    // checkpoint, so a snapshot is still a few tens of bits.
    bool supportsSpeculation() const override { return true; }
    void prepareSpeculation(unsigned max_inflight) override;
    SpecCheckpoint checkpoint() const override;
    void restore(const SpecCheckpoint &cp) override;
    void speculate(std::uint64_t pc, bool pred_taken,
                   std::uint64_t target) override;
    void squashSpeculation() override;
    std::uint64_t stateDigest() const override;

    std::string name() const override { return cfg.configName; }
    StorageAccount storage() const override;

    /** IMLI state access for experiments (delay sweeps, checkpoints). */
    ImliComponents &imliState() { return imliComps; }

    const Config &config() const { return cfg; }

  private:
    std::optional<unsigned> currentTripCount() const;
    host_spec::LoopFamily loopFamily() const;

    Config cfg;
    HistoryManager histMgr;
    TagePredictor tage;
    BiasComponent bias;
    GlobalGehlComponent gscGlobal;
    StatisticalCorrector corrector;
    ImliComponents imliComps;
    std::unique_ptr<LocalComponent> local;
    std::unique_ptr<LoopPredictor> loopPred;
    std::unique_ptr<IttageLoopPredictor> ittageLoop;
    std::unique_ptr<WormholePredictor> wormhole;

    std::uint64_t currentLoopPc = 0;

    struct LookupState
    {
        ScContext ctx;
        TagePredictor::Prediction tagePrediction;
        StatisticalCorrector::Decision decision;
        bool finalPred = false;
        LoopPredictor::Prediction loopPrediction;
        IttageLoopPredictor::Prediction itlPrediction;
        WormholePredictor::Prediction whPrediction;
        std::optional<unsigned> tripCount;
    } look;

    // Allocation-regression guard (see tage.hh): pairing state must stay
    // inline value types, never heap-backed containers.
    static_assert(std::is_trivially_copyable_v<LookupState>,
                  "per-lookup state must stay heap-allocation-free");
};

} // namespace imli

#endif // IMLI_SRC_PREDICTORS_TAGE_GSC_HH
