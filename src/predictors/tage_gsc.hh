/**
 * @file
 * The TAGE-GSC host predictor (paper, Section 3.2.1, Figures 4 and 5):
 * a TAGE predictor backed by a global-history statistical corrector, i.e.
 * the CBP4-winning TAGE-SC-L with the loop predictor and local-history
 * components deactivated.  Add-ons re-enable them (+L), plug the IMLI
 * components into the corrector (+I), or attach the wormhole side
 * predictor for the Section 3.3 comparison.
 *
 * Composition: only the core — TAGE + corrector lookup and training —
 * lives here.  The component plumbing (loop-family overlay, IMLI
 * resolve, speculation contract, digest, storage ledger) is the
 * CompositeHost layer (composite_host.hh), shared with GEHL.
 */

#ifndef IMLI_SRC_PREDICTORS_TAGE_GSC_HH
#define IMLI_SRC_PREDICTORS_TAGE_GSC_HH

#include <string>
#include <type_traits>

#include "src/predictors/composite_host.hh"
#include "src/predictors/statistical_corrector.hh"
#include "src/predictors/tage.hh"

namespace imli
{

/** TAGE + global statistical corrector, with optional add-ons. */
class TageGscPredictor : public CompositeHost
{
  public:
    struct Config : CompositeHostConfig
    {
        TagePredictor::Config tage;
        BiasComponent::Config bias{/*logEntries=*/9, /*counterBits=*/6,
                                   /*numTables=*/2};
        GlobalGehlComponent::Config gscGlobal{
            /*numTables=*/6, /*logEntries=*/10, /*counterBits=*/6,
            /*minHistory=*/0, /*maxHistory=*/200,
            /*imliIndexTables=*/0, /*label=*/"gsc-global"};
        StatisticalCorrector::Config sc;

        Config()
        {
            local = LocalComponent::Config{
                /*historyEntries=*/256, /*historyBits=*/16,
                /*numTables=*/3,        /*logEntries=*/10,
                /*counterBits=*/6,      /*label=*/"local"};
            loop = LoopPredictor::Config{/*logSets=*/2, /*ways=*/4};
            configName = "TAGE-GSC";
        }
    };

    TageGscPredictor() : TageGscPredictor(Config()) {}

    explicit TageGscPredictor(const Config &config);

    void prefetch(std::uint64_t pc) const override;

    const Config &config() const { return cfg; }

  protected:
    bool predictHost(std::uint64_t pc) override;
    void updateHost(std::uint64_t pc, bool taken, bool final_pred) override;
    void accountHost(StorageAccount &acct) const override;

    void attachProbesHost(obs::MetricsScope &scope) override
    {
        tage.attachProbes(scope);
        corrector.attachProbes(scope);
    }

  private:
    Config cfg;
    TagePredictor tage;
    BiasComponent bias;
    GlobalGehlComponent gscGlobal;
    StatisticalCorrector corrector;

    // Core predict/update pairing state (the loop-family half lives in
    // CompositeHost).
    struct LookupState
    {
        ScContext ctx;
        TagePredictor::Prediction tagePrediction;
        StatisticalCorrector::Decision decision;
    } look;

    // Allocation-regression guard (see tage.hh): pairing state must stay
    // inline value types, never heap-backed containers.
    static_assert(std::is_trivially_copyable_v<LookupState>,
                  "per-lookup state must stay heap-allocation-free");
};

} // namespace imli

#endif // IMLI_SRC_PREDICTORS_TAGE_GSC_HH
