#include "src/predictors/meta_chooser.hh"

#include <cmath>
#include <stdexcept>

#include "src/util/hashing.hh"

namespace imli
{

namespace
{

std::size_t
nextPow2(std::size_t v)
{
    std::size_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // anonymous namespace

MetaChooserPredictor::MetaChooserPredictor(
    const Config &config, std::vector<PredictorPtr> sub_predictors)
    : cfg(config), subs(std::move(sub_predictors))
{
    if (subs.empty())
        throw std::invalid_argument("meta chooser needs at least one sub");
    if (subs.size() > kMaxSubs)
        throw std::invalid_argument(
            "meta chooser supports at most " + std::to_string(kMaxSubs) +
            " subs, got " + std::to_string(subs.size()));
    for (const PredictorPtr &s : subs)
        if (s == nullptr)
            throw std::invalid_argument("meta chooser sub is null");

    const std::size_t entries = std::size_t(1) << cfg.logEntries;
    const std::size_t n = subs.size();
    resolvedTheta = cfg.theta != 0
                        ? cfg.theta
                        : static_cast<unsigned>(1.93 * double(n) + 14.0);
    switch (cfg.policy) {
    case Policy::Tournament:
        // Weakly-neutral start: every arm at the counter midpoint, so
        // the first outcome already separates them.
        counters.assign(entries * n,
                        std::uint16_t(1u << (cfg.counterBits - 1)));
        break;
    case Policy::Ucb:
        pulls.assign(entries * n, 0);
        rewards.assign(entries * n, 0);
        break;
    case Policy::Fusion:
        weights.assign(entries * (n + 1), 0);
        break;
    }
}

std::size_t
MetaChooserPredictor::entryIndex(std::uint64_t pc) const
{
    return static_cast<std::size_t>(pcHash(pc) &
                                    maskBits(cfg.logEntries));
}

std::size_t
MetaChooserPredictor::chooseTournament(std::size_t entry) const
{
    const std::size_t base = entry * subs.size();
    std::size_t best = 0;
    for (std::size_t i = 1; i < subs.size(); ++i)
        if (counters[base + i] > counters[base + best])
            best = i;
    return best;
}

std::size_t
MetaChooserPredictor::chooseUcb(std::size_t entry) const
{
    const std::size_t base = entry * subs.size();
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < subs.size(); ++i) {
        if (pulls[base + i] == 0)
            return i; // unpulled arms first, lowest index
        total += pulls[base + i];
    }
    const double lnTotal = std::log(static_cast<double>(total));
    std::size_t best = 0;
    double bestScore = -1.0;
    for (std::size_t i = 0; i < subs.size(); ++i) {
        const double p = static_cast<double>(pulls[base + i]);
        const double score =
            static_cast<double>(rewards[base + i]) / p +
            std::sqrt(static_cast<double>(cfg.explore) * lnTotal / p);
        if (score > bestScore) {
            bestScore = score;
            best = i;
        }
    }
    return best;
}

int
MetaChooserPredictor::fusionSum(std::size_t entry) const
{
    const std::size_t base = entry * (subs.size() + 1);
    int sum = weights[base];
    for (std::size_t i = 0; i < subs.size(); ++i)
        sum += look.subPred[i] ? weights[base + 1 + i]
                               : -weights[base + 1 + i];
    return sum;
}

bool
MetaChooserPredictor::predict(std::uint64_t pc)
{
    look = LookupState();
    for (std::size_t i = 0; i < subs.size(); ++i)
        look.subPred[i] = subs[i]->predict(pc);

    const std::size_t entry = entryIndex(pc);
    switch (cfg.policy) {
    case Policy::Tournament:
        look.chosen = chooseTournament(entry);
        look.finalPred = look.subPred[look.chosen];
        break;
    case Policy::Ucb:
        look.chosen = chooseUcb(entry);
        look.finalPred = look.subPred[look.chosen];
        break;
    case Policy::Fusion:
        look.sum = fusionSum(entry);
        look.finalPred = look.sum >= 0;
        break;
    }
    return look.finalPred;
}

void
MetaChooserPredictor::trainTournament(std::size_t entry, bool taken)
{
    const std::size_t base = entry * subs.size();
    const std::uint16_t max =
        static_cast<std::uint16_t>((1u << cfg.counterBits) - 1);
    for (std::size_t i = 0; i < subs.size(); ++i) {
        std::uint16_t &c = counters[base + i];
        if (look.subPred[i] == taken) {
            if (c < max)
                ++c;
        } else if (c > 0) {
            --c;
        }
    }
}

void
MetaChooserPredictor::trainUcb(std::size_t entry, bool taken)
{
    const std::size_t base = entry * subs.size();
    const std::uint32_t max = (1u << cfg.countBits) - 1;
    std::uint32_t &p = pulls[base + look.chosen];
    std::uint32_t &r = rewards[base + look.chosen];
    ++p;
    if (look.subPred[look.chosen] == taken)
        ++r;
    if (p >= max) {
        // Halve the whole entry: reward rates survive, absolute pull
        // counts shrink, so the bandit re-explores after a phase change
        // instead of freezing on a stale champion.
        for (std::size_t i = 0; i < subs.size(); ++i) {
            pulls[base + i] >>= 1;
            rewards[base + i] >>= 1;
        }
    }
}

void
MetaChooserPredictor::trainFusion(std::size_t entry, bool taken)
{
    const bool mispred = look.finalPred != taken;
    const int absSum = look.sum < 0 ? -look.sum : look.sum;
    if (!mispred && absSum > static_cast<int>(resolvedTheta))
        return;
    const std::size_t base = entry * (subs.size() + 1);
    const int max = (1 << (cfg.weightBits - 1)) - 1;
    const int min = -(1 << (cfg.weightBits - 1));
    const auto bump = [&](std::int32_t &w, bool up) {
        if (up) {
            if (w < max)
                ++w;
        } else if (w > min) {
            --w;
        }
    };
    bump(weights[base], taken);
    for (std::size_t i = 0; i < subs.size(); ++i)
        bump(weights[base + 1 + i], look.subPred[i] == taken);
}

void
MetaChooserPredictor::update(std::uint64_t pc, bool taken,
                             std::uint64_t target)
{
    const std::size_t entry = entryIndex(pc);
    // Arm distribution: the followed sub for the selector policies; for
    // Fusion there is no single arm, so bucket the fused direction.
    obsArm.record(cfg.policy == Policy::Fusion
                      ? (look.finalPred ? 1u : 0u)
                      : static_cast<std::uint64_t>(look.chosen));
    switch (cfg.policy) {
    case Policy::Tournament:
        trainTournament(entry, taken);
        break;
    case Policy::Ucb:
        trainUcb(entry, taken);
        break;
    case Policy::Fusion:
        trainFusion(entry, taken);
        break;
    }
    // Every sub trains on every branch — arbitration never starves an
    // arm of training, so switching arms is instant, not a cold start.
    for (const PredictorPtr &s : subs)
        s->update(pc, taken, target);
}

void
MetaChooserPredictor::trackOtherInst(std::uint64_t pc, BranchType type,
                                     bool taken, std::uint64_t target)
{
    for (const PredictorPtr &s : subs)
        s->trackOtherInst(pc, type, taken, target);
}

void
MetaChooserPredictor::prefetch(std::uint64_t pc) const
{
    for (const PredictorPtr &s : subs)
        s->prefetch(pc);
}

bool
MetaChooserPredictor::supportsSpeculation() const
{
    for (const PredictorPtr &s : subs)
        if (!s->supportsSpeculation())
            return false;
    return true;
}

void
MetaChooserPredictor::prepareSpeculation(unsigned max_inflight)
{
    const std::size_t want =
        nextPow2(std::size_t(4) * max_inflight + 64);
    if (want > ringSlots) {
        ringSlots = want;
        ring.assign(ringSlots * subs.size(), SpecCheckpoint());
        ringSeq.assign(ringSlots, UINT64_MAX);
    }
    for (const PredictorPtr &s : subs)
        s->prepareSpeculation(max_inflight);
}

SpecCheckpoint
MetaChooserPredictor::checkpoint() const
{
    if (ring.empty()) {
        // Lazy default sizing for direct (non-engine) speculation use;
        // the pipeline engine always sizes the ring via
        // prepareSpeculation first.
        const std::size_t slots = 1024;
        ring.assign(slots * subs.size(), SpecCheckpoint());
        ringSeq.assign(slots, UINT64_MAX);
        const_cast<MetaChooserPredictor *>(this)->ringSlots = slots;
    }
    const std::uint64_t seq = nextSeq++;
    const std::size_t slot = static_cast<std::size_t>(seq % ringSlots);
    for (std::size_t i = 0; i < subs.size(); ++i)
        ring[slot * subs.size() + i] = subs[i]->checkpoint();
    ringSeq[slot] = seq;

    SpecCheckpoint cp;
    cp.localTicket = seq;
    return cp;
}

void
MetaChooserPredictor::restore(const SpecCheckpoint &cp)
{
    const std::uint64_t seq = cp.localTicket;
    if (ringSlots == 0 || seq >= nextSeq)
        throw std::logic_error(
            "meta chooser restore of a checkpoint it never issued");
    const std::size_t slot = static_cast<std::size_t>(seq % ringSlots);
    if (ringSeq[slot] != seq)
        throw std::logic_error(
            "meta chooser checkpoint outlived its ring slot (deepen "
            "prepareSpeculation)");
    for (std::size_t i = 0; i < subs.size(); ++i)
        subs[i]->restore(ring[slot * subs.size() + i]);
}

void
MetaChooserPredictor::speculate(std::uint64_t pc, bool pred_taken,
                                std::uint64_t target)
{
    // pred_taken is the chooser's own final answer — the direction the
    // pipeline follows — so every sub's speculative history sees the
    // architecturally-followed path, exactly as a lone sub would.
    for (const PredictorPtr &s : subs)
        s->speculate(pc, pred_taken, target);
}

void
MetaChooserPredictor::squashSpeculation()
{
    for (const PredictorPtr &s : subs)
        s->squashSpeculation();
}

std::uint64_t
MetaChooserPredictor::stateDigest() const
{
    std::uint64_t digest = hashCombine(0x4d45, std::uint64_t(cfg.policy));
    for (std::uint16_t c : counters)
        digest = hashCombine(digest, c);
    for (std::uint32_t p : pulls)
        digest = hashCombine(digest, p);
    for (std::uint32_t r : rewards)
        digest = hashCombine(digest, r);
    for (std::int32_t w : weights)
        digest = hashCombine(digest, static_cast<std::uint64_t>(
                                         static_cast<std::int64_t>(w)));
    for (const PredictorPtr &s : subs)
        digest = hashCombine(digest, s->stateDigest());
    return digest;
}

void
MetaChooserPredictor::attachProbes(obs::MetricsScope &scope)
{
    obsArm.sink = scope.histogram("meta/arm", obs::Histogram::Kind::Linear,
                                  kMaxSubs);
    for (std::size_t i = 0; i < subs.size(); ++i) {
        scope.pushPrefix("sub" + std::to_string(i) + "/");
        subs[i]->attachProbes(scope);
        scope.popPrefix();
    }
}

StorageAccount
MetaChooserPredictor::storage() const
{
    StorageAccount acct;
    const std::uint64_t entries = std::uint64_t(1) << cfg.logEntries;
    const std::uint64_t n = subs.size();
    switch (cfg.policy) {
    case Policy::Tournament:
        acct.add("meta-tournament", entries * n * cfg.counterBits);
        break;
    case Policy::Ucb:
        acct.add("meta-ucb", entries * n * 2 * cfg.countBits);
        break;
    case Policy::Fusion:
        acct.add("meta-fusion", entries * (n + 1) * cfg.weightBits);
        break;
    }
    for (std::size_t i = 0; i < subs.size(); ++i)
        acct.merge("sub" + std::to_string(i), subs[i]->storage());
    return acct;
}

} // namespace imli
