#include "src/predictors/tage_gsc.hh"

#include <algorithm>

#include "src/predictors/host_speculation.hh"
#include "src/util/hashing.hh"

namespace imli
{

TageGscPredictor::TageGscPredictor(const Config &config)
    : cfg(config),
      histMgr(host_spec::historyCapacity(std::max(
          config.tage.maxHistory, config.gscGlobal.maxHistory))),
      tage(cfg.tage, histMgr), bias(cfg.bias),
      gscGlobal(cfg.gscGlobal, histMgr), corrector(cfg.sc),
      imliComps(cfg.imli)
{
    corrector.addComponent(&bias);
    corrector.addComponent(&gscGlobal);
    if (cfg.enableImli) {
        for (ScComponent *c : imliComps.components())
            corrector.addComponent(c);
    }
    if (cfg.enableLocal) {
        local = std::make_unique<LocalComponent>(cfg.local);
        corrector.addComponent(local.get());
    }
    if (cfg.enableLoop || cfg.enableWh)
        loopPred = std::make_unique<LoopPredictor>(cfg.loop);
    if (cfg.enableItl)
        ittageLoop = std::make_unique<IttageLoopPredictor>(cfg.itl);
    if (cfg.enableWh)
        wormhole = std::make_unique<WormholePredictor>(cfg.wh);
}

host_spec::LoopFamily
TageGscPredictor::loopFamily() const
{
    // The family carries mutable pointers for restore()/speculate();
    // const callers (checkpoint, digest) only read through it.
    auto *self = const_cast<TageGscPredictor *>(this);
    host_spec::LoopFamily fam;
    fam.loop = self->loopPred.get();
    fam.itl = self->ittageLoop.get();
    fam.wh = self->wormhole.get();
    if (fam.loop != nullptr || fam.itl != nullptr || fam.wh != nullptr)
        fam.currentLoopPc = &self->currentLoopPc;
    return fam;
}

std::optional<unsigned>
TageGscPredictor::currentTripCount() const
{
    if (loopPred == nullptr || currentLoopPc == 0)
        return std::nullopt;
    return loopPred->tripCount(currentLoopPc);
}

void
TageGscPredictor::prefetch(std::uint64_t pc) const
{
    tage.prefetch(pc);
    // Approximate corrector context: the PC is exact, the IMLI count is
    // the current value (it may advance before the real lookup), and the
    // main prediction is unknown (the bias component hints both
    // variants itself).  State-free by contract.
    ScContext ctx;
    ctx.pc = pc;
    ctx.imliCount = imliComps.counter().value();
    corrector.engine().prefetchAll(ctx);
}

bool
TageGscPredictor::predict(std::uint64_t pc)
{
    look = LookupState();
    look.tagePrediction = tage.predict(pc);

    look.ctx.pc = pc;
    look.ctx.mainPred = look.tagePrediction.taken;
    if (cfg.enableImli)
        imliComps.fillContext(look.ctx, pc);

    look.decision = corrector.decide(look.ctx, look.tagePrediction.taken,
                                     look.tagePrediction.confidence);
    look.finalPred = look.decision.finalPred;

    if (loopPred != nullptr) {
        look.loopPrediction = loopPred->lookup(pc);
        if (cfg.loopOverride && look.loopPrediction.valid)
            look.finalPred = look.loopPrediction.taken;
    }
    if (ittageLoop != nullptr) {
        look.itlPrediction = ittageLoop->lookup(pc);
        if (look.itlPrediction.valid)
            look.finalPred = look.itlPrediction.taken;
    }
    if (wormhole != nullptr) {
        look.tripCount = currentTripCount();
        look.whPrediction = wormhole->predict(pc, look.tripCount);
        if (look.whPrediction.valid)
            look.finalPred = look.whPrediction.taken;
    }
    return look.finalPred;
}

void
TageGscPredictor::update(std::uint64_t pc, bool taken, std::uint64_t target)
{
    const bool final_mispred = look.finalPred != taken;

    if (loopPred != nullptr) {
        // Only backward conditional branches close loops (Section 4.1);
        // letting forward noise branches allocate would thrash the small
        // loop table.
        loopPred->update(pc, taken, final_mispred && target < pc,
                         look.loopPrediction);
    }
    if (ittageLoop != nullptr)
        ittageLoop->update(pc, taken, final_mispred && target < pc,
                           look.itlPrediction);
    if (wormhole != nullptr)
        wormhole->update(pc, taken, final_mispred, look.tripCount,
                         look.whPrediction);

    corrector.train(look.ctx, taken, look.decision);
    tage.update(pc, taken, look.finalPred);

    if (cfg.enableImli)
        imliComps.onResolved(pc, target, taken);

    if (target < pc) {
        if (taken)
            currentLoopPc = pc;
        else if (pc == currentLoopPc)
            currentLoopPc = 0;
    }

    histMgr.push(taken, pc);
}

void
TageGscPredictor::prepareSpeculation(unsigned max_inflight)
{
    host_spec::prepare(local.get(), max_inflight);
}

SpecCheckpoint
TageGscPredictor::checkpoint() const
{
    return host_spec::checkpoint(histMgr, cfg.enableImli, imliComps,
                                 local.get(), loopFamily());
}

void
TageGscPredictor::restore(const SpecCheckpoint &cp)
{
    host_spec::restore(histMgr, cfg.enableImli, imliComps, local.get(), cp,
                       loopFamily());
}

void
TageGscPredictor::speculate(std::uint64_t pc, bool pred_taken,
                            std::uint64_t target)
{
    host_spec::speculate(histMgr, cfg.enableImli, imliComps, local.get(),
                         pc, pred_taken, target, loopFamily());
}

void
TageGscPredictor::squashSpeculation()
{
    host_spec::squash(local.get(), loopFamily());
}

std::uint64_t
TageGscPredictor::stateDigest() const
{
    // The loop-family surface is the state this host's speculation fix
    // covers; the global/IMLI/local state is exercised by the prediction
    // equality checks already.
    std::uint64_t digest = hashCombine(0x7a6e, currentLoopPc);
    if (loopPred != nullptr)
        digest = hashCombine(digest, loopPred->stateDigest());
    if (ittageLoop != nullptr)
        digest = hashCombine(digest, ittageLoop->stateDigest());
    if (wormhole != nullptr)
        digest = hashCombine(digest, wormhole->stateDigest());
    return digest;
}

void
TageGscPredictor::trackOtherInst(std::uint64_t pc, BranchType type,
                                 bool taken, std::uint64_t target)
{
    (void)type;
    (void)taken;
    (void)target;
    histMgr.push(true, pc);
}

StorageAccount
TageGscPredictor::storage() const
{
    StorageAccount acct;
    tage.account(acct);
    corrector.account(acct);
    if (cfg.enableImli)
        imliComps.account(acct);
    if (loopPred != nullptr)
        loopPred->account(acct, "loop");
    if (ittageLoop != nullptr)
        ittageLoop->account(acct, "itl");
    if (wormhole != nullptr)
        wormhole->account(acct, "wormhole");
    return acct;
}

} // namespace imli
