#include "src/predictors/tage_gsc.hh"

#include <algorithm>

namespace imli
{

TageGscPredictor::TageGscPredictor(const Config &config)
    : CompositeHost(config,
                    std::max(config.tage.maxHistory,
                             config.gscGlobal.maxHistory),
                    /*digest_seed=*/0x7a6e),
      cfg(config), tage(cfg.tage, histMgr), bias(cfg.bias),
      gscGlobal(cfg.gscGlobal, histMgr), corrector(cfg.sc)
{
    corrector.addComponent(&bias);
    corrector.addComponent(&gscGlobal);
    if (cfg.enableImli) {
        for (ScComponent *c : imliComps.components())
            corrector.addComponent(c);
    }
    if (cfg.enableLocal)
        corrector.addComponent(local.get());
}

void
TageGscPredictor::prefetch(std::uint64_t pc) const
{
    tage.prefetch(pc);
    // Approximate corrector context: the PC is exact, the IMLI count is
    // the current value (it may advance before the real lookup), and the
    // main prediction is unknown (the bias component hints both
    // variants itself).  State-free by contract.
    ScContext ctx;
    ctx.pc = pc;
    ctx.imliCount = imliComps.counter().value();
    corrector.engine().prefetchAll(ctx);
}

bool
TageGscPredictor::predictHost(std::uint64_t pc)
{
    look = LookupState();
    look.tagePrediction = tage.predict(pc);

    look.ctx.pc = pc;
    look.ctx.mainPred = look.tagePrediction.taken;
    if (cfg.enableImli)
        imliComps.fillContext(look.ctx, pc);

    look.decision = corrector.decide(look.ctx, look.tagePrediction.taken,
                                     look.tagePrediction.confidence);
    return look.decision.finalPred;
}

void
TageGscPredictor::updateHost(std::uint64_t pc, bool taken, bool final_pred)
{
    corrector.train(look.ctx, taken, look.decision);
    tage.update(pc, taken, final_pred);
}

void
TageGscPredictor::accountHost(StorageAccount &acct) const
{
    tage.account(acct);
    corrector.account(acct);
}

} // namespace imli
