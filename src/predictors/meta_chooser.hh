/**
 * @file
 * The adaptive meta-prediction chooser: a host that arbitrates N
 * sub-predictors per branch, online.
 *
 * Motivation (ROADMAP / PAPERS.md "Workload Characterization for Branch
 * Predictability"): per-branch predictability varies enough across
 * workload classes that *selection* is its own research dimension —
 * when does a branch want TAGE's tagged matches, GEHL's long adder
 * tree, or a cheap gshare?  The chooser turns the zoo into one
 * predictor: every sub predicts every branch, a per-PC meta table picks
 * (or fuses) the answer, and every sub still trains on every branch, so
 * switching arms never restarts learning.
 *
 * Three policies, all per-PC (a `meta.logsize`-bit hashed table):
 *
 *  - Tournament: N saturating counters per entry, one per sub; the
 *    highest counter's sub is followed (tie -> lowest index), correct
 *    subs count up, wrong subs count down — the classic Alpha-21264
 *    chooser generalized from 2 arms to N.
 *  - UCB bandit: per-entry arms carry pull/reward counters; the arm
 *    maximizing reward-rate + sqrt(explore * ln(total) / pulls) is
 *    followed (unpulled arms first).  Counters halve on saturation, so
 *    the bandit re-explores after a phase change.
 *  - Perceptron fusion: N+1 signed weights per entry (bias + one per
 *    sub); the sign of the dot product with the subs' +/-1 predictions
 *    is followed, trained perceptron-style on mispredict or weak sum.
 *
 * Speculation.  The meta tables are architectural (commit-trained), so
 * the chooser's only speculative state is its subs': checkpoint()
 * snapshots every sub's SpecCheckpoint into a ring journal slot (the
 * ticket-journal idiom of the loop-family predictors) and returns a
 * checkpoint whose localTicket is the slot's sequence number;
 * restore() replays the stored sub-checkpoints.  speculate() forwards
 * the chooser's *final* answer — the direction the pipeline actually
 * follows — to every sub, so `meta(X)` under a selector policy drives
 * X exactly as X alone (result- and digest-identical; pinned in
 * tests/test_meta_chooser.cc).  Correct at any --update-delay.
 */

#ifndef IMLI_SRC_PREDICTORS_META_CHOOSER_HH
#define IMLI_SRC_PREDICTORS_META_CHOOSER_HH

#include <array>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "src/obs/metrics.hh"
#include "src/predictors/predictor.hh"

namespace imli
{

/** Meta-predictor host arbitrating N sub-predictors (see file header). */
class MetaChooserPredictor : public ConditionalPredictor
{
  public:
    /** Most sub-predictors one chooser can arbitrate. */
    static constexpr std::size_t kMaxSubs = 8;

    enum class Policy
    {
        Tournament,
        Ucb,
        Fusion,
    };

    struct Config
    {
        Policy policy = Policy::Tournament;
        unsigned logEntries = 12;  //!< meta.logsize: log2 meta-table entries
        unsigned counterBits = 2;  //!< meta.ctrbits: tournament counter width
        unsigned countBits = 8;    //!< meta.countbits: UCB pull/reward width
        unsigned explore = 2;      //!< meta.explore: UCB exploration scale
        unsigned weightBits = 8;   //!< meta.wbits: fusion weight width
        /** meta.theta: fusion training threshold; 0 = 1.93*N + 14. */
        unsigned theta = 0;
        std::string configName = "meta";
    };

    MetaChooserPredictor(const Config &config,
                         std::vector<PredictorPtr> sub_predictors);

    bool predict(std::uint64_t pc) override;
    void update(std::uint64_t pc, bool taken, std::uint64_t target) override;
    void trackOtherInst(std::uint64_t pc, BranchType type, bool taken,
                        std::uint64_t target) override;
    void prefetch(std::uint64_t pc) const override;

    bool supportsSpeculation() const override;
    void prepareSpeculation(unsigned max_inflight) override;
    SpecCheckpoint checkpoint() const override;
    void restore(const SpecCheckpoint &cp) override;
    void speculate(std::uint64_t pc, bool pred_taken,
                   std::uint64_t target) override;
    void squashSpeculation() override;
    std::uint64_t stateDigest() const override;

    /**
     * Arm-selection histogram ("meta/arm": the followed sub index for
     * the selector policies, the fused direction bucket for Fusion) plus
     * each sub's own probes under a "subN/" prefix.
     */
    void attachProbes(obs::MetricsScope &scope) override;

    std::string name() const override { return cfg.configName; }
    StorageAccount storage() const override;

    const Config &config() const { return cfg; }
    std::size_t subCount() const { return subs.size(); }
    /** Sub access for the meta(X) == X identity tests. */
    const ConditionalPredictor &sub(std::size_t i) const { return *subs[i]; }

  private:
    std::size_t entryIndex(std::uint64_t pc) const;
    std::size_t chooseTournament(std::size_t entry) const;
    std::size_t chooseUcb(std::size_t entry) const;
    int fusionSum(std::size_t entry) const;
    void trainTournament(std::size_t entry, bool taken);
    void trainUcb(std::size_t entry, bool taken);
    void trainFusion(std::size_t entry, bool taken);

    Config cfg;
    std::vector<PredictorPtr> subs;
    unsigned resolvedTheta;

    // Meta tables (architectural, commit-trained).  One flat array per
    // policy; entry e, arm a lives at e * numSubs + a.
    std::vector<std::uint16_t> counters; //!< tournament
    std::vector<std::uint32_t> pulls;    //!< ucb
    std::vector<std::uint32_t> rewards;  //!< ucb
    std::vector<std::int32_t> weights;   //!< fusion: e * (numSubs+1) + 1+a

    // Checkpoint ring journal: slot s holds the N sub-checkpoints of the
    // checkpoint() call with sequence number seq, at ring[(seq % slots) *
    // numSubs + i].  A checkpoint is restorable while fewer than `slots`
    // younger checkpoints have been taken — sized by prepareSpeculation
    // to 4x the in-flight window, far beyond the engine's live span.
    mutable std::vector<SpecCheckpoint> ring;
    mutable std::vector<std::uint64_t> ringSeq;
    mutable std::uint64_t nextSeq = 0;
    std::size_t ringSlots = 0;

    // predict/update pairing state.
    struct LookupState
    {
        std::array<bool, kMaxSubs> subPred{};
        std::size_t chosen = 0;
        int sum = 0;
        bool finalPred = false;
    } look;
    static_assert(std::is_trivially_copyable_v<LookupState>,
                  "per-lookup state must stay heap-allocation-free");

    obs::ProbeHistogram obsArm;
};

} // namespace imli

#endif // IMLI_SRC_PREDICTORS_META_CHOOSER_HH
