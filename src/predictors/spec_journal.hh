/**
 * @file
 * Ticketed speculative-event journal for side predictors (loop, ITTAGE
 * loop, wormhole).
 *
 * The side predictors' tables are architectural (commit-written), but
 * their *iteration tracking* is fetch-side state: the loop predictor's
 * CurrentIter and the wormhole predictor's per-entry local history must
 * advance with the predicted outcome of every in-flight occurrence, or a
 * deep pipeline predicts every iteration of a loop body from the same
 * stale count.  This journal is the same idiom as the local component's
 * InflightWindow (src/history/inflight_window.hh), reduced to what a
 * side predictor needs: speculate() appends exactly one ticketed event
 * per fetched conditional branch, commit pops the oldest (update() and
 * the fetch that produced the event are 1:1 FIFO under the pipeline
 * engine, replays included), restore() bounds visibility by ticket
 * non-destructively, and a squash clears the wrong-path tail.  Reads
 * walk newest-visible-first and fall back to the architectural tables,
 * so with the journal empty the predictor is bit-identical to its
 * immediate-update self.
 */

#ifndef IMLI_SRC_PREDICTORS_SPEC_JOURNAL_HH
#define IMLI_SRC_PREDICTORS_SPEC_JOURNAL_HH

#include <cstdint>
#include <deque>

namespace imli
{

/** FIFO of ticketed speculative events with a visibility horizon. */
template <typename Event>
class SpecJournal
{
  public:
    /** One speculative event plus its monotonic ticket. */
    struct Record
    {
        std::uint64_t ticket;
        Event event;
    };

    /** Append one event at the fetch front; lifts any visibility bound
     *  (speculation always happens at the newest state). */
    void push(const Event &event)
    {
        journal.push_back({nextTicket++, event});
        horizon = UINT64_MAX;
    }

    /**
     * Bound reads to events with ticket <= @p max_ticket (the commit
     * sandwich's fetch-time view); UINT64_MAX lifts the bound.
     * Non-destructive — a forward restore brings younger events back.
     */
    void setHorizon(std::uint64_t max_ticket) { horizon = max_ticket; }

    /** Ticket of the youngest event ever pushed (0 before the first). */
    std::uint64_t lastTicket() const { return nextTicket - 1; }

    /** Commit: the oldest in-flight event retires (pop by position, not
     *  visibility — the committing branch's own event may be hidden by
     *  the sandwich's backward restore). */
    void popOldest()
    {
        if (!journal.empty())
            journal.pop_front();
    }

    /** Misprediction squash: drop everything, lift the bound. */
    void squash()
    {
        journal.clear();
        horizon = UINT64_MAX;
    }

    bool empty() const { return journal.empty(); }
    std::size_t size() const { return journal.size(); }

    /**
     * Newest visible event accepted by @p match, or nullptr.  @p match
     * receives a const Event& and returns bool; visibility respects the
     * restore horizon.
     */
    template <typename Match>
    const Event *newestVisible(Match match) const
    {
        for (auto it = journal.rbegin(); it != journal.rend(); ++it) {
            if (it->ticket > horizon)
                continue;
            if (match(it->event))
                return &it->event;
        }
        return nullptr;
    }

    /**
     * Visit visible events accepted by @p match, newest first, until
     * @p visit returns false.  Used by the wormhole predictor, whose
     * speculative view needs *all* in-flight outcome bits of an entry,
     * not just the newest.
     */
    template <typename Match, typename Visit>
    void visitVisibleNewestFirst(Match match, Visit visit) const
    {
        for (auto it = journal.rbegin(); it != journal.rend(); ++it) {
            if (it->ticket > horizon)
                continue;
            if (match(it->event) && !visit(it->event))
                return;
        }
    }

  private:
    std::deque<Record> journal; //!< oldest at front
    std::uint64_t nextTicket = 1;
    std::uint64_t horizon = UINT64_MAX;
};

} // namespace imli

#endif // IMLI_SRC_PREDICTORS_SPEC_JOURNAL_HH
