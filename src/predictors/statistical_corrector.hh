/**
 * @file
 * Statistical corrector building blocks (paper, Figure 5).
 *
 * The GSC is "a neural predictor featuring several tables indexed with
 * global history (or a variation of the global history)" plus bias tables
 * hashed with the TAGE prediction.  It confirms the TAGE prediction in the
 * general case and reverts it when TAGE has statistically mispredicted in
 * similar circumstances.
 *
 * This file provides:
 *  - BiasComponent: PC+prediction indexed bias tables;
 *  - GlobalGehlComponent: a bank of global-history GEHL tables, reusable
 *    as the whole GEHL predictor (Figure 6) or as the GSC global part,
 *    with the Section 4.2 option of hashing the IMLI counter into the
 *    indices of its last tables;
 *  - StatisticalCorrector: the decision wrapper (confirm/revert policy
 *    with confidence-scaled revert threshold).
 */

#ifndef IMLI_SRC_PREDICTORS_STATISTICAL_CORRECTOR_HH
#define IMLI_SRC_PREDICTORS_STATISTICAL_CORRECTOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/history/history_manager.hh"
#include "src/obs/metrics.hh"
#include "src/predictors/sc_component.hh"
#include "src/util/arena.hh"
#include "src/util/counters.hh"

namespace imli
{

/**
 * Bias tables: two tables of signed counters indexed with hashes of the PC
 * and the main (TAGE) prediction.  They learn "TAGE is statistically wrong
 * for this branch" patterns and anchor the corrector sum.
 */
class BiasComponent : public ScComponent
{
  public:
    struct Config
    {
        unsigned logEntries = 10;  //!< per table
        unsigned counterBits = 6;
        unsigned numTables = 2;
    };

    BiasComponent() : BiasComponent(Config()) {}

    explicit BiasComponent(const Config &config);

    int vote(const ScContext &ctx) const override;
    void update(const ScContext &ctx, bool taken) override;
    void prefetch(const ScContext &ctx) const override;
    void account(StorageAccount &acct) const override;
    std::string name() const override { return "bias"; }

  private:
    unsigned index(unsigned table, const ScContext &ctx) const;

    Config cfg;
    TableArena<SignedCounter> tables; //!< one allocation, all tables
};

/**
 * A bank of GEHL tables indexed with geometric global history lengths.
 * Doubles as the full GEHL predictor core (17 tables, up to 600 bits of
 * history) and as the global part of the statistical corrector.
 */
class GlobalGehlComponent : public ScComponent
{
  public:
    struct Config
    {
        unsigned numTables = 6;    //!< including the L=0 table if minHistory==0
        unsigned logEntries = 9;   //!< log2 entries per table
        unsigned counterBits = 6;
        unsigned minHistory = 0;   //!< 0 => first table is PC-indexed only
        unsigned maxHistory = 200;
        /**
         * Number of trailing tables whose index additionally hashes the
         * IMLI counter (paper, Section 4.2: "inserting the IMLI counter in
         * the indices of two tables in the global history component of the
         * SC").  0 disables the feature.
         */
        unsigned imliIndexTables = 0;
        std::string label = "gsc-global";
    };

    GlobalGehlComponent(const Config &config, HistoryManager &hist);

    int vote(const ScContext &ctx) const override;
    void update(const ScContext &ctx, bool taken) override;
    void prefetch(const ScContext &ctx) const override;
    void account(StorageAccount &acct) const override;
    std::string name() const override { return cfg.label; }

    const std::vector<unsigned> &historyLengths() const { return lengths; }

  private:
    unsigned index(unsigned table, const ScContext &ctx) const;

    Config cfg;
    std::vector<unsigned> lengths;
    std::vector<FoldedHistory *> folds; //!< nullptr for the L=0 table
    TableArena<SignedCounter> tables; //!< one allocation, all tables
};

/**
 * The confirm/revert decision of the TAGE-GSC composition, following the
 * TAGE-SC-L arbitration: when the corrector sum disagrees with TAGE, the
 * sum magnitude selects one of three confidence bands.  The high band
 * always reverts; the two lower bands consult adaptive chooser counters
 * that learn, per workload, whether the corrector tends to be right when
 * it disagrees at that confidence level.  This is what lets a single
 * small IMLI table overturn a large TAGE on the branches it understands
 * without harming the branches it does not.
 */
class StatisticalCorrector
{
  public:
    struct Config
    {
        VotingEngine::Config voting;
        unsigned chooserBits = 6;    //!< width of the chooser counters
        unsigned chooserLogEntries = 6; //!< per-PC chooser table size
    };

    StatisticalCorrector() : StatisticalCorrector(Config()) {}

    explicit StatisticalCorrector(const Config &config);

    void addComponent(ScComponent *component);

    struct Decision
    {
        bool finalPred = false;
        bool scPred = false;
        int sum = 0;
        bool reverted = false;
        int band = -1; //!< 0 = weak, 1 = medium, 2 = strong disagreement
    };

    /** Combine the corrector sum with the TAGE prediction. */
    Decision decide(const ScContext &ctx, bool tage_pred,
                    int tage_confidence) const;

    /** Gated training + threshold adaptation + per-branch maintenance. */
    void train(const ScContext &ctx, bool taken, const Decision &decision);

    void account(StorageAccount &acct) const;

    /**
     * Resolve the corrector probes: agree (sum confirmed TAGE),
     * disagree, and reverse (disagreement that actually overturned the
     * TAGE prediction).  Fire in train(), once per resolved branch.
     */
    void attachProbes(obs::MetricsScope &scope);

    const VotingEngine &engine() const { return voting; }

    /** Chooser counter values for @p pc, exposed for tests. */
    int weakChooser(std::uint64_t pc) const;
    int mediumChooser(std::uint64_t pc) const;

  private:
    unsigned chooserIndex(std::uint64_t pc) const;

    Config cfg;
    VotingEngine voting;
    /**
     * Per-PC band choosers: >= 0 means "trust the corrector" in that
     * band for branches hashing to this entry.  Indexing by PC keeps the
     * arbitration of IMLI-favoured loop branches independent from the
     * noise branches the corrector cannot beat (the TAGE-SC-L
     * per-branch-threshold idea).
     */
    std::vector<std::int8_t> firstH;  //!< weak-disagreement band
    std::vector<std::int8_t> secondH; //!< medium-disagreement band

    obs::ProbeCounter obsAgree;
    obs::ProbeCounter obsDisagree;
    obs::ProbeCounter obsReverse;
};

} // namespace imli

#endif // IMLI_SRC_PREDICTORS_STATISTICAL_CORRECTOR_HH
