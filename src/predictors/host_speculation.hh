/**
 * @file
 * Shared implementation of the speculation contract for composed host
 * predictors (TAGE-GSC and GEHL).  Both hosts hold the same speculative
 * state — a HistoryManager, optional ImliComponents, an optional
 * LocalComponent — and must checkpoint / restore / speculate over it
 * identically; keeping the bodies here means a fix to the recovery
 * protocol cannot be applied to one host and silently missed on the
 * other (the zoo-wide checkpoint property test guards the contract, but
 * only one definition makes divergence impossible).
 */

#ifndef IMLI_SRC_PREDICTORS_HOST_SPECULATION_HH
#define IMLI_SRC_PREDICTORS_HOST_SPECULATION_HH

#include <cstdint>

#include "src/core/imli_components.hh"
#include "src/history/history_manager.hh"
#include "src/predictors/ittage_loop.hh"
#include "src/predictors/local_component.hh"
#include "src/predictors/loop_predictor.hh"
#include "src/predictors/predictor.hh"
#include "src/predictors/wormhole.hh"

namespace imli
{
namespace host_spec
{

/**
 * The loop-family speculative surface of a host: the optional loop /
 * ITTAGE-loop / wormhole side predictors (each carrying a ticketed
 * journal of in-flight iteration or outcome events) and the host's
 * current-loop PC register, which pairs wormhole lookups with the loop
 * predictor's trip count and advances at fetch like any other
 * speculative history.  Null members are simply skipped, so hosts pass
 * one struct regardless of which add-ons are enabled.
 */
struct LoopFamily
{
    LoopPredictor *loop = nullptr;
    IttageLoopPredictor *itl = nullptr;
    WormholePredictor *wh = nullptr;
    std::uint64_t *currentLoopPc = nullptr;
};

/**
 * History-buffer capacity for a host whose longest registered fold is
 * @p longest_history bits.  The incremental restore walk of
 * HistoryManager reads each push's outgoing bit (fold length positions
 * back), so the buffer must keep longest + deepest-restore-distance
 * bits resident — restores span at most the in-flight window
 * (kMaxSpeculationDepth records) plus the commit sandwich's own push.
 * Sizing the buffer here makes the residency invariant hold by
 * construction for every legal geometry override (maxhist up to 4096),
 * instead of silently corrupting folds when a big maxhist meets a
 * fixed 4096-bit buffer.  The 4096 floor keeps default geometries on
 * the capacity they always had.
 */
inline unsigned
historyCapacity(unsigned longest_history)
{
    const unsigned needed = longest_history + kMaxSpeculationDepth + 64;
    unsigned capacity = 4096;
    while (capacity < needed)
        capacity <<= 1;
    return capacity;
}

inline void
prepare(LocalComponent *local, unsigned max_inflight)
{
    if (local != nullptr)
        local->enableSpeculation(max_inflight);
}

inline SpecCheckpoint
checkpoint(const HistoryManager &hist, bool enable_imli,
           const ImliComponents &imli, const LocalComponent *local,
           const LoopFamily &loops = LoopFamily())
{
    SpecCheckpoint cp;
    cp.global = hist.save();
    if (enable_imli) {
        const ImliComponents::Checkpoint state = imli.save();
        cp.imliCounter = state.counter;
        cp.imliPipe = state.pipe;
        cp.omliCounter = state.omli.count;
        cp.omliTag = state.omli.innerTag;
    }
    if (local != nullptr)
        cp.localTicket = local->lastTicket();
    if (loops.loop != nullptr)
        cp.loopTicket = loops.loop->lastTicket();
    if (loops.itl != nullptr)
        cp.itlTicket = loops.itl->lastTicket();
    if (loops.wh != nullptr)
        cp.whTicket = loops.wh->lastTicket();
    if (loops.currentLoopPc != nullptr)
        cp.loopPc = *loops.currentLoopPc;
    return cp;
}

inline void
restore(HistoryManager &hist, bool enable_imli, ImliComponents &imli,
        LocalComponent *local, const SpecCheckpoint &cp,
        const LoopFamily &loops = LoopFamily())
{
    hist.restore(cp.global);
    if (enable_imli)
        imli.restore({cp.imliCounter, cp.imliPipe,
                      {cp.omliCounter, cp.omliTag}});
    if (local != nullptr)
        local->setTicketHorizon(cp.localTicket);
    if (loops.loop != nullptr)
        loops.loop->setTicketHorizon(cp.loopTicket);
    if (loops.itl != nullptr)
        loops.itl->setTicketHorizon(cp.itlTicket);
    if (loops.wh != nullptr)
        loops.wh->setTicketHorizon(cp.whTicket);
    if (loops.currentLoopPc != nullptr)
        *loops.currentLoopPc = cp.loopPc;
}

inline void
speculate(HistoryManager &hist, bool enable_imli, ImliComponents &imli,
          LocalComponent *local, std::uint64_t pc, bool pred_taken,
          std::uint64_t target, const LoopFamily &loops = LoopFamily())
{
    if (enable_imli)
        imli.speculate(pc, target, pred_taken);
    if (local != nullptr)
        local->speculate(pc, pred_taken);
    if (loops.loop != nullptr)
        loops.loop->speculate(pc, pred_taken);
    if (loops.itl != nullptr)
        loops.itl->speculate(pc, pred_taken);
    if (loops.wh != nullptr)
        loops.wh->speculate(pc, pred_taken);
    if (loops.currentLoopPc != nullptr && target < pc) {
        // Mirror of the host's commit-time current-loop transition, with
        // the predicted direction.
        if (pred_taken)
            *loops.currentLoopPc = pc;
        else if (pc == *loops.currentLoopPc)
            *loops.currentLoopPc = 0;
    }
    hist.push(pred_taken, pc);
}

inline void
squash(LocalComponent *local, const LoopFamily &loops = LoopFamily())
{
    if (local != nullptr)
        local->squashSpeculation();
    if (loops.loop != nullptr)
        loops.loop->squashSpeculation();
    if (loops.itl != nullptr)
        loops.itl->squashSpeculation();
    if (loops.wh != nullptr)
        loops.wh->squashSpeculation();
}

} // namespace host_spec
} // namespace imli

#endif // IMLI_SRC_PREDICTORS_HOST_SPECULATION_HH
