/**
 * @file
 * Factory for the named predictor configurations used across the paper's
 * experiments.
 *
 * Spec strings mirror the paper's notation:
 *
 *   "tage-gsc"            base TAGE-GSC (Section 3.2.1)
 *   "tage-gsc+sic"        + IMLI-SIC only (Section 4.2)
 *   "tage-gsc+i"          + IMLI-SIC + IMLI-OH (Section 4.4)
 *   "tage-gsc+l"          + local history components + loop predictor
 *   "tage-gsc+i+l"        both (Table 1 rightmost column)
 *   "tage-gsc+wh"         + wormhole side predictor (Section 3.3)
 *   "tage-gsc+sic+wh"     Section 4.3 intro experiment
 *   "tage-gsc+loop"       + loop predictor only (Sections 2.3.3 / 4.2.2)
 *   "gehl", "gehl+i", ... same add-ons on the GEHL host
 *   "bimodal", "gshare"   simple baselines for examples
 *
 * Extra spec suffixes (ablations): "+imligsc" hashes the IMLI counter into
 * the last two global SC tables (Section 4.2's index insertion); "+omli"
 * enables the beyond-the-paper outer-iteration (OMLI) extension.
 */

#ifndef IMLI_SRC_PREDICTORS_ZOO_HH
#define IMLI_SRC_PREDICTORS_ZOO_HH

#include <string>
#include <vector>

#include "src/predictors/gehl.hh"
#include "src/predictors/predictor.hh"
#include "src/predictors/tage_gsc.hh"

namespace imli
{

/** Parsed add-on set for a host predictor. */
struct ZooOptions
{
    bool imliSic = false;
    bool imliOh = false;
    bool local = false;        //!< local components + loop override
    bool loopOnly = false;     //!< loop predictor override, no local
    bool wormhole = false;
    /** Beyond-the-paper OMLI extension (outer-iteration phase table). */
    bool omli = false;
    unsigned imliInGscTables = 0;
    unsigned ohUpdateDelay = 0;
};

/** Build a TAGE-GSC configuration. */
PredictorPtr makeTageGsc(const ZooOptions &opts = ZooOptions());

/** Build a GEHL configuration. */
PredictorPtr makeGehl(const ZooOptions &opts = ZooOptions());

/**
 * Build any predictor from a spec string (see file header).  Throws
 * std::invalid_argument on unknown specs.
 */
PredictorPtr makePredictor(const std::string &spec);

/** All spec strings makePredictor accepts, for CLI help and tests. */
std::vector<std::string> knownSpecs();

} // namespace imli

#endif // IMLI_SRC_PREDICTORS_ZOO_HH
