/**
 * @file
 * Factory for the named predictor configurations used across the paper's
 * experiments, plus the parameterized-spec grammar behind the design-space
 * exploration subsystem (src/dse/).
 *
 * Base spec strings mirror the paper's notation:
 *
 *   "tage-gsc"            base TAGE-GSC (Section 3.2.1)
 *   "tage-gsc+sic"        + IMLI-SIC only (Section 4.2)
 *   "tage-gsc+i"          + IMLI-SIC + IMLI-OH (Section 4.4)
 *   "tage-gsc+l"          + local history components + loop predictor
 *   "tage-gsc+i+l"        both (Table 1 rightmost column)
 *   "tage-gsc+wh"         + wormhole side predictor (Section 3.3)
 *   "tage-gsc+sic+wh"     Section 4.3 intro experiment
 *   "tage-gsc+loop"       + loop predictor only (Sections 2.3.3 / 4.2.2)
 *   "tage-gsc+itl"        + ITTAGE-style tagged loop exit predictor
 *   "gehl", "gehl+i", ... same add-ons on the GEHL host
 *   "bimodal", "gshare"   simple baselines for examples
 *   "itl"                 standalone tagged exit predictor over bimodal
 *
 * Extra spec suffixes (ablations): "+imligsc" hashes the IMLI counter into
 * the last two global SC tables (Section 4.2's index insertion); "+omli"
 * enables the beyond-the-paper outer-iteration (OMLI) extension.
 *
 * Parameter overrides (the design-space grammar) append to any tage-gsc /
 * gehl spec as "spec@key=value,key=value":
 *
 *   "tage-gsc+sic@sic.logsize=10,sic.ctrbits=5"
 *   "gehl@gsc.tables=12,gsc.maxhist=300"
 *
 * Every key names one geometry knob of the underlying Config structs
 * (TAGE table count / log size / history lengths, SC table geometry,
 * SIC/OH/loop/wormhole sizes, counter widths — see knownOverrideKeys()).
 *
 * The meta-chooser host composes any other specs (see meta_chooser.hh):
 *
 *   "meta(tage-gsc,gehl,gshare)"
 *   "meta(tage-gsc+i,gehl@gsc.tables=12)@meta.policy=ucb,meta.logsize=14"
 *
 * Commas inside the parentheses separate sub-specs (and continue a
 * sub-spec's own '@' overrides, exactly like splitSpecList); the '@'
 * section after the closing parenthesis takes the meta.* keys
 * (meta.policy accepts the named values tournament / ucb / fusion and
 * canonicalizes to the name, not a number) plus the run-level sim.*
 * keys.  meta specs cannot nest, and run-level sim.* keys belong after
 * the closing parenthesis, not on a sub-spec.
 * Two keys are run-level rather than geometry: "sim.delay" selects the
 * speculative pipeline engine's update delay for the point (see
 * specUpdateDelay()), making update timing a sweepable DSE dimension,
 * and "sim.prefetch" sets the simulator's prefetch lookahead for the
 * point (see specPrefetch()) — a throughput-only dimension.
 * Parsing is strict: unknown keys, values out of their documented range,
 * non-integer values, keys that do not apply to the chosen host, and
 * keys whose component the spec does not enable (e.g. sic.* without
 * +sic — the override would be silently inert) all throw
 * std::invalid_argument.  describeConfig() echoes the canonical
 * form (sorted, deduplicated keys), so
 * describeConfig(parseSpec(s)) == canonicalSpec(s) for every valid s.
 */

#ifndef IMLI_SRC_PREDICTORS_ZOO_HH
#define IMLI_SRC_PREDICTORS_ZOO_HH

#include <string>
#include <vector>

#include "src/predictors/gehl.hh"
#include "src/predictors/meta_chooser.hh"
#include "src/predictors/predictor.hh"
#include "src/predictors/tage_gsc.hh"

namespace imli
{

/** Parsed add-on set for a host predictor. */
struct ZooOptions
{
    bool imliSic = false;
    bool imliOh = false;
    bool local = false;        //!< local components + loop override
    bool loopOnly = false;     //!< loop predictor override, no local
    bool ittageLoop = false;   //!< ITTAGE-style tagged loop exit predictor
    bool wormhole = false;
    /** Beyond-the-paper OMLI extension (outer-iteration phase table). */
    bool omli = false;
    unsigned imliInGscTables = 0;
    unsigned ohUpdateDelay = 0;
};

/** One "key=value" geometry override from the @-section of a spec. */
struct SpecOverride
{
    std::string key;
    long long value = 0;
};

inline bool
operator==(const SpecOverride &a, const SpecOverride &b)
{
    return a.key == b.key && a.value == b.value;
}

/**
 * A fully parsed spec string: host, add-on set and canonicalized
 * overrides (sorted by key, duplicates resolved last-wins).
 */
struct ParsedSpec
{
    /** "tage-gsc", "gehl", "bimodal", "gshare", "itl" or "meta". */
    std::string host;
    ZooOptions opts;
    std::vector<SpecOverride> overrides;
    /**
     * For host == "meta": the canonicalized sub-spec strings, in
     * declaration order (order is semantic — it is the arm index of the
     * chooser's tables and the tie-break preference).  Empty otherwise.
     */
    std::vector<std::string> subSpecs;
};

/** One override key of the design-space grammar, with its legal range. */
struct OverrideKeyInfo
{
    std::string key;
    long long minValue = 0;
    long long maxValue = 0;
    bool powerOfTwo = false;   //!< value must be a power of two
    bool tageGscOnly = false;  //!< key only applies to the tage-gsc host
    std::string doc;           //!< one-line description for CLI help
    bool metaOnly = false;     //!< key only applies to the meta host
};

/**
 * Parse a spec string "host[+addon...][@key=value,...]" (see file
 * header).  Throws std::invalid_argument on any grammar, key, range or
 * host-applicability error; the message names the offending token.
 */
ParsedSpec parseSpec(const std::string &spec);

/**
 * Canonical spec string for @p parsed: host, add-ons in canonical order,
 * then "@" and the overrides sorted by key.  This is the round-trip echo:
 * describeConfig(parseSpec(s)) == canonicalSpec(s) for every valid s.
 */
std::string describeConfig(const ParsedSpec &parsed);

/** Parse-then-echo convenience: the canonical form of @p spec. */
std::string canonicalSpec(const std::string &spec);

/**
 * Multi-line human-readable echo of the fully resolved configuration:
 * every geometry parameter after overrides, plus the storage total.
 * Used by `explorer describe`.
 */
std::string describeConfigDetail(const ParsedSpec &parsed);

/**
 * Resolve @p parsed into the host Config struct with every override
 * applied.  Exposed so tests and the describe surface can audit the
 * plumbing; throws std::invalid_argument when @p parsed is not for the
 * matching host or a cross-parameter constraint breaks (e.g.
 * tage.minhist >= tage.maxhist).
 */
TageGscPredictor::Config buildTageGscConfig(const ParsedSpec &parsed);
GehlPredictor::Config buildGehlConfig(const ParsedSpec &parsed);
MetaChooserPredictor::Config buildMetaConfig(const ParsedSpec &parsed);

/** Build a TAGE-GSC configuration. */
PredictorPtr makeTageGsc(const ZooOptions &opts = ZooOptions());

/** Build a GEHL configuration. */
PredictorPtr makeGehl(const ZooOptions &opts = ZooOptions());

/**
 * Build any predictor from a spec string (see file header).  Throws
 * std::invalid_argument on unknown specs.
 */
PredictorPtr makePredictor(const std::string &spec);

/** Build a predictor from an already parsed spec. */
PredictorPtr makePredictor(const ParsedSpec &parsed);

/**
 * Split a comma-separated list of spec strings, keeping override commas
 * bound to their spec: a fragment of the form "key=value" that follows a
 * spec with a top-level '@' section continues that spec's overrides
 * instead of starting a new spec, so "--configs a@x=1,y=2,b" is the two
 * specs {"a@x=1,y=2", "b"}.  Commas inside parentheses never split —
 * "meta(a,b)@meta.logsize=14,c" is the two specs
 * {"meta(a,b)@meta.logsize=14", "c"} — and an '@' inside parentheses
 * (a sub-spec's overrides) does not count as the spec's own '@'
 * section.  A "key=value" fragment with no preceding top-level-'@' spec
 * throws std::invalid_argument.  Empty fragments are skipped.
 */
std::vector<std::string> splitSpecList(const std::string &text);

/** All base spec strings makePredictor accepts, for CLI help and tests. */
std::vector<std::string> knownSpecs();

/**
 * True when @p parsed carries a "sim.delay" override at all.  Presence
 * matters independently of the value: an explicit sim.delay=0 pins the
 * config to the pipeline engine at depth 0 even when the run-level
 * options select a deeper delay — the spec label must never lie about
 * the numbers next to it.
 */
bool hasSpecUpdateDelay(const ParsedSpec &parsed);

/**
 * The "sim.delay" override of @p parsed (0 when absent): the speculative
 * pipeline engine's update delay for this config point.  A run-level key,
 * not predictor geometry — makePredictor() ignores it, the simulation
 * drivers (suite runner, DSE sweep) honour it per point, and because it
 * is part of the canonical spec string, sweep journals and Pareto
 * reports distinguish delay points like any other dimension.
 */
unsigned specUpdateDelay(const ParsedSpec &parsed);

/**
 * True when @p parsed carries a "sim.prefetch" override at all.  As with
 * sim.delay, presence matters: an explicit sim.prefetch=0 pins the
 * config to no prefetching even under a run-level lookahead default.
 */
bool hasSpecPrefetch(const ParsedSpec &parsed);

/**
 * The "sim.prefetch" override of @p parsed (0 when absent): the
 * simulator's software-prefetch lookahead distance for this config
 * point, in records.  Run-level like sim.delay — makePredictor() ignores
 * it, the drivers honour it per point, and it travels in the canonical
 * spec string so sweep journals distinguish prefetch points.  Results
 * are bit-identical at any value; only throughput moves.
 */
unsigned specPrefetch(const ParsedSpec &parsed);

/** Every override key of the design-space grammar, sorted by key. */
std::vector<OverrideKeyInfo> knownOverrideKeys();

/**
 * Canonical name of a meta.policy override value ("tournament", "ucb"
 * or "fusion").  The value travels in SpecOverride.value as the Policy
 * enum's integer but always reads and echoes as the name — in spec
 * strings, sweep journals and report tables alike.  Throws on a value
 * outside the enum.
 */
std::string metaPolicyValueName(long long value);

/** Parse a meta.policy name into its SpecOverride value; throws. */
long long metaPolicyValueFromName(const std::string &name);

} // namespace imli

#endif // IMLI_SRC_PREDICTORS_ZOO_HH
