#include "src/predictors/predictor.hh"

// Interface only; this translation unit anchors the module in the build
// graph.
