#include "src/predictors/statistical_corrector.hh"

#include <cassert>
#include <cstdlib>

#include "src/predictors/tage.hh"
#include "src/util/hashing.hh"

namespace imli
{

// --------------------------------------------------------------------------
// BiasComponent
// --------------------------------------------------------------------------

BiasComponent::BiasComponent(const Config &config) : cfg(config)
{
    tables = TableArena<SignedCounter>(cfg.numTables, cfg.logEntries,
                                       SignedCounter(cfg.counterBits));
}

unsigned
BiasComponent::index(unsigned table, const ScContext &ctx) const
{
    // Each table uses a different PC hash; all fold in the main prediction
    // so the counters learn the correction conditioned on what TAGE said.
    const std::uint64_t h = hashCombine(pcHash(ctx.pc) + table * 0x9e37ULL,
                                        (ctx.pc << 1) | (ctx.mainPred ? 1 : 0));
    return static_cast<unsigned>(h & maskBits(cfg.logEntries));
}

int
BiasComponent::vote(const ScContext &ctx) const
{
    int sum = 0;
    for (unsigned t = 0; t < cfg.numTables; ++t)
        sum += tables.at(t, index(t, ctx)).centered();
    return sum;
}

void
BiasComponent::update(const ScContext &ctx, bool taken)
{
    for (unsigned t = 0; t < cfg.numTables; ++t)
        tables.at(t, index(t, ctx)).update(taken);
}

void
BiasComponent::prefetch(const ScContext &ctx) const
{
    // The index hashes the main prediction, unknown at prefetch time:
    // hint both variants (two small fetches beat a dependent miss).
    ScContext flipped = ctx;
    flipped.mainPred = !ctx.mainPred;
    for (unsigned t = 0; t < cfg.numTables; ++t) {
        tables.prefetchEntry(t, index(t, ctx));
        tables.prefetchEntry(t, index(t, flipped));
    }
}

void
BiasComponent::account(StorageAccount &acct) const
{
    acct.add("bias",
             static_cast<std::uint64_t>(cfg.numTables) *
                 (1ull << cfg.logEntries) * cfg.counterBits);
}

// --------------------------------------------------------------------------
// GlobalGehlComponent
// --------------------------------------------------------------------------

GlobalGehlComponent::GlobalGehlComponent(const Config &config,
                                         HistoryManager &hist)
    : cfg(config)
{
    assert(cfg.numTables >= 1);
    if (cfg.minHistory == 0) {
        // First table sees no history; the rest follow a geometric series
        // from max(1, second step) up to maxHistory.
        lengths.push_back(0);
        if (cfg.numTables > 1) {
            auto rest = geometricLengths(cfg.numTables - 1,
                                         2, cfg.maxHistory);
            lengths.insert(lengths.end(), rest.begin(), rest.end());
        }
    } else {
        lengths = geometricLengths(cfg.numTables, cfg.minHistory,
                                   cfg.maxHistory);
    }

    folds.resize(cfg.numTables, nullptr);
    for (unsigned i = 0; i < cfg.numTables; ++i) {
        if (lengths[i] > 0)
            folds[i] = hist.createFold(lengths[i], cfg.logEntries);
    }
    tables = TableArena<SignedCounter>(cfg.numTables, cfg.logEntries,
                                       SignedCounter(cfg.counterBits));
}

unsigned
GlobalGehlComponent::index(unsigned table, const ScContext &ctx) const
{
    std::uint64_t raw = (ctx.pc >> 1) ^ ((ctx.pc >> 1) >> (table + 2));
    if (folds[table] != nullptr)
        raw ^= folds[table]->value() ^
               (static_cast<std::uint64_t>(folds[table]->value()) << 2);
    const bool imli_indexed =
        cfg.imliIndexTables > 0 &&
        table >= cfg.numTables - cfg.imliIndexTables;
    if (imli_indexed)
        raw ^= mix64(ctx.imliCount) >> 40;
    return static_cast<unsigned>(mix64(raw) & maskBits(cfg.logEntries));
}

int
GlobalGehlComponent::vote(const ScContext &ctx) const
{
    int sum = 0;
    for (unsigned t = 0; t < cfg.numTables; ++t)
        sum += tables.at(t, index(t, ctx)).centered();
    return sum;
}

void
GlobalGehlComponent::update(const ScContext &ctx, bool taken)
{
    for (unsigned t = 0; t < cfg.numTables; ++t)
        tables.at(t, index(t, ctx)).update(taken);
}

void
GlobalGehlComponent::prefetch(const ScContext &ctx) const
{
    // Indices computed from the current folds; history-indexed tables
    // drift with lookahead distance, costing only the wasted fetch.
    for (unsigned t = 0; t < cfg.numTables; ++t)
        tables.prefetchEntry(t, index(t, ctx));
}

void
GlobalGehlComponent::account(StorageAccount &acct) const
{
    acct.add(cfg.label,
             static_cast<std::uint64_t>(cfg.numTables) *
                 (1ull << cfg.logEntries) * cfg.counterBits);
}

// --------------------------------------------------------------------------
// StatisticalCorrector
// --------------------------------------------------------------------------

StatisticalCorrector::StatisticalCorrector(const Config &config)
    : cfg(config), voting(config.voting)
{
    firstH.assign(1u << cfg.chooserLogEntries, 0);
    secondH.assign(1u << cfg.chooserLogEntries, 0);
}

unsigned
StatisticalCorrector::chooserIndex(std::uint64_t pc) const
{
    return static_cast<unsigned>(pcHash(pc)) &
           ((1u << cfg.chooserLogEntries) - 1);
}

int
StatisticalCorrector::weakChooser(std::uint64_t pc) const
{
    return firstH[chooserIndex(pc)];
}

int
StatisticalCorrector::mediumChooser(std::uint64_t pc) const
{
    return secondH[chooserIndex(pc)];
}

void
StatisticalCorrector::addComponent(ScComponent *component)
{
    voting.addComponent(component);
}

StatisticalCorrector::Decision
StatisticalCorrector::decide(const ScContext &ctx, bool tage_pred,
                             int tage_confidence) const
{
    (void)tage_confidence;
    Decision d;
    d.sum = voting.sum(ctx);
    d.scPred = d.sum >= 0;
    if (d.scPred == tage_pred) {
        d.finalPred = tage_pred;
        return d;
    }
    // Disagreement: band by |sum| against the adaptive threshold, then
    // either revert outright (strong) or consult the band chooser.
    const int abs_sum = d.sum < 0 ? -d.sum : d.sum;
    const int threshold = voting.theta();
    const unsigned ci = chooserIndex(ctx.pc);
    // Branch-light banding: |sum| lands near the threshold exactly when
    // the corrector is uncertain, so these compares are data-dependent
    // coin flips — compute both band compares and both chooser reads
    // unconditionally and select with cmov-able ternaries.
    d.band = abs_sum >= threshold ? 2 : (abs_sum >= threshold / 2 ? 1 : 0);
    const bool chooser_says =
        d.band == 1 ? secondH[ci] >= 0 : firstH[ci] >= 0;
    d.reverted = d.band == 2 ? true : chooser_says;
    d.finalPred = d.reverted ? d.scPred : tage_pred;
    return d;
}

void
StatisticalCorrector::train(const ScContext &ctx, bool taken,
                            const Decision &decision)
{
    // decide() leaves band at -1 on agreement, so the decision carries
    // the full agree/disagree/revert classification.
    if (decision.band < 0) {
        obsAgree.hit();
    } else {
        obsDisagree.hit();
        if (decision.reverted)
            obsReverse.hit();
    }

    // Band choosers learn whether the corrector wins disagreements.
    if (decision.band == 0 || decision.band == 1) {
        const unsigned ci = chooserIndex(ctx.pc);
        std::int8_t &chooser =
            decision.band == 0 ? firstH[ci] : secondH[ci];
        const int max_v = (1 << (cfg.chooserBits - 1)) - 1;
        const int min_v = -(1 << (cfg.chooserBits - 1));
        // Branch-free clamp, as in counters.hh.
        int next = chooser + (decision.scPred == taken ? 1 : -1);
        next = next < min_v ? min_v : next;
        chooser = static_cast<std::int8_t>(next > max_v ? max_v : next);
    }

    const bool sc_mispred = decision.scPred != taken;
    const int abs_sum = decision.sum < 0 ? -decision.sum : decision.sum;
    if (voting.onOutcome(sc_mispred, abs_sum))
        voting.trainAll(ctx, taken);
    voting.resolveAll(ctx, taken);
}

void
StatisticalCorrector::attachProbes(obs::MetricsScope &scope)
{
    obsAgree.slot = scope.counter("sc/agree");
    obsDisagree.slot = scope.counter("sc/disagree");
    obsReverse.slot = scope.counter("sc/reverse");
}

void
StatisticalCorrector::account(StorageAccount &acct) const
{
    voting.account(acct);
    acct.add("sc/choosers",
             2ull * cfg.chooserBits * (1ull << cfg.chooserLogEntries));
}

} // namespace imli
