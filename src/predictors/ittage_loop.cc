#include "src/predictors/ittage_loop.hh"

#include <cassert>

#include "src/util/hashing.hh"

namespace imli
{

IttageLoopPredictor::IttageLoopPredictor(const Config &config)
    : cfg(config), base(config.numBaseEntries()),
      tables(config.numTables, config.logSize)
{
    assert(cfg.ways >= 1);
    assert(cfg.iterBits <= 16 && cfg.tagBits <= 16);
    assert(cfg.numTables >= 1 && cfg.numTables <= 8);
    assert(cfg.taggedTagBits >= 1 && cfg.taggedTagBits <= 16);
}

unsigned
IttageLoopPredictor::baseIndexOf(std::uint64_t pc) const
{
    const unsigned set =
        static_cast<unsigned>(pcHash(pc)) & ((1u << cfg.logSets) - 1);
    return set * cfg.ways;
}

std::uint16_t
IttageLoopPredictor::baseTagOf(std::uint64_t pc) const
{
    return static_cast<std::uint16_t>(
        (pcHash(pc) >> cfg.logSets) & maskBits(cfg.tagBits));
}

std::uint64_t
IttageLoopPredictor::historyPrefix(unsigned t) const
{
    // Geometric prefix lengths: table t sees the most recent 2^t exits,
    // 8 hashed bits each, capped at the 64-bit register.
    const unsigned exits = 1u << t;
    const unsigned bits = exits >= 8 ? 64 : exits * 8;
    return exitHistory & maskBits(bits);
}

unsigned
IttageLoopPredictor::taggedIndexOf(std::uint64_t pc, unsigned t) const
{
    const std::uint64_t h =
        hashCombine(pcHash(pc), mix64(historyPrefix(t)) + t);
    return static_cast<unsigned>(foldBits(h, cfg.logSize)) &
           ((1u << cfg.logSize) - 1);
}

std::uint16_t
IttageLoopPredictor::taggedTagOf(std::uint64_t pc, unsigned t) const
{
    // A different derivation from the index so aliasing in one does not
    // imply aliasing in the other.
    const std::uint64_t h =
        hashCombine(mix64(pc + 0x7175u), historyPrefix(t) ^ (t * 0x9e37u));
    return static_cast<std::uint16_t>(h & maskBits(cfg.taggedTagBits));
}

std::uint16_t
IttageLoopPredictor::specIter(unsigned index, const BaseEntry &e) const
{
    const SpecEvent *ev = journal.newestVisible(
        [&](const SpecEvent &event) {
            return event.index == index && event.tag == e.tag;
        });
    return ev != nullptr ? ev->iter : e.currentIter;
}

unsigned
IttageLoopPredictor::nextRandom()
{
    const unsigned bit =
        ((lfsr >> 0) ^ (lfsr >> 2) ^ (lfsr >> 3) ^ (lfsr >> 5)) & 1u;
    lfsr = (lfsr >> 1) | (bit << 15);
    return lfsr;
}

IttageLoopPredictor::Prediction
IttageLoopPredictor::lookup(std::uint64_t pc) const
{
    Prediction pred;

    const unsigned first = baseIndexOf(pc);
    const std::uint16_t tag = baseTagOf(pc);
    const BaseEntry *entry = nullptr;
    for (unsigned way = 0; way < cfg.ways; ++way) {
        const BaseEntry &e = base[first + way];
        if (e.tag == tag && e.age > 0) {
            pred.hit = true;
            pred.baseIndex = first + way;
            pred.baseTag = tag;
            entry = &e;
            break;
        }
    }
    if (entry == nullptr)
        return pred;

    // Longest tagged match provides the exit iteration; the next match
    // (or the base fallback) is the alternate, ITTAGE-style.
    std::uint16_t provExit = 0;
    std::uint8_t provConf = 0;
    for (int t = static_cast<int>(cfg.numTables) - 1; t >= 0; --t) {
        const unsigned idx = taggedIndexOf(pc, static_cast<unsigned>(t));
        const TaggedEntry &te = tables.at(static_cast<unsigned>(t), idx);
        if (te.exitIter != 0 &&
            te.tag == taggedTagOf(pc, static_cast<unsigned>(t))) {
            if (pred.providerTable < 0) {
                pred.providerTable = t;
                pred.providerIndex = idx;
                provExit = te.exitIter;
                provConf = te.conf;
            } else if (pred.altExit == 0) {
                pred.altExit = te.exitIter;
                break;
            }
        }
    }

    // Base fallback: same confidence gate as the plain loop predictor.
    const unsigned conf_max = (1u << cfg.confBits) - 1;
    const bool base_confident =
        entry->nbIter != 0 &&
        ((entry->confid == conf_max) ||
         (static_cast<unsigned>(entry->confid) * entry->nbIter > 128));
    const std::uint16_t baseExit = base_confident ? entry->nbIter : 0;
    if (pred.altExit == 0)
        pred.altExit = baseExit;

    bool confident = false;
    if (pred.providerTable >= 0) {
        pred.predictedExit = provExit;
        confident = provConf >= cfg.providerThreshold;
    } else if (baseExit != 0) {
        pred.predictedExit = baseExit;
        confident = true;
    }

    if (pred.predictedExit >= 3) {
        pred.taken = (specIter(pred.baseIndex, *entry) + 1 ==
                      pred.predictedExit)
                         ? !entry->dir
                         : entry->dir;
        pred.valid = confident;
    } else {
        // No usable exit (or one too short to beat the host): report the
        // iterating direction, never override.
        pred.taken = entry->dir;
    }
    return pred;
}

void
IttageLoopPredictor::trainTagged(std::uint64_t pc,
                                 std::uint16_t observed_exit,
                                 const Prediction &paired)
{
    // Provider update.
    if (paired.providerTable >= 0) {
        TaggedEntry &p =
            tables.at(static_cast<unsigned>(paired.providerTable),
                      paired.providerIndex);
        if (p.exitIter == observed_exit) {
            if (p.conf < 7)
                ++p.conf;
            obsConfUp.hit();
            // ITTAGE usefulness: the provider earned its entry only when
            // the alternate would have been wrong.
            if (paired.altExit != observed_exit && p.useful < 3)
                ++p.useful;
        } else {
            obsConfDown.hit();
            if (p.conf > 0) {
                --p.conf;
            } else {
                p.exitIter = observed_exit;
                p.conf = 1;
            }
            if (p.useful > 0)
                --p.useful;
        }
    }

    // Allocate in a longer table when the scheme's exit was wrong (very
    // short trips stay with the host predictor).
    if (paired.predictedExit == observed_exit || observed_exit < 3)
        return;
    const unsigned start =
        static_cast<unsigned>(paired.providerTable + 1);
    for (unsigned t = start; t < cfg.numTables; ++t) {
        TaggedEntry &cand = tables.at(t, taggedIndexOf(pc, t));
        if (cand.exitIter == 0 || cand.useful == 0) {
            cand.tag = taggedTagOf(pc, t);
            cand.exitIter = observed_exit;
            cand.conf = 1;
            cand.useful = 0;
            return;
        }
    }
    for (unsigned t = start; t < cfg.numTables; ++t) {
        TaggedEntry &cand = tables.at(t, taggedIndexOf(pc, t));
        if (cand.useful > 0)
            --cand.useful;
    }
}

void
IttageLoopPredictor::update(std::uint64_t pc, bool taken, bool alloc,
                            const Prediction &paired)
{
    const unsigned conf_max = (1u << cfg.confBits) - 1;
    const unsigned age_max = (1u << cfg.ageBits) - 1;
    const std::uint16_t iter_mask =
        static_cast<std::uint16_t>(maskBits(cfg.iterBits));

    // Commit: retire this occurrence's speculative event (1:1 FIFO with
    // fetch; no-op when speculation is off).
    journal.popOldest();

    if (paired.hit) {
        BaseEntry &e = base[paired.baseIndex];

        if (paired.valid && taken == paired.taken) {
            // Useful prediction: probabilistic aging refresh.
            if ((nextRandom() & 7u) == 0 && e.age < age_max)
                ++e.age;
        }
        // NOTE: unlike the plain loop predictor, a confident-wrong
        // prediction does NOT free the entry — irregular exits are the
        // whole point; the tagged tables relearn them below.

        e.currentIter = static_cast<std::uint16_t>(
            (e.currentIter + 1) & iter_mask);

        if (taken != e.dir) {
            // Observed exit at iteration X.
            const std::uint16_t observed = e.currentIter;
            trainTagged(pc, observed, paired);
            // Base fallback learning: relearn on change instead of
            // freeing, so the tracker survives varying trip counts.
            if (e.nbIter == observed) {
                if (e.confid < conf_max)
                    ++e.confid;
            } else {
                e.nbIter = observed;
                e.confid = 0;
            }
            // Record the exit in the global history: 8 hashed bits of
            // (PC, X) per exit, architectural (commit-time only).
            exitHistory =
                (exitHistory << 8) |
                (hashCombine(pcHash(pc), observed) & 0xffu);
            e.currentIter = 0;
        } else if (e.nbIter != 0 && e.currentIter > e.nbIter) {
            // Overran the fallback's trip count: fallback is stale (the
            // tagged tables keep their own exits).
            e.confid = 0;
            e.nbIter = 0;
        }
        return;
    }

    // Miss: allocate on main-predictor mispredictions only, with
    // probability 1/4, assuming the mispredicted occurrence is the exit.
    if (!alloc || (nextRandom() & 3u) != 0)
        return;

    const unsigned first = baseIndexOf(pc);
    const std::uint16_t tag = baseTagOf(pc);
    for (unsigned way = 0; way < cfg.ways; ++way) {
        BaseEntry &e = base[first + way];
        if (e.age == 0) {
            e = BaseEntry();
            e.tag = tag;
            e.dir = !taken; // iterating direction opposite the exit
            e.age = 7 <= age_max ? 7 : static_cast<std::uint8_t>(age_max);
            return;
        }
    }
    for (unsigned way = 0; way < cfg.ways; ++way) {
        BaseEntry &e = base[first + way];
        if (e.age > 0)
            --e.age;
    }
}

std::optional<unsigned>
IttageLoopPredictor::predictedTrip(std::uint64_t pc) const
{
    const Prediction pred = lookup(pc);
    if (!pred.hit || pred.predictedExit < 3)
        return std::nullopt;
    if (!pred.valid)
        return std::nullopt;
    return pred.predictedExit;
}

void
IttageLoopPredictor::speculate(std::uint64_t pc, bool pred_taken)
{
    const std::uint16_t iter_mask =
        static_cast<std::uint16_t>(maskBits(cfg.iterBits));
    SpecEvent event;
    event.index = kNoMatch;

    const unsigned first = baseIndexOf(pc);
    const std::uint16_t tag = baseTagOf(pc);
    for (unsigned way = 0; way < cfg.ways; ++way) {
        const BaseEntry &e = base[first + way];
        if (e.tag == tag && e.age > 0) {
            event.index = first + way;
            event.tag = tag;
            // Mirror of update()'s CurrentIter transition with the
            // predicted direction.
            event.iter =
                pred_taken != e.dir
                    ? 0
                    : static_cast<std::uint16_t>(
                          (specIter(event.index, e) + 1) & iter_mask);
            break;
        }
    }
    journal.push(event);
}

void
IttageLoopPredictor::setTicketHorizon(std::uint64_t max_ticket)
{
    journal.setHorizon(max_ticket);
}

void
IttageLoopPredictor::squashSpeculation()
{
    journal.squash();
}

void
IttageLoopPredictor::attachProbes(obs::MetricsScope &scope)
{
    obsConfUp.slot = scope.counter("itl/conf_up");
    obsConfDown.slot = scope.counter("itl/conf_down");
}

void
IttageLoopPredictor::account(StorageAccount &acct,
                             const std::string &name) const
{
    const std::uint64_t base_entry = cfg.iterBits * 2 + cfg.tagBits +
                                     cfg.confBits + cfg.ageBits + 1;
    acct.add(name + "/base", base_entry * cfg.numBaseEntries());
    const std::uint64_t tagged_entry =
        cfg.taggedTagBits + cfg.iterBits + 3 /* conf */ + 2 /* useful */;
    acct.add(name + "/tagged",
             tagged_entry * cfg.numTables * (1ull << cfg.logSize));
    acct.add(name + "/exit-history", 64);
}

std::uint64_t
IttageLoopPredictor::stateDigest() const
{
    std::uint64_t digest = hashCombine(0x171a6e, lfsr);
    digest = hashCombine(digest, exitHistory);
    for (unsigned i = 0; i < base.size(); ++i) {
        const BaseEntry &e = base[i];
        digest = hashCombine(digest, (std::uint64_t(e.nbIter) << 48) ^
                                         (std::uint64_t(e.confid) << 40) ^
                                         (std::uint64_t(e.currentIter)
                                          << 24) ^
                                         (std::uint64_t(e.tag) << 8) ^
                                         (std::uint64_t(e.age) << 1) ^
                                         (e.dir ? 1u : 0u));
        // Speculative view: what fetch would read must shape the digest.
        digest = hashCombine(digest, specIter(i, e));
    }
    // Arena iteration is table-major — the same visit order as the old
    // nested tables, so digests are unchanged across the layout refactor.
    for (const TaggedEntry &te : tables)
        digest = hashCombine(digest,
                             (std::uint64_t(te.tag) << 24) ^
                                 (std::uint64_t(te.exitIter) << 8) ^
                                 (std::uint64_t(te.conf) << 4) ^
                                 std::uint64_t(te.useful));
    return digest;
}

// ---------------------------------------------------------------------------
// Standalone zoo predictor.

IttageLoopStandalone::IttageLoopStandalone(const Config &config)
    : cfg(config), bimodal(config.baseLogEntries, config.baseCounterBits),
      itl(config.itl)
{
}

bool
IttageLoopStandalone::predict(std::uint64_t pc)
{
    look.itl = itl.lookup(pc);
    const bool base_pred = bimodal.lookup(pc);
    look.finalPred = look.itl.valid ? look.itl.taken : base_pred;
    return look.finalPred;
}

void
IttageLoopStandalone::update(std::uint64_t pc, bool taken,
                             std::uint64_t target)
{
    const bool mispredicted = look.finalPred != taken;
    itl.update(pc, taken, mispredicted && target < pc, look.itl);
    bimodal.train(pc, taken);
}

SpecCheckpoint
IttageLoopStandalone::checkpoint() const
{
    SpecCheckpoint cp;
    cp.itlTicket = itl.lastTicket();
    return cp;
}

void
IttageLoopStandalone::restore(const SpecCheckpoint &cp)
{
    itl.setTicketHorizon(cp.itlTicket);
}

void
IttageLoopStandalone::speculate(std::uint64_t pc, bool pred_taken,
                                std::uint64_t target)
{
    (void)target;
    itl.speculate(pc, pred_taken);
}

void
IttageLoopStandalone::squashSpeculation()
{
    itl.squashSpeculation();
}

std::uint64_t
IttageLoopStandalone::stateDigest() const
{
    // The bimodal base is update-only (no speculative state), so the ITL
    // digest is the whole recoverable surface.
    return itl.stateDigest();
}

StorageAccount
IttageLoopStandalone::storage() const
{
    StorageAccount acct;
    acct.merge("base", bimodal.storage());
    itl.account(acct, "itl");
    return acct;
}

} // namespace imli
