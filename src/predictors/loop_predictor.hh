/**
 * @file
 * Loop exit predictor (Sherwood & Calder, 2000; Intel patents; the variant
 * shipped inside Seznec's TAGE-SC-L at CBP4).
 *
 * For loops with a constant trip count, the predictor counts consecutive
 * iterations and predicts the exit on iteration NbIter.  It also exposes
 * the learned trip count, which the wormhole predictor needs to address
 * its long local histories (paper, Sections 2.2.2 and 3.3), and which
 * IMLI-SIC subsumes (Section 4.2.2: the loop predictor benefit collapses
 * from 0.034 to 0.013 MPKI on CBP4 once IMLI-SIC is active).
 *
 * Predict/update pairing is explicit: lookup() is const and returns the
 * matched way inside the Prediction, which the host threads back into
 * update().  Interleaved fetch-time lookups (the pipeline engine keeps
 * many occurrences in flight) therefore cannot clobber each other's
 * pairing, and the speculative iteration count lives in a ticketed
 * journal (spec_journal.hh) rather than in the architectural entry.
 */

#ifndef IMLI_SRC_PREDICTORS_LOOP_PREDICTOR_HH
#define IMLI_SRC_PREDICTORS_LOOP_PREDICTOR_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/obs/metrics.hh"
#include "src/predictors/spec_journal.hh"
#include "src/util/storage.hh"

namespace imli
{

/**
 * Set-associative loop predictor with confidence and age-based
 * replacement, following the CBP4 TAGE-SC-L member structure
 * (NbIter / confid / CurrentIter / TAG / age / dir).
 */
class LoopPredictor
{
  public:
    struct Config
    {
        unsigned logSets = 2;   //!< log2 of the number of sets
        unsigned ways = 4;      //!< associativity
        unsigned iterBits = 10; //!< trip-count counter width
        unsigned tagBits = 10;  //!< partial tag width
        unsigned confBits = 4;  //!< confidence counter width
        unsigned ageBits = 4;   //!< replacement age width

        /** Total entries. */
        unsigned numEntries() const { return (1u << logSets) * ways; }
    };

    /**
     * One lookup's result *and* its predict/update pairing state: the
     * host passes the Prediction of the paired lookup back to update(),
     * so concurrent in-flight occurrences never share hidden state.
     */
    struct Prediction
    {
        bool hit = false;   //!< a tag-matching entry exists
        bool valid = false; //!< confidence high enough to override
        bool taken = false; //!< predicted direction when hit
        unsigned index = 0; //!< table index of the matched entry
        std::uint16_t tag = 0; //!< tag at lookup (guards reallocation)
    };

    LoopPredictor() : LoopPredictor(Config()) {}

    explicit LoopPredictor(const Config &config);

    /**
     * Look up @p pc.  Const: the pairing state is returned, not cached,
     * and the iteration count read is the speculative view (in-flight
     * journal first, architectural entry as fallback).
     */
    Prediction lookup(std::uint64_t pc) const;

    /**
     * Train on the resolved outcome.  @p alloc enables allocation (the
     * host passes "main predictor mispredicted", the CBP4 policy) and
     * @p paired is the Prediction of the lookup for this same dynamic
     * occurrence (the commit sandwich re-derives it at the fetch-time
     * history view).
     */
    void update(std::uint64_t pc, bool taken, bool alloc,
                const Prediction &paired);

    /**
     * Learned trip count for the loop branch at @p pc, if the entry is
     * confident.  Consumed by the wormhole predictor.
     */
    std::optional<unsigned> tripCount(std::uint64_t pc) const;

    // ---- Speculation (pipeline engine) ----------------------------------
    //
    // speculate() advances the *speculative* iteration count of the
    // matched entry with the predicted direction — exactly the
    // CurrentIter transition update() applies architecturally — into the
    // journal.  One event is pushed per conditional occurrence (a
    // no-match marker when the PC misses), so update()'s commit pop
    // stays 1:1 FIFO with fetch.  Tables (NbIter/confid/age) remain
    // architectural; nothing else needs recovery.

    /** Fetch-side step: push the speculative iteration event. */
    void speculate(std::uint64_t pc, bool pred_taken);

    /** Bound speculative reads to events with ticket <= @p max_ticket
     *  (non-destructive; UINT64_MAX lifts the bound). */
    void setTicketHorizon(std::uint64_t max_ticket);

    /** Ticket of the youngest speculative event (0 before any). */
    std::uint64_t lastTicket() const { return journal.lastTicket(); }

    /** Misprediction squash: drop in-flight events, lift the bound. */
    void squashSpeculation();

    /** Storage cost. */
    void account(StorageAccount &acct, const std::string &name) const;

    /**
     * Resolve the confidence-transition probes: conf_up (a regular exit
     * strengthened an entry) and conf_reset (an entry was freed —
     * confident mispredict, too-short loop, or irregular trip count).
     */
    void attachProbes(obs::MetricsScope &scope);

    /**
     * Debug digest of architectural + speculative-visible state, for the
     * checkpoint/restore property tests (state equality, not just
     * prediction equality).
     */
    std::uint64_t stateDigest() const;

    const Config &config() const { return cfg; }

  private:
    struct Entry
    {
        std::uint16_t nbIter = 0;      //!< learned trip count
        std::uint8_t confid = 0;       //!< confidence
        std::uint16_t currentIter = 0; //!< current iteration counter
        std::uint16_t tag = 0;         //!< partial tag
        std::uint8_t age = 0;          //!< replacement age
        bool dir = false;              //!< iterating ("stay") direction
    };

    /** Speculative iteration event: the entry's iteration count *after*
     *  the predicted outcome of one in-flight occurrence. */
    struct SpecEvent
    {
        unsigned index = 0;    //!< matched entry index; kNoMatch on miss
        std::uint16_t tag = 0; //!< tag at fetch (guards reallocation)
        std::uint16_t iter = 0;
    };

    static constexpr unsigned kNoMatch = ~0u;

    unsigned baseIndex(std::uint64_t pc) const;
    std::uint16_t tagOf(std::uint64_t pc) const;
    const Entry *find(std::uint64_t pc) const;

    /** The iteration count the occurrence at fetch observes: newest
     *  visible in-flight event for the entry, else the entry itself. */
    std::uint16_t specIter(unsigned index, const Entry &e) const;

    /** Cheap deterministic pseudo-random stream for allocation policy. */
    unsigned nextRandom();

    Config cfg;
    std::vector<Entry> table;
    SpecJournal<SpecEvent> journal;

    std::uint32_t lfsr = 0xace1u;

    obs::ProbeCounter obsConfUp;
    obs::ProbeCounter obsConfReset;
};

} // namespace imli

#endif // IMLI_SRC_PREDICTORS_LOOP_PREDICTOR_HH
