/**
 * @file
 * Loop exit predictor (Sherwood & Calder, 2000; Intel patents; the variant
 * shipped inside Seznec's TAGE-SC-L at CBP4).
 *
 * For loops with a constant trip count, the predictor counts consecutive
 * iterations and predicts the exit on iteration NbIter.  It also exposes
 * the learned trip count, which the wormhole predictor needs to address
 * its long local histories (paper, Sections 2.2.2 and 3.3), and which
 * IMLI-SIC subsumes (Section 4.2.2: the loop predictor benefit collapses
 * from 0.034 to 0.013 MPKI on CBP4 once IMLI-SIC is active).
 */

#ifndef IMLI_SRC_PREDICTORS_LOOP_PREDICTOR_HH
#define IMLI_SRC_PREDICTORS_LOOP_PREDICTOR_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/util/storage.hh"

namespace imli
{

/**
 * Set-associative loop predictor with confidence and age-based
 * replacement, following the CBP4 TAGE-SC-L member structure
 * (NbIter / confid / CurrentIter / TAG / age / dir).
 */
class LoopPredictor
{
  public:
    struct Config
    {
        unsigned logSets = 2;   //!< log2 of the number of sets
        unsigned ways = 4;      //!< associativity
        unsigned iterBits = 10; //!< trip-count counter width
        unsigned tagBits = 10;  //!< partial tag width
        unsigned confBits = 4;  //!< confidence counter width
        unsigned ageBits = 4;   //!< replacement age width

        /** Total entries. */
        unsigned numEntries() const { return (1u << logSets) * ways; }
    };

    struct Prediction
    {
        bool hit = false;   //!< a tag-matching entry exists
        bool valid = false; //!< confidence high enough to override
        bool taken = false; //!< predicted direction when hit
    };

    LoopPredictor() : LoopPredictor(Config()) {}

    explicit LoopPredictor(const Config &config);

    /**
     * Look up @p pc.  Caches the matched way for the subsequent update()
     * call on the same dynamic branch (predict/update pairing contract).
     */
    Prediction lookup(std::uint64_t pc);

    /**
     * Train on the resolved outcome.  @p alloc enables allocation (the
     * host passes "main predictor mispredicted", the CBP4 policy).
     */
    void update(std::uint64_t pc, bool taken, bool alloc);

    /**
     * Learned trip count for the loop branch at @p pc, if the entry is
     * confident.  Consumed by the wormhole predictor.
     */
    std::optional<unsigned> tripCount(std::uint64_t pc) const;

    /** Storage cost. */
    void account(StorageAccount &acct, const std::string &name) const;

    const Config &config() const { return cfg; }

  private:
    struct Entry
    {
        std::uint16_t nbIter = 0;      //!< learned trip count
        std::uint8_t confid = 0;       //!< confidence
        std::uint16_t currentIter = 0; //!< current iteration counter
        std::uint16_t tag = 0;         //!< partial tag
        std::uint8_t age = 0;          //!< replacement age
        bool dir = false;              //!< iterating ("stay") direction
    };

    unsigned baseIndex(std::uint64_t pc) const;
    std::uint16_t tagOf(std::uint64_t pc) const;
    const Entry *find(std::uint64_t pc) const;

    /** Cheap deterministic pseudo-random stream for allocation policy. */
    unsigned nextRandom();

    Config cfg;
    std::vector<Entry> table;

    // predict/update pairing state
    int hitWay = -1;
    unsigned hitIndex = 0;
    bool lastValid = false;
    bool lastPred = false;

    std::uint32_t lfsr = 0xace1u;
};

} // namespace imli

#endif // IMLI_SRC_PREDICTORS_LOOP_PREDICTOR_HH
