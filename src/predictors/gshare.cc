#include "src/predictors/gshare.hh"

#include "src/util/hashing.hh"

namespace imli
{

GsharePredictor::GsharePredictor(unsigned log_entries, unsigned history_bits)
    : table(1u << log_entries, SatCounter(2, 2)),
      hist(1024),
      histBits(history_bits),
      mask((1u << log_entries) - 1)
{
}

unsigned
GsharePredictor::index(std::uint64_t pc) const
{
    const std::uint64_t h = hist.recent(histBits);
    return static_cast<unsigned>((pc >> 1) ^ h) & mask;
}

bool
GsharePredictor::predict(std::uint64_t pc)
{
    return table[index(pc)].taken();
}

void
GsharePredictor::update(std::uint64_t pc, bool taken, std::uint64_t target)
{
    (void)target;
    table[index(pc)].update(taken);
    hist.push(taken, pc);
}

void
GsharePredictor::trackOtherInst(std::uint64_t pc, BranchType type,
                                bool taken, std::uint64_t target)
{
    (void)type;
    (void)taken;
    (void)target;
    // Unconditional control flow shifts a taken bit in, as most hardware
    // global history implementations do.
    hist.push(true, pc);
}

SpecCheckpoint
GsharePredictor::checkpoint() const
{
    SpecCheckpoint cp;
    cp.global = hist.save();
    return cp;
}

void
GsharePredictor::restore(const SpecCheckpoint &cp)
{
    hist.restore(cp.global);
}

void
GsharePredictor::speculate(std::uint64_t pc, bool pred_taken,
                           std::uint64_t target)
{
    (void)target;
    hist.push(pred_taken, pc);
}

StorageAccount
GsharePredictor::storage() const
{
    StorageAccount acct;
    acct.add("gshare", static_cast<std::uint64_t>(table.size()) * 2);
    acct.add("ghist", histBits);
    return acct;
}

} // namespace imli
