/**
 * @file
 * The host composition layer: one implementation of everything a host
 * predictor shares with every other host.
 *
 * Architecture.  A "host" (TAGE-GSC, GEHL) is a core direction
 * predictor wrapped in a fixed set of optional components: the IMLI
 * counter components feeding the corrector/adder tree, a local-history
 * voting bank, and the loop family (loop table, ITTAGE-style tagged
 * exit predictor, wormhole) that *overrides* the core's answer on
 * confident loop exits.  Before this layer existed, each host
 * hand-rolled the identical plumbing — loop-family wiring in
 * predict/update, `SpecCheckpoint` fan-out, `stateDigest()`,
 * `storageBits()` ledgers — so every new component paid the
 * duplication tax once per host.  `CompositeHost` registers each
 * component's predict / update / speculate / checkpoint / digest /
 * storage hooks exactly once:
 *
 *   predict(pc)  = predictHost(pc)             [virtual: core lookup]
 *                  then loop/itl/wh overlay     [shared, this file]
 *   update(...)  = loop-family training         [shared]
 *                  then updateHost(...)         [virtual: core train]
 *                  then IMLI resolve, loop-PC transition, history push
 *   speculation  = host_spec:: checkpoint/restore/speculate/squash
 *                  over (history, IMLI, local, loop family)
 *   storage()    = accountHost(acct)            [virtual: core ledger]
 *                  then imli / loop / itl / wormhole line items
 *
 * A concrete host supplies only its core: the three `*Host` hooks plus
 * a `prefetch()` override.  The composition order is load-bearing —
 * it reproduces the pre-refactor hosts bit for bit (pinned by the
 * 88-benchmark CSV identity protocol in CHANGES.md and the zoo-wide
 * checkpoint property test).
 */

#ifndef IMLI_SRC_PREDICTORS_COMPOSITE_HOST_HH
#define IMLI_SRC_PREDICTORS_COMPOSITE_HOST_HH

#include <memory>
#include <optional>
#include <string>
#include <type_traits>

#include "src/core/imli_components.hh"
#include "src/history/history_manager.hh"
#include "src/predictors/host_speculation.hh"
#include "src/predictors/ittage_loop.hh"
#include "src/predictors/local_component.hh"
#include "src/predictors/loop_predictor.hh"
#include "src/predictors/predictor.hh"
#include "src/predictors/wormhole.hh"

namespace imli
{

/**
 * The component slice every host Config shares.  Host Config structs
 * inherit from this, so the composition layer reads one type while
 * each host keeps its core geometry (TAGE tables, adder tree, ...) and
 * its own defaults in the derived struct.
 */
struct CompositeHostConfig
{
    ImliComponents::Config imli;
    bool enableImli = false; //!< master switch for the SIC/OH/OMLI add-ons

    bool enableLocal = false;
    LocalComponent::Config local;

    /** Instantiate the loop predictor (needed by WH for trip counts). */
    bool enableLoop = false;
    /** Let a confident loop prediction override the core's answer. */
    bool loopOverride = false;
    LoopPredictor::Config loop;

    bool enableItl = false;
    IttageLoopPredictor::Config itl;

    bool enableWh = false;
    WormholePredictor::Config wh;

    std::string configName = "host";
};

/** Core-plus-components host predictor (see file header). */
class CompositeHost : public ConditionalPredictor
{
  public:
    bool predict(std::uint64_t pc) final;
    void update(std::uint64_t pc, bool taken, std::uint64_t target) final;
    void trackOtherInst(std::uint64_t pc, BranchType type, bool taken,
                        std::uint64_t target) final;

    // Speculation contract (see predictor.hh): checkpoint = global/path
    // head + IMLI counter/PIPE (+OMLI) + in-flight local-history ticket +
    // the loop-family state (loop / ITTAGE-loop / wormhole journal
    // tickets and the loop-tracking PC) — the paper's Section 4.4
    // recovery state, extended to the per-branch speculative iteration
    // counts and in-flight local bits the loop components carry.  Tables
    // and counters stay architectural (commit-updated); only the
    // journals' visibility bounds and the loop PC travel in the
    // checkpoint, so a snapshot is still a few tens of bits.
    bool supportsSpeculation() const override { return true; }
    void prepareSpeculation(unsigned max_inflight) override;
    SpecCheckpoint checkpoint() const override;
    void restore(const SpecCheckpoint &cp) override;
    void speculate(std::uint64_t pc, bool pred_taken,
                   std::uint64_t target) override;
    void squashSpeculation() override;
    std::uint64_t stateDigest() const override;

    std::string name() const override { return comp.configName; }
    StorageAccount storage() const final;

    /**
     * Shared-component probe registration (loop / ITTAGE-loop / IMLI),
     * then the core's own probes via attachProbesHost().
     */
    void attachProbes(obs::MetricsScope &scope) final;

    /** IMLI state access for experiments (delay sweeps, checkpoints). */
    ImliComponents &imliState() { return imliComps; }

  protected:
    /**
     * @p longest_history sizes the shared history buffer (the host's
     * longest registered fold); @p digest_seed keeps each host family's
     * stateDigest() stream distinct.
     */
    CompositeHost(const CompositeHostConfig &config,
                  unsigned longest_history, std::uint64_t digest_seed);

    /** Core lookup: cache pairing state, return the core's direction. */
    virtual bool predictHost(std::uint64_t pc) = 0;

    /**
     * Core training for the branch last passed to predictHost().
     * @p final_pred is the overlay's final answer (the loop family may
     * have overridden the core) — TAGE's allocation policy trains
     * against it, exactly as the hand-wired hosts did.
     */
    virtual void updateHost(std::uint64_t pc, bool taken,
                            bool final_pred) = 0;

    /** Core storage line items (appended before the component ledger). */
    virtual void accountHost(StorageAccount &acct) const = 0;

    /** Core probe registration (the TAGE/SC probes live here).
     *  Default: the core has nothing to observe. */
    virtual void attachProbesHost(obs::MetricsScope &scope)
    {
        (void)scope;
    }

    CompositeHostConfig comp;
    HistoryManager histMgr;
    ImliComponents imliComps;
    std::unique_ptr<LocalComponent> local;
    std::unique_ptr<LoopPredictor> loopPred;
    std::unique_ptr<IttageLoopPredictor> ittageLoop;
    std::unique_ptr<WormholePredictor> wormhole;

  private:
    std::optional<unsigned> currentTripCount() const;
    host_spec::LoopFamily loopFamily() const;

    /** PC of the backward branch closing the loop currently iterating. */
    std::uint64_t currentLoopPc = 0;

    std::uint64_t digestSeed;

    // Loop-family predict/update pairing state; the core's own pairing
    // state lives in the derived class.
    struct FamilyLookup
    {
        LoopPredictor::Prediction loopPrediction;
        IttageLoopPredictor::Prediction itlPrediction;
        WormholePredictor::Prediction whPrediction;
        std::optional<unsigned> tripCount;
        bool finalPred = false;
    } famLook;

    // Allocation-regression guard (see tage.hh): pairing state must stay
    // inline value types, never heap-backed containers.
    static_assert(std::is_trivially_copyable_v<FamilyLookup>,
                  "per-lookup state must stay heap-allocation-free");
};

} // namespace imli

#endif // IMLI_SRC_PREDICTORS_COMPOSITE_HOST_HH
