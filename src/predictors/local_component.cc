#include "src/predictors/local_component.hh"

#include <cassert>

#include "src/util/hashing.hh"

namespace imli
{

LocalComponent::LocalComponent(const Config &config)
    : cfg(config), histories(config.historyEntries, config.historyBits)
{
    assert(cfg.numTables >= 1);
    // History prefix lengths spread evenly up to the full register width,
    // e.g. {6, 12, 18, 24} with 4 tables over 24 bits.
    lengths.resize(cfg.numTables);
    for (unsigned t = 0; t < cfg.numTables; ++t)
        lengths[t] = cfg.historyBits * (t + 1) / cfg.numTables;
    tables = TableArena<SignedCounter>(cfg.numTables, cfg.logEntries,
                                       SignedCounter(cfg.counterBits));
}

std::uint64_t
LocalComponent::specHistory(std::uint64_t pc) const
{
    if (window != nullptr) {
        const auto hit =
            window->lookupBefore(histories.index(pc), ticketHorizon);
        if (hit.has_value())
            return *hit;
    }
    return histories.read(pc);
}

unsigned
LocalComponent::index(unsigned table, const ScContext &ctx) const
{
    const std::uint64_t hist = specHistory(ctx.pc) & maskBits(lengths[table]);
    const std::uint64_t h =
        hashCombine(pcHash(ctx.pc) + table, hist * 0x9e3779b97f4a7c15ULL);
    return static_cast<unsigned>(h & maskBits(cfg.logEntries));
}

int
LocalComponent::vote(const ScContext &ctx) const
{
    int sum = 0;
    for (unsigned t = 0; t < cfg.numTables; ++t)
        sum += tables.at(t, index(t, ctx)).centered();
    return sum;
}

void
LocalComponent::update(const ScContext &ctx, bool taken)
{
    for (unsigned t = 0; t < cfg.numTables; ++t)
        tables.at(t, index(t, ctx)).update(taken);
}

void
LocalComponent::onResolved(const ScContext &ctx, bool taken)
{
    histories.update(ctx.pc, taken);
    // Pipeline mode: this is the commit of the oldest in-flight branch —
    // its speculative window entry retires (FIFO with speculate()).
    if (window != nullptr)
        window->commitOldest();
}

void
LocalComponent::enableSpeculation(unsigned max_inflight)
{
    window = std::make_unique<InflightWindow>(
        max_inflight < 1 ? 1 : max_inflight, cfg.historyBits);
    ticketHorizon = UINT64_MAX;
}

void
LocalComponent::speculate(std::uint64_t pc, bool pred_taken)
{
    assert(window != nullptr &&
           "speculate() requires enableSpeculation() first");
    ticketHorizon = UINT64_MAX; // speculation happens at the fetch front
    const std::uint64_t next =
        ((specHistory(pc) << 1) | (pred_taken ? 1u : 0u)) &
        maskBits(cfg.historyBits);
    window->insert(histories.index(pc), next);
}

void
LocalComponent::setTicketHorizon(std::uint64_t max_ticket)
{
    ticketHorizon = max_ticket;
}

std::uint64_t
LocalComponent::lastTicket() const
{
    return window == nullptr ? 0 : window->lastTicket();
}

void
LocalComponent::squashSpeculation()
{
    if (window != nullptr)
        window->squashAll();
    ticketHorizon = UINT64_MAX;
}

void
LocalComponent::account(StorageAccount &acct) const
{
    histories.account(acct, cfg.label + "/histories");
    acct.add(cfg.label + "/tables",
             static_cast<std::uint64_t>(cfg.numTables) *
                 (1ull << cfg.logEntries) * cfg.counterBits);
}

} // namespace imli
