/**
 * @file
 * Wormhole (WH) side predictor (Albericio et al., MICRO 2014; CBP4 2014;
 * described in the paper's Section 2.2.2, Figure 2).
 *
 * WH targets branches inside the inner loop of a multidimensional loop
 * whose outcome correlates with the same branch at neighbouring inner
 * iterations of the *previous outer iteration*.  Each of its few tagged
 * entries records a long per-branch local history; given the inner-loop
 * trip count Ni (from the loop predictor), Out[N-1][M+D] is bit (Ni - D)
 * of that history.  A small array of saturating counters per entry,
 * indexed with these retrieved bits, supplies the prediction, which
 * overrides the main predictor only at high confidence.
 *
 * Structural limitations reproduced faithfully (Section 2.2.2, "WH
 * limitations"): WH requires a *constant* trip count (it learns nothing
 * when the loop predictor cannot lock onto Ni) and only tracks branches
 * executed on *every* inner iteration (an occurrence skipped by a nested
 * conditional shifts the history and breaks the bit-position arithmetic).
 *
 * Predict/update pairing is explicit (returned in the Prediction, passed
 * back to update()), and the per-entry local history is extended at
 * fetch with *predicted* in-flight bits through a ticketed journal
 * (spec_journal.hh) — the very per-branch speculative state the paper's
 * Section 2.3.2 charges local-history schemes with.
 */

#ifndef IMLI_SRC_PREDICTORS_WORMHOLE_HH
#define IMLI_SRC_PREDICTORS_WORMHOLE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/predictors/spec_journal.hh"
#include "src/util/counters.hh"
#include "src/util/storage.hh"

namespace imli
{

/** Few-entry tagged side predictor over long per-branch local histories. */
class WormholePredictor
{
  public:
    struct Config
    {
        unsigned numEntries = 7;    //!< tagged entries (CBP4 design point)
        unsigned historyBits = 1536;//!< per-entry local history length
        unsigned counterBits = 5;   //!< per-pattern confidence counter
        unsigned indexBits = 4;     //!< history bits addressing the counters
        unsigned tagBits = 14;
        /** |2c+1| must reach this for the prediction to override. */
        int confidenceThreshold = 7;
    };

    /**
     * One lookup's result *and* its predict/update pairing state,
     * threaded back into update() by the host.
     */
    struct Prediction
    {
        bool valid = false; //!< confident enough to override the host
        bool taken = false;
        int entry = -1;         //!< matched entry, -1 on miss
        bool confident = false; //!< counter confident (pre success gate)
    };

    WormholePredictor() : WormholePredictor(Config()) {}

    explicit WormholePredictor(const Config &config);

    /**
     * Look up @p pc given the trip count of the loop currently iterating
     * (std::nullopt when the loop predictor is not confident).  Const:
     * pairing state is returned in the Prediction and the history read
     * is the speculative view (in-flight predicted bits prepended to the
     * architectural history).
     */
    Prediction predict(std::uint64_t pc,
                       std::optional<unsigned> trip_count) const;

    /**
     * Train on the outcome.  @p main_mispredicted enables allocation, as
     * WH entries are only worth their storage on branches the main
     * predictor gets wrong; @p paired is the Prediction of the lookup
     * for this same dynamic occurrence.
     */
    void update(std::uint64_t pc, bool taken, bool main_mispredicted,
                std::optional<unsigned> trip_count,
                const Prediction &paired);

    // ---- Speculation (pipeline engine) ----------------------------------
    //
    // speculate() records the predicted outcome bit of the matched entry
    // (one event per conditional occurrence, no-match marker on a miss);
    // the speculative history view is those in-flight bits, newest
    // first, prepended to the architectural history words.  update()'s
    // architectural historyShift pops the oldest event, keeping commit
    // 1:1 FIFO with fetch.

    /** Fetch-side step: push the predicted-outcome event. */
    void speculate(std::uint64_t pc, bool pred_taken);

    /** Bound speculative reads to events with ticket <= @p max_ticket
     *  (non-destructive; UINT64_MAX lifts the bound). */
    void setTicketHorizon(std::uint64_t max_ticket);

    /** Ticket of the youngest speculative event (0 before any). */
    std::uint64_t lastTicket() const { return journal.lastTicket(); }

    /** Misprediction squash: drop in-flight events, lift the bound. */
    void squashSpeculation();

    void account(StorageAccount &acct, const std::string &name) const;

    /** Debug digest of architectural + speculative-visible state. */
    std::uint64_t stateDigest() const;

    const Config &config() const { return cfg; }

    /** Number of live (allocated) entries, for tests and reports. */
    unsigned liveEntries() const;

  private:
    struct Entry
    {
        bool valid = false;
        std::uint16_t tag = 0;
        std::uint8_t util = 0; //!< replacement score
        /**
         * Success gate: counter-confident predictions only override the
         * host while the entry's recent confident predictions have been
         * correct.  Symmetric counter walks on uncorrelated outcomes
         * reach high magnitudes regularly; this gate starves them
         * (+1 on a correct confident prediction, -4 on a wrong one).
         */
        std::uint8_t conf = 8;
        std::vector<std::uint64_t> history; //!< bit k-1 = outcome k ago
        std::vector<SignedCounter> counters;
    };

    /** Speculative outcome event for one in-flight occurrence. */
    struct SpecEvent
    {
        int entry = -1;        //!< matched entry index; -1 on miss
        std::uint16_t tag = 0; //!< tag at fetch (guards reallocation)
        bool bit = false;      //!< predicted outcome
    };

    std::uint16_t tagOf(std::uint64_t pc) const;
    int findEntry(std::uint64_t pc) const;
    bool historyBit(const Entry &e, unsigned k) const;
    /** historyBit() through the speculative view: in-flight predicted
     *  bits of entry @p index first (newest = 1 ago), then the
     *  architectural history shifted behind them. */
    bool specHistoryBit(int index, const Entry &e, unsigned k) const;
    void historyShift(Entry &e, bool taken);
    unsigned counterIndex(int index, const Entry &e,
                          unsigned trip_count) const;

    Config cfg;
    std::vector<Entry> entries;
    SpecJournal<SpecEvent> journal;

    std::uint32_t lfsr = 0x7ee1u;
};

} // namespace imli

#endif // IMLI_SRC_PREDICTORS_WORMHOLE_HH
