/**
 * @file
 * Wormhole (WH) side predictor (Albericio et al., MICRO 2014; CBP4 2014;
 * described in the paper's Section 2.2.2, Figure 2).
 *
 * WH targets branches inside the inner loop of a multidimensional loop
 * whose outcome correlates with the same branch at neighbouring inner
 * iterations of the *previous outer iteration*.  Each of its few tagged
 * entries records a long per-branch local history; given the inner-loop
 * trip count Ni (from the loop predictor), Out[N-1][M+D] is bit (Ni - D)
 * of that history.  A small array of saturating counters per entry,
 * indexed with these retrieved bits, supplies the prediction, which
 * overrides the main predictor only at high confidence.
 *
 * Structural limitations reproduced faithfully (Section 2.2.2, "WH
 * limitations"): WH requires a *constant* trip count (it learns nothing
 * when the loop predictor cannot lock onto Ni) and only tracks branches
 * executed on *every* inner iteration (an occurrence skipped by a nested
 * conditional shifts the history and breaks the bit-position arithmetic).
 */

#ifndef IMLI_SRC_PREDICTORS_WORMHOLE_HH
#define IMLI_SRC_PREDICTORS_WORMHOLE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/util/counters.hh"
#include "src/util/storage.hh"

namespace imli
{

/** Few-entry tagged side predictor over long per-branch local histories. */
class WormholePredictor
{
  public:
    struct Config
    {
        unsigned numEntries = 7;    //!< tagged entries (CBP4 design point)
        unsigned historyBits = 1536;//!< per-entry local history length
        unsigned counterBits = 5;   //!< per-pattern confidence counter
        unsigned indexBits = 4;     //!< history bits addressing the counters
        unsigned tagBits = 14;
        /** |2c+1| must reach this for the prediction to override. */
        int confidenceThreshold = 7;
    };

    struct Prediction
    {
        bool valid = false; //!< confident enough to override the host
        bool taken = false;
    };

    WormholePredictor() : WormholePredictor(Config()) {}

    explicit WormholePredictor(const Config &config);

    /**
     * Look up @p pc given the trip count of the loop currently iterating
     * (std::nullopt when the loop predictor is not confident).  Caches
     * state for the paired update().
     */
    Prediction predict(std::uint64_t pc,
                       std::optional<unsigned> trip_count);

    /**
     * Train on the outcome.  @p main_mispredicted enables allocation, as
     * WH entries are only worth their storage on branches the main
     * predictor gets wrong.
     */
    void update(std::uint64_t pc, bool taken, bool main_mispredicted,
                std::optional<unsigned> trip_count);

    void account(StorageAccount &acct, const std::string &name) const;

    const Config &config() const { return cfg; }

    /** Number of live (allocated) entries, for tests and reports. */
    unsigned liveEntries() const;

  private:
    struct Entry
    {
        bool valid = false;
        std::uint16_t tag = 0;
        std::uint8_t util = 0; //!< replacement score
        /**
         * Success gate: counter-confident predictions only override the
         * host while the entry's recent confident predictions have been
         * correct.  Symmetric counter walks on uncorrelated outcomes
         * reach high magnitudes regularly; this gate starves them
         * (+1 on a correct confident prediction, -4 on a wrong one).
         */
        std::uint8_t conf = 8;
        std::vector<std::uint64_t> history; //!< bit k-1 = outcome k ago
        std::vector<SignedCounter> counters;
    };

    std::uint16_t tagOf(std::uint64_t pc) const;
    int findEntry(std::uint64_t pc) const;
    bool historyBit(const Entry &e, unsigned k) const;
    void historyShift(Entry &e, bool taken);
    unsigned counterIndex(const Entry &e, unsigned trip_count) const;

    Config cfg;
    std::vector<Entry> entries;

    // predict/update pairing state
    int lookupEntry = -1;
    bool lookupValid = false;
    bool lookupConfident = false; //!< counter confident (pre success gate)
    bool lookupPred = false;
    std::uint32_t lfsr = 0x7ee1u;
};

} // namespace imli

#endif // IMLI_SRC_PREDICTORS_WORMHOLE_HH
