#include "src/predictors/composite_host.hh"

#include "src/util/hashing.hh"

namespace imli
{

CompositeHost::CompositeHost(const CompositeHostConfig &config,
                             unsigned longest_history,
                             std::uint64_t digest_seed)
    : comp(config),
      histMgr(host_spec::historyCapacity(longest_history)),
      imliComps(comp.imli), digestSeed(digest_seed)
{
    if (comp.enableLocal)
        local = std::make_unique<LocalComponent>(comp.local);
    if (comp.enableLoop || comp.enableWh)
        loopPred = std::make_unique<LoopPredictor>(comp.loop);
    if (comp.enableItl)
        ittageLoop = std::make_unique<IttageLoopPredictor>(comp.itl);
    if (comp.enableWh)
        wormhole = std::make_unique<WormholePredictor>(comp.wh);
}

host_spec::LoopFamily
CompositeHost::loopFamily() const
{
    // The family carries mutable pointers for restore()/speculate();
    // const callers (checkpoint, digest) only read through it.
    auto *self = const_cast<CompositeHost *>(this);
    host_spec::LoopFamily fam;
    fam.loop = self->loopPred.get();
    fam.itl = self->ittageLoop.get();
    fam.wh = self->wormhole.get();
    if (fam.loop != nullptr || fam.itl != nullptr || fam.wh != nullptr)
        fam.currentLoopPc = &self->currentLoopPc;
    return fam;
}

std::optional<unsigned>
CompositeHost::currentTripCount() const
{
    if (loopPred == nullptr || currentLoopPc == 0)
        return std::nullopt;
    return loopPred->tripCount(currentLoopPc);
}

bool
CompositeHost::predict(std::uint64_t pc)
{
    famLook = FamilyLookup();
    bool pred = predictHost(pc);

    if (loopPred != nullptr) {
        famLook.loopPrediction = loopPred->lookup(pc);
        if (comp.loopOverride && famLook.loopPrediction.valid)
            pred = famLook.loopPrediction.taken;
    }
    if (ittageLoop != nullptr) {
        famLook.itlPrediction = ittageLoop->lookup(pc);
        if (famLook.itlPrediction.valid)
            pred = famLook.itlPrediction.taken;
    }
    if (wormhole != nullptr) {
        famLook.tripCount = currentTripCount();
        famLook.whPrediction = wormhole->predict(pc, famLook.tripCount);
        if (famLook.whPrediction.valid)
            pred = famLook.whPrediction.taken;
    }
    famLook.finalPred = pred;
    return pred;
}

void
CompositeHost::update(std::uint64_t pc, bool taken, std::uint64_t target)
{
    const bool final_mispred = famLook.finalPred != taken;

    if (loopPred != nullptr) {
        // Only backward conditional branches close loops (Section 4.1);
        // letting forward noise branches allocate would thrash the small
        // loop table.
        loopPred->update(pc, taken, final_mispred && target < pc,
                         famLook.loopPrediction);
    }
    if (ittageLoop != nullptr)
        ittageLoop->update(pc, taken, final_mispred && target < pc,
                           famLook.itlPrediction);
    if (wormhole != nullptr)
        wormhole->update(pc, taken, final_mispred, famLook.tripCount,
                         famLook.whPrediction);

    updateHost(pc, taken, famLook.finalPred);

    if (comp.enableImli)
        imliComps.onResolved(pc, target, taken);

    // Track which loop is currently iterating (backward taken branch),
    // for the wormhole trip-count feed.
    if (target < pc) {
        if (taken)
            currentLoopPc = pc;
        else if (pc == currentLoopPc)
            currentLoopPc = 0;
    }

    histMgr.push(taken, pc);
}

void
CompositeHost::prepareSpeculation(unsigned max_inflight)
{
    host_spec::prepare(local.get(), max_inflight);
}

SpecCheckpoint
CompositeHost::checkpoint() const
{
    return host_spec::checkpoint(histMgr, comp.enableImli, imliComps,
                                 local.get(), loopFamily());
}

void
CompositeHost::restore(const SpecCheckpoint &cp)
{
    host_spec::restore(histMgr, comp.enableImli, imliComps, local.get(), cp,
                       loopFamily());
}

void
CompositeHost::speculate(std::uint64_t pc, bool pred_taken,
                         std::uint64_t target)
{
    host_spec::speculate(histMgr, comp.enableImli, imliComps, local.get(),
                         pc, pred_taken, target, loopFamily());
}

void
CompositeHost::squashSpeculation()
{
    host_spec::squash(local.get(), loopFamily());
}

std::uint64_t
CompositeHost::stateDigest() const
{
    // The loop-family surface is the state the hosts' speculation fix
    // covers; the global/IMLI/local state is exercised by the prediction
    // equality checks already.
    std::uint64_t digest = hashCombine(digestSeed, currentLoopPc);
    if (loopPred != nullptr)
        digest = hashCombine(digest, loopPred->stateDigest());
    if (ittageLoop != nullptr)
        digest = hashCombine(digest, ittageLoop->stateDigest());
    if (wormhole != nullptr)
        digest = hashCombine(digest, wormhole->stateDigest());
    return digest;
}

void
CompositeHost::trackOtherInst(std::uint64_t pc, BranchType type, bool taken,
                              std::uint64_t target)
{
    (void)type;
    (void)taken;
    (void)target;
    histMgr.push(true, pc);
}

void
CompositeHost::attachProbes(obs::MetricsScope &scope)
{
    if (comp.enableImli)
        imliComps.attachProbes(scope);
    if (loopPred != nullptr)
        loopPred->attachProbes(scope);
    if (ittageLoop != nullptr)
        ittageLoop->attachProbes(scope);
    attachProbesHost(scope);
}

StorageAccount
CompositeHost::storage() const
{
    StorageAccount acct;
    accountHost(acct);
    if (comp.enableImli)
        imliComps.account(acct);
    if (loopPred != nullptr)
        loopPred->account(acct, "loop");
    if (ittageLoop != nullptr)
        ittageLoop->account(acct, "itl");
    if (wormhole != nullptr)
        wormhole->account(acct, "wormhole");
    return acct;
}

} // namespace imli
