/**
 * @file
 * Local-history voting component (the "L" of TAGE-SC-L and the local part
 * of FTL; paper, Section 5).
 *
 * A table of per-branch histories feeds a bank of GEHL tables indexed with
 * hash(PC, local history prefix).  For the GEHL host this reproduces the
 * paper's FTL recipe: "4 tables of 2K 6-bit counters and a 256-entry table
 * of 24-bit local histories".  The component also demonstrates why the
 * paper argues against local history in hardware: its speculative state is
 * per-branch, needing the in-flight window machinery modelled in
 * src/history/inflight_window.hh rather than a small checkpoint.
 */

#ifndef IMLI_SRC_PREDICTORS_LOCAL_COMPONENT_HH
#define IMLI_SRC_PREDICTORS_LOCAL_COMPONENT_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "src/history/inflight_window.hh"
#include "src/history/local_history.hh"
#include "src/predictors/sc_component.hh"
#include "src/util/arena.hh"
#include "src/util/counters.hh"

namespace imli
{

/** Local-history GEHL bank. */
class LocalComponent : public ScComponent
{
  public:
    struct Config
    {
        unsigned historyEntries = 256; //!< local history table entries
        unsigned historyBits = 24;     //!< per-branch history width
        unsigned numTables = 4;        //!< voting tables
        unsigned logEntries = 11;      //!< 2K entries per table
        unsigned counterBits = 6;
        std::string label = "local";
    };

    LocalComponent() : LocalComponent(Config()) {}

    explicit LocalComponent(const Config &config);

    int vote(const ScContext &ctx) const override;
    void update(const ScContext &ctx, bool taken) override;
    /**
     * Shifts the branch outcome into its local history — every branch.
     * Commit-time in pipeline mode: the architectural table write, paired
     * FIFO with the speculate() that fetched the branch (the oldest
     * in-flight window entry retires).
     */
    void onResolved(const ScContext &ctx, bool taken) override;
    void account(StorageAccount &acct) const override;
    std::string name() const override { return cfg.label; }

    // ---- Speculative local history (pipeline simulation) ----------------
    //
    // This is the machinery the paper says makes local history expensive
    // (Section 2.3.2): the table is written at commit only, so fetch must
    // associatively search the window of in-flight branches for a younger
    // speculative history of the same entry.  Enabled, the InflightWindow
    // stops being a passive cost ledger and becomes the live read path:
    // votes and trains read through it, and its entriesSearched() counter
    // measures the real per-fetch search work of the run.

    /**
     * Switch the component to speculative (pipeline) operation with up to
     * @p max_inflight branches between fetch and commit.  Sizing the
     * window to the pipeline depth means no in-flight entry is ever
     * evicted early, so fetch-time reads are exact.  Resets any previous
     * window.
     */
    void enableSpeculation(unsigned max_inflight);

    bool speculationEnabled() const { return window != nullptr; }

    /**
     * Fetch-side step: insert the speculative local history following the
     * branch at @p pc (current speculative read + the predicted outcome)
     * into the in-flight window.  Lifts any restore-time visibility
     * bound — speculation always happens at the fetch front.
     */
    void speculate(std::uint64_t pc, bool pred_taken);

    /**
     * Bound the speculative read path to window entries with ticket <=
     * @p max_ticket (the commit sandbox's fetch-time view); UINT64_MAX
     * lifts the bound.  Non-destructive.
     */
    void setTicketHorizon(std::uint64_t max_ticket);

    /** Ticket of the youngest in-flight entry (0 before any insert). */
    std::uint64_t lastTicket() const;

    /** Misprediction squash: drop all in-flight entries, lift the bound. */
    void squashSpeculation();

    /** The window, for cost reporting (null until enableSpeculation). */
    const InflightWindow *inflightWindow() const { return window.get(); }

    const Config &config() const { return cfg; }

  private:
    unsigned index(unsigned table, const ScContext &ctx) const;

    /**
     * The local history the branch at @p pc observes: the youngest
     * visible in-flight speculative history for its table entry, falling
     * back to the architectural table.  Identical to a plain table read
     * when speculation is off (or the window misses).
     */
    std::uint64_t specHistory(std::uint64_t pc) const;

    Config cfg;
    LocalHistoryTable histories;
    std::vector<unsigned> lengths; //!< history prefix length per table
    TableArena<SignedCounter> tables; //!< one allocation, all tables

    // Mutable: vote() is const but the associative search bumps the
    // window's entriesSearched() cost counter (a measurement, not state
    // the prediction depends on).
    mutable std::unique_ptr<InflightWindow> window;
    std::uint64_t ticketHorizon = UINT64_MAX;
};

} // namespace imli

#endif // IMLI_SRC_PREDICTORS_LOCAL_COMPONENT_HH
