/**
 * @file
 * Local-history voting component (the "L" of TAGE-SC-L and the local part
 * of FTL; paper, Section 5).
 *
 * A table of per-branch histories feeds a bank of GEHL tables indexed with
 * hash(PC, local history prefix).  For the GEHL host this reproduces the
 * paper's FTL recipe: "4 tables of 2K 6-bit counters and a 256-entry table
 * of 24-bit local histories".  The component also demonstrates why the
 * paper argues against local history in hardware: its speculative state is
 * per-branch, needing the in-flight window machinery modelled in
 * src/history/inflight_window.hh rather than a small checkpoint.
 */

#ifndef IMLI_SRC_PREDICTORS_LOCAL_COMPONENT_HH
#define IMLI_SRC_PREDICTORS_LOCAL_COMPONENT_HH

#include <vector>

#include "src/history/local_history.hh"
#include "src/predictors/sc_component.hh"
#include "src/util/counters.hh"

namespace imli
{

/** Local-history GEHL bank. */
class LocalComponent : public ScComponent
{
  public:
    struct Config
    {
        unsigned historyEntries = 256; //!< local history table entries
        unsigned historyBits = 24;     //!< per-branch history width
        unsigned numTables = 4;        //!< voting tables
        unsigned logEntries = 11;      //!< 2K entries per table
        unsigned counterBits = 6;
        std::string label = "local";
    };

    LocalComponent() : LocalComponent(Config()) {}

    explicit LocalComponent(const Config &config);

    int vote(const ScContext &ctx) const override;
    void update(const ScContext &ctx, bool taken) override;
    /** Shifts the branch outcome into its local history — every branch. */
    void onResolved(const ScContext &ctx, bool taken) override;
    void account(StorageAccount &acct) const override;
    std::string name() const override { return cfg.label; }

    const Config &config() const { return cfg; }

  private:
    unsigned index(unsigned table, const ScContext &ctx) const;

    Config cfg;
    LocalHistoryTable histories;
    std::vector<unsigned> lengths; //!< history prefix length per table
    std::vector<std::vector<SignedCounter>> tables;
};

} // namespace imli

#endif // IMLI_SRC_PREDICTORS_LOCAL_COMPONENT_HH
