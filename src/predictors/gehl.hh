/**
 * @file
 * The GEHL host predictor (paper, Section 3.2.2, Figure 6).
 *
 * An O-GEHL predictor: 17 tables of 2K 6-bit counters indexed with
 * geometric global history lengths up to 600 bits (204 Kbits), an adder
 * tree and the dynamic update threshold.  Add-ons plug into the same adder
 * tree: the IMLI-SIC and IMLI-OH tables (GEHL+I), a local-history bank and
 * loop predictor (GEHL+L, the FTL recipe), or the wormhole side predictor
 * for the Section 3.3 comparison.
 */

#ifndef IMLI_SRC_PREDICTORS_GEHL_HH
#define IMLI_SRC_PREDICTORS_GEHL_HH

#include <memory>
#include <optional>
#include <string>
#include <type_traits>

#include "src/core/imli_components.hh"
#include "src/history/history_manager.hh"
#include "src/predictors/host_speculation.hh"
#include "src/predictors/ittage_loop.hh"
#include "src/predictors/local_component.hh"
#include "src/predictors/loop_predictor.hh"
#include "src/predictors/predictor.hh"
#include "src/predictors/statistical_corrector.hh"
#include "src/predictors/wormhole.hh"

namespace imli
{

/** GEHL with optional IMLI / local / loop / wormhole add-ons. */
class GehlPredictor : public ConditionalPredictor
{
  public:
    struct Config
    {
        GlobalGehlComponent::Config global{
            /*numTables=*/17, /*logEntries=*/11, /*counterBits=*/6,
            /*minHistory=*/0, /*maxHistory=*/600,
            /*imliIndexTables=*/0, /*label=*/"gehl"};
        VotingEngine::Config voting{/*thetaInit=*/34, /*thetaMin=*/1,
                                    /*thetaMax=*/511, /*tcBits=*/7};

        ImliComponents::Config imli;
        bool enableImli = false; //!< master switch for SIC/OH add-ons

        bool enableLocal = false;
        LocalComponent::Config local;

        /** Instantiate the loop predictor (needed by WH for trip counts). */
        bool enableLoop = false;
        /** Let a confident loop prediction override the adder tree. */
        bool loopOverride = false;
        LoopPredictor::Config loop{/*logSets=*/3, /*ways=*/4};

        bool enableItl = false;
        IttageLoopPredictor::Config itl;

        bool enableWh = false;
        WormholePredictor::Config wh;

        std::string configName = "GEHL";
    };

    GehlPredictor() : GehlPredictor(Config()) {}

    explicit GehlPredictor(const Config &config);

    bool predict(std::uint64_t pc) override;
    void update(std::uint64_t pc, bool taken, std::uint64_t target) override;
    void trackOtherInst(std::uint64_t pc, BranchType type, bool taken,
                        std::uint64_t target) override;
    void prefetch(std::uint64_t pc) const override;

    // Speculation contract — same recovery-state split as TageGsc (see
    // tage_gsc.hh): history + IMLI + local ticket + the loop-family
    // journal tickets and loop-tracking PC are checkpointed; tables and
    // the adder-tree state stay architectural.
    bool supportsSpeculation() const override { return true; }
    void prepareSpeculation(unsigned max_inflight) override;
    SpecCheckpoint checkpoint() const override;
    void restore(const SpecCheckpoint &cp) override;
    void speculate(std::uint64_t pc, bool pred_taken,
                   std::uint64_t target) override;
    void squashSpeculation() override;
    std::uint64_t stateDigest() const override;

    std::string name() const override { return cfg.configName; }
    StorageAccount storage() const override;

    /** IMLI state access for experiments (delay sweeps, checkpoints). */
    ImliComponents &imliState() { return imliComps; }

    const Config &config() const { return cfg; }

  private:
    std::optional<unsigned> currentTripCount() const;
    host_spec::LoopFamily loopFamily() const;

    Config cfg;
    HistoryManager histMgr;
    GlobalGehlComponent global;
    VotingEngine voting;
    ImliComponents imliComps;
    std::unique_ptr<LocalComponent> local;
    std::unique_ptr<LoopPredictor> loopPred;
    std::unique_ptr<IttageLoopPredictor> ittageLoop;
    std::unique_ptr<WormholePredictor> wormhole;

    /** PC of the backward branch closing the loop currently iterating. */
    std::uint64_t currentLoopPc = 0;

    // predict/update pairing state
    struct LookupState
    {
        ScContext ctx;
        int sum = 0;
        bool gehlPred = false;
        bool finalPred = false;
        LoopPredictor::Prediction loopPrediction;
        IttageLoopPredictor::Prediction itlPrediction;
        WormholePredictor::Prediction whPrediction;
        std::optional<unsigned> tripCount;
    } look;

    // Allocation-regression guard (see tage.hh): pairing state must stay
    // inline value types, never heap-backed containers.
    static_assert(std::is_trivially_copyable_v<LookupState>,
                  "per-lookup state must stay heap-allocation-free");
};

} // namespace imli

#endif // IMLI_SRC_PREDICTORS_GEHL_HH
