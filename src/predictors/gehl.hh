/**
 * @file
 * The GEHL host predictor (paper, Section 3.2.2, Figure 6).
 *
 * An O-GEHL predictor: 17 tables of 2K 6-bit counters indexed with
 * geometric global history lengths up to 600 bits (204 Kbits), an adder
 * tree and the dynamic update threshold.  Add-ons plug into the same adder
 * tree: the IMLI-SIC and IMLI-OH tables (GEHL+I), a local-history bank and
 * loop predictor (GEHL+L, the FTL recipe), or the wormhole side predictor
 * for the Section 3.3 comparison.
 *
 * Composition: only the core — the adder tree's lookup and training —
 * lives here.  The component plumbing (loop-family overlay, IMLI
 * resolve, speculation contract, digest, storage ledger) is the
 * CompositeHost layer (composite_host.hh), shared with TAGE-GSC.
 */

#ifndef IMLI_SRC_PREDICTORS_GEHL_HH
#define IMLI_SRC_PREDICTORS_GEHL_HH

#include <string>
#include <type_traits>

#include "src/predictors/composite_host.hh"
#include "src/predictors/statistical_corrector.hh"

namespace imli
{

/** GEHL with optional IMLI / local / loop / wormhole add-ons. */
class GehlPredictor : public CompositeHost
{
  public:
    struct Config : CompositeHostConfig
    {
        GlobalGehlComponent::Config global{
            /*numTables=*/17, /*logEntries=*/11, /*counterBits=*/6,
            /*minHistory=*/0, /*maxHistory=*/600,
            /*imliIndexTables=*/0, /*label=*/"gehl"};
        VotingEngine::Config voting{/*thetaInit=*/34, /*thetaMin=*/1,
                                    /*thetaMax=*/511, /*tcBits=*/7};

        Config()
        {
            loop = LoopPredictor::Config{/*logSets=*/3, /*ways=*/4};
            configName = "GEHL";
        }
    };

    GehlPredictor() : GehlPredictor(Config()) {}

    explicit GehlPredictor(const Config &config);

    void prefetch(std::uint64_t pc) const override;

    const Config &config() const { return cfg; }

  protected:
    bool predictHost(std::uint64_t pc) override;
    void updateHost(std::uint64_t pc, bool taken, bool final_pred) override;
    void accountHost(StorageAccount &acct) const override;

  private:
    Config cfg;
    GlobalGehlComponent global;
    VotingEngine voting;

    // Core predict/update pairing state (the loop-family half lives in
    // CompositeHost).
    struct LookupState
    {
        ScContext ctx;
        int sum = 0;
        bool gehlPred = false;
    } look;

    // Allocation-regression guard (see tage.hh): pairing state must stay
    // inline value types, never heap-backed containers.
    static_assert(std::is_trivially_copyable_v<LookupState>,
                  "per-lookup state must stay heap-allocation-free");
};

} // namespace imli

#endif // IMLI_SRC_PREDICTORS_GEHL_HH
