#include "src/predictors/gehl.hh"

#include "src/predictors/host_speculation.hh"
#include "src/util/hashing.hh"

namespace imli
{

GehlPredictor::GehlPredictor(const Config &config)
    : cfg(config),
      histMgr(host_spec::historyCapacity(config.global.maxHistory)),
      global(cfg.global, histMgr),
      voting(cfg.voting), imliComps(cfg.imli)
{
    voting.addComponent(&global);
    if (cfg.enableImli) {
        for (ScComponent *c : imliComps.components())
            voting.addComponent(c);
    }
    if (cfg.enableLocal) {
        local = std::make_unique<LocalComponent>(cfg.local);
        voting.addComponent(local.get());
    }
    if (cfg.enableLoop || cfg.enableWh)
        loopPred = std::make_unique<LoopPredictor>(cfg.loop);
    if (cfg.enableItl)
        ittageLoop = std::make_unique<IttageLoopPredictor>(cfg.itl);
    if (cfg.enableWh)
        wormhole = std::make_unique<WormholePredictor>(cfg.wh);
}

host_spec::LoopFamily
GehlPredictor::loopFamily() const
{
    // The family carries mutable pointers for restore()/speculate();
    // const callers (checkpoint, digest) only read through it.
    auto *self = const_cast<GehlPredictor *>(this);
    host_spec::LoopFamily fam;
    fam.loop = self->loopPred.get();
    fam.itl = self->ittageLoop.get();
    fam.wh = self->wormhole.get();
    if (fam.loop != nullptr || fam.itl != nullptr || fam.wh != nullptr)
        fam.currentLoopPc = &self->currentLoopPc;
    return fam;
}

std::optional<unsigned>
GehlPredictor::currentTripCount() const
{
    if (loopPred == nullptr || currentLoopPc == 0)
        return std::nullopt;
    return loopPred->tripCount(currentLoopPc);
}

void
GehlPredictor::prefetch(std::uint64_t pc) const
{
    // The 17-table GEHL bank is the predictor's whole footprint; hint
    // its lines with the current folds (see GlobalGehlComponent).
    ScContext ctx;
    ctx.pc = pc;
    ctx.imliCount = imliComps.counter().value();
    voting.prefetchAll(ctx);
}

bool
GehlPredictor::predict(std::uint64_t pc)
{
    look = LookupState();
    look.ctx.pc = pc;
    look.ctx.mainPred = false;
    if (cfg.enableImli)
        imliComps.fillContext(look.ctx, pc);

    look.sum = voting.sum(look.ctx);
    look.gehlPred = look.sum >= 0;
    look.finalPred = look.gehlPred;

    if (loopPred != nullptr) {
        look.loopPrediction = loopPred->lookup(pc);
        if (cfg.loopOverride && look.loopPrediction.valid)
            look.finalPred = look.loopPrediction.taken;
    }
    if (ittageLoop != nullptr) {
        look.itlPrediction = ittageLoop->lookup(pc);
        if (look.itlPrediction.valid)
            look.finalPred = look.itlPrediction.taken;
    }
    if (wormhole != nullptr) {
        look.tripCount = currentTripCount();
        look.whPrediction = wormhole->predict(pc, look.tripCount);
        if (look.whPrediction.valid)
            look.finalPred = look.whPrediction.taken;
    }
    return look.finalPred;
}

void
GehlPredictor::update(std::uint64_t pc, bool taken, std::uint64_t target)
{
    const bool final_mispred = look.finalPred != taken;
    const bool gehl_mispred = look.gehlPred != taken;

    if (loopPred != nullptr) {
        // Only backward conditional branches close loops (Section 4.1);
        // letting forward noise branches allocate would thrash the small
        // loop table.
        loopPred->update(pc, taken, final_mispred && target < pc,
                         look.loopPrediction);
    }
    if (ittageLoop != nullptr)
        ittageLoop->update(pc, taken, final_mispred && target < pc,
                           look.itlPrediction);
    if (wormhole != nullptr)
        wormhole->update(pc, taken, final_mispred, look.tripCount,
                         look.whPrediction);

    const int abs_sum = look.sum < 0 ? -look.sum : look.sum;
    if (voting.onOutcome(gehl_mispred, abs_sum))
        voting.trainAll(look.ctx, taken);
    voting.resolveAll(look.ctx, taken);

    if (cfg.enableImli)
        imliComps.onResolved(pc, target, taken);

    // Track which loop is currently iterating (backward taken branch),
    // for the wormhole trip-count feed.
    if (target < pc) {
        if (taken)
            currentLoopPc = pc;
        else if (pc == currentLoopPc)
            currentLoopPc = 0;
    }

    histMgr.push(taken, pc);
}

void
GehlPredictor::prepareSpeculation(unsigned max_inflight)
{
    host_spec::prepare(local.get(), max_inflight);
}

SpecCheckpoint
GehlPredictor::checkpoint() const
{
    return host_spec::checkpoint(histMgr, cfg.enableImli, imliComps,
                                 local.get(), loopFamily());
}

void
GehlPredictor::restore(const SpecCheckpoint &cp)
{
    host_spec::restore(histMgr, cfg.enableImli, imliComps, local.get(), cp,
                       loopFamily());
}

void
GehlPredictor::speculate(std::uint64_t pc, bool pred_taken,
                         std::uint64_t target)
{
    host_spec::speculate(histMgr, cfg.enableImli, imliComps, local.get(),
                         pc, pred_taken, target, loopFamily());
}

void
GehlPredictor::squashSpeculation()
{
    host_spec::squash(local.get(), loopFamily());
}

std::uint64_t
GehlPredictor::stateDigest() const
{
    std::uint64_t digest = hashCombine(0x6e41, currentLoopPc);
    if (loopPred != nullptr)
        digest = hashCombine(digest, loopPred->stateDigest());
    if (ittageLoop != nullptr)
        digest = hashCombine(digest, ittageLoop->stateDigest());
    if (wormhole != nullptr)
        digest = hashCombine(digest, wormhole->stateDigest());
    return digest;
}

void
GehlPredictor::trackOtherInst(std::uint64_t pc, BranchType type, bool taken,
                              std::uint64_t target)
{
    (void)type;
    (void)taken;
    (void)target;
    histMgr.push(true, pc);
}

StorageAccount
GehlPredictor::storage() const
{
    StorageAccount acct;
    voting.account(acct);
    if (cfg.enableImli)
        imliComps.account(acct);
    if (loopPred != nullptr)
        loopPred->account(acct, "loop");
    if (ittageLoop != nullptr)
        ittageLoop->account(acct, "itl");
    if (wormhole != nullptr)
        wormhole->account(acct, "wormhole");
    return acct;
}

} // namespace imli
