#include "src/predictors/gehl.hh"

namespace imli
{

GehlPredictor::GehlPredictor(const Config &config)
    : CompositeHost(config, config.global.maxHistory,
                    /*digest_seed=*/0x6e41),
      cfg(config), global(cfg.global, histMgr), voting(cfg.voting)
{
    voting.addComponent(&global);
    if (cfg.enableImli) {
        for (ScComponent *c : imliComps.components())
            voting.addComponent(c);
    }
    if (cfg.enableLocal)
        voting.addComponent(local.get());
}

void
GehlPredictor::prefetch(std::uint64_t pc) const
{
    // The 17-table GEHL bank is the predictor's whole footprint; hint
    // its lines with the current folds (see GlobalGehlComponent).
    ScContext ctx;
    ctx.pc = pc;
    ctx.imliCount = imliComps.counter().value();
    voting.prefetchAll(ctx);
}

bool
GehlPredictor::predictHost(std::uint64_t pc)
{
    look = LookupState();
    look.ctx.pc = pc;
    look.ctx.mainPred = false;
    if (cfg.enableImli)
        imliComps.fillContext(look.ctx, pc);

    look.sum = voting.sum(look.ctx);
    look.gehlPred = look.sum >= 0;
    return look.gehlPred;
}

void
GehlPredictor::updateHost(std::uint64_t pc, bool taken, bool final_pred)
{
    (void)pc;
    (void)final_pred;
    const bool gehl_mispred = look.gehlPred != taken;
    const int abs_sum = look.sum < 0 ? -look.sum : look.sum;
    if (voting.onOutcome(gehl_mispred, abs_sum))
        voting.trainAll(look.ctx, taken);
    voting.resolveAll(look.ctx, taken);
}

void
GehlPredictor::accountHost(StorageAccount &acct) const
{
    voting.account(acct);
}

} // namespace imli
