#include "src/predictors/bimodal.hh"

#include "src/util/hashing.hh"

namespace imli
{

BimodalPredictor::BimodalPredictor(unsigned log_entries,
                                   unsigned counter_bits)
    : table(1u << log_entries,
            SatCounter(counter_bits, (1u << (counter_bits - 1)))),
      mask((1u << log_entries) - 1)
{
}

unsigned
BimodalPredictor::index(std::uint64_t pc) const
{
    return static_cast<unsigned>(pc >> 1) & mask;
}

bool
BimodalPredictor::predict(std::uint64_t pc)
{
    return lookup(pc);
}

bool
BimodalPredictor::lookup(std::uint64_t pc) const
{
    return table[index(pc)].taken();
}

bool
BimodalPredictor::isWeak(std::uint64_t pc) const
{
    return table[index(pc)].isWeak();
}

void
BimodalPredictor::train(std::uint64_t pc, bool taken)
{
    table[index(pc)].update(taken);
}

void
BimodalPredictor::update(std::uint64_t pc, bool taken, std::uint64_t target)
{
    (void)target;
    train(pc, taken);
}

StorageAccount
BimodalPredictor::storage() const
{
    StorageAccount acct;
    acct.add("bimodal",
             static_cast<std::uint64_t>(table.size()) * table[0].numBits());
    return acct;
}

} // namespace imli
