#include "src/predictors/tage.hh"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "src/util/hashing.hh"

namespace imli
{

std::vector<unsigned>
geometricLengths(unsigned count, unsigned min_length, unsigned max_length)
{
    assert(count >= 1);
    assert(min_length >= 1 && min_length <= max_length);
    std::vector<unsigned> lengths(count);
    if (count == 1) {
        lengths[0] = min_length;
        return lengths;
    }
    const double ratio =
        std::pow(static_cast<double>(max_length) / min_length,
                 1.0 / (count - 1));
    double value = min_length;
    for (unsigned i = 0; i < count; ++i) {
        unsigned rounded = static_cast<unsigned>(std::lround(value));
        // Keep the series strictly increasing even after rounding.
        if (i > 0 && rounded <= lengths[i - 1])
            rounded = lengths[i - 1] + 1;
        lengths[i] = rounded;
        value *= ratio;
    }
    lengths[count - 1] = max_length > lengths[count - 1]
                             ? max_length
                             : lengths[count - 1];
    return lengths;
}

TagePredictor::TagePredictor(const Config &config, HistoryManager &hist)
    : cfg(config), histMgr(hist),
      lengths(geometricLengths(config.numTables, config.minHistory,
                               config.maxHistory)),
      base(config.baseLogEntries, 2)
{
    if (cfg.numTables < 1 || cfg.numTables > kMaxTables)
        throw std::invalid_argument(
            "tage: numTables must be in [1, " +
            std::to_string(kMaxTables) + "]");
    tables = TableArena<Entry>(cfg.numTables, cfg.logEntries);
    indexFolds.resize(cfg.numTables);
    tagFolds1.resize(cfg.numTables);
    tagFolds2.resize(cfg.numTables);
    for (unsigned i = 0; i < cfg.numTables; ++i) {
        indexFolds[i] = histMgr.createFold(lengths[i], cfg.logEntries);
        tagFolds1[i] = histMgr.createFold(lengths[i], tagBits(i));
        tagFolds2[i] = histMgr.createFold(lengths[i], tagBits(i) - 1);
    }
    useAltOnNa.assign(8, 0);
}

unsigned
TagePredictor::tagBits(unsigned table) const
{
    if (cfg.numTables == 1)
        return cfg.tagBitsMin;
    // Linear ramp from min to max tag width across the tables.
    const unsigned span = cfg.tagBitsMax - cfg.tagBitsMin;
    return cfg.tagBitsMin + (span * table) / (cfg.numTables - 1);
}

unsigned
TagePredictor::tableIndex(unsigned table, std::uint64_t pc) const
{
    const std::uint64_t path_bits =
        foldBits(histMgr.history().path() &
                     maskBits(3 * (lengths[table] < 16 ? lengths[table]
                                                       : 16)),
                 cfg.logEntries);
    const std::uint64_t raw = (pc >> 1) ^ ((pc >> 1) >> (table + 1)) ^
                              indexFolds[table]->value() ^ path_bits;
    return static_cast<unsigned>(raw & maskBits(cfg.logEntries));
}

std::uint16_t
TagePredictor::tableTag(unsigned table, std::uint64_t pc) const
{
    const std::uint64_t raw = (pc >> 1) ^ tagFolds1[table]->value() ^
                              (static_cast<std::uint64_t>(
                                   tagFolds2[table]->value())
                               << 1);
    return static_cast<std::uint16_t>(raw & maskBits(tagBits(table)));
}

void
TagePredictor::counterUpdate(std::int8_t &ctr, bool taken, int bits)
{
    // Branch-free clamp (see counters.hh): the step direction tracks the
    // simulated outcome, so an if/else here mispredicts on the host
    // whenever the simulated predictor does.
    const int max_v = (1 << (bits - 1)) - 1;
    const int min_v = -(1 << (bits - 1));
    int next = ctr + (taken ? 1 : -1);
    next = next < min_v ? min_v : next;
    ctr = static_cast<std::int8_t>(next > max_v ? max_v : next);
}

unsigned
TagePredictor::nextRandom()
{
    const unsigned bit =
        ((lfsr >> 0) ^ (lfsr >> 1) ^ (lfsr >> 3) ^ (lfsr >> 12)) & 1u;
    lfsr = (lfsr >> 1) | (bit << 15);
    return lfsr;
}

void
TagePredictor::prefetch(std::uint64_t pc) const
{
    // Current-fold indices: exact for the base table and near-exact for
    // short-history tables at small lookahead; long-history indices may
    // drift, costing only a wasted line fetch.
    for (unsigned i = 0; i < cfg.numTables; ++i)
        tables.prefetchEntry(i, tableIndex(i, pc));
    base.prefetchEntry(pc);
}

TagePredictor::Prediction
TagePredictor::predict(std::uint64_t pc)
{
    // No wholesale lookup-state reset: every field update() can read is
    // rewritten on the path that makes it readable (provider*/alt* fields
    // only when provider/altTable is set this lookup), and indices/tags
    // are fully rewritten below.
    look.pc = pc;

    for (unsigned i = 0; i < cfg.numTables; ++i) {
        look.indices[i] = tableIndex(i, pc);
        look.tags[i] = tableTag(i, pc);
    }

    // Longest history match provides; the next match (or base) is alt.
    // Branch-light selection: fold the per-table tag compares into a
    // bitmask (a predictable counted loop), then pick the two highest
    // set bits — equivalent to the descending first/second-match scan,
    // without a data-dependent branch per table.
    std::uint32_t match = 0;
    for (unsigned i = 0; i < cfg.numTables; ++i) {
        const Entry &e = tables.at(i, look.indices[i]);
        match |= static_cast<std::uint32_t>(e.tag == look.tags[i]) << i;
    }
    int provider = -1;
    int alt = -1;
    if (match != 0) {
        provider = 31 - __builtin_clz(match);
        const std::uint32_t rest = match ^ (1u << provider);
        if (rest != 0)
            alt = 31 - __builtin_clz(rest);
    }

    Prediction pred;
    const bool base_pred = base.lookup(pc);

    look.provider = provider;
    look.altTable = alt;
    look.altPred = base_pred;
    if (alt >= 0) {
        look.altIndex = look.indices[alt];
        look.altPred = counterTaken(tables.at(alt, look.altIndex).ctr);
    }

    if (provider >= 0) {
        look.providerIndex = look.indices[provider];
        const Entry &e = tables.at(provider, look.providerIndex);
        look.providerPred = counterTaken(e.ctr);
        // Newly allocated: weak counter, no proven usefulness.
        look.providerNew =
            (e.u == 0) && (e.ctr == 0 || e.ctr == -1);

        const unsigned alt_sel =
            static_cast<unsigned>((pc >> 1) & 0x7);
        const bool prefer_alt =
            look.providerNew && useAltOnNa[alt_sel] >= 0;
        pred.taken = prefer_alt ? look.altPred : look.providerPred;
        pred.usedAlt = prefer_alt;
        look.usedAlt = prefer_alt;

        const int centered = 2 * e.ctr + 1;
        const int mag = centered < 0 ? -centered : centered;
        const int max_mag = (1 << cfg.counterBits) - 1;
        pred.confidence = mag == max_mag ? 2 : (mag >= max_mag / 2 ? 1 : 0);
    } else {
        pred.taken = base_pred;
        pred.usedAlt = false;
        pred.confidence = base.isWeak(pc) ? 0 : 1;
    }
    pred.provider = provider;
    pred.altTaken = look.altPred;
    look.finalPred = pred.taken;
    return pred;
}

void
TagePredictor::update(std::uint64_t pc, bool taken, bool final_pred)
{
    assert(pc == look.pc && "update() must pair with predict()");

    const bool tage_mispred = look.finalPred != taken;

    // Resolution classification: which component's counter actually
    // decided this branch.  usedAlt is only written on the provider
    // path, which is the only path that reads it here.
    if (look.provider >= 0) {
        if (look.usedAlt)
            obsAlt.hit();
        else
            obsProvider.hit();
    } else {
        obsBase.hit();
    }

    // --- "use alt on newly allocated" arbitration -----------------------
    if (look.provider >= 0 && look.providerNew &&
        look.providerPred != look.altPred) {
        const unsigned alt_sel = static_cast<unsigned>((pc >> 1) & 0x7);
        std::int8_t &ctr = useAltOnNa[alt_sel];
        counterUpdate(ctr, look.altPred == taken, 4);
    }

    // --- allocation on misprediction ------------------------------------
    // Allocate when the overall composed prediction was wrong (the TAGE-SC-L
    // policy) and a longer table exists.
    if ((final_pred != taken || tage_mispred) &&
        look.provider < static_cast<int>(cfg.numTables) - 1) {
        const unsigned start = static_cast<unsigned>(look.provider + 1);
        // Random starting offset biases allocation towards shorter tables
        // (geometric preference, as in the reference implementations).
        unsigned first = start;
        if (start + 1 < cfg.numTables && (nextRandom() & 1u))
            ++first;
        if (first + 1 < cfg.numTables && (nextRandom() & 3u) == 0)
            ++first;

        // Allocate up to two entries on successive tables (the reference
        // TAGE implementations allocate more than one to speed up the
        // capture of new correlation contexts).
        unsigned allocated = 0;
        unsigned blocked = 0;
        for (unsigned i = first; i < cfg.numTables && allocated < 2; ++i) {
            Entry &e = tables.at(i, look.indices[i]);
            if (e.u == 0) {
                e.tag = look.tags[i];
                e.ctr = taken ? 0 : -1;
                ++allocated;
                ++i; // skip the immediately next table after a success
            } else {
                ++blocked;
            }
        }

        // u-bit ageing controller: repeated allocation failures indicate
        // the u bits are saturated and stale.
        const std::uint32_t tick_max = 1u << cfg.tickLogMax;
        if (allocated == 0) {
            obsAllocFail.hit();
            tick = tick + blocked < tick_max ? tick + blocked : tick_max;
        } else {
            obsAllocSuccess.hit();
            tick = tick > blocked ? tick - blocked : 0;
        }
        if (tick >= tick_max) {
            obsUsefulReset.hit();
            // One linear pass over the whole arena (table-major, same
            // order as the old nested sweep) at streaming bandwidth.
            for (Entry &e : tables)
                e.u >>= 1;
            tick = 0;
        }
    }

    // --- provider / base training ---------------------------------------
    if (look.provider >= 0) {
        Entry &e = tables.at(look.provider, look.providerIndex);
        counterUpdate(e.ctr, taken, static_cast<int>(cfg.counterBits));
        // Train the alternate too while the provider is still unproven, so
        // the provider can be disposed of without losing the prediction.
        if (e.u == 0) {
            if (look.altTable >= 0) {
                Entry &a = tables.at(look.altTable, look.altIndex);
                counterUpdate(a.ctr, taken,
                              static_cast<int>(cfg.counterBits));
            } else {
                base.train(pc, taken);
            }
        }
        // Usefulness: the provider proved better (or worse) than the alt.
        if (look.providerPred != look.altPred) {
            const unsigned u_max = (1u << cfg.usefulBits) - 1;
            if (look.providerPred == taken) {
                if (e.u < u_max)
                    ++e.u;
            } else {
                if (e.u > 0)
                    --e.u;
            }
        }
    } else {
        base.train(pc, taken);
    }
}

void
TagePredictor::attachProbes(obs::MetricsScope &scope)
{
    obsProvider.slot = scope.counter("tage/resolved_provider");
    obsAlt.slot = scope.counter("tage/resolved_alt");
    obsBase.slot = scope.counter("tage/resolved_base");
    obsAllocSuccess.slot = scope.counter("tage/alloc_success");
    obsAllocFail.slot = scope.counter("tage/alloc_fail");
    obsUsefulReset.slot = scope.counter("tage/useful_reset");
}

void
TagePredictor::account(StorageAccount &acct) const
{
    std::uint64_t tagged_bits = 0;
    for (unsigned i = 0; i < cfg.numTables; ++i) {
        tagged_bits += static_cast<std::uint64_t>(1u << cfg.logEntries) *
                       (cfg.counterBits + cfg.usefulBits + tagBits(i));
    }
    acct.add("tage/tagged", tagged_bits);
    acct.add("tage/base", (1ull << cfg.baseLogEntries) * 2);
    acct.add("tage/use_alt_on_na", 8 * 4);
    acct.add("tage/tick", cfg.tickLogMax);
}

} // namespace imli
