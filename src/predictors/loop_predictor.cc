#include "src/predictors/loop_predictor.hh"

#include <cassert>

#include "src/util/hashing.hh"

namespace imli
{

LoopPredictor::LoopPredictor(const Config &config)
    : cfg(config), table(config.numEntries())
{
    assert(cfg.ways >= 1);
    assert(cfg.iterBits <= 16 && cfg.tagBits <= 16);
}

unsigned
LoopPredictor::baseIndex(std::uint64_t pc) const
{
    const unsigned set =
        static_cast<unsigned>(pcHash(pc)) & ((1u << cfg.logSets) - 1);
    return set * cfg.ways;
}

std::uint16_t
LoopPredictor::tagOf(std::uint64_t pc) const
{
    return static_cast<std::uint16_t>(
        (pcHash(pc) >> cfg.logSets) & maskBits(cfg.tagBits));
}

unsigned
LoopPredictor::nextRandom()
{
    // 16-bit Galois LFSR; deterministic and self-contained.
    const unsigned bit =
        ((lfsr >> 0) ^ (lfsr >> 2) ^ (lfsr >> 3) ^ (lfsr >> 5)) & 1u;
    lfsr = (lfsr >> 1) | (bit << 15);
    return lfsr;
}

const LoopPredictor::Entry *
LoopPredictor::find(std::uint64_t pc) const
{
    const unsigned base = baseIndex(pc);
    const std::uint16_t tag = tagOf(pc);
    for (unsigned way = 0; way < cfg.ways; ++way) {
        const Entry &e = table[base + way];
        if (e.tag == tag && e.age > 0)
            return &e;
    }
    return nullptr;
}

std::uint16_t
LoopPredictor::specIter(unsigned index, const Entry &e) const
{
    const SpecEvent *ev = journal.newestVisible(
        [&](const SpecEvent &event) {
            return event.index == index && event.tag == e.tag;
        });
    return ev != nullptr ? ev->iter : e.currentIter;
}

LoopPredictor::Prediction
LoopPredictor::lookup(std::uint64_t pc) const
{
    Prediction pred;

    const unsigned base = baseIndex(pc);
    const std::uint16_t tag = tagOf(pc);
    for (unsigned way = 0; way < cfg.ways; ++way) {
        const Entry &e = table[base + way];
        if (e.tag == tag && e.age > 0) {
            pred.hit = true;
            pred.index = base + way;
            pred.tag = tag;
            // Confidence gate from the CBP4 implementation: either fully
            // confident, or confident enough relative to the loop length.
            const unsigned conf_max = (1u << cfg.confBits) - 1;
            pred.valid = (e.confid == conf_max) ||
                         (static_cast<unsigned>(e.confid) * e.nbIter > 128);
            pred.taken =
                (specIter(pred.index, e) + 1 == e.nbIter) ? !e.dir : e.dir;
            return pred;
        }
    }
    return pred;
}

void
LoopPredictor::update(std::uint64_t pc, bool taken, bool alloc,
                      const Prediction &paired)
{
    const unsigned conf_max = (1u << cfg.confBits) - 1;
    const unsigned age_max = (1u << cfg.ageBits) - 1;
    const std::uint16_t iter_mask =
        static_cast<std::uint16_t>(maskBits(cfg.iterBits));

    // Commit: the oldest in-flight speculative event is this
    // occurrence's (fetch and update are 1:1 FIFO under the pipeline
    // engine); with speculation off the journal is empty and this is a
    // no-op.
    journal.popOldest();

    if (paired.hit) {
        Entry &e = table[paired.index];

        if (paired.valid && taken != paired.taken) {
            // Confident entry mispredicted: the loop is not regular any
            // more; free the entry.
            obsConfReset.hit();
            e = Entry();
            return;
        }
        if (paired.valid && taken == paired.taken) {
            // Useful prediction: strengthen against replacement
            // (probabilistic aging refresh as in the CBP4 code).
            if ((nextRandom() & 7u) == 0 && e.age < age_max)
                ++e.age;
        }

        e.currentIter = static_cast<std::uint16_t>(
            (e.currentIter + 1) & iter_mask);
        if (e.currentIter > e.nbIter && e.nbIter != 0) {
            // Ran past the learned trip count: stale.
            e.confid = 0;
            e.nbIter = 0;
        }

        if (taken != e.dir) {
            // The loop exited on this occurrence.
            if (e.currentIter == e.nbIter) {
                if (e.confid < conf_max)
                    ++e.confid;
                obsConfUp.hit();
                // Very short loops are better left to the main predictor.
                if (e.nbIter < 3) {
                    obsConfReset.hit();
                    e = Entry();
                }
            } else {
                if (e.nbIter == 0) {
                    // First observed exit: learn the trip count.
                    e.confid = 0;
                    e.nbIter = e.currentIter;
                } else {
                    // Irregular trip count: free.
                    obsConfReset.hit();
                    e = Entry();
                }
            }
            e.currentIter = 0;
        }
        return;
    }

    // Miss: allocate on main-predictor mispredictions only, with
    // probability 1/4, assuming the mispredicted occurrence is the exit.
    if (!alloc || (nextRandom() & 3u) != 0)
        return;

    const unsigned base = baseIndex(pc);
    const std::uint16_t tag = tagOf(pc);
    for (unsigned way = 0; way < cfg.ways; ++way) {
        Entry &e = table[base + way];
        if (e.age == 0) {
            e = Entry();
            e.tag = tag;
            e.dir = !taken; // iterating direction opposite the exit
            e.age = 7 <= age_max ? 7 : static_cast<std::uint8_t>(age_max);
            return;
        }
    }
    for (unsigned way = 0; way < cfg.ways; ++way) {
        Entry &e = table[base + way];
        if (e.age > 0)
            --e.age;
    }
}

void
LoopPredictor::speculate(std::uint64_t pc, bool pred_taken)
{
    const std::uint16_t iter_mask =
        static_cast<std::uint16_t>(maskBits(cfg.iterBits));
    SpecEvent event;
    event.index = kNoMatch;

    const unsigned base = baseIndex(pc);
    const std::uint16_t tag = tagOf(pc);
    for (unsigned way = 0; way < cfg.ways; ++way) {
        const Entry &e = table[base + way];
        if (e.tag == tag && e.age > 0) {
            event.index = base + way;
            event.tag = tag;
            // Mirror of update()'s CurrentIter transition with the
            // predicted direction: ++ while iterating, 0 on a predicted
            // exit.
            event.iter =
                pred_taken != e.dir
                    ? 0
                    : static_cast<std::uint16_t>(
                          (specIter(event.index, e) + 1) & iter_mask);
            break;
        }
    }
    journal.push(event);
}

void
LoopPredictor::setTicketHorizon(std::uint64_t max_ticket)
{
    journal.setHorizon(max_ticket);
}

void
LoopPredictor::squashSpeculation()
{
    journal.squash();
}

std::optional<unsigned>
LoopPredictor::tripCount(std::uint64_t pc) const
{
    const Entry *e = find(pc);
    if (e == nullptr || e->nbIter == 0)
        return std::nullopt;
    const unsigned conf_max = (1u << cfg.confBits) - 1;
    const bool confident = (e->confid == conf_max) ||
                           (static_cast<unsigned>(e->confid) * e->nbIter >
                            128);
    if (!confident)
        return std::nullopt;
    return e->nbIter;
}

void
LoopPredictor::attachProbes(obs::MetricsScope &scope)
{
    obsConfUp.slot = scope.counter("loop/conf_up");
    obsConfReset.slot = scope.counter("loop/conf_reset");
}

void
LoopPredictor::account(StorageAccount &acct, const std::string &name) const
{
    const std::uint64_t per_entry = cfg.iterBits * 2 + cfg.tagBits +
                                    cfg.confBits + cfg.ageBits + 1;
    acct.add(name, per_entry * cfg.numEntries());
}

std::uint64_t
LoopPredictor::stateDigest() const
{
    std::uint64_t digest = hashCombine(0x100b, lfsr);
    for (unsigned i = 0; i < table.size(); ++i) {
        const Entry &e = table[i];
        digest = hashCombine(digest, (std::uint64_t(e.nbIter) << 48) ^
                                         (std::uint64_t(e.confid) << 40) ^
                                         (std::uint64_t(e.currentIter)
                                          << 24) ^
                                         (std::uint64_t(e.tag) << 8) ^
                                         (std::uint64_t(e.age) << 1) ^
                                         (e.dir ? 1u : 0u));
        // The speculative view too: a horizon or stale journal that
        // changes what fetch would read must change the digest.
        digest = hashCombine(digest, specIter(i, e));
    }
    return digest;
}

} // namespace imli
