#include "src/predictors/wormhole.hh"

#include <cassert>

#include "src/util/hashing.hh"

namespace imli
{

WormholePredictor::WormholePredictor(const Config &config) : cfg(config)
{
    assert(cfg.indexBits >= 1 && cfg.indexBits <= 8);
    const unsigned words = (cfg.historyBits + 63) / 64;
    for (unsigned i = 0; i < cfg.numEntries; ++i) {
        Entry e;
        e.history.assign(words, 0);
        e.counters.assign(1u << cfg.indexBits,
                          SignedCounter(cfg.counterBits));
        entries.push_back(std::move(e));
    }
}

std::uint16_t
WormholePredictor::tagOf(std::uint64_t pc) const
{
    return static_cast<std::uint16_t>(pcHash(pc) & maskBits(cfg.tagBits));
}

int
WormholePredictor::findEntry(std::uint64_t pc) const
{
    const std::uint16_t tag = tagOf(pc);
    for (unsigned i = 0; i < cfg.numEntries; ++i)
        if (entries[i].valid && entries[i].tag == tag)
            return static_cast<int>(i);
    return -1;
}

bool
WormholePredictor::historyBit(const Entry &e, unsigned k) const
{
    // h(k) = outcome of this branch k occurrences ago, k >= 1.
    assert(k >= 1);
    if (k > cfg.historyBits)
        return false;
    const unsigned bit = k - 1;
    return (e.history[bit / 64] >> (bit % 64)) & 1u;
}

bool
WormholePredictor::specHistoryBit(int index, const Entry &e,
                                  unsigned k) const
{
    // The s visible in-flight predicted bits are the s most recent
    // outcomes (newest = 1 ago); the architectural history sits behind
    // them, shifted by s positions.
    unsigned seen = 0;
    bool found = false;
    bool value = false;
    journal.visitVisibleNewestFirst(
        [&](const SpecEvent &ev) {
            return ev.entry == index && ev.tag == e.tag;
        },
        [&](const SpecEvent &ev) {
            ++seen;
            if (seen == k) {
                found = true;
                value = ev.bit;
                return false;
            }
            return true;
        });
    if (found)
        return value;
    return historyBit(e, k - seen);
}

void
WormholePredictor::historyShift(Entry &e, bool taken)
{
    // Shift towards higher bit positions; bit 0 = most recent outcome.
    std::uint64_t carry = taken ? 1u : 0u;
    for (auto &word : e.history) {
        const std::uint64_t next_carry = word >> 63;
        word = (word << 1) | carry;
        carry = next_carry;
    }
    // Trim the top word to the configured length.
    const unsigned top_bits = cfg.historyBits % 64;
    if (top_bits != 0)
        e.history.back() &= maskBits(top_bits);
}

unsigned
WormholePredictor::counterIndex(int index, const Entry &e,
                                unsigned trip_count) const
{
    // Index bits, most significant first:
    //   h(1)        — previous occurrence (current outer iteration)
    //   h(Ni - 1)   — Out[N-1][M+1]
    //   h(Ni)       — Out[N-1][M]
    //   h(Ni + 1)   — Out[N-1][M-1]
    // With indexBits < 4 the trailing bits are dropped; with more, further
    // diagonal neighbours h(Ni +/- 2), ... are appended.  All reads go
    // through the speculative view (identical to the architectural
    // history when no in-flight bits are visible).
    unsigned idx = 0;
    unsigned produced = 0;
    auto push_bit = [&](bool b) {
        if (produced < cfg.indexBits) {
            idx = (idx << 1) | (b ? 1u : 0u);
            ++produced;
        }
    };
    push_bit(specHistoryBit(index, e, 1));
    if (trip_count >= 2)
        push_bit(specHistoryBit(index, e, trip_count - 1));
    else
        push_bit(false);
    push_bit(specHistoryBit(index, e, trip_count));
    push_bit(specHistoryBit(index, e, trip_count + 1));
    unsigned d = 2;
    while (produced < cfg.indexBits) {
        push_bit(specHistoryBit(index, e, trip_count + d));
        ++d;
    }
    return idx & static_cast<unsigned>(maskBits(cfg.indexBits));
}

WormholePredictor::Prediction
WormholePredictor::predict(std::uint64_t pc,
                           std::optional<unsigned> trip_count) const
{
    Prediction pred;

    if (!trip_count.has_value() || *trip_count < 2 ||
        *trip_count + 1 > cfg.historyBits)
        return pred;

    const int i = findEntry(pc);
    if (i < 0)
        return pred;

    const Entry &e = entries[static_cast<unsigned>(i)];
    const SignedCounter &ctr =
        e.counters[counterIndex(i, e, *trip_count)];
    const int centred = ctr.centered();
    const int mag = centred < 0 ? -centred : centred;

    pred.entry = i;
    pred.taken = ctr.taken();
    pred.confident = mag >= cfg.confidenceThreshold;
    pred.valid = pred.confident && e.conf >= 8;
    return pred;
}

void
WormholePredictor::update(std::uint64_t pc, bool taken,
                          bool main_mispredicted,
                          std::optional<unsigned> trip_count,
                          const Prediction &paired)
{
    // Commit: retire this occurrence's speculative event (1:1 FIFO with
    // fetch; no-op when speculation is off).
    journal.popOldest();

    int i = paired.entry >= 0 ? paired.entry : findEntry(pc);

    if (i < 0) {
        // Allocation: only for mispredicted branches inside a loop with a
        // known constant trip count (the WH design point).
        if (!main_mispredicted || !trip_count.has_value() ||
            *trip_count < 2 || *trip_count + 1 > cfg.historyBits)
            return;
        // 1/2 probability throttle against transient mispredictions.
        const unsigned bit =
            ((lfsr >> 0) ^ (lfsr >> 2) ^ (lfsr >> 3) ^ (lfsr >> 5)) & 1u;
        lfsr = (lfsr >> 1) | (bit << 15);
        if (lfsr & 1u)
            return;

        int victim = -1;
        for (unsigned j = 0; j < cfg.numEntries; ++j) {
            if (!entries[j].valid) {
                victim = static_cast<int>(j);
                break;
            }
        }
        if (victim < 0) {
            std::uint8_t best = 0xff;
            for (unsigned j = 0; j < cfg.numEntries; ++j) {
                if (entries[j].util < best) {
                    best = entries[j].util;
                    victim = static_cast<int>(j);
                }
            }
            // Age the survivors so stale entries eventually yield.
            for (auto &e : entries)
                if (e.util > 0)
                    --e.util;
        }
        Entry &e = entries[static_cast<unsigned>(victim)];
        e.valid = true;
        e.tag = tagOf(pc);
        e.util = 4;
        e.conf = 8;
        std::fill(e.history.begin(), e.history.end(), 0);
        for (auto &c : e.counters)
            c.set(0);
        historyShift(e, taken);
        return;
    }

    Entry &e = entries[static_cast<unsigned>(i)];
    if (trip_count.has_value() && *trip_count >= 2 &&
        *trip_count + 1 <= cfg.historyBits) {
        SignedCounter &ctr = e.counters[counterIndex(i, e, *trip_count)];
        ctr.update(taken);
        if (paired.confident) {
            // Success gate: reward correct confident predictions, punish
            // wrong ones hard so uncorrelated branches never override.
            if (paired.taken == taken) {
                if (e.conf < 0xf)
                    ++e.conf;
            } else {
                e.conf = e.conf >= 4 ? e.conf - 4 : 0;
            }
        }
        if (paired.valid) {
            if (paired.taken == taken) {
                if (e.util < 0xf)
                    ++e.util;
            } else {
                if (e.util > 0)
                    --e.util;
            }
        }
    }
    historyShift(e, taken);
}

void
WormholePredictor::speculate(std::uint64_t pc, bool pred_taken)
{
    SpecEvent event;
    const int i = findEntry(pc);
    if (i >= 0) {
        event.entry = i;
        event.tag = entries[static_cast<unsigned>(i)].tag;
        event.bit = pred_taken;
    }
    journal.push(event);
}

void
WormholePredictor::setTicketHorizon(std::uint64_t max_ticket)
{
    journal.setHorizon(max_ticket);
}

void
WormholePredictor::squashSpeculation()
{
    journal.squash();
}

unsigned
WormholePredictor::liveEntries() const
{
    unsigned live = 0;
    for (const Entry &e : entries)
        if (e.valid)
            ++live;
    return live;
}

void
WormholePredictor::account(StorageAccount &acct,
                           const std::string &name) const
{
    const std::uint64_t per_entry =
        cfg.historyBits +
        (1ull << cfg.indexBits) * cfg.counterBits +
        cfg.tagBits + 4 /* util */ + 4 /* conf */ + 1 /* valid */;
    acct.add(name, per_entry * cfg.numEntries);
}

std::uint64_t
WormholePredictor::stateDigest() const
{
    std::uint64_t digest = hashCombine(0x3409, lfsr);
    for (unsigned i = 0; i < entries.size(); ++i) {
        const Entry &e = entries[i];
        digest = hashCombine(digest, (e.valid ? 1u : 0u) ^
                                         (std::uint64_t(e.tag) << 1) ^
                                         (std::uint64_t(e.util) << 17) ^
                                         (std::uint64_t(e.conf) << 21));
        for (const std::uint64_t word : e.history)
            digest = hashCombine(digest, word);
        for (const SignedCounter &c : e.counters)
            digest = hashCombine(
                digest, static_cast<std::uint64_t>(
                            static_cast<std::int64_t>(c.centered())));
        // Speculative view: visible in-flight bits of this entry.
        journal.visitVisibleNewestFirst(
            [&](const SpecEvent &ev) {
                return ev.entry == static_cast<int>(i) && ev.tag == e.tag;
            },
            [&](const SpecEvent &ev) {
                digest = hashCombine(digest, ev.bit ? 0x5u : 0x2u);
                return true;
            });
    }
    return digest;
}

} // namespace imli
