/**
 * @file
 * The conditional branch predictor interface (CBP-style contract).
 *
 * The simulator drives predictors exactly like the championship framework
 * drives submissions:
 *
 *   for each dynamic branch b:
 *     if b is conditional:
 *       pred = predictor.predict(b.pc)
 *       predictor.update(b.pc, b.taken, b.target)   // resolve + train
 *     else:
 *       predictor.trackOtherInst(b.pc, b.type, b.taken, b.target)
 *
 * Contract notes:
 *  - update(pc, ...) is always the next call after predict(pc) for the same
 *    dynamic branch; implementations may cache lookup state across the pair
 *    (every serious predictor does).
 *  - the immediate-update drive above is the CBP default (paper, Section 3).
 *    The pipeline simulator (src/sim/pipeline_simulator.hh) instead drives
 *    the speculation contract below: predict at fetch, speculate() the
 *    predicted outcome into the history state, and only pair predict/update
 *    at commit time inside a checkpoint()/restore() sandwich.  predict()
 *    must therefore be free of side effects on shared predictor state
 *    beyond the cached lookup pairing state (no LFSR draws, no table
 *    writes) — calling it twice from the same state must yield the same
 *    answer and leave the same state.
 */

#ifndef IMLI_SRC_PREDICTORS_PREDICTOR_HH
#define IMLI_SRC_PREDICTORS_PREDICTOR_HH

#include <cstdint>
#include <memory>
#include <string>

#include "src/history/global_history.hh"
#include "src/trace/branch_record.hh"
#include "src/util/storage.hh"

namespace imli
{

namespace obs
{
class MetricsScope;
} // namespace obs

/**
 * Deepest in-flight window the speculation contract supports, in
 * branches.  Bounded by checkpoint recoverability: a restore walks the
 * global-history buffer, so window + longest fold length must stay
 * resident — every predictor sizes its buffer for this depth (hosts via
 * host_spec::historyCapacity() from their configured maxhist; gshare's
 * 1024 covers its 64-bit recent() ceiling).  The single source for the
 * "sim.delay" key range, the --update-delay CLI check and the pipeline
 * engine's own constructor guard.
 */
constexpr unsigned kMaxSpeculationDepth = 512;

/**
 * Largest prefetch lookahead distance the simulator accepts, in branch
 * records.  The single source for the "sim.prefetch" spec-key range and
 * the SimOptions bound: past a few dozen records the current-fold index
 * approximation (see ConditionalPredictor::prefetch) has drifted too far
 * for the hint to land on the right lines anyway.
 */
constexpr unsigned kMaxPrefetchLookahead = 64;

/**
 * Snapshot of a predictor's *speculative history* state — the state the
 * paper argues must be recoverable after a misprediction (Section 2.3):
 * the global/path history head, the IMLI counter + PIPE vector (+ the
 * OMLI extension's counter/tag), and the in-flight-window ticket bounding
 * the speculative local history.  Deliberately NOT a snapshot of tables
 * or counters: those are architectural state, written at commit time, and
 * never need recovery.  A checkpoint is a few tens of bits in hardware;
 * here it is a small value type taken once per in-flight branch.
 */
struct SpecCheckpoint
{
    GlobalHistory::Checkpoint global;
    std::uint32_t imliCounter = 0;
    std::uint32_t imliPipe = 0;
    std::uint32_t omliCounter = 0;
    std::uint32_t omliTag = 0;
    /**
     * In-flight-window visibility bound for the speculative local
     * history: restore() makes entries younger than this invisible
     * (non-destructively — see ConditionalPredictor::restore).
     */
    std::uint64_t localTicket = UINT64_MAX;
    /**
     * Loop-family speculative state: the current-loop PC tracked for
     * wormhole trip-count pairing, and the visibility bounds for the
     * loop / ITTAGE-loop / wormhole speculative journals (same ticket
     * semantics as localTicket).
     */
    std::uint64_t loopPc = 0;
    std::uint64_t loopTicket = UINT64_MAX;
    std::uint64_t itlTicket = UINT64_MAX;
    std::uint64_t whTicket = UINT64_MAX;
};

/** Abstract conditional branch direction predictor. */
class ConditionalPredictor
{
  public:
    virtual ~ConditionalPredictor() = default;

    /** Predict the direction of the conditional branch at @p pc. */
    virtual bool predict(std::uint64_t pc) = 0;

    /**
     * Resolve and train on the actual outcome.  @p target is the taken
     * target (used for backward-branch detection and history updates).
     */
    virtual void update(std::uint64_t pc, bool taken,
                        std::uint64_t target) = 0;

    /**
     * Observe a non-conditional branch.  Default: no effect.  Predictors
     * with path history fold these in, as the CBP framework allows.
     */
    virtual void
    trackOtherInst(std::uint64_t pc, BranchType type, bool taken,
                   std::uint64_t target)
    {
        (void)pc;
        (void)type;
        (void)taken;
        (void)target;
    }

    /**
     * Hint the table lines a FUTURE predict(@p pc) will touch into cache
     * (__builtin_prefetch on the arena addresses).  The simulator calls
     * this for records a small lookahead ahead of the one being
     * simulated, so the dependent table reads overlap with the work in
     * between.  Implementations compute indices from their CURRENT
     * history state, which may differ from the state at the real lookup —
     * that only wastes the fetch.  MUST be state-free: no table writes,
     * no history changes, no pairing-state caching; prefetch on/off is
     * bit-identical by construction (CI pins this).  Default: no hint.
     */
    virtual void prefetch(std::uint64_t pc) const { (void)pc; }

    // ---- Speculation contract (pipeline simulation) ---------------------
    //
    // The pipeline simulator drives, per conditional branch:
    //   fetch:   predict(pc); cp = checkpoint(); speculate(pc, pred, tgt)
    //   commit:  cur = checkpoint(); restore(cp); predict(pc);
    //            update(pc, taken, tgt);
    //            correct   -> restore(cur)
    //            mispredict-> squashSpeculation()   (history already
    //                          repaired: restore(cp) + update's push)
    // speculate() advances ONLY the speculative history state with the
    // predicted outcome; update() remains the one architectural trainer
    // (tables + the history push with the resolved outcome), which is
    // what makes delay-0 pipeline simulation bit-identical to the
    // immediate engine.

    /** True when the speculation contract below is implemented. */
    virtual bool supportsSpeculation() const { return false; }

    /**
     * Size the speculative structures for up to @p max_inflight branches
     * between predict and commit (called once, before the first
     * speculate()).  Default: nothing to size.
     */
    virtual void prepareSpeculation(unsigned max_inflight)
    {
        (void)max_inflight;
    }

    /** Snapshot the speculative history state (see SpecCheckpoint). */
    virtual SpecCheckpoint checkpoint() const { return SpecCheckpoint(); }

    /**
     * Move the speculative history state to @p cp — backward for
     * misprediction recovery, forward for the commit sandwich's return to
     * the fetch front.  Non-destructive for the in-flight local-history
     * window: entries younger than cp.localTicket become invisible but
     * stay resident (a forward restore brings them back); an actual
     * squash is a separate, explicit squashSpeculation().
     */
    virtual void restore(const SpecCheckpoint &cp) { (void)cp; }

    /**
     * Fetch-side speculative step: push the *predicted* outcome of the
     * conditional branch at @p pc into the speculative history (global +
     * path history, IMLI counter/PIPE, in-flight local history).  Tables
     * are not touched.  @p target is the taken-target from the trace
     * (backward detection needs it even when predicting not-taken).
     */
    virtual void speculate(std::uint64_t pc, bool pred_taken,
                           std::uint64_t target)
    {
        (void)pc;
        (void)pred_taken;
        (void)target;
    }

    /**
     * Misprediction squash: drop every in-flight speculative local-
     * history entry and lift any restore() visibility bound.  The global
     * history needs no explicit squash — restore() already moved the
     * head, which is the paper's point.
     */
    virtual void squashSpeculation() {}

    /**
     * Debug digest of the speculation-relevant internal state (tables,
     * histories, visible speculative events).  The checkpoint/restore
     * property tests compare digests, not just predictions, so silent
     * state divergence cannot hide behind agreeing outputs.  Default 0
     * for predictors that do not participate.
     */
    virtual std::uint64_t stateDigest() const { return 0; }

    /**
     * Register this predictor's internal-event probes with @p scope
     * (see src/obs/metrics.hh).  Called at most once, before the first
     * predict(); never called when metrics are off, so a predictor that
     * was never attached carries only detached (null) probes — the
     * inertness guarantee.  Observation must never mutate predictor
     * state: stateDigest() with probes attached equals stateDigest()
     * without (pinned by test).  Default: nothing to observe.
     */
    virtual void attachProbes(obs::MetricsScope &scope) { (void)scope; }

    /** Short configuration name, e.g. "TAGE-GSC+I". */
    virtual std::string name() const = 0;

    /** Hardware budget ledger for the whole predictor. */
    virtual StorageAccount storage() const = 0;

    /** Total hardware budget in bits (the ledger's bottom line). */
    std::uint64_t storageBits() const { return storage().totalBits(); }
};

/** Convenience alias used throughout the zoo and the simulator. */
using PredictorPtr = std::unique_ptr<ConditionalPredictor>;

} // namespace imli

#endif // IMLI_SRC_PREDICTORS_PREDICTOR_HH
