/**
 * @file
 * The conditional branch predictor interface (CBP-style contract).
 *
 * The simulator drives predictors exactly like the championship framework
 * drives submissions:
 *
 *   for each dynamic branch b:
 *     if b is conditional:
 *       pred = predictor.predict(b.pc)
 *       predictor.update(b.pc, b.taken, b.target)   // resolve + train
 *     else:
 *       predictor.trackOtherInst(b.pc, b.type, b.taken, b.target)
 *
 * Contract notes:
 *  - update(pc, ...) is always the next call after predict(pc) for the same
 *    dynamic branch; implementations may cache lookup state across the pair
 *    (every serious predictor does).
 *  - trace-driven simulation implies immediate update (paper, Section 3);
 *    speculative-state effects are studied separately in src/spec/.
 */

#ifndef IMLI_SRC_PREDICTORS_PREDICTOR_HH
#define IMLI_SRC_PREDICTORS_PREDICTOR_HH

#include <cstdint>
#include <memory>
#include <string>

#include "src/trace/branch_record.hh"
#include "src/util/storage.hh"

namespace imli
{

/** Abstract conditional branch direction predictor. */
class ConditionalPredictor
{
  public:
    virtual ~ConditionalPredictor() = default;

    /** Predict the direction of the conditional branch at @p pc. */
    virtual bool predict(std::uint64_t pc) = 0;

    /**
     * Resolve and train on the actual outcome.  @p target is the taken
     * target (used for backward-branch detection and history updates).
     */
    virtual void update(std::uint64_t pc, bool taken,
                        std::uint64_t target) = 0;

    /**
     * Observe a non-conditional branch.  Default: no effect.  Predictors
     * with path history fold these in, as the CBP framework allows.
     */
    virtual void
    trackOtherInst(std::uint64_t pc, BranchType type, bool taken,
                   std::uint64_t target)
    {
        (void)pc;
        (void)type;
        (void)taken;
        (void)target;
    }

    /** Short configuration name, e.g. "TAGE-GSC+I". */
    virtual std::string name() const = 0;

    /** Hardware budget ledger for the whole predictor. */
    virtual StorageAccount storage() const = 0;

    /** Total hardware budget in bits (the ledger's bottom line). */
    std::uint64_t storageBits() const { return storage().totalBits(); }
};

/** Convenience alias used throughout the zoo and the simulator. */
using PredictorPtr = std::unique_ptr<ConditionalPredictor>;

} // namespace imli

#endif // IMLI_SRC_PREDICTORS_PREDICTOR_HH
