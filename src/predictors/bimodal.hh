/**
 * @file
 * Bimodal predictor (Smith, 1981): a PC-indexed table of saturating
 * counters.  Serves as the weakest baseline in the shootout example and as
 * the fallback ("base") predictor inside TAGE.
 */

#ifndef IMLI_SRC_PREDICTORS_BIMODAL_HH
#define IMLI_SRC_PREDICTORS_BIMODAL_HH

#include <vector>

#include "src/predictors/predictor.hh"
#include "src/util/counters.hh"

namespace imli
{

/** PC-indexed table of n-bit saturating counters. */
class BimodalPredictor : public ConditionalPredictor
{
  public:
    /**
     * @param log_entries log2 of the table size
     * @param counter_bits width of each counter
     */
    explicit BimodalPredictor(unsigned log_entries = 13,
                              unsigned counter_bits = 2);

    bool predict(std::uint64_t pc) override;
    void update(std::uint64_t pc, bool taken, std::uint64_t target) override;

    /**
     * Bimodal keeps no speculative history at all (the degenerate case of
     * the paper's recovery argument): the base-class no-op checkpoint /
     * restore / speculate defaults are exactly right.
     */
    bool supportsSpeculation() const override { return true; }

    std::string name() const override { return "bimodal"; }
    StorageAccount storage() const override;

    /** Direct table access for composition (TAGE base predictor). */
    bool lookup(std::uint64_t pc) const;

    /** True when the counter for @p pc holds a weak (hysteresis) state. */
    bool isWeak(std::uint64_t pc) const;

    void train(std::uint64_t pc, bool taken);

    /** Hint the counter line for @p pc into cache (PC-indexed: exact). */
    void
    prefetchEntry(std::uint64_t pc) const
    {
        __builtin_prefetch(table.data() + index(pc), 0, 1);
    }

    void prefetch(std::uint64_t pc) const override { prefetchEntry(pc); }

  private:
    unsigned index(std::uint64_t pc) const;

    std::vector<SatCounter> table;
    unsigned mask;
};

} // namespace imli

#endif // IMLI_SRC_PREDICTORS_BIMODAL_HH
