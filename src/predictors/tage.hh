/**
 * @file
 * TAGE: TAgged GEometric history length predictor (Seznec & Michaud 2006;
 * refinements from "A new case for TAGE", MICRO 2011).
 *
 * TAGE is the main prediction engine of TAGE-GSC (paper, Section 3.2.1).
 * A bimodal base table is backed by N partially tagged tables indexed with
 * geometrically increasing global history lengths; the longest matching
 * table provides the prediction, with the "use alt on newly allocated"
 * heuristic arbitrating between provider and alternate predictions, and
 * usefulness counters steering allocation on mispredictions.
 *
 * Memory model: the tagged tables live in ONE cache-line-aligned
 * TableArena allocation.  All tables share logEntries, so table t spans
 * arena elements [t << logEntries, (t + 1) << logEntries) — the stride is
 * the power-of-two entry count and element (t, i) is the flat offset
 * (t << logEntries) + i, reachable with a shift and an add from the
 * single base pointer (no per-table pointer chase).  Entries pack to 4
 * bytes (int8 ctr, uint16 tag, uint8 u), 16 per 64-byte line.  Lookup
 * state (per-table indices and tags) is a pair of fixed-capacity inline
 * arrays sized by kMaxTables; predict() therefore performs no heap
 * allocation, which a trivially-copyable static_assert pins.
 */

#ifndef IMLI_SRC_PREDICTORS_TAGE_HH
#define IMLI_SRC_PREDICTORS_TAGE_HH

#include <array>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "src/history/history_manager.hh"
#include "src/obs/metrics.hh"
#include "src/predictors/bimodal.hh"
#include "src/util/arena.hh"
#include "src/util/storage.hh"

namespace imli
{

/** Geometric series of history lengths, strictly increasing. */
std::vector<unsigned> geometricLengths(unsigned count, unsigned min_length,
                                       unsigned max_length);

/**
 * The TAGE engine.  It does not implement ConditionalPredictor itself: it
 * is composed (with a statistical corrector and side predictors) into
 * TageGscPredictor; tests drive it through a thin standalone adapter.
 */
class TagePredictor
{
  public:
    /**
     * Hard cap on numTables: sizes the inline per-lookup index/tag
     * arrays and the provider-match bitmask (uint32).  Matches the
     * spec-grammar bound on the tage.tables DSE key; the constructor
     * rejects larger geometries.
     */
    static constexpr unsigned kMaxTables = 32;

    struct Config
    {
        unsigned numTables = 12;     //!< tagged tables
        unsigned minHistory = 4;     //!< shortest history length
        unsigned maxHistory = 640;   //!< longest history length
        unsigned logEntries = 10;    //!< log2 entries per tagged table
        unsigned counterBits = 3;    //!< signed prediction counter width
        unsigned usefulBits = 2;     //!< usefulness counter width
        unsigned baseLogEntries = 12;//!< log2 entries of the bimodal base
        unsigned tagBitsMin = 8;     //!< tag width of the shortest table
        unsigned tagBitsMax = 13;    //!< tag width of the longest table
        unsigned tickLogMax = 10;    //!< u-reset controller saturation log2
    };

    /** Result of a lookup, consumed by the statistical corrector. */
    struct Prediction
    {
        bool taken = false;     //!< final TAGE prediction
        int provider = -1;      //!< providing table (-1 = bimodal base)
        bool usedAlt = false;   //!< alt prediction subsumed the provider
        bool altTaken = false;  //!< the alternate prediction
        /**
         * Provider confidence in {0 = weak, 1 = medium, 2 = high}, from
         * the absolute value of the providing counter; the statistical
         * corrector scales its revert threshold with it.
         */
        int confidence = 0;
    };

    /**
     * @param config table geometry
     * @param hist shared history manager (owned by the composed predictor)
     */
    TagePredictor(const Config &config, HistoryManager &hist);

    /** Look up @p pc; caches lookup state for the paired update(). */
    Prediction predict(std::uint64_t pc);

    /**
     * Hint the table lines a future predict(@p pc) will touch into
     * cache.  Indices are computed with the CURRENT folded histories, so
     * for history-indexed tables the hint is approximate once more
     * branches shift in before the real lookup — the base table and
     * short-history tables stay exact.  Purely a scheduling hint: never
     * changes any prediction (CI pins prefetch-on == prefetch-off).
     */
    void prefetch(std::uint64_t pc) const;

    /**
     * Train on the resolved outcome.  @p final_pred is the prediction the
     * composed predictor actually emitted (allocation keys off the overall
     * misprediction, as in TAGE-SC-L).  Does NOT push global history; the
     * host does that once per branch for all components.
     */
    void update(std::uint64_t pc, bool taken, bool final_pred);

    const Config &config() const { return cfg; }
    const std::vector<unsigned> &historyLengths() const { return lengths; }

    void account(StorageAccount &acct) const;

    /**
     * Resolve the TAGE probe set against @p scope: which component
     * resolved each branch (provider counter / alternate / bimodal
     * base), allocation success/fail, and useful-bit reset sweeps.
     * Probes fire in update() only — the pipeline engine re-calls
     * predict() at commit, so update() is the once-per-branch point.
     */
    void attachProbes(obs::MetricsScope &scope);

  private:
    struct Entry
    {
        std::int8_t ctr = 0;   //!< signed prediction counter
        std::uint16_t tag = 0; //!< partial tag
        std::uint8_t u = 0;    //!< usefulness
    };

    unsigned tagBits(unsigned table) const;
    unsigned tableIndex(unsigned table, std::uint64_t pc) const;
    std::uint16_t tableTag(unsigned table, std::uint64_t pc) const;
    bool counterTaken(std::int8_t ctr) const { return ctr >= 0; }
    void counterUpdate(std::int8_t &ctr, bool taken, int bits);
    unsigned nextRandom();

    Config cfg;
    HistoryManager &histMgr;
    std::vector<unsigned> lengths;
    TableArena<Entry> tables;
    BimodalPredictor base;

    // Per-table folded histories (owned by the HistoryManager).
    std::vector<FoldedHistory *> indexFolds;
    std::vector<FoldedHistory *> tagFolds1;
    std::vector<FoldedHistory *> tagFolds2;

    // "use alt on newly allocated" arbitration counters.
    std::vector<std::int8_t> useAltOnNa;

    // Allocation throttling (u-bit ageing).
    std::uint32_t tick = 0;

    // predict/update pairing state
    struct LookupState
    {
        std::uint64_t pc = 0;
        int provider = -1;
        int altTable = -1; // -1 = bimodal
        unsigned providerIndex = 0;
        unsigned altIndex = 0;
        bool providerPred = false;
        bool altPred = false;
        bool finalPred = false;
        bool providerNew = false;
        bool usedAlt = false;
        //!< per-table indices/tags this lookup — fixed-capacity inline
        //!< storage, so predict() never touches the heap
        std::array<unsigned, kMaxTables> indices{};
        std::array<std::uint16_t, kMaxTables> tags{};
    } look;

    // Allocation-regression guard: a std::vector member would make the
    // lookup state non-trivially-copyable and fail this assert.
    static_assert(std::is_trivially_copyable_v<LookupState>,
                  "per-lookup state must stay heap-allocation-free");

    std::uint32_t lfsr = 0xbeefu;

    // Detached by default (null sinks): each is one never-taken branch
    // on the update path until attachProbes() resolves it.
    obs::ProbeCounter obsProvider;
    obs::ProbeCounter obsAlt;
    obs::ProbeCounter obsBase;
    obs::ProbeCounter obsAllocSuccess;
    obs::ProbeCounter obsAllocFail;
    obs::ProbeCounter obsUsefulReset;
};

} // namespace imli

#endif // IMLI_SRC_PREDICTORS_TAGE_HH
