/**
 * @file
 * The neural adder-tree component contract shared by GEHL and the
 * statistical corrector of TAGE-GSC.
 *
 * The paper's Figures 5 and 6 show the same structure twice: a set of
 * tables of signed counters, each contributing a centred vote to an adder
 * tree; the prediction is the sign of the sum.  The IMLI-SIC and IMLI-OH
 * tables, the local-history tables and the bias tables are all just more
 * inputs to that tree.  ScComponent captures the contract so one component
 * implementation plugs into both host predictors:
 *
 *  - vote(ctx): centred contribution for the current branch;
 *  - update(ctx, taken): train the voting counters (the host gates this on
 *    its confidence/threshold policy, the O-GEHL rule);
 *  - onResolved(ctx, taken): unconditional per-branch state maintenance
 *    (local history shifts, IMLI outer-history writes) that must happen
 *    regardless of the training gate.
 */

#ifndef IMLI_SRC_PREDICTORS_SC_COMPONENT_HH
#define IMLI_SRC_PREDICTORS_SC_COMPONENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/storage.hh"

namespace imli
{

/** Per-branch inputs to the adder tree. */
struct ScContext
{
    std::uint64_t pc = 0;

    /** Host main prediction (TAGE); bias tables hash it in. */
    bool mainPred = false;

    /** Current Inner Most Loop Iteration counter value. */
    unsigned imliCount = 0;

    /** Outer-loop iteration counter (the OMLI extension; 0 when off). */
    unsigned omliCount = 0;

    /** Out[N-1][M] recovered from the IMLI outer-history table. */
    bool ohBit = false;

    /** Out[N-1][M-1] recovered from the PIPE vector. */
    bool pipeBit = false;
};

/** One voting component of a neural predictor. */
class ScComponent
{
  public:
    virtual ~ScComponent() = default;

    /** Centred contribution (sum of 2c+1 over this component's tables). */
    virtual int vote(const ScContext &ctx) const = 0;

    /** Train the voting counters towards @p taken (threshold-gated). */
    virtual void update(const ScContext &ctx, bool taken) = 0;

    /** Unconditional per-branch state maintenance.  Default: none. */
    virtual void
    onResolved(const ScContext &ctx, bool taken)
    {
        (void)ctx;
        (void)taken;
    }

    /**
     * Hint the table lines a vote(@p ctx) would touch into cache.  A
     * scheduling hint only — implementations must not change any state,
     * and a stale/approximate @p ctx merely wastes the fetch.  Default:
     * none (components with tiny L1-resident tables need not bother).
     */
    virtual void
    prefetch(const ScContext &ctx) const
    {
        (void)ctx;
    }

    /** Add this component's tables to the budget ledger. */
    virtual void account(StorageAccount &acct) const = 0;

    virtual std::string name() const = 0;
};

/**
 * Adder tree plus the O-GEHL adaptive training threshold.
 *
 * Threshold adaptation (Seznec, ISCA 2005): on a misprediction the
 * threshold-tuning counter moves up; on a correct but low-confidence
 * prediction (|sum| < theta) it moves down; saturation nudges theta.  This
 * dynamically balances update frequency against table lifetime.
 */
class VotingEngine
{
  public:
    struct Config
    {
        int thetaInit = 8;   //!< initial threshold
        int thetaMin = 1;
        int thetaMax = 255;
        int tcBits = 7;      //!< tuning counter width
    };

    VotingEngine() : VotingEngine(Config()) {}

    explicit VotingEngine(const Config &config);

    /** Register a voting component (non-owning). */
    void addComponent(ScComponent *component);

    /** Sum of all component votes for @p ctx. */
    int sum(const ScContext &ctx) const;

    /** Current adaptive threshold. */
    int theta() const { return thresholdValue; }

    /**
     * Decide whether counters should train, and adapt the threshold.
     * Call once per conditional branch with the engine's own prediction.
     *
     * @param mispredicted this engine's sign prediction was wrong
     * @param abs_sum |sum| at prediction time
     * @return true when components must be trained
     */
    bool onOutcome(bool mispredicted, int abs_sum);

    /** Train every component (the host calls this when onOutcome says so). */
    void trainAll(const ScContext &ctx, bool taken);

    /** Per-branch unconditional maintenance for every component. */
    void resolveAll(const ScContext &ctx, bool taken);

    /** Prefetch hint fan-out: every component's table lines for @p ctx. */
    void
    prefetchAll(const ScContext &ctx) const
    {
        for (const ScComponent *c : comps)
            c->prefetch(ctx);
    }

    void account(StorageAccount &acct) const;

    const std::vector<ScComponent *> &components() const { return comps; }

  private:
    Config cfg;
    std::vector<ScComponent *> comps;
    int thresholdValue;
    int tuningCounter = 0;
};

} // namespace imli

#endif // IMLI_SRC_PREDICTORS_SC_COMPONENT_HH
