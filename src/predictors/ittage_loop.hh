/**
 * @file
 * ITTAGE-style tagged loop exit predictor ("ITL").
 *
 * The plain loop table (loop_predictor.hh) stores ONE trip count per
 * branch and only predicts once the same count has repeated enough to
 * saturate a confidence counter — any loop whose trip count varies
 * (alternating 11, 17, 11, 17; data-dependent bounds; nested loops whose
 * inner trip follows the outer index) is rejected outright.  This
 * predictor transplants the ITTAGE recipe (Seznec, "A 64-Kbytes ITTAGE
 * indirect branch predictor", CBP-3 2011) from indirect targets to exit
 * iterations:
 *
 *  - A small set-associative BASE table tracks the current iteration
 *    count per loop branch and learns a last-trip fallback, exactly like
 *    the plain table (it is the "alternate prediction" provider).
 *  - N TAGGED tables are indexed by hash(PC, exit-history prefix), where
 *    the exit history is a global shift register of hashed (PC, observed
 *    exit iteration) pairs and the prefix lengths grow geometrically
 *    (1, 2, 4, 8 past exits).  Each tagged entry predicts a full *exit
 *    iteration* (not a direction), with a confidence counter and an
 *    ITTAGE useful bit for allocation victim choice.
 *  - Prediction: the longest tag match is the provider; its exit
 *    iteration X turns into a direction via the base tracker ("exit on
 *    iteration X").  On a wrong exit prediction the provider decays and
 *    a longer table allocates — the standard TAGE capacity cascade.
 *
 * The payoff is exactly the phenomenon the IMLI paper attacks from the
 * history side (Section 4.2.2): correlated trip counts.  A loop
 * alternating 11, 17 never confides in the plain table, but the tagged
 * table keyed on "previous exit was 11" learns "this exit is 17" after
 * one cycle of the pattern.
 *
 * Speculation follows the same contract as the other side predictors:
 * the base iteration count advances through a ticketed journal
 * (spec_journal.hh) at fetch; tagged tables and the exit history are
 * architectural (commit-written) and need no recovery.
 */

#ifndef IMLI_SRC_PREDICTORS_ITTAGE_LOOP_HH
#define IMLI_SRC_PREDICTORS_ITTAGE_LOOP_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/obs/metrics.hh"
#include "src/predictors/bimodal.hh"
#include "src/predictors/predictor.hh"
#include "src/predictors/spec_journal.hh"
#include "src/util/arena.hh"
#include "src/util/storage.hh"

namespace imli
{

/** Tagged geometric exit-iteration predictor (ITTAGE over trip counts). */
class IttageLoopPredictor
{
  public:
    struct Config
    {
        // Base iteration tracker (the plain-loop-shaped part).
        unsigned logSets = 2;   //!< log2 sets of the base tracker
        unsigned ways = 4;      //!< base tracker associativity
        unsigned iterBits = 10; //!< iteration / exit counter width
        unsigned tagBits = 10;  //!< base partial tag width
        unsigned confBits = 4;  //!< base fallback confidence width
        unsigned ageBits = 4;   //!< base replacement age width

        // Tagged exit tables.
        unsigned numTables = 4;       //!< geometric tagged tables
        unsigned logSize = 6;         //!< log2 entries per tagged table
        unsigned taggedTagBits = 10;  //!< tagged partial tag width
        /** Provider confidence (3-bit, 0..7) gate for overriding. */
        unsigned providerThreshold = 3;

        unsigned numBaseEntries() const { return (1u << logSets) * ways; }
    };

    /**
     * One lookup's result and its full predict/update pairing state
     * (base way, provider slot, predicted/alternate exits), threaded
     * back into update() by the host.
     */
    struct Prediction
    {
        bool hit = false;   //!< base tracker entry matched
        bool valid = false; //!< confident enough to override the host
        bool taken = false;
        unsigned baseIndex = 0;
        std::uint16_t baseTag = 0;
        int providerTable = -1;    //!< longest tagged match, -1 = none
        unsigned providerIndex = 0;
        std::uint16_t predictedExit = 0; //!< exit iteration used, 0 = none
        std::uint16_t altExit = 0;       //!< next-best exit, 0 = none
    };

    IttageLoopPredictor() : IttageLoopPredictor(Config()) {}

    explicit IttageLoopPredictor(const Config &config);

    /** Look up @p pc at its current (speculative) iteration.  Const:
     *  pairing state is returned, not cached. */
    Prediction lookup(std::uint64_t pc) const;

    /**
     * Train on the resolved outcome.  @p alloc enables base-tracker
     * allocation (host mispredict on a backward branch); @p paired is
     * the Prediction of this occurrence's lookup.
     */
    void update(std::uint64_t pc, bool taken, bool alloc,
                const Prediction &paired);

    /** Confident exit iteration for @p pc (provider or base fallback),
     *  for reports; nullopt below the confidence gates. */
    std::optional<unsigned> predictedTrip(std::uint64_t pc) const;

    // ---- Speculation (pipeline engine): same journal contract as
    // LoopPredictor — one event per conditional occurrence, commit pops
    // FIFO, restore bounds visibility by ticket.
    void speculate(std::uint64_t pc, bool pred_taken);
    void setTicketHorizon(std::uint64_t max_ticket);
    std::uint64_t lastTicket() const { return journal.lastTicket(); }
    void squashSpeculation();

    /** Storage cost: base tracker + tagged tables + exit history. */
    void account(StorageAccount &acct, const std::string &name) const;

    /** Resolve the tagged-provider confidence-transition probes. */
    void attachProbes(obs::MetricsScope &scope);

    /** Debug digest of architectural + speculative-visible state. */
    std::uint64_t stateDigest() const;

    const Config &config() const { return cfg; }

  private:
    struct BaseEntry
    {
        std::uint16_t nbIter = 0;      //!< last observed trip (fallback)
        std::uint8_t confid = 0;       //!< fallback confidence
        std::uint16_t currentIter = 0; //!< current iteration counter
        std::uint16_t tag = 0;
        std::uint8_t age = 0;
        bool dir = false; //!< iterating ("stay") direction
    };

    struct TaggedEntry
    {
        std::uint16_t tag = 0;
        std::uint16_t exitIter = 0; //!< predicted exit iteration, 0 = free
        std::uint8_t conf = 0;      //!< 3-bit provider confidence
        std::uint8_t useful = 0;    //!< 2-bit ITTAGE useful counter
    };

    /** Speculative iteration event (same shape as LoopPredictor's). */
    struct SpecEvent
    {
        unsigned index = 0;
        std::uint16_t tag = 0;
        std::uint16_t iter = 0;
    };

    static constexpr unsigned kNoMatch = ~0u;

    unsigned baseIndexOf(std::uint64_t pc) const;
    std::uint16_t baseTagOf(std::uint64_t pc) const;
    /** Exit-history prefix of tagged table @p t, in bits of the E
     *  register (8 bits per recorded exit, geometric in exits). */
    std::uint64_t historyPrefix(unsigned t) const;
    unsigned taggedIndexOf(std::uint64_t pc, unsigned t) const;
    std::uint16_t taggedTagOf(std::uint64_t pc, unsigned t) const;
    std::uint16_t specIter(unsigned index, const BaseEntry &e) const;
    void trainTagged(std::uint64_t pc, std::uint16_t observed_exit,
                     const Prediction &paired);
    unsigned nextRandom();

    Config cfg;
    std::vector<BaseEntry> base;
    TableArena<TaggedEntry> tables; //!< one allocation, all tagged tables
    /** Global exit history: 8 hashed bits per observed loop exit. */
    std::uint64_t exitHistory = 0;
    SpecJournal<SpecEvent> journal;
    std::uint32_t lfsr = 0xace1u;

    obs::ProbeCounter obsConfUp;
    obs::ProbeCounter obsConfDown;
};

/**
 * Standalone zoo predictor "itl": the tagged exit predictor backed by a
 * bimodal fallback (the champsim-style loop + bimodal composition), so
 * the exit scheme can be measured in isolation from a host.
 */
class IttageLoopStandalone : public ConditionalPredictor
{
  public:
    struct Config
    {
        IttageLoopPredictor::Config itl;
        unsigned baseLogEntries = 13;
        unsigned baseCounterBits = 2;
    };

    IttageLoopStandalone() : IttageLoopStandalone(Config()) {}

    explicit IttageLoopStandalone(const Config &config);

    bool predict(std::uint64_t pc) override;
    void update(std::uint64_t pc, bool taken, std::uint64_t target) override;

    // Speculation: the bimodal base holds no speculative state; the ITL
    // journal carries the in-flight iteration counts.
    bool supportsSpeculation() const override { return true; }
    SpecCheckpoint checkpoint() const override;
    void restore(const SpecCheckpoint &cp) override;
    void speculate(std::uint64_t pc, bool pred_taken,
                   std::uint64_t target) override;
    void squashSpeculation() override;
    std::uint64_t stateDigest() const override;

    void attachProbes(obs::MetricsScope &scope) override
    {
        itl.attachProbes(scope);
    }

    std::string name() const override { return "ITL"; }
    StorageAccount storage() const override;

    const Config &config() const { return cfg; }

  private:
    Config cfg;
    BimodalPredictor bimodal;
    IttageLoopPredictor itl;

    struct LookupState
    {
        IttageLoopPredictor::Prediction itl;
        bool finalPred = false;
    } look;
};

} // namespace imli

#endif // IMLI_SRC_PREDICTORS_ITTAGE_LOOP_HH
