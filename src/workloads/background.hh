/**
 * @file
 * Background branch populations: the parts of a benchmark that are not
 * loop-nest-structured.  These set each benchmark's baseline difficulty
 * and give the non-IMLI predictor components their food:
 *
 *  - GlobalCorrKernel: outcomes reproducible from recent global history
 *    (TAGE/GEHL territory); hardness scales with the path dilution.
 *  - LocalPatternKernel: per-branch periodic patterns separated by bursts
 *    of noise branches — global history is polluted, local history is
 *    clean (the "L" components' food, Section 5).
 *  - PathCorrKernel: a correlator branch whose outcome is replayed after
 *    one of many equally likely paths (Evers et al.; with enough paths no
 *    history predictor captures it — irreducible hard branches).
 *  - BiasedRandomKernel: Bernoulli noise branches — the misprediction
 *    floor.
 *  - PredictableKernel: cheap highly regular filler diluting MPKI.
 */

#ifndef IMLI_SRC_WORKLOADS_BACKGROUND_HH
#define IMLI_SRC_WORKLOADS_BACKGROUND_HH

#include <vector>

#include "src/workloads/kernel.hh"

namespace imli
{

/**
 * Branch outcomes driven by a short-period hidden state (a small LFSR):
 * every branch is a deterministic function of the state phase, so global
 * history identifies the phase and a global-history predictor converges
 * to near-perfect accuracy — while bimodal cannot.  The "pathNoise"
 * branches between correlator and dependent are state-driven too; they
 * dilute the history without injecting irreducible noise.
 */
struct GlobalCorrParams
{
    unsigned chains = 4;        //!< independent correlation chains
    unsigned pathNoise = 4;     //!< state-driven branches between C and D
    unsigned burstsPerRound = 8;
    unsigned statePeriodLog = 5;//!< LFSR width: period 2^n - 1 bursts
    unsigned gapMin = 2;
    unsigned gapMax = 7;
};

class GlobalCorrKernel : public Kernel
{
  public:
    GlobalCorrKernel(const GlobalCorrParams &params, std::uint64_t pc_base,
                     Xoroshiro128 rng);

    void emitRound(BranchSink &sink) override;
    std::string describe() const override;

  private:
    GlobalCorrParams cfg;
    std::uint64_t pcBase;
    Xoroshiro128 rng;
    std::uint32_t state;
};

/** Per-branch periodic patterns amid history-polluting noise. */
struct LocalPatternParams
{
    unsigned branches = 4;      //!< independent patterned branches
    unsigned periodMin = 5;
    unsigned periodMax = 9;
    unsigned noiseBetween = 3;  //!< polluting branches between occurrences
    /**
     * Taken probability of the polluting branches.  High bias keeps their
     * own misprediction cost low while the occasional surprise still
     * breaks exact global-history contexts, which is what protects the
     * pattern branch from global predictors.
     */
    double noiseTakenProb = 0.93;
    unsigned stepsPerRound = 64;
    unsigned gapMin = 2;
    unsigned gapMax = 7;
};

class LocalPatternKernel : public Kernel
{
  public:
    LocalPatternKernel(const LocalPatternParams &params,
                       std::uint64_t pc_base, Xoroshiro128 rng);

    void emitRound(BranchSink &sink) override;
    std::string describe() const override;

    /** PC of patterned branch @p i, for tests. */
    std::uint64_t patternBranchPc(unsigned i) const;

  private:
    LocalPatternParams cfg;
    std::uint64_t pcBase;
    Xoroshiro128 rng;
    std::vector<unsigned> periods;
    std::vector<unsigned> phases;
};

/** Correlator outcome replayed behind one of many equally likely paths. */
struct PathCorrParams
{
    unsigned paths = 64;        //!< distinct paths (log2 taken as depth)
    unsigned burstsPerRound = 16;
    /**
     * Taken bias of the path-selection branches.  0.5 makes every path
     * equally likely (maximum dilution, the Evers et al. hard case);
     * higher bias concentrates on few paths, making the replayed
     * correlator learnable again.
     */
    double pathTakenProb = 0.5;
    unsigned gapMin = 2;
    unsigned gapMax = 7;
};

class PathCorrKernel : public Kernel
{
  public:
    PathCorrKernel(const PathCorrParams &params, std::uint64_t pc_base,
                   Xoroshiro128 rng);

    void emitRound(BranchSink &sink) override;
    std::string describe() const override;

  private:
    PathCorrParams cfg;
    std::uint64_t pcBase;
    Xoroshiro128 rng;
    unsigned depth;
};

/** Bernoulli noise branches. */
struct BiasedRandomParams
{
    unsigned branches = 6;
    double takenProbMin = 0.35;
    double takenProbMax = 0.65;
    unsigned burstsPerRound = 32;
    unsigned gapMin = 2;
    unsigned gapMax = 7;
};

class BiasedRandomKernel : public Kernel
{
  public:
    BiasedRandomKernel(const BiasedRandomParams &params,
                       std::uint64_t pc_base, Xoroshiro128 rng);

    void emitRound(BranchSink &sink) override;
    std::string describe() const override;

  private:
    BiasedRandomParams cfg;
    std::uint64_t pcBase;
    Xoroshiro128 rng;
    std::vector<double> probs;
};

/** Highly regular filler (near-zero MPKI once warm). */
struct PredictableParams
{
    unsigned branches = 8;
    unsigned burstsPerRound = 32;
    unsigned gapMin = 3;
    unsigned gapMax = 9;
};

class PredictableKernel : public Kernel
{
  public:
    PredictableKernel(const PredictableParams &params, std::uint64_t pc_base,
                      Xoroshiro128 rng);

    void emitRound(BranchSink &sink) override;
    std::string describe() const override;

  private:
    PredictableParams cfg;
    std::uint64_t pcBase;
    Xoroshiro128 rng;
    std::vector<unsigned> counters;
};

} // namespace imli

#endif // IMLI_SRC_WORKLOADS_BACKGROUND_HH
