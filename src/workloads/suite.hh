/**
 * @file
 * The synthetic CBP4-like and CBP3-like benchmark suites (40 + 40).
 *
 * Substitute for the championship trace sets (DESIGN.md, Section 2).  The
 * generic members span easy / medium / hard difficulty tiers; the paper's
 * seven IMLI-sensitive benchmarks have synthetic counterparts whose
 * loop-nest content reproduces the correlation classes the paper
 * attributes to them:
 *
 *   SPEC2K6-04  variable-trip nests, SameIter/Nested  -> IMLI-SIC, not WH
 *   SPEC2K6-12  constant-trip nests, DiagPrev         -> WH and IMLI-OH
 *   MM-4        constant-trip nest, Inverted, ~1 MPKI -> WH and IMLI-OH
 *   CLIENT02    constant-trip nests, DiagPrev, hard   -> WH and IMLI-OH
 *   MM07        both kinds, hardest                   -> SIC + OH/WH
 *   WS04        variable-trip, SameIter-heavy         -> IMLI-SIC, not WH
 *   WS03        small nest content                    -> marginal SIC/OH
 *
 * The CBP3-like suite carries more noise, local-pattern and long-loop
 * content than the CBP4-like suite, reflecting the higher base MPKI and
 * larger loop-predictor/local-history benefit the paper reports there.
 */

#ifndef IMLI_SRC_WORKLOADS_SUITE_HH
#define IMLI_SRC_WORKLOADS_SUITE_HH

#include <vector>

#include "src/workloads/benchmark_spec.hh"

namespace imli
{

/** The 40 CBP4-like benchmarks. */
std::vector<BenchmarkSpec> cbp4Suite();

/** The 40 CBP3-like benchmarks. */
std::vector<BenchmarkSpec> cbp3Suite();

/** Both suites, CBP4 first (80 benchmarks). */
std::vector<BenchmarkSpec> fullSuite();

/** Find a benchmark by name across both suites; throws if unknown. */
BenchmarkSpec findBenchmark(const std::string &name);

/** Shell-style glob match: '*' = any run, '?' = any one character. */
bool globMatch(const std::string &pattern, const std::string &name);

/**
 * Select benchmarks from @p pool by a list of glob patterns ("MM-*",
 * "SPEC2K6-0?", exact names).  The selection keeps pool order and drops
 * duplicates (overlapping patterns).  A pattern matching nothing throws
 * std::runtime_error whose message lists near-miss pool names (to catch
 * "MM4" vs "MM-4" typos); an empty pattern list selects the whole pool.
 */
std::vector<BenchmarkSpec>
selectBenchmarks(const std::vector<BenchmarkSpec> &pool,
                 const std::vector<std::string> &patterns);

/**
 * " (the REC scenarios need --recorded DIR)" when a selection that came
 * up empty asked for REC content (suite filter "REC" or any pattern
 * starting with "REC") without a recorded directory; "" otherwise.
 * Shared by the CLIs so the diagnostic cannot drift between them.
 */
std::string recordedHint(bool has_recorded_dir, const std::string &suite,
                         const std::vector<std::string> &patterns);

// ---------------------------------------------------------------------
// Recorded-style scenarios (suite "REC").
//
// Eight scenario benchmarks shipped as CBP-format trace files under
// tests/data/, exercising the external-trace ingestion path end to end.
// They are synthesized — recordedScenarios() holds the generating specs,
// `trace_tools synth-recorded` writes the files — so the repository can
// regenerate them bit for bit, yet the suite runner consumes them purely
// as recordings: replayed from disk, never re-generated.
// ---------------------------------------------------------------------

/** Records per recorded scenario file (the synthesis target length). */
constexpr std::size_t recordedScenarioBranches = 2000;

/**
 * The generating specs behind the recorded scenarios: 8 Generated-backend
 * specs named REC-01..REC-08, suite "REC", with kernel mixes distinct
 * from the 80 synthetic members (loop-nest heavy, noise-flooded,
 * long-loop and phase-change shapes).  Used by the synthesis tool and by
 * equivalence tests; experiments should use recordedSuite().
 */
std::vector<BenchmarkSpec> recordedScenarios();

/**
 * The recorded suite: REC-01..REC-08 replayed from "<dir>/rec-0N.cbp".
 * The specs only reference the files — existence is checked by
 * validateBenchmark / runSuite, so a wrong @p dir fails loudly at run
 * start.
 */
std::vector<BenchmarkSpec> recordedSuite(const std::string &dir);

/** File name (without directory) of a recorded scenario, "rec-0N.cbp". */
std::string recordedScenarioFileName(const BenchmarkSpec &scenario);

} // namespace imli

#endif // IMLI_SRC_WORKLOADS_SUITE_HH
