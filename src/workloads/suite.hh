/**
 * @file
 * The synthetic CBP4-like and CBP3-like benchmark suites (40 + 40).
 *
 * Substitute for the championship trace sets (DESIGN.md, Section 2).  The
 * generic members span easy / medium / hard difficulty tiers; the paper's
 * seven IMLI-sensitive benchmarks have synthetic counterparts whose
 * loop-nest content reproduces the correlation classes the paper
 * attributes to them:
 *
 *   SPEC2K6-04  variable-trip nests, SameIter/Nested  -> IMLI-SIC, not WH
 *   SPEC2K6-12  constant-trip nests, DiagPrev         -> WH and IMLI-OH
 *   MM-4        constant-trip nest, Inverted, ~1 MPKI -> WH and IMLI-OH
 *   CLIENT02    constant-trip nests, DiagPrev, hard   -> WH and IMLI-OH
 *   MM07        both kinds, hardest                   -> SIC + OH/WH
 *   WS04        variable-trip, SameIter-heavy         -> IMLI-SIC, not WH
 *   WS03        small nest content                    -> marginal SIC/OH
 *
 * The CBP3-like suite carries more noise, local-pattern and long-loop
 * content than the CBP4-like suite, reflecting the higher base MPKI and
 * larger loop-predictor/local-history benefit the paper reports there.
 */

#ifndef IMLI_SRC_WORKLOADS_SUITE_HH
#define IMLI_SRC_WORKLOADS_SUITE_HH

#include <vector>

#include "src/workloads/benchmark_spec.hh"

namespace imli
{

/** The 40 CBP4-like benchmarks. */
std::vector<BenchmarkSpec> cbp4Suite();

/** The 40 CBP3-like benchmarks. */
std::vector<BenchmarkSpec> cbp3Suite();

/** Both suites, CBP4 first (80 benchmarks). */
std::vector<BenchmarkSpec> fullSuite();

/** Find a benchmark by name across both suites; throws if unknown. */
BenchmarkSpec findBenchmark(const std::string &name);

} // namespace imli

#endif // IMLI_SRC_WORKLOADS_SUITE_HH
