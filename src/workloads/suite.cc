#include "src/workloads/suite.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <stdexcept>

#include "src/util/hashing.hh"

namespace imli
{

namespace
{

/** An empty generated spec with identity fields filled in. */
BenchmarkSpec
namedSpec(const std::string &name, const std::string &suite,
          std::uint64_t seed)
{
    BenchmarkSpec b;
    b.name = name;
    b.suite = suite;
    b.seed = seed;
    return b;
}

// ---------------------------------------------------------------------
// Background recipes.  Each helper emits roughly 1000 branches per round
// so that kernel weights read directly as branch-share units; nest
// kernels are larger (one full loop-nest execution) and their weights are
// chosen accordingly.
// ---------------------------------------------------------------------

void
addPredictableFiller(BenchmarkSpec &b, unsigned weight)
{
    PredictableParams p;
    p.branches = 10;
    p.burstsPerRound = 100; // ~1000 branches
    b.kernels.push_back(KernelSpec::makePredictable(p, weight));
}

void
addEasyGlobal(BenchmarkSpec &b, unsigned weight)
{
    GlobalCorrParams p;
    p.chains = 4;
    p.pathNoise = 3; // short paths: fully capturable
    p.burstsPerRound = 42; // ~1000 branches
    p.statePeriodLog = 4; // 15-burst cycle: comfortably learnable
    b.kernels.push_back(KernelSpec::makeGlobalCorr(p, weight));
}

void
addMediumGlobal(BenchmarkSpec &b, unsigned weight)
{
    GlobalCorrParams p;
    p.chains = 3;
    p.pathNoise = 5;
    p.burstsPerRound = 42; // ~1000 branches
    p.statePeriodLog = 4; // longer dilution, still learnable
    b.kernels.push_back(KernelSpec::makeGlobalCorr(p, weight));
}

void
addNoise(BenchmarkSpec &b, double lo, double hi, unsigned weight)
{
    BiasedRandomParams p;
    p.branches = 6;
    p.takenProbMin = lo;
    p.takenProbMax = hi;
    p.burstsPerRound = 167; // ~1000 branches
    b.kernels.push_back(KernelSpec::makeBiasedRandom(p, weight));
}

void
addPathCorr(BenchmarkSpec &b, unsigned paths, double path_bias,
            unsigned weight)
{
    PathCorrParams p;
    p.paths = paths;
    p.pathTakenProb = path_bias;
    p.burstsPerRound = 111; // ~1000 branches at 128 paths
    b.kernels.push_back(KernelSpec::makePathCorr(p, weight));
}

void
addLocalPattern(BenchmarkSpec &b, unsigned weight)
{
    LocalPatternParams p;
    p.branches = 3;
    p.periodMin = 5;
    p.periodMax = 11;
    p.noiseBetween = 6;
    p.stepsPerRound = 48; // ~1000 branches
    b.kernels.push_back(KernelSpec::makeLocalPattern(p, weight));
}

void
addLongLoop(BenchmarkSpec &b, unsigned trip, unsigned jitter,
            unsigned weight)
{
    RegularLoopParams p;
    p.trip = trip;
    p.tripJitter = jitter;
    p.bodyBranches = 1;
    p.bodyTakenProb = 0.92;
    p.runsPerRound = 1; // ~2*trip branches
    b.kernels.push_back(KernelSpec::makeRegular(p, weight));
}

// ---------------------------------------------------------------------
// IMLI-class loop-nest recipes.
// ---------------------------------------------------------------------

/** Variable-trip nest: SameIter/Nested food for IMLI-SIC; useless to WH. */
void
addSicNest(BenchmarkSpec &b, unsigned trip_min, unsigned trip_max,
           unsigned same_iter, unsigned nested, unsigned randoms,
           unsigned weight)
{
    TwoDimLoopParams p;
    p.outerIters = 20;
    p.innerTripMin = trip_min;
    p.innerTripMax = trip_max;
    p.rowMutateProb = 0.02;
    for (unsigned i = 0; i < same_iter; ++i)
        p.body.push_back({BodyClass::SameIter, 0.02, 0.6, 0.5});
    for (unsigned i = 0; i < nested; ++i)
        p.body.push_back({BodyClass::Nested, 0.02, 0.6, 0.5});
    for (unsigned i = 0; i < randoms; ++i)
        p.body.push_back({BodyClass::Random, 0.0, 0.6, 0.5});
    b.kernels.push_back(KernelSpec::makeTwoDim(p, weight));
}

/** Constant-trip nest with previous-diagonal correlation: WH / IMLI-OH. */
void
addWormholeNest(BenchmarkSpec &b, unsigned trip, unsigned diag_prev,
                unsigned same_iter, unsigned randoms, unsigned weight)
{
    TwoDimLoopParams p;
    p.outerIters = 20;
    p.innerTripMin = trip;
    p.innerTripMax = trip;
    p.rowMutateProb = 0.02;
    for (unsigned i = 0; i < diag_prev; ++i)
        p.body.push_back({BodyClass::DiagPrev, 0.01, 0.6, 0.5});
    for (unsigned i = 0; i < same_iter; ++i)
        p.body.push_back({BodyClass::SameIter, 0.02, 0.6, 0.5});
    for (unsigned i = 0; i < randoms; ++i)
        p.body.push_back({BodyClass::Random, 0.0, 0.6, 0.5});
    b.kernels.push_back(KernelSpec::makeTwoDim(p, weight));
}

/** Constant-trip nest with inverted correlation (the MM-4 shape). */
void
addInvertedNest(BenchmarkSpec &b, unsigned trip, unsigned weight)
{
    TwoDimLoopParams p;
    p.outerIters = 24;
    p.innerTripMin = trip;
    p.innerTripMax = trip;
    p.rowMutateProb = 0.01;
    p.body.push_back({BodyClass::Inverted, 0.01, 0.6, 0.5});
    // Without a history spoiler the whole nest stream is periodic over
    // two outer iterations and the base predictor learns it outright.
    p.body.push_back({BodyClass::Random, 0.0, 0.6, 0.85});
    b.kernels.push_back(KernelSpec::makeTwoDim(p, weight));
}

/** A small diagonal nest: marginal OH/WH food (the WS03 shape). */
void
addSmallWormholeNest(BenchmarkSpec &b, unsigned trip, unsigned weight)
{
    TwoDimLoopParams p;
    p.outerIters = 8;
    // Variable trip: the diagonal correlation survives (the data row
    // shifts regardless of where the loop stops), so IMLI-OH tracks it,
    // while the wormhole predictor never gets a constant trip count to
    // address its history with (paper, Figure 13: WS03 is improved by
    // IMLI-OH but not by WH).
    p.innerTripMin = trip;
    p.innerTripMax = trip + trip / 2;
    p.body.push_back({BodyClass::DiagPrev, 0.03, 0.6, 0.5});
    p.body.push_back({BodyClass::Random, 0.0, 0.6, 0.5});
    b.kernels.push_back(KernelSpec::makeTwoDim(p, weight));
}

/** Weak-correlation nest (B2 of Figure 1): marginal food for everyone. */
void
addWeakNest(BenchmarkSpec &b, unsigned trip, unsigned weight)
{
    TwoDimLoopParams p;
    p.outerIters = 16;
    p.innerTripMin = trip;
    p.innerTripMax = trip;
    p.body.push_back({BodyClass::Weak, 0.25, 0.6, 0.5});
    p.body.push_back({BodyClass::SameIter, 0.03, 0.6, 0.5});
    b.kernels.push_back(KernelSpec::makeTwoDim(p, weight));
}

// ---------------------------------------------------------------------
// Generic members: three difficulty tiers.  Weights are ~1000-branch
// units; each tier targets a base-MPKI band (easy < 1.5, medium ~2-4,
// hard ~10-16 at ~5.5 instructions per branch).
// ---------------------------------------------------------------------

BenchmarkSpec
makeEasy(const std::string &name, const std::string &suite,
         std::uint64_t seed, bool with_local)
{
    BenchmarkSpec b = namedSpec(name, suite, seed);
    addPredictableFiller(b, 14);
    addEasyGlobal(b, 3);
    addNoise(b, 0.95, 0.99, 1); // near-always-taken: tiny noise
    if (with_local)
        addLocalPattern(b, 1);
    return b;
}

BenchmarkSpec
makeMedium(const std::string &name, const std::string &suite,
           std::uint64_t seed, bool with_local, bool with_loop)
{
    BenchmarkSpec b = namedSpec(name, suite, seed);
    addPredictableFiller(b, 14);
    addEasyGlobal(b, 3);
    addMediumGlobal(b, 2);
    addNoise(b, 0.8, 0.93, 1);
    addPathCorr(b, 16, 0.8, 1);
    if (with_local)
        addLocalPattern(b, 2);
    if (with_loop) {
        // Trip 60 with a noisy body: the exit context never repeats, so
        // only the loop predictor (or IMLI-SIC) can call the exit; the
        // CBP3-like suite carries more of this (paper Section 4.2.2:
        // loop benefit 0.094 vs 0.034 MPKI).
        addLongLoop(b, 60, 0, suite == "CBP3" ? 8 : 6);
    }
    return b;
}

BenchmarkSpec
makeHard(const std::string &name, const std::string &suite,
         std::uint64_t seed, bool with_local)
{
    // The CBP3-like suite is noticeably harder on average (paper: 3.902
    // vs 2.473 MPKI base), so its hard tier carries more noise.
    const bool cbp3 = suite == "CBP3";
    BenchmarkSpec b = namedSpec(name, suite, seed);
    addPredictableFiller(b, cbp3 ? 12 : 20);
    addMediumGlobal(b, 2);
    addNoise(b, 0.5, 0.78, cbp3 ? 2 : 1);
    addPathCorr(b, 128, 0.5, 1);
    if (with_local)
        addLocalPattern(b, 2);
    return b;
}

std::uint64_t
seedOf(const std::string &suite, const std::string &name)
{
    std::uint64_t h = 0x1234567;
    for (char c : (suite + "/" + name))
        h = hashCombine(h, static_cast<std::uint64_t>(c));
    return h;
}

} // anonymous namespace

std::vector<BenchmarkSpec>
cbp4Suite()
{
    std::vector<BenchmarkSpec> suite;
    const std::string s = "CBP4";
    auto seed = [&s](const std::string &n) { return seedOf(s, n); };

    // ---- SPEC2K6-00 .. SPEC2K6-19 -------------------------------------
    for (unsigned i = 0; i < 20; ++i) {
        char name[32];
        std::snprintf(name, sizeof(name), "SPEC2K6-%02u", i);
        if (i == 4) {
            // IMLI-SIC showcase: variable-trip nests, no WH benefit.
            BenchmarkSpec b = namedSpec(name, s, seed(name));
            addSicNest(b, 18, 34, 3, 1, 1, 1);   // ~20*26*7 = ~3600
            addSicNest(b, 12, 26, 2, 0, 0, 1);   // ~20*19*3 = ~1100
            addPredictableFiller(b, 18);
            addEasyGlobal(b, 3);
            addNoise(b, 0.6, 0.85, 1);
            addLocalPattern(b, 1);
            suite.push_back(std::move(b));
        } else if (i == 12) {
            // Wormhole/IMLI-OH showcase: constant-trip DiagPrev, hard.
            BenchmarkSpec b = namedSpec(name, s, seed(name));
            addWormholeNest(b, 32, 2, 0, 1, 1);  // ~20*32*4 = ~2600
            addSicNest(b, 20, 36, 2, 0, 1, 1);   // ~20*28*4 = ~2300
            addPredictableFiller(b, 20);
            addEasyGlobal(b, 2);
            addNoise(b, 0.5, 0.75, 2);
            addPathCorr(b, 128, 0.5, 1);
            addLocalPattern(b, 1);
            suite.push_back(std::move(b));
        } else {
            const unsigned tier = i % 5;
            if (tier <= 2)
                suite.push_back(makeEasy(name, s, seed(name), i % 4 == 1));
            else if (tier == 3)
                suite.push_back(
                    makeMedium(name, s, seed(name), i % 3 == 0, i == 8));
            else
                suite.push_back(makeHard(name, s, seed(name), i % 3 == 0));
        }
    }

    // ---- MM-1 .. MM-10 -------------------------------------------------
    for (unsigned i = 1; i <= 10; ++i) {
        char name[32];
        std::snprintf(name, sizeof(name), "MM-%u", i);
        if (i == 4) {
            // Inverted-correlation nest on a very accurate baseline.
            BenchmarkSpec b = namedSpec(name, s, seed(name));
            addInvertedNest(b, 24, 1);           // ~24*24*2 = ~1150
            addPredictableFiller(b, 14);
            addEasyGlobal(b, 4);
            addNoise(b, 0.96, 0.99, 1);
            suite.push_back(std::move(b));
        } else {
            const unsigned tier = i % 4;
            if (tier <= 1)
                suite.push_back(makeEasy(name, s, seed(name), i % 3 == 0));
            else if (tier == 2)
                suite.push_back(
                    makeMedium(name, s, seed(name), i % 2 == 0, false));
            else
                suite.push_back(makeHard(name, s, seed(name), false));
        }
    }

    // ---- SERVER-1 .. SERVER-10 ------------------------------------------
    for (unsigned i = 1; i <= 10; ++i) {
        char name[32];
        std::snprintf(name, sizeof(name), "SERVER-%u", i);
        const unsigned tier = i % 4;
        if (tier == 0)
            suite.push_back(makeHard(name, s, seed(name), i % 2 == 0));
        else if (tier == 1)
            suite.push_back(
                makeMedium(name, s, seed(name), true, i == 5));
        else
            suite.push_back(makeEasy(name, s, seed(name), i % 3 == 0));
    }
    return suite;
}

std::vector<BenchmarkSpec>
cbp3Suite()
{
    std::vector<BenchmarkSpec> suite;
    const std::string s = "CBP3";
    auto seed = [&s](const std::string &n) { return seedOf(s, n); };

    // ---- CLIENT01 .. CLIENT10 -------------------------------------------
    for (unsigned i = 1; i <= 10; ++i) {
        char name[32];
        std::snprintf(name, sizeof(name), "CLIENT%02u", i);
        if (i == 2) {
            // Wormhole/IMLI-OH showcase, hard (paper: > 15 MPKI).
            BenchmarkSpec b = namedSpec(name, s, seed(name));
            addWormholeNest(b, 40, 1, 0, 1, 1);  // ~20*40*3 = ~2400
            addSicNest(b, 24, 36, 1, 0, 1, 1);   // SIC side dish
            addPredictableFiller(b, 20);
            addNoise(b, 0.5, 0.72, 2);
            addPathCorr(b, 128, 0.5, 1);
            addLocalPattern(b, 1);
            suite.push_back(std::move(b));
        } else {
            const unsigned tier = i % 4;
            if (tier <= 1)
                suite.push_back(makeEasy(name, s, seed(name), i % 2 == 0));
            else if (tier == 2)
                suite.push_back(
                    makeMedium(name, s, seed(name), true, i == 6));
            else
                suite.push_back(makeHard(name, s, seed(name), true));
        }
    }

    // ---- MM01 .. MM10 ----------------------------------------------------
    for (unsigned i = 1; i <= 10; ++i) {
        char name[32];
        std::snprintf(name, sizeof(name), "MM%02u", i);
        if (i == 7) {
            // Hardest benchmark (paper: > 20 MPKI); both SIC and OH/WH
            // correlation classes present.
            BenchmarkSpec b = namedSpec(name, s, seed(name));
            addWormholeNest(b, 28, 2, 0, 1, 1);  // ~20*28*4 = ~2300
            addSicNest(b, 16, 32, 2, 1, 1, 1);   // ~20*24*6 = ~2900
            addPredictableFiller(b, 14);
            addNoise(b, 0.5, 0.68, 3);
            addPathCorr(b, 256, 0.5, 2);
            addLocalPattern(b, 2);
            suite.push_back(std::move(b));
        } else {
            const unsigned tier = i % 4;
            if (tier <= 1)
                suite.push_back(makeEasy(name, s, seed(name), false));
            else if (tier == 2)
                suite.push_back(
                    makeMedium(name, s, seed(name), i % 2 == 0, i == 6));
            else
                suite.push_back(makeHard(name, s, seed(name), i % 2 == 0));
        }
    }

    // ---- WS01 .. WS10 ----------------------------------------------------
    for (unsigned i = 1; i <= 10; ++i) {
        char name[32];
        std::snprintf(name, sizeof(name), "WS%02u", i);
        if (i == 4) {
            // Strongest IMLI-SIC benchmark (paper: -3.20 MPKI), also
            // responsive to local history (Figure 14).
            BenchmarkSpec b = namedSpec(name, s, seed(name));
            addSicNest(b, 16, 36, 3, 1, 1, 1);   // ~20*26*7 = ~3600
            addSicNest(b, 10, 24, 2, 0, 0, 1);   // ~20*17*3 = ~1000
            addPredictableFiller(b, 16);
            addNoise(b, 0.55, 0.8, 2);
            addLocalPattern(b, 2);
            suite.push_back(std::move(b));
        } else if (i == 3) {
            // Marginally improved by both SIC and OH (paper, Fig. 13).
            BenchmarkSpec b = namedSpec(name, s, seed(name));
            addWeakNest(b, 20, 1);
            addSmallWormholeNest(b, 16, 1);
            addPredictableFiller(b, 16);
            addMediumGlobal(b, 2);
            addNoise(b, 0.7, 0.88, 1);
            addLocalPattern(b, 1);
            suite.push_back(std::move(b));
        } else {
            const unsigned tier = i % 4;
            if (tier <= 1)
                suite.push_back(makeEasy(name, s, seed(name), i % 2 == 1));
            else if (tier == 2)
                suite.push_back(
                    makeMedium(name, s, seed(name), true, i == 8));
            else
                suite.push_back(makeHard(name, s, seed(name), true));
        }
    }

    // ---- SERVER01 .. SERVER10 ---------------------------------------------
    for (unsigned i = 1; i <= 10; ++i) {
        char name[32];
        std::snprintf(name, sizeof(name), "SERVER%02u", i);
        const unsigned tier = i % 4;
        if (tier == 0)
            suite.push_back(makeHard(name, s, seed(name), true));
        else if (tier == 1)
            suite.push_back(makeMedium(name, s, seed(name), true, true));
        else
            suite.push_back(makeEasy(name, s, seed(name), i % 2 == 0));
    }
    return suite;
}

std::vector<BenchmarkSpec>
fullSuite()
{
    std::vector<BenchmarkSpec> all = cbp4Suite();
    std::vector<BenchmarkSpec> cbp3 = cbp3Suite();
    all.insert(all.end(), std::make_move_iterator(cbp3.begin()),
               std::make_move_iterator(cbp3.end()));
    return all;
}

BenchmarkSpec
findBenchmark(const std::string &name)
{
    for (auto &b : fullSuite())
        if (b.name == name)
            return b;
    throw std::invalid_argument("unknown benchmark: " + name);
}

// ---------------------------------------------------------------------
// Recorded-style scenarios.  The mixes deliberately differ from the 80
// synthetic members: denser nests, heavier noise floors and abrupt
// phase changes are the shapes recorded championship traces stress that
// steady-state generated mixes do not.
// ---------------------------------------------------------------------

std::vector<BenchmarkSpec>
recordedScenarios()
{
    std::vector<BenchmarkSpec> scenarios;
    const auto start = [&](const char *name, std::uint64_t seed) ->
        BenchmarkSpec & {
        scenarios.push_back(namedSpec(name, "REC", seed));
        return scenarios.back();
    };

    {   // Nest storm: stacked variable-trip SIC food over a noise floor.
        BenchmarkSpec &b = start("REC-01", 0x9e3779b97f4a7c15ull);
        addSicNest(b, 9, 31, 3, 2, 1, 3);
        addSicNest(b, 5, 13, 2, 1, 0, 2);
        addNoise(b, 0.35, 0.65, 2);
    }
    {   // Constant-trip diagonal nests: wormhole / IMLI-OH territory.
        BenchmarkSpec &b = start("REC-02", 0xc2b2ae3d27d4eb4full);
        addWormholeNest(b, 21, 3, 1, 1, 3);
        addInvertedNest(b, 17, 2);
        addPredictableFiller(b, 1);
    }
    {   // Noise flood: a recording dominated by hard random content.
        BenchmarkSpec &b = start("REC-03", 0x165667b19e3779f9ull);
        addNoise(b, 0.42, 0.58, 5);
        addPathCorr(b, 64, 0.8, 2);
        addPredictableFiller(b, 1);
    }
    {   // Local-pattern heavy with jittered long loops (CBP3-ish).
        BenchmarkSpec &b = start("REC-04", 0x27d4eb2f165667c5ull);
        addLocalPattern(b, 4);
        addLongLoop(b, 45, 9, 3);
        addNoise(b, 0.3, 0.7, 1);
    }
    {   // Mixed nest depths: two wormhole trips plus weak correlation.
        BenchmarkSpec &b = start("REC-05", 0x85ebca6b2c2f994bull);
        addWormholeNest(b, 13, 2, 1, 0, 2);
        addWormholeNest(b, 29, 2, 0, 1, 2);
        addWeakNest(b, 11, 2);
    }
    {   // Global-correlation chains against a SIC nest.
        BenchmarkSpec &b = start("REC-06", 0x2545f4914f6cdd1dull);
        addMediumGlobal(b, 3);
        addEasyGlobal(b, 2);
        addSicNest(b, 7, 19, 2, 2, 1, 2);
    }
    {   // Mostly-easy recording with a marginal small nest (WS03-ish).
        BenchmarkSpec &b = start("REC-07", 0xd6e8feb86659fd93ull);
        addPredictableFiller(b, 5);
        addSmallWormholeNest(b, 6, 2);
        addNoise(b, 0.15, 0.25, 1);
    }
    {   // Kitchen sink: every correlation class phase-interleaved.
        BenchmarkSpec &b = start("REC-08", 0xff51afd7ed558ccdull);
        addSicNest(b, 8, 24, 2, 1, 1, 2);
        addWormholeNest(b, 19, 2, 1, 1, 2);
        addInvertedNest(b, 15, 1);
        addLocalPattern(b, 2);
        addNoise(b, 0.4, 0.6, 1);
    }
    return scenarios;
}

bool
globMatch(const std::string &pattern, const std::string &name)
{
    // Iterative glob with single-star backtracking: on mismatch past a
    // '*', retry that star against one more consumed character.
    std::size_t p = 0, n = 0;
    std::size_t starP = std::string::npos, starN = 0;
    while (n < name.size()) {
        if (p < pattern.size() &&
            (pattern[p] == '?' || pattern[p] == name[n])) {
            ++p;
            ++n;
        } else if (p < pattern.size() && pattern[p] == '*') {
            starP = p++;
            starN = n;
        } else if (starP != std::string::npos) {
            p = starP + 1;
            n = ++starN;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*')
        ++p;
    return p == pattern.size();
}

namespace
{

/** Case-insensitive copy with '-'/'_' stripped, for near-miss ranking. */
std::string
foldName(const std::string &name)
{
    std::string folded;
    for (char c : name) {
        if (c == '-' || c == '_' || c == '*' || c == '?')
            continue;
        folded.push_back(
            static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
    return folded;
}

/** Pool names resembling @p pattern, for the no-match error message. */
std::vector<std::string>
nearMisses(const std::vector<BenchmarkSpec> &pool,
           const std::string &pattern)
{
    const std::string want = foldName(pattern);
    std::vector<std::string> close;
    for (const BenchmarkSpec &b : pool) {
        const std::string have = foldName(b.name);
        const bool related =
            !want.empty() &&
            (have.find(want) != std::string::npos ||
             want.find(have) != std::string::npos ||
             have.compare(0, std::min<std::size_t>(3, want.size()), want, 0,
                          std::min<std::size_t>(3, want.size())) == 0);
        if (related && close.size() < 5)
            close.push_back(b.name);
    }
    return close;
}

} // anonymous namespace

std::vector<BenchmarkSpec>
selectBenchmarks(const std::vector<BenchmarkSpec> &pool,
                 const std::vector<std::string> &patterns)
{
    if (patterns.empty())
        return pool;
    std::vector<bool> picked(pool.size(), false);
    for (const std::string &pattern : patterns) {
        if (pattern.empty())
            continue;
        bool any = false;
        for (std::size_t i = 0; i < pool.size(); ++i) {
            if (globMatch(pattern, pool[i].name)) {
                picked[i] = true;
                any = true;
            }
        }
        if (!any) {
            std::string msg =
                "benchmark pattern \"" + pattern + "\" matches nothing";
            const std::vector<std::string> close = nearMisses(pool, pattern);
            if (!close.empty()) {
                msg += "; did you mean";
                for (std::size_t i = 0; i < close.size(); ++i)
                    msg += (i == 0 ? " " : ", ") + close[i];
                msg += "?";
            }
            throw std::runtime_error(msg);
        }
    }
    std::vector<BenchmarkSpec> selected;
    for (std::size_t i = 0; i < pool.size(); ++i)
        if (picked[i])
            selected.push_back(pool[i]);
    return selected;
}

std::string
recordedHint(bool has_recorded_dir, const std::string &suite,
             const std::vector<std::string> &patterns)
{
    if (has_recorded_dir)
        return "";
    bool wants_rec = suite == "REC";
    for (const std::string &pattern : patterns)
        wants_rec = wants_rec || pattern.rfind("REC", 0) == 0;
    return wants_rec ? " (the REC scenarios need --recorded DIR)" : "";
}

std::string
recordedScenarioFileName(const BenchmarkSpec &scenario)
{
    std::string leaf = scenario.name;
    for (char &c : leaf)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return leaf + ".cbp";
}

std::vector<BenchmarkSpec>
recordedSuite(const std::string &dir)
{
    std::vector<BenchmarkSpec> suite;
    for (const BenchmarkSpec &scenario : recordedScenarios()) {
        const std::string path =
            (dir.empty() || dir.back() == '/' ? dir : dir + "/") +
            recordedScenarioFileName(scenario);
        suite.push_back(
            makeRecordedBenchmark(scenario.name, scenario.suite, path));
    }
    return suite;
}

} // namespace imli
