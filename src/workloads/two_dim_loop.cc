#include "src/workloads/two_dim_loop.hh"

#include <cassert>
#include <sstream>

namespace imli
{

std::string
bodyClassName(BodyClass cls)
{
    switch (cls) {
      case BodyClass::SameIter:
        return "same-iter";
      case BodyClass::DiagPrev:
        return "diag-prev";
      case BodyClass::DiagNext:
        return "diag-next";
      case BodyClass::Inverted:
        return "inverted";
      case BodyClass::Weak:
        return "weak";
      case BodyClass::Nested:
        return "nested";
      case BodyClass::Random:
        return "random";
    }
    return "?";
}

namespace
{

// PC-region layout (byte offsets from pcBase); chosen so that body
// branches land in distinct IMLI outer-history slots and backedges are
// strictly backward.
constexpr std::uint64_t nestTopOff = 0x10;
constexpr std::uint64_t loopTopOff = 0x20;
constexpr std::uint64_t bodyOff = 0x40;
constexpr std::uint64_t bodyStride = 0x20;
constexpr std::uint64_t guardOffInBody = 0x00;
constexpr std::uint64_t branchOffInBody = 0x10;

} // anonymous namespace

TwoDimLoopKernel::TwoDimLoopKernel(const TwoDimLoopParams &params,
                                   std::uint64_t pc_base, Xoroshiro128 rng_)
    : cfg(params), pcBase(pc_base), rng(rng_),
      rowCapacity(params.innerTripMax + 2)
{
    assert(cfg.innerTripMin >= 2);
    assert(cfg.innerTripMin <= cfg.innerTripMax);
    assert(cfg.outerIters >= 2);
    state.resize(cfg.body.size());
    for (auto &st : state) {
        st.row.resize(rowCapacity);
        st.guardRow.resize(rowCapacity);
        for (unsigned m = 0; m < rowCapacity; ++m) {
            st.row[m] = rng.bernoulli(0.5) ? 1 : 0;
            st.guardRow[m] = rng.bernoulli(0.5) ? 1 : 0;
        }
    }
}

std::uint64_t
TwoDimLoopKernel::bodyBranchPc(unsigned i) const
{
    return pcBase + bodyOff + i * bodyStride + branchOffInBody;
}

std::uint64_t
TwoDimLoopKernel::guardBranchPc(unsigned i) const
{
    return pcBase + bodyOff + i * bodyStride + guardOffInBody;
}

std::uint64_t
TwoDimLoopKernel::innerBackedgePc() const
{
    return pcBase + bodyOff + cfg.body.size() * bodyStride +
           branchOffInBody;
}

std::uint64_t
TwoDimLoopKernel::outerBackedgePc() const
{
    return innerBackedgePc() + 0x10;
}

void
TwoDimLoopKernel::advanceRow(unsigned branch, Xoroshiro128 &r)
{
    BodyState &st = state[branch];
    const BodyBranchSpec &spec = cfg.body[branch];
    switch (spec.cls) {
      case BodyClass::SameIter:
      case BodyClass::Nested:
        // Data arrays untouched inside the nest (Figure 1 premise).
        break;
      case BodyClass::DiagPrev: {
        // Out[N][M] = Out[N-1][M-1]: shift towards higher M.
        for (unsigned m = rowCapacity; m-- > 1;)
            st.row[m] = st.row[m - 1];
        st.row[0] = r.bernoulli(0.5) ? 1 : 0;
        break;
      }
      case BodyClass::DiagNext: {
        // Out[N][M] = Out[N-1][M+1]: shift towards lower M.
        for (unsigned m = 0; m + 1 < rowCapacity; ++m)
            st.row[m] = st.row[m + 1];
        st.row[rowCapacity - 1] = r.bernoulli(0.5) ? 1 : 0;
        break;
      }
      case BodyClass::Inverted:
        for (unsigned m = 0; m < rowCapacity; ++m)
            st.row[m] ^= 1;
        break;
      case BodyClass::Weak:
        for (unsigned m = 0; m < rowCapacity; ++m)
            if (r.bernoulli(spec.noise))
                st.row[m] = r.bernoulli(0.5) ? 1 : 0;
        break;
      case BodyClass::Random:
        break; // drawn at emission
    }
}

void
TwoDimLoopKernel::emitRound(BranchSink &sink)
{
    BranchEmitter emit(sink, rng, cfg.gapMin, cfg.gapMax);
    const std::uint64_t nest_top = pcBase + nestTopOff;
    const std::uint64_t loop_top = pcBase + loopTopOff;
    const std::uint64_t inner_pc = innerBackedgePc();
    const std::uint64_t outer_pc = outerBackedgePc();

    // Between nest executions the SameIter/Nested data mutates slightly.
    for (unsigned b = 0; b < cfg.body.size(); ++b) {
        BodyState &st = state[b];
        const BodyClass cls = cfg.body[b].cls;
        if (cls == BodyClass::SameIter || cls == BodyClass::Nested) {
            for (unsigned m = 0; m < rowCapacity; ++m) {
                if (rng.bernoulli(cfg.rowMutateProb))
                    st.row[m] ^= 1;
                if (rng.bernoulli(cfg.rowMutateProb))
                    st.guardRow[m] ^= 1;
            }
        }
    }

    // A call marks the nest entry (non-conditional history traffic).
    emit.call(pcBase, nest_top);

    for (unsigned n = 0; n < cfg.outerIters; ++n) {
        if (n > 0)
            for (unsigned b = 0; b < cfg.body.size(); ++b)
                advanceRow(b, rng);

        const unsigned trip =
            cfg.innerTripMin == cfg.innerTripMax
                ? cfg.innerTripMin
                : static_cast<unsigned>(rng.range(cfg.innerTripMin,
                                                  cfg.innerTripMax));

        for (unsigned m = 0; m < trip; ++m) {
            for (unsigned b = 0; b < cfg.body.size(); ++b) {
                const BodyBranchSpec &spec = cfg.body[b];
                BodyState &st = state[b];
                if (spec.cls == BodyClass::Nested) {
                    const bool guard = st.guardRow[m] != 0;
                    emit.cond(guardBranchPc(b), guardBranchPc(b) + 0x8,
                              guard);
                    if (!guard)
                        continue;
                }
                bool outcome;
                if (spec.cls == BodyClass::Random)
                    outcome = rng.bernoulli(spec.takenProb);
                else
                    outcome = st.row[m] != 0;
                if (spec.noise > 0.0 && spec.cls != BodyClass::Weak &&
                    rng.bernoulli(spec.noise))
                    outcome = !outcome;
                emit.cond(bodyBranchPc(b), bodyBranchPc(b) + 0x8, outcome);
            }
            // Inner backedge: taken while iterating.
            emit.cond(inner_pc, loop_top, m + 1 < trip);
        }
        // Outer backedge: taken while outer iterations remain.
        emit.cond(outer_pc, nest_top, n + 1 < cfg.outerIters);
    }
    emit.ret(outer_pc + 0x10, pcBase + 0x4);
}

std::string
TwoDimLoopKernel::describe() const
{
    std::ostringstream os;
    os << "2dloop(N=" << cfg.outerIters << ",M=" << cfg.innerTripMin;
    if (cfg.innerTripMax != cfg.innerTripMin)
        os << ".." << cfg.innerTripMax;
    os << ",body=";
    for (std::size_t i = 0; i < cfg.body.size(); ++i)
        os << (i ? "," : "") << bodyClassName(cfg.body[i].cls);
    os << ")";
    return os.str();
}

// --------------------------------------------------------------------------
// RegularLoopKernel
// --------------------------------------------------------------------------

RegularLoopKernel::RegularLoopKernel(const RegularLoopParams &params,
                                     std::uint64_t pc_base,
                                     Xoroshiro128 rng_)
    : cfg(params), pcBase(pc_base), rng(rng_)
{
    assert(cfg.trip >= 3);
}

std::uint64_t
RegularLoopKernel::backedgePc() const
{
    return pcBase + 0x20 + cfg.bodyBranches * 0x10;
}

void
RegularLoopKernel::emitRound(BranchSink &sink)
{
    BranchEmitter emit(sink, rng, cfg.gapMin, cfg.gapMax);
    const std::uint64_t loop_top = pcBase + 0x10;
    const std::uint64_t backedge = backedgePc();

    for (unsigned run = 0; run < cfg.runsPerRound; ++run) {
        unsigned trip = cfg.trip;
        if (cfg.tripJitter > 0) {
            trip = static_cast<unsigned>(rng.range(
                static_cast<std::int64_t>(cfg.trip) - cfg.tripJitter,
                static_cast<std::int64_t>(cfg.trip) + cfg.tripJitter));
        }
        emit.call(pcBase, loop_top);
        for (unsigned i = 0; i < trip; ++i) {
            for (unsigned b = 0; b < cfg.bodyBranches; ++b) {
                const std::uint64_t pc = pcBase + 0x20 + b * 0x10;
                emit.cond(pc, pc + 0x8, rng.bernoulli(cfg.bodyTakenProb));
            }
            emit.cond(backedge, loop_top, i + 1 < trip);
        }
        emit.ret(backedge + 0x10, pcBase + 0x4);
    }
}

std::string
RegularLoopKernel::describe() const
{
    std::ostringstream os;
    os << "loop(T=" << cfg.trip;
    if (cfg.tripJitter)
        os << "+-" << cfg.tripJitter;
    os << ",body=" << cfg.bodyBranches << ")";
    return os.str();
}

} // namespace imli
