/**
 * @file
 * Loop-structured kernels: the paper's Figure-1 two-dimensional loop nest
 * with its branch classes, and simple counted loops.
 *
 * TwoDimLoopKernel models
 *
 *     for (N = 0; N < outerIters; N++)        // outer loop OL
 *       for (M = 0; M < trip; M++)            // inner loop IL
 *         { body branches B_k testing data with known dependence }
 *
 * Each body branch belongs to a correlation class defining how its outcome
 * matrix Out[N][M] evolves across outer iterations:
 *
 *   SameIter  (B3/B4 of Fig.1):  Out[N][M] =  Out[N-1][M]   — IMLI-SIC food
 *   DiagPrev  (SPEC2K6-12 etc.): Out[N][M] =  Out[N-1][M-1] — WH / IMLI-OH
 *   DiagNext  (B1 of Fig.1):     Out[N][M] =  Out[N-1][M+1] — WH only
 *   Inverted  (MM-4):            Out[N][M] = !Out[N-1][M]   — WH / IMLI-OH
 *   Weak      (B2 of Fig.1):     Out[N][M] =  Out[N-1][M] w.p. 1-noise
 *   Nested    (B4 of Fig.1):     SameIter behind a data-dependent guard
 *   Random:                      fresh Bernoulli draw every execution
 *
 * The inner loop trip count is constant when innerTripMin == innerTripMax
 * (wormhole-compatible) and redrawn per outer iteration otherwise (only
 * IMLI-SIC-class components can track those branches; Section 2.2.2, "WH
 * limitations").
 */

#ifndef IMLI_SRC_WORKLOADS_TWO_DIM_LOOP_HH
#define IMLI_SRC_WORKLOADS_TWO_DIM_LOOP_HH

#include <vector>

#include "src/workloads/kernel.hh"

namespace imli
{

/** Correlation class of a loop-body branch. */
enum class BodyClass
{
    SameIter,
    DiagPrev,
    DiagNext,
    Inverted,
    Weak,
    Nested,
    Random,
};

/** Printable name of a body class. */
std::string bodyClassName(BodyClass cls);

/** One branch inside the inner loop body. */
struct BodyBranchSpec
{
    BodyClass cls = BodyClass::SameIter;
    /** Per-execution outcome flip probability (measurement noise). */
    double noise = 0.0;
    /** Nested only: probability the guard lets the branch execute. */
    double guardRate = 0.6;
    /** Random only: taken probability. */
    double takenProb = 0.5;
};

/** Parameters of a two-dimensional loop nest kernel. */
struct TwoDimLoopParams
{
    unsigned outerIters = 20;    //!< outer iterations per nest execution
    unsigned innerTripMin = 24;  //!< constant trip when min == max
    unsigned innerTripMax = 24;
    std::vector<BodyBranchSpec> body;
    /** Per-element chance the SameIter data flips between nest runs. */
    double rowMutateProb = 0.02;
    unsigned gapMin = 2;
    unsigned gapMax = 7;
};

/** The Figure-1 loop nest generator. */
class TwoDimLoopKernel : public Kernel
{
  public:
    /**
     * @param params nest geometry and body classes
     * @param pc_base start of this kernel's private PC region
     * @param rng kernel-private random stream
     */
    TwoDimLoopKernel(const TwoDimLoopParams &params, std::uint64_t pc_base,
                     Xoroshiro128 rng);

    void emitRound(BranchSink &sink) override;
    std::string describe() const override;

    const TwoDimLoopParams &params() const { return cfg; }

    /** PC of body branch @p i (tests assert per-branch correlation). */
    std::uint64_t bodyBranchPc(unsigned i) const;

    /** PC of the guard branch of a Nested body branch @p i. */
    std::uint64_t guardBranchPc(unsigned i) const;

    /** PC of the inner-loop backward branch. */
    std::uint64_t innerBackedgePc() const;

    /** PC of the outer-loop backward branch. */
    std::uint64_t outerBackedgePc() const;

  private:
    struct BodyState
    {
        std::vector<std::uint8_t> row;      //!< Out[N-1][*]
        std::vector<std::uint8_t> guardRow; //!< Nested guard data
    };

    void advanceRow(unsigned branch, Xoroshiro128 &r);

    TwoDimLoopParams cfg;
    std::uint64_t pcBase;
    Xoroshiro128 rng;
    std::vector<BodyState> state;
    unsigned rowCapacity;
};

/** Parameters of a simple counted loop kernel. */
struct RegularLoopParams
{
    unsigned trip = 400;        //!< iterations per execution
    unsigned tripJitter = 0;    //!< +/- uniform jitter per execution
    unsigned bodyBranches = 2;  //!< biased branches inside the loop
    double bodyTakenProb = 0.85;
    unsigned runsPerRound = 2;  //!< loop executions per round
    unsigned gapMin = 2;
    unsigned gapMax = 7;
};

/**
 * Counted loop: the loop predictor's bread and butter.  With trips larger
 * than the main predictor's useful history the exit is only predictable
 * by the loop predictor — or by IMLI-SIC, which learns (PC, IMLIcount ==
 * trip-1) => not-taken, the subsumption measured in Section 4.2.2.
 */
class RegularLoopKernel : public Kernel
{
  public:
    RegularLoopKernel(const RegularLoopParams &params, std::uint64_t pc_base,
                      Xoroshiro128 rng);

    void emitRound(BranchSink &sink) override;
    std::string describe() const override;

    std::uint64_t backedgePc() const;

  private:
    RegularLoopParams cfg;
    std::uint64_t pcBase;
    Xoroshiro128 rng;
};

} // namespace imli

#endif // IMLI_SRC_WORKLOADS_TWO_DIM_LOOP_HH
