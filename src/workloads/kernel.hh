/**
 * @file
 * Workload kernel framework.
 *
 * The CBP3/CBP4 championship traces are not redistributable, so the suite
 * is synthesised (DESIGN.md, Section 2).  A benchmark is a weighted
 * interleaving of *kernels*; each kernel models one control-flow idiom
 * with a known correlation structure (two-dimensional loop nests with the
 * paper's Figure-1 branch classes, counted loops, global-history
 * correlation chains, local periodic patterns, path-diluted correlations,
 * biased random noise).  Kernels emit complete "rounds" (e.g. one full
 * loop-nest execution) so that intra-kernel correlation survives the
 * interleaving, exactly as program phases do in real traces.
 */

#ifndef IMLI_SRC_WORKLOADS_KERNEL_HH
#define IMLI_SRC_WORKLOADS_KERNEL_HH

#include <cstdint>
#include <memory>
#include <string>

#include "src/trace/branch_sink.hh"
#include "src/util/rng.hh"

namespace imli
{

/**
 * Helper for kernels to emit branch records with realistic instruction
 * gaps and a private PC region.
 */
class BranchEmitter
{
  public:
    /**
     * @param sink output stream (a Trace, a chunk buffer, ...)
     * @param rng gap randomisation source (kernel-owned)
     * @param gap_min minimum instructions between branches
     * @param gap_max maximum instructions between branches
     */
    BranchEmitter(BranchSink &sink, Xoroshiro128 &rng, unsigned gap_min,
                  unsigned gap_max)
        : out(sink), gapRng(rng), gapMin(gap_min), gapMax(gap_max)
    {
    }

    /** Emit a conditional branch. */
    void
    cond(std::uint64_t pc, std::uint64_t target, bool taken)
    {
        BranchRecord rec;
        rec.pc = pc;
        rec.target = target;
        rec.type = BranchType::CondDirect;
        rec.taken = taken;
        rec.instsBefore = gap();
        out.append(rec);
    }

    /** Emit an unconditional direct branch (always taken). */
    void
    jump(std::uint64_t pc, std::uint64_t target)
    {
        BranchRecord rec;
        rec.pc = pc;
        rec.target = target;
        rec.type = BranchType::UncondDirect;
        rec.taken = true;
        rec.instsBefore = gap();
        out.append(rec);
    }

    /** Emit a call / return pair marker (call only; returns are symmetric). */
    void
    call(std::uint64_t pc, std::uint64_t target)
    {
        BranchRecord rec;
        rec.pc = pc;
        rec.target = target;
        rec.type = BranchType::Call;
        rec.taken = true;
        rec.instsBefore = gap();
        out.append(rec);
    }

    void
    ret(std::uint64_t pc, std::uint64_t target)
    {
        BranchRecord rec;
        rec.pc = pc;
        rec.target = target;
        rec.type = BranchType::Return;
        rec.taken = true;
        rec.instsBefore = gap();
        out.append(rec);
    }

  private:
    unsigned
    gap()
    {
        if (gapMin >= gapMax)
            return gapMin;
        return static_cast<unsigned>(
            gapRng.range(static_cast<std::int64_t>(gapMin),
                         static_cast<std::int64_t>(gapMax)));
    }

    BranchSink &out;
    Xoroshiro128 &gapRng;
    unsigned gapMin;
    unsigned gapMax;
};

/** One control-flow idiom generator. */
class Kernel
{
  public:
    virtual ~Kernel() = default;

    /**
     * Emit one complete round of the kernel into @p sink.  A round is the
     * kernel's natural phase unit (a whole loop-nest execution, a burst of
     * pattern cycles, ...), so correlation internal to the kernel is not
     * broken by interleaving.  Rounds are bounded (at most a few thousand
     * branches), which is what lets the streaming generator source keep
     * its buffer at O(chunk + one round).
     */
    virtual void emitRound(BranchSink &sink) = 0;

    /** Human-readable description for trace tooling. */
    virtual std::string describe() const = 0;
};

using KernelPtr = std::unique_ptr<Kernel>;

} // namespace imli

#endif // IMLI_SRC_WORKLOADS_KERNEL_HH
