/**
 * @file
 * Generator-backed BranchSource: workload kernels emit records on demand
 * into a bounded chunk buffer instead of materializing a Trace.
 *
 * The round schedule (weighted round-robin over the spec's kernels, ended
 * after the first full weight-block that crosses the target size) is
 * byte-for-byte the schedule generateTrace() runs — generateTrace() is in
 * fact implemented by draining this source — so the streamed record
 * sequence is identical to the materialized one by construction.
 *
 * Memory: the buffer holds at most chunk_records plus the records of the
 * one round that crossed the chunk boundary; kernel rounds are bounded
 * (a few thousand records), so a source is O(chunk) resident however long
 * the stream is.  A process-wide high-water mark over all live generator
 * buffers (peakLiveRecords()) lets tests assert that suite runs really
 * stay at O(chunk) per worker.
 */

#ifndef IMLI_SRC_WORKLOADS_GENERATOR_SOURCE_HH
#define IMLI_SRC_WORKLOADS_GENERATOR_SOURCE_HH

#include <cstdint>
#include <vector>

#include "src/trace/branch_source.hh"
#include "src/workloads/benchmark_spec.hh"

namespace imli
{

/** Streams a synthetic benchmark without materializing it. */
class GeneratorBranchSource : public BranchSource
{
  public:
    /**
     * @param spec benchmark to generate (copied; the source re-seeds its
     *             kernels from it on reset())
     * @param target_branches stop after the weight-block crossing this
     *             many records, exactly like generateTrace()
     * @param chunk_records preferred span size handed to the consumer
     */
    GeneratorBranchSource(BenchmarkSpec spec, std::size_t target_branches,
                          std::size_t chunk_records = defaultChunkRecords);

    ~GeneratorBranchSource() override;

    const std::string &name() const override;
    BranchSpan nextChunk() override;
    void reset() override;

    /** Records emitted so far (across all chunks served). */
    std::uint64_t emittedRecords() const { return served; }

    /** Largest buffer this source ever held, in records. */
    std::size_t peakBufferedRecords() const { return peakBuffered; }

    // -- process-wide residency instrumentation ------------------------
    /**
     * High-water mark of records buffered simultaneously across every
     * live GeneratorBranchSource since the last resetPeakLiveRecords().
     * During a suite run this bounds the engine's resident trace memory:
     * it must stay at O(chunk) x workers, not O(trace).
     */
    static std::uint64_t peakLiveRecords();
    static void resetPeakLiveRecords();

  private:
    void instantiateKernels();
    void refill();
    void trackBuffered(std::size_t now_buffered);

    BenchmarkSpec spec;
    std::size_t targetBranches;
    std::size_t chunkRecords;

    std::vector<KernelPtr> kernels;
    std::size_t kernelIdx = 0;   //!< next kernel in the round-robin
    unsigned weightDone = 0;     //!< rounds of kernelIdx already emitted
    std::uint64_t emitted = 0;   //!< records generated so far
    std::uint64_t served = 0;    //!< records handed to the consumer
    bool exhausted = false;

    std::vector<BranchRecord> buffer;
    std::size_t bufferCursor = 0;   //!< first unserved record in buffer
    std::size_t trackedBuffered = 0;//!< this source's share of the global
    std::size_t peakBuffered = 0;
};

} // namespace imli

#endif // IMLI_SRC_WORKLOADS_GENERATOR_SOURCE_HH
