#include "src/workloads/benchmark_spec.hh"

#include <cassert>

namespace imli
{

KernelSpec
KernelSpec::makeTwoDim(const TwoDimLoopParams &p, unsigned w)
{
    KernelSpec spec;
    spec.type = Type::TwoDimLoop;
    spec.twoDim = p;
    spec.weight = w;
    return spec;
}

KernelSpec
KernelSpec::makeRegular(const RegularLoopParams &p, unsigned w)
{
    KernelSpec spec;
    spec.type = Type::RegularLoop;
    spec.regular = p;
    spec.weight = w;
    return spec;
}

KernelSpec
KernelSpec::makeGlobalCorr(const GlobalCorrParams &p, unsigned w)
{
    KernelSpec spec;
    spec.type = Type::GlobalCorr;
    spec.globalCorr = p;
    spec.weight = w;
    return spec;
}

KernelSpec
KernelSpec::makeLocalPattern(const LocalPatternParams &p, unsigned w)
{
    KernelSpec spec;
    spec.type = Type::LocalPattern;
    spec.localPattern = p;
    spec.weight = w;
    return spec;
}

KernelSpec
KernelSpec::makePathCorr(const PathCorrParams &p, unsigned w)
{
    KernelSpec spec;
    spec.type = Type::PathCorr;
    spec.pathCorr = p;
    spec.weight = w;
    return spec;
}

KernelSpec
KernelSpec::makeBiasedRandom(const BiasedRandomParams &p, unsigned w)
{
    KernelSpec spec;
    spec.type = Type::BiasedRandom;
    spec.biasedRandom = p;
    spec.weight = w;
    return spec;
}

KernelSpec
KernelSpec::makePredictable(const PredictableParams &p, unsigned w)
{
    KernelSpec spec;
    spec.type = Type::Predictable;
    spec.predictable = p;
    spec.weight = w;
    return spec;
}

namespace
{

KernelPtr
instantiate(const KernelSpec &spec, std::uint64_t pc_base, Xoroshiro128 rng)
{
    switch (spec.type) {
      case KernelSpec::Type::TwoDimLoop:
        return std::make_unique<TwoDimLoopKernel>(spec.twoDim, pc_base,
                                                  rng);
      case KernelSpec::Type::RegularLoop:
        return std::make_unique<RegularLoopKernel>(spec.regular, pc_base,
                                                   rng);
      case KernelSpec::Type::GlobalCorr:
        return std::make_unique<GlobalCorrKernel>(spec.globalCorr, pc_base,
                                                  rng);
      case KernelSpec::Type::LocalPattern:
        return std::make_unique<LocalPatternKernel>(spec.localPattern,
                                                    pc_base, rng);
      case KernelSpec::Type::PathCorr:
        return std::make_unique<PathCorrKernel>(spec.pathCorr, pc_base,
                                                rng);
      case KernelSpec::Type::BiasedRandom:
        return std::make_unique<BiasedRandomKernel>(spec.biasedRandom,
                                                    pc_base, rng);
      case KernelSpec::Type::Predictable:
        return std::make_unique<PredictableKernel>(spec.predictable,
                                                   pc_base, rng);
    }
    return nullptr;
}

} // anonymous namespace

Trace
generateTrace(const BenchmarkSpec &spec, std::size_t target_branches)
{
    assert(!spec.kernels.empty());
    Trace trace(spec.name);
    trace.reserve(target_branches + 16384);

    Xoroshiro128 master(spec.seed);
    std::vector<KernelPtr> kernels;
    kernels.reserve(spec.kernels.size());
    for (std::size_t i = 0; i < spec.kernels.size(); ++i) {
        // Each kernel gets a private PC region and random stream.
        const std::uint64_t pc_base =
            0x400000 + static_cast<std::uint64_t>(i) * 0x100000;
        kernels.push_back(
            instantiate(spec.kernels[i], pc_base, master.fork(i + 1)));
    }

    // Weighted round-robin interleaving until the target size is reached.
    while (trace.size() < target_branches) {
        for (std::size_t i = 0; i < kernels.size(); ++i) {
            for (unsigned w = 0; w < spec.kernels[i].weight; ++w)
                kernels[i]->emitRound(trace);
            if (trace.size() >= target_branches)
                break;
        }
    }
    return trace;
}

} // namespace imli
