#include "src/workloads/benchmark_spec.hh"

#include <cassert>

#include "src/workloads/generator_source.hh"

namespace imli
{

KernelSpec
KernelSpec::makeTwoDim(const TwoDimLoopParams &p, unsigned w)
{
    KernelSpec spec;
    spec.type = Type::TwoDimLoop;
    spec.twoDim = p;
    spec.weight = w;
    return spec;
}

KernelSpec
KernelSpec::makeRegular(const RegularLoopParams &p, unsigned w)
{
    KernelSpec spec;
    spec.type = Type::RegularLoop;
    spec.regular = p;
    spec.weight = w;
    return spec;
}

KernelSpec
KernelSpec::makeGlobalCorr(const GlobalCorrParams &p, unsigned w)
{
    KernelSpec spec;
    spec.type = Type::GlobalCorr;
    spec.globalCorr = p;
    spec.weight = w;
    return spec;
}

KernelSpec
KernelSpec::makeLocalPattern(const LocalPatternParams &p, unsigned w)
{
    KernelSpec spec;
    spec.type = Type::LocalPattern;
    spec.localPattern = p;
    spec.weight = w;
    return spec;
}

KernelSpec
KernelSpec::makePathCorr(const PathCorrParams &p, unsigned w)
{
    KernelSpec spec;
    spec.type = Type::PathCorr;
    spec.pathCorr = p;
    spec.weight = w;
    return spec;
}

KernelSpec
KernelSpec::makeBiasedRandom(const BiasedRandomParams &p, unsigned w)
{
    KernelSpec spec;
    spec.type = Type::BiasedRandom;
    spec.biasedRandom = p;
    spec.weight = w;
    return spec;
}

KernelSpec
KernelSpec::makePredictable(const PredictableParams &p, unsigned w)
{
    KernelSpec spec;
    spec.type = Type::Predictable;
    spec.predictable = p;
    spec.weight = w;
    return spec;
}

KernelPtr
instantiateKernel(const KernelSpec &spec, std::uint64_t pc_base,
                  Xoroshiro128 rng)
{
    switch (spec.type) {
      case KernelSpec::Type::TwoDimLoop:
        return std::make_unique<TwoDimLoopKernel>(spec.twoDim, pc_base,
                                                  rng);
      case KernelSpec::Type::RegularLoop:
        return std::make_unique<RegularLoopKernel>(spec.regular, pc_base,
                                                   rng);
      case KernelSpec::Type::GlobalCorr:
        return std::make_unique<GlobalCorrKernel>(spec.globalCorr, pc_base,
                                                  rng);
      case KernelSpec::Type::LocalPattern:
        return std::make_unique<LocalPatternKernel>(spec.localPattern,
                                                    pc_base, rng);
      case KernelSpec::Type::PathCorr:
        return std::make_unique<PathCorrKernel>(spec.pathCorr, pc_base,
                                                rng);
      case KernelSpec::Type::BiasedRandom:
        return std::make_unique<BiasedRandomKernel>(spec.biasedRandom,
                                                    pc_base, rng);
      case KernelSpec::Type::Predictable:
        return std::make_unique<PredictableKernel>(spec.predictable,
                                                   pc_base, rng);
    }
    return nullptr;
}

Trace
generateTrace(const BenchmarkSpec &spec, std::size_t target_branches)
{
    assert(!spec.kernels.empty());
    // Drain the streaming source: one definition of the weighted
    // round-robin schedule, shared between the materialized and streaming
    // paths, keeps the two record sequences identical by construction.
    GeneratorBranchSource source(spec, target_branches);
    return drainSource(source, target_branches + 16384);
}

} // namespace imli
