#include "src/workloads/benchmark_spec.hh"

#include <cassert>
#include <stdexcept>

#include "src/trace/cbp_reader.hh"
#include "src/trace/trace_io.hh"
#include "src/workloads/generator_source.hh"

namespace imli
{

KernelSpec
KernelSpec::makeTwoDim(const TwoDimLoopParams &p, unsigned w)
{
    KernelSpec spec;
    spec.type = Type::TwoDimLoop;
    spec.twoDim = p;
    spec.weight = w;
    return spec;
}

KernelSpec
KernelSpec::makeRegular(const RegularLoopParams &p, unsigned w)
{
    KernelSpec spec;
    spec.type = Type::RegularLoop;
    spec.regular = p;
    spec.weight = w;
    return spec;
}

KernelSpec
KernelSpec::makeGlobalCorr(const GlobalCorrParams &p, unsigned w)
{
    KernelSpec spec;
    spec.type = Type::GlobalCorr;
    spec.globalCorr = p;
    spec.weight = w;
    return spec;
}

KernelSpec
KernelSpec::makeLocalPattern(const LocalPatternParams &p, unsigned w)
{
    KernelSpec spec;
    spec.type = Type::LocalPattern;
    spec.localPattern = p;
    spec.weight = w;
    return spec;
}

KernelSpec
KernelSpec::makePathCorr(const PathCorrParams &p, unsigned w)
{
    KernelSpec spec;
    spec.type = Type::PathCorr;
    spec.pathCorr = p;
    spec.weight = w;
    return spec;
}

KernelSpec
KernelSpec::makeBiasedRandom(const BiasedRandomParams &p, unsigned w)
{
    KernelSpec spec;
    spec.type = Type::BiasedRandom;
    spec.biasedRandom = p;
    spec.weight = w;
    return spec;
}

KernelSpec
KernelSpec::makePredictable(const PredictableParams &p, unsigned w)
{
    KernelSpec spec;
    spec.type = Type::Predictable;
    spec.predictable = p;
    spec.weight = w;
    return spec;
}

KernelPtr
instantiateKernel(const KernelSpec &spec, std::uint64_t pc_base,
                  Xoroshiro128 rng)
{
    switch (spec.type) {
      case KernelSpec::Type::TwoDimLoop:
        return std::make_unique<TwoDimLoopKernel>(spec.twoDim, pc_base,
                                                  rng);
      case KernelSpec::Type::RegularLoop:
        return std::make_unique<RegularLoopKernel>(spec.regular, pc_base,
                                                   rng);
      case KernelSpec::Type::GlobalCorr:
        return std::make_unique<GlobalCorrKernel>(spec.globalCorr, pc_base,
                                                  rng);
      case KernelSpec::Type::LocalPattern:
        return std::make_unique<LocalPatternKernel>(spec.localPattern,
                                                    pc_base, rng);
      case KernelSpec::Type::PathCorr:
        return std::make_unique<PathCorrKernel>(spec.pathCorr, pc_base,
                                                rng);
      case KernelSpec::Type::BiasedRandom:
        return std::make_unique<BiasedRandomKernel>(spec.biasedRandom,
                                                    pc_base, rng);
      case KernelSpec::Type::Predictable:
        return std::make_unique<PredictableKernel>(spec.predictable,
                                                   pc_base, rng);
    }
    return nullptr;
}

Trace
generateTrace(const BenchmarkSpec &spec, std::size_t target_branches)
{
    assert(!spec.kernels.empty());
    // Drain the streaming source: one definition of the weighted
    // round-robin schedule, shared between the materialized and streaming
    // paths, keeps the two record sequences identical by construction.
    GeneratorBranchSource source(spec, target_branches);
    return drainSource(source, target_branches + 16384);
}

BenchmarkSpec
makeRecordedBenchmark(const std::string &name, const std::string &suite,
                      const std::string &path)
{
    BenchmarkSpec spec;
    spec.name = name;
    spec.suite = suite;
    spec.tracePath = path;
    const std::string ext = pathExtension(path);
    if (ext == ".cbp")
        spec.backend = TraceBackend::RecordedCbp;
    else if (ext == ".imt")
        spec.backend = TraceBackend::RecordedImt;
    else
        throw std::invalid_argument(
            "benchmark " + name + ": cannot pick a trace backend from \"" +
            path + "\" (expected a .cbp or .imt extension)");
    return spec;
}

void
validateBenchmark(const BenchmarkSpec &spec)
{
    switch (spec.backend) {
      case TraceBackend::Generated:
        if (spec.kernels.empty())
            throw std::runtime_error("benchmark " + spec.name +
                                     ": generated spec has no kernels");
        return;
      case TraceBackend::RecordedCbp:
      case TraceBackend::RecordedImt:
        if (spec.tracePath.empty())
            throw std::runtime_error("benchmark " + spec.name +
                                     ": recorded spec has no trace path");
        try {
            if (spec.backend == TraceBackend::RecordedCbp)
                probeCbpFile(spec.tracePath);
            else
                FileBranchSource probe(spec.tracePath);
        } catch (const std::exception &e) {
            throw std::runtime_error("benchmark " + spec.name + ": " +
                                     e.what());
        }
        return;
    }
    throw std::runtime_error("benchmark " + spec.name +
                             ": unknown trace backend");
}

std::unique_ptr<BranchSource>
makeBranchSource(const BenchmarkSpec &spec, std::size_t target_branches,
                 std::size_t chunk_records)
{
    switch (spec.backend) {
      case TraceBackend::Generated:
        return std::make_unique<GeneratorBranchSource>(
            spec, target_branches, chunk_records);
      case TraceBackend::RecordedCbp:
        return std::make_unique<CbpFileBranchSource>(
            spec.tracePath, spec.name, chunk_records);
      case TraceBackend::RecordedImt:
        return std::make_unique<FileBranchSource>(spec.tracePath,
                                                  chunk_records, spec.name);
    }
    throw std::runtime_error("benchmark " + spec.name +
                             ": unknown trace backend");
}

} // namespace imli
