#include "src/workloads/kernel.hh"

// Kernel and BranchEmitter are header-only; this translation unit anchors
// the module in the build graph.
